(* Optimistic concurrency control — the alternative CC method Section
   4.1.1 explicitly permits the TC to choose.  Reads take no locks;
   commit validates observations and applies buffered writes. *)

open Helpers
module Kernel = Untx_kernel.Kernel
module Tc = Untx_tc.Tc

let table = "kv"

let mk () = make_kernel ~cc_protocol:Tc.Optimistic ()

let test_basic_commit () =
  let k = mk () in
  let txn = Kernel.begin_txn k in
  ok (Kernel.insert k txn ~table ~key:"a" ~value:"1");
  ok (Kernel.insert k txn ~table ~key:"b" ~value:"2");
  ok (Kernel.commit k txn);
  Alcotest.(check (option string)) "applied" (Some "1") (get k ~table "a");
  Alcotest.(check (option string)) "applied" (Some "2") (get k ~table "b")

let test_read_your_writes () =
  let k = mk () in
  put k ~table "a" "old";
  let txn = Kernel.begin_txn k in
  ok (Kernel.update k txn ~table ~key:"a" ~value:"new");
  Alcotest.(check (option string))
    "buffered write visible to own reads" (Some "new")
    (ok (Kernel.read k txn ~table ~key:"a"));
  ok (Kernel.delete k txn ~table ~key:"a");
  Alcotest.(check (option string))
    "buffered delete visible" None
    (ok (Kernel.read k txn ~table ~key:"a"));
  Kernel.abort k txn ~reason:"test";
  Alcotest.(check (option string)) "abort discards buffer" (Some "old")
    (get k ~table "a")

let test_validation_failure_on_write () =
  let k = mk () in
  put k ~table "x" "0";
  let t1 = Kernel.begin_txn k in
  let v = ok (Kernel.read k t1 ~table ~key:"x") in
  Alcotest.(check (option string)) "t1 sees 0" (Some "0") v;
  (* a later transaction changes x and commits first *)
  let t2 = Kernel.begin_txn k in
  ok (Kernel.update k t2 ~table ~key:"x" ~value:"99");
  ok (Kernel.commit k t2);
  (* t1's write based on the stale read must not commit *)
  ok (Kernel.insert k t1 ~table ~key:"derived" ~value:"from-0");
  (match Kernel.commit k t1 with
  | `Fail msg ->
    Alcotest.(check string) "validation" "optimistic validation failed" msg
  | _ -> Alcotest.fail "stale read must fail validation");
  Alcotest.(check (option string)) "t2's value stands" (Some "99")
    (get k ~table "x");
  Alcotest.(check (option string)) "t1's write discarded" None
    (get k ~table "derived")

let test_no_conflict_both_commit () =
  let k = mk () in
  put k ~table "x" "0";
  put k ~table "y" "0";
  let t1 = Kernel.begin_txn k in
  ignore (ok (Kernel.read k t1 ~table ~key:"x"));
  ok (Kernel.update k t1 ~table ~key:"x" ~value:"t1");
  let t2 = Kernel.begin_txn k in
  ignore (ok (Kernel.read k t2 ~table ~key:"y"));
  ok (Kernel.update k t2 ~table ~key:"y" ~value:"t2");
  ok (Kernel.commit k t2);
  ok (Kernel.commit k t1);
  Alcotest.(check (option string)) "x" (Some "t1") (get k ~table "x");
  Alcotest.(check (option string)) "y" (Some "t2") (get k ~table "y")

let test_phantom_detected () =
  let k = mk () in
  for i = 0 to 9 do
    put k ~table (Printf.sprintf "p%02d" i) "v"
  done;
  let t1 = Kernel.begin_txn k in
  let rows = ok (Kernel.scan k t1 ~table ~from_key:"p" ~limit:100) in
  Alcotest.(check int) "sees 10" 10 (List.length rows);
  (* another transaction inserts into the scanned range *)
  let t2 = Kernel.begin_txn k in
  ok (Kernel.insert k t2 ~table ~key:"p05x" ~value:"phantom");
  ok (Kernel.commit k t2);
  ok (Kernel.insert k t1 ~table ~key:"summary" ~value:"count=10");
  (match Kernel.commit k t1 with
  | `Fail _ -> ()
  | _ -> Alcotest.fail "phantom must fail validation");
  Alcotest.(check (option string)) "summary discarded" None
    (get k ~table "summary")

let test_occ_survives_crashes () =
  let k = mk () in
  for i = 0 to 29 do
    let txn = Kernel.begin_txn k in
    ok (Kernel.insert k txn ~table ~key:(Printf.sprintf "c%03d" i) ~value:"v");
    ok (Kernel.commit k txn)
  done;
  Kernel.quiesce k;
  Kernel.crash_both k;
  let txn = Kernel.begin_txn k in
  let rows = ok (Kernel.scan k txn ~table ~from_key:"" ~limit:1000) in
  ok (Kernel.commit k txn);
  Alcotest.(check int) "all OCC commits durable" 30 (List.length rows);
  check_wellformed k

let test_read_only_txn_validates () =
  let k = mk () in
  put k ~table "r" "1";
  let t1 = Kernel.begin_txn k in
  ignore (ok (Kernel.read k t1 ~table ~key:"r"));
  (* no interference: read-only commit succeeds with nothing applied *)
  ok (Kernel.commit k t1);
  Alcotest.(check (option string)) "unchanged" (Some "1") (get k ~table "r")

let suite =
  [
    Alcotest.test_case "basic commit" `Quick test_basic_commit;
    Alcotest.test_case "read your writes" `Quick test_read_your_writes;
    Alcotest.test_case "stale read fails validation" `Quick
      test_validation_failure_on_write;
    Alcotest.test_case "disjoint txns both commit" `Quick
      test_no_conflict_both_commit;
    Alcotest.test_case "phantom detected" `Quick test_phantom_detected;
    Alcotest.test_case "OCC commits survive crashes" `Quick
      test_occ_survives_crashes;
    Alcotest.test_case "read-only txn" `Quick test_read_only_txn_validates;
  ]
