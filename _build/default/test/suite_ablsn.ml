(* Abstract page LSNs (Section 5.1.2): the generalized idempotence test,
   low-water-mark advancement, the merge used by page consolidation, and
   a demonstration of exactly the out-of-order scenario that breaks the
   classical [opLSN <= pageLSN] test. *)

module Ablsn = Untx_dc.Ablsn
module Page_meta = Untx_dc.Page_meta
module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id

let lsn = Lsn.of_int

let test_empty () =
  Alcotest.(check bool) "nothing included" false (Ablsn.included (lsn 1) Ablsn.empty);
  Alcotest.(check int) "max is zero" 0 (Lsn.to_int (Ablsn.max_lsn Ablsn.empty))

let test_add_included () =
  let ab = Ablsn.add (lsn 5) Ablsn.empty in
  Alcotest.(check bool) "5 included" true (Ablsn.included (lsn 5) ab);
  Alcotest.(check bool) "4 not included" false (Ablsn.included (lsn 4) ab);
  Alcotest.(check bool) "6 not included" false (Ablsn.included (lsn 6) ab)

(* The paper's motivating case: Oj (higher LSN) executes before Oi.
   A plain page LSN would claim Oi's effects are present; the abstract
   LSN does not. *)
let test_out_of_order_soundness () =
  let oi = lsn 10 and oj = lsn 20 in
  (* Oj arrives first *)
  let ab = Ablsn.add oj Ablsn.empty in
  let classical_page_lsn = Ablsn.max_lsn ab in
  Alcotest.(check bool) "classical test would lie" true
    Lsn.(oi <= classical_page_lsn);
  Alcotest.(check bool) "abstract test is honest" false
    (Ablsn.included oi ab);
  (* Oi arrives late and is applied *)
  let ab = Ablsn.add oi ab in
  Alcotest.(check bool) "now included" true (Ablsn.included oi ab)

let test_advance_lwm () =
  let ab =
    Ablsn.empty |> Ablsn.add (lsn 3) |> Ablsn.add (lsn 7) |> Ablsn.add (lsn 12)
  in
  Alcotest.(check int) "three members" 3 (Ablsn.ins_count ab);
  let ab = Ablsn.advance ~lwm:(lsn 7) ab in
  Alcotest.(check int) "lw raised" 7 (Lsn.to_int (Ablsn.lw ab));
  Alcotest.(check int) "covered members dropped" 1 (Ablsn.ins_count ab);
  (* coverage is preserved *)
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "lsn %d still included" l)
        true
        (Ablsn.included (lsn l) ab))
    [ 1; 3; 5; 7; 12 ];
  Alcotest.(check bool) "8 still excluded" false (Ablsn.included (lsn 8) ab);
  (* lwm never regresses *)
  let ab2 = Ablsn.advance ~lwm:(lsn 2) ab in
  Alcotest.(check int) "no regression" 7 (Lsn.to_int (Ablsn.lw ab2))

let test_add_below_lw_noop () =
  let ab = Ablsn.advance ~lwm:(lsn 10) Ablsn.empty in
  let ab2 = Ablsn.add (lsn 4) ab in
  Alcotest.(check bool) "equal" true (Ablsn.equal ab ab2)

let test_merge () =
  let a = Ablsn.advance ~lwm:(lsn 10) Ablsn.empty |> Ablsn.add (lsn 15) in
  let b = Ablsn.advance ~lwm:(lsn 12) Ablsn.empty |> Ablsn.add (lsn 11) in
  let m = Ablsn.merge a b in
  Alcotest.(check int) "lw is max" 12 (Lsn.to_int (Ablsn.lw m));
  Alcotest.(check bool) "15 kept" true (Ablsn.included (lsn 15) m);
  Alcotest.(check bool) "11 covered by lw" true (Ablsn.included (lsn 11) m);
  Alcotest.(check int) "11 dropped from ins" 1 (Ablsn.ins_count m);
  Alcotest.(check bool) "13 not included" false (Ablsn.included (lsn 13) m)

let test_max_lsn () =
  let ab = Ablsn.advance ~lwm:(lsn 5) Ablsn.empty in
  Alcotest.(check int) "lw when no ins" 5 (Lsn.to_int (Ablsn.max_lsn ab));
  let ab = Ablsn.add (lsn 9) ab in
  Alcotest.(check int) "max ins" 9 (Lsn.to_int (Ablsn.max_lsn ab))

let test_codec_roundtrip () =
  let cases =
    [
      Ablsn.empty;
      Ablsn.of_lw (lsn 42);
      Ablsn.empty |> Ablsn.add (lsn 1) |> Ablsn.add (lsn 100);
      Ablsn.advance ~lwm:(lsn 7) (Ablsn.add (lsn 20) Ablsn.empty);
    ]
  in
  List.iter
    (fun ab ->
      Alcotest.(check bool) "roundtrip" true
        (Ablsn.equal ab (Ablsn.decode (Ablsn.encode ab))))
    cases

let test_page_meta_roundtrip () =
  let tc1 = Tc_id.of_int 1 and tc2 = Tc_id.of_int 2 in
  let meta =
    {
      Page_meta.dlsn = lsn 9;
      ablsns =
        Tc_id.Map.empty
        |> Tc_id.Map.add tc1 (Ablsn.add (lsn 4) Ablsn.empty)
        |> Tc_id.Map.add tc2 (Ablsn.of_lw (lsn 17));
    }
  in
  let meta' = Page_meta.decode (Page_meta.encode meta) in
  Alcotest.(check int) "dlsn" 9 (Lsn.to_int meta'.Page_meta.dlsn);
  Alcotest.(check bool) "tc1 ablsn" true
    (Ablsn.equal (Page_meta.ablsn meta tc1) (Page_meta.ablsn meta' tc1));
  Alcotest.(check bool) "tc2 ablsn" true
    (Ablsn.equal (Page_meta.ablsn meta tc2) (Page_meta.ablsn meta' tc2));
  Alcotest.(check bool) "empty meta decodes" true
    (Page_meta.decode "" = Page_meta.empty)

let test_encoded_size_grows_with_ins () =
  let small = Ablsn.of_lw (lsn 1000) in
  let big = ref small in
  for i = 1001 to 1032 do
    big := Ablsn.add (lsn i) !big
  done;
  (* option 2 of Section 5.1.2 pays for every member it serializes *)
  Alcotest.(check bool) "bigger set, bigger encoding" true
    (Ablsn.encoded_size !big > Ablsn.encoded_size small + 32)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "add/included" `Quick test_add_included;
    Alcotest.test_case "out-of-order soundness" `Quick
      test_out_of_order_soundness;
    Alcotest.test_case "advance by LWM" `Quick test_advance_lwm;
    Alcotest.test_case "add below lw is no-op" `Quick test_add_below_lw_noop;
    Alcotest.test_case "merge (consolidation)" `Quick test_merge;
    Alcotest.test_case "max_lsn" `Quick test_max_lsn;
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "page meta roundtrip" `Quick test_page_meta_roundtrip;
    Alcotest.test_case "encoding size vs ins" `Quick
      test_encoded_size_grows_with_ins;
  ]
