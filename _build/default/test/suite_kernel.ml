(* End-to-end tests of the assembled unbundled kernel: transactions,
   rollback, and the partial-failure scenarios of Section 5.3. *)

open Helpers
module Kernel = Untx_kernel.Kernel
module Transport = Untx_kernel.Transport
module Dc = Untx_dc.Dc
module Tc = Untx_tc.Tc

let table = "kv"

let test_crud () =
  let k = make_kernel () in
  put k ~table "a" "1";
  put k ~table "b" "2";
  Alcotest.(check (option string)) "read a" (Some "1") (get k ~table "a");
  Alcotest.(check (option string)) "read b" (Some "2") (get k ~table "b");
  Alcotest.(check (option string)) "read missing" None (get k ~table "zz");
  committed k
    [ (fun txn -> Kernel.update k txn ~table ~key:"a" ~value:"1'") ];
  Alcotest.(check (option string)) "updated" (Some "1'") (get k ~table "a");
  committed k [ (fun txn -> Kernel.delete k txn ~table ~key:"b") ];
  Alcotest.(check (option string)) "deleted" None (get k ~table "b");
  check_wellformed k

let test_txn_isolation_own_reads () =
  let k = make_kernel () in
  let txn = Kernel.begin_txn k in
  ok (Kernel.insert k txn ~table ~key:"x" ~value:"v0");
  ok (Kernel.update k txn ~table ~key:"x" ~value:"v1");
  Alcotest.(check (option string))
    "own write visible" (Some "v1")
    (ok (Kernel.read k txn ~table ~key:"x"));
  ok (Kernel.commit k txn);
  Alcotest.(check (option string)) "after commit" (Some "v1") (get k ~table "x")

let test_abort_rolls_back () =
  let k = make_kernel () in
  put k ~table "a" "old";
  let txn = Kernel.begin_txn k in
  ok (Kernel.update k txn ~table ~key:"a" ~value:"new");
  ok (Kernel.insert k txn ~table ~key:"b" ~value:"temp");
  ok (Kernel.delete k txn ~table ~key:"a" |> fun _ -> `Ok ());
  Kernel.abort k txn ~reason:"user";
  Alcotest.(check (option string)) "a restored" (Some "old") (get k ~table "a");
  Alcotest.(check (option string)) "b gone" None (get k ~table "b");
  check_wellformed k

let test_abort_unversioned () =
  let k = make_kernel ~versioned:false () in
  put k ~table "a" "old";
  let txn = Kernel.begin_txn k in
  ok (Kernel.update k txn ~table ~key:"a" ~value:"new");
  ok (Kernel.insert k txn ~table ~key:"b" ~value:"temp");
  Kernel.abort k txn ~reason:"user";
  Alcotest.(check (option string)) "a restored" (Some "old") (get k ~table "a");
  Alcotest.(check (option string)) "b gone" None (get k ~table "b")

let test_duplicate_insert_fails () =
  let k = make_kernel ~versioned:false () in
  put k ~table "a" "1";
  let txn = Kernel.begin_txn k in
  let msg = expect_fail (Kernel.insert k txn ~table ~key:"a" ~value:"2") in
  Alcotest.(check string) "dup msg" "duplicate key" msg;
  Kernel.abort k txn ~reason:"test";
  Alcotest.(check (option string)) "unchanged" (Some "1") (get k ~table "a")

let test_scan () =
  let k = make_kernel () in
  List.iter (fun i -> put k ~table (Printf.sprintf "k%02d" i) (string_of_int i))
    [ 5; 3; 9; 1; 7 ];
  let rows = snapshot k ~table in
  Alcotest.(check (list (pair string string)))
    "sorted scan"
    [ ("k01", "1"); ("k03", "3"); ("k05", "5"); ("k07", "7"); ("k09", "9") ]
    rows;
  let txn = Kernel.begin_txn k in
  let some = ok (Kernel.scan k txn ~table ~from_key:"k04" ~limit:2) in
  ok (Kernel.commit k txn);
  Alcotest.(check (list (pair string string)))
    "bounded scan" [ ("k05", "5"); ("k07", "7") ] some

let populate k n =
  let rec go i =
    if i < n then begin
      let txn = Kernel.begin_txn k in
      let hi = min n (i + 50) in
      for j = i to hi - 1 do
        ok
          (Kernel.insert k txn ~table
             ~key:(Printf.sprintf "k%05d" j)
             ~value:(Printf.sprintf "v%05d" j))
      done;
      ok (Kernel.commit k txn);
      go hi
    end
  in
  go 0

let expected n =
  List.init n (fun j -> (Printf.sprintf "k%05d" j, Printf.sprintf "v%05d" j))

let test_many_records_splits () =
  let k = make_kernel ~page_capacity:256 () in
  populate k 500;
  Alcotest.(check bool) "splits happened" true (Dc.splits (Kernel.dc k) > 0);
  Alcotest.(check (list (pair string string)))
    "all rows" (expected 500) (snapshot k ~table);
  check_wellformed k

let test_deletes_consolidate () =
  let k = make_kernel ~page_capacity:256 ~versioned:false () in
  populate k 400;
  (* Delete most records to trigger page consolidation. *)
  let rec del i =
    if i < 400 then begin
      let txn = Kernel.begin_txn k in
      let hi = min 400 (i + 50) in
      for j = i to hi - 1 do
        if j mod 10 <> 0 then
          ok (Kernel.delete k txn ~table ~key:(Printf.sprintf "k%05d" j))
      done;
      ok (Kernel.commit k txn);
      del hi
    end
  in
  del 0;
  Alcotest.(check bool)
    "consolidations happened" true
    (Dc.consolidations (Kernel.dc k) > 0);
  let rows = snapshot k ~table in
  Alcotest.(check int) "survivors" 40 (List.length rows);
  check_wellformed k

(* --- partial failures ------------------------------------------------ *)

let test_dc_crash_recovery () =
  let k = make_kernel () in
  populate k 300;
  Kernel.crash_dc k;
  check_wellformed k;
  Alcotest.(check (list (pair string string)))
    "all rows after DC crash" (expected 300) (snapshot k ~table);
  (* the kernel still works *)
  put k ~table "post" "crash";
  Alcotest.(check (option string)) "new write" (Some "crash")
    (get k ~table "post")

let populate_more k = put k ~table "zz-extra" "extra"

let test_dc_crash_after_checkpoint () =
  let k = make_kernel () in
  populate k 300;
  Kernel.quiesce k;
  Alcotest.(check bool) "checkpoint granted" true (Kernel.checkpoint k);
  populate_more k;
  Kernel.crash_dc k;
  check_wellformed k;
  Alcotest.(check (option string))
    "pre-checkpoint row" (Some "v00123")
    (get k ~table "k00123");
  Alcotest.(check (option string))
    "post-checkpoint row" (Some "extra") (get k ~table "zz-extra")


let test_tc_crash_losers_rolled_back () =
  let k = make_kernel () in
  put k ~table "a" "committed";
  (* A transaction that never commits, then the TC crashes. *)
  let txn = Kernel.begin_txn k in
  ok (Kernel.update k txn ~table ~key:"a" ~value:"uncommitted");
  ok (Kernel.insert k txn ~table ~key:"loser" ~value:"x");
  Kernel.quiesce k;
  Kernel.crash_tc k;
  Alcotest.(check (option string))
    "loser update rolled back" (Some "committed") (get k ~table "a");
  Alcotest.(check (option string)) "loser insert gone" None
    (get k ~table "loser");
  check_wellformed k

let test_tc_crash_committed_survive () =
  let k = make_kernel () in
  populate k 120;
  Kernel.crash_tc k;
  Alcotest.(check (list (pair string string)))
    "committed rows survive TC crash" (expected 120) (snapshot k ~table)

let test_tc_crash_draconian () =
  let k = make_kernel ~tc_reset_mode:Dc.Complete () in
  populate k 120;
  let txn = Kernel.begin_txn k in
  ok (Kernel.update k txn ~table ~key:"k00005" ~value:"dirty");
  Kernel.quiesce k;
  Kernel.crash_tc k;
  Alcotest.(check (option string))
    "draconian reset keeps committed" (Some "v00005")
    (get k ~table "k00005");
  check_wellformed k

let test_crash_both () =
  let k = make_kernel () in
  populate k 150;
  let txn = Kernel.begin_txn k in
  ok (Kernel.update k txn ~table ~key:"k00007" ~value:"dirty");
  Kernel.quiesce k;
  Kernel.crash_both k;
  Alcotest.(check (option string))
    "loser gone after double crash" (Some "v00007")
    (get k ~table "k00007");
  Alcotest.(check (list (pair string string)))
    "all committed rows" (expected 150) (snapshot k ~table)

let test_chaotic_transport () =
  (* Exactly-once under loss, duplication, reordering (E10's property). *)
  let k = make_kernel ~policy:Transport.chaotic ~seed:99 () in
  populate k 200;
  committed k
    [ (fun txn -> Kernel.update k txn ~table ~key:"k00050" ~value:"once") ];
  Kernel.quiesce k;
  Alcotest.(check (option string)) "update applied once" (Some "once")
    (get k ~table "k00050");
  let rows = snapshot k ~table in
  Alcotest.(check int) "no phantom duplicates" 200 (List.length rows);
  Alcotest.(check bool) "transport actually dropped/duplicated" true
    (Transport.dropped (Kernel.transport k) > 0
    || Transport.duplicated (Kernel.transport k) > 0);
  check_wellformed k

let suite =
  [
    Alcotest.test_case "crud" `Quick test_crud;
    Alcotest.test_case "own reads" `Quick test_txn_isolation_own_reads;
    Alcotest.test_case "abort rolls back (versioned)" `Quick
      test_abort_rolls_back;
    Alcotest.test_case "abort rolls back (unversioned)" `Quick
      test_abort_unversioned;
    Alcotest.test_case "duplicate insert fails" `Quick
      test_duplicate_insert_fails;
    Alcotest.test_case "scan" `Quick test_scan;
    Alcotest.test_case "splits under load" `Quick test_many_records_splits;
    Alcotest.test_case "deletes consolidate" `Quick test_deletes_consolidate;
    Alcotest.test_case "DC crash recovery" `Quick test_dc_crash_recovery;
    Alcotest.test_case "DC crash after checkpoint" `Quick
      test_dc_crash_after_checkpoint;
    Alcotest.test_case "TC crash rolls back losers" `Quick
      test_tc_crash_losers_rolled_back;
    Alcotest.test_case "TC crash keeps committed" `Quick
      test_tc_crash_committed_survive;
    Alcotest.test_case "TC crash draconian reset" `Quick
      test_tc_crash_draconian;
    Alcotest.test_case "both crash" `Quick test_crash_both;
    Alcotest.test_case "chaotic transport exactly-once" `Quick
      test_chaotic_transport;
  ]
