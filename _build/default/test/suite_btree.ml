(* B-tree structure tests against a reference model, plus hook/event
   contracts for system transactions. *)

module Btree = Untx_btree.Btree
module Page = Untx_storage.Page
module Disk = Untx_storage.Disk
module Cache = Untx_storage.Cache
module Rng = Untx_util.Rng

let mk ?(page_capacity = 128) ?(hooks = Btree.null_hooks) () =
  let disk = Disk.create () in
  let cache = Cache.create ~disk ~capacity:1024 () in
  (Btree.create ~cache ~name:"t" ~page_capacity ~hooks, cache)

let check_ok t =
  match Btree.check t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("ill-formed: " ^ msg)

let test_empty () =
  let t, _ = mk () in
  Alcotest.(check (option string)) "find in empty" None (Btree.find t "k");
  Alcotest.(check int) "height 1" 1 (Btree.height t);
  Alcotest.(check int) "no cells" 0 (Btree.cell_count t);
  check_ok t

let test_insert_find_many () =
  let t, _ = mk () in
  let n = 500 in
  let keys = List.init n (fun i -> Printf.sprintf "k%04d" (i * 7 mod n)) in
  List.iter (fun k -> Btree.set t ~key:k ~data:("v" ^ k)) keys;
  List.iter
    (fun k ->
      Alcotest.(check (option string)) k (Some ("v" ^ k)) (Btree.find t k))
    keys;
  Alcotest.(check bool) "tree grew" true (Btree.height t > 1);
  Alcotest.(check int) "all cells" n (Btree.cell_count t);
  check_ok t

let test_update_in_place () =
  let t, _ = mk () in
  Btree.set t ~key:"k" ~data:"v1";
  Btree.set t ~key:"k" ~data:"v2";
  Alcotest.(check (option string)) "latest" (Some "v2") (Btree.find t "k");
  Alcotest.(check int) "one cell" 1 (Btree.cell_count t)

let test_remove_and_consolidate () =
  let t, _ = mk () in
  let n = 300 in
  for i = 0 to n - 1 do
    Btree.set t ~key:(Printf.sprintf "k%04d" i) ~data:"valuevalue"
  done;
  check_ok t;
  let pages_before = List.length (Btree.all_pages t) in
  for i = 0 to n - 1 do
    if i mod 5 <> 0 then
      Alcotest.(check bool) "removed" true
        (Btree.remove t (Printf.sprintf "k%04d" i))
  done;
  check_ok t;
  Alcotest.(check int) "survivors" 60 (Btree.cell_count t);
  Alcotest.(check bool) "pages reclaimed" true
    (List.length (Btree.all_pages t) < pages_before);
  Alcotest.(check bool) "consolidations counted" true
    (Btree.consolidations t > 0)

let test_remove_absent () =
  let t, _ = mk () in
  Btree.set t ~key:"a" ~data:"1";
  Alcotest.(check bool) "absent remove" false (Btree.remove t "zzz")

let test_scan_cross_pages () =
  let t, _ = mk () in
  for i = 0 to 199 do
    Btree.set t ~key:(Printf.sprintf "k%04d" i) ~data:(string_of_int i)
  done;
  let seen = ref [] in
  Btree.scan t ~from:"k0050" (fun k _ ->
      if k < "k0060" then begin
        seen := k :: !seen;
        `Continue
      end
      else `Stop);
  Alcotest.(check int) "ten keys" 10 (List.length !seen);
  Alcotest.(check string) "first" "k0050" (List.nth (List.rev !seen) 0)

let test_split_events () =
  (* Invariants are asserted inside the hook, while the pages are still
     latched — event snapshots go stale as later splits rearrange them. *)
  let count = ref 0 in
  let hooks =
    {
      Btree.on_split =
        (fun (ev : Btree.split_event) ->
          incr count;
          Alcotest.(check bool) "old below split" true
            (match Page.max_key ev.old_page with
            | Some m -> m < ev.split_key
            | None -> false);
          Alcotest.(check bool) "new at/above split" true
            (match Page.min_key ev.new_page with
            | Some m -> m >= ev.split_key
            | None -> false);
          Alcotest.(check bool) "parent routes new page" true
            (Page.find ev.parent ev.split_key
            = Some (Btree.child_data (Page.id ev.new_page))));
      on_consolidate = ignore;
    }
  in
  let t, _ = mk ~hooks () in
  for i = 0 to 99 do
    Btree.set t ~key:(Printf.sprintf "k%04d" i) ~data:"vvvvvvvv"
  done;
  Alcotest.(check bool) "events fired" true (!count > 0);
  Alcotest.(check int) "count matches" !count (Btree.splits t)

let test_consolidate_events () =
  let events = ref [] in
  let hooks =
    {
      Btree.on_split = ignore;
      on_consolidate = (fun ev -> events := ev :: !events);
    }
  in
  let t, _ = mk ~hooks () in
  for i = 0 to 199 do
    Btree.set t ~key:(Printf.sprintf "k%04d" i) ~data:"vvvvvvvv"
  done;
  for i = 0 to 199 do
    ignore (Btree.remove t (Printf.sprintf "k%04d" i))
  done;
  Alcotest.(check bool) "events fired" true (!events <> []);
  List.iter
    (fun (ev : Btree.consolidate_event) ->
      Alcotest.(check bool) "freed page key range absorbed" true
        (match (Page.min_key ev.freed_page, Page.max_key ev.survivor) with
        | Some _, Some _ | Some _, None | None, _ -> true))
    !events;
  check_ok t;
  Alcotest.(check int) "all removed" 0 (Btree.cell_count t)

let test_leaf_chain_order () =
  let t, cache = mk () in
  for i = 0 to 299 do
    Btree.set t ~key:(Printf.sprintf "k%04d" i) ~data:"dddd"
  done;
  let leaves = Btree.leaf_pages t in
  Alcotest.(check bool) "several leaves" true (List.length leaves > 2);
  (* chain covers increasing key ranges *)
  let rec walk last = function
    | [] -> ()
    | pid :: rest ->
      let page = Cache.get cache pid in
      (match (last, Page.min_key page) with
      | Some prev, Some lo ->
        Alcotest.(check bool) "increasing" true (prev < lo)
      | _ -> ());
      walk (Page.max_key page) rest
  in
  walk None leaves

let test_random_model_check () =
  (* Model-based: tree vs Map through a random op sequence, checking
     well-formedness along the way. *)
  let t, _ = mk ~page_capacity:96 () in
  let rng = Rng.create ~seed:77 in
  let model = Hashtbl.create 64 in
  for step = 1 to 2000 do
    let key = Printf.sprintf "k%03d" (Rng.int rng 200) in
    if Rng.chance rng 0.6 then begin
      let data = Printf.sprintf "v%d" step in
      Btree.set t ~key ~data;
      Hashtbl.replace model key data
    end
    else begin
      let removed = Btree.remove t key in
      Alcotest.(check bool) "remove agrees with model" (Hashtbl.mem model key)
        removed;
      Hashtbl.remove model key
    end;
    if step mod 200 = 0 then check_ok t
  done;
  check_ok t;
  Alcotest.(check int) "cardinality" (Hashtbl.length model) (Btree.cell_count t);
  Hashtbl.iter
    (fun k v ->
      Alcotest.(check (option string)) k (Some v) (Btree.find t k))
    model

let test_oversized_record_rejected () =
  let t, _ = mk ~page_capacity:64 () in
  Alcotest.check_raises "too big"
    (Invalid_argument "Btree.set: record larger than a page") (fun () ->
      Btree.set t ~key:"k" ~data:(String.make 100 'x'))

let suite =
  [
    Alcotest.test_case "empty tree" `Quick test_empty;
    Alcotest.test_case "insert/find many" `Quick test_insert_find_many;
    Alcotest.test_case "update in place" `Quick test_update_in_place;
    Alcotest.test_case "remove & consolidate" `Quick
      test_remove_and_consolidate;
    Alcotest.test_case "remove absent" `Quick test_remove_absent;
    Alcotest.test_case "scan across pages" `Quick test_scan_cross_pages;
    Alcotest.test_case "split events" `Quick test_split_events;
    Alcotest.test_case "consolidate events" `Quick test_consolidate_events;
    Alcotest.test_case "leaf chain order" `Quick test_leaf_chain_order;
    Alcotest.test_case "random ops vs model" `Quick test_random_model_check;
    Alcotest.test_case "oversized record rejected" `Quick
      test_oversized_record_rejected;
  ]
