(* Multi-TC / multi-DC deployments: the Section 6 sharing machinery and
   the Section 6.3 movie scenario. *)

module Deploy = Untx_cloud.Deploy
module Movie = Untx_cloud.Movie
module Two_pc = Untx_cloud.Two_pc
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Mono = Untx_baseline.Mono

let ok = function
  | `Ok v -> v
  | `Blocked -> Alcotest.fail "unexpected `Blocked"
  | `Fail m -> Alcotest.fail ("unexpected `Fail: " ^ m)

let res = function Ok v -> v | Error m -> Alcotest.fail m

(* --- basic multi-TC sharing on one DC ------------------------------- *)

(* Two updater TCs own disjoint key partitions of one shared versioned
   table; a third reads committed data without locks. *)
let shared_deploy () =
  let d = Deploy.create () in
  ignore (Deploy.add_dc d ~name:"dc1" Dc.default_config);
  Deploy.create_table d ~dc:"dc1" ~name:"shared" ~versioned:true;
  let add i =
    let tc = Deploy.add_tc d ~name:(Printf.sprintf "tc%d" i)
        (Tc.default_config (Tc_id.of_int i)) in
    Tc.map_table tc ~table:"shared" ~dc:"dc1" ~versioned:true;
    tc
  in
  (d, add 1, add 2, add 3)

let put tc table key value =
  let txn = Tc.begin_txn tc in
  ok (Tc.insert tc txn ~table ~key ~value);
  ok (Tc.commit tc txn)

let test_two_writers_disjoint () =
  let _, tc1, tc2, tc3 = shared_deploy () in
  (* tc1 owns keys a*, tc2 owns keys b* — interleaved on shared pages *)
  for i = 0 to 20 do
    put tc1 "shared" (Printf.sprintf "a%03d" i) "from1";
    put tc2 "shared" (Printf.sprintf "b%03d" i) "from2"
  done;
  Alcotest.(check (option string))
    "reader sees tc1 data" (Some "from1")
    (Tc.read_committed tc3 ~table:"shared" ~key:"a005");
  Alcotest.(check (option string))
    "reader sees tc2 data" (Some "from2")
    (Tc.read_committed tc3 ~table:"shared" ~key:"b005")

let test_read_committed_vs_dirty () =
  let _, tc1, _, tc3 = shared_deploy () in
  put tc1 "shared" "k" "v0";
  let txn = Tc.begin_txn tc1 in
  ok (Tc.update tc1 txn ~table:"shared" ~key:"k" ~value:"v1");
  Tc.quiesce tc1;
  (* uncommitted: committed readers see the before-version, dirty
     readers see the new one *)
  Alcotest.(check (option string))
    "read committed sees before" (Some "v0")
    (Tc.read_committed tc3 ~table:"shared" ~key:"k");
  Alcotest.(check (option string))
    "dirty read sees current" (Some "v1")
    (Tc.read_dirty tc3 ~table:"shared" ~key:"k");
  ok (Tc.commit tc1 txn);
  Alcotest.(check (option string))
    "after commit both see new" (Some "v1")
    (Tc.read_committed tc3 ~table:"shared" ~key:"k")

let test_uncommitted_insert_invisible_committed () =
  let _, tc1, _, tc3 = shared_deploy () in
  let txn = Tc.begin_txn tc1 in
  ok (Tc.insert tc1 txn ~table:"shared" ~key:"fresh" ~value:"x");
  Tc.quiesce tc1;
  Alcotest.(check (option string))
    "null before-version hides insert" None
    (Tc.read_committed tc3 ~table:"shared" ~key:"fresh");
  Alcotest.(check (option string))
    "dirty read sees it" (Some "x")
    (Tc.read_dirty tc3 ~table:"shared" ~key:"fresh");
  Tc.abort tc1 txn ~reason:"test"

let test_tc_crash_leaves_others_alone () =
  let d, tc1, tc2, tc3 = shared_deploy () in
  for i = 0 to 30 do
    put tc1 "shared" (Printf.sprintf "a%03d" i) "one";
    put tc2 "shared" (Printf.sprintf "b%03d" i) "two"
  done;
  (* tc1 leaves an uncommitted update, then dies *)
  let txn = Tc.begin_txn tc1 in
  ok (Tc.update tc1 txn ~table:"shared" ~key:"a010" ~value:"dirty");
  Tc.quiesce tc1;
  Deploy.crash_tc d "tc1";
  (* tc2's data untouched, tc1's loser rolled back *)
  Alcotest.(check (option string))
    "tc2 data intact" (Some "two")
    (Tc.read_committed tc3 ~table:"shared" ~key:"b010");
  Alcotest.(check (option string))
    "tc1 loser rolled back" (Some "one")
    (Tc.read_committed tc3 ~table:"shared" ~key:"a010")

let test_dc_crash_multi_tc () =
  let d, tc1, tc2, tc3 = shared_deploy () in
  for i = 0 to 30 do
    put tc1 "shared" (Printf.sprintf "a%03d" i) "one";
    put tc2 "shared" (Printf.sprintf "b%03d" i) "two"
  done;
  Deploy.crash_dc d "dc1";
  Alcotest.(check (option string))
    "tc1 data recovered" (Some "one")
    (Tc.read_committed tc3 ~table:"shared" ~key:"a007");
  Alcotest.(check (option string))
    "tc2 data recovered" (Some "two")
    (Tc.read_committed tc3 ~table:"shared" ~key:"b007")

(* --- the movie scenario --------------------------------------------- *)

let test_movie_workloads () =
  let m = Movie.create ~n_user_tcs:2 ~n_movie_dcs:2 () in
  Movie.seed_movies m 10;
  Movie.seed_users m 8;
  (* W2: several users review movie 3 *)
  List.iter
    (fun uid ->
      res (Movie.w2_add_review m ~uid ~mid:3 ~text:(Printf.sprintf "r%d" uid)))
    [ 0; 1; 2; 5 ];
  res (Movie.w2_add_review m ~uid:2 ~mid:7 ~text:"other-movie");
  Deploy.quiesce (Movie.deploy m);
  (* W1: all reviews for movie 3, clustered on one DC *)
  let reviews = Movie.w1_reviews_for_movie m ~mid:3 ~mode:`Committed in
  Alcotest.(check int) "movie 3 has 4 reviews" 4 (List.length reviews);
  (* W4: user 2's reviews from the user-clustered copy *)
  let mine = Movie.w4_my_reviews m ~uid:2 in
  Alcotest.(check int) "user 2 wrote 2 reviews" 2 (List.length mine);
  (* W3: profile update *)
  res (Movie.w3_update_profile m ~uid:5 ~profile:"updated");
  Alcotest.(check int)
    "w1 unaffected by w3" 4
    (List.length (Movie.w1_reviews_for_movie m ~mid:3 ~mode:`Committed))

let test_movie_tc_crash () =
  let m = Movie.create ~n_user_tcs:2 ~n_movie_dcs:2 () in
  Movie.seed_movies m 4;
  Movie.seed_users m 4;
  res (Movie.w2_add_review m ~uid:0 ~mid:1 ~text:"committed0");
  res (Movie.w2_add_review m ~uid:1 ~mid:1 ~text:"committed1");
  Deploy.quiesce (Movie.deploy m);
  Movie.crash_user_tc m 0;
  let reviews = Movie.w1_reviews_for_movie m ~mid:1 ~mode:`Committed in
  Alcotest.(check int) "both committed reviews survive" 2
    (List.length reviews);
  (* the crashed TC keeps working *)
  res (Movie.w2_add_review m ~uid:0 ~mid:2 ~text:"after-crash");
  Alcotest.(check int) "post-crash review visible" 1
    (List.length (Movie.w1_reviews_for_movie m ~mid:2 ~mode:`Committed))

(* --- 2PC baseline ----------------------------------------------------- *)

let test_two_pc () =
  let t =
    Two_pc.create ~partitions:[ "p0"; "p1"; "p2" ] Mono.default_config
  in
  Two_pc.create_table t ~name:"kv";
  let d = Two_pc.begin_dtxn t in
  res (Two_pc.write t d ~table:"kv" ~key:"alpha" ~value:"1");
  res (Two_pc.write t d ~table:"kv" ~key:"beta" ~value:"2");
  res (Two_pc.commit t d);
  let d2 = Two_pc.begin_dtxn t in
  Alcotest.(check (option string))
    "committed visible" (Some "1")
    (res (Two_pc.read t d2 ~table:"kv" ~key:"alpha"));
  Two_pc.abort t d2;
  Alcotest.(check bool) "2pc messages counted" true (Two_pc.messages t > 0)

let test_two_pc_blocking () =
  let t = Two_pc.create ~partitions:[ "p0"; "p1" ] Mono.default_config in
  Two_pc.create_table t ~name:"kv";
  (* seed so the keys exist *)
  let d0 = Two_pc.begin_dtxn t in
  res (Two_pc.write t d0 ~table:"kv" ~key:"x-block" ~value:"seed");
  res (Two_pc.commit t d0);
  let d = Two_pc.begin_dtxn t in
  res (Two_pc.write t d ~table:"kv" ~key:"x-block" ~value:"indoubt");
  Two_pc.crash_coordinator_in_doubt t d;
  Alcotest.(check int) "one txn in doubt" 1 (Two_pc.in_doubt t);
  (* another txn blocks on the in-doubt lock *)
  let d2 = Two_pc.begin_dtxn t in
  (match Two_pc.write t d2 ~table:"kv" ~key:"x-block" ~value:"waiter" with
  | Error "blocked" -> ()
  | Ok () -> Alcotest.fail "expected to block on in-doubt lock"
  | Error m -> Alcotest.fail m);
  Two_pc.abort t d2;
  Two_pc.recover_coordinator t;
  Alcotest.(check int) "resolved" 0 (Two_pc.in_doubt t);
  let d3 = Two_pc.begin_dtxn t in
  Alcotest.(check (option string))
    "in-doubt txn committed on recovery" (Some "indoubt")
    (res (Two_pc.read t d3 ~table:"kv" ~key:"x-block"));
  Two_pc.abort t d3

let suite =
  [
    Alcotest.test_case "two writers share a DC" `Quick
      test_two_writers_disjoint;
    Alcotest.test_case "read-committed vs dirty" `Quick
      test_read_committed_vs_dirty;
    Alcotest.test_case "uncommitted insert invisible" `Quick
      test_uncommitted_insert_invisible_committed;
    Alcotest.test_case "TC crash leaves other TCs alone" `Quick
      test_tc_crash_leaves_others_alone;
    Alcotest.test_case "DC crash with two TCs" `Quick test_dc_crash_multi_tc;
    Alcotest.test_case "movie workloads W1-W4" `Quick test_movie_workloads;
    Alcotest.test_case "movie TC crash" `Quick test_movie_tc_crash;
    Alcotest.test_case "2PC commit" `Quick test_two_pc;
    Alcotest.test_case "2PC blocking in doubt" `Quick test_two_pc_blocking;
  ]
