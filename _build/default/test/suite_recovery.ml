(* Crash-point sweep: run a randomized transactional workload, crash a
   component (TC, DC, or both) at a random transaction boundary or in
   the middle of an open transaction, recover, and verify the database
   equals the committed-prefix oracle.  Every seed is deterministic.

   This is the executable form of the paper's recovery guarantees:
   committed work survives any partial or total failure, uncommitted
   work never does. *)

open Helpers
module Kernel = Untx_kernel.Kernel
module Transport = Untx_kernel.Transport
module Dc = Untx_dc.Dc
module Rng = Untx_util.Rng

let table = "kv"

type crash = Crash_tc | Crash_dc | Crash_both

let apply_crash k = function
  | Crash_tc -> Kernel.crash_tc k
  | Crash_dc -> Kernel.crash_dc k
  | Crash_both -> Kernel.crash_both k

(* One scripted committed transaction: a few upserts/deletes on a small
   key space, mirrored into the oracle at commit. *)
let run_txn k oracle rng =
  let txn = Kernel.begin_txn k in
  let staged = Hashtbl.create 8 in
  let n_ops = 1 + Rng.int rng 4 in
  for _ = 1 to n_ops do
    let key = Printf.sprintf "k%02d" (Rng.int rng 40) in
    if Rng.chance rng 0.75 then begin
      let value = Printf.sprintf "v%d" (Rng.int rng 1_000_000) in
      let current =
        if Hashtbl.mem staged key then Hashtbl.find staged key
        else Option.join (Hashtbl.find_opt oracle key)
      in
      match current with
      | Some _ -> (
        match Kernel.update k txn ~table ~key ~value with
        | `Ok () -> Hashtbl.replace staged key (Some value)
        | `Fail _ | `Blocked -> ())
      | None -> (
        match Kernel.insert k txn ~table ~key ~value with
        | `Ok () -> Hashtbl.replace staged key (Some value)
        | `Fail _ | `Blocked -> ())
    end
    else begin
      match Kernel.delete k txn ~table ~key with
      | `Ok () -> Hashtbl.replace staged key None
      | `Fail _ | `Blocked -> ()
    end
  done;
  match Kernel.commit k txn with
  | `Ok () ->
    Hashtbl.iter (fun key v -> Hashtbl.replace oracle key v) staged;
    true
  | `Fail _ | `Blocked -> false

(* Leave a transaction open (uncommitted) right before the crash.  The
   handle is returned: a TC crash kills it implicitly, but after a
   DC-only crash the TC (and its locks) survive, so the sweep rolls it
   back explicitly — which itself exercises undo over a recovered DC. *)
let open_loser k rng =
  let txn = Kernel.begin_txn k in
  for _ = 1 to 1 + Rng.int rng 3 do
    let key = Printf.sprintf "k%02d" (Rng.int rng 40) in
    ignore (Kernel.update k txn ~table ~key ~value:"LOSER");
    ignore (Kernel.insert k txn ~table ~key:(key ^ "-loser") ~value:"LOSER")
  done;
  txn

let oracle_rows oracle =
  Hashtbl.fold
    (fun k v acc -> match v with Some v -> (k, v) :: acc | None -> acc)
    oracle []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sweep ~crash ~versioned ~chaotic ~seeds () =
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed in
      let policy = if chaotic then Transport.chaotic else Transport.reliable in
      let k = make_kernel ~policy ~seed ~versioned () in
      let oracle : (string, string option) Hashtbl.t = Hashtbl.create 64 in
      let txns_before_crash = 5 + Rng.int rng 20 in
      for _ = 1 to txns_before_crash do
        ignore (run_txn k oracle rng)
      done;
      (* sometimes checkpoint mid-history *)
      if Rng.chance rng 0.4 then begin
        Kernel.quiesce k;
        ignore (Kernel.checkpoint k)
      end;
      for _ = 1 to Rng.int rng 10 do
        ignore (run_txn k oracle rng)
      done;
      let loser = if Rng.chance rng 0.7 then Some (open_loser k rng) else None in
      if Rng.chance rng 0.5 then Kernel.quiesce k;
      apply_crash k crash;
      (match (crash, loser) with
      | Crash_dc, Some txn -> Kernel.abort k txn ~reason:"post-crash rollback"
      | _ -> ());
      check_wellformed k;
      let got = snapshot k ~table in
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "seed %d equals committed prefix" seed)
        (oracle_rows oracle) got;
      (* the kernel remains usable: one more committed transaction *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d still live" seed)
        true
        (run_txn k oracle rng);
      apply_crash k crash;
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "seed %d double crash" seed)
        (oracle_rows oracle) (snapshot k ~table))
    (List.init seeds (fun i -> 1000 + (i * 37)))

let suite =
  [
    Alcotest.test_case "sweep: TC crash, versioned" `Slow
      (sweep ~crash:Crash_tc ~versioned:true ~chaotic:false ~seeds:12);
    Alcotest.test_case "sweep: TC crash, unversioned" `Slow
      (sweep ~crash:Crash_tc ~versioned:false ~chaotic:false ~seeds:12);
    Alcotest.test_case "sweep: DC crash, versioned" `Slow
      (sweep ~crash:Crash_dc ~versioned:true ~chaotic:false ~seeds:12);
    Alcotest.test_case "sweep: DC crash, unversioned" `Slow
      (sweep ~crash:Crash_dc ~versioned:false ~chaotic:false ~seeds:12);
    Alcotest.test_case "sweep: both crash" `Slow
      (sweep ~crash:Crash_both ~versioned:true ~chaotic:false ~seeds:12);
    Alcotest.test_case "sweep: TC crash over chaotic transport" `Slow
      (sweep ~crash:Crash_tc ~versioned:true ~chaotic:true ~seeds:8);
    Alcotest.test_case "sweep: DC crash over chaotic transport" `Slow
      (sweep ~crash:Crash_dc ~versioned:true ~chaotic:true ~seeds:8);
  ]
