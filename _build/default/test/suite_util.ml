(* Unit tests for the utility layer: LSNs, codec, RNG, Zipf, stats. *)

module Lsn = Untx_util.Lsn
module Codec = Untx_util.Codec
module Rng = Untx_util.Rng
module Zipf = Untx_util.Zipf
module Stats = Untx_util.Stats
module Instrument = Untx_util.Instrument

let test_lsn_order () =
  let a = Lsn.of_int 3 and b = Lsn.of_int 7 in
  Alcotest.(check bool) "lt" true Lsn.(a < b);
  Alcotest.(check bool) "le" true Lsn.(a <= a);
  Alcotest.(check bool) "gt" true Lsn.(b > a);
  Alcotest.(check int) "next" 4 (Lsn.to_int (Lsn.next a));
  Alcotest.(check int) "prev" 2 (Lsn.to_int (Lsn.prev a));
  Alcotest.(check int) "prev zero" 0 (Lsn.to_int (Lsn.prev Lsn.zero));
  Alcotest.(check int) "max" 7 (Lsn.to_int (Lsn.max a b));
  Alcotest.(check int) "min" 3 (Lsn.to_int (Lsn.min a b))

let test_lsn_negative () =
  Alcotest.check_raises "negative rejected" (Invalid_argument "Lsn.of_int: negative")
    (fun () -> ignore (Lsn.of_int (-1)))

let test_codec_roundtrip () =
  let cases =
    [
      [];
      [ "" ];
      [ "a" ];
      [ "hello"; "world" ];
      [ "with:colon"; "with\x00null"; "123:456" ];
      [ String.make 1000 'x'; "" ; "y" ];
    ]
  in
  List.iter
    (fun fields ->
      Alcotest.(check (list string))
        "roundtrip" fields
        (Codec.decode (Codec.encode fields)))
    cases

let test_codec_malformed () =
  List.iter
    (fun s ->
      match Codec.decode s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted malformed %S" s)
    [ "nocolon"; "5:abc"; "-1:"; "abc:x" ]

let test_rng_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  let va = List.init 50 (fun _ -> Rng.int a 1000) in
  let vb = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" va vb;
  let c = Rng.create ~seed:124 in
  let vc = List.init 50 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed different stream" true (va <> vc)

let test_rng_chance_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.chance r 0.);
    Alcotest.(check bool) "p=1 always" true (Rng.chance r 1.)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create ~seed:9 in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 (fun i -> i)) sorted

let test_zipf_skew () =
  let r = Rng.create ~seed:11 in
  let z = Zipf.create ~n:100 ~theta:0.99 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let k = Zipf.sample z r in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 100);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 is hottest" true
    (counts.(0) > counts.(50) && counts.(0) > 1000)

let test_zipf_uniform () =
  let r = Rng.create ~seed:12 in
  let z = Zipf.create ~n:10 ~theta:0. in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Zipf.sample z r in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 700 && c < 1300))
    counts

let test_stats () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "count" 5 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.max s);
  Alcotest.(check (float 1e-9)) "p50" 3. (Stats.percentile s 50.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile s 100.);
  Alcotest.(check (float 0.01)) "stddev" (sqrt 2.) (Stats.stddev s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.)) "mean empty" 0. (Stats.mean s);
  Alcotest.(check (float 0.)) "p99 empty" 0. (Stats.percentile s 99.)

let test_instrument () =
  let i = Instrument.create () in
  Instrument.bump i "a";
  Instrument.bump i "a";
  Instrument.bump_by i "b" 5;
  Alcotest.(check int) "a" 2 (Instrument.get i "a");
  Alcotest.(check int) "b" 5 (Instrument.get i "b");
  Alcotest.(check int) "missing" 0 (Instrument.get i "zzz");
  Alcotest.(check (list (pair string int)))
    "snapshot sorted"
    [ ("a", 2); ("b", 5) ]
    (Instrument.snapshot i);
  Instrument.reset i;
  Alcotest.(check int) "after reset" 0 (Instrument.get i "a")

let suite =
  [
    Alcotest.test_case "lsn ordering" `Quick test_lsn_order;
    Alcotest.test_case "lsn rejects negatives" `Quick test_lsn_negative;
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_malformed;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng chance bounds" `Quick test_rng_chance_bounds;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "instrument counters" `Quick test_instrument;
  ]
