(* Paper-fidelity extensions: table locks, the combined watermark
   message, group commit, proactive RSSP suggestion. *)

open Helpers
module Kernel = Untx_kernel.Kernel
module Transport = Untx_kernel.Transport
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Lsn = Untx_util.Lsn

let table = "kv"

let seed_rows k n =
  let txn = Kernel.begin_txn k in
  for j = 0 to n - 1 do
    ok
      (Kernel.insert k txn ~table
         ~key:(Printf.sprintf "k%04d" j)
         ~value:(Printf.sprintf "v%04d" j))
  done;
  ok (Kernel.commit k txn)

let scan_all k =
  let txn = Kernel.begin_txn k in
  let rows = ok (Kernel.scan k txn ~table ~from_key:"" ~limit:max_int) in
  ok (Kernel.commit k txn);
  rows

let test_table_locks_agree () =
  let k = make_kernel ~cc_protocol:Tc.Table_locks () in
  seed_rows k 120;
  Alcotest.(check int) "scan complete" 120 (List.length (scan_all k));
  committed k
    [ (fun txn -> Kernel.update k txn ~table ~key:"k0003" ~value:"x") ];
  Alcotest.(check (option string)) "update under table lock" (Some "x")
    (get k ~table "k0003")

let test_table_locks_block_everything () =
  let k = make_kernel ~cc_protocol:Tc.Table_locks () in
  seed_rows k 10;
  let t1 = Kernel.begin_txn k in
  ok (Kernel.update k t1 ~table ~key:"k0001" ~value:"a");
  (* any other access to the table blocks: the coarsest protocol *)
  let t2 = Kernel.begin_txn k in
  (match Kernel.read k t2 ~table ~key:"k0009" with
  | `Blocked -> ()
  | _ -> Alcotest.fail "table lock should block unrelated reads");
  ok (Kernel.commit k t1);
  Alcotest.(check (option string))
    "t2 proceeds after release" (Some "v0009")
    (ok (Kernel.read k t2 ~table ~key:"k0009"));
  ok (Kernel.commit k t2)

let test_combined_watermarks_equivalent () =
  let run combine =
    let cfg = kernel_config () in
    let cfg =
      { cfg with Kernel.tc = { cfg.Kernel.tc with combine_watermarks = combine } }
    in
    let k = Kernel.create cfg in
    Kernel.create_table k ~name:table ~versioned:true;
    seed_rows k 150;
    Kernel.quiesce k;
    Kernel.crash_both k;
    scan_all k
  in
  Alcotest.(check (list (pair string string)))
    "same state either protocol" (run false) (run true)

let test_group_commit_durability () =
  (* With group size 4, only commits covered by a group force survive a
     TC crash — an explicit trade, and exactly-once still holds. *)
  let cfg = kernel_config () in
  let cfg = { cfg with Kernel.tc = { cfg.Kernel.tc with group_commit = 4 } } in
  let k = Kernel.create cfg in
  Kernel.create_table k ~name:table ~versioned:true;
  for i = 0 to 9 do
    committed k
      [ (fun txn ->
          Kernel.insert k txn ~table
            ~key:(Printf.sprintf "g%02d" i)
            ~value:"v") ]
  done;
  (* 10 commits, group 4: forces after #4 and #8; 9,10 not yet durable *)
  Kernel.quiesce k;
  Kernel.crash_tc k;
  let n = List.length (scan_all k) in
  Alcotest.(check int) "only group-forced commits survive" 8 n;
  check_wellformed k;
  (* far fewer forces than commits *)
  Alcotest.(check bool) "forces saved" true
    (Tc.log_forces (Kernel.tc k) < 10)

let test_proactive_rssp () =
  let k = make_kernel () in
  seed_rows k 200;
  Kernel.quiesce k;
  let dc = Kernel.dc k in
  let tc_id = Tc_id.of_int 1 in
  let before_flush = Dc.suggested_rssp dc ~tc:tc_id in
  Dc.flush_all dc;
  let after_flush = Dc.suggested_rssp dc ~tc:tc_id in
  Alcotest.(check bool)
    (Printf.sprintf "suggestion advances with flushing (%s -> %s)"
       (Lsn.to_string before_flush) (Lsn.to_string after_flush))
    true
    Lsn.(after_flush >= before_flush);
  (* a checkpoint at the suggestion succeeds immediately *)
  Alcotest.(check bool) "checkpoint at suggestion granted" true
    (Kernel.checkpoint k);
  Alcotest.(check bool) "rssp actually advanced" true
    Lsn.(Tc.rssp (Kernel.tc k) > Lsn.of_int 1)

let test_group_commit_one_is_default () =
  let k = make_kernel () in
  seed_rows k 10;
  committed k [ (fun txn -> Kernel.insert k txn ~table ~key:"zz" ~value:"v") ];
  Kernel.crash_tc k;
  Alcotest.(check (option string))
    "every commit durable at group size 1" (Some "v") (get k ~table "zz")

let suite =
  [
    Alcotest.test_case "table locks agree" `Quick test_table_locks_agree;
    Alcotest.test_case "table locks block everything" `Quick
      test_table_locks_block_everything;
    Alcotest.test_case "combined watermarks equivalent" `Quick
      test_combined_watermarks_equivalent;
    Alcotest.test_case "group commit durability trade" `Quick
      test_group_commit_durability;
    Alcotest.test_case "group commit default is per-commit" `Quick
      test_group_commit_one_is_default;
    Alcotest.test_case "proactive RSSP suggestion" `Quick test_proactive_rssp;
  ]

(* --- read-only sharing (Section 6.2.1) -------------------------------- *)

let test_sealed_table () =
  let k = make_kernel () in
  seed_rows k 30;
  Kernel.quiesce k;
  Dc.seal_table (Kernel.dc k) ~name:table;
  (* reads still fine *)
  Alcotest.(check (option string)) "read sealed" (Some "v0003")
    (get k ~table "k0003");
  (* writes rejected *)
  let txn = Kernel.begin_txn k in
  (match Kernel.insert k txn ~table ~key:"new" ~value:"x" with
  | `Ok () -> (
    (* pipelined: failure surfaces at commit *)
    match Kernel.commit k txn with
    | `Fail _ -> ()
    | _ -> Alcotest.fail "write to sealed table must fail")
  | `Fail _ -> Kernel.abort k txn ~reason:"expected"
  | `Blocked -> Alcotest.fail "blocked");
  (* the seal survives a DC crash *)
  Kernel.crash_dc k;
  let txn = Kernel.begin_txn k in
  (match Kernel.insert k txn ~table ~key:"new2" ~value:"x" with
  | `Ok () -> (
    match Kernel.commit k txn with
    | `Fail _ -> ()
    | _ -> Alcotest.fail "seal must survive recovery")
  | `Fail _ -> Kernel.abort k txn ~reason:"expected"
  | `Blocked -> Alcotest.fail "blocked");
  Alcotest.(check int) "contents intact" 30 (List.length (scan_all k))

let suite =
  suite @ [ Alcotest.test_case "sealed read-only table" `Quick test_sealed_table ]

let test_auto_checkpoint () =
  let cfg = kernel_config () in
  let cfg = { cfg with Kernel.auto_checkpoint_every = 10 } in
  let k = Kernel.create cfg in
  Kernel.create_table k ~name:table ~versioned:true;
  for i = 0 to 49 do
    committed k
      [ (fun txn ->
          Kernel.insert k txn ~table
            ~key:(Printf.sprintf "a%03d" i)
            ~value:"v") ]
  done;
  let tc = Kernel.tc k in
  Alcotest.(check bool) "rssp advanced without manual checkpoint" true
    Lsn.(Tc.rssp tc > Lsn.of_int 1);
  (* bounded redo after a crash *)
  Kernel.crash_dc k;
  Alcotest.(check int) "all rows after crash" 50 (List.length (scan_all k))

let suite =
  suite
  @ [ Alcotest.test_case "auto checkpoint" `Quick test_auto_checkpoint ]
