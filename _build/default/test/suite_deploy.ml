(* Deployment plumbing: linking order, duplicate names, message
   accounting, quiesce, partitioned routing through Deploy. *)

module Deploy = Untx_cloud.Deploy
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id

let ok = function
  | `Ok v -> v
  | `Blocked -> Alcotest.fail "blocked"
  | `Fail m -> Alcotest.fail m

let test_add_order_irrelevant () =
  (* TC added before its DCs: links are created when DCs arrive *)
  let d = Deploy.create () in
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  ignore (Deploy.add_dc d ~name:"dc1" Dc.default_config);
  Deploy.create_table d ~dc:"dc1" ~name:"t" ~versioned:true;
  Tc.map_table tc ~table:"t" ~dc:"dc1" ~versioned:true;
  let txn = Tc.begin_txn tc in
  ok (Tc.insert tc txn ~table:"t" ~key:"k" ~value:"v");
  ok (Tc.commit tc txn);
  Alcotest.(check (option string)) "works" (Some "v")
    (Tc.read_committed tc ~table:"t" ~key:"k")

let test_duplicate_names_rejected () =
  let d = Deploy.create () in
  ignore (Deploy.add_dc d ~name:"dc1" Dc.default_config);
  (match Deploy.add_dc d ~name:"dc1" Dc.default_config with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate DC accepted");
  ignore (Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)));
  match Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 2)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate TC accepted"

let test_partitioned_routing () =
  let d = Deploy.create () in
  ignore (Deploy.add_dc d ~name:"dc-a" Dc.default_config);
  ignore (Deploy.add_dc d ~name:"dc-b" Dc.default_config);
  Deploy.create_table d ~dc:"dc-a" ~name:"t" ~versioned:true;
  Deploy.create_table d ~dc:"dc-b" ~name:"t" ~versioned:true;
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  Tc.map_table_partitioned tc ~table:"t" ~versioned:true
    ~partition:(fun key -> if key < "m" then "dc-a" else "dc-b");
  let txn = Tc.begin_txn tc in
  ok (Tc.insert tc txn ~table:"t" ~key:"apple" ~value:"1");
  ok (Tc.insert tc txn ~table:"t" ~key:"zebra" ~value:"2");
  ok (Tc.commit tc txn);
  (* each record landed on its own DC *)
  let on dc key =
    List.mem_assoc key
      (List.map (fun (k, r) -> (k, r)) (Dc.dump_table (Deploy.dc d dc) "t"))
  in
  Alcotest.(check bool) "apple on dc-a" true (on "dc-a" "apple");
  Alcotest.(check bool) "apple not on dc-b" false (on "dc-b" "apple");
  Alcotest.(check bool) "zebra on dc-b" true (on "dc-b" "zebra");
  (* cross-partition transaction was atomic under one TC log *)
  Alcotest.(check (option string)) "read apple" (Some "1")
    (Tc.read_committed tc ~table:"t" ~key:"apple");
  Alcotest.(check (option string)) "read zebra" (Some "2")
    (Tc.read_committed tc ~table:"t" ~key:"zebra")

let test_message_accounting () =
  let d = Deploy.create () in
  ignore (Deploy.add_dc d ~name:"dc1" Dc.default_config);
  Deploy.create_table d ~dc:"dc1" ~name:"t" ~versioned:true;
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  Tc.map_table tc ~table:"t" ~dc:"dc1" ~versioned:true;
  let before = Deploy.messages_total d in
  let txn = Tc.begin_txn tc in
  ok (Tc.insert tc txn ~table:"t" ~key:"k" ~value:"v");
  ok (Tc.commit tc txn);
  Deploy.quiesce d;
  Alcotest.(check bool) "messages counted" true
    (Deploy.messages_total d > before)

let test_names_listing () =
  let d = Deploy.create () in
  ignore (Deploy.add_dc d ~name:"dc-z" Dc.default_config);
  ignore (Deploy.add_dc d ~name:"dc-a" Dc.default_config);
  ignore (Deploy.add_tc d ~name:"tc-b" (Tc.default_config (Tc_id.of_int 1)));
  Alcotest.(check (list string)) "dcs sorted" [ "dc-a"; "dc-z" ]
    (Deploy.dc_names d);
  Alcotest.(check (list string)) "tcs" [ "tc-b" ] (Deploy.tc_names d)

let suite =
  [
    Alcotest.test_case "link order irrelevant" `Quick test_add_order_irrelevant;
    Alcotest.test_case "duplicate names rejected" `Quick
      test_duplicate_names_rejected;
    Alcotest.test_case "partitioned routing" `Quick test_partitioned_routing;
    Alcotest.test_case "message accounting" `Quick test_message_accounting;
    Alcotest.test_case "name listing" `Quick test_names_listing;
  ]
