test/suite_ablsn.ml: Alcotest List Printf Untx_dc Untx_util
