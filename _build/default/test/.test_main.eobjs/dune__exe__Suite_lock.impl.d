test/suite_lock.ml: Alcotest Untx_tc
