test/suite_baseline.ml: Alcotest List Printf Untx_baseline
