test/suite_storage.ml: Alcotest List Option Printf String Untx_storage
