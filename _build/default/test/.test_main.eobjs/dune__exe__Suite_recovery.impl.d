test/suite_recovery.ml: Alcotest Hashtbl Helpers List Option Printf String Untx_dc Untx_kernel Untx_util
