test/suite_deploy.ml: Alcotest List Untx_cloud Untx_dc Untx_tc Untx_util
