test/suite_dc.ml: Alcotest List Printf Untx_dc Untx_msg Untx_storage Untx_util
