test/suite_btree.ml: Alcotest Hashtbl List Printf String Untx_btree Untx_storage Untx_util
