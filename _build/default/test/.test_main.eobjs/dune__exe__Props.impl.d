test/props.ml: Gen Hashtbl Helpers List Printf QCheck QCheck_alcotest String Untx_btree Untx_dc Untx_kernel Untx_storage Untx_tc Untx_util Untx_wal
