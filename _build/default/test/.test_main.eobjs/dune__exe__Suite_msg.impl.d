test/suite_msg.ml: Alcotest Format List Untx_msg Untx_util
