test/suite_transport.ml: Alcotest Helpers List Printf QCheck QCheck_alcotest Untx_kernel Untx_msg Untx_util
