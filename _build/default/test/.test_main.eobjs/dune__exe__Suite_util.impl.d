test/suite_util.ml: Alcotest Array List String Untx_util
