test/suite_tc.ml: Alcotest Helpers List Printf Untx_dc Untx_kernel Untx_tc Untx_util
