test/suite_cloud.ml: Alcotest List Printf Untx_baseline Untx_cloud Untx_dc Untx_tc Untx_util
