test/helpers.ml: Alcotest List Untx_dc Untx_kernel Untx_tc Untx_util
