test/suite_kernel.ml: Alcotest Helpers List Printf Untx_dc Untx_kernel Untx_tc
