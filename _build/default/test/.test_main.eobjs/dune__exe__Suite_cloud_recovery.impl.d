test/suite_cloud_recovery.ml: Alcotest Array Char Hashtbl List Option Printf Untx_cloud Untx_dc Untx_tc Untx_util
