test/suite_driver.ml: Alcotest Helpers Untx_baseline Untx_kernel
