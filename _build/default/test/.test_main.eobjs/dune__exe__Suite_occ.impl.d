test/suite_occ.ml: Alcotest Helpers List Printf Untx_kernel Untx_tc
