test/suite_extensions.ml: Alcotest Helpers List Printf Untx_dc Untx_kernel Untx_tc Untx_util
