test/suite_wal.ml: Alcotest List String Untx_util Untx_wal
