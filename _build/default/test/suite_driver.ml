(* The interleaved workload driver against both engines: completion
   accounting, determinism, contention handling, and cross-engine result
   agreement on contention-free workloads. *)

open Helpers
module Kernel = Untx_kernel.Kernel
module Driver = Untx_kernel.Driver
module Engine = Untx_kernel.Engine
module Mono = Untx_baseline.Mono

let mono_engine m : (module Engine.S) =
  (module struct
    type txn = Mono.txn

    let begin_txn () = Mono.begin_txn m

    let xid = Mono.xid

    let is_active = Mono.is_active

    let read txn ~table ~key = Mono.read m txn ~table ~key

    let insert txn ~table ~key ~value = Mono.insert m txn ~table ~key ~value

    let update txn ~table ~key ~value = Mono.update m txn ~table ~key ~value

    let delete txn ~table ~key = Mono.delete m txn ~table ~key

    let scan txn ~table ~from_key ~limit =
      Mono.scan m txn ~table ~from_key ~limit

    let commit txn = Mono.commit m txn

    let abort txn ~reason = Mono.abort m txn ~reason

    let wakeups () = Mono.wakeups m

    let resolve_deadlock () = Mono.resolve_deadlock m
  end)

let spec =
  {
    Driver.default_spec with
    txns = 120;
    ops_per_txn = 5;
    key_space = 400;
    concurrency = 6;
    scan_ratio = 0.1;
  }

let test_driver_on_kernel () =
  let k = make_kernel () in
  let e = Engine.of_kernel k in
  Driver.preload e spec;
  let r = Driver.run e spec in
  Alcotest.(check int) "all txns completed" spec.Driver.txns
    (r.Driver.committed + r.Driver.aborted);
  Alcotest.(check bool) "most committed" true
    (r.Driver.committed > spec.Driver.txns / 2);
  check_wellformed k

let test_driver_on_baseline () =
  let m =
    Mono.create
      { Mono.default_config with page_capacity = 256; debug_checks = true }
  in
  Mono.create_table m ~name:spec.Driver.table;
  let e = mono_engine m in
  Driver.preload e spec;
  let r = Driver.run e spec in
  Alcotest.(check int) "all txns completed" spec.Driver.txns
    (r.Driver.committed + r.Driver.aborted)

let test_driver_deterministic () =
  let run () =
    let k = make_kernel () in
    let e = Engine.of_kernel k in
    Driver.preload e spec;
    let r = Driver.run e spec in
    (r.Driver.committed, r.Driver.aborted, r.Driver.op_count)
  in
  Alcotest.(check (triple int int int)) "two identical runs" (run ()) (run ())

let test_driver_high_contention () =
  (* A tiny hot key space forces blocking and deadlocks; the driver must
     still complete every transaction. *)
  let hot =
    { spec with key_space = 8; zipf_theta = 0.9; txns = 80; concurrency = 8 }
  in
  let k = make_kernel () in
  let e = Engine.of_kernel k in
  Driver.preload e hot;
  let r = Driver.run e hot in
  Alcotest.(check int) "all completed despite contention" hot.Driver.txns
    (r.Driver.committed + r.Driver.aborted);
  Alcotest.(check bool) "contention observed" true
    (r.Driver.blocked_events > 0);
  check_wellformed k

let test_driver_serial_no_blocking () =
  let serial = { spec with concurrency = 1; txns = 50 } in
  let k = make_kernel () in
  let e = Engine.of_kernel k in
  Driver.preload e serial;
  let r = Driver.run e serial in
  Alcotest.(check int) "no blocking when serial" 0 r.Driver.blocked_events;
  Alcotest.(check int) "no deadlocks" 0 r.Driver.deadlocks;
  Alcotest.(check int) "all committed" serial.Driver.txns r.Driver.committed

let suite =
  [
    Alcotest.test_case "driver on unbundled kernel" `Quick
      test_driver_on_kernel;
    Alcotest.test_case "driver on baseline" `Quick test_driver_on_baseline;
    Alcotest.test_case "driver determinism" `Quick test_driver_deterministic;
    Alcotest.test_case "driver high contention" `Quick
      test_driver_high_contention;
    Alcotest.test_case "driver serial" `Quick test_driver_serial_no_blocking;
  ]
