(* Lock manager: modes, queues, upgrades, deadlock detection. *)

module Lock_mgr = Untx_tc.Lock_mgr

let rec_ k = Lock_mgr.Record { table = "t"; key = k }

let test_shared_compatible () =
  let l = Lock_mgr.create () in
  Alcotest.(check bool) "s1" true (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.S = `Granted);
  Alcotest.(check bool) "s2" true (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.S = `Granted);
  Alcotest.(check int) "two holders" 2 (Lock_mgr.live_locks l)

let test_exclusive_conflicts () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.X);
  Alcotest.(check bool) "x blocks s" true
    (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.S = `Blocked);
  Alcotest.(check bool) "x blocks x" true
    (Lock_mgr.acquire l ~owner:3 (rec_ "k") Lock_mgr.X = `Blocked);
  Alcotest.(check bool) "waiting" true (Lock_mgr.waiting l ~owner:2)

let test_reentrant () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.X);
  Alcotest.(check bool) "x again" true
    (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.X = `Granted);
  Alcotest.(check bool) "s under x" true
    (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.S = `Granted);
  Alcotest.(check bool) "holds covers" true
    (Lock_mgr.holds l ~owner:1 (rec_ "k") Lock_mgr.S)

let test_upgrade () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.S);
  Alcotest.(check bool) "sole holder upgrades" true
    (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.X = `Granted);
  Alcotest.(check bool) "now exclusive" true
    (Lock_mgr.holds l ~owner:1 (rec_ "k") Lock_mgr.X);
  (* a second shared holder prevents upgrade *)
  let l2 = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l2 ~owner:1 (rec_ "k") Lock_mgr.S);
  ignore (Lock_mgr.acquire l2 ~owner:2 (rec_ "k") Lock_mgr.S);
  Alcotest.(check bool) "upgrade blocked" true
    (Lock_mgr.acquire l2 ~owner:1 (rec_ "k") Lock_mgr.X = `Blocked)

let test_release_grants_waiters () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.S);
  ignore (Lock_mgr.acquire l ~owner:3 (rec_ "k") Lock_mgr.S);
  let granted = Lock_mgr.release_all l ~owner:1 in
  Alcotest.(check (list int)) "both shared waiters granted" [ 2; 3 ] granted;
  Alcotest.(check bool) "holder 2" true
    (Lock_mgr.holds l ~owner:2 (rec_ "k") Lock_mgr.S);
  Alcotest.(check bool) "holder 3" true
    (Lock_mgr.holds l ~owner:3 (rec_ "k") Lock_mgr.S)

let test_fifo_fairness () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.S);
  (* X waiter queues *)
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.X);
  (* a later S request must not starve the X waiter *)
  Alcotest.(check bool) "late S queues behind X" true
    (Lock_mgr.acquire l ~owner:3 (rec_ "k") Lock_mgr.S = `Blocked);
  let granted = Lock_mgr.release_all l ~owner:1 in
  Alcotest.(check (list int)) "x granted first" [ 2 ] granted

let test_cancel_waits () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.X);
  Lock_mgr.cancel_waits l ~owner:2;
  Alcotest.(check bool) "no longer waiting" false (Lock_mgr.waiting l ~owner:2);
  let granted = Lock_mgr.release_all l ~owner:1 in
  Alcotest.(check (list int)) "nothing granted" [] granted

let test_deadlock_detection () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "a") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "b") Lock_mgr.X);
  Alcotest.(check (option int)) "no cycle yet" None (Lock_mgr.find_deadlock l);
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "b") Lock_mgr.X);
  Alcotest.(check (option int)) "still no cycle" None (Lock_mgr.find_deadlock l);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "a") Lock_mgr.X);
  (match Lock_mgr.find_deadlock l with
  | Some victim ->
    Alcotest.(check int) "youngest is victim" 2 victim
  | None -> Alcotest.fail "cycle not found")

let test_deadlock_three_way () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "a") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "b") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:3 (rec_ "c") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "b") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "c") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:3 (rec_ "a") Lock_mgr.X);
  (match Lock_mgr.find_deadlock l with
  | Some v -> Alcotest.(check bool) "victim in cycle" true (v >= 1 && v <= 3)
  | None -> Alcotest.fail "three-way cycle not found");
  (* breaking the cycle clears detection *)
  ignore (Lock_mgr.release_all l ~owner:3);
  Alcotest.(check (option int)) "cycle broken" None (Lock_mgr.find_deadlock l)

let test_range_and_table_resources () =
  let l = Lock_mgr.create () in
  let r1 = Lock_mgr.Range { table = "t"; slot = 3 } in
  let r2 = Lock_mgr.Range { table = "t"; slot = 4 } in
  ignore (Lock_mgr.acquire l ~owner:1 r1 Lock_mgr.X);
  Alcotest.(check bool) "different slots independent" true
    (Lock_mgr.acquire l ~owner:2 r2 Lock_mgr.X = `Granted);
  Alcotest.(check bool) "same slot conflicts" true
    (Lock_mgr.acquire l ~owner:2 r1 Lock_mgr.S = `Blocked)

let suite =
  [
    Alcotest.test_case "shared compatible" `Quick test_shared_compatible;
    Alcotest.test_case "exclusive conflicts" `Quick test_exclusive_conflicts;
    Alcotest.test_case "re-entrant" `Quick test_reentrant;
    Alcotest.test_case "upgrade" `Quick test_upgrade;
    Alcotest.test_case "release grants waiters" `Quick
      test_release_grants_waiters;
    Alcotest.test_case "fifo fairness" `Quick test_fifo_fairness;
    Alcotest.test_case "cancel waits" `Quick test_cancel_waits;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "three-way deadlock" `Quick test_deadlock_three_way;
    Alcotest.test_case "range/table resources" `Quick
      test_range_and_table_resources;
  ]
