(* The monolithic baseline must provide the same transactional semantics
   through its integrated path, including full crash recovery. *)

module Mono = Untx_baseline.Mono

let table = "kv"

let ok = function
  | `Ok v -> v
  | `Blocked -> Alcotest.fail "unexpected `Blocked"
  | `Fail msg -> Alcotest.fail ("unexpected `Fail: " ^ msg)

let make () =
  let m =
    Mono.create
      { Mono.default_config with page_capacity = 256; cache_pages = 64;
        debug_checks = true }
  in
  Mono.create_table m ~name:table;
  m

let put m key value =
  let txn = Mono.begin_txn m in
  ok (Mono.insert m txn ~table ~key ~value);
  ok (Mono.commit m txn)

let get m key =
  let txn = Mono.begin_txn m in
  let v = ok (Mono.read m txn ~table ~key) in
  ok (Mono.commit m txn);
  v

let populate m n =
  let rec go i =
    if i < n then begin
      let txn = Mono.begin_txn m in
      let hi = min n (i + 50) in
      for j = i to hi - 1 do
        ok
          (Mono.insert m txn ~table
             ~key:(Printf.sprintf "k%05d" j)
             ~value:(Printf.sprintf "v%05d" j))
      done;
      ok (Mono.commit m txn);
      go hi
    end
  in
  go 0

let expected n =
  List.init n (fun j -> (Printf.sprintf "k%05d" j, Printf.sprintf "v%05d" j))

let test_crud () =
  let m = make () in
  put m "a" "1";
  Alcotest.(check (option string)) "read" (Some "1") (get m "a");
  let txn = Mono.begin_txn m in
  ok (Mono.update m txn ~table ~key:"a" ~value:"2");
  ok (Mono.commit m txn);
  Alcotest.(check (option string)) "updated" (Some "2") (get m "a");
  let txn = Mono.begin_txn m in
  ok (Mono.delete m txn ~table ~key:"a");
  ok (Mono.commit m txn);
  Alcotest.(check (option string)) "deleted" None (get m "a")

let test_abort () =
  let m = make () in
  put m "a" "old";
  let txn = Mono.begin_txn m in
  ok (Mono.update m txn ~table ~key:"a" ~value:"new");
  ok (Mono.insert m txn ~table ~key:"b" ~value:"temp");
  Mono.abort m txn ~reason:"user";
  Alcotest.(check (option string)) "restored" (Some "old") (get m "a");
  Alcotest.(check (option string)) "insert undone" None (get m "b")

let test_crash_recovery () =
  let m = make () in
  populate m 300;
  (* a loser caught in the crash *)
  let txn = Mono.begin_txn m in
  ok (Mono.update m txn ~table ~key:"k00004" ~value:"dirty");
  Mono.crash m;
  Mono.recover m;
  Alcotest.(check (option string))
    "loser rolled back" (Some "v00004") (get m "k00004");
  Alcotest.(check (list (pair string string)))
    "all committed rows" (expected 300)
    (Mono.dump_table m table);
  (match Mono.check m with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg)

let test_crash_after_checkpoint () =
  let m = make () in
  populate m 300;
  Alcotest.(check bool) "checkpoint" true (Mono.checkpoint m);
  put m "zz" "post";
  Mono.crash m;
  Mono.recover m;
  Alcotest.(check (option string)) "pre-ckpt" (Some "v00100") (get m "k00100");
  Alcotest.(check (option string)) "post-ckpt" (Some "post") (get m "zz")

let test_scan_locks () =
  let m = make () in
  populate m 50;
  let txn = Mono.begin_txn m in
  let rows = ok (Mono.scan m txn ~table ~from_key:"k00010" ~limit:5) in
  ok (Mono.commit m txn);
  Alcotest.(check int) "scan rows" 5 (List.length rows);
  Alcotest.(check string) "first" "k00010" (fst (List.hd rows))

let suite =
  [
    Alcotest.test_case "crud" `Quick test_crud;
    Alcotest.test_case "abort" `Quick test_abort;
    Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
    Alcotest.test_case "crash after checkpoint" `Quick
      test_crash_after_checkpoint;
    Alcotest.test_case "scan" `Quick test_scan_locks;
  ]
