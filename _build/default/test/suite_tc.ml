(* TC behaviours: the two range protocols, write pipelining under a
   reordering transport, checkpoint/log truncation, LWM flow, deadlock
   resolution. *)

open Helpers
module Kernel = Untx_kernel.Kernel
module Transport = Untx_kernel.Transport
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Lsn = Untx_util.Lsn

let table = "kv"

let seed_rows k n =
  let rec go i =
    if i < n then begin
      let txn = Kernel.begin_txn k in
      let hi = min n (i + 64) in
      for j = i to hi - 1 do
        ok
          (Kernel.insert k txn ~table
             ~key:(Printf.sprintf "k%04d" j)
             ~value:(Printf.sprintf "v%04d" j))
      done;
      ok (Kernel.commit k txn);
      go hi
    end
  in
  go 0

let scan_all k =
  let txn = Kernel.begin_txn k in
  let rows = ok (Kernel.scan k txn ~table ~from_key:"" ~limit:max_int) in
  ok (Kernel.commit k txn);
  rows

let test_scan_protocols_agree () =
  let run cc =
    let k = make_kernel ~cc_protocol:cc () in
    seed_rows k 150;
    scan_all k
  in
  let by_key = run Tc.Key_locks in
  let by_range = run (Tc.Range_locks 32) in
  Alcotest.(check (list (pair string string)))
    "identical results" by_key by_range;
  Alcotest.(check int) "complete" 150 (List.length by_key)

let test_range_locks_fewer_acquisitions () =
  let locks_for cc =
    let k = make_kernel ~cc_protocol:cc () in
    seed_rows k 200;
    let before = Tc.lock_acquisitions (Kernel.tc k) in
    ignore (scan_all k);
    Tc.lock_acquisitions (Kernel.tc k) - before
  in
  let key_locks = locks_for Tc.Key_locks in
  let range_locks = locks_for (Tc.Range_locks 16) in
  Alcotest.(check bool)
    (Printf.sprintf "range (%d) < key (%d)" range_locks key_locks)
    true
    (range_locks < key_locks / 4)

let test_range_locks_writes () =
  let k = make_kernel ~cc_protocol:(Tc.Range_locks 8) () in
  seed_rows k 60;
  committed k
    [ (fun txn -> Kernel.update k txn ~table ~key:"k0033" ~value:"rw") ];
  Alcotest.(check (option string)) "update under range lock" (Some "rw")
    (get k ~table "k0033")

let test_pipelined_reordered_writes () =
  (* Several non-conflicting writes of one transaction in flight at once
     over a reordering transport: the DC sees genuine out-of-LSN-order
     arrivals (Section 5.1) and the abstract LSN machinery absorbs it. *)
  let policy =
    { Transport.delay_min = 0; delay_max = 4; reorder = true;
      dup_prob = 0.05; drop_prob = 0.05 }
  in
  let k = make_kernel ~policy ~seed:1234 () in
  let txn = Kernel.begin_txn k in
  for i = 0 to 39 do
    ok
      (Kernel.insert k txn ~table
         ~key:(Printf.sprintf "p%02d" i)
         ~value:(string_of_int i))
  done;
  ok (Kernel.commit k txn);
  Kernel.quiesce k;
  let rows = scan_all k in
  Alcotest.(check int) "all present exactly once" 40 (List.length rows);
  check_wellformed k

let test_checkpoint_truncates_log () =
  let k = make_kernel () in
  seed_rows k 100;
  let tc = Kernel.tc k in
  let records_before = Tc.log_records tc in
  Kernel.quiesce k;
  Alcotest.(check bool) "granted" true (Kernel.checkpoint k);
  Alcotest.(check bool) "rssp advanced" true Lsn.(Tc.rssp tc > Lsn.of_int 1);
  Alcotest.(check bool)
    (Printf.sprintf "log shrank (%d -> %d)" records_before (Tc.log_records tc))
    true
    (Tc.log_records tc < records_before / 2)

let test_checkpoint_not_granted_before_eosl () =
  (* With a sync policy that stalls flushes, an immediate checkpoint
     request cannot be granted. *)
  let k = make_kernel ~sync_policy:Dc.Stall_until_lwm () in
  let txn = Kernel.begin_txn k in
  ok (Kernel.insert k txn ~table ~key:"k" ~value:"v");
  ok (Kernel.commit k txn);
  (* force more unacknowledged work so the LWM stays behind *)
  let txn2 = Kernel.begin_txn k in
  ok (Kernel.insert k txn2 ~table ~key:"k2" ~value:"v2");
  Kernel.quiesce k;
  ok (Kernel.commit k txn2);
  Alcotest.(check bool) "eventually granted after quiesce" true
    (Kernel.quiesce k;
     Kernel.checkpoint k)

let test_aborted_txn_after_failed_op () =
  let k = make_kernel ~versioned:false () in
  put k ~table "a" "committed";
  let txn = Kernel.begin_txn k in
  ok (Kernel.update k txn ~table ~key:"a" ~value:"x");
  (match Kernel.insert k txn ~table ~key:"a" ~value:"dup" with
  | `Fail _ -> ()
  | _ -> Alcotest.fail "dup insert must fail");
  (* the transaction can still proceed or abort cleanly *)
  Kernel.abort k txn ~reason:"test";
  Alcotest.(check (option string)) "rolled back" (Some "committed")
    (get k ~table "a")

let test_resends_counted_on_lossy_link () =
  let policy =
    { Transport.delay_min = 0; delay_max = 1; reorder = false;
      dup_prob = 0.; drop_prob = 0.3 }
  in
  let k = make_kernel ~policy ~seed:77 () in
  seed_rows k 50;
  Kernel.quiesce k;
  Alcotest.(check bool) "resends happened" true (Tc.resends (Kernel.tc k) > 0);
  Alcotest.(check int) "yet state is exact" 50 (List.length (scan_all k))

let test_wakeups_and_deadlock () =
  (* Two transactions contending: T1 holds a, wants b; T2 holds b, wants
     a.  resolve_deadlock aborts the youngest; the other completes. *)
  let k = make_kernel () in
  put k ~table "a" "0";
  put k ~table "b" "0";
  let tc = Kernel.tc k in
  let t1 = Kernel.begin_txn k in
  let t2 = Kernel.begin_txn k in
  ok (Kernel.update k t1 ~table ~key:"a" ~value:"1");
  ok (Kernel.update k t2 ~table ~key:"b" ~value:"2");
  (match Kernel.update k t1 ~table ~key:"b" ~value:"1b" with
  | `Blocked -> ()
  | _ -> Alcotest.fail "t1 should block on b");
  (match Kernel.update k t2 ~table ~key:"a" ~value:"2a" with
  | `Blocked -> ()
  | _ -> Alcotest.fail "t2 should block on a");
  (match Tc.resolve_deadlock tc with
  | Some victim -> Alcotest.(check int) "youngest dies" (Tc.xid t2) victim
  | None -> Alcotest.fail "deadlock undetected");
  Alcotest.(check bool) "t2 aborted" false (Tc.is_active t2);
  (* t1 was granted b by the victim's release *)
  let wakeups = Tc.wakeups tc in
  Alcotest.(check bool) "t1 woken" true (List.mem (Tc.xid t1) wakeups);
  ok (Kernel.update k t1 ~table ~key:"b" ~value:"1b");
  ok (Kernel.commit k t1);
  Alcotest.(check (option string)) "t1 effects" (Some "1b") (get k ~table "b");
  Alcotest.(check (option string))
    "a holds t1's committed value, not t2's" (Some "1") (get k ~table "a")

let suite =
  [
    Alcotest.test_case "scan protocols agree" `Quick test_scan_protocols_agree;
    Alcotest.test_case "range locks are fewer" `Quick
      test_range_locks_fewer_acquisitions;
    Alcotest.test_case "writes under range locks" `Quick
      test_range_locks_writes;
    Alcotest.test_case "pipelined reordered writes" `Quick
      test_pipelined_reordered_writes;
    Alcotest.test_case "checkpoint truncates log" `Quick
      test_checkpoint_truncates_log;
    Alcotest.test_case "checkpoint needs stability" `Quick
      test_checkpoint_not_granted_before_eosl;
    Alcotest.test_case "failed op then abort" `Quick
      test_aborted_txn_after_failed_op;
    Alcotest.test_case "resends on lossy link" `Quick
      test_resends_counted_on_lossy_link;
    Alcotest.test_case "wakeups and deadlock" `Quick test_wakeups_and_deadlock;
  ]
