type t = {
  mutable samples : float list;
  mutable sorted : float array option;
  mutable count : int;
  mutable total : float;
  mutable sum_sq : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  {
    samples = [];
    sorted = None;
    count = 0;
    total = 0.;
    sum_sq = 0.;
    min_v = infinity;
    max_v = neg_infinity;
  }

let add t x =
  t.samples <- x :: t.samples;
  t.sorted <- None;
  t.count <- t.count + 1;
  t.total <- t.total +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.count

let total t = t.total

let mean t = if t.count = 0 then 0. else t.total /. float_of_int t.count

let min t = if t.count = 0 then 0. else t.min_v

let max t = if t.count = 0 then 0. else t.max_v

let stddev t =
  if t.count < 2 then 0.
  else
    let n = float_of_int t.count in
    let m = t.total /. n in
    sqrt (Float.max 0. ((t.sum_sq /. n) -. (m *. m)))

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort Float.compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  let a = sorted t in
  let n = Array.length a in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
    a.(idx)

let pp_summary ppf t =
  Format.fprintf ppf "n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f"
    (count t) (mean t) (percentile t 50.) (percentile t 95.)
    (percentile t 99.) (max t)
