lib/util/codec.ml: Buffer List String
