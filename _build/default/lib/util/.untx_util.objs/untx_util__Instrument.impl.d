lib/util/instrument.ml: Format Hashtbl List String
