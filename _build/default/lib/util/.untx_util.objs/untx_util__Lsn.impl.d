lib/util/lsn.ml: Format Int Map Set Stdlib
