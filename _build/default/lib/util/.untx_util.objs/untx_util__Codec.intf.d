lib/util/codec.mli:
