lib/util/tc_id.ml: Format Int Map Set
