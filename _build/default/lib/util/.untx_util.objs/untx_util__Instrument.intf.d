lib/util/instrument.mli: Format
