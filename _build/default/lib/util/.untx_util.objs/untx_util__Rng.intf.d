lib/util/rng.mli:
