lib/util/lsn.mli: Format Map Set
