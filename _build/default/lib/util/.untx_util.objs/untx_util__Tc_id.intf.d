lib/util/tc_id.mli: Format Map Set
