lib/util/zipf.ml: Float Rng Stdlib
