(** Running statistics and simple histograms for experiment reporting. *)

type t
(** A mutable accumulator of float samples. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** Mean of the samples; [0.] when empty. *)

val min : t -> float

val max : t -> float

val stddev : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]; nearest-rank on the sorted
    samples; [0.] when empty.  O(n log n) on first call after adds. *)

val pp_summary : Format.formatter -> t -> unit
