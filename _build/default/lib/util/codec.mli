(** Length-prefixed field encoding.

    A tiny, binary-safe serialization used for page cell payloads, page
    metadata blobs and log-record size accounting.  Fields are arbitrary
    byte strings; [decode (encode fs) = fs] for every field list. *)

val encode : string list -> string

val decode : string -> string list
(** Raises [Invalid_argument] on malformed input. *)

val encode_int : int -> string

val decode_int : string -> int
