type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 64

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let bump t name = incr (cell t name)

let bump_by t name n =
  let r = cell t name in
  r := !r + n

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let snapshot t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  let items = snapshot t in
  Format.fprintf ppf "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf ppf "%-32s %d@," name v) items;
  Format.fprintf ppf "@]"

let global = create ()
