type t = int

let of_int i = i

let to_int t = t

let equal = Int.equal

let compare = Int.compare

let pp ppf t = Format.fprintf ppf "tc%d" t

let to_string t = "tc" ^ string_of_int t

module Map = Map.Make (Int)
module Set = Set.Make (Int)
