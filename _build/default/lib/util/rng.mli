(** Deterministic pseudo-random number generation.

    Every stochastic choice in the system (message reordering, workload key
    picks, crash points) draws from an explicitly seeded generator so that
    tests and experiments are exactly reproducible. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] derives an independent generator; [t] advances.  Used to give
    each component its own stream from one experiment seed. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
