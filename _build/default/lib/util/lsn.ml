type t = int

let zero = 0

let of_int i =
  if i < 0 then invalid_arg "Lsn.of_int: negative" else i

let to_int t = t

let next t = t + 1

let prev t = if t = 0 then 0 else t - 1

let compare = Int.compare

let equal = Int.equal

let ( <= ) (a : t) (b : t) = a <= b

let ( < ) (a : t) (b : t) = a < b

let ( >= ) (a : t) (b : t) = a >= b

let ( > ) (a : t) (b : t) = a > b

let max (a : t) (b : t) = Stdlib.max a b

let min (a : t) (b : t) = Stdlib.min a b

let pp ppf t = Format.fprintf ppf "lsn:%d" t

let to_string t = string_of_int t

module Set = Set.Make (Int)
module Map = Map.Make (Int)
