type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5deece66d |]

let split t =
  let seed = Random.State.bits t in
  Random.State.make [| seed; Random.State.bits t |]

let int t bound = Random.State.int t bound

let float t bound = Random.State.float t bound

let bool t = Random.State.bool t

let chance t p = p > 0. && (p >= 1. || Random.State.float t 1.0 < p)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
