(** Log sequence numbers.

    LSNs are the unique, monotonically increasing request identifiers the
    paper requires (Section 4.2, "Unique request IDs").  The same abstract
    type serves the TC log (logical operation LSNs) and, as {!Lsn.t} under
    the alias [dlsn], the DC's private structure-modification log. *)

type t

val zero : t
(** The smallest LSN; no operation ever carries it. *)

val of_int : int -> t
(** [of_int i] builds an LSN from a raw integer.  Raises [Invalid_argument]
    if [i < 0]. *)

val to_int : t -> int

val next : t -> t
(** Successor LSN. *)

val prev : t -> t
(** Predecessor LSN; [prev zero = zero]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val max : t -> t -> t

val min : t -> t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
