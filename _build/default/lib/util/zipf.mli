(** Zipfian key-popularity distribution for skewed workloads. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a Zipf distribution over ranks
    [0 .. n-1] with skew [theta] (0 = uniform; 0.99 = classic YCSB skew). *)

val sample : t -> Rng.t -> int
(** Draw a rank; rank 0 is the most popular. *)
