(** Identifiers for Transactional Component instances.

    A DC serving several TCs (Section 6) keys idempotence state — abstract
    LSNs, dedup memos, stable-log watermarks — by the originating TC. *)

type t

val of_int : int -> t

val to_int : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Map : Map.S with type key = t

module Set : Set.S with type elt = t
