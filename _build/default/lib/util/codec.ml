let encode fields =
  let buf = Buffer.create 64 in
  List.iter
    (fun f ->
      Buffer.add_string buf (string_of_int (String.length f));
      Buffer.add_char buf ':';
      Buffer.add_string buf f)
    fields;
  Buffer.contents buf

let decode s =
  let n = String.length s in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      match String.index_from_opt s pos ':' with
      | None -> invalid_arg "Codec.decode: missing length delimiter"
      | Some colon ->
        let len =
          match int_of_string_opt (String.sub s pos (colon - pos)) with
          | Some l when l >= 0 -> l
          | _ -> invalid_arg "Codec.decode: bad length"
        in
        if colon + 1 + len > n then invalid_arg "Codec.decode: truncated field";
        let field = String.sub s (colon + 1) len in
        go (colon + 1 + len) (field :: acc)
  in
  go 0 []

let encode_int i = string_of_int i

let decode_int s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> invalid_arg "Codec.decode_int"
