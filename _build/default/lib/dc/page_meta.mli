(** The recovery bookkeeping a DC page carries.

    During normal execution this lives in volatile memory beside the
    page; it is serialized into the page's metadata blob only at "page
    sync" time, atomically with a flush (Section 5.1.2).

    [dlsn] stamps the last structure-modification system transaction
    applied to the page (Section 5.2.2); [ablsns] holds one abstract LSN
    per TC with data on the page (Section 6.1.1 — pages touched by a
    single TC carry exactly one). *)

type t = {
  dlsn : Untx_util.Lsn.t;
  ablsns : Ablsn.t Untx_util.Tc_id.Map.t;
}

val empty : t

val ablsn : t -> Untx_util.Tc_id.t -> Ablsn.t
(** This TC's abstract LSN ({!Ablsn.empty} if it has no data here). *)

val encode : t -> string

val decode : string -> t
(** [decode "" = empty]; raises [Invalid_argument] on garbage. *)

val encoded_size : t -> int
