module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Codec = Untx_util.Codec

type t = { dlsn : Lsn.t; ablsns : Ablsn.t Tc_id.Map.t }

let empty = { dlsn = Lsn.zero; ablsns = Tc_id.Map.empty }

let ablsn t tc =
  match Tc_id.Map.find_opt tc t.ablsns with
  | Some ab -> ab
  | None -> Ablsn.empty

let encode t =
  let fields =
    string_of_int (Lsn.to_int t.dlsn)
    :: Tc_id.Map.fold
         (fun tc ab acc ->
           string_of_int (Tc_id.to_int tc) :: Ablsn.encode ab :: acc)
         t.ablsns []
  in
  Codec.encode fields

let decode s =
  if String.equal s "" then empty
  else
    match Codec.decode s with
    | [] -> invalid_arg "Page_meta.decode: empty"
    | dlsn :: rest ->
      let rec pairs acc = function
        | [] -> acc
        | tc :: ab :: rest ->
          pairs
            (Tc_id.Map.add
               (Tc_id.of_int (Codec.decode_int tc))
               (Ablsn.decode ab) acc)
            rest
        | [ _ ] -> invalid_arg "Page_meta.decode: odd field count"
      in
      {
        dlsn = Lsn.of_int (Codec.decode_int dlsn);
        ablsns = pairs Tc_id.Map.empty rest;
      }

let encoded_size t = String.length (encode t)
