lib/dc/dc.mli: Page_meta Smo_record Stored_record Untx_msg Untx_storage Untx_util
