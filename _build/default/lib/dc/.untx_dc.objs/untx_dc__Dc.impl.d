lib/dc/dc.ml: Ablsn Format Hashtbl List Obj Option Page_meta Smo_record Stdlib Stored_record String Untx_btree Untx_msg Untx_storage Untx_util Untx_wal
