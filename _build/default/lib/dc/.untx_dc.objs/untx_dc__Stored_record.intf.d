lib/dc/stored_record.mli: Untx_util
