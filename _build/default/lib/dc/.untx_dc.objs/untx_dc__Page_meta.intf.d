lib/dc/page_meta.mli: Ablsn Untx_util
