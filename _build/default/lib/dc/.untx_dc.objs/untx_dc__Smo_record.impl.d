lib/dc/smo_record.ml: Ablsn Format List String Untx_storage Untx_util
