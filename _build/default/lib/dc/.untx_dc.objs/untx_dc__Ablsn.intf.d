lib/dc/ablsn.mli: Format Untx_util
