lib/dc/smo_record.mli: Ablsn Format Untx_storage Untx_util
