lib/dc/stored_record.ml: String Untx_util
