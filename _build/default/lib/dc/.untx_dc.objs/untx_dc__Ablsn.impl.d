lib/dc/ablsn.ml: Format List String Untx_util
