lib/dc/page_meta.ml: Ablsn String Untx_util
