module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id

type t = {
  d : Deploy.t;
  n_user_tcs : int;
  n_movie_dcs : int;
  versioned : bool;
}

let movie_key mid = Printf.sprintf "m%06d" mid

let user_key uid = Printf.sprintf "u%06d" uid

let review_key ~mid ~uid = Printf.sprintf "%s:%s" (movie_key mid) (user_key uid)

let myreview_key ~uid ~mid = Printf.sprintf "%s:%s" (user_key uid) (movie_key mid)

let movie_dc_name i = Printf.sprintf "dc-m%d" i

let user_dc_name = "dc-u"

let updater_name i = Printf.sprintf "tc-u%d" i

let reader_name = "tc-r"

(* Partition by the movie id encoded in the key prefix "m<6 digits>". *)
let movie_partition t key =
  let mid =
    if String.length key >= 7 && key.[0] = 'm' then
      match int_of_string_opt (String.sub key 1 6) with
      | Some m -> m
      | None -> 0
    else 0
  in
  movie_dc_name (mid mod t.n_movie_dcs)

let map_tables t tc =
  Tc.map_table_partitioned tc ~table:"movies" ~versioned:t.versioned
    ~partition:(fun key -> movie_partition t key);
  Tc.map_table_partitioned tc ~table:"reviews" ~versioned:t.versioned
    ~partition:(fun key -> movie_partition t key);
  Tc.map_table tc ~table:"users" ~dc:user_dc_name ~versioned:t.versioned;
  Tc.map_table tc ~table:"myreviews" ~dc:user_dc_name ~versioned:t.versioned

let create ?policy ?seed ?counters ?(versioned = true) ~n_user_tcs
    ~n_movie_dcs () =
  if n_user_tcs <= 0 || n_movie_dcs <= 0 then
    invalid_arg "Movie.create: counts must be positive";
  let d = Deploy.create ?counters ?policy ?seed () in
  let t = { d; n_user_tcs; n_movie_dcs; versioned } in
  for i = 0 to n_movie_dcs - 1 do
    ignore (Deploy.add_dc d ~name:(movie_dc_name i) Dc.default_config)
  done;
  ignore (Deploy.add_dc d ~name:user_dc_name Dc.default_config);
  for i = 0 to n_movie_dcs - 1 do
    Deploy.create_table d ~dc:(movie_dc_name i) ~name:"movies"
      ~versioned;
    Deploy.create_table d ~dc:(movie_dc_name i) ~name:"reviews" ~versioned
  done;
  Deploy.create_table d ~dc:user_dc_name ~name:"users" ~versioned;
  Deploy.create_table d ~dc:user_dc_name ~name:"myreviews" ~versioned;
  for i = 0 to n_user_tcs - 1 do
    let tc =
      Deploy.add_tc d ~name:(updater_name i)
        (Tc.default_config (Tc_id.of_int (i + 1)))
    in
    map_tables t tc
  done;
  let reader =
    Deploy.add_tc d ~name:reader_name
      (Tc.default_config (Tc_id.of_int (n_user_tcs + 1)))
  in
  map_tables t reader;
  t

let deploy t = t.d

let updater_count t = t.n_user_tcs

let updater_for t uid = Deploy.tc t.d (updater_name (uid mod t.n_user_tcs))

let reader t = Deploy.tc t.d reader_name

(* Run [f] inside one transaction on [tc]; deadlock-free workloads here
   never block (disjoint ownership), so `Blocked is an error. *)
let in_txn tc f =
  let txn = Tc.begin_txn tc in
  let fail msg =
    Tc.abort tc txn ~reason:msg;
    Error msg
  in
  match f txn with
  | Ok () -> (
    match Tc.commit tc txn with
    | `Ok () -> Ok ()
    | `Fail msg -> Error msg
    | `Blocked -> fail "blocked at commit")
  | Error msg -> fail msg

let lift = function
  | `Ok v -> Ok v
  | `Fail msg -> Error msg
  | `Blocked -> Error "blocked"

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let seed_movies t n =
  let tc = updater_for t 0 in
  for mid = 0 to n - 1 do
    match
      in_txn tc (fun txn ->
          let* () =
            lift
              (Tc.insert tc txn ~table:"movies" ~key:(movie_key mid)
                 ~value:(Printf.sprintf "title-%d" mid))
          in
          Ok ())
    with
    | Ok () -> ()
    | Error msg -> failwith ("Movie.seed_movies: " ^ msg)
  done;
  (* the catalog never changes after load: read-only sharing
     (Section 6.2.1) lets every TC read it without coordination *)
  Tc.quiesce tc;
  for i = 0 to t.n_movie_dcs - 1 do
    Dc.seal_table (Deploy.dc t.d (movie_dc_name i)) ~name:"movies"
  done

let seed_users t n =
  for uid = 0 to n - 1 do
    let tc = updater_for t uid in
    match
      in_txn tc (fun txn ->
          let* () =
            lift
              (Tc.insert tc txn ~table:"users" ~key:(user_key uid)
                 ~value:(Printf.sprintf "profile-%d" uid))
          in
          Ok ())
    with
    | Ok () -> ()
    | Error msg -> failwith ("Movie.seed_users: " ^ msg)
  done

let w1_reviews_for_movie t ~mid ~mode =
  let tc = reader t in
  let from_key = movie_key mid ^ ":" in
  let rows =
    match mode with
    | `Committed -> Tc.scan_committed tc ~table:"reviews" ~from_key ~limit:1000
    | `Dirty -> Tc.scan_dirty tc ~table:"reviews" ~from_key ~limit:1000
  in
  List.filter
    (fun (k, _) ->
      String.length k >= String.length from_key
      && String.equal (String.sub k 0 (String.length from_key)) from_key)
    rows

let w2_add_review t ~uid ~mid ~text =
  let tc = updater_for t uid in
  in_txn tc (fun txn ->
      let* () =
        lift
          (Tc.insert tc txn ~table:"reviews" ~key:(review_key ~mid ~uid)
             ~value:text)
      in
      let* () =
        lift
          (Tc.insert tc txn ~table:"myreviews" ~key:(myreview_key ~uid ~mid)
             ~value:text)
      in
      Ok ())

let w3_update_profile t ~uid ~profile =
  let tc = updater_for t uid in
  in_txn tc (fun txn ->
      let* () =
        lift
          (Tc.update tc txn ~table:"users" ~key:(user_key uid) ~value:profile)
      in
      Ok ())

let w4_my_reviews t ~uid =
  let tc = updater_for t uid in
  let prefix = user_key uid ^ ":" in
  let txn = Tc.begin_txn tc in
  let rows =
    match Tc.scan tc txn ~table:"myreviews" ~from_key:prefix ~limit:1000 with
    | `Ok rows -> rows
    | `Blocked | `Fail _ -> []
  in
  ignore (Tc.commit tc txn);
  List.filter
    (fun (k, _) ->
      String.length k >= String.length prefix
      && String.equal (String.sub k 0 (String.length prefix)) prefix)
    rows

let crash_user_tc t i = Deploy.crash_tc t.d (updater_name (i mod t.n_user_tcs))

let messages_total t = Deploy.messages_total t.d
