lib/cloud/deploy.mli: Untx_dc Untx_kernel Untx_tc Untx_util
