lib/cloud/two_pc.mli: Untx_baseline Untx_util
