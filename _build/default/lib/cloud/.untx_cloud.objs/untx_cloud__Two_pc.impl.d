lib/cloud/two_pc.ml: Array Hashtbl List Untx_baseline Untx_util
