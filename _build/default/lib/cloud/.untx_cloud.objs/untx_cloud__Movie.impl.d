lib/cloud/movie.ml: Deploy List Printf String Untx_dc Untx_tc Untx_util
