lib/cloud/deploy.ml: Hashtbl List String Untx_dc Untx_kernel Untx_tc Untx_util
