lib/cloud/movie.mli: Deploy Untx_kernel Untx_util
