(** Classic blocking two-phase commit over partitioned monolithic
    engines — the architecture the Section 6 sharing design avoids.

    Each partition is a full {!Untx_baseline.Mono} engine.  A
    distributed transaction runs local work at every touched partition,
    then the coordinator drives prepare (each participant forces its
    log and keeps its locks) and commit (each participant commits and
    releases).  Message and force counts are modelled explicitly so E6
    can compare against the unbundled deployment, and a coordinator
    crash between the phases leaves participants in doubt with their
    locks held — the blocking the paper's versioned sharing eliminates. *)

type t

val create :
  ?counters:Untx_util.Instrument.t ->
  partitions:string list ->
  Untx_baseline.Mono.config ->
  t

val create_table : t -> name:string -> unit
(** Create the table on every partition. *)

val partition_of : t -> string -> string
(** Deterministic home partition for a key (by hash). *)

val engine : t -> string -> Untx_baseline.Mono.t

(** A distributed transaction touching one or more partitions. *)
type dtxn

val begin_dtxn : t -> dtxn

val write :
  t -> dtxn -> table:string -> key:string -> value:string ->
  (unit, string) result
(** Upsert at the key's home partition (acquires the local lock;
    [Error] on conflict for simplicity — callers retry). *)

val read : t -> dtxn -> table:string -> key:string -> (string option, string) result

val commit : t -> dtxn -> (unit, string) result
(** Full 2PC: prepare round then commit round. *)

val abort : t -> dtxn -> unit

val crash_coordinator_in_doubt : t -> dtxn -> unit
(** Simulate the coordinator failing after prepare: the transaction's
    locks stay held at every participant until {!recover_coordinator}. *)

val recover_coordinator : t -> unit
(** Resolve in-doubt transactions (commit them) and release locks. *)

val in_doubt : t -> int

val messages : t -> int
(** Coordination messages exchanged (2 per participant per commit). *)

val forces : t -> int
(** Log forces across participants (prepare + commit = 2 each). *)
