(** The cloud sharing scenario of Section 6.3 (Figure 2): an online
    movie site.

    Schema (all keys are strings; clustering is by key prefix):
    - [movies],   key ["m<mid>"]        — partitioned by movie across
      the movie DCs;
    - [reviews],  key ["m<mid>:u<uid>"] — clustered with the movie, so
      W1 reads all reviews of a movie from one DC;
    - [users],    key ["u<uid>"]        — on the user DC;
    - [myreviews], key ["u<uid>:m<mid>"] — a user-clustered copy of the
      user's reviews (a redundant physical index), so W4 reads one DC.

    Updater TCs own disjoint users (uid mod n); adding a review (W2)
    updates two DCs inside one TC-local transaction — no distributed
    commit.  The reader TC (W1) takes no locks: it uses dirty or
    versioned read-committed access to data updated by other TCs. *)

type t

val create :
  ?policy:Untx_kernel.Transport.policy ->
  ?seed:int ->
  ?counters:Untx_util.Instrument.t ->
  ?versioned:bool ->
  n_user_tcs:int ->
  n_movie_dcs:int ->
  unit ->
  t

val deploy : t -> Deploy.t

val movie_key : int -> string

val user_key : int -> string

val review_key : mid:int -> uid:int -> string

val seed_movies : t -> int -> unit
(** Insert movies 0..n-1 (committed, via updater TC 0's partitioned
    mapping). *)

val seed_users : t -> int -> unit

(** The four workloads of Section 6.3. *)

val w1_reviews_for_movie :
  t -> mid:int -> mode:[ `Committed | `Dirty ] -> (string * string) list
(** All reviews for one movie, read by the shared reader TC without
    locks. *)

val w2_add_review :
  t -> uid:int -> mid:int -> text:string -> (unit, string) result
(** One TC-local transaction spanning the movie DC and the user DC. *)

val w3_update_profile : t -> uid:int -> profile:string -> (unit, string) result

val w4_my_reviews : t -> uid:int -> (string * string) list
(** The user's own reviews from the user-clustered copy. *)

val crash_user_tc : t -> int -> unit
(** Crash+restart one updater TC; other TCs keep running (their data on
    shared DCs is untouched by the selective reset). *)

val updater_count : t -> int

val messages_total : t -> int
