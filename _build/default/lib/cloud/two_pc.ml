module Mono = Untx_baseline.Mono
module Instrument = Untx_util.Instrument

type t = {
  counters : Instrument.t;
  engines : (string, Mono.t) Hashtbl.t;
  names : string array;
  mutable msgs : int;
  mutable force_count : int;
  mutable in_doubt_txns : dtxn list;
}

and dtxn = {
  owner : t;
  mutable locals : (string * Mono.txn) list; (* participant -> local txn *)
  mutable state : [ `Active | `Prepared | `Done ];
}

let create ?(counters = Instrument.global) ~partitions config =
  if partitions = [] then invalid_arg "Two_pc.create: no partitions";
  let engines = Hashtbl.create 8 in
  List.iter
    (fun name -> Hashtbl.add engines name (Mono.create ~counters config))
    partitions;
  {
    counters;
    engines;
    names = Array.of_list partitions;
    msgs = 0;
    force_count = 0;
    in_doubt_txns = [];
  }

let create_table t ~name =
  Hashtbl.iter (fun _ m -> Mono.create_table m ~name) t.engines

let partition_of t key =
  t.names.(Hashtbl.hash key mod Array.length t.names)

let engine t name = Hashtbl.find t.engines name

let begin_dtxn t = { owner = t; locals = []; state = `Active }

let local_txn t d part =
  match List.assoc_opt part d.locals with
  | Some txn -> txn
  | None ->
    (* one message to open the branch *)
    t.msgs <- t.msgs + 1;
    let txn = Mono.begin_txn (engine t part) in
    d.locals <- (part, txn) :: d.locals;
    txn

let lift = function
  | `Ok v -> Ok v
  | `Blocked -> Error "blocked"
  | `Fail msg -> Error msg

let write t d ~table ~key ~value =
  let part = partition_of t key in
  let m = engine t part in
  let txn = local_txn t d part in
  t.msgs <- t.msgs + 1;
  match Mono.update m txn ~table ~key ~value with
  | `Ok () -> Ok ()
  | `Fail "no such key" -> lift (Mono.insert m txn ~table ~key ~value)
  | (`Blocked | `Fail _) as o -> lift o

let read t d ~table ~key =
  let part = partition_of t key in
  let m = engine t part in
  let txn = local_txn t d part in
  t.msgs <- t.msgs + 1;
  lift (Mono.read m txn ~table ~key)

let prepare t d =
  (* Phase 1: each participant forces its log and votes. *)
  List.iter
    (fun (part, _) ->
      t.msgs <- t.msgs + 2;
      (* request + vote *)
      Mono.force_log (engine t part);
      t.force_count <- t.force_count + 1)
    d.locals;
  d.state <- `Prepared

let finish t d =
  (* Phase 2: commit decision to each participant. *)
  List.iter
    (fun (part, txn) ->
      t.msgs <- t.msgs + 2;
      (match Mono.commit (engine t part) txn with
      | `Ok () -> ()
      | `Blocked | `Fail _ -> () (* decided: participants obey *));
      t.force_count <- t.force_count + 1)
    d.locals;
  d.state <- `Done

let commit t d =
  match d.state with
  | `Done -> Error "transaction already finished"
  | `Active | `Prepared ->
    prepare t d;
    (* coordinator's own decision record *)
    t.force_count <- t.force_count + 1;
    finish t d;
    Instrument.bump t.counters "twopc.commits";
    Ok ()

let abort t d =
  if d.state <> `Done then begin
    List.iter
      (fun (part, txn) ->
        t.msgs <- t.msgs + 1;
        Mono.abort (engine t part) txn ~reason:"2pc abort")
      d.locals;
    d.state <- `Done
  end

let crash_coordinator_in_doubt t d =
  prepare t d;
  (* The decision never arrives: participants keep their locks. *)
  t.in_doubt_txns <- d :: t.in_doubt_txns;
  Instrument.bump t.counters "twopc.in_doubt"

let recover_coordinator t =
  List.iter (fun d -> if d.state = `Prepared then finish t d) t.in_doubt_txns;
  t.in_doubt_txns <- []

let in_doubt t =
  List.length (List.filter (fun d -> d.state = `Prepared) t.in_doubt_txns)

let messages t = t.msgs

let forces t = t.force_count
