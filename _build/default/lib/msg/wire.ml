module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id

type request = { tc : Tc_id.t; lsn : Lsn.t; op : Op.t }

type result =
  | Done
  | Value of Op.value option
  | Pairs of (Op.key * Op.value) list
  | Next_keys of Op.key list
  | Failed of string

type reply = { lsn : Lsn.t; result : result; prior : Op.value option }

type control =
  | End_of_stable_log of { tc : Tc_id.t; eosl : Lsn.t }
  | Low_water_mark of { tc : Tc_id.t; lwm : Lsn.t }
  | Watermarks of { tc : Tc_id.t; eosl : Lsn.t; lwm : Lsn.t }
  | Checkpoint of { tc : Tc_id.t; new_rssp : Lsn.t }
  | Restart_begin of { tc : Tc_id.t; stable_lsn : Lsn.t }
  | Restart_end of { tc : Tc_id.t }
  | Redo_fence_begin of { tc : Tc_id.t }
  | Redo_fence_end of { tc : Tc_id.t }

type control_reply = Ack | Checkpoint_done of { granted : bool }

let request_size { op; _ } = 16 + Op.size op

let pp_result ppf = function
  | Done -> Format.pp_print_string ppf "done"
  | Value None -> Format.pp_print_string ppf "value:none"
  | Value (Some v) -> Format.fprintf ppf "value:%S" v
  | Pairs ps -> Format.fprintf ppf "pairs:%d" (List.length ps)
  | Next_keys ks -> Format.fprintf ppf "next-keys:%d" (List.length ks)
  | Failed msg -> Format.fprintf ppf "failed:%s" msg

let pp_request ppf { tc; lsn; op } =
  Format.fprintf ppf "[%a %a] %a" Tc_id.pp tc Lsn.pp lsn Op.pp op

let pp_control ppf = function
  | End_of_stable_log { tc; eosl } ->
    Format.fprintf ppf "eosl %a %a" Tc_id.pp tc Lsn.pp eosl
  | Low_water_mark { tc; lwm } ->
    Format.fprintf ppf "lwm %a %a" Tc_id.pp tc Lsn.pp lwm
  | Watermarks { tc; eosl; lwm } ->
    Format.fprintf ppf "watermarks %a eosl=%a lwm=%a" Tc_id.pp tc Lsn.pp eosl
      Lsn.pp lwm
  | Checkpoint { tc; new_rssp } ->
    Format.fprintf ppf "checkpoint %a rssp=%a" Tc_id.pp tc Lsn.pp new_rssp
  | Restart_begin { tc; stable_lsn } ->
    Format.fprintf ppf "restart-begin %a stable=%a" Tc_id.pp tc Lsn.pp
      stable_lsn
  | Restart_end { tc } -> Format.fprintf ppf "restart-end %a" Tc_id.pp tc
  | Redo_fence_begin { tc } ->
    Format.fprintf ppf "redo-fence-begin %a" Tc_id.pp tc
  | Redo_fence_end { tc } -> Format.fprintf ppf "redo-fence-end %a" Tc_id.pp tc
