lib/msg/wire.mli: Format Op Untx_util
