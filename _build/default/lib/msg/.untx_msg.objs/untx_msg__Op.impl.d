lib/msg/op.ml: Format List String
