lib/msg/op.mli: Format
