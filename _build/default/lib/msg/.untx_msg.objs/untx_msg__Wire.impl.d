lib/msg/wire.ml: Format List Op Untx_util
