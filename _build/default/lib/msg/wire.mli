(** Messages crossing the TC:DC boundary (the API of Section 4.2.1).

    Operation requests and replies travel over an unreliable, reorderable
    transport — they carry the unique request id (the TC-log LSN) that
    makes resend + idempotence work.  Control traffic
    ([end_of_stable_log], [low_water_mark], [checkpoint], [restart]) is
    modelled as a reliable, ordered session: in a real deployment these
    few low-rate interactions would run over a sequenced channel, and
    nothing in the paper's recovery argument depends on them being lossy. *)

type request = {
  tc : Untx_util.Tc_id.t;
  lsn : Untx_util.Lsn.t;  (** unique request id, from the TC log *)
  op : Op.t;
}

type result =
  | Done  (** write acknowledged *)
  | Value of Op.value option  (** point read *)
  | Pairs of (Op.key * Op.value) list  (** scan *)
  | Next_keys of Op.key list  (** fetch-ahead probe *)
  | Failed of string  (** semantic error (e.g. duplicate insert) *)

type reply = {
  lsn : Untx_util.Lsn.t;
  result : result;
  prior : Op.value option;
      (** for updates/deletes on unversioned tables: the value the
          operation replaced, which the TC logs as undo information *)
}

type control =
  | End_of_stable_log of { tc : Untx_util.Tc_id.t; eosl : Untx_util.Lsn.t }
  | Low_water_mark of { tc : Untx_util.Tc_id.t; lwm : Untx_util.Lsn.t }
  | Watermarks of {
      tc : Untx_util.Tc_id.t;
      eosl : Untx_util.Lsn.t;
      lwm : Untx_util.Lsn.t;
    }
      (** the combined form Section 4.2.1 suggests: "one might trade some
          flexibility in DC for simplicity of coding, by combining
          end_of_stable_log and low_water_mark into one function" *)
  | Checkpoint of { tc : Untx_util.Tc_id.t; new_rssp : Untx_util.Lsn.t }
  | Restart_begin of {
      tc : Untx_util.Tc_id.t;
      stable_lsn : Untx_util.Lsn.t;
          (** the largest LSN on the TC's stable log; the DC must discard
              any effect of this TC's operations beyond it *)
    }
  | Restart_end of { tc : Untx_util.Tc_id.t }
  | Redo_fence_begin of { tc : Untx_util.Tc_id.t }
      (** A TC is about to replay history (e.g. after this DC's own
          crash): the DC defers page-delete system transactions, whose
          abstract-LSN merges assume globally valid low-water claims. *)
  | Redo_fence_end of { tc : Untx_util.Tc_id.t }

type control_reply =
  | Ack
  | Checkpoint_done of { granted : bool }
      (** [granted = false]: some page holding operations below the
          requested redo-scan start point could not be made stable yet;
          the TC must keep its old RSSP and retry later *)

val request_size : request -> int

val pp_result : Format.formatter -> result -> unit

val pp_request : Format.formatter -> request -> unit

val pp_control : Format.formatter -> control -> unit
