module Rng = Untx_util.Rng
module Zipf = Untx_util.Zipf

type spec = {
  table : string;
  txns : int;
  ops_per_txn : int;
  read_ratio : float;
  scan_ratio : float;
  scan_limit : int;
  key_space : int;
  zipf_theta : float;
  value_size : int;
  concurrency : int;
  seed : int;
}

let default_spec =
  {
    table = "kv";
    txns = 200;
    ops_per_txn = 4;
    read_ratio = 0.5;
    scan_ratio = 0.;
    scan_limit = 10;
    key_space = 1000;
    zipf_theta = 0.;
    value_size = 16;
    concurrency = 4;
    seed = 7;
  }

type result = {
  committed : int;
  aborted : int;
  deadlocks : int;
  blocked_events : int;
  op_count : int;
  latency : Untx_util.Stats.t;
}

let key_of spec i = Printf.sprintf "k%08d" (i mod spec.key_space)

let value_of spec rng =
  String.init spec.value_size (fun _ ->
      Char.chr (Char.code 'a' + Rng.int rng 26))

type intent =
  | I_read of string
  | I_update of string * string
  | I_insert of string * string
  | I_delete of string
  | I_scan of string

let gen_script spec rng zipf =
  List.init spec.ops_per_txn (fun _ ->
      let r = Rng.float rng 1.0 in
      let key = key_of spec (Zipf.sample zipf rng) in
      if r < spec.read_ratio then I_read key
      else if r < spec.read_ratio +. spec.scan_ratio then I_scan key
      else
        let w = Rng.float rng 1.0 in
        if w < 0.85 then I_update (key, value_of spec rng)
        else if w < 0.95 then
          I_insert
            ( Printf.sprintf "x%08d" (Rng.int rng 100_000_000),
              value_of spec rng )
        else I_delete key)

module Make (E : Engine.S) = struct
  type slot = {
    mutable txn : E.txn option;
    mutable script : intent list;
    mutable parked : bool;
    mutable started_at : float;
  }

  let preload spec =
    let rng = Rng.create ~seed:(spec.seed + 1) in
    let rec batches i =
      if i < spec.key_space then begin
        let txn = E.begin_txn () in
        let hi = Stdlib.min spec.key_space (i + 128) in
        for j = i to hi - 1 do
          match
            E.insert txn ~table:spec.table ~key:(key_of spec j)
              ~value:(value_of spec rng)
          with
          | `Ok () -> ()
          | `Blocked -> failwith "Driver.preload: blocked"
          | `Fail msg -> failwith ("Driver.preload: " ^ msg)
        done;
        (match E.commit txn with
        | `Ok () -> ()
        | `Blocked | `Fail _ -> failwith "Driver.preload: commit failed");
        batches hi
      end
    in
    batches 0

  let run spec =
    let rng = Rng.create ~seed:spec.seed in
    let zipf = Zipf.create ~n:spec.key_space ~theta:spec.zipf_theta in
    let committed = ref 0 in
    let aborted = ref 0 in
    let deadlocks = ref 0 in
    let blocked_events = ref 0 in
    let op_count = ref 0 in
    let started = ref 0 in
    let latency = Untx_util.Stats.create () in
    let slots =
      Array.init
        (Stdlib.max 1 spec.concurrency)
        (fun _ -> { txn = None; script = []; parked = false; started_at = 0. })
    in
    let slot_of_xid = Hashtbl.create 16 in
    let fresh slot =
      if !started < spec.txns then begin
        let txn = E.begin_txn () in
        slot.txn <- Some txn;
        slot.script <- gen_script spec rng zipf;
        slot.parked <- false;
        slot.started_at <- Unix.gettimeofday ();
        Hashtbl.replace slot_of_xid (E.xid txn) slot;
        incr started
      end
      else begin
        slot.txn <- None;
        slot.parked <- false
      end
    in
    Array.iter fresh slots;
    let retire slot txn =
      Hashtbl.remove slot_of_xid (E.xid txn);
      fresh slot
    in
    let exec txn intent : [ `Ok | `Blocked | `Fail of string ] =
      let table = spec.table in
      match intent with
      | I_read key -> (
        match E.read txn ~table ~key with
        | `Ok _ -> `Ok
        | (`Blocked | `Fail _) as o -> o)
      | I_update (key, value) -> (
        match E.update txn ~table ~key ~value with
        | `Ok () -> `Ok
        | `Fail "no such key" -> `Ok (* deleted by churn; tolerated *)
        | (`Blocked | `Fail _) as o -> o)
      | I_insert (key, value) -> (
        match E.insert txn ~table ~key ~value with
        | `Ok () | `Fail "duplicate key" -> `Ok
        | (`Blocked | `Fail _) as o -> o)
      | I_delete key -> (
        match E.delete txn ~table ~key with
        | `Ok () -> `Ok
        | (`Blocked | `Fail _) as o -> o)
      | I_scan key -> (
        match E.scan txn ~table ~from_key:key ~limit:spec.scan_limit with
        | `Ok _ -> `Ok
        | (`Blocked | `Fail _) as o -> o)
    in
    let step slot =
      match slot.txn with
      | None -> ()
      | Some txn ->
        if not (E.is_active txn) then begin
          (* deadlock victim or auto-aborted *)
          incr aborted;
          retire slot txn
        end
        else begin
          match slot.script with
          | [] -> (
            match E.commit txn with
            | `Ok () ->
              incr committed;
              Untx_util.Stats.add latency
                ((Unix.gettimeofday () -. slot.started_at) *. 1000.);
              retire slot txn
            | `Fail _ ->
              incr aborted;
              retire slot txn
            | `Blocked -> slot.parked <- true)
          | intent :: rest -> (
            match exec txn intent with
            | `Ok ->
              incr op_count;
              slot.script <- rest
            | `Blocked ->
              incr blocked_events;
              slot.parked <- true
            | `Fail reason ->
              E.abort txn ~reason;
              incr aborted;
              retire slot txn)
        end
    in
    let finished () = Array.for_all (fun s -> s.txn = None) slots in
    let stalls = ref 0 in
    let work () = !op_count + !committed + !aborted in
    while not (finished ()) do
      let work_before = work () in
      List.iter
        (fun x ->
          match Hashtbl.find_opt slot_of_xid x with
          | Some slot -> slot.parked <- false
          | None -> ())
        (E.wakeups ());
      let ran = ref false in
      Array.iter
        (fun slot ->
          if slot.txn <> None && not slot.parked then begin
            ran := true;
            step slot
          end)
        slots;
      if not !ran then begin
        (* Everyone live is parked: a waits-for cycle, or a wakeup is
           still queued.  Ask the lock manager, then retry. *)
        (match E.resolve_deadlock () with
        | Some _victim -> incr deadlocks
        | None -> ());
        Array.iter (fun slot -> slot.parked <- false) slots
      end;
      (* Progress is measured by work done, not by steps attempted:
         blocked retries alone must eventually trip the guard. *)
      if work () > work_before then stalls := 0
      else begin
        incr stalls;
        if !stalls > 1000 then failwith "Driver.run: livelock"
      end
    done;
    {
      committed = !committed;
      aborted = !aborted;
      deadlocks = !deadlocks;
      blocked_events = !blocked_events;
      op_count = !op_count;
      latency;
    }
end

let preload (module E : Engine.S) spec =
  let module M = Make (E) in
  M.preload spec

let run (module E : Engine.S) spec =
  let module M = Make (E) in
  M.run spec
