(** Deterministic interleaved workload driver.

    Runs a key-value transaction mix against any {!Engine.S}, keeping up
    to [concurrency] transactions live and stepping them round-robin.
    A transaction whose operation returns [`Blocked] is parked until a
    lock wakeup names it; when every live transaction is parked the
    driver asks the engine to resolve the deadlock.

    All randomness (operation mix, key choice via a Zipf distribution,
    values) is derived from [seed]. *)

type spec = {
  table : string;
  txns : int;  (** transactions to complete (committed or aborted) *)
  ops_per_txn : int;
  read_ratio : float;  (** fraction of point reads among operations *)
  scan_ratio : float;  (** fraction of range scans *)
  scan_limit : int;
  key_space : int;
  zipf_theta : float;  (** 0 = uniform *)
  value_size : int;
  concurrency : int;
  seed : int;
}

val default_spec : spec

type result = {
  committed : int;
  aborted : int;
  deadlocks : int;
  blocked_events : int;
  op_count : int;  (** operations successfully executed *)
  latency : Untx_util.Stats.t;
      (** wall-clock per committed transaction, begin to commit-return *)
}

val preload : (module Engine.S) -> spec -> unit
(** Populate the key space with one committed transaction batch per 128
    keys so reads and updates find data. *)

val key_of : spec -> int -> string
(** The canonical padded key for rank [i] (exposed for verification). *)

val run : (module Engine.S) -> spec -> result
