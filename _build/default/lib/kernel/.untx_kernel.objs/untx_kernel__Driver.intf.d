lib/kernel/driver.mli: Engine Untx_util
