lib/kernel/transport.mli: Untx_msg
