lib/kernel/transport.ml: Array Int List Untx_msg Untx_util
