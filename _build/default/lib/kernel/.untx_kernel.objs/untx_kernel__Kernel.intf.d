lib/kernel/kernel.mli: Transport Untx_dc Untx_tc Untx_util
