lib/kernel/engine.ml: Kernel Untx_tc
