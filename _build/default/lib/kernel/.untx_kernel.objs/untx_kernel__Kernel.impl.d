lib/kernel/kernel.ml: Transport Untx_dc Untx_msg Untx_tc Untx_util
