lib/kernel/driver.ml: Array Char Engine Hashtbl List Printf Stdlib String Unix Untx_util
