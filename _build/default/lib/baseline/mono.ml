module Lsn = Untx_util.Lsn
module Instrument = Untx_util.Instrument
module Codec = Untx_util.Codec
module Page = Untx_storage.Page
module Page_id = Untx_storage.Page_id
module Disk = Untx_storage.Disk
module Cache = Untx_storage.Cache
module Wal = Untx_wal.Wal
module Btree = Untx_btree.Btree
module Lock_mgr = Untx_tc.Lock_mgr

type config = {
  page_capacity : int;
  cache_pages : int;
  cc_protocol : Untx_tc.Tc.cc_protocol;
  debug_checks : bool;
}

let default_config =
  {
    page_capacity = 512;
    cache_pages = 256;
    cc_protocol = Untx_tc.Tc.Key_locks;
    debug_checks = false;
  }

(* One log for everything, physiological where it matters: record
   operations carry old and new value (location is re-derived through the
   access method, whose own structure modifications are logged physically
   in the same LSN order). *)
type page_image = {
  pid : Page_id.t;
  kind : Page.kind;
  cells : (string * string) list;
  next : Page_id.t option;
  plsn : Lsn.t;
}

type log_rec =
  | Begin of { xid : int }
  | Write of {
      xid : int;
      table : string;
      key : string;
      pid : Page_id.t; (* page holding the record after the operation *)
      old_v : string option;
      new_v : string option;
    }
  | Clr of {
      xid : int;
      table : string;
      key : string;
      pid : Page_id.t;
      value : string option;
    }
  | Commit of { xid : int }
  | Abort of { xid : int }
  | Finished of { xid : int }
  | Smo_split of {
      table : string;
      old_pid : Page_id.t;
      split_key : string;
      new_image : page_image;
      parent_pid : Page_id.t;
      sep_key : string;
      new_root : page_image option;
      root : Page_id.t;
    }
  | Smo_consolidate of {
      table : string;
      survivor_image : page_image;
      freed_pid : Page_id.t;
      parent_pid : Page_id.t;
      removed_sep : string;
      new_root : Page_id.t option;
      root : Page_id.t;
    }
  | Ckpt of { rssp : Lsn.t }

let image_size img =
  List.fold_left
    (fun acc (k, d) -> acc + String.length k + String.length d + 4)
    16 img.cells

let rec_size = function
  | Begin _ | Commit _ | Abort _ | Finished _ -> 12
  | Write { table; key; old_v; new_v; _ } ->
    16 + String.length table + String.length key
    + (match old_v with Some v -> String.length v | None -> 0)
    + (match new_v with Some v -> String.length v | None -> 0)
  | Clr { table; key; value; _ } ->
    16 + String.length table + String.length key
    + (match value with Some v -> String.length v | None -> 0)
  | Smo_split { new_image; new_root; _ } ->
    32 + image_size new_image
    + (match new_root with Some i -> image_size i | None -> 0)
  | Smo_consolidate { survivor_image; _ } -> 32 + image_size survivor_image
  | Ckpt _ -> 16

type table = { t_name : string; mutable tree : Btree.t }

type txn_state = Active | Committed | Aborted

type txn = {
  t_xid : int;
  mutable state : txn_state;
  mutable first_lsn : Lsn.t;
  mutable undo : (string * string * string option) list;
      (* (table, key, value to restore) newest first *)
}

type t = {
  cfg : config;
  counters : Instrument.t;
  disk : Disk.t;
  cache : Cache.t;
  log : log_rec Wal.t;
  tables : (string, table) Hashtbl.t;
  plsns : Lsn.t Page_id.Tbl.t;
  txns : (int, txn) Hashtbl.t;
  mutable locks : Lock_mgr.t;
  wakeups : int Queue.t;
  mutable rssp : Lsn.t;
  mutable next_xid : int;
  current_table : string ref;
  mutable in_recovery : bool;
}

type 'a outcome = [ `Ok of 'a | `Blocked | `Fail of string ]

(* ------------------------------------------------------------------ *)
(* Page LSNs                                                           *)

let plsn_of_page t page =
  match Page_id.Tbl.find_opt t.plsns (Page.id page) with
  | Some l -> l
  | None ->
    let l =
      match Page.meta page with
      | "" -> Lsn.zero
      | m -> Lsn.of_int (Codec.decode_int m)
    in
    Page_id.Tbl.replace t.plsns (Page.id page) l;
    l

let stamp t page lsn =
  Page_id.Tbl.replace t.plsns (Page.id page) lsn;
  Cache.mark_dirty t.cache page

(* ------------------------------------------------------------------ *)
(* SMO hooks: same-log physical logging, classical LSN stamping        *)

let image_of t page =
  {
    pid = Page.id page;
    kind = Page.kind page;
    cells = Page.cells page;
    next = Page.next page;
    plsn = plsn_of_page t page;
  }

let on_split t (ev : Btree.split_event) =
  let table = !(t.current_table) in
  let tbl = Hashtbl.find t.tables table in
  let record =
    Smo_split
      {
        table;
        old_pid = Page.id ev.old_page;
        split_key = ev.split_key;
        new_image = image_of t ev.new_page;
        parent_pid = Page.id ev.parent;
        sep_key = ev.split_key;
        new_root =
          (if ev.new_root then Some (image_of t ev.parent) else None);
        root = Btree.root tbl.tree;
      }
  in
  let lsn = Wal.append t.log record in
  stamp t ev.old_page lsn;
  stamp t ev.new_page lsn;
  stamp t ev.parent lsn;
  Instrument.bump t.counters "mono.smo_splits"

let on_consolidate t (ev : Btree.consolidate_event) =
  let table = !(t.current_table) in
  let tbl = Hashtbl.find t.tables table in
  let record =
    Smo_consolidate
      {
        table;
        survivor_image = image_of t ev.survivor;
        freed_pid = Page.id ev.freed_page;
        parent_pid = Page.id ev.parent;
        removed_sep = ev.removed_sep;
        new_root = ev.root_collapsed_to;
        root = Btree.root tbl.tree;
      }
  in
  let lsn = Wal.append t.log record in
  (* The victim's stable image is freed right after this hook. *)
  Wal.force t.log;
  stamp t ev.survivor lsn;
  stamp t ev.parent lsn;
  Page_id.Tbl.remove t.plsns (Page.id ev.freed_page);
  Instrument.bump t.counters "mono.smo_consolidations"

let hooks_for t =
  {
    Btree.on_split = (fun ev -> on_split t ev);
    on_consolidate = (fun ev -> on_consolidate t ev);
  }

let create ?(counters = Instrument.global) cfg =
  let disk = Disk.create ~counters () in
  let cache = Cache.create ~counters ~disk ~capacity:cfg.cache_pages () in
  let t =
    {
      cfg;
      counters;
      disk;
      cache;
      log = Wal.create ~counters ~size:rec_size ();
      tables = Hashtbl.create 8;
      plsns = Page_id.Tbl.create 256;
      txns = Hashtbl.create 64;
      locks = Lock_mgr.create ();
      wakeups = Queue.create ();
      rssp = Lsn.next Lsn.zero;
      next_xid = 1;
      current_table = ref "";
      in_recovery = false;
    }
  in
  Cache.set_policy cache
    ~can_flush:(fun page -> Lsn.(plsn_of_page t page <= Wal.stable_lsn t.log))
    ~prepare_flush:(fun page ->
      Page.set_meta page (Codec.encode_int (Lsn.to_int (plsn_of_page t page))));
  t

let write_master t =
  let fields =
    Hashtbl.fold
      (fun _ tbl acc ->
        tbl.t_name
        :: string_of_int (Page_id.to_int (Btree.root tbl.tree))
        :: acc)
      t.tables []
  in
  Disk.set_master t.disk (Codec.encode fields)

let create_table t ~name =
  if not (Hashtbl.mem t.tables name) then begin
    let tbl = { t_name = name; tree = Obj.magic () } in
    Hashtbl.add t.tables name tbl;
    t.current_table := name;
    tbl.tree <-
      Btree.create ~cache:t.cache ~name ~page_capacity:t.cfg.page_capacity
        ~hooks:(hooks_for t);
    Wal.force t.log;
    write_master t
  end

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)

let xid txn = txn.t_xid

let is_active txn = txn.state = Active

let begin_txn t =
  let x = t.next_xid in
  t.next_xid <- x + 1;
  let txn = { t_xid = x; state = Active; first_lsn = Lsn.zero; undo = [] } in
  txn.first_lsn <- Wal.append t.log (Begin { xid = x });
  Hashtbl.replace t.txns x txn;
  txn

let release_locks t txn =
  List.iter
    (fun owner -> Queue.add owner t.wakeups)
    (Lock_mgr.release_all t.locks ~owner:txn.t_xid)

let wakeups t =
  let out = ref [] in
  Queue.iter (fun x -> out := x :: !out) t.wakeups;
  Queue.clear t.wakeups;
  List.rev !out

let rsrc_for t table key =
  match t.cfg.cc_protocol with
  | Untx_tc.Tc.Key_locks | Untx_tc.Tc.Optimistic ->
    (* the integrated baseline has no optimistic mode; treat as key locks *)
    Lock_mgr.Record { table; key }
  | Untx_tc.Tc.Range_locks n ->
    let b0 = if String.length key > 0 then Char.code key.[0] else 0 in
    let b1 = if String.length key > 1 then Char.code key.[1] else 0 in
    Lock_mgr.Range { table; slot = ((b0 * 256) + b1) * n / 65536 }
  | Untx_tc.Tc.Table_locks -> Lock_mgr.Table table

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl ->
    t.current_table := name;
    tbl
  | None -> invalid_arg ("Mono: unknown table " ^ name)

(* Forward-processing mutation: mutate first (SMOs log themselves), then
   log the operation physiologically (with its page id) and stamp the
   final page. *)
let mutate_and_log t txn tbl ~table ~key ~old_v ~new_v =
  (match new_v with
  | Some v -> Btree.set tbl.tree ~key ~data:v
  | None -> ignore (Btree.remove tbl.tree key));
  let leaf = Btree.find_leaf tbl.tree key in
  let lsn =
    Wal.append t.log
      (Write { xid = txn.t_xid; table; key; pid = Page.id leaf; old_v; new_v })
  in
  txn.undo <- (table, key, old_v) :: txn.undo;
  stamp t leaf lsn;
  Instrument.bump t.counters "mono.writes"

let read t txn ~table ~key =
  if txn.state <> Active then `Fail "transaction not active"
  else
    let tbl = find_table t table in
    match Lock_mgr.acquire t.locks ~owner:txn.t_xid (rsrc_for t table key) Lock_mgr.S with
    | `Blocked -> `Blocked
    | `Granted ->
      Instrument.bump t.counters "mono.reads";
      `Ok (Btree.find tbl.tree key)

let write t txn ~table ~key ~(mutate : string option -> (string option, string) result) =
  if txn.state <> Active then `Fail "transaction not active"
  else
    Cache.with_operation_latch t.cache @@ fun () ->
    let tbl = find_table t table in
    match Lock_mgr.acquire t.locks ~owner:txn.t_xid (rsrc_for t table key) Lock_mgr.X with
    | `Blocked -> `Blocked
    | `Granted -> (
      let old_v = Btree.find tbl.tree key in
      match mutate old_v with
      | Error msg -> `Fail msg
      | Ok new_v ->
        mutate_and_log t txn tbl ~table ~key ~old_v ~new_v;
        `Ok ())

let insert t txn ~table ~key ~value =
  write t txn ~table ~key ~mutate:(function
    | Some _ -> Error "duplicate key"
    | None -> Ok (Some value))

let update t txn ~table ~key ~value =
  write t txn ~table ~key ~mutate:(function
    | Some _ -> Ok (Some value)
    | None -> Error "no such key")

let delete t txn ~table ~key =
  if txn.state <> Active then `Fail "transaction not active"
  else
    Cache.with_operation_latch t.cache @@ fun () ->
    let tbl = find_table t table in
    match Lock_mgr.acquire t.locks ~owner:txn.t_xid (rsrc_for t table key) Lock_mgr.X with
    | `Blocked -> `Blocked
    | `Granted ->
      (match Btree.find tbl.tree key with
      | None -> ()
      | Some old ->
        mutate_and_log t txn tbl ~table ~key ~old_v:(Some old) ~new_v:None);
      `Ok ()

(* Integrated scan: the engine walks its own pages, taking key locks as
   it encounters records — no probe round-trips needed (the key-range
   locking advantage of Section 3.1's "existing systems" paragraph). *)
let scan t txn ~table ~from_key ~limit =
  if txn.state <> Active then `Fail "transaction not active"
  else begin
    let tbl = find_table t table in
    let results = ref [] in
    let taken = ref 0 in
    let blocked = ref false in
    Btree.scan tbl.tree ~from:from_key (fun k v ->
        if !taken >= limit then `Stop
        else
          match
            Lock_mgr.acquire t.locks ~owner:txn.t_xid (rsrc_for t table k)
              Lock_mgr.S
          with
          | `Blocked ->
            blocked := true;
            `Stop
          | `Granted ->
            results := (k, v) :: !results;
            incr taken;
            `Continue);
    if !blocked then `Blocked else `Ok (List.rev !results)
  end

let commit t txn =
  if txn.state <> Active then `Fail "transaction not active"
  else begin
    ignore (Wal.append t.log (Commit { xid = txn.t_xid }));
    Wal.force t.log;
    ignore (Wal.append t.log (Finished { xid = txn.t_xid }));
    release_locks t txn;
    txn.state <- Committed;
    Instrument.bump t.counters "mono.commits";
    `Ok ()
  end

let clr_and_apply t ~xid ~table ~key ~value =
  Cache.with_operation_latch t.cache @@ fun () ->
  let tbl = find_table t table in
  (match value with
  | Some v -> Btree.set tbl.tree ~key ~data:v
  | None -> ignore (Btree.remove tbl.tree key));
  let leaf = Btree.find_leaf tbl.tree key in
  let lsn = Wal.append t.log (Clr { xid; table; key; pid = Page.id leaf; value }) in
  stamp t leaf lsn

let rollback t txn =
  List.iter
    (fun (table, key, value) ->
      clr_and_apply t ~xid:txn.t_xid ~table ~key ~value)
    txn.undo

let abort t txn ~reason =
  ignore reason;
  if txn.state = Active then begin
    Lock_mgr.cancel_waits t.locks ~owner:txn.t_xid;
    ignore (Wal.append t.log (Abort { xid = txn.t_xid }));
    rollback t txn;
    ignore (Wal.append t.log (Finished { xid = txn.t_xid }));
    release_locks t txn;
    txn.state <- Aborted;
    Instrument.bump t.counters "mono.aborts"
  end

let resolve_deadlock t =
  match Lock_mgr.find_deadlock t.locks with
  | None -> None
  | Some victim -> (
    match Hashtbl.find_opt t.txns victim with
    | Some txn when txn.state = Active ->
      abort t txn ~reason:"deadlock victim";
      Some victim
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)

let force_log t = Wal.force t.log

let checkpoint t =
  Wal.force t.log;
  Cache.flush_all t.cache;
  if Cache.dirty_pages t.cache = [] then begin
    let target = Wal.stable_lsn t.log in
    t.rssp <- target;
    ignore (Wal.append t.log (Ckpt { rssp = target }));
    Wal.force t.log;
    write_master t;
    let oldest_active =
      Hashtbl.fold
        (fun _ txn acc ->
          if txn.state = Active then Lsn.min acc txn.first_lsn else acc)
        t.txns target
    in
    Wal.truncate t.log (Lsn.min target oldest_active);
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Crash / recovery: everything dies together                          *)

let crash t =
  Wal.crash t.log;
  Cache.crash t.cache;
  Page_id.Tbl.reset t.plsns;
  Hashtbl.reset t.txns;
  t.locks <- Lock_mgr.create ();
  Queue.clear t.wakeups

let read_master t =
  match Disk.master t.disk with
  | None -> []
  | Some blob ->
    let rec pairs acc = function
      | [] -> List.rev acc
      | name :: root :: rest ->
        pairs ((name, Page_id.of_int (Codec.decode_int root)) :: acc) rest
      | _ -> invalid_arg "Mono: corrupt master record"
    in
    pairs [] (Codec.decode blob)

let ensure_page t pid ~kind =
  match Cache.lookup t.cache pid with
  | Some page -> page
  | None ->
    let page = Page.create ~id:pid ~kind ~capacity:t.cfg.page_capacity in
    Cache.install t.cache page;
    page

let install_image t (img : page_image) lsn =
  let newer =
    match Cache.lookup t.cache img.pid with
    | None -> false
    | Some page -> Lsn.(plsn_of_page t page >= lsn)
  in
  if not newer then begin
    let page =
      Page.create ~id:img.pid ~kind:img.kind ~capacity:t.cfg.page_capacity
    in
    Page.replace_cells page img.cells;
    Page.set_next page img.next;
    Cache.install t.cache page;
    stamp t page lsn
  end

let redo t lsn record =
  match record with
  | Write { key; pid; new_v; _ } | Clr { key; pid; value = new_v; _ } ->
    (* Physiological redo: straight to the page named by the record; the
       page-LSN test is sound because in an integrated engine the LSN was
       assigned inside the page's critical section. *)
    let page = ensure_page t pid ~kind:Page.Leaf in
    if Lsn.(plsn_of_page t page < lsn) then begin
      (match new_v with
      | Some v -> Page.set page ~key ~data:v
      | None -> ignore (Page.remove page key));
      stamp t page lsn
    end
  | Smo_split { table; old_pid; split_key; new_image; parent_pid; sep_key;
                new_root; root; _ } -> (
    match Hashtbl.find_opt t.tables table with
    | None -> ()
    | Some tbl ->
      let old_page =
        ensure_page t old_pid
          ~kind:(match new_image.kind with k -> k)
      in
      if Lsn.(plsn_of_page t old_page < lsn) then begin
        let doomed =
          List.filter_map
            (fun (k, _) ->
              if String.compare k split_key >= 0 then Some k else None)
            (Page.cells old_page)
        in
        List.iter (fun k -> ignore (Page.remove old_page k)) doomed;
        if Page.kind old_page = Page.Leaf then
          Page.set_next old_page (Some new_image.pid);
        stamp t old_page lsn
      end;
      install_image t new_image lsn;
      (match new_root with
      | Some root_img -> install_image t root_img lsn
      | None ->
        let parent = ensure_page t parent_pid ~kind:Page.Inner in
        if Lsn.(plsn_of_page t parent < lsn) then begin
          Page.set parent ~key:sep_key ~data:(Btree.child_data new_image.pid);
          stamp t parent lsn
        end);
      Btree.set_root tbl.tree root)
  | Smo_consolidate { table; survivor_image; freed_pid; parent_pid;
                      removed_sep; new_root; root } -> (
    match Hashtbl.find_opt t.tables table with
    | None -> ()
    | Some tbl ->
      install_image t survivor_image lsn;
      Cache.free_page t.cache freed_pid;
      Page_id.Tbl.remove t.plsns freed_pid;
      (match new_root with
      | Some _ ->
        Cache.free_page t.cache parent_pid;
        Page_id.Tbl.remove t.plsns parent_pid
      | None ->
        let parent = ensure_page t parent_pid ~kind:Page.Inner in
        if Lsn.(plsn_of_page t parent < lsn) then begin
          ignore (Page.remove parent removed_sep);
          stamp t parent lsn
        end);
      Btree.set_root tbl.tree root)
  | Begin _ | Commit _ | Abort _ | Finished _ | Ckpt _ -> ()

let recover t =
  Cache.with_operation_latch t.cache @@ fun () ->
  t.in_recovery <- true;
  (* Catalog. *)
  Hashtbl.reset t.tables;
  List.iter
    (fun (name, root) ->
      let tbl = { t_name = name; tree = Obj.magic () } in
      Hashtbl.add t.tables name tbl;
      tbl.tree <-
        Btree.attach ~cache:t.cache ~name ~page_capacity:t.cfg.page_capacity
          ~hooks:(hooks_for t) ~root)
    (read_master t);
  Hashtbl.iter
    (fun _ tbl -> ignore (ensure_page t (Btree.root tbl.tree) ~kind:Page.Leaf))
    t.tables;
  (* Analysis. *)
  let losers : (int, (string * string * string option) list) Hashtbl.t =
    Hashtbl.create 32
  in
  let rssp = ref t.rssp in
  Wal.iter_from t.log Lsn.zero (fun _ record ->
      match record with
      | Begin { xid } -> Hashtbl.replace losers xid []
      | Write { xid; table; key; old_v; _ } -> (
        match Hashtbl.find_opt losers xid with
        | Some undo -> Hashtbl.replace losers xid ((table, key, old_v) :: undo)
        | None -> Hashtbl.replace losers xid [ (table, key, old_v) ])
      (* A stable Commit decides the transaction even if its Finished
         record was lost with the log tail. *)
      | Commit { xid } | Finished { xid } -> Hashtbl.remove losers xid
      | Ckpt { rssp = r } -> rssp := Lsn.max !rssp r
      | Abort _ | Clr _ | Smo_split _ | Smo_consolidate _ -> ());
  t.rssp <- !rssp;
  Hashtbl.iter (fun x _ -> if x >= t.next_xid then t.next_xid <- x + 1) losers;
  (* Redo: repeat history in original order, one log. *)
  Wal.iter_from t.log t.rssp (fun lsn record -> redo t lsn record);
  (* Undo losers with CLRs. *)
  Hashtbl.iter
    (fun x undo ->
      List.iter
        (fun (table, key, value) -> clr_and_apply t ~xid:x ~table ~key ~value)
        undo;
      ignore (Wal.append t.log (Finished { xid = x })))
    losers;
  Wal.force t.log;
  t.in_recovery <- false;
  if t.cfg.debug_checks then
    Hashtbl.iter
      (fun name tbl ->
        match Btree.check tbl.tree with
        | Ok () -> ()
        | Error msg -> failwith ("Mono.recover: " ^ name ^ ": " ^ msg))
      t.tables

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let check t =
  Hashtbl.fold
    (fun name tbl acc ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
        match Btree.check tbl.tree with
        | Ok () -> Ok ()
        | Error msg -> Error (name ^ ": " ^ msg)))
    t.tables (Ok ())

let dump_table t name =
  let tbl = find_table t name in
  let acc = ref [] in
  Btree.scan tbl.tree ~from:"" (fun k v ->
      acc := (k, v) :: !acc;
      `Continue);
  List.rev !acc

let log_bytes t = Wal.appended_bytes t.log

let log_forces t = Wal.forces t.log

let lock_acquisitions t = Lock_mgr.total_acquisitions t.locks

let splits t =
  Hashtbl.fold (fun _ tbl acc -> acc + Btree.splits tbl.tree) t.tables 0
