lib/baseline/mono.mli: Untx_tc Untx_util
