lib/baseline/mono.ml: Char Hashtbl List Obj Queue String Untx_btree Untx_storage Untx_tc Untx_util Untx_wal
