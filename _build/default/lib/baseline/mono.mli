(** The monolithic baseline: an integrated transactional storage engine.

    This is the architecture the paper unbundles — lock manager, log
    manager, buffer pool and access methods in one component sharing one
    log and one address space ("the truly monolithic piece of a DBMS").
    It exists so every experiment can compare the unbundled TC/DC split
    against current practice:

    - one write-ahead log for record operations *and* structure
      modifications, in strict execution order;
    - classical page LSNs: records are logged inside the operation's
      critical section, so the [opLSN <= pageLSN] idempotence test is
      sound (contrast with the DC's abstract LSNs);
    - repeat-history redo then loser undo with compensation records;
    - no messages: every operation is a function call.

    The transaction API mirrors the unbundled kernel's, with the same
    [`Blocked] protocol, so the workload driver runs identical mixes on
    both. *)

type config = {
  page_capacity : int;
  cache_pages : int;
  cc_protocol : Untx_tc.Tc.cc_protocol;
  debug_checks : bool;
}

val default_config : config

type t

val create : ?counters:Untx_util.Instrument.t -> config -> t

val create_table : t -> name:string -> unit

type txn

type 'a outcome = [ `Ok of 'a | `Blocked | `Fail of string ]

val begin_txn : t -> txn

val xid : txn -> int

val is_active : txn -> bool

val read : t -> txn -> table:string -> key:string -> string option outcome

val insert : t -> txn -> table:string -> key:string -> value:string -> unit outcome

val update : t -> txn -> table:string -> key:string -> value:string -> unit outcome

val delete : t -> txn -> table:string -> key:string -> unit outcome

val scan :
  t -> txn -> table:string -> from_key:string -> limit:int ->
  (string * string) list outcome

val commit : t -> txn -> unit outcome

val abort : t -> txn -> reason:string -> unit

val wakeups : t -> int list

val resolve_deadlock : t -> int option

val force_log : t -> unit
(** Force the log without committing — the "prepare" durability step a
    2PC participant performs. *)

val checkpoint : t -> bool

val crash : t -> unit
(** Monolithic failure is total: log tail, buffer pool, lock and
    transaction tables all vanish together (Section 5.3.1: "failures in
    a monolithic database kernel are never partial"). *)

val recover : t -> unit

(** {2 Introspection} *)

val check : t -> (unit, string) result

val dump_table : t -> string -> (string * string) list

val log_bytes : t -> int

val log_forces : t -> int

val lock_acquisitions : t -> int

val splits : t -> int
