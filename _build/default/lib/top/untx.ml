(** Umbrella namespace for the unbundled-transaction-services library.

    [Untx.Kernel] is the usual entry point: one Transactional Component
    and one Data Component over an in-process transport.  [Untx.Deploy]
    builds the multi-TC / multi-DC topologies of the paper's Section 6.
    Everything else is re-exported for users who assemble their own
    deployments or build custom Data Components. *)

(** {1 Assembled kernels and deployments} *)

module Kernel = Untx_kernel.Kernel
module Deploy = Untx_cloud.Deploy
module Movie = Untx_cloud.Movie
module Two_pc = Untx_cloud.Two_pc
module Transport = Untx_kernel.Transport
module Engine = Untx_kernel.Engine
module Driver = Untx_kernel.Driver

(** {1 The two components} *)

module Tc = Untx_tc.Tc
module Lock_mgr = Untx_tc.Lock_mgr
module Dc = Untx_dc.Dc
module Ablsn = Untx_dc.Ablsn

(** {1 Wire vocabulary} *)

module Op = Untx_msg.Op
module Wire = Untx_msg.Wire

(** {1 Substrates} *)

module Btree = Untx_btree.Btree
module Wal = Untx_wal.Wal
module Page = Untx_storage.Page
module Cache = Untx_storage.Cache
module Disk = Untx_storage.Disk

(** {1 Baseline} *)

module Mono = Untx_baseline.Mono

(** {1 Utilities} *)

module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Instrument = Untx_util.Instrument
