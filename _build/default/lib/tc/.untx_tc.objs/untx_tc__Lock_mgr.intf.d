lib/tc/lock_mgr.mli: Format
