lib/tc/log_record.ml: Format List Untx_msg Untx_util
