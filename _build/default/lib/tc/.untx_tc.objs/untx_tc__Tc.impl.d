lib/tc/tc.ml: Char Hashtbl Int List Lock_mgr Log_record Queue Stdlib String Untx_msg Untx_util Untx_wal
