lib/tc/tc.mli: Untx_msg Untx_util
