lib/tc/lock_mgr.ml: Buffer Format Hashtbl Int List Printf Stdlib
