lib/tc/log_record.mli: Format Untx_msg Untx_util
