(** The TC's lock manager (Section 4.1.1).

    Transactional concurrency control lives entirely in the TC and must
    work without any knowledge of data pagination, so lockable resources
    are purely logical: record keys, static key ranges (the range-lock
    protocol of Section 3.1), or whole tables.

    Standard strict-2PL machinery: shared/exclusive modes, FIFO wait
    queues, upgrade from S to X for a sole holder, and deadlock detection
    on the waits-for graph with youngest-transaction victim selection. *)

type mode = S | X

(** A lockable logical resource.  No page ids, by construction. *)
type resource =
  | Record of { table : string; key : string }
  | Range of { table : string; slot : int }
      (** one cell of a static partition of the key space *)
  | Table of string

val pp_resource : Format.formatter -> resource -> unit

type t

val create : unit -> t

val acquire : t -> owner:int -> resource -> mode -> [ `Granted | `Blocked ]
(** Try to take the lock.  [`Blocked] enqueues the request; it will be
    granted later by a {!release_all} (check {!holds}), unless the owner
    is chosen as a deadlock victim and {!cancel_waits} is called. *)

val holds : t -> owner:int -> resource -> mode -> bool
(** Whether the owner currently holds the resource at least at the given
    mode (X covers S). *)

val release_all : t -> owner:int -> int list
(** Drop every lock and queued request of the owner; returns the owners
    whose queued requests became granted. *)

val cancel_waits : t -> owner:int -> unit
(** Remove the owner's queued (not yet granted) requests. *)

val waiting : t -> owner:int -> bool

val find_deadlock : t -> int option
(** An owner on a waits-for cycle ([None] if none); the youngest (highest
    id) member is returned as the suggested victim. *)

val held_count : t -> owner:int -> int

val total_acquisitions : t -> int
(** Cumulative granted requests — the locking-overhead metric of E7. *)

val live_locks : t -> int

val dump : t -> string
(** Human-readable lock table (diagnostics). *)
