module Op = Untx_msg.Op
module Lsn = Untx_util.Lsn

type t =
  | Begin of { xid : int }
  | Op_log of { xid : int; op : Op.t; undo : Op.t option }
  | Commit of { xid : int }
  | Abort of { xid : int }
  | Compensation of { xid : int; op : Op.t }
  | Finished of { xid : int }
  | Checkpoint of { rssp : Lsn.t; active : int list }

let xid = function
  | Begin { xid }
  | Op_log { xid; _ }
  | Commit { xid }
  | Abort { xid }
  | Compensation { xid; _ }
  | Finished { xid } -> Some xid
  | Checkpoint _ -> None

let size = function
  | Begin _ | Commit _ | Abort _ | Finished _ -> 12
  | Op_log { op; undo; _ } ->
    12 + Op.size op + (match undo with Some u -> Op.size u | None -> 0)
  | Compensation { op; _ } -> 12 + Op.size op
  | Checkpoint { active; _ } -> 16 + (8 * List.length active)

let pp ppf = function
  | Begin { xid } -> Format.fprintf ppf "begin x%d" xid
  | Op_log { xid; op; undo } ->
    Format.fprintf ppf "op x%d %a%s" xid Op.pp op
      (match undo with Some _ -> " (+undo)" | None -> "")
  | Commit { xid } -> Format.fprintf ppf "commit x%d" xid
  | Abort { xid } -> Format.fprintf ppf "abort x%d" xid
  | Compensation { xid; op } ->
    Format.fprintf ppf "compensate x%d %a" xid Op.pp op
  | Finished { xid } -> Format.fprintf ppf "finished x%d" xid
  | Checkpoint { rssp; active } ->
    Format.fprintf ppf "checkpoint rssp=%a active=[%a]" Lsn.pp rssp
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
         Format.pp_print_int)
      active
