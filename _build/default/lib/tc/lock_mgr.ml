type mode = S | X

type resource =
  | Record of { table : string; key : string }
  | Range of { table : string; slot : int }
  | Table of string

let pp_resource ppf = function
  | Record { table; key } -> Format.fprintf ppf "rec:%s[%s]" table key
  | Range { table; slot } -> Format.fprintf ppf "range:%s/%d" table slot
  | Table table -> Format.fprintf ppf "table:%s" table

type entry = {
  mutable holders : (int * mode) list;
  mutable waiters : (int * mode) list; (* FIFO: head is next candidate *)
}

type t = {
  table : (resource, entry) Hashtbl.t;
  owner_locks : (int, resource list ref) Hashtbl.t;
  mutable total_acquisitions : int;
}

let create () =
  { table = Hashtbl.create 256; owner_locks = Hashtbl.create 32;
    total_acquisitions = 0 }

let entry_of t rsrc =
  match Hashtbl.find_opt t.table rsrc with
  | Some e -> e
  | None ->
    let e = { holders = []; waiters = [] } in
    Hashtbl.add t.table rsrc e;
    e

let owner_cell t owner =
  match Hashtbl.find_opt t.owner_locks owner with
  | Some c -> c
  | None ->
    let c = ref [] in
    Hashtbl.add t.owner_locks owner c;
    c

let mode_covers held wanted =
  match (held, wanted) with X, _ -> true | S, S -> true | S, X -> false

let compatible m1 m2 = match (m1, m2) with S, S -> true | _ -> false

let note_granted t owner rsrc =
  t.total_acquisitions <- t.total_acquisitions + 1;
  let cell = owner_cell t owner in
  if not (List.mem rsrc !cell) then cell := rsrc :: !cell

(* Can [owner] be granted [mode] on [e] right now?  Re-entrant holders
   and the sole-holder upgrade are allowed; everyone else must be
   compatible. *)
let grantable e owner mode =
  List.for_all
    (fun (h, hm) -> h = owner || compatible hm mode)
    e.holders

let acquire t ~owner rsrc mode =
  let e = entry_of t rsrc in
  match List.assoc_opt owner e.holders with
  | Some held when mode_covers held mode -> `Granted
  | current -> (
    (* Fairness: a newcomer must not overtake queued waiters — except an
       upgrade request (current = Some S), which jumps the queue as in
       most real lock managers to avoid self-blocking behind strangers.
       A retry by the waiter at the *head* of the queue is granted when
       compatible: holders can change between its enqueue and its retry,
       and release-time promotion cannot fire if nobody releases. *)
    let at_head =
      match e.waiters with (w, _) :: _ -> w = owner | [] -> false
    in
    let must_queue =
      (not (grantable e owner mode))
      || (current = None && e.waiters <> [] && not at_head)
    in
    if not must_queue then begin
      e.waiters <- List.filter (fun (w, _) -> w <> owner) e.waiters;
      let others = List.remove_assoc owner e.holders in
      e.holders <- (owner, mode) :: others;
      note_granted t owner rsrc;
      `Granted
    end
    else begin
      if not (List.mem (owner, mode) e.waiters) then
        e.waiters <- e.waiters @ [ (owner, mode) ];
      `Blocked
    end)

let holds t ~owner rsrc mode =
  match Hashtbl.find_opt t.table rsrc with
  | None -> false
  | Some e -> (
    match List.assoc_opt owner e.holders with
    | Some held -> mode_covers held mode
    | None -> false)

(* Promote waiters at the head of the queue while they are grantable. *)
let promote t rsrc e granted =
  let rec go granted =
    match e.waiters with
    | [] -> granted
    | (owner, mode) :: rest ->
      if grantable e owner mode then begin
        e.waiters <- rest;
        let others = List.remove_assoc owner e.holders in
        e.holders <- (owner, mode) :: others;
        note_granted t owner rsrc;
        go (owner :: granted)
      end
      else granted
  in
  go granted

let release_all t ~owner =
  let cell = owner_cell t owner in
  let resources = !cell in
  cell := [];
  Hashtbl.remove t.owner_locks owner;
  let granted =
    List.fold_left
      (fun granted rsrc ->
        match Hashtbl.find_opt t.table rsrc with
        | None -> granted
        | Some e ->
          e.holders <- List.remove_assoc owner e.holders;
          e.waiters <- List.filter (fun (w, _) -> w <> owner) e.waiters;
          let granted = promote t rsrc e granted in
          if e.holders = [] && e.waiters = [] then Hashtbl.remove t.table rsrc;
          granted)
      [] resources
  in
  (* The owner may also be queued on resources it never held. *)
  Hashtbl.iter
    (fun _ e -> e.waiters <- List.filter (fun (w, _) -> w <> owner) e.waiters)
    t.table;
  List.sort_uniq Int.compare granted

let cancel_waits t ~owner =
  Hashtbl.iter
    (fun _ e -> e.waiters <- List.filter (fun (w, _) -> w <> owner) e.waiters)
    t.table

let waiting t ~owner =
  Hashtbl.fold
    (fun _ e acc -> acc || List.exists (fun (w, _) -> w = owner) e.waiters)
    t.table false

(* Waits-for edges.  A queued request waits for every current holder it
   is incompatible with, and — because the queue is FIFO — for every
   earlier waiter it is incompatible with.  Compatible-holder edges are
   also added when the waiter sits behind someone (it cannot be granted
   past the queue), which is conservative but keeps detection complete. *)
let find_deadlock t =
  let edges = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _ e ->
      let rec waiters_loop earlier = function
        | [] -> ()
        | (w, wm) :: rest ->
          let queued_behind = earlier <> [] in
          List.iter
            (fun (h, hm) ->
              if h <> w && ((not (compatible hm wm)) || queued_behind) then
                Hashtbl.add edges w h)
            e.holders;
          List.iter
            (fun (pw, pwm) ->
              if pw <> w && not (compatible pwm wm) then Hashtbl.add edges w pw)
            earlier;
          waiters_loop ((w, wm) :: earlier) rest
      in
      waiters_loop [] e.waiters)
    t.table;
  let color = Hashtbl.create 32 in
  let cycle_members = ref [] in
  let rec dfs stack node =
    match Hashtbl.find_opt color node with
    | Some `Done -> ()
    | Some `Active ->
      (* [node] closes a cycle: the stack head is this re-visit of
         [node]; members are everything up to its previous occurrence. *)
      let rec collect acc = function
        | [] -> acc
        | n :: rest -> if n = node then acc else collect (n :: acc) rest
      in
      cycle_members :=
        node :: (match stack with [] -> [] | _ :: rest -> collect [] rest)
    | None ->
      Hashtbl.replace color node `Active;
      List.iter
        (fun succ -> if !cycle_members = [] then dfs (succ :: stack) succ)
        (Hashtbl.find_all edges node);
      if Hashtbl.find_opt color node = Some `Active then
        Hashtbl.replace color node `Done
  in
  Hashtbl.iter
    (fun w _ -> if !cycle_members = [] then dfs [ w ] w)
    edges;
  match !cycle_members with
  | [] -> None
  | members -> Some (List.fold_left Stdlib.max Int.min_int members)

let held_count t ~owner =
  match Hashtbl.find_opt t.owner_locks owner with
  | Some c -> List.length !c
  | None -> 0

let total_acquisitions t = t.total_acquisitions

let live_locks t =
  Hashtbl.fold (fun _ e acc -> acc + List.length e.holders) t.table 0

let dump t =
  let buf = Buffer.create 256 in
  Hashtbl.iter
    (fun rsrc e ->
      if e.holders <> [] || e.waiters <> [] then begin
        Buffer.add_string buf (Format.asprintf "%a:" pp_resource rsrc);
        List.iter
          (fun (h, m) ->
            Buffer.add_string buf
              (Printf.sprintf " h%d%s" h (match m with S -> "S" | X -> "X")))
          e.holders;
        List.iter
          (fun (w, m) ->
            Buffer.add_string buf
              (Printf.sprintf " w%d%s" w (match m with S -> "S" | X -> "X")))
          e.waiters;
        Buffer.add_char buf '\n'
      end)
    t.table;
  Buffer.contents buf
