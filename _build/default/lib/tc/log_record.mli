(** TC-log records: purely logical, no page identifiers anywhere.

    Operation records are written (and given LSNs) *before* the request
    goes to the DC; because the TC never dispatches conflicting
    operations concurrently, the log order is order-preserving
    serializable even when actual execution interleaves (Section 4.1.1).

    [undo] on an operation record is the logical inverse operation (with
    the replaced value captured by a read-before-write) for tables that
    do not keep before-versions; versioned tables roll back with
    [Abort_versions] instead and log no inverse. *)

type t =
  | Begin of { xid : int }
  | Op_log of { xid : int; op : Untx_msg.Op.t; undo : Untx_msg.Op.t option }
  | Commit of { xid : int }
  | Abort of { xid : int }
  | Compensation of { xid : int; op : Untx_msg.Op.t }
      (** redo-only: an inverse (or version-housekeeping) operation
          issued during rollback or restart *)
  | Finished of { xid : int }
      (** rollback complete, or post-commit version cleanup complete *)
  | Checkpoint of { rssp : Untx_util.Lsn.t; active : int list }

val xid : t -> int option

val size : t -> int

val pp : Format.formatter -> t -> unit
