module Page = Untx_storage.Page
module Page_id = Untx_storage.Page_id
module Cache = Untx_storage.Cache

type split_event = {
  level : int;
  old_page : Page.t;
  new_page : Page.t;
  split_key : string;
  parent : Page.t;
  new_root : bool;
}

type consolidate_event = {
  survivor : Page.t;
  freed_page : Page.t;
  parent : Page.t;
  removed_sep : string;
  root_collapsed_to : Page_id.t option;
}

type hooks = {
  on_split : split_event -> unit;
  on_consolidate : consolidate_event -> unit;
}

let null_hooks = { on_split = ignore; on_consolidate = ignore }

let child_data pid = string_of_int (Page_id.to_int pid)

type t = {
  cache : Cache.t;
  name : string;
  page_capacity : int;
  hooks : hooks;
  mutable root : Page_id.t;
  mutable splits : int;
  mutable consolidations : int;
  mutable consolidation_enabled : bool;
}

let data_of_child pid = string_of_int (Page_id.to_int pid)

let child_of_data data = Page_id.of_int (int_of_string data)

let create ~cache ~name ~page_capacity ~hooks =
  let root = Cache.new_page cache ~kind:Page.Leaf ~page_capacity in
  {
    cache;
    name;
    page_capacity;
    hooks;
    root = Page.id root;
    splits = 0;
    consolidations = 0;
    consolidation_enabled = true;
  }

let attach ~cache ~name ~page_capacity ~hooks ~root =
  { cache; name; page_capacity; hooks; root; splits = 0; consolidations = 0;
    consolidation_enabled = true }

let name t = t.name

let root t = t.root

let set_root t root = t.root <- root

let page_capacity t = t.page_capacity

(* Routing: the child covering [key] is named by the rightmost separator
   <= key; the leftmost separator acts as minus infinity. *)
let route page key =
  match Page.find_le page key with
  | Some (i, _, data) -> (i, child_of_data data)
  | None ->
    if Page.cell_count page = 0 then
      invalid_arg "Btree.route: empty inner page";
    let _, data = Page.nth page 0 in
    (0, child_of_data data)

(* Descend to the leaf covering [key]; the path lists the inner pages
   visited (root first) with the child index taken at each. *)
let descend t key =
  let rec go pid path =
    let page = Cache.get t.cache pid in
    match Page.kind page with
    | Page.Leaf -> (page, List.rev path)
    | Page.Inner ->
      let idx, child = route page key in
      go child ((page, idx) :: path)
  in
  go t.root []

let find_leaf t key =
  let leaf, _ = descend t key in
  leaf

let find t key =
  let leaf = find_leaf t key in
  Page.find leaf key

let overflows page = Page.used_bytes page > Page.capacity page

(* Split [page] as a system transaction.  [ancestors] is the path from
   the root down to (but excluding) [page]; empty when [page] is the
   root.  Recursively splits ancestors that overflow from the routing
   insert. *)
let rec split t page ancestors ~level =
  let parent, remaining_ancestors, new_root =
    match List.rev ancestors with
    | (parent, _) :: rest -> (parent, List.rev rest, false)
    | [] ->
      (* Root split: grow the tree by one level. *)
      let new_root =
        Cache.new_page t.cache ~kind:Page.Inner ~page_capacity:t.page_capacity
      in
      Page.set new_root ~key:"" ~data:(data_of_child (Page.id page));
      t.root <- Page.id new_root;
      (new_root, [], true)
  in
  let new_page =
    Cache.new_page t.cache ~kind:(Page.kind page) ~page_capacity:t.page_capacity
  in
  let split_key, moved = Page.split_upper page in
  Page.absorb new_page moved;
  if Page.kind page = Page.Leaf then begin
    Page.set_next new_page (Page.next page);
    Page.set_next page (Some (Page.id new_page))
  end;
  Page.set parent ~key:split_key ~data:(data_of_child (Page.id new_page));
  Cache.mark_dirty t.cache page;
  Cache.mark_dirty t.cache new_page;
  Cache.mark_dirty t.cache parent;
  t.splits <- t.splits + 1;
  t.hooks.on_split
    { level; old_page = page; new_page; split_key; parent; new_root };
  if overflows parent then
    split t parent remaining_ancestors ~level:(level + 1)

let set t ~key ~data =
  if Page.cell_size ~key ~data > t.page_capacity then
    invalid_arg "Btree.set: record larger than a page";
  let rec attempt () =
    let leaf, path = descend t key in
    if Page.would_overflow leaf ~key ~data then begin
      split t leaf path ~level:0;
      attempt ()
    end
    else begin
      Page.set leaf ~key ~data;
      Cache.mark_dirty t.cache leaf
    end
  in
  attempt ()

let underflows t page = Page.used_bytes page < t.page_capacity / 4

(* Try to consolidate an underflowing leaf with a neighbour under the
   same parent (a page delete, Section 5.2.2).  The survivor is always
   the left page of the pair, so parent routing never loses its leftmost
   separator. *)
let consolidate t leaf path =
  match List.rev path with
  | [] -> () (* the root leaf never consolidates *)
  | (parent, idx) :: _ ->
    let pair =
      if idx > 0 then
        let _, ldata = Page.nth parent (idx - 1) in
        Some (Cache.get t.cache (child_of_data ldata), leaf, idx)
      else if idx + 1 < Page.cell_count parent then
        let _, rdata = Page.nth parent (idx + 1) in
        Some (leaf, Cache.get t.cache (child_of_data rdata), idx + 1)
      else None
    in
    match pair with
    | None -> ()
    | Some (survivor, victim, victim_idx) ->
      if
        Page.kind victim = Page.Leaf
        && Page.used_bytes survivor + Page.used_bytes victim
           <= t.page_capacity
      then begin
        let freed_page = Page.copy victim in
        Page.absorb survivor (Page.cells victim);
        Page.set_next survivor (Page.next victim);
        let victim_sep, _ = Page.nth parent victim_idx in
        ignore (Page.remove parent victim_sep);
        Cache.mark_dirty t.cache survivor;
        Cache.mark_dirty t.cache parent;
        (* Root collapse: an inner root left with a single child drops a
           level. *)
        let root_collapsed_to =
          if
            Page_id.equal (Page.id parent) t.root
            && Page.cell_count parent = 1
          then begin
            let _, only_child = Page.nth parent 0 in
            let child = child_of_data only_child in
            t.root <- child;
            Some child
          end
          else None
        in
        t.consolidations <- t.consolidations + 1;
        t.hooks.on_consolidate
          { survivor; freed_page; parent; removed_sep = victim_sep;
            root_collapsed_to };
        (* The hook has made the consolidation durable; only now may the
           victim's stable image disappear. *)
        Cache.free_page t.cache (Page.id victim);
        match root_collapsed_to with
        | Some _ -> Cache.free_page t.cache (Page.id parent)
        | None -> ()
      end

let set_consolidation_enabled t enabled = t.consolidation_enabled <- enabled

let remove t key =
  let leaf, path = descend t key in
  let removed = Page.remove leaf key in
  if removed then begin
    Cache.mark_dirty t.cache leaf;
    if t.consolidation_enabled && underflows t leaf then consolidate t leaf path
  end;
  removed

let scan t ~from f =
  let leaf, _ = descend t from in
  let stopped = ref false in
  let visit_from page start =
    Page.iter_from page start (fun k d ->
        match f k d with
        | `Continue -> `Continue
        | `Stop ->
          stopped := true;
          `Stop)
  in
  visit_from leaf from;
  let rec follow next =
    match next with
    | None -> ()
    | Some pid when not !stopped ->
      let page = Cache.get t.cache pid in
      visit_from page "";
      follow (Page.next page)
    | Some _ -> ()
  in
  if not !stopped then follow (Page.next leaf)

let leftmost_leaf t =
  let rec go pid =
    let page = Cache.get t.cache pid in
    match Page.kind page with
    | Page.Leaf -> page
    | Page.Inner ->
      let _, data = Page.nth page 0 in
      go (child_of_data data)
  in
  go t.root

let leaf_pages t =
  let rec chain acc page =
    let acc = Page.id page :: acc in
    match Page.next page with
    | None -> List.rev acc
    | Some pid -> chain acc (Cache.get t.cache pid)
  in
  chain [] (leftmost_leaf t)

let cell_count t =
  List.fold_left
    (fun acc pid -> acc + Page.cell_count (Cache.get t.cache pid))
    0 (leaf_pages t)

let height t =
  let rec go pid acc =
    let page = Cache.get t.cache pid in
    match Page.kind page with
    | Page.Leaf -> acc
    | Page.Inner ->
      let _, data = Page.nth page 0 in
      go (child_of_data data) (acc + 1)
  in
  go t.root 1

let all_pages t =
  let rec go pid acc =
    let page = Cache.get t.cache pid in
    match Page.kind page with
    | Page.Leaf -> pid :: acc
    | Page.Inner ->
      List.fold_left
        (fun acc (_, data) -> go (child_of_data data) acc)
        (pid :: acc) (Page.cells page)
  in
  go t.root []

let splits t = t.splits

let consolidations t = t.consolidations

(* Well-formedness: search-correct routing, sorted cells, intact leaf
   chain.  The DC runs this after replaying its own log, before letting
   the TC start redo. *)
let check t =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let errf fmt = Format.kasprintf (fun s -> Error s) fmt in
  let visited = Page_id.Tbl.create 64 in
  let leaves = ref [] in
  (* lo is an inclusive lower bound; hi an exclusive upper bound. *)
  let rec walk pid ~lo ~hi =
    if Page_id.Tbl.mem visited pid then errf "cycle at %a" Page_id.pp pid
    else begin
      Page_id.Tbl.add visited pid ();
      match Cache.lookup t.cache pid with
      | None -> errf "dangling page %a" Page_id.pp pid
      | Some page ->
        let cells = Page.cells page in
        let* () = check_sorted pid cells in
        let* () = check_bounds pid cells ~lo ~hi in
        (match Page.kind page with
        | Page.Leaf ->
          leaves := pid :: !leaves;
          Ok ()
        | Page.Inner ->
          if cells = [] then errf "empty inner page %a" Page_id.pp pid
          else walk_children pid cells ~lo ~hi)
    end
  and check_sorted pid = function
    | (k1, _) :: ((k2, _) :: _ as rest) ->
      if String.compare k1 k2 >= 0 then
        errf "unsorted cells in %a: %S >= %S" Page_id.pp pid k1 k2
      else check_sorted pid rest
    | _ -> Ok ()
  and check_bounds pid cells ~lo ~hi =
    List.fold_left
      (fun acc (k, _) ->
        let* () = acc in
        if String.compare k lo < 0 then
          errf "key %S below bound %S in %a" k lo Page_id.pp pid
        else
          match hi with
          | Some h when String.compare k h >= 0 ->
            errf "key %S above bound %S in %a" k h Page_id.pp pid
          | _ -> Ok ())
      (Ok ()) cells
  and walk_children pid cells ~lo ~hi =
    (* Child i covers [max(sep_i, lo), sep_{i+1}); the first separator is
       -infinity in routing terms, so its child inherits lo. *)
    let rec go i prev_lo = function
      | [] -> Ok ()
      | (sep, data) :: rest ->
        let child_lo = if i = 0 then prev_lo else sep in
        let child_hi =
          match rest with (next_sep, _) :: _ -> Some next_sep | [] -> hi
        in
        let* () = walk (child_of_data data) ~lo:child_lo ~hi:child_hi in
        go (i + 1) prev_lo rest
    in
    let* () = go 0 lo cells in
    ignore pid;
    Ok ()
  in
  let* () = walk t.root ~lo:"" ~hi:None in
  (* The leaf sibling chain must enumerate exactly the in-order leaves. *)
  let in_order = List.rev !leaves in
  let chain = leaf_pages t in
  if List.compare Page_id.compare chain in_order <> 0 then
    errf "leaf chain disagrees with tree order"
  else Ok ()
