(** B+-tree access method over slotted pages.

    This is the DC-side storage structure of the paper: the TC never sees
    it.  Leaf pages hold encoded records; inner pages hold
    [(separator_key, child_page_id)] routing cells; leaves are chained
    left-to-right for range scans.

    Structure modifications — page splits, page deletes/consolidations,
    root growth and collapse — are *system transactions* (Section 5.2):
    they execute atomically under latches and are reported to the owner
    through {!hooks} while the affected pages are still latched, so the
    owner can stamp dLSNs and write its structure-modification log before
    anything can reach stable storage.  The tree itself does no logging:
    recovery policy belongs to the component that owns the tree (the DC,
    or the monolithic baseline, which install different hooks).

    Simplifications relative to a production tree (documented in
    DESIGN.md): consolidation is implemented for leaves plus root
    collapse; inner-node underflow is tolerated (searches stay correct,
    space is reclaimed only at the leaf level where nearly all garbage
    arises). *)

type t

(** A split system transaction, reported with all pages still latched.
    [old_page] has already lost its upper cells, [new_page] holds them,
    [parent] already contains the new routing cell.  [new_root] is set
    when this split grew the tree (then [parent] = the new root). *)
type split_event = {
  level : int;  (** 0 for a leaf split *)
  old_page : Untx_storage.Page.t;
  new_page : Untx_storage.Page.t;
  split_key : string;
  parent : Untx_storage.Page.t;
  new_root : bool;
}

(** A page-delete/consolidate system transaction.  [survivor] has already
    absorbed [freed_page]'s cells; [freed_page] is a copy of the deleted
    page as it was (the owner needs its metadata to merge abstract LSNs,
    Section 5.2.2); the routing cell has already left [parent].
    [root_collapsed_to] is set when the root dropped a level. *)
type consolidate_event = {
  survivor : Untx_storage.Page.t;
  freed_page : Untx_storage.Page.t;
  parent : Untx_storage.Page.t;
  removed_sep : string;  (** routing cell removed from [parent] *)
  root_collapsed_to : Untx_storage.Page_id.t option;
}

type hooks = {
  on_split : split_event -> unit;
  on_consolidate : consolidate_event -> unit;
}

val null_hooks : hooks
(** Hooks that do nothing — for tests of pure structure behaviour. *)

val child_data : Untx_storage.Page_id.t -> string
(** The cell-data encoding of a child pointer in inner pages; exposed so
    a recovery manager can redo routing-cell insertions. *)

val create :
  cache:Untx_storage.Cache.t ->
  name:string ->
  page_capacity:int ->
  hooks:hooks ->
  t
(** Create an empty tree (allocates the root leaf). *)

val attach :
  cache:Untx_storage.Cache.t ->
  name:string ->
  page_capacity:int ->
  hooks:hooks ->
  root:Untx_storage.Page_id.t ->
  t
(** Re-open an existing tree at a known root (recovery path). *)

val name : t -> string

val root : t -> Untx_storage.Page_id.t

val set_root : t -> Untx_storage.Page_id.t -> unit
(** Recovery override (replaying a root-changing system transaction). *)

val page_capacity : t -> int

val find_leaf : t -> string -> Untx_storage.Page.t
(** The leaf page whose key range covers the given key.  The page is
    resident on return; the caller is responsible for latching. *)

val find : t -> string -> string option

val set : t -> key:string -> data:string -> unit
(** Insert or replace, splitting as needed. *)

val remove : t -> string -> bool
(** Delete the cell, consolidating pages when the leaf underflows. *)

val scan :
  t -> from:string -> (string -> string -> [ `Continue | `Stop ]) -> unit
(** In-order visit of cells with key >= [from], crossing leaf boundaries
    via the sibling chain. *)

val cell_count : t -> int
(** Total record cells in leaves (walks the tree). *)

val height : t -> int

val leaf_pages : t -> Untx_storage.Page_id.t list
(** Leaf chain, left to right. *)

val all_pages : t -> Untx_storage.Page_id.t list
(** Every reachable page, root included. *)

val check : t -> (unit, string) result
(** Structural well-formedness: sorted cells, consistent routing
    separators, intact leaf chain, no cycles.  The DC requires this to
    hold before TC redo may start (Section 4.2, Recovery). *)

val set_consolidation_enabled : t -> bool -> unit
(** Gate page-delete system transactions.  Disabled during restart redo:
    merging a freshly reset page into a neighbour would combine abstract
    LSNs whose low-water claims are no longer globally valid, absorbing
    redo that must re-execute.  Deferred consolidations happen on later
    removals. *)

val splits : t -> int
(** Number of split system transactions since creation/attach. *)

val consolidations : t -> int
