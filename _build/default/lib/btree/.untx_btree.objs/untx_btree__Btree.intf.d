lib/btree/btree.mli: Untx_storage
