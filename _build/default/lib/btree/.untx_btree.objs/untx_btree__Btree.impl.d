lib/btree/btree.ml: Format List String Untx_storage
