lib/wal/wal.mli: Untx_util
