lib/wal/wal.ml: List Untx_util
