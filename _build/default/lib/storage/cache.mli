(** Buffer pool: volatile page cache in front of a {!Disk}.

    Cache management is a DC responsibility in the unbundled architecture,
    but the mechanism is generic; the DC (or the monolithic baseline)
    injects its *policy* through two hooks:

    - [can_flush page]: whether writing this page to stable storage now
      would violate causality — the unbundled WAL rule of paper
      Section 4.2 ([end_of_stable_log]) or the classical WAL rule in the
      monolithic engine.
    - [prepare_flush page]: called just before the stable write, to embed
      recovery metadata (abstract LSNs, dLSN, page LSN) in the page's
      metadata blob atomically with the flush — the paper's "page sync"
      (Section 5.1.2).

    Everything in the cache is volatile: {!crash} drops it all. *)

type t

val create :
  ?counters:Untx_util.Instrument.t -> disk:Disk.t -> capacity:int -> unit -> t
(** [capacity] is the maximum number of resident pages; the pool evicts
    clean or flushable pages beyond it. *)

val set_policy :
  t -> can_flush:(Page.t -> bool) -> prepare_flush:(Page.t -> unit) -> unit

val disk : t -> Disk.t

val new_page : t -> kind:Page.kind -> page_capacity:int -> Page.t
(** Allocate a fresh page, resident and dirty (not yet stable). *)

val install : t -> Page.t -> unit
(** Make the given page resident and dirty under its own id, replacing
    any cached version.  Recovery uses this to materialize pages rebuilt
    from log images (including pages whose ids pre-date the crash). *)

val get : t -> Page_id.t -> Page.t
(** The resident page, faulting it in from disk if needed.
    Raises [Not_found] if the page exists neither cached nor on disk. *)

val lookup : t -> Page_id.t -> Page.t option
(** Like {!get} but [None] instead of raising. *)

val cached : t -> Page_id.t -> Page.t option
(** Only consult the cache; never touches the disk. *)

val mark_dirty : t -> Page.t -> unit
(** Mark the page dirty.  If the pool evicted it while the caller was
    still operating on the object (a fetch during a structure
    modification can do that), the object is re-installed: it is by
    construction at least as new as the stable copy the eviction wrote. *)

val is_dirty : t -> Page_id.t -> bool

val free_page : t -> Page_id.t -> unit
(** Discard the page everywhere (cache and stable storage): page delete. *)

val try_flush : t -> Page_id.t -> bool
(** Flush one dirty page if policy allows; [true] on success (or if the
    page was already clean). *)

val flush_all : t -> unit
(** Flush every dirty page whose policy allows it. *)

val drop_page : t -> Page_id.t -> unit
(** Remove the page from the cache *without* flushing — the selective
    cache reset used when a TC fails (Section 5.3.2).  The stable version
    becomes current again on the next {!get}. *)

val crash : t -> unit
(** Lose all volatile state (DC failure). *)

val with_operation_latch : t -> (unit -> 'a) -> 'a
(** Run [f] with eviction deferred: every page it touches stays resident
    and unflushed until it finishes, the pool catching up afterwards.
    This is the cache-level face of the paper's operation atomicity rule
    (Section 4.1.2): "each operation will need to latch whatever pages
    it operates on, until the operation has been performed on all the
    pages".  Without it, an eviction in the middle of an operation or a
    structure modification could write a page to stable storage with
    metadata that does not yet reflect the half-applied change.
    Nestable. *)

val enforce_capacity : t -> unit
(** Evict down to capacity if possible right now.  Useful after an
    end-of-stable-log advance turns previously unflushable pages
    flushable — eviction opportunities otherwise only arise when pages
    are touched. *)

val resident : t -> int

val dirty_pages : t -> Page_id.t list

val iter_cached : t -> (Page.t -> unit) -> unit

val evictions : t -> int

val flush_stalls : t -> int
(** Times a flush was refused by policy — E4's stall metric. *)
