(** Short-term page latches.

    The DC must make each logical operation atomic by latching every page
    it touches for the duration of the operation (paper Section 4.1.2).
    Execution in this reproduction is deterministic and single-threaded,
    so latches act as *assertion checkers*: acquiring a latch that is
    already held signals a violation of the operation-atomicity discipline
    rather than blocking.  Latch acquisition order is the caller's
    deadlock-avoidance obligation, as in the paper. *)

type t

exception Latch_conflict of string

val create : name:string -> t

val acquire : t -> unit
(** Raises {!Latch_conflict} if already held. *)

val release : t -> unit
(** Raises {!Latch_conflict} if not held. *)

val held : t -> bool

val with_latch : t -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)
