exception Latch_conflict of string

type t = { name : string; mutable held : bool }

let create ~name = { name; held = false }

let acquire t =
  if t.held then raise (Latch_conflict ("already held: " ^ t.name));
  t.held <- true

let release t =
  if not t.held then raise (Latch_conflict ("not held: " ^ t.name));
  t.held <- false

let held t = t.held

let with_latch t f =
  acquire t;
  match f () with
  | v ->
    release t;
    v
  | exception e ->
    release t;
    raise e
