type kind = Leaf | Inner

let slot_overhead = 16

type t = {
  id : Page_id.t;
  kind : kind;
  capacity : int;
  mutable cells : (string * string) array; (* sorted by key *)
  mutable used : int;
  mutable next : Page_id.t option;
  mutable meta : string;
}

let create ~id ~kind ~capacity =
  if capacity <= 0 then invalid_arg "Page.create: capacity must be positive";
  { id; kind; capacity; cells = [||]; used = 0; next = None; meta = "" }

let id t = t.id

let kind t = t.kind

let capacity t = t.capacity

let cell_count t = Array.length t.cells

let used_bytes t = t.used

let cell_size ~key ~data = String.length key + String.length data + slot_overhead

(* Index of [key] if present, else [Error insertion_point]. *)
let search t key =
  let rec go lo hi =
    if lo >= hi then Error lo
    else
      let mid = (lo + hi) / 2 in
      let k, _ = t.cells.(mid) in
      let c = String.compare key k in
      if c = 0 then Ok mid else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length t.cells)

let find t key =
  match search t key with
  | Ok i ->
    let _, data = t.cells.(i) in
    Some data
  | Error _ -> None

let find_le t key =
  let at i =
    let k, d = t.cells.(i) in
    Some (i, k, d)
  in
  match search t key with
  | Ok i -> at i
  | Error 0 -> None
  | Error i -> at (i - 1)

let would_overflow t ~key ~data =
  let delta =
    match search t key with
    | Ok i ->
      let _, old = t.cells.(i) in
      String.length data - String.length old
    | Error _ -> cell_size ~key ~data
  in
  t.used + delta > t.capacity

let insert_at t i cell size_delta =
  let n = Array.length t.cells in
  let cells = Array.make (n + 1) cell in
  Array.blit t.cells 0 cells 0 i;
  Array.blit t.cells i cells (i + 1) (n - i);
  t.cells <- cells;
  t.used <- t.used + size_delta

let set t ~key ~data =
  match search t key with
  | Ok i ->
    let _, old = t.cells.(i) in
    t.cells.(i) <- (key, data);
    t.used <- t.used + String.length data - String.length old
  | Error i -> insert_at t i (key, data) (cell_size ~key ~data)

let remove t key =
  match search t key with
  | Error _ -> false
  | Ok i ->
    let k, d = t.cells.(i) in
    let n = Array.length t.cells in
    let cells = Array.make (n - 1) ("", "") in
    Array.blit t.cells 0 cells 0 i;
    Array.blit t.cells (i + 1) cells i (n - 1 - i);
    t.cells <- cells;
    t.used <- t.used - cell_size ~key:k ~data:d;
    true

let min_key t =
  if Array.length t.cells = 0 then None
  else
    let k, _ = t.cells.(0) in
    Some k

let max_key t =
  let n = Array.length t.cells in
  if n = 0 then None
  else
    let k, _ = t.cells.(n - 1) in
    Some k

let cells t = Array.to_list t.cells

let iter_from t key f =
  let start = match search t key with Ok i -> i | Error i -> i in
  let n = Array.length t.cells in
  let rec go i =
    if i < n then
      let k, d = t.cells.(i) in
      match f k d with `Continue -> go (i + 1) | `Stop -> ()
  in
  go start

let nth t i =
  if i < 0 || i >= Array.length t.cells then invalid_arg "Page.nth";
  t.cells.(i)

let split_upper t =
  let n = Array.length t.cells in
  if n < 2 then invalid_arg "Page.split_upper: needs at least two cells";
  (* Find the smallest index whose prefix exceeds half the used bytes, while
     keeping at least one cell on each side. *)
  let half = t.used / 2 in
  let rec find_cut i acc =
    if i >= n - 1 then n - 1
    else
      let k, d = t.cells.(i) in
      let acc = acc + cell_size ~key:k ~data:d in
      if acc > half then i + 1 else find_cut (i + 1) acc
  in
  let cut = Stdlib.max 1 (Stdlib.min (n - 1) (find_cut 0 0)) in
  let moved = Array.sub t.cells cut (n - cut) in
  let split_key, _ = moved.(0) in
  let moved_bytes =
    Array.fold_left
      (fun acc (k, d) -> acc + cell_size ~key:k ~data:d)
      0 moved
  in
  t.cells <- Array.sub t.cells 0 cut;
  t.used <- t.used - moved_bytes;
  (split_key, Array.to_list moved)

let absorb t cells = List.iter (fun (key, data) -> set t ~key ~data) cells

let next t = t.next

let set_next t next = t.next <- next

let meta t = t.meta

let set_meta t meta = t.meta <- meta

let meta_size t = String.length t.meta

let copy t = { t with cells = Array.copy t.cells }

let clear t =
  t.cells <- [||];
  t.used <- 0

let replace_cells t cells =
  t.cells <- [||];
  t.used <- 0;
  absorb t cells

let pp ppf t =
  Format.fprintf ppf "@[<v>%a %s cells=%d used=%d/%d next=%s@]" Page_id.pp t.id
    (match t.kind with Leaf -> "leaf" | Inner -> "inner")
    (cell_count t) t.used t.capacity
    (match t.next with None -> "-" | Some p -> Page_id.to_string p)
