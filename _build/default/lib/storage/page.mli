(** Slotted pages.

    A page holds a sorted run of [(key, data)] cells plus an opaque
    metadata blob.  The metadata blob is where the owning component stores
    the recovery bookkeeping that must be made stable atomically with the
    page — abstract LSNs and dLSNs for a DC page (paper Section 5.1.2,
    "page sync"), a plain page LSN for the monolithic baseline.

    Cell data is uninterpreted here: leaf pages of a B-tree store encoded
    records, inner pages store encoded child page ids. *)

type kind = Leaf | Inner

type t

val create : id:Page_id.t -> kind:kind -> capacity:int -> t
(** [capacity] is the byte budget for cells (keys + data + per-cell
    overhead); metadata is accounted separately by {!meta_size}. *)

val id : t -> Page_id.t

val kind : t -> kind

val capacity : t -> int

val cell_count : t -> int

val used_bytes : t -> int

val cell_size : key:string -> data:string -> int
(** Bytes a cell occupies, including slot overhead. *)

val would_overflow : t -> key:string -> data:string -> bool
(** Whether setting [key] to [data] would exceed the page's capacity. *)

val find : t -> string -> string option
(** Exact-key lookup. *)

val find_le : t -> string -> (int * string * string) option
(** [(index, key, data)] of the rightmost cell with key <= the argument;
    [None] if every cell is greater (or the page is empty).  This is the
    routing primitive for inner B-tree pages. *)

val set : t -> key:string -> data:string -> unit
(** Insert or replace.  The caller must have checked {!would_overflow};
    this function does not enforce the capacity (structure modification
    policy lives in the access method). *)

val remove : t -> string -> bool
(** [remove t key] deletes the cell; [false] if absent. *)

val min_key : t -> string option

val max_key : t -> string option

val cells : t -> (string * string) list
(** All cells in key order. *)

val iter_from : t -> string -> (string -> string -> [ `Continue | `Stop ]) -> unit
(** [iter_from t key f] visits cells with key >= [key] in order until [f]
    stops or the page is exhausted. *)

val nth : t -> int -> string * string
(** Cell at position [i] in key order; raises [Invalid_argument] if out of
    range. *)

val split_upper : t -> string * (string * string) list
(** [split_upper t] removes the upper half of the cells (by bytes) from
    [t] and returns [(split_key, moved_cells)]: every moved cell has
    key >= split_key.  Requires at least two cells. *)

val absorb : t -> (string * string) list -> unit
(** Add the given cells (used by consolidation and split redo). *)

val next : t -> Page_id.t option
(** Right sibling link (leaf chains). *)

val set_next : t -> Page_id.t option -> unit

val meta : t -> string
(** The opaque metadata blob, [""] initially. *)

val set_meta : t -> string -> unit

val meta_size : t -> int

val copy : t -> t
(** Deep copy; disk snapshots rely on this. *)

val clear : t -> unit
(** Drop every cell (metadata and links retained). *)

val replace_cells : t -> (string * string) list -> unit
(** Overwrite the cell content wholesale (recovery from a physical page
    image).  The list need not be sorted. *)

val pp : Format.formatter -> t -> unit
