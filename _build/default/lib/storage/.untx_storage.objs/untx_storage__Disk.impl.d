lib/storage/disk.ml: Option Page Page_id String Untx_util
