lib/storage/disk.mli: Page Page_id Untx_util
