lib/storage/cache.ml: Disk Page Page_id Untx_util
