lib/storage/cache.mli: Disk Page Page_id Untx_util
