lib/storage/latch.ml:
