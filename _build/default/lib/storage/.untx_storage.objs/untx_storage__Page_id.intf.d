lib/storage/page_id.mli: Format Hashtbl Map Set
