lib/storage/latch.mli:
