lib/storage/page.ml: Array Format List Page_id Stdlib String
