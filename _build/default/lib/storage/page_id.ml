type t = int

let of_int i = i

let to_int t = t

let equal = Int.equal

let compare = Int.compare

let pp ppf t = Format.fprintf ppf "pg%d" t

let to_string t = "pg" ^ string_of_int t

let invalid = -1

module Map = Map.Make (Int)
module Set = Set.Make (Int)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = Int.equal

  let hash = Hashtbl.hash
end)
