(** Page identifiers, private to the Data Component side of the kernel.

    The TC never sees one of these: confining pagination knowledge to the
    DC is the core architectural invariant of the paper. *)

type t

val of_int : int -> t

val to_int : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val invalid : t
(** A sentinel that never names a real page. *)

module Map : Map.S with type key = t

module Set : Set.S with type elt = t

module Tbl : Hashtbl.S with type key = t
