module Instrument = Untx_util.Instrument

type t = {
  pages : Page.t Page_id.Tbl.t;
  mutable next_id : int;
  mutable free_list : Page_id.Set.t;
  counters : Instrument.t;
  mutable master : string option;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_written : int;
}

let create ?(counters = Instrument.global) () =
  {
    pages = Page_id.Tbl.create 256;
    next_id = 1;
    free_list = Page_id.Set.empty;
    counters;
    master = None;
    reads = 0;
    writes = 0;
    bytes_written = 0;
  }

let alloc t =
  match Page_id.Set.min_elt_opt t.free_list with
  | Some id ->
    t.free_list <- Page_id.Set.remove id t.free_list;
    id
  | None ->
    let id = Page_id.of_int t.next_id in
    t.next_id <- t.next_id + 1;
    id

let free t id =
  Page_id.Tbl.remove t.pages id;
  t.free_list <- Page_id.Set.add id t.free_list

let reserve t id = t.free_list <- Page_id.Set.remove id t.free_list

let write t page =
  t.free_list <- Page_id.Set.remove (Page.id page) t.free_list;
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + Page.used_bytes page + Page.meta_size page;
  Instrument.bump t.counters "disk.page_writes";
  Page_id.Tbl.replace t.pages (Page.id page) (Page.copy page)

let read t id =
  t.reads <- t.reads + 1;
  Instrument.bump t.counters "disk.page_reads";
  Option.map Page.copy (Page_id.Tbl.find_opt t.pages id)

let exists t id = Page_id.Tbl.mem t.pages id

let page_count t = Page_id.Tbl.length t.pages

let iter t f = Page_id.Tbl.iter (fun _ page -> f (Page.copy page)) t.pages

let set_master t blob =
  t.bytes_written <- t.bytes_written + String.length blob;
  Instrument.bump t.counters "disk.master_writes";
  t.master <- Some blob

let master t = t.master

let reads t = t.reads

let writes t = t.writes

let bytes_written t = t.bytes_written
