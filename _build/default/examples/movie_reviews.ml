(* The cloud sharing scenario of paper Section 6.3 (Figure 2).

   Deployment:
   - two movie DCs holding Movies + Reviews, partitioned and clustered
     by movie, so W1 reads all reviews of one movie from one machine;
   - one user DC holding Users + MyReviews (a user-clustered copy of
     reviews), so W4 reads one machine;
   - two updater TCs owning disjoint users (uid mod 2), each committing
     W2 transactions that span a movie DC and the user DC with no
     distributed commit;
   - one reader TC running W1 with versioned read-committed access to
     data the updaters own — no locks, no blocking.

   Run with:  dune exec examples/movie_reviews.exe *)

module Movie = Untx_cloud.Movie
module Deploy = Untx_cloud.Deploy

let res = function Ok v -> v | Error msg -> failwith msg

let () =
  let m = Movie.create ~n_user_tcs:2 ~n_movie_dcs:2 () in
  Movie.seed_movies m 6;
  Movie.seed_users m 10;

  (* W2: users post reviews.  uid mod 2 routes each to its owning TC;
     each transaction updates Reviews (movie DC) and MyReviews (user
     DC) atomically under one TC log. *)
  List.iter
    (fun (uid, mid, text) -> res (Movie.w2_add_review m ~uid ~mid ~text))
    [
      (0, 2, "a masterpiece");
      (1, 2, "overrated");
      (4, 2, "fell asleep");
      (3, 5, "the best dog in cinema");
      (0, 5, "delightful");
      (7, 2, "rewatch value: infinite");
    ];

  (* W3: profile updates stay entirely on the user DC. *)
  res (Movie.w3_update_profile m ~uid:1 ~profile:"critic, est. 2009");
  Deploy.quiesce (Movie.deploy m);

  (* W1: the reader TC collects every review of movie 2 from one DC,
     read-committed, without a single lock. *)
  let print_reviews () =
    let reviews = Movie.w1_reviews_for_movie m ~mid:2 ~mode:`Committed in
    Printf.printf "movie 2 reviews (%d):\n" (List.length reviews);
    List.iter (fun (k, v) -> Printf.printf "  %s  %s\n" k v) reviews
  in
  print_reviews ();

  (* W4: user 0 lists their own reviews from the user-clustered copy. *)
  let mine = Movie.w4_my_reviews m ~uid:0 in
  Printf.printf "user 0 wrote %d reviews: %s\n" (List.length mine)
    (String.concat ", " (List.map snd mine));

  (* Crash updater TC 0.  Its committed reviews survive; TC 1 and the
     reader never notice; the restarted TC keeps posting. *)
  Printf.printf "\n-- crashing updater TC 0 --\n";
  Movie.crash_user_tc m 0;
  print_reviews ();
  res (Movie.w2_add_review m ~uid:0 ~mid:4 ~text:"posted after my TC died");
  Printf.printf "movie 4 reviews after restart: %d\n"
    (List.length (Movie.w1_reviews_for_movie m ~mid:4 ~mode:`Committed));

  Printf.printf "\nmessages delivered across all transports: %d\n"
    (Movie.messages_total m);
  print_endline "movie_reviews: OK"
