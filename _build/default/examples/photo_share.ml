(* The Web 2.0 photo-sharing platform of paper Section 2.

   The application combines heterogeneous Data Components under one
   Transactional Component:

   - [dc-main]: an ordinary table manager holding [users] and [photos];
   - [dc-tags]: a "home-grown index manager" — here a separate DC whose
     [tag_index] table stores (tag:photo -> owner) entries, standing in
     for the application-specific text/phrase index the paper imagines.

   Because one TC logs all logical operations, a transaction that
   uploads a photo and updates the tag index spans both DCs with full
   atomicity and no two-phase commit: the TC's log force is the single
   commit point.  The demo aborts one upload mid-way, crashes the index
   DC, and shows referential integrity holds throughout.

   Run with:  dune exec examples/photo_share.exe *)

module Deploy = Untx_cloud.Deploy
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id

let ok = function
  | `Ok v -> v
  | `Blocked -> failwith "unexpected lock conflict"
  | `Fail msg -> failwith msg

let photo_key ~user ~photo = Printf.sprintf "%s/%s" user photo

let tag_key ~tag ~user ~photo = Printf.sprintf "%s:%s/%s" tag user photo

let upload tc ~user ~photo ~tags =
  let txn = Tc.begin_txn tc in
  ok
    (Tc.insert tc txn ~table:"photos"
       ~key:(photo_key ~user ~photo)
       ~value:(Printf.sprintf "blob-of-%s" photo));
  List.iter
    (fun tag ->
      ok
        (Tc.insert tc txn ~table:"tag_index"
           ~key:(tag_key ~tag ~user ~photo)
           ~value:user))
    tags;
  ok (Tc.commit tc txn)

let photos_tagged tc tag =
  Tc.scan_committed tc ~table:"tag_index" ~from_key:(tag ^ ":") ~limit:100
  |> List.filter (fun (k, _) ->
         String.length k > String.length tag && String.sub k 0 (String.length tag + 1) = tag ^ ":")
  |> List.map fst

let () =
  let d = Deploy.create () in
  ignore (Deploy.add_dc d ~name:"dc-main" Dc.default_config);
  ignore (Deploy.add_dc d ~name:"dc-tags" Dc.default_config);
  Deploy.create_table d ~dc:"dc-main" ~name:"users" ~versioned:true;
  Deploy.create_table d ~dc:"dc-main" ~name:"photos" ~versioned:true;
  Deploy.create_table d ~dc:"dc-tags" ~name:"tag_index" ~versioned:true;
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  Tc.map_table tc ~table:"users" ~dc:"dc-main" ~versioned:true;
  Tc.map_table tc ~table:"photos" ~dc:"dc-main" ~versioned:true;
  Tc.map_table tc ~table:"tag_index" ~dc:"dc-tags" ~versioned:true;

  (* Sign up users. *)
  let txn = Tc.begin_txn tc in
  ok (Tc.insert tc txn ~table:"users" ~key:"ada" ~value:"Ada L.");
  ok (Tc.insert tc txn ~table:"users" ~key:"grace" ~value:"Grace H.");
  ok (Tc.commit tc txn);

  (* Uploads spanning both DCs, each a single TC-local transaction. *)
  upload tc ~user:"ada" ~photo:"bridge.jpg" ~tags:[ "goldengate"; "fog" ];
  upload tc ~user:"grace" ~photo:"gg-dawn.jpg" ~tags:[ "goldengate"; "dawn" ];
  Printf.printf "photos tagged goldengate: %s\n"
    (String.concat ", " (photos_tagged tc "goldengate"));

  (* An upload aborted mid-way: neither the photo nor its index entries
     survive — cross-DC atomicity without any 2PC. *)
  let txn = Tc.begin_txn tc in
  ok
    (Tc.insert tc txn ~table:"photos"
       ~key:(photo_key ~user:"ada" ~photo:"blurry.jpg")
       ~value:"blob");
  ok
    (Tc.insert tc txn ~table:"tag_index"
       ~key:(tag_key ~tag:"goldengate" ~user:"ada" ~photo:"blurry.jpg")
       ~value:"ada");
  Tc.abort tc txn ~reason:"user cancelled";
  Printf.printf "after aborted upload:     %s\n"
    (String.concat ", " (photos_tagged tc "goldengate"));

  (* Crash the home-grown index DC: it recovers to a well-formed state
     from its own log and the TC redoes logical history into it. *)
  Deploy.crash_dc d "dc-tags";
  Printf.printf "after index-DC crash:     %s\n"
    (String.concat ", " (photos_tagged tc "goldengate"));

  (* Referential integrity check: every index entry's photo exists. *)
  let dangling =
    List.filter
      (fun entry ->
        match String.index_opt entry ':' with
        | None -> true
        | Some i ->
          let photo = String.sub entry (i + 1) (String.length entry - i - 1) in
          Tc.read_committed tc ~table:"photos" ~key:photo = None)
      (photos_tagged tc "goldengate")
  in
  assert (dangling = []);
  print_endline "photo_share: OK (no dangling index entries)"
