examples/quickstart.mli:
