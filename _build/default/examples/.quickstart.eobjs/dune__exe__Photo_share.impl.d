examples/photo_share.ml: List Printf String Untx_cloud Untx_dc Untx_tc Untx_util
