examples/movie_reviews.ml: List Printf String Untx_cloud
