examples/partial_failure.ml: List Printf Untx_dc Untx_kernel Untx_tc Untx_util
