examples/quickstart.ml: List Printf String Untx_kernel
