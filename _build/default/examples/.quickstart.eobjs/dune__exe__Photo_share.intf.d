examples/photo_share.mli:
