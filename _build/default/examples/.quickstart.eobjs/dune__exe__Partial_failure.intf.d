examples/partial_failure.mli:
