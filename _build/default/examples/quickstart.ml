(* Quickstart: an unbundled kernel in a few lines.

   Creates a kernel (one Transactional Component + one Data Component
   over an in-process transport), runs a couple of transactions, crashes
   each component in turn, and shows that committed state survives while
   uncommitted state never does.

   Run with:  dune exec examples/quickstart.exe *)

module Kernel = Untx_kernel.Kernel

let table = "accounts"

let ok = function
  | `Ok v -> v
  | `Blocked -> failwith "unexpected lock conflict in a single-client demo"
  | `Fail msg -> failwith msg

let show k label =
  let txn = Kernel.begin_txn k in
  let rows = ok (Kernel.scan k txn ~table ~from_key:"" ~limit:100) in
  ignore (Kernel.commit k txn);
  Printf.printf "%-28s %s\n" label
    (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) rows))

let () =
  let k = Kernel.create Kernel.default_config in
  Kernel.create_table k ~name:table ~versioned:true;

  (* A committed transaction: open two accounts. *)
  let txn = Kernel.begin_txn k in
  ok (Kernel.insert k txn ~table ~key:"alice" ~value:"100");
  ok (Kernel.insert k txn ~table ~key:"bob" ~value:"50");
  ok (Kernel.commit k txn);
  show k "after first commit:";

  (* A transfer, also committed. *)
  let txn = Kernel.begin_txn k in
  ok (Kernel.update k txn ~table ~key:"alice" ~value:"70");
  ok (Kernel.update k txn ~table ~key:"bob" ~value:"80");
  ok (Kernel.commit k txn);
  show k "after transfer:";

  (* An uncommitted transaction, interrupted by a TC crash: the Data
     Component resets exactly the pages holding the lost operations and
     the restarted TC repeats history, so the transfer survives and the
     in-flight doubling does not. *)
  let doomed = Kernel.begin_txn k in
  ok (Kernel.update k doomed ~table ~key:"alice" ~value:"140");
  Printf.printf "%-28s (uncommitted: alice=140)\n" "in-flight update...";
  Kernel.crash_tc k;
  show k "after TC crash + restart:";

  (* Now crash the Data Component: it loses its cache and rebuilds
     well-formed structures from stable state and its own log before the
     TC redoes logical history. *)
  Kernel.crash_dc k;
  show k "after DC crash + recovery:";

  print_endline "quickstart: OK"
