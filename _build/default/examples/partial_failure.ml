(* Partial failures (paper Section 5.3), narrated.

   A monolithic kernel can only fail as a whole; an unbundled one can
   lose its TC or its DC independently.  This example walks through all
   three failure shapes and the two TC-failure reset strategies —
   selective page reset vs the "draconian" complete-failure fallback —
   printing what each component forgets and how the contracts restore
   exactly-once execution.

   Run with:  dune exec examples/partial_failure.exe *)

module Kernel = Untx_kernel.Kernel
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Transport = Untx_kernel.Transport

let table = "ledger"

let ok = function
  | `Ok v -> v
  | `Blocked -> failwith "blocked"
  | `Fail msg -> failwith msg

let make reset_mode =
  let k =
    Kernel.create
      {
        Kernel.tc = Tc.default_config (Tc_id.of_int 1);
        dc =
          {
            Dc.default_config with
            tc_reset_mode = reset_mode;
            page_capacity = 256;
          };
        policy = Transport.reliable;
        seed = 7;
        auto_checkpoint_every = 0;
      }
  in
  Kernel.create_table k ~name:table ~versioned:true;
  k

let seed k n =
  let txn = Kernel.begin_txn k in
  for i = 0 to n - 1 do
    ok
      (Kernel.insert k txn ~table
         ~key:(Printf.sprintf "entry%03d" i)
         ~value:(Printf.sprintf "amount-%d" i))
  done;
  ok (Kernel.commit k txn)

let count k =
  let txn = Kernel.begin_txn k in
  let rows = ok (Kernel.scan k txn ~table ~from_key:"" ~limit:10_000) in
  ignore (Kernel.commit k txn);
  List.length rows

let banner msg = Printf.printf "\n=== %s ===\n" msg

let () =
  banner "DC failure: cache and unforced DC-log tail are lost";
  let k = make Dc.Selective in
  seed k 200;
  Printf.printf "committed rows before crash: %d\n" (count k);
  let txn = Kernel.begin_txn k in
  ok (Kernel.update k txn ~table ~key:"entry000" ~value:"uncommitted!");
  Kernel.crash_dc k;
  Printf.printf
    "DC recovered: structures rebuilt from stable pages + DC-log,\n\
     then the TC resent logical history from its redo scan start point.\n";
  Kernel.abort k txn ~reason:"demo rollback";
  Printf.printf "in-flight txn rolled back; entry000 restored.\n";
  Printf.printf "rows after DC recovery: %d\n" (count k);

  banner "TC failure with SELECTIVE reset";
  let k = make Dc.Selective in
  seed k 200;
  let doomed = Kernel.begin_txn k in
  ok (Kernel.update k doomed ~table ~key:"entry042" ~value:"lost-forever");
  Kernel.quiesce k;
  let dc = Kernel.dc k in
  let dropped_before = Dc.pages_dropped dc in
  Kernel.crash_tc k;
  Printf.printf
    "TC lost its volatile log tail; the DC reset %d page(s) — exactly\n\
     those whose abstract LSNs reached past the TC's stable log — and\n\
     kept every other page in cache.\n"
    (Dc.pages_dropped dc - dropped_before);
  Printf.printf "rows after restart: %d (uncommitted update gone)\n" (count k);

  banner "TC failure with DRACONIAN (complete) reset";
  let k = make Dc.Complete in
  seed k 200;
  let doomed = Kernel.begin_txn k in
  ok (Kernel.update k doomed ~table ~key:"entry042" ~value:"lost-again");
  Kernel.quiesce k;
  Kernel.crash_tc k;
  Printf.printf
    "the DC turned the partial failure into a complete one: dropped its\n\
     whole cache and replayed its own log, then the TC redid history.\n";
  Printf.printf "rows after restart: %d\n" (count k);

  banner "Both components fail (the monolithic case)";
  let k = make Dc.Selective in
  seed k 200;
  Kernel.crash_both k;
  Printf.printf "rows after full restart: %d\n" (count k);

  print_endline "\npartial_failure: OK"
