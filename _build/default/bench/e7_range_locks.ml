(* E7 — Range locking without pages (paper Section 3.1).

   An unbundled TC must lock ranges before it knows which keys exist —
   the two proposed protocols are fetch-ahead (probe, lock the returned
   keys, verify) and static range-partition locks (fewer, coarser).
   The integrated baseline locks keys as it walks its own pages, with
   no probe round-trips — the advantage the paper concedes to existing
   systems.  A scan-heavy mix exposes all three. *)

open Bench_util
module Driver = Untx_kernel.Driver
module Engine = Untx_kernel.Engine
module Tc = Untx_tc.Tc
module Kernel = Untx_kernel.Kernel
module Mono = Untx_baseline.Mono

let spec =
  {
    Driver.default_spec with
    txns = 800;
    ops_per_txn = 5;
    read_ratio = 0.2;
    scan_ratio = 0.4;
    scan_limit = 25;
    key_space = 4_000;
    concurrency = 4;
    seed = 71;
  }

let run () =
  let run_unbundled label cc =
    let k = make_kernel ~cc_protocol:cc () in
    let e = Engine.of_kernel k in
    Driver.preload e spec;
    let r, t = time (fun () -> Driver.run e spec) in
    let tc = Kernel.tc k in
    [
      label;
      fmt_f (float_of_int r.Driver.committed /. t);
      string_of_int (Tc.lock_acquisitions tc);
      string_of_int (Tc.messages_sent tc);
      string_of_int r.Driver.blocked_events;
      string_of_int r.Driver.deadlocks;
    ]
  in
  let run_mono () =
    let m = make_mono () in
    let e = mono_engine m in
    Driver.preload e spec;
    let r, t = time (fun () -> Driver.run e spec) in
    [
      "monolith (in-page key locks)";
      fmt_f (float_of_int r.Driver.committed /. t);
      string_of_int (Mono.lock_acquisitions m);
      "0";
      string_of_int r.Driver.blocked_events;
      string_of_int r.Driver.deadlocks;
    ]
  in
  print_table
    ~title:
      "E7  Range protocols on a scan-heavy mix (40% scans of 25 keys, 4 \
       concurrent txns)"
    ~header:[ "protocol"; "txns/s"; "locks"; "msgs"; "blocked"; "deadlocks" ]
    [
      run_unbundled "fetch-ahead (key locks)" Tc.Key_locks;
      run_unbundled "range partition (64 slots)" (Tc.Range_locks 64);
      run_unbundled "range partition (16 slots)" (Tc.Range_locks 16);
      run_mono ();
    ];
  Printf.printf
    "claim check: fetch-ahead pays probe messages per scan batch; range \
     partitions need far fewer\nlocks but block more (coarser conflicts) — \
     'gives up some concurrency... reduces locking\noverhead'.  The \
     integrated engine needs no probes at all.\n"
