(* E6 — The cloud sharing scenario without distributed transactions
   (paper Section 6.3, Figure 2).

   The same W1-W4 movie-site mix runs on:
   - the unbundled multi-TC deployment (updaters own disjoint users,
     reads are versioned read-committed — no locks, no 2PC);
   - the same deployment with dirty reads (Section 6.2.1);
   - classic 2PC over partitioned monolithic engines — the architecture
     the paper's design avoids — counting its prepare/commit messages
     and forces, plus the blocking window an in-doubt coordinator
     leaves behind. *)

open Bench_util
module Movie = Untx_cloud.Movie
module Deploy = Untx_cloud.Deploy
module Two_pc = Untx_cloud.Two_pc
module Mono = Untx_baseline.Mono
module Rng = Untx_util.Rng

let n_users = 64

let n_movies = 40

let mix = 1_500 (* workload events *)

let res = function Ok v -> v | Error m -> failwith m

let tc_forces d =
  List.fold_left
    (fun acc name -> acc + Untx_tc.Tc.log_forces (Deploy.tc d name))
    0 (Deploy.tc_names d)

let run_unbundled mode =
  let m = Movie.create ~n_user_tcs:2 ~n_movie_dcs:2 ~seed:61 () in
  Movie.seed_movies m n_movies;
  Movie.seed_users m n_users;
  let rng = Rng.create ~seed:62 in
  let reads = ref 0 in
  let f () =
    for _ = 1 to mix do
      let uid = Rng.int rng n_users and mid = Rng.int rng n_movies in
      match Rng.int rng 10 with
      | 0 | 1 ->
        (* W2, may be a duplicate review: tolerated *)
        (match Movie.w2_add_review m ~uid ~mid ~text:"review!" with
        | Ok () | Error _ -> ())
      | 2 -> res (Movie.w3_update_profile m ~uid ~profile:"updated")
      | 3 -> ignore (Movie.w4_my_reviews m ~uid)
      | _ ->
        (* W1 dominates, as the paper says *)
        reads := !reads + List.length (Movie.w1_reviews_for_movie m ~mid ~mode)
    done
  in
  let (), t = time f in
  (float_of_int mix /. t, Movie.messages_total m, tc_forces (Movie.deploy m))

let run_two_pc () =
  let t2 =
    Two_pc.create ~partitions:[ "p0"; "p1"; "p2" ]
      { Mono.default_config with page_capacity = 512 }
  in
  List.iter (fun n -> Two_pc.create_table t2 ~name:n)
    [ "movies"; "reviews"; "users"; "myreviews" ];
  let rng = Rng.create ~seed:63 in
  (* seed *)
  let seed_one table key value =
    let d = Two_pc.begin_dtxn t2 in
    res (Two_pc.write t2 d ~table ~key ~value);
    res (Two_pc.commit t2 d)
  in
  for mid = 0 to n_movies - 1 do
    seed_one "movies" (Movie.movie_key mid) "title"
  done;
  for uid = 0 to n_users - 1 do
    seed_one "users" (Movie.user_key uid) "profile"
  done;
  let f () =
    for _ = 1 to mix do
      let uid = Rng.int rng n_users and mid = Rng.int rng n_movies in
      match Rng.int rng 10 with
      | 0 | 1 ->
        (* W2 spans partitions: full 2PC *)
        let d = Two_pc.begin_dtxn t2 in
        res
          (Two_pc.write t2 d ~table:"reviews"
             ~key:(Movie.review_key ~mid ~uid)
             ~value:"review!");
        res
          (Two_pc.write t2 d ~table:"myreviews"
             ~key:(Movie.user_key uid ^ ":" ^ Movie.movie_key mid)
             ~value:"review!");
        res (Two_pc.commit t2 d)
      | 2 ->
        let d = Two_pc.begin_dtxn t2 in
        res
          (Two_pc.write t2 d ~table:"users" ~key:(Movie.user_key uid)
             ~value:"updated");
        res (Two_pc.commit t2 d)
      | _ ->
        (* reads also run as (single-partition) transactions *)
        let d = Two_pc.begin_dtxn t2 in
        ignore (Two_pc.read t2 d ~table:"movies" ~key:(Movie.movie_key mid));
        res (Two_pc.commit t2 d)
    done
  in
  let (), t = time f in
  (float_of_int mix /. t, Two_pc.messages t2, Two_pc.forces t2)

let blocking_demo () =
  let t2 = Two_pc.create ~partitions:[ "p0"; "p1" ] Mono.default_config in
  Two_pc.create_table t2 ~name:"users";
  let d0 = Two_pc.begin_dtxn t2 in
  res (Two_pc.write t2 d0 ~table:"users" ~key:"u1" ~value:"v");
  res (Two_pc.commit t2 d0);
  let d = Two_pc.begin_dtxn t2 in
  res (Two_pc.write t2 d ~table:"users" ~key:"u1" ~value:"w");
  Two_pc.crash_coordinator_in_doubt t2 d;
  (* every later writer of u1 blocks until the coordinator returns *)
  let blocked = ref 0 in
  for _ = 1 to 50 do
    let d' = Two_pc.begin_dtxn t2 in
    (match Two_pc.write t2 d' ~table:"users" ~key:"u1" ~value:"x" with
    | Error "blocked" -> incr blocked
    | _ -> ());
    Two_pc.abort t2 d'
  done;
  Two_pc.recover_coordinator t2;
  !blocked

let run () =
  let tput_rc, msgs_rc, forces_rc = run_unbundled `Committed in
  let tput_dirty, msgs_dirty, forces_dirty = run_unbundled `Dirty in
  let tput_2pc, msgs_2pc, forces_2pc = run_two_pc () in
  let row label tput msgs forces blocking =
    [
      label; fmt_f tput; fmt_f2 (per msgs mix); fmt_f2 (per forces mix);
      blocking;
    ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E6  Movie site W1-W4 mix (%d events; W1-heavy as in the paper).  \
          Coordination cost is msgs+forces\n     per event: the in-process \
          harness charges no wire latency, so raw events/s flatters \
          whichever\n     engine runs locally."
         mix)
    ~header:
      [ "deployment"; "events/s"; "msgs/event"; "forces/event"; "blocking" ]
    [
      row "unbundled, read-committed" tput_rc msgs_rc forces_rc "never";
      row "unbundled, dirty reads" tput_dirty msgs_dirty forces_dirty "never";
      row "2PC over monoliths" tput_2pc msgs_2pc forces_2pc "in doubt";
    ];
  let blocked = blocking_demo () in
  Printf.printf
    "claim check: commits in the unbundled deployment are one TC-local \
     force with no prepare round —\n'there is no classic (blocking) two \
     phase commit in this picture'.  The 2PC baseline pays a\nprepare and a \
     commit force per participant and left an in-doubt lock that blocked \
     %d/50\nsubsequent writers until coordinator recovery.\n"
    blocked
