(* E2 — Instance scaling (the multi-core argument, Intro trend 3).

   The paper speculates that separately instantiable TCs and DCs use
   cores better: "one might deploy a larger number of DC instances on a
   multi-core platform than TC instances for better load balancing".

   Shared-nothing partitions are the mechanism that makes this safe: we
   run N independent kernel partitions, each pinned to its own domain
   (OCaml 5 core), splitting a fixed total workload.  Scaling the
   partition count is exactly "deploying more instances". *)

open Bench_util
module Driver = Untx_kernel.Driver
module Engine = Untx_kernel.Engine

let total_txns = 4_000

let spec_for ~instances =
  {
    Driver.default_spec with
    txns = total_txns / instances;
    ops_per_txn = 6;
    read_ratio = 0.5;
    key_space = 4_000;
    concurrency = 2;
    seed = 23;
  }

let run_partition instances i =
  let spec = { (spec_for ~instances) with seed = 23 + i } in
  (* own counter registry per domain: the global one is not thread-safe *)
  let counters = Untx_util.Instrument.create () in
  let k = make_kernel ~counters ~seed:(100 + i) () in
  let e = Engine.of_kernel k in
  Driver.preload e spec;
  Driver.run e spec

let run_instances instances =
  let _, elapsed =
    time (fun () ->
        let domains =
          List.init instances (fun i ->
              Domain.spawn (fun () -> run_partition instances i))
        in
        List.iter (fun d -> ignore (Domain.join d)) domains)
  in
  elapsed

let run () =
  let cores = Domain.recommended_domain_count () in
  let candidates = [ 1; 2; 4 ] in
  let base = ref None in
  let rows =
    List.map
      (fun n ->
        let t = run_instances n in
        let tput = float_of_int total_txns /. t in
        let speedup =
          match !base with
          | None ->
            base := Some tput;
            1.0
          | Some b -> tput /. b
        in
        [ string_of_int n; fmt_f tput; fmt_f2 speedup ])
      candidates
  in
  print_table
    ~title:
      (Printf.sprintf
         "E2  Instance scaling: %d txns split over N shared-nothing \
          TC+DC partitions (%d cores available)"
         total_txns cores)
    ~header:[ "instances"; "txns/s"; "speedup" ]
    rows;
  Printf.printf
    "claim check: throughput should rise with instance count — the \
     unbundled components\nscale by deployment, not by shared-memory \
     tricks.\n"
