(* E8 — Sharing modes across TCs (paper Section 6.2).

   One TC updates its partition of a shared, versioned table; a second
   TC reads the same keys concurrently with each of the paper's sharing
   flavours.  Dirty reads see uncommitted values; versioned
   read-committed reads see before-versions until the writer commits —
   and neither ever takes a lock or blocks the writer. *)

open Bench_util
module Deploy = Untx_cloud.Deploy
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Rng = Untx_util.Rng

let n_keys = 500

let rounds = 300

let key i = Printf.sprintf "k%04d" i

let ok = function
  | `Ok v -> v
  | `Blocked -> failwith "blocked"
  | `Fail m -> failwith m

let setup () =
  let d = Deploy.create ~seed:81 () in
  ignore (Deploy.add_dc d ~name:"dc1" Dc.default_config);
  Deploy.create_table d ~dc:"dc1" ~name:"shared" ~versioned:true;
  let writer = Deploy.add_tc d ~name:"w" (Tc.default_config (Tc_id.of_int 1)) in
  let reader = Deploy.add_tc d ~name:"r" (Tc.default_config (Tc_id.of_int 2)) in
  Tc.map_table writer ~table:"shared" ~dc:"dc1" ~versioned:true;
  Tc.map_table reader ~table:"shared" ~dc:"dc1" ~versioned:true;
  let txn = Tc.begin_txn writer in
  for i = 0 to n_keys - 1 do
    ok (Tc.insert writer txn ~table:"shared" ~key:(key i) ~value:"committed-0")
  done;
  ok (Tc.commit writer txn);
  (d, writer, reader)

let run_mode label read =
  let _, writer, reader = setup () in
  let rng = Rng.create ~seed:82 in
  let uncommitted_seen = ref 0 in
  let read_count = ref 0 in
  let f () =
    for round = 1 to rounds do
      (* the writer holds an open transaction over a batch of keys... *)
      let txn = Tc.begin_txn writer in
      let batch = List.init 8 (fun _ -> Rng.int rng n_keys) in
      List.iter
        (fun i ->
          ok
            (Tc.update writer txn ~table:"shared" ~key:(key i)
               ~value:(Printf.sprintf "uncommitted-%d" round)))
        batch;
      Tc.quiesce writer;
      (* ...while the reader reads those very keys, lock-free.  Only the
         value written by the *open* transaction counts as uncommitted:
         earlier rounds' values are committed by now. *)
      let in_flight = Printf.sprintf "uncommitted-%d" round in
      List.iter
        (fun i ->
          incr read_count;
          match read reader ~key:(key i) with
          | Some v when String.equal v in_flight -> incr uncommitted_seen
          | _ -> ())
        batch;
      ok (Tc.commit writer txn)
    done
  in
  let (), t = time f in
  [
    label;
    fmt_f (float_of_int !read_count /. t);
    string_of_int !read_count;
    string_of_int !uncommitted_seen;
    Printf.sprintf "%.0f%%"
      (100. *. float_of_int !uncommitted_seen /. float_of_int !read_count);
  ]

let run () =
  print_table
    ~title:
      "E8  Cross-TC sharing flavours: reader vs writer on the same keys \
       (reads taken while the\n     writer's transaction is still open)"
    ~header:
      [ "mode"; "reads/s"; "reads"; "saw uncommitted"; "dirty fraction" ]
    [
      run_mode "dirty read (6.2.1)" (fun tc ~key ->
          Tc.read_dirty tc ~table:"shared" ~key);
      run_mode "read committed (6.2.2)" (fun tc ~key ->
          Tc.read_committed tc ~table:"shared" ~key);
    ];
  Printf.printf
    "claim check: dirty readers always see the in-flight value; versioned \
     read-committed readers\nnever do (they read the before-version) — and \
     'readers are never blocked' in either mode.\n"
