(* A — Ablations of the design choices DESIGN.md calls out.

   A1  write pipelining: the TC's only obligation is "no conflicting
       operations concurrently in flight"; non-conflicting writes can be
       dispatched without awaiting each ack (versioned tables).
   A2  low-water-mark cadence: frequent LWMs shrink {LSNin} sets (small
       page-sync metadata) at the cost of control messages.
   A3  combined vs separate watermark messages (Section 4.2.1's
       "simplicity of coding" suggestion).
   A4  group commit: batching log forces across commits.
   A5  lock granularity on a plain point-op mix (table locks at one
       extreme; E7 covers the scan-heavy case). *)

open Bench_util
module Driver = Untx_kernel.Driver
module Engine = Untx_kernel.Engine
module Kernel = Untx_kernel.Kernel
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Transport = Untx_kernel.Transport
module Instrument = Untx_util.Instrument

let spec =
  {
    Driver.default_spec with
    txns = 1_000;
    ops_per_txn = 8;
    read_ratio = 0.25;
    key_space = 4_000;
    concurrency = 2;
    seed = 111;
  }

let run_kernel ?(spec = spec) ?counters cfg =
  let k = Kernel.create ?counters cfg in
  Kernel.create_table k ~name:spec.Driver.table ~versioned:true;
  let e = Engine.of_kernel k in
  Driver.preload e spec;
  let r, t = time (fun () -> Driver.run e spec) in
  (k, r, t)

let delayed =
  { Transport.delay_min = 1; delay_max = 2; reorder = true; dup_prob = 0.;
    drop_prob = 0. }

let a1_pipelining () =
  let row label pipeline =
    let cfg = kernel_config ~policy:delayed () in
    let cfg =
      { cfg with Kernel.tc = { cfg.Kernel.tc with pipeline_writes = pipeline } }
    in
    let k, r, t = run_kernel cfg in
    [
      label;
      fmt_f (float_of_int r.Driver.committed /. t);
      string_of_int (Tc.messages_sent (Kernel.tc k));
    ]
  in
  print_table
    ~title:
      "A1  Write pipelining over a delayed transport (1-2 tick latency \
       per message)"
    ~header:[ "writes"; "txns/s"; "msgs" ]
    [ row "pipelined (in-flight batch)" true; row "await each ack" false ];
  Printf.printf
    "ablation: pipelining hides per-message latency; the conflict rule \
     (not per-op round trips)\nis what correctness actually needs.\n"

let a2_lwm_cadence () =
  let row every =
    let counters = Instrument.create () in
    let cfg = kernel_config ~lwm_every:every ~cache_pages:64 () in
    let k, r, t = run_kernel ~counters cfg in
    Kernel.quiesce k;
    Dc.flush_all (Kernel.dc k);
    [
      string_of_int every;
      fmt_f (float_of_int r.Driver.committed /. t);
      string_of_int (Instrument.get counters "dc.meta_bytes_flushed");
      string_of_int (Instrument.get counters "cache.flushes");
    ]
  in
  print_table
    ~title:"A2  Low-water-mark cadence (ops between LWM messages)"
    ~header:[ "lwm every"; "txns/s"; "meta bytes"; "flushes" ]
    (List.map row [ 4; 16; 64; 256 ]);
  Printf.printf
    "ablation: rare LWMs leave fat {LSNin} sets that bloat page-sync \
     metadata — the knob behind\nE4's policy trade-off.\n"

let a3_watermark_combining () =
  let row label combine =
    let cfg = kernel_config ~lwm_every:8 () in
    let cfg =
      { cfg with
        Kernel.tc = { cfg.Kernel.tc with combine_watermarks = combine } }
    in
    let k, r, t = run_kernel cfg in
    ignore k;
    [ label; fmt_f (float_of_int r.Driver.committed /. t) ]
  in
  print_table
    ~title:"A3  Separate vs combined watermark control messages"
    ~header:[ "protocol"; "txns/s" ]
    [ row "separate EOSL + LWM" false; row "combined Watermarks" true ];
  Printf.printf
    "ablation: one message instead of two per watermark push — the \
     Section 4.2.1 simplification;\nsemantically equivalent (verified by \
     the test suite).\n"

let a4_group_commit () =
  let row group =
    let cfg = kernel_config () in
    let cfg =
      { cfg with Kernel.tc = { cfg.Kernel.tc with group_commit = group } }
    in
    let k, r, t = run_kernel cfg in
    [
      string_of_int group;
      fmt_f (float_of_int r.Driver.committed /. t);
      fmt_f2 (per (Tc.log_forces (Kernel.tc k)) r.Driver.committed);
    ]
  in
  print_table
    ~title:"A4  Group commit (commits per log force)"
    ~header:[ "group size"; "txns/s"; "forces/txn" ]
    (List.map row [ 1; 4; 16 ]);
  Printf.printf
    "ablation: batching forces trades commit durability latency for \
     I/O; recovery still only\nloses what the lost forces covered (test \
     suite: exactly the unforced tail).\n"

let a5_lock_granularity () =
  let row label cc =
    let k = make_kernel ~cc_protocol:cc () in
    let e = Engine.of_kernel k in
    Driver.preload e spec;
    let r, t = time (fun () -> Driver.run e spec) in
    [
      label;
      fmt_f (float_of_int r.Driver.committed /. t);
      string_of_int (Tc.lock_acquisitions (Kernel.tc k));
      string_of_int r.Driver.blocked_events;
      string_of_int r.Driver.deadlocks;
    ]
  in
  print_table
    ~title:"A5  Lock granularity on a point-op mix (2 concurrent txns)"
    ~header:[ "protocol"; "txns/s"; "locks"; "blocked"; "deadlocks" ]
    [
      row "key locks" Tc.Key_locks;
      row "range locks (32)" (Tc.Range_locks 32);
      row "table locks" Tc.Table_locks;
    ];
  Printf.printf
    "ablation: the spectrum Section 3.1 sketches — key locks maximize \
     concurrency, table locks\nserialize everything touching a table.\n"

let a6_occ_vs_2pl () =
  let row label cc theta =
    let contended = { spec with zipf_theta = theta; concurrency = 6;
                      key_space = (if theta > 0. then 64 else 4_000) } in
    let k = make_kernel ~cc_protocol:cc () in
    let e = Engine.of_kernel k in
    Driver.preload e contended;
    let r, t = time (fun () -> Driver.run e contended) in
    [
      label;
      (if theta > 0. then "hot (64 keys, zipf .9)" else "uniform (4k keys)");
      fmt_f (float_of_int r.Driver.committed /. t);
      string_of_int r.Driver.committed;
      string_of_int r.Driver.aborted;
      string_of_int r.Driver.deadlocks;
    ]
  in
  print_table
    ~title:
      "A6  Optimistic vs pessimistic TC concurrency control (Section        4.1.1 allows either)"
    ~header:
      [ "cc method"; "contention"; "txns/s"; "committed"; "aborted";
        "deadlocks" ]
    [
      row "2PL (key locks)" Tc.Key_locks 0.;
      row "optimistic" Tc.Optimistic 0.;
      row "2PL (key locks)" Tc.Key_locks 0.9;
      row "optimistic" Tc.Optimistic 0.9;
    ];
  Printf.printf
    "ablation: uncontended, OCC skips lock bookkeeping and never blocks;      contended, its validation
aborts replace 2PL's blocking and deadlock      victims — the classic crossover.
"

let run () =
  a1_pipelining ();
  a2_lwm_cadence ();
  a3_watermark_combining ();
  a4_group_commit ();
  a5_lock_granularity ();
  a6_occ_vs_2pl ()
