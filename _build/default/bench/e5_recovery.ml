(* E5 — Partial failures (paper Section 5.3).

   Monolithic kernels only fail whole; the unbundled kernel loses one
   side at a time.  We measure recovery work and wall time for:
   - DC failure (conventional redo resend from the redo scan start);
   - TC failure with the selective cache reset (only pages whose
     abstract LSNs reach past the stable log);
   - TC failure with the draconian complete-failure fallback;
   - both failing (the monolithic case), with and without a recent
     checkpoint (contract termination bounding redo). *)

open Bench_util
module Kernel = Untx_kernel.Kernel
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Instrument = Untx_util.Instrument

let table = "kv"

let ok = function
  | `Ok v -> v
  | `Blocked -> failwith "blocked"
  | `Fail m -> failwith m

let populate k n =
  let rec go i =
    if i < n then begin
      let txn = Kernel.begin_txn k in
      let hi = min n (i + 40) in
      for j = i to hi - 1 do
        ok
          (Kernel.insert k txn ~table
             ~key:(Printf.sprintf "k%06d" j)
             ~value:(Printf.sprintf "v%06d" j))
      done;
      ok (Kernel.commit k txn);
      go hi
    end
  in
  go 0

(* a little uncommitted work so there is something to lose *)
let open_work k =
  let txn = Kernel.begin_txn k in
  for i = 0 to 9 do
    ok
      (Kernel.update k txn ~table
         ~key:(Printf.sprintf "k%06d" (i * 97))
         ~value:"dirty")
  done;
  Kernel.quiesce k

let populate_more k =
  let txn = Kernel.begin_txn k in
  for j = 0 to 199 do
    ok
      (Kernel.insert k txn ~table
         ~key:(Printf.sprintf "x%06d" j)
         ~value:"post-checkpoint")
  done;
  ok (Kernel.commit k txn)

let scenario label ~reset_mode ~checkpointed ~crash =
  let counters = Instrument.create () in
  let k = make_kernel ~counters ~tc_reset_mode:reset_mode ~seed:51 () in
  populate k 3_000;
  if checkpointed then begin
    Kernel.quiesce k;
    ignore (Kernel.checkpoint k)
  end;
  populate_more k;
  open_work k;
  let requests_before = Instrument.get counters "dc.requests" in
  let dropped_before = Dc.pages_dropped (Kernel.dc k) in
  let _, t = time (fun () -> crash k) in
  [
    label;
    (if checkpointed then "yes" else "no");
    Printf.sprintf "%.1f" (t *. 1000.);
    string_of_int (Instrument.get counters "dc.requests" - requests_before);
    string_of_int (Dc.pages_dropped (Kernel.dc k) - dropped_before);
    string_of_int (Dc.dup_absorbed (Kernel.dc k));
  ]

let run () =
  print_table
    ~title:
      "E5  Partial-failure recovery (3k committed rows + 200 \
       post-checkpoint + open txn)"
    ~header:
      [ "failure"; "ckpt?"; "recovery ms"; "ops resent"; "pages reset";
        "dups absorbed" ]
    [
      scenario "DC crash" ~reset_mode:Dc.Selective ~checkpointed:false
        ~crash:Kernel.crash_dc;
      scenario "DC crash" ~reset_mode:Dc.Selective ~checkpointed:true
        ~crash:Kernel.crash_dc;
      scenario "TC crash (selective)" ~reset_mode:Dc.Selective
        ~checkpointed:true ~crash:Kernel.crash_tc;
      scenario "TC crash (draconian)" ~reset_mode:Dc.Complete
        ~checkpointed:true ~crash:Kernel.crash_tc;
      scenario "both crash" ~reset_mode:Dc.Selective ~checkpointed:true
        ~crash:Kernel.crash_both;
    ];
  Printf.printf
    "claim check: checkpoints bound redo (contract termination); the \
     selective TC reset touches\nfar fewer pages than the draconian \
     complete-failure fallback, which forces a full redo.\n"
