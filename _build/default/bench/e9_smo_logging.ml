(* E9 — System-transaction logging and reordered replay (Section 5.2.2).

   Splits are logged with a logical record for the pre-split page (just
   the split key) plus a physical image of the new page; page deletes
   log the consolidated survivor physically with merged abstract LSNs —
   "more costly in log space... but page deletes are rare".

   We drive a split-heavy phase then a delete-heavy phase, report
   per-SMO log bytes for each kind, and verify that DC recovery (which
   replays these records before any TC redo, out of their original
   order relative to TC operations) rebuilds well-formed trees. *)

open Bench_util
module Kernel = Untx_kernel.Kernel
module Dc = Untx_dc.Dc

let table = "kv"

let ok = function
  | `Ok v -> v
  | `Blocked -> failwith "blocked"
  | `Fail m -> failwith m

let run () =
  let k = make_kernel ~page_capacity:384 ~seed:91 () in
  let dc = Kernel.dc k in
  let n = 4_000 in
  (* phase 1: inserts -> splits *)
  let bytes0 = Dc.dc_log_bytes dc in
  let rec fill i =
    if i < n then begin
      let txn = Kernel.begin_txn k in
      let hi = min n (i + 50) in
      for j = i to hi - 1 do
        ok
          (Kernel.insert k txn ~table
             ~key:(Printf.sprintf "k%06d" j)
             ~value:(String.make 24 'v'))
      done;
      ok (Kernel.commit k txn);
      fill hi
    end
  in
  fill 0;
  Kernel.quiesce k;
  let splits = Dc.splits dc in
  let split_bytes = Dc.dc_log_bytes dc - bytes0 in
  (* phase 2: deletes -> consolidations *)
  let bytes1 = Dc.dc_log_bytes dc in
  let rec drain i =
    if i < n then begin
      let txn = Kernel.begin_txn k in
      let hi = min n (i + 50) in
      for j = i to hi - 1 do
        if j mod 8 <> 0 then
          ok (Kernel.delete k txn ~table ~key:(Printf.sprintf "k%06d" j))
      done;
      ok (Kernel.commit k txn);
      drain hi
    end
  in
  drain 0;
  Kernel.quiesce k;
  let consolidations = Dc.consolidations dc in
  let consolidate_bytes = Dc.dc_log_bytes dc - bytes1 in
  (* What the traditional *logical* delete record would cost: survivor
     id, freed id, parent id, separator key — no page image. *)
  let logical_delete_bytes = consolidations * 40 in
  print_table
    ~title:
      (Printf.sprintf
         "E9  System-transaction log volume (%d inserts then %d deletes, \
          384B pages)"
         n (n * 7 / 8))
    ~header:[ "SMO kind"; "count"; "log bytes"; "bytes/SMO" ]
    [
      [
        "page split (split key + new-page image)"; string_of_int splits;
        string_of_int split_bytes; fmt_f (per split_bytes splits);
      ];
      [
        "page delete, physical (as required)"; string_of_int consolidations;
        string_of_int consolidate_bytes;
        fmt_f (per consolidate_bytes consolidations);
      ];
      [
        "page delete, logical (unsound here)"; string_of_int consolidations;
        string_of_int logical_delete_bytes;
        fmt_f (per logical_delete_bytes consolidations);
      ];
    ];
  (* reordered replay correctness *)
  Kernel.crash_dc k;
  (match Dc.check dc with
  | Ok () -> print_endline "replay check: DC-log replayed before TC redo; trees well-formed: OK"
  | Error m -> failwith ("E9 replay produced ill-formed tree: " ^ m));
  let rows = List.length (Dc.dump_table dc table) in
  Printf.printf
    "claim check: physically logging the consolidated page costs ~%.0fx \
     what the traditional logical\ndelete record would — the price \
     (Section 5.2.2) of letting deletes replay before TC redo while\n\
     keeping their order against TC operations.  'Page deletes are rare, \
     so the extra cost should\nnot be significant.'  %d surviving records \
     were intact after a crash whose recovery replayed\nevery SMO out of \
     its original order.\n"
    (per consolidate_bytes (max 1 logical_delete_bytes) *. float_of_int 1)
    rows
