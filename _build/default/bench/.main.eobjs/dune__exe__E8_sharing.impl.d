bench/e8_sharing.ml: Bench_util List Printf String Untx_cloud Untx_dc Untx_tc Untx_util
