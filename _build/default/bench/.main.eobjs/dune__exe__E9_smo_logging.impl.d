bench/e9_smo_logging.ml: Bench_util List Printf String Untx_dc Untx_kernel
