bench/e2_multicore.ml: Bench_util Domain List Printf Untx_kernel Untx_util
