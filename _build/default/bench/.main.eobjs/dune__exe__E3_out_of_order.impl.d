bench/e3_out_of_order.ml: Bench_util Hashtbl List Printf Untx_dc Untx_kernel Untx_util
