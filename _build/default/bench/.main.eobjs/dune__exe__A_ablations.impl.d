bench/a_ablations.ml: Bench_util List Printf Untx_dc Untx_kernel Untx_tc Untx_util
