bench/micro.ml: Analyze Bechamel Bench_util Benchmark Hashtbl Instance Measure Printf Staged Test Time Toolkit Untx_baseline Untx_btree Untx_dc Untx_kernel Untx_storage Untx_util
