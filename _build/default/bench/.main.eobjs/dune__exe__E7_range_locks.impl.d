bench/e7_range_locks.ml: Bench_util Printf Untx_baseline Untx_kernel Untx_tc
