bench/e5_recovery.ml: Bench_util Printf Untx_dc Untx_kernel Untx_tc Untx_util
