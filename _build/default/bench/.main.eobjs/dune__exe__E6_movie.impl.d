bench/e6_movie.ml: Bench_util List Printf Untx_baseline Untx_cloud Untx_tc Untx_util
