bench/e1_code_path.ml: Bench_util Printf Untx_baseline Untx_kernel Untx_tc Untx_util
