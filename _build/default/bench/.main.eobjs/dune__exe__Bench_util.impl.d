bench/bench_util.ml: List Printf String Unix Untx_baseline Untx_dc Untx_kernel Untx_tc Untx_util
