bench/e4_page_sync.ml: Bench_util Printf Untx_dc Untx_kernel Untx_storage Untx_util
