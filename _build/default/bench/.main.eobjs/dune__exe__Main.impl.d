bench/main.ml: A_ablations Array E10_contracts E1_code_path E2_multicore E3_out_of_order E4_page_sync E5_recovery E6_movie E7_range_locks E8_sharing E9_smo_logging List Micro Printf String Sys
