bench/main.mli:
