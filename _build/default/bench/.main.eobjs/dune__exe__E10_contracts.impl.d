bench/e10_contracts.ml: Bench_util Hashtbl List Printf Untx_dc Untx_kernel Untx_tc
