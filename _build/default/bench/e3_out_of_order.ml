(* E3 — Out-of-order execution and the abstract-LSN idempotence test
   (paper Section 5.1).

   The TC assigns LSNs before page access order is decided, so with
   pipelined writes and a reordering transport, operations genuinely
   reach pages out of LSN order.  We count those arrivals, how often
   the classical [opLSN <= pageLSN] test would have lied (treating an
   unapplied operation as applied), and the space cost of the two sound
   alternatives the paper weighs: record-level LSNs (8 bytes per
   record) vs abstract LSNs serialized at page-sync time. *)

open Bench_util
module Kernel = Untx_kernel.Kernel
module Transport = Untx_kernel.Transport
module Dc = Untx_dc.Dc
module Instrument = Untx_util.Instrument

let table = "kv"

let ok = function
  | `Ok v -> v
  | `Blocked -> failwith "blocked"
  | `Fail m -> failwith m

let run_policy label policy seed =
  let counters = Instrument.create () in
  let k = make_kernel ~counters ~policy ~seed () in
  let known = Hashtbl.create 1024 in
  let n_txns = 300 and writes_per_txn = 24 in
  for t = 0 to n_txns - 1 do
    let txn = Kernel.begin_txn k in
    for i = 0 to writes_per_txn - 1 do
      let key = Printf.sprintf "k%05d" (((t * 7) + (i * 131)) mod 2000) in
      if Hashtbl.mem known key then
        ok (Kernel.update k txn ~table ~key ~value:(string_of_int t))
      else begin
        Hashtbl.replace known key ();
        ok (Kernel.insert k txn ~table ~key ~value:(string_of_int t))
      end
    done;
    ok (Kernel.commit k txn)
  done;
  Kernel.quiesce k;
  let dc = Kernel.dc k in
  Dc.flush_all dc;
  let records = List.length (Dc.dump_table dc table) in
  let requests = Instrument.get counters "dc.requests" in
  [
    label;
    string_of_int requests;
    string_of_int (Instrument.get counters "dc.out_of_order_arrivals");
    string_of_int (Instrument.get counters "dc.classical_test_would_lie");
    string_of_int (Dc.dup_absorbed dc);
    string_of_int (Instrument.get counters "dc.meta_bytes_flushed");
    string_of_int (records * 8);
  ]

let run () =
  let rows =
    [
      run_policy "in-order (reliable)" Transport.reliable 3;
      run_policy "reorder 0-3 ticks"
        { Transport.delay_min = 0; delay_max = 3; reorder = true;
          dup_prob = 0.; drop_prob = 0. }
        4;
      run_policy "reorder + dup 10%"
        { Transport.delay_min = 0; delay_max = 3; reorder = true;
          dup_prob = 0.1; drop_prob = 0. }
        5;
      run_policy "reorder + dup + drop 10%" Transport.chaotic 6;
    ]
  in
  print_table
    ~title:
      "E3  Out-of-order arrivals: pipelined writes over progressively \
       worse transports (300 txns x 24 writes)"
    ~header:
      [ "delivery"; "requests"; "ooo arrivals"; "classical lies";
        "dups absorbed"; "abLSN meta B"; "rec-LSN B equiv" ]
    rows;
  Printf.printf
    "claim check: every 'classical lies' case is an operation the \
     traditional page-LSN test\nwould have silently skipped; the abstract \
     LSN re-executes it and absorbs true duplicates.\nFinal states were \
     verified identical across all four deliveries by the test suite.\n"
