(* untx-cli — drive the unbundled kernel from the command line.

   Subcommands:
     workload   run a transactional key-value mix and print statistics
     crash      run a workload, crash a component, verify recovery
     movie      run the Section 6.3 movie-site scenario
     inspect    show internal counters after a workload

   Every run is deterministic for a given seed. *)

open Cmdliner
module K = Untx.Kernel
module Driver = Untx.Driver
module Engine = Untx.Engine
module Tc = Untx.Tc
module Dc = Untx.Dc
module Transport = Untx.Transport
module Instrument = Untx.Instrument

let mk_kernel ~chaos ~seed ~counters =
  let policy = if chaos then Transport.chaotic else Transport.reliable in
  let cfg =
    {
      K.tc = Tc.default_config (Untx.Tc_id.of_int 1);
      dc = Dc.default_config;
      policy;
      seed;
      auto_checkpoint_every = 50;
    }
  in
  let k = K.create ~counters cfg in
  K.create_table k ~name:"kv" ~versioned:true;
  k

let run_spec ~txns ~ops ~reads ~keys ~conc ~seed =
  {
    Driver.default_spec with
    txns;
    ops_per_txn = ops;
    read_ratio = reads;
    key_space = keys;
    concurrency = conc;
    seed;
  }

(* --- workload --------------------------------------------------------- *)

let workload txns ops reads keys conc seed chaos =
  let counters = Instrument.create () in
  let k = mk_kernel ~chaos ~seed ~counters in
  let e = Engine.of_kernel k in
  let spec = run_spec ~txns ~ops ~reads ~keys ~conc ~seed in
  Driver.preload e spec;
  let t0 = Unix.gettimeofday () in
  let r = Driver.run e spec in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "committed   %d\n" r.Driver.committed;
  Printf.printf "aborted     %d\n" r.Driver.aborted;
  Printf.printf "deadlocks   %d\n" r.Driver.deadlocks;
  Printf.printf "ops         %d\n" r.Driver.op_count;
  Printf.printf "txns/s      %.1f\n" (float_of_int r.Driver.committed /. dt);
  Printf.printf "messages    %d\n" (Tc.messages_sent (K.tc k));
  Printf.printf "resends     %d\n" (Tc.resends (K.tc k));
  Printf.printf "log bytes   %d\n" (Tc.log_bytes (K.tc k));
  0

(* --- crash ------------------------------------------------------------- *)

let crash component txns seed =
  let counters = Instrument.create () in
  let k = mk_kernel ~chaos:false ~seed ~counters in
  let e = Engine.of_kernel k in
  let spec = run_spec ~txns ~ops:5 ~reads:0.3 ~keys:2_000 ~conc:2 ~seed in
  Driver.preload e spec;
  ignore (Driver.run e spec);
  let count () =
    match K.begin_txn k |> fun txn ->
          let r = K.scan k txn ~table:"kv" ~from_key:"" ~limit:max_int in
          ignore (K.commit k txn);
          r
    with
    | `Ok rows -> List.length rows
    | `Blocked | `Fail _ -> -1
  in
  let before = count () in
  let t0 = Unix.gettimeofday () in
  (match component with
  | "tc" -> K.crash_tc k
  | "dc" -> K.crash_dc k
  | "both" -> K.crash_both k
  | other ->
    Printf.eprintf "unknown component %S (tc|dc|both)\n" other;
    exit 1);
  let dt = (Unix.gettimeofday () -. t0) *. 1000. in
  let after = count () in
  Printf.printf "rows before crash  %d\n" before;
  Printf.printf "recovery time      %.1f ms\n" dt;
  Printf.printf "rows after crash   %d\n" after;
  (match Dc.check (K.dc k) with
  | Ok () -> Printf.printf "index check        well-formed\n"
  | Error m -> Printf.printf "index check        BROKEN: %s\n" m);
  if before = after then begin
    Printf.printf "verdict            committed state preserved\n";
    0
  end
  else begin
    Printf.printf "verdict            DIVERGENCE\n";
    1
  end

(* --- movie ------------------------------------------------------------- *)

let movie users movies events seed =
  let m = Untx.Movie.create ~n_user_tcs:2 ~n_movie_dcs:2 ~seed () in
  Untx.Movie.seed_movies m movies;
  Untx.Movie.seed_users m users;
  let rng = Untx_util.Rng.create ~seed in
  let posted = ref 0 and read_reviews = ref 0 in
  for _ = 1 to events do
    let uid = Untx_util.Rng.int rng users in
    let mid = Untx_util.Rng.int rng movies in
    match Untx_util.Rng.int rng 10 with
    | 0 | 1 -> (
      match Untx.Movie.w2_add_review m ~uid ~mid ~text:"review" with
      | Ok () -> incr posted
      | Error _ -> ())
    | 2 ->
      ignore (Untx.Movie.w3_update_profile m ~uid ~profile:"p")
    | 3 -> ignore (Untx.Movie.w4_my_reviews m ~uid)
    | _ ->
      read_reviews :=
        !read_reviews
        + List.length (Untx.Movie.w1_reviews_for_movie m ~mid ~mode:`Committed)
  done;
  Printf.printf "events           %d\n" events;
  Printf.printf "reviews posted   %d\n" !posted;
  Printf.printf "reviews read     %d\n" !read_reviews;
  Printf.printf "messages         %d\n" (Untx.Movie.messages_total m);
  0

(* --- inspect ----------------------------------------------------------- *)

let inspect txns seed =
  let counters = Instrument.create () in
  let k = mk_kernel ~chaos:false ~seed ~counters in
  let e = Engine.of_kernel k in
  let spec = run_spec ~txns ~ops:6 ~reads:0.5 ~keys:2_000 ~conc:2 ~seed in
  Driver.preload e spec;
  ignore (Driver.run e spec);
  ignore (K.checkpoint k);
  Format.printf "%a@." Instrument.pp counters;
  0

(* --- cmdliner wiring ---------------------------------------------------- *)

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.")

let workload_cmd =
  let txns = Arg.(value & opt int 1000 & info [ "txns" ] ~doc:"Transactions.") in
  let ops = Arg.(value & opt int 6 & info [ "ops" ] ~doc:"Operations per txn.") in
  let reads =
    Arg.(value & opt float 0.5 & info [ "reads" ] ~doc:"Read fraction.")
  in
  let keys = Arg.(value & opt int 2000 & info [ "keys" ] ~doc:"Key space.") in
  let conc =
    Arg.(value & opt int 4 & info [ "concurrency" ] ~doc:"Concurrent txns.")
  in
  let chaos =
    Arg.(value & flag & info [ "chaos" ] ~doc:"Lossy/reordering transport.")
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a transactional key-value mix.")
    Term.(const workload $ txns $ ops $ reads $ keys $ conc $ seed_t $ chaos)

let crash_cmd =
  let component =
    Arg.(value & pos 0 string "both" & info [] ~docv:"COMPONENT"
           ~doc:"tc, dc, or both.")
  in
  let txns = Arg.(value & opt int 500 & info [ "txns" ] ~doc:"Transactions.") in
  Cmd.v
    (Cmd.info "crash" ~doc:"Crash a component mid-workload and verify recovery.")
    Term.(const crash $ component $ txns $ seed_t)

let movie_cmd =
  let users = Arg.(value & opt int 32 & info [ "users" ] ~doc:"Users.") in
  let movies = Arg.(value & opt int 20 & info [ "movies" ] ~doc:"Movies.") in
  let events = Arg.(value & opt int 500 & info [ "events" ] ~doc:"Events.") in
  Cmd.v
    (Cmd.info "movie" ~doc:"Run the Section 6.3 movie-site scenario.")
    Term.(const movie $ users $ movies $ events $ seed_t)

let inspect_cmd =
  let txns = Arg.(value & opt int 300 & info [ "txns" ] ~doc:"Transactions.") in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Dump internal counters after a workload.")
    Term.(const inspect $ txns $ seed_t)

let () =
  let info =
    Cmd.info "untx-cli" ~version:"1.0"
      ~doc:"Drive the unbundled transaction kernel (CIDR 2009 reproduction)."
  in
  exit (Cmd.eval' (Cmd.group info [ workload_cmd; crash_cmd; movie_cmd; inspect_cmd ]))
