(* Secondary indexes as logical multi-record operations: entry encoding
   laws, transactional maintenance through the normal TC dispatch path
   (sharded, replicated, multi-TC, crash-recovered), the contract
   boundaries (fail-fast vs commit-time refusal, Fail-means-abort), and
   the scan-vs-SMO crash regression under both Section 3.1 lock
   protocols. *)

module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Deploy = Untx_cloud.Deploy
module Index = Untx_index.Index
module Audit = Untx_audit.Audit
module Fault = Untx_fault.Fault

let ok = Helpers.ok
let expect_fail = Helpers.expect_fail

(* The same extract shapes the workload bank uses: category = value
   prefix up to ':'. *)
let extract_cat ~key:_ ~value =
  match String.index_opt value ':' with
  | Some i -> [ String.sub value 0 i ]
  | None -> []

let extract_len ~key:_ ~value = [ Printf.sprintf "L%d" (String.length value / 8) ]

let table = "items"

let make_deploy ?(parts = 2) ?(replicas = 0) ?(tcs = 1)
    ?(cc_protocol = Tc.Key_locks) ?(versioned = true) ?(page_capacity = 256)
    ?(tables = [ table ]) () =
  let idx = Index.create () in
  let d = Deploy.create ~seed:7 () in
  for i = 1 to tcs do
    ignore
      (Deploy.add_tc d
         ~name:(Printf.sprintf "tc%d" i)
         {
           (Tc.default_config (Tc_id.of_int i)) with
           cc_protocol;
           lwm_every = 4;
           debug_checks = true;
         })
  done;
  let dc_names = List.init parts (Printf.sprintf "dc%d") in
  List.iter
    (fun name ->
      ignore
        (Deploy.add_dc d ~name
           {
             Dc.page_capacity;
             cache_pages = 8;
             sync_policy = Dc.Full_ablsn;
             tc_reset_mode = Dc.Selective;
             debug_checks = true;
           }))
    dc_names;
  List.iter
    (fun t ->
      Deploy.add_indexed_table d ~replicas ~idx ~name:t ~versioned
        ~dcs:dc_names
        ~indexes:[ ("by_cat", extract_cat); ("by_len", extract_len) ]
        ())
    tables;
  (d, idx)

let committed tc ops =
  let txn = Tc.begin_txn tc in
  List.iter (fun op -> ok (op txn)) ops;
  ok (Tc.commit tc txn)

let ins idx tc ?(table = table) key value =
  committed tc [ (fun txn -> Index.insert idx tc txn ~table ~key ~value) ]

let upd idx tc ?(table = table) key value =
  committed tc [ (fun txn -> Index.update idx tc txn ~table ~key ~value) ]

let del idx tc ?(table = table) key =
  committed tc [ (fun txn -> Index.delete idx tc txn ~table ~key) ]

let lookup idx tc ?(table = table) index sec =
  let txn = Tc.begin_txn tc in
  let rows = ok (Index.lookup idx tc txn ~table ~index ~sec) in
  ok (Tc.commit tc txn);
  rows

let assert_clean d idx ?(table = table) () =
  match Audit.check_index d ~idx ~table with
  | [] -> ()
  | vs -> Alcotest.fail (String.concat "; " vs)

let pairs = Alcotest.(list (pair string string))
let strings = Alcotest.(list string)

(* --- encoding laws ---------------------------------------------------- *)

let test_entry_roundtrip () =
  List.iter
    (fun (sec, pk) ->
      let e = Index.entry_key ~sec ~pk in
      Alcotest.(check string) "sec" sec (Index.sec_of_entry e);
      Alcotest.(check string) "pk" pk (Index.pk_of_entry e))
    [
      ("a", "k1");
      ("", "k1");
      ("a", "");
      ("c\x00x", "k\x00\x01y");
      ("\x00", "\x00");
      ("c\x00\xff", "\xffk");
    ]

let test_entry_order_groups_secs () =
  (* entries sort first by secondary key, and [prefix sec] captures
     exactly sec's entries even when one sec is a prefix of another or
     embeds NULs *)
  let secs = [ "a"; "ab"; "a\x00"; "b"; "" ] in
  let pks = [ "p"; "q\x00r"; "" ] in
  let entries =
    List.concat_map
      (fun s -> List.map (fun p -> Index.entry_key ~sec:s ~pk:p) pks)
      secs
    |> List.sort String.compare
  in
  List.iter
    (fun sec ->
      let p = Index.prefix ~sec in
      let mine =
        List.filter
          (fun e ->
            String.length e >= String.length p
            && String.sub e 0 (String.length p) = p)
          entries
      in
      Alcotest.check strings
        ("prefix group " ^ String.escaped sec)
        (List.sort String.compare
           (List.map (fun pk -> Index.entry_key ~sec ~pk) pks))
        mine)
    secs

(* --- transactional maintenance --------------------------------------- *)

let test_basic_maintenance () =
  let d, idx = make_deploy () in
  let tc = Deploy.tc d "tc1" in
  ins idx tc "k1" "red:apple";
  ins idx tc "k2" "red:berry";
  ins idx tc "k3" "blue:sky";
  Alcotest.check pairs "red has both"
    [ ("k1", "red:apple"); ("k2", "red:berry") ]
    (lookup idx tc "by_cat" "red");
  upd idx tc "k1" "blue:apple";
  Alcotest.check pairs "k1 moved to blue"
    [ ("k1", "blue:apple"); ("k3", "blue:sky") ]
    (lookup idx tc "by_cat" "blue");
  Alcotest.check pairs "red lost k1" [ ("k2", "red:berry") ]
    (lookup idx tc "by_cat" "red");
  del idx tc "k2";
  Alcotest.check pairs "red now empty" [] (lookup idx tc "by_cat" "red");
  Deploy.quiesce d;
  assert_clean d idx ()

let test_update_same_sec_keeps_entry () =
  let d, idx = make_deploy () in
  let tc = Deploy.tc d "tc1" in
  ins idx tc "k1" "red:one";
  upd idx tc "k1" "red:two";
  Alcotest.check pairs "entry survives in place" [ ("k1", "red:two") ]
    (lookup idx tc "by_cat" "red");
  Deploy.quiesce d;
  assert_clean d idx ()

let test_multi_record_atomicity_on_abort () =
  let d, idx = make_deploy () in
  let tc = Deploy.tc d "tc1" in
  ins idx tc "k1" "red:kept";
  let txn = Tc.begin_txn tc in
  ok (Index.insert idx tc txn ~table ~key:"k2" ~value:"red:doomed");
  ok (Index.update idx tc txn ~table ~key:"k1" ~value:"blue:doomed");
  Tc.abort tc txn ~reason:"test: deliberate";
  Alcotest.check pairs "abort rolled back primary and entries"
    [ ("k1", "red:kept") ]
    (lookup idx tc "by_cat" "red");
  Alcotest.check pairs "no blue leak" [] (lookup idx tc "by_cat" "blue");
  Deploy.quiesce d;
  assert_clean d idx ()

let test_contract_boundaries () =
  (* unversioned: refusals are fail-fast at the op *)
  let d, idx = make_deploy ~versioned:false () in
  let tc = Deploy.tc d "tc1" in
  ins idx tc "k1" "red:v";
  let txn = Tc.begin_txn tc in
  ignore
    (expect_fail (Index.insert idx tc txn ~table ~key:"k1" ~value:"red:dup"));
  Tc.abort tc txn ~reason:"test: contract";
  (* versioned: a duplicate insert pipelines as `Ok and the commit
     refuses *)
  let d2, idx2 = make_deploy ~versioned:true () in
  let tc2 = Deploy.tc d2 "tc1" in
  ins idx2 tc2 "k1" "red:v";
  let txn2 = Tc.begin_txn tc2 in
  ok (Index.insert idx2 tc2 txn2 ~table ~key:"k1" ~value:"red:dup");
  ignore (expect_fail (Tc.commit tc2 txn2));
  (* Index.update of a missing key fails fast even on versioned tables
     (the wrapper reads the old row first) *)
  let txn3 = Tc.begin_txn tc2 in
  ignore
    (expect_fail (Index.update idx2 tc2 txn3 ~table ~key:"nope" ~value:"x:y"));
  Tc.abort tc2 txn3 ~reason:"test: contract";
  (* aborted refusals left no maintenance behind *)
  Deploy.quiesce d;
  Deploy.quiesce d2;
  assert_clean d idx ();
  assert_clean d2 idx2 ()

(* --- sharded, replicated, multi-TC ------------------------------------ *)

let test_sharded_entries_colocate () =
  let d, idx = make_deploy ~parts:3 () in
  let tc = Deploy.tc d "tc1" in
  let oracle = ref [] in
  for i = 0 to 29 do
    let key = Printf.sprintf "k%03d" i in
    let cat = if i mod 5 = 0 then "c\x00odd" else Printf.sprintf "c%d" (i mod 3) in
    let value = Printf.sprintf "%s:v%03d" cat i in
    ins idx tc key value;
    oracle := (key, value) :: !oracle
  done;
  let rows = List.sort compare !oracle in
  List.iter
    (fun cat ->
      let expected =
        List.filter (fun (_, v) -> extract_cat ~key:"" ~value:v = [ cat ]) rows
      in
      Alcotest.check pairs
        ("lookup " ^ String.escaped cat)
        expected
        (lookup idx tc "by_cat" cat);
      (* secondary-hash placement: every entry for one secondary key
         lives on one partition, so the lookup's prefix scan never
         crosses DCs *)
      let itab = Index.index_table ~table ~name:"by_cat" in
      match
        List.map
          (fun (pk, _) ->
            Deploy.partition_dc d ~table:itab
              ~key:(Index.entry_key ~sec:cat ~pk))
          expected
      with
      | [] -> ()
      | owner :: others ->
        List.iter (Alcotest.(check string) "entries colocated" owner) others)
    [ "c0"; "c1"; "c2"; "c\x00odd" ];
  Deploy.quiesce d;
  assert_clean d idx ();
  let report = Audit.run_deploy d ~tc:"tc1" ~table ~expected:rows in
  Alcotest.check strings "audit clean" [] report.Audit.violations

let test_replicated_entries_ship () =
  let d, idx = make_deploy ~replicas:1 () in
  let tc = Deploy.tc d "tc1" in
  for i = 0 to 19 do
    ins idx tc
      (Printf.sprintf "k%03d" i)
      (Printf.sprintf "c%d:v%03d" (i mod 2) i)
  done;
  del idx tc "k003";
  upd idx tc "k004" "c9:moved";
  Deploy.quiesce d;
  let expected =
    List.filter_map
      (fun i ->
        let key = Printf.sprintf "k%03d" i in
        if i = 3 then None
        else if i = 4 then Some (key, "c9:moved")
        else Some (key, Printf.sprintf "c%d:v%03d" (i mod 2) i))
      (List.init 20 Fun.id)
  in
  (* run_deploy's replica pass holds every attached standby's entry
     tables to the primary's logical state *)
  let report = Audit.run_deploy d ~tc:"tc1" ~table ~expected in
  Alcotest.check strings "audit (incl. replica parity) clean" []
    report.Audit.violations;
  assert_clean d idx ()

let test_multi_tc_indexed_tables () =
  let d, idx =
    make_deploy ~tcs:2 ~tables:[ "left"; "right" ] ~parts:2 ()
  in
  let tc1 = Deploy.tc d "tc1" and tc2 = Deploy.tc d "tc2" in
  (* Section 6 disjoint-updaters rule: each TC maintains its own
     indexed table; both route through the shared DCs *)
  ins idx tc1 ~table:"left" "k1" "red:a";
  ins idx tc2 ~table:"right" "k1" "red:b";
  upd idx tc1 ~table:"left" "k1" "blue:a2";
  ins idx tc2 ~table:"right" "k2" "red:c";
  Alcotest.check pairs "left sees its own maintenance"
    [ ("k1", "blue:a2") ]
    (lookup idx tc1 ~table:"left" "by_cat" "blue");
  Alcotest.check pairs "right unaffected by left's updates"
    [ ("k1", "red:b"); ("k2", "red:c") ]
    (lookup idx tc2 ~table:"right" "by_cat" "red");
  (* one TC's crash must not disturb the other TC's indexed table *)
  Deploy.crash_tc d "tc1";
  Alcotest.check pairs "right sails through tc1's crash"
    [ ("k1", "red:b"); ("k2", "red:c") ]
    (lookup idx tc2 ~table:"right" "by_cat" "red");
  Alcotest.check pairs "left recovered with entries intact"
    [ ("k1", "blue:a2") ]
    (lookup idx tc1 ~table:"left" "by_cat" "blue");
  Deploy.quiesce d;
  assert_clean d idx ~table:"left" ();
  assert_clean d idx ~table:"right" ();
  Alcotest.check strings "watermarks clean" [] (Audit.check_watermarks d)

let test_crash_recovery_preserves_parity () =
  List.iter
    (fun versioned ->
      let d, idx = make_deploy ~versioned () in
      let tc = Deploy.tc d "tc1" in
      for i = 0 to 11 do
        ins idx tc
          (Printf.sprintf "k%03d" i)
          (Printf.sprintf "c%d:v%03d" (i mod 3) i)
      done;
      Deploy.crash_dc d "dc0";
      upd idx tc "k001" "c9:after-dc-crash";
      del idx tc "k002";
      Deploy.crash_tc d "tc1";
      ins idx tc "k100" "c9:after-tc-crash";
      Deploy.quiesce d;
      let expected =
        List.filter_map
          (fun i ->
            let key = Printf.sprintf "k%03d" i in
            if i = 1 then Some (key, "c9:after-dc-crash")
            else if i = 2 then None
            else Some (key, Printf.sprintf "c%d:v%03d" (i mod 3) i))
          (List.init 12 Fun.id)
        @ [ ("k100", "c9:after-tc-crash") ]
      in
      Alcotest.check pairs
        (Printf.sprintf "c9 lookup after both crashes (versioned=%b)" versioned)
        [ ("k001", "c9:after-dc-crash"); ("k100", "c9:after-tc-crash") ]
        (lookup idx tc "by_cat" "c9");
      let report = Audit.run_deploy d ~tc:"tc1" ~table ~expected in
      Alcotest.check strings "audit clean" [] report.Audit.violations;
      assert_clean d idx ())
    [ true; false ]

(* --- the scan-vs-SMO regression --------------------------------------- *)

(* A crash mid-split of an entry-table page ("dc.smo.split.mid") while
   an index-maintaining transaction is in flight: after recovery, the
   index lookup's prefix scan must see exactly the committed rows —
   never a half-applied split (rows doubled, lost, or out of order).
   Swept over the first few split instants so the kill lands on primary
   and entry-table SMOs alike, under each Section 3.1 lock protocol. *)
let smo_regression cc_protocol () =
  List.iter
    (fun nth ->
      Fault.disarm ();
      let d, idx = make_deploy ~cc_protocol ~page_capacity:128 () in
      let tc = Deploy.tc d "tc1" in
      let oracle = ref [] in
      let crashed = ref false in
      Fault.arm ~seed:11 [ Fault.crash_at "dc.smo.split.mid" nth ];
      for i = 0 to 39 do
        let key = Printf.sprintf "k%03d" i in
        let value = Printf.sprintf "c%d:payload-%04d" (i mod 3) (i * 37) in
        let txn = Tc.begin_txn tc in
        try
          ok (Index.insert idx tc txn ~table ~key ~value);
          match Tc.commit tc txn with
          | `Ok () -> oracle := (key, value) :: !oracle
          | `Blocked | `Fail _ -> ()
        with Fault.Injected_crash p ->
          crashed := true;
          Deploy.crash_for_point d ~point:p ~tc:"tc1" ~dc:"dc0";
          if Tc.is_active txn then
            Tc.abort tc txn ~reason:"test: rollback after SMO crash";
          (* a crash during commit is ambiguous — probe the row's fate *)
          let probe = Tc.begin_txn tc in
          (match Tc.read tc probe ~table ~key with
          | `Ok (Some v) -> oracle := (key, v) :: !oracle
          | `Ok None | `Blocked | `Fail _ -> ());
          ignore (Tc.commit tc probe)
      done;
      Fault.disarm ();
      Alcotest.(check bool)
        (Printf.sprintf "SMO crash fired (nth=%d)" nth)
        true !crashed;
      Deploy.quiesce d;
      let rows = List.sort compare !oracle in
      List.iter
        (fun cat ->
          let expected =
            List.filter
              (fun (_, v) -> extract_cat ~key:"" ~value:v = [ cat ])
              rows
          in
          Alcotest.check pairs
            (Printf.sprintf "post-recovery lookup %s (nth=%d)" cat nth)
            expected
            (lookup idx tc "by_cat" cat))
        [ "c0"; "c1"; "c2" ];
      let report = Audit.run_deploy d ~tc:"tc1" ~table ~expected:rows in
      Alcotest.check strings "audit clean" [] report.Audit.violations;
      assert_clean d idx ())
    [ 1; 2; 3 ]

let suite =
  [
    Alcotest.test_case "entry key round-trips" `Quick test_entry_roundtrip;
    Alcotest.test_case "entry order groups secondary keys" `Quick
      test_entry_order_groups_secs;
    Alcotest.test_case "basic maintenance" `Quick test_basic_maintenance;
    Alcotest.test_case "same-sec update keeps entry" `Quick
      test_update_same_sec_keeps_entry;
    Alcotest.test_case "abort rolls back primary and entries" `Quick
      test_multi_record_atomicity_on_abort;
    Alcotest.test_case "contract boundaries" `Quick test_contract_boundaries;
    Alcotest.test_case "sharded entries colocate" `Quick
      test_sharded_entries_colocate;
    Alcotest.test_case "replicated entries ship" `Quick
      test_replicated_entries_ship;
    Alcotest.test_case "multi-TC indexed tables" `Quick
      test_multi_tc_indexed_tables;
    Alcotest.test_case "crash recovery preserves parity" `Quick
      test_crash_recovery_preserves_parity;
    Alcotest.test_case "scan vs SMO crash (key locks)" `Quick
      (smo_regression Tc.Key_locks);
    Alcotest.test_case "scan vs SMO crash (range locks)" `Quick
      (smo_regression (Tc.Range_locks 4));
  ]
