(* The observability layer's own laws: the histogram merge law (merging
   snapshots = recording into one histogram), percentile error bounds,
   the Instrument shim's exact counter semantics, trace-ring wrap
   accounting, and the JSONL emitter/parser round trip that pins the
   trace dump format. *)

module Metrics = Untx_obs.Metrics
module Trace = Untx_obs.Trace
module Analyzer = Untx_obs.Analyzer
module Instrument = Untx_util.Instrument

let qtest prop = Helpers.qcheck_test prop

(* --- histograms ------------------------------------------------------- *)

let samples_arb =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(
      list_size (int_bound 200)
        (oneof
           [
             int_bound 10;
             int_bound 10_000;
             map (fun v -> v * 7919) (int_bound 1_000_000);
           ]))

let record_all name vs =
  let m = Metrics.create () in
  List.iter (Metrics.observe m name) vs;
  m

let prop_merge_law =
  (* Mergeability is what lets a deployment sum per-link histograms into
     a fleet view: merge of two snapshots must be *structurally* equal
     to the snapshot of one histogram that saw both streams.  Sums are
     integers, so there is no float non-associativity to hide behind. *)
  QCheck.Test.make ~name:"merge snapshots = record into one histogram"
    ~count:300
    (QCheck.pair samples_arb samples_arb)
    (fun (va, vb) ->
      let snap h =
        Option.value ~default:Metrics.empty_hsnap (Metrics.hist_snapshot h "h")
      in
      let sa = snap (record_all "h" va)
      and sb = snap (record_all "h" vb)
      and sall = snap (record_all "h" (va @ vb)) in
      Metrics.merge sa sb = sall && Metrics.merge sb sa = sall)

let prop_percentile_bounds =
  (* The geometric buckets promise: the estimate never undershoots the
     true ordered sample and overshoots by at most a quarter (+1 for
     the integer floor at tiny values). *)
  QCheck.Test.make ~name:"percentile overshoots by at most 25%" ~count:300
    (QCheck.pair samples_arb QCheck.(int_range 1 100))
    (fun (vs, p) ->
      vs = []
      ||
      let vs = List.map abs vs in
      let m = record_all "h" vs in
      let s = Option.get (Metrics.hist_snapshot m "h") in
      let sorted = List.sort compare vs in
      let n = List.length sorted in
      let k =
        max 1
          (int_of_float (ceil (float_of_int p /. 100. *. float_of_int n)))
      in
      let truth = List.nth sorted (k - 1) in
      let est = Metrics.percentile s (float_of_int p) in
      truth <= est && est <= truth + (truth / 4) + 1)

let test_hist_basics () =
  let m = Metrics.create () in
  Alcotest.(check (option reject)) "no histogram before any observe" None
    (Metrics.hist_snapshot m "h");
  List.iter (Metrics.observe m "h") [ 5; 1; 100; 100_000 ];
  let s = Option.get (Metrics.hist_snapshot m "h") in
  Alcotest.(check int) "count" 4 s.Metrics.s_count;
  Alcotest.(check int) "sum" 100_106 s.Metrics.s_sum;
  Alcotest.(check int) "min" 1 s.Metrics.s_min;
  Alcotest.(check int) "max" 100_000 s.Metrics.s_max;
  Alcotest.(check int) "p100 clamps to the true max" 100_000
    (Metrics.percentile s 100.);
  Alcotest.(check (list string)) "hist_names" [ "h" ] (Metrics.hist_names m)

let test_timing_gate () =
  let m = Metrics.create () in
  Alcotest.(check bool) "timing off by default" false (Metrics.timed m);
  let t0 = Metrics.start m in
  Alcotest.(check bool) "disabled start returns the sentinel" true (t0 < 0.);
  Metrics.stop m "gated_ns" t0;
  Alcotest.(check (option reject)) "disabled stop records nothing" None
    (Metrics.hist_snapshot m "gated_ns");
  Metrics.set_timed m true;
  let t0 = Metrics.start m in
  Metrics.stop m "gated_ns" t0;
  let s = Option.get (Metrics.hist_snapshot m "gated_ns") in
  Alcotest.(check int) "enabled stop records one sample" 1 s.Metrics.s_count

(* --- the Instrument shim ---------------------------------------------- *)

(* Every counter name the benches read back; the shim must keep their
   semantics bit-exact or E1..E11's tables silently drift. *)
let bench_counter_names =
  [
    "cache.evict_scan_steps"; "cache.evict_skips"; "cache.evictions";
    "cache.flushes"; "dc.classical_test_would_lie"; "dc.meta_bytes_flushed";
    "dc.misrouted"; "dc.out_of_order_arrivals"; "dc.requests";
  ]

type cop = Bump of int | Bump_by of int * int | Reset

let cop_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun i -> Bump i) (int_bound 8));
        ( 4,
          map2
            (fun i n -> Bump_by (i, n - 50))
            (int_bound 8) (int_bound 100) );
        (1, return Reset);
      ])

let cops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Bump i -> Printf.sprintf "bump %d" i
             | Bump_by (i, n) -> Printf.sprintf "bump_by %d %d" i n
             | Reset -> "reset")
           ops))
    QCheck.Gen.(list_size (int_bound 60) cop_gen)

let prop_shim_matches_model =
  QCheck.Test.make
    ~name:"Instrument shim preserves exact counter semantics" ~count:300
    cops_arb (fun ops ->
      let t = Instrument.create () in
      let model : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let mget name = Option.value ~default:0 (Hashtbl.find_opt model name) in
      List.iter
        (fun op ->
          match op with
          | Bump i ->
            let name = List.nth bench_counter_names i in
            Instrument.bump t name;
            Hashtbl.replace model name (mget name + 1)
          | Bump_by (i, n) ->
            let name = List.nth bench_counter_names i in
            Instrument.bump_by t name n;
            Hashtbl.replace model name (mget name + n)
          | Reset ->
            Instrument.reset t;
            Hashtbl.iter (fun k _ -> Hashtbl.replace model k 0) model)
        ops;
      List.for_all
        (fun name -> Instrument.get t name = mget name)
        bench_counter_names
      && Instrument.snapshot t
         = (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
           |> List.sort (fun (a, _) (b, _) -> String.compare a b)))

(* --- the trace ring --------------------------------------------------- *)

let with_trace f =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.set_capacity 65_536)
    f

let test_ring_wrap () =
  with_trace (fun () ->
      Trace.set_capacity 8;
      Trace.set_enabled true;
      for i = 0 to 19 do
        Trace.record ~tid:1 ~comp:"t" ~ev:(string_of_int i) []
      done;
      Alcotest.(check int) "recorded counts overwritten events" 20
        (Trace.recorded ());
      Alcotest.(check int) "dropped = recorded - capacity" 12
        (Trace.dropped ());
      let evs = Trace.events () in
      Alcotest.(check int) "ring holds capacity events" 8 (List.length evs);
      Alcotest.(check (list int)) "oldest-first, newest retained"
        [ 12; 13; 14; 15; 16; 17; 18; 19 ]
        (List.map (fun e -> e.Trace.e_seq) evs))

let test_disabled_is_inert () =
  Trace.clear ();
  Trace.set_enabled false;
  Trace.record ~tid:1 ~comp:"t" ~ev:"x" [];
  Alcotest.(check int) "disabled record is a no-op" 0 (Trace.recorded ());
  Alcotest.(check int) "disabled fresh_tid is the reserved id" 0
    (Trace.fresh_tid ())

(* Attribute strings with every escape class the emitter handles. *)
let attr_string_gen =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" cs)
      (list_size (int_bound 12)
         (oneofl
            [ "a"; "Z"; "0"; " "; "\""; "\\"; "\n"; "\r"; "\t"; "\x01"; "{"; ":" ])))

let jsonl_case_arb =
  QCheck.make
    ~print:(fun (tid, comp, ev, attrs) ->
      Printf.sprintf "tid=%d comp=%S ev=%S attrs=[%s]" tid comp ev
        (String.concat ";"
           (List.map (fun (k, v) -> Printf.sprintf "%S=%S" k v) attrs)))
    QCheck.Gen.(
      quad (int_range 1 0xFFFF) attr_string_gen attr_string_gen
        (list_size (int_bound 4) (pair attr_string_gen attr_string_gen)))

let prop_jsonl_roundtrip =
  (* The emitter and the analyzer's parser are a pinned pair: whatever
     escaping record applies, of_jsonl must undo exactly.  Times are
     emitted at 100ns resolution, hence the tolerance. *)
  QCheck.Test.make ~name:"trace dump round-trips through the analyzer"
    ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 10) jsonl_case_arb)
    (fun cases ->
      Trace.clear ();
      Trace.set_enabled true;
      Fun.protect ~finally:(fun () -> Trace.set_enabled false) @@ fun () ->
      List.iter
        (fun (tid, comp, ev, attrs) -> Trace.record ~tid ~comp ~ev attrs)
        cases;
      let original = Trace.events () in
      let parsed = Analyzer.of_jsonl (Trace.to_jsonl ()) in
      List.length parsed = List.length original
      && List.for_all2
           (fun (a : Trace.event) (b : Trace.event) ->
             a.Trace.e_tid = b.Trace.e_tid
             && a.Trace.e_seq = b.Trace.e_seq
             && a.Trace.e_comp = b.Trace.e_comp
             && a.Trace.e_ev = b.Trace.e_ev
             && a.Trace.e_attrs = b.Trace.e_attrs
             && Float.abs (a.Trace.e_t -. b.Trace.e_t) < 1e-6)
           original parsed)

let test_analyzer_reconstructs_synthetic () =
  (* A hand-built two-operation trace: op 1 completes cleanly on
     partition 0; op 2 is dropped once, resent, and its duplicate is
     absorbed on partition 1.  The analyzer must reattach every event to
     its operation and read the resend/skip chains off the timelines. *)
  with_trace (fun () ->
      let t1 = Trace.fresh_tid () and t2 = Trace.fresh_tid () in
      Trace.record ~tid:t1 ~comp:"tc" ~ev:"dispatch" [ ("lsn", "1") ];
      Trace.record ~tid:t2 ~comp:"tc" ~ev:"dispatch" [ ("lsn", "2") ];
      Trace.record ~tid:t1 ~comp:"transport" ~ev:"xmit"
        [ ("ch", "data"); ("dir", "req") ];
      Trace.record ~tid:t2 ~comp:"transport" ~ev:"drop"
        [ ("ch", "data"); ("dir", "req") ];
      Trace.record ~tid:t1 ~comp:"dc" ~ev:"apply"
        [ ("part", "0"); ("lsn", "1") ];
      Trace.record ~tid:t1 ~comp:"tc" ~ev:"ack" [ ("lsn", "1") ];
      Trace.record ~tid:t2 ~comp:"tc" ~ev:"resend" [ ("lsn", "2") ];
      Trace.record ~tid:t2 ~comp:"dc" ~ev:"apply"
        [ ("part", "1"); ("lsn", "2") ];
      Trace.record ~tid:t2 ~comp:"dc" ~ev:"skip"
        [ ("part", "1"); ("lsn", "2") ];
      Trace.record ~tid:t2 ~comp:"tc" ~ev:"ack" [ ("lsn", "2") ];
      let r = Analyzer.analyze (Trace.events ()) in
      Alcotest.(check int) "two timelines" 2 (List.length r.Analyzer.r_timelines);
      Alcotest.(check int) "no orphans" 0 r.Analyzer.r_orphans;
      let tl tid =
        List.find (fun tl -> tl.Analyzer.tl_tid = tid) r.Analyzer.r_timelines
      in
      Alcotest.(check int) "op1 has no resends" 0 (tl t1).Analyzer.tl_resends;
      Alcotest.(check int) "op2 resent once" 1 (tl t2).Analyzer.tl_resends;
      Alcotest.(check int) "op2 absorbed one duplicate" 1
        (tl t2).Analyzer.tl_skips;
      Alcotest.(check (option int)) "op1 on partition 0" (Some 0)
        (tl t1).Analyzer.tl_part;
      Alcotest.(check (option int)) "op2 on partition 1" (Some 1)
        (tl t2).Analyzer.tl_part;
      Alcotest.(check bool) "both round trips measured" true
        ((tl t1).Analyzer.tl_rtt_ns <> None
        && (tl t2).Analyzer.tl_rtt_ns <> None);
      Alcotest.(check int) "per-partition skew table has both partitions" 2
        (List.length r.Analyzer.r_parts))

let suite =
  [
    qtest prop_merge_law;
    qtest prop_percentile_bounds;
    Alcotest.test_case "histogram snapshot basics" `Quick test_hist_basics;
    Alcotest.test_case "timing helpers gate on set_timed" `Quick
      test_timing_gate;
    qtest prop_shim_matches_model;
    Alcotest.test_case "trace ring wraps with exact accounting" `Quick
      test_ring_wrap;
    Alcotest.test_case "disabled tracing is inert" `Quick
      test_disabled_is_inert;
    qtest prop_jsonl_roundtrip;
    Alcotest.test_case "analyzer reconstructs a synthetic timeline" `Quick
      test_analyzer_reconstructs_synthetic;
  ]
