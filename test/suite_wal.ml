(* Unit tests for the write-ahead log: volatile tail semantics, forcing,
   crash, truncation, LSN reservation. *)

module Wal = Untx_wal.Wal
module Lsn = Untx_util.Lsn

let mk () = Wal.create ~size:String.length ()

let lsn i = Lsn.of_int i

let test_append_assigns_lsns () =
  let w = mk () in
  let a = Wal.append w "one" in
  let b = Wal.append w "two" in
  Alcotest.(check int) "first lsn" 1 (Lsn.to_int a);
  Alcotest.(check int) "second lsn" 2 (Lsn.to_int b);
  Alcotest.(check int) "last" 2 (Lsn.to_int (Wal.last_lsn w));
  Alcotest.(check int) "nothing stable" 0 (Lsn.to_int (Wal.stable_lsn w))

let test_force_moves_tail () =
  let w = mk () in
  ignore (Wal.append w "a");
  ignore (Wal.append w "b");
  Wal.force w;
  Alcotest.(check int) "stable covers tail" 2 (Lsn.to_int (Wal.stable_lsn w));
  Alcotest.(check int) "stable count" 2 (Wal.stable_count w);
  Alcotest.(check int) "volatile empty" 0 (Wal.volatile_count w)

let test_crash_loses_unforced () =
  let w = mk () in
  ignore (Wal.append w "keep");
  Wal.force w;
  ignore (Wal.append w "lose1");
  ignore (Wal.append w "lose2");
  Wal.crash w;
  Alcotest.(check int) "stable intact" 1 (Wal.stable_count w);
  Alcotest.(check int) "tail gone" 0 (Wal.volatile_count w);
  (* LSNs remain unique after the crash *)
  let next = Wal.append w "after" in
  Alcotest.(check bool) "no LSN reuse" true (Lsn.to_int next > 3)

let test_reserve () =
  let w = mk () in
  let a = Wal.append w "op" in
  let r = Wal.reserve w in
  let b = Wal.append w "op2" in
  Alcotest.(check bool) "reserved between" true
    (Lsn.to_int r = Lsn.to_int a + 1 && Lsn.to_int b = Lsn.to_int r + 1);
  Wal.force w;
  (* the reserved gap is covered by stability *)
  Alcotest.(check int) "stable covers reserve" (Lsn.to_int b)
    (Lsn.to_int (Wal.stable_lsn w));
  Alcotest.(check (option string)) "no record at reserved" None
    (Wal.find w r)

let test_iter_from () =
  let w = mk () in
  for i = 1 to 5 do
    ignore (Wal.append w (string_of_int i))
  done;
  Wal.force w;
  let seen = ref [] in
  Wal.iter_from w (lsn 3) (fun l r -> seen := (Lsn.to_int l, r) :: !seen);
  Alcotest.(check (list (pair int string)))
    "from lsn 3"
    [ (3, "3"); (4, "4"); (5, "5") ]
    (List.rev !seen)

let test_truncate () =
  let w = mk () in
  for i = 1 to 5 do
    ignore (Wal.append w (string_of_int i))
  done;
  Wal.force w;
  Wal.truncate w (lsn 4);
  Alcotest.(check int) "records dropped" 2 (Wal.stable_count w);
  Alcotest.(check (option string)) "old gone" None (Wal.find w (lsn 2));
  Alcotest.(check (option string)) "kept" (Some "4") (Wal.find w (lsn 4))

(* Truncation boundaries: the checkpoint path truncates exactly at
   watermarks, so the edge cases (at stable, repeated, across a crash)
   must hold bit-for-bit. *)
let test_truncate_at_stable () =
  let w = mk () in
  for i = 1 to 5 do
    ignore (Wal.append w (string_of_int i))
  done;
  Wal.force w;
  Wal.truncate w (Wal.stable_lsn w);
  Alcotest.(check int) "only the stable head survives" 1 (Wal.stable_count w);
  Alcotest.(check (option string)) "head kept" (Some "5") (Wal.find w (lsn 5));
  Alcotest.(check int) "retained_from is the head" 5
    (Lsn.to_int (Wal.retained_from w))

let test_truncate_repeated () =
  let w = mk () in
  for i = 1 to 5 do
    ignore (Wal.append w (string_of_int i))
  done;
  Wal.force w;
  Wal.truncate w (lsn 3);
  let count = Wal.stable_count w in
  Wal.truncate w (lsn 3);
  Alcotest.(check int) "re-truncating to the same point is a no-op" count
    (Wal.stable_count w);
  Alcotest.(check int) "retained_from unchanged" 3
    (Lsn.to_int (Wal.retained_from w));
  (* truncating backwards must not resurrect anything either *)
  Wal.truncate w (lsn 2);
  Alcotest.(check (option string)) "dropped records stay dropped" None
    (Wal.find w (lsn 2));
  Alcotest.(check int) "floor never regresses" 3
    (Lsn.to_int (Wal.retained_from w))

let test_truncate_then_crash () =
  let w = mk () in
  for i = 1 to 4 do
    ignore (Wal.append w (string_of_int i))
  done;
  Wal.force w;
  Wal.truncate w (lsn 3);
  ignore (Wal.append w "tail");
  Wal.crash w;
  Alcotest.(check int) "retained_from survives the crash" 3
    (Lsn.to_int (Wal.retained_from w));
  Alcotest.(check int) "stable suffix intact" 2 (Wal.stable_count w);
  Alcotest.(check (option string)) "kept" (Some "3") (Wal.find w (lsn 3))

let test_iter_retained () =
  let w = mk () in
  for i = 1 to 5 do
    ignore (Wal.append w (string_of_int i))
  done;
  Wal.force w;
  Wal.truncate w (lsn 4);
  Alcotest.check_raises "cursor below the retained head raises"
    (Wal.Truncated { wanted = lsn 2; retained = lsn 4 })
    (fun () -> Wal.iter_retained w (lsn 2) (fun _ _ -> ()));
  let seen = ref [] in
  Wal.iter_retained w (lsn 4) (fun l _ -> seen := Lsn.to_int l :: !seen);
  Alcotest.(check (list int)) "at the head is fine" [ 4; 5 ] (List.rev !seen);
  (* an untruncated log accepts any cursor, including the legal
     from-zero full scan recovery uses *)
  let fresh = mk () in
  ignore (Wal.append fresh "a");
  Wal.force fresh;
  let n = ref 0 in
  Wal.iter_retained fresh Lsn.zero (fun _ _ -> incr n);
  Alcotest.(check int) "fresh log scans from zero" 1 !n

let test_force_through () =
  let w = mk () in
  let a = Wal.append w "a" in
  Wal.force_through w a;
  Alcotest.(check int) "forced" 1 (Lsn.to_int (Wal.stable_lsn w));
  let forces = Wal.forces w in
  Wal.force_through w a;
  Alcotest.(check int) "no redundant force" forces (Wal.forces w)

let test_find_volatile () =
  let w = mk () in
  let a = Wal.append w "tail" in
  Alcotest.(check (option string)) "find in tail" (Some "tail") (Wal.find w a)

let test_bytes_accounting () =
  let w = mk () in
  ignore (Wal.append w "12345");
  ignore (Wal.append w "123");
  Alcotest.(check int) "bytes" 8 (Wal.appended_bytes w)

let suite =
  [
    Alcotest.test_case "append assigns LSNs" `Quick test_append_assigns_lsns;
    Alcotest.test_case "force moves tail" `Quick test_force_moves_tail;
    Alcotest.test_case "crash loses unforced tail" `Quick
      test_crash_loses_unforced;
    Alcotest.test_case "reserve" `Quick test_reserve;
    Alcotest.test_case "iter_from" `Quick test_iter_from;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "truncate at stable_lsn" `Quick test_truncate_at_stable;
    Alcotest.test_case "repeated truncation" `Quick test_truncate_repeated;
    Alcotest.test_case "truncate then crash" `Quick test_truncate_then_crash;
    Alcotest.test_case "iter_retained checks the floor" `Quick
      test_iter_retained;
    Alcotest.test_case "force_through" `Quick test_force_through;
    Alcotest.test_case "find in volatile tail" `Quick test_find_volatile;
    Alcotest.test_case "byte accounting" `Quick test_bytes_accounting;
  ]
