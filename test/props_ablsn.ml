(* Algebraic hardening pass for abstract LSNs: merge is a
   commutative/associative/idempotent join, advance only ever widens
   coverage (and its compaction of {LSNin} never forgets an LSN that the
   low-water cover doesn't vouch for), truncate never invents claims.
   The model-conformance suite lives in props.ml; this one pins the laws
   consolidation and recovery rely on. *)

module Ablsn = Untx_dc.Ablsn
module Lsn = Untx_util.Lsn

let test prop = Helpers.qcheck_test prop

let max_lsn_int = 100

(* An abstract LSN reached by a random interleaving of add/advance —
   the only way real pages grow one. *)
type ab_op = Add of int | Advance of int

let ab_op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun l -> Add (1 + (l mod max_lsn_int))) (int_bound 99);
        map (fun l -> Advance (1 + (l mod max_lsn_int))) (int_bound 99);
      ])

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Add l -> Printf.sprintf "add %d" l
         | Advance l -> Printf.sprintf "adv %d" l)
       ops)

let ab_ops_arb =
  QCheck.make ~print:print_ops QCheck.Gen.(list_size (int_bound 40) ab_op_gen)

let run_ab ops =
  List.fold_left
    (fun ab op ->
      match op with
      | Add l -> Ablsn.add (Lsn.of_int l) ab
      | Advance l -> Ablsn.advance ~lwm:(Lsn.of_int l) ab)
    Ablsn.empty ops

let all_lsns = List.init (max_lsn_int + 1) (fun i -> Lsn.of_int (i + 1))

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative" ~count:300
    (QCheck.pair ab_ops_arb ab_ops_arb) (fun (oa, ob) ->
      let a = run_ab oa and b = run_ab ob in
      Ablsn.equal (Ablsn.merge a b) (Ablsn.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:300
    (QCheck.triple ab_ops_arb ab_ops_arb ab_ops_arb) (fun (oa, ob, oc) ->
      let a = run_ab oa and b = run_ab ob and c = run_ab oc in
      Ablsn.equal
        (Ablsn.merge (Ablsn.merge a b) c)
        (Ablsn.merge a (Ablsn.merge b c)))

let prop_merge_idempotent =
  QCheck.Test.make ~name:"merge is idempotent" ~count:300 ab_ops_arb (fun ops ->
      let a = run_ab ops in
      Ablsn.equal (Ablsn.merge a a) a)

let prop_merge_absorbs_both =
  (* A consolidated page must vouch for exactly what either input page
     contained — losing a claim re-executes an applied operation,
     inventing one skips a needed redo. *)
  QCheck.Test.make ~name:"merge covers exactly the union" ~count:300
    (QCheck.pair ab_ops_arb ab_ops_arb) (fun (oa, ob) ->
      let a = run_ab oa and b = run_ab ob in
      let m = Ablsn.merge a b in
      List.for_all
        (fun l ->
          Ablsn.included l m = (Ablsn.included l a || Ablsn.included l b))
        all_lsns)

let prop_advance_monotone =
  (* A low-water mark only adds coverage: everything included before is
     included after, everything at or below the mark becomes included,
     and nothing else appears. *)
  QCheck.Test.make ~name:"advance is monotone and precise" ~count:300
    (QCheck.pair ab_ops_arb QCheck.(int_range 1 max_lsn_int))
    (fun (ops, lwm_i) ->
      let a = run_ab ops in
      let lwm = Lsn.of_int lwm_i in
      let a' = Ablsn.advance ~lwm a in
      List.for_all
        (fun l ->
          Ablsn.included l a' = (Ablsn.included l a || Lsn.(l <= lwm)))
        all_lsns)

let prop_advance_compaction_keeps_uncovered =
  (* The compaction inside advance discards {LSNin} members — but only
     ones the new low-water mark vouches for.  Every uncovered member
     must survive, and [max_lsn] (which recovery uses to find pages
     beyond a failed TC's stable log) must not shrink below a surviving
     claim. *)
  QCheck.Test.make ~name:"compaction never forgets an uncovered LSN"
    ~count:300
    (QCheck.pair ab_ops_arb QCheck.(int_range 1 max_lsn_int))
    (fun (ops, lwm_i) ->
      let a = run_ab ops in
      let lwm = Lsn.of_int lwm_i in
      let a' = Ablsn.advance ~lwm a in
      Lsn.Set.for_all
        (fun l -> Lsn.(l <= lwm) || Lsn.Set.mem l (Ablsn.ins a'))
        (Ablsn.ins a)
      && Lsn.Set.for_all
           (fun l -> Lsn.(l <= Ablsn.max_lsn a'))
           (Ablsn.ins a'))

let prop_truncate_never_adds =
  (* Rewinding to a failed TC's stable log only removes claims: nothing
     above the cut survives, nothing at or below it changes. *)
  QCheck.Test.make ~name:"truncate removes exactly the claims above"
    ~count:300
    (QCheck.pair ab_ops_arb QCheck.(int_range 1 max_lsn_int))
    (fun (ops, upto_i) ->
      let a = run_ab ops in
      let upto = Lsn.of_int upto_i in
      let a' = Ablsn.truncate ~upto a in
      List.for_all
        (fun l ->
          if Lsn.(l <= upto) then Ablsn.included l a' = Ablsn.included l a
          else not (Ablsn.included l a'))
        all_lsns)

let suite =
  [
    test prop_merge_commutative;
    test prop_merge_associative;
    test prop_merge_idempotent;
    test prop_merge_absorbs_both;
    test prop_advance_monotone;
    test prop_advance_compaction_keeps_uncovered;
    test prop_truncate_never_adds;
  ]
