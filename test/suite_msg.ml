(* The wire vocabulary: conflict detection (the basis of the TC's
   no-conflicting-in-flight obligation), footprints, sizes. *)

module Op = Untx_msg.Op
module Wire = Untx_msg.Wire
module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id

let ins k = Op.Insert { table = "t"; key = k; value = "v" }

let upd k = Op.Update { table = "t"; key = k; value = "v" }

let del k = Op.Delete { table = "t"; key = k }

let rd k = Op.Read { table = "t"; key = k; mode = Op.Own }

let scan from = Op.Scan { table = "t"; from_key = from; limit = 10; mode = Op.Own }

let probe from = Op.Probe { table = "t"; from_key = from; limit = 10 }

let cv keys = Op.Commit_versions { table = "t"; keys }

let test_point_conflicts () =
  Alcotest.(check bool) "same-key writes conflict" true
    (Op.conflicts (upd "k") (del "k"));
  Alcotest.(check bool) "different keys do not" false
    (Op.conflicts (upd "a") (upd "b"));
  Alcotest.(check bool) "read vs write same key" true
    (Op.conflicts (rd "k") (ins "k"));
  Alcotest.(check bool) "two reads never conflict" false
    (Op.conflicts (rd "k") (rd "k"))

let test_table_separation () =
  let other = Op.Update { table = "u"; key = "k"; value = "v" } in
  Alcotest.(check bool) "different tables never conflict" false
    (Op.conflicts (upd "k") other)

let test_range_conflicts () =
  Alcotest.(check bool) "scan vs write in range" true
    (Op.conflicts (scan "k10") (upd "k20"));
  Alcotest.(check bool) "scan vs write below range" false
    (Op.conflicts (scan "k10") (upd "k05"));
  Alcotest.(check bool) "two scans are reads" false
    (Op.conflicts (scan "a") (scan "b"));
  Alcotest.(check bool) "probe is a read" true (Op.is_read (probe "a"));
  Alcotest.(check bool) "probe vs write in range" true
    (Op.conflicts (probe "k10") (del "k99"))

let test_multi_key_conflicts () =
  Alcotest.(check bool) "version op vs member key" true
    (Op.conflicts (cv [ "a"; "b" ]) (upd "b"));
  Alcotest.(check bool) "version op vs other key" false
    (Op.conflicts (cv [ "a"; "b" ]) (upd "c"));
  Alcotest.(check bool) "two version ops overlapping" true
    (Op.conflicts (cv [ "a"; "b" ]) (cv [ "b"; "c" ]))

let test_conflicts_symmetric () =
  let ops =
    [ ins "a"; upd "b"; del "a"; rd "b"; scan "a"; probe "b"; cv [ "a"; "c" ] ]
  in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          Alcotest.(check bool) "symmetry" (Op.conflicts x y)
            (Op.conflicts y x))
        ops)
    ops

let test_sizes_positive () =
  List.iter
    (fun op -> Alcotest.(check bool) "positive size" true (Op.size op > 0))
    [ ins "a"; upd "b"; del "a"; rd "b"; scan "a"; probe "b"; cv [] ];
  let req = { Wire.tc = Tc_id.of_int 1; lsn = Lsn.of_int 5; part = 0; op = ins "a" } in
  (* request_size is no longer an estimate: it is the length of the
     actual encoded frame. *)
  Alcotest.(check int) "request size is the encoded length"
    (String.length (Wire.encode_request req))
    (Wire.request_size req);
  Alcotest.(check bool) "request bigger than op" true
    (Wire.request_size req > Op.size (ins "a"))

let test_pp_smoke () =
  (* pretty-printers must not raise on any constructor *)
  let to_s pp v = Format.asprintf "%a" pp v in
  List.iter
    (fun op -> Alcotest.(check bool) "nonempty" true (to_s Op.pp op <> ""))
    [ ins "a"; upd "b"; del "a"; rd "b"; scan "a"; probe "b"; cv [ "x" ];
      Op.Abort_versions { table = "t"; keys = [] } ];
  List.iter
    (fun c ->
      Alcotest.(check bool) "nonempty" true (to_s Wire.pp_control c <> ""))
    [
      Wire.End_of_stable_log { tc = Tc_id.of_int 1; eosl = Lsn.of_int 3 };
      Wire.Low_water_mark { tc = Tc_id.of_int 1; lwm = Lsn.of_int 3 };
      Wire.Watermarks
        { tc = Tc_id.of_int 1; eosl = Lsn.of_int 3; lwm = Lsn.of_int 2 };
      Wire.Checkpoint { tc = Tc_id.of_int 1; new_rssp = Lsn.of_int 9 };
      Wire.Restart_begin { tc = Tc_id.of_int 1; stable_lsn = Lsn.of_int 7 };
      Wire.Restart_end { tc = Tc_id.of_int 1 };
      Wire.Redo_fence_begin { tc = Tc_id.of_int 1 };
      Wire.Redo_fence_end { tc = Tc_id.of_int 1 };
    ]

let suite =
  [
    Alcotest.test_case "point conflicts" `Quick test_point_conflicts;
    Alcotest.test_case "table separation" `Quick test_table_separation;
    Alcotest.test_case "range conflicts" `Quick test_range_conflicts;
    Alcotest.test_case "multi-key conflicts" `Quick test_multi_key_conflicts;
    Alcotest.test_case "conflicts symmetric" `Quick test_conflicts_symmetric;
    Alcotest.test_case "sizes positive" `Quick test_sizes_positive;
    Alcotest.test_case "printers total" `Quick test_pp_smoke;
  ]
