let () =
  Alcotest.run "untx-repl"
    [
      ("session", Suite_session.suite);
      ("repl", Suite_repl.suite);
      ("props_repl", Props_repl.suite);
    ]
