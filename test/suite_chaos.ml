(* The chaos-soak engine at test scale: a handful of fixed-seed
   crash→recover→audit cycles that must come back violation-free and
   bit-identical on rerun, plus the lost-reply workload that proves the
   resend path (not Transport.flush) is what completes transactions
   under loss.  The full sweep lives in bench/e11_chaos.ml. *)

module Fault = Untx_fault.Fault
module Chaos = Untx_audit.Chaos
module Analyzer = Untx_obs.Analyzer

let cycle ?keep_trace ~label ~plan ~seed () =
  Chaos.run_cycle ?keep_trace ~label ~plan ~seed ~txns:12 ()

let check_clean (c : Chaos.cycle) =
  Alcotest.(check (list string))
    (Printf.sprintf "%s seed=%d: no violations" c.c_label c.c_seed)
    [] c.c_violations

let counter (c : Chaos.cycle) name =
  match List.assoc_opt name c.c_counters with Some n -> n | None -> 0

let test_small_soak () =
  let plans =
    [
      ("wal.tc.force.mid@2", [ Fault.crash_at "wal.tc.force.mid" 2 ]);
      ("dc.flush.before_page_write@1",
       [ Fault.crash_at "dc.flush.before_page_write" 1 ]);
      ("dc.smo.split.mid@1", [ Fault.crash_at "dc.smo.split.mid" 1 ]);
      ("disk.page_write.torn@1",
       [ Fault.crash_at "disk.page_write.torn" 1 ]);
      ("tc.commit.before_force@2",
       [ Fault.crash_at "tc.commit.before_force" 2 ]);
    ]
  in
  List.iter
    (fun (label, plan) ->
      List.iter
        (fun seed ->
          let c = cycle ~label ~plan ~seed () in
          check_clean c;
          Alcotest.(check bool)
            (Printf.sprintf "%s seed=%d: the planned rule fired" label seed)
            true (c.c_fired <> []))
        [ 3; 10 ])
    plans

let test_reproducible () =
  let run () =
    cycle ~label:"repro" ~seed:9
      ~plan:[ Fault.crash_at "dc.flush.after_page_write" 2 ]
      ()
  in
  let a = run () and b = run () in
  check_clean a;
  Alcotest.(check (list string)) "same fired points" a.c_fired b.c_fired;
  Alcotest.(check int) "same crash count" a.c_crashes b.c_crashes;
  Alcotest.(check int) "same committed count" a.c_committed b.c_committed;
  Alcotest.(check int) "same redelivery count" a.c_redelivered b.c_redelivered;
  Alcotest.(check (list (pair string int))) "same counter snapshot"
    a.c_counters b.c_counters

let test_lossy_resend_completes () =
  (* Seeds divisible by 3 run under the lossy policy (10% drop); the
     empty plan means every transaction must complete purely through
     timeout-driven resends — there is no Transport.flush anywhere in
     the engine's workload or quiesce path. *)
  let c = cycle ~label:"lossy, no faults" ~plan:[] ~seed:6 () in
  check_clean c;
  Alcotest.(check int) "every transaction committed" 12 c.c_committed;
  Alcotest.(check bool) "transport really dropped messages" true
    (counter c "transport.dropped" > 0);
  Alcotest.(check bool) "resends carried the workload" true
    (counter c "tc.resends" > 0);
  Alcotest.(check int) "flush bypass never used" 0
    (counter c "transport.flush_delivered")

let test_corrupting_wire () =
  (* Seed 6 runs under the lossy policy, and the armed corruption point
     flips bytes in a fraction of all delivered frames on both channels.
     Every corrupted frame must be caught by the checksum gate (never
     applied), and the contracts must still complete every
     transaction. *)
  let plan = [ Fault.crash_with_prob "transport.frame.corrupt" 0.05 ] in
  let c = cycle ~label:"corrupting wire" ~plan ~seed:6 () in
  check_clean c;
  Alcotest.(check int) "every transaction committed" 12 c.c_committed;
  Alcotest.(check bool) "frames were corrupted" true
    (counter c "transport.frames_corrupted" > 0);
  Alcotest.(check int) "every corrupted frame was rejected"
    (counter c "transport.frames_corrupted")
    (counter c "transport.corrupt_dropped")

let test_trace_reconstructs () =
  (* The same corrupting-wire cycle, with its span dump kept: the
     analyzer must reconstruct a complete per-operation timeline from
     the JSONL — every traced operation ends in an ack (no orphan spans:
     each resend chain converges on exactly the operation that started
     it), and the resend chains in the timelines account for exactly the
     resends the TC counted. *)
  let plan = [ Fault.crash_with_prob "transport.frame.corrupt" 0.05 ] in
  let c = cycle ~keep_trace:true ~label:"traced corrupting wire" ~plan ~seed:6 () in
  check_clean c;
  Alcotest.(check bool) "trace dump captured" true (c.c_trace <> "");
  let report = Analyzer.analyze (Analyzer.of_jsonl c.c_trace) in
  Alcotest.(check bool) "timelines reconstructed" true
    (report.Analyzer.r_timelines <> []);
  Alcotest.(check int) "no orphan spans after resend" 0
    report.Analyzer.r_orphans;
  let resends =
    List.fold_left
      (fun acc tl -> acc + tl.Analyzer.tl_resends)
      0 report.Analyzer.r_timelines
  in
  Alcotest.(check bool) "the cycle exercised the resend path" true
    (resends > 0);
  Alcotest.(check int) "timelines account for every TC resend"
    (counter c "tc.resends") resends;
  Alcotest.(check bool) "per-hop latencies were aggregated" true
    (report.Analyzer.r_hops <> [])

let test_crash_cycle_under_corruption () =
  (* A TC crash and a DC crash in the same cycle while the wire keeps
     corrupting frames: the restart barriers and recovery redo
     themselves run over the corrupting transport. *)
  let plan =
    [
      Fault.crash_with_prob "transport.frame.corrupt" 0.04;
      Fault.crash_at "tc.commit.before_force" 3;
      Fault.crash_at "dc.flush.after_page_write" 2;
    ]
  in
  List.iter
    (fun seed ->
      let c = cycle ~label:"crash cycle + corruption" ~plan ~seed () in
      check_clean c;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: planned crashes fired" seed)
        true (c.c_crashes >= 2))
    [ 3; 6; 10 ]

let test_partitioned_cycles () =
  (* The partitioned twin at test scale: one TC over three DCs, fixed
     seeds, kills mid-SMO and mid-checkpoint-grant.  Whichever partition
     the fault escapes from dies and recovers alone; the deployment
     audit (per-partition structure/hygiene, merged oracle, routed
     idempotence) must come back clean. *)
  let plans =
    [
      ("dc.smo.split.mid@1", [ Fault.crash_at "dc.smo.split.mid" 1 ]);
      ("dc.checkpoint.mid@1", [ Fault.crash_at "dc.checkpoint.mid" 1 ]);
      ("tc.commit.before_force@2",
       [ Fault.crash_at "tc.commit.before_force" 2 ]);
      ("dc.flush.before_page_write@1",
       [ Fault.crash_at "dc.flush.before_page_write" 1 ]);
    ]
  in
  List.iter
    (fun (label, plan) ->
      List.iter
        (fun seed ->
          let c =
            Chaos.run_cycle_partitioned ~label ~plan ~seed ~txns:12 ~parts:3 ()
          in
          check_clean c;
          Alcotest.(check bool)
            (Printf.sprintf "%s seed=%d: the planned rule fired" label seed)
            true (c.c_fired <> []))
        [ 3; 10 ])
    plans

let test_redo_window_watermark_race () =
  (* Regression: a watermark pushed while the TC awaits the redo-fence
     barrier (an ack from a sibling partition pumps the transports mid
     [Tc.on_dc_restart]) used to claim every acknowledged LSN.  The
     rebuilt partition, whose pages came back with empty abstract LSNs,
     compacted to the claim and absorbed its whole redo stream as
     duplicates — losing committed records.  Both seeds reproduced the
     loss before the low-water cap was installed ahead of the barrier. *)
  List.iter
    (fun (label, plan, seed) ->
      let c =
        Chaos.run_cycle_partitioned ~label ~plan ~seed ~txns:24 ~parts:3 ()
      in
      check_clean c;
      Alcotest.(check bool)
        (Printf.sprintf "%s seed=%d: the planned rule fired" label seed)
        true (c.c_fired <> []))
    [
      ( "dc.flush.before_page_write@1",
        [ Fault.crash_at "dc.flush.before_page_write" 1 ],
        23658 );
      ("wal.dc.force.mid@1", [ Fault.crash_at "wal.dc.force.mid" 1 ], 24068);
    ]

let test_partitioned_reproducible () =
  let run () =
    Chaos.run_cycle_partitioned ~label:"repro-part" ~seed:9 ~txns:12 ~parts:3
      ~plan:[ Fault.crash_at "dc.flush.after_page_write" 2 ]
      ()
  in
  let a = run () and b = run () in
  check_clean a;
  Alcotest.(check (list string)) "same fired points" a.c_fired b.c_fired;
  Alcotest.(check int) "same crash count" a.c_crashes b.c_crashes;
  Alcotest.(check int) "same committed count" a.c_committed b.c_committed;
  Alcotest.(check (list (pair string int))) "same counter snapshot"
    a.c_counters b.c_counters

let test_plan_sweep_covers_required_points () =
  (* The standard sweep must reach the ISSUE's coverage floor: at least
     8 distinct points including a torn write and a mid-SMO crash. *)
  let points =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, plan) -> List.map (fun r -> r.Fault.point) plan)
         (Chaos.plans ()))
  in
  Alcotest.(check bool) "at least 8 distinct points" true
    (List.length points >= 8);
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " in sweep") true (List.mem p points))
    [ "disk.page_write.torn"; "dc.smo.split.mid"; "wal.tc.force.mid";
      "tc.recover.mid" ]

let suite =
  [
    Alcotest.test_case "small fixed-seed soak is violation-free" `Quick
      test_small_soak;
    Alcotest.test_case "cycles are reproducible from the seed" `Quick
      test_reproducible;
    Alcotest.test_case "lossy workload completes via resend" `Quick
      test_lossy_resend_completes;
    Alcotest.test_case "corrupting wire stays exactly-once" `Quick
      test_corrupting_wire;
    Alcotest.test_case "trace dump reconstructs per-op timelines" `Quick
      test_trace_reconstructs;
    Alcotest.test_case "crash cycle under corruption" `Quick
      test_crash_cycle_under_corruption;
    Alcotest.test_case "plan sweep covers the required points" `Quick
      test_plan_sweep_covers_required_points;
    Alcotest.test_case "partitioned crash cycles are violation-free" `Quick
      test_partitioned_cycles;
    Alcotest.test_case "partitioned cycles are reproducible" `Quick
      test_partitioned_reproducible;
    Alcotest.test_case "redo-window watermark race stays fixed" `Quick
      test_redo_window_watermark_race;
  ]
