let () =
  Alcotest.run "untx-branch"
    [ ("branch", Suite_branch.suite); ("props_branch", Props_branch.suite) ]
