let () =
  Alcotest.run "untx-index"
    [
      ("index", Suite_index.suite);
      ("index-props", Props_index.suite);
      ("workload", Suite_workload.suite);
    ]
