(* Replication properties: log-prefix determinism of promotion, plus
   replicated chaos acceptance cycles (primary killed at shipped-batch
   boundaries mid-workload, audit must come back clean). *)

module Deploy = Untx_cloud.Deploy
module Repl = Untx_repl.Repl
module Chaos = Untx_audit.Chaos
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Fault = Untx_fault.Fault

let test prop = Helpers.qcheck_test prop

(* --- log-prefix determinism ------------------------------------------- *)

(* Promoting a standby frozen after ANY prefix of the shipped stream,
   then re-driving the gap from the TC's stable log, must land on
   exactly the state the primary had — byte-for-byte over every table
   dump.  The prefix length and the workload are both generator-chosen,
   so this sweeps arbitrary promotion points, not just batch edges. *)

type scenario = { ops : (int * string) list; cut : int }
(* ops: (key-index, value) writes, one committed txn each; cut: how many
   run before the standby is frozen at its then-current prefix. *)

let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 4 28 in
    let* cut = int_range 0 n in
    let* vals = list_repeat n (int_bound 999) in
    let ops = List.mapi (fun i v -> (i mod 9, Printf.sprintf "v%d.%d" i v)) vals in
    return { ops; cut })

let scenario_arb =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "cut=%d ops=[%s]" s.cut
        (String.concat ";"
           (List.map (fun (k, v) -> Printf.sprintf "k%d=%s" k v) s.ops)))
    scenario_gen

let commit_one tc ~key ~value =
  let txn = Tc.begin_txn tc in
  (match Tc.update tc txn ~table:"t" ~key ~value with
  | `Ok () -> ()
  | `Blocked -> failwith "blocked"
  | `Fail _ -> (
    match Tc.insert tc txn ~table:"t" ~key ~value with
    | `Ok () -> ()
    | `Blocked | `Fail _ -> failwith "insert failed"));
  match Tc.commit tc txn with
  | `Ok () -> ()
  | `Blocked | `Fail _ -> failwith "commit failed"

let dump_all dc =
  List.map (fun tbl -> (tbl, Dc.dump_table dc tbl)) (Dc.table_names dc)

let prop_promotion_prefix_deterministic =
  QCheck.Test.make ~count:40 ~name:"promotion from any prefix is deterministic"
    scenario_arb (fun s ->
      let d = Deploy.create () in
      let tc =
        Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1))
      in
      ignore (Deploy.add_dc d ~name:"dc0" Dc.default_config);
      Deploy.add_partitioned_table d ~replicas:1 ~name:"t" ~versioned:false
        ~dcs:[ "dc0" ] ();
      let m = Deploy.manager d ~tc:"tc1" in
      let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
      let run (k, v) = commit_one tc ~key:(Printf.sprintf "k%d" k) ~value:v in
      let before, after =
        List.filteri (fun i _ -> i < s.cut) s.ops,
        List.filteri (fun i _ -> i >= s.cut) s.ops
      in
      List.iter run before;
      Deploy.quiesce d;
      (* freeze the standby at whatever prefix shipping had reached *)
      Repl.Manager.detach m ~name:sbn;
      List.iter run after;
      Deploy.quiesce d;
      let primary_state = dump_all (Deploy.dc d "dc0") in
      (* primary "dies"; the frozen-prefix standby is the only candidate *)
      Deploy.fail_over d ~dc:"dc0";
      let promoted_state = dump_all (Deploy.dc d "dc0") in
      if promoted_state <> primary_state then
        QCheck.Test.fail_report
          "promoted state diverges from the dead primary's";
      (* the promoted DC keeps serving: one more commit round-trips *)
      commit_one tc ~key:"post" ~value:"alive";
      Tc.read_committed tc ~table:"t" ~key:"post" = Some "alive")

(* --- promotion durability under arbitrary interleavings ---------------- *)

(* Generator-chosen sequences of fill / detach / checkpoint / reattach /
   standby-crash against a sole standby, then a forced failover.  The
   contract under test is fail_over's dichotomy: either it promotes and
   every acked commit is readable afterwards, or it raises
   Promotion_refused — and then it must be the case that the candidate
   really was ineligible, and a cold restart of the primary still serves
   everything.  Silent loss and spurious refusal both fail the property. *)

type fo_step = Fill of int | Detach | Reattach | Crash_standby | Checkpoint

let fo_step_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun n -> Fill n) (int_range 1 8));
        (2, return Detach);
        (2, return Reattach);
        (1, return Crash_standby);
        (3, return Checkpoint);
      ])

let fo_print = function
  | Fill n -> Printf.sprintf "Fill %d" n
  | Detach -> "Detach"
  | Reattach -> "Reattach"
  | Crash_standby -> "Crash_standby"
  | Checkpoint -> "Checkpoint"

let fo_arb =
  QCheck.make
    ~print:(fun steps -> String.concat "; " (List.map fo_print steps))
    QCheck.Gen.(list_size (int_range 4 14) fo_step_gen)

let prop_failover_never_loses_acked =
  QCheck.Test.make ~count:40
    ~name:"failover never loses an acked commit, never promotes ineligible"
    fo_arb (fun steps ->
      let d = Deploy.create () in
      let tc =
        Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1))
      in
      ignore (Deploy.add_dc d ~name:"dc0" Dc.default_config);
      Deploy.add_partitioned_table d ~replicas:1 ~name:"t" ~versioned:false
        ~dcs:[ "dc0" ] ();
      let m = Deploy.manager d ~tc:"tc1" in
      let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
      let oracle = ref [] in
      let next = ref 0 in
      let fill n =
        for _ = 1 to n do
          let key = Printf.sprintf "p%04d" !next in
          incr next;
          commit_one tc ~key ~value:"v";
          oracle := key :: !oracle
        done
      in
      let checkpoint () =
        (* a checkpoint only counts when granted; flush until it is (or
           give up — an ungranted attempt must also be harmless) *)
        let rec grant tries =
          if (not (Tc.checkpoint tc)) && tries > 0 then begin
            Deploy.quiesce d;
            Dc.flush_all (Deploy.dc d "dc0");
            grant (tries - 1)
          end
        in
        grant 3
      in
      let apply = function
        | Fill n -> fill n
        | Detach -> (
          match Repl.Manager.state_of m ~name:sbn with
          | Repl.Manager.Attached -> Repl.Manager.detach m ~name:sbn
          | Repl.Manager.Detached _ | Repl.Manager.Rebuild_required -> ())
        | Reattach -> (
          match Repl.Manager.state_of m ~name:sbn with
          | Repl.Manager.Detached _ -> Repl.Manager.reattach m ~name:sbn
          | Repl.Manager.Attached -> ()
          | Repl.Manager.Rebuild_required ->
            (* terminal: reattach must refuse, not resurrect *)
            let refused =
              try
                Repl.Manager.reattach m ~name:sbn;
                false
              with Invalid_argument _ -> true
            in
            if not refused then
              QCheck.Test.fail_report "reattach resurrected rebuild-required")
        | Crash_standby -> Deploy.crash_standby d sbn
        | Checkpoint -> checkpoint ()
      in
      List.iter apply steps;
      Deploy.quiesce d;
      let eligible = Repl.Manager.promotion_eligible m ~name:sbn in
      (match Deploy.fail_over d ~dc:"dc0" with
      | () ->
        if not eligible then
          QCheck.Test.fail_report "promoted an ineligible candidate"
      | exception Deploy.Promotion_refused _ ->
        if eligible then
          QCheck.Test.fail_report "refused an eligible candidate";
        (* the operator fallback keeps the no-loss promise *)
        Deploy.crash_dc d "dc0");
      List.for_all
        (fun key -> Tc.read_committed tc ~table:"t" ~key = Some "v")
        !oracle)

(* --- replicated chaos acceptance -------------------------------------- *)

let run_clean ~label ~plan ~seed ~durability =
  let c =
    Chaos.run_cycle_replicated ~label ~plan ~seed ~txns:18 ~parts:2
      ~replicas:2 ~durability ()
  in
  Alcotest.(check (list string)) (label ^ " audit clean") []
    c.Chaos.c_violations;
  c

let test_promotion_cycle_clean () =
  let c =
    run_clean ~label:"kill primary at 3rd shipped batch"
      ~plan:[ Fault.crash_at Repl.p_ship_batch 3 ]
      ~seed:0x5EED ~durability:Repl.Primary_only
  in
  Alcotest.(check bool) "the kill actually fired" true
    (List.mem Repl.p_ship_batch c.Chaos.c_fired)

let test_promotion_cycle_quorum_clean () =
  (* The acceptance scenario from the issue: mid-workload primary kill
     under Quorum 1 — promotion must preserve every acked commit. *)
  let c =
    run_clean ~label:"quorum-1 primary kill mid-workload"
      ~plan:[ Fault.crash_at Repl.p_ship_batch 5 ]
      ~seed:0xB0B ~durability:(Repl.Quorum 1)
  in
  Alcotest.(check bool) "promotion happened" true
    (match List.assoc_opt "repl.promotions" c.Chaos.c_counters with
    | Some n -> n > 0
    | None -> false)

let test_double_promotion_clean () =
  ignore
    (run_clean ~label:"two promotions in one cycle"
       ~plan:[ Fault.crash_at Repl.p_ship_batch 2 ]
       ~seed:0xACE ~durability:(Repl.Quorum 1));
  ignore
    (run_clean ~label:"promotion then cold DC kill"
       ~plan:
         [
           Fault.crash_at Repl.p_ship_batch 3;
           Fault.crash_at "dc.flush.after_page_write" 2;
         ]
       ~seed:0xD1CE ~durability:Repl.Primary_only)

let suite =
  [
    test prop_promotion_prefix_deterministic;
    test prop_failover_never_loses_acked;
    Alcotest.test_case "chaos: promotion cycle clean" `Quick
      test_promotion_cycle_clean;
    Alcotest.test_case "chaos: quorum-1 mid-workload kill clean" `Quick
      test_promotion_cycle_quorum_clean;
    Alcotest.test_case "chaos: promotion combos clean" `Quick
      test_double_promotion_clean;
  ]
