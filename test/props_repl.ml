(* Replication properties: log-prefix determinism of promotion, plus
   replicated chaos acceptance cycles (primary killed at shipped-batch
   boundaries mid-workload, audit must come back clean). *)

module Deploy = Untx_cloud.Deploy
module Repl = Untx_repl.Repl
module Chaos = Untx_audit.Chaos
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Fault = Untx_fault.Fault

let test prop = QCheck_alcotest.to_alcotest prop

(* --- log-prefix determinism ------------------------------------------- *)

(* Promoting a standby frozen after ANY prefix of the shipped stream,
   then re-driving the gap from the TC's stable log, must land on
   exactly the state the primary had — byte-for-byte over every table
   dump.  The prefix length and the workload are both generator-chosen,
   so this sweeps arbitrary promotion points, not just batch edges. *)

type scenario = { ops : (int * string) list; cut : int }
(* ops: (key-index, value) writes, one committed txn each; cut: how many
   run before the standby is frozen at its then-current prefix. *)

let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 4 28 in
    let* cut = int_range 0 n in
    let* vals = list_repeat n (int_bound 999) in
    let ops = List.mapi (fun i v -> (i mod 9, Printf.sprintf "v%d.%d" i v)) vals in
    return { ops; cut })

let scenario_arb =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "cut=%d ops=[%s]" s.cut
        (String.concat ";"
           (List.map (fun (k, v) -> Printf.sprintf "k%d=%s" k v) s.ops)))
    scenario_gen

let commit_one tc ~key ~value =
  let txn = Tc.begin_txn tc in
  (match Tc.update tc txn ~table:"t" ~key ~value with
  | `Ok () -> ()
  | `Blocked -> failwith "blocked"
  | `Fail _ -> (
    match Tc.insert tc txn ~table:"t" ~key ~value with
    | `Ok () -> ()
    | `Blocked | `Fail _ -> failwith "insert failed"));
  match Tc.commit tc txn with
  | `Ok () -> ()
  | `Blocked | `Fail _ -> failwith "commit failed"

let dump_all dc =
  List.map (fun tbl -> (tbl, Dc.dump_table dc tbl)) (Dc.table_names dc)

let prop_promotion_prefix_deterministic =
  QCheck.Test.make ~count:40 ~name:"promotion from any prefix is deterministic"
    scenario_arb (fun s ->
      let d = Deploy.create () in
      let tc =
        Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1))
      in
      ignore (Deploy.add_dc d ~name:"dc0" Dc.default_config);
      Deploy.add_partitioned_table d ~replicas:1 ~name:"t" ~versioned:false
        ~dcs:[ "dc0" ] ();
      let m = Deploy.manager d ~tc:"tc1" in
      let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
      let run (k, v) = commit_one tc ~key:(Printf.sprintf "k%d" k) ~value:v in
      let before, after =
        List.filteri (fun i _ -> i < s.cut) s.ops,
        List.filteri (fun i _ -> i >= s.cut) s.ops
      in
      List.iter run before;
      Deploy.quiesce d;
      (* freeze the standby at whatever prefix shipping had reached *)
      Repl.Manager.detach m ~name:sbn;
      List.iter run after;
      Deploy.quiesce d;
      let primary_state = dump_all (Deploy.dc d "dc0") in
      (* primary "dies"; the frozen-prefix standby is the only candidate *)
      Deploy.fail_over d ~dc:"dc0";
      let promoted_state = dump_all (Deploy.dc d "dc0") in
      if promoted_state <> primary_state then
        QCheck.Test.fail_report
          "promoted state diverges from the dead primary's";
      (* the promoted DC keeps serving: one more commit round-trips *)
      commit_one tc ~key:"post" ~value:"alive";
      Tc.read_committed tc ~table:"t" ~key:"post" = Some "alive")

(* --- replicated chaos acceptance -------------------------------------- *)

let run_clean ~label ~plan ~seed ~durability =
  let c =
    Chaos.run_cycle_replicated ~label ~plan ~seed ~txns:18 ~parts:2
      ~replicas:2 ~durability ()
  in
  Alcotest.(check (list string)) (label ^ " audit clean") []
    c.Chaos.c_violations;
  c

let test_promotion_cycle_clean () =
  let c =
    run_clean ~label:"kill primary at 3rd shipped batch"
      ~plan:[ Fault.crash_at Repl.p_ship_batch 3 ]
      ~seed:0x5EED ~durability:Repl.Primary_only
  in
  Alcotest.(check bool) "the kill actually fired" true
    (List.mem Repl.p_ship_batch c.Chaos.c_fired)

let test_promotion_cycle_quorum_clean () =
  (* The acceptance scenario from the issue: mid-workload primary kill
     under Quorum 1 — promotion must preserve every acked commit. *)
  let c =
    run_clean ~label:"quorum-1 primary kill mid-workload"
      ~plan:[ Fault.crash_at Repl.p_ship_batch 5 ]
      ~seed:0xB0B ~durability:(Repl.Quorum 1)
  in
  Alcotest.(check bool) "promotion happened" true
    (match List.assoc_opt "repl.promotions" c.Chaos.c_counters with
    | Some n -> n > 0
    | None -> false)

let test_double_promotion_clean () =
  ignore
    (run_clean ~label:"two promotions in one cycle"
       ~plan:[ Fault.crash_at Repl.p_ship_batch 2 ]
       ~seed:0xACE ~durability:(Repl.Quorum 1));
  ignore
    (run_clean ~label:"promotion then cold DC kill"
       ~plan:
         [
           Fault.crash_at Repl.p_ship_batch 3;
           Fault.crash_at "dc.flush.after_page_write" 2;
         ]
       ~seed:0xD1CE ~durability:Repl.Primary_only)

let suite =
  [
    test prop_promotion_prefix_deterministic;
    Alcotest.test_case "chaos: promotion cycle clean" `Quick
      test_promotion_cycle_clean;
    Alcotest.test_case "chaos: quorum-1 mid-workload kill clean" `Quick
      test_promotion_cycle_quorum_clean;
    Alcotest.test_case "chaos: promotion combos clean" `Quick
      test_double_promotion_clean;
  ]
