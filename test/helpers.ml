(* Shared helpers for the test suites. *)

module Kernel = Untx_kernel.Kernel
module Transport = Untx_kernel.Transport
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id

let ok = function
  | `Ok v -> v
  | `Blocked -> Alcotest.fail "unexpected `Blocked"
  | `Fail msg -> Alcotest.fail ("unexpected `Fail: " ^ msg)

let expect_fail = function
  | `Ok _ -> Alcotest.fail "expected `Fail, got `Ok"
  | `Blocked -> Alcotest.fail "expected `Fail, got `Blocked"
  | `Fail msg -> msg

let kernel_config
    ?(policy = Transport.reliable)
    ?(sync_policy = Dc.Full_ablsn)
    ?(tc_reset_mode = Dc.Selective)
    ?(cc_protocol = Tc.Key_locks)
    ?(pipeline_writes = true)
    ?(page_capacity = 256)
    ?(cache_pages = 64)
    ?(seed = 42)
    () =
  {
    Kernel.tc =
      {
        (Tc.default_config (Tc_id.of_int 1)) with
        cc_protocol;
        pipeline_writes;
        debug_checks = true;
      };
    dc =
      {
        Dc.page_capacity;
        cache_pages;
        sync_policy;
        tc_reset_mode;
        debug_checks = true;
      };
    policy;
    seed;
    auto_checkpoint_every = 0;
  }

let make_kernel ?policy ?sync_policy ?tc_reset_mode ?cc_protocol
    ?pipeline_writes ?page_capacity ?cache_pages ?seed ?(versioned = true)
    ?(table = "kv") () =
  let k =
    Kernel.create
      (kernel_config ?policy ?sync_policy ?tc_reset_mode ?cc_protocol
         ?pipeline_writes ?page_capacity ?cache_pages ?seed ())
  in
  Kernel.create_table k ~name:table ~versioned;
  k

(* Run one committed transaction applying [ops]. *)
let committed k ops =
  let txn = Kernel.begin_txn k in
  List.iter (fun op -> ok (op txn)) ops;
  ok (Kernel.commit k txn)

let put k ~table key value =
  committed k [ (fun txn -> Kernel.insert k txn ~table ~key ~value) ]

let get k ~table key =
  let txn = Kernel.begin_txn k in
  let v = ok (Kernel.read k txn ~table ~key) in
  ok (Kernel.commit k txn);
  v

(* Full observable table contents via a fresh read transaction. *)
let snapshot k ~table =
  let txn = Kernel.begin_txn k in
  let rows = ok (Kernel.scan k txn ~table ~from_key:"" ~limit:max_int) in
  ok (Kernel.commit k txn);
  rows

let check_wellformed k =
  match Dc.check (Kernel.dc k) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("ill-formed index: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Reproducible qcheck runs.

   [QCheck_alcotest.to_alcotest] without [~rand] self-initializes its
   random state, so a failing property's counterexample could not be
   replayed.  Every suite instead registers through [qcheck_test]: the
   generator state derives from a fixed seed (overridable via the
   QCHECK_SEED environment variable), and a failing test says which
   seed to export to replay it. *)

let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> invalid_arg ("QCHECK_SEED not an integer: " ^ s))
  | None -> 0xC1D9

let qcheck_test prop =
  let name, speed, fn =
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| qcheck_seed |])
      prop
  in
  ( name,
    speed,
    fun () ->
      try fn ()
      with e ->
        Printf.eprintf
          "\n[qcheck] property %S failed under seed %d — replay with \
           QCHECK_SEED=%d\n\
           %!"
          name qcheck_seed qcheck_seed;
        raise e )
