(* Lock-manager hardening pass: random acquire/upgrade/release
   interleavings driven through the real strict-2PL state machine.
   After every single step, no two owners may hold incompatible modes on
   the same resource; releases must hand queued requests to real
   holders; and a full release drains the table completely — no stuck
   waiter survives its blockers. *)

module Lock_mgr = Untx_tc.Lock_mgr

let test prop = Helpers.qcheck_test prop

let owners = [ 1; 2; 3; 4 ]

(* A small pool so interleavings actually contend. *)
let resources =
  [
    Lock_mgr.Record { table = "t"; key = "a" };
    Lock_mgr.Record { table = "t"; key = "b" };
    Lock_mgr.Record { table = "u"; key = "a" };
    Lock_mgr.Range { table = "t"; slot = 0 };
    Lock_mgr.Range { table = "t"; slot = 1 };
    Lock_mgr.Table "t";
  ]

type step = Acquire of int * int * Lock_mgr.mode | Release of int | Cancel of int

let step_gen =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map3
            (fun o r m -> Acquire (o, r, (if m then Lock_mgr.X else Lock_mgr.S)))
            (int_range 1 4)
            (int_bound (List.length resources - 1))
            bool );
        (1, map (fun o -> Release o) (int_range 1 4));
        (1, map (fun o -> Cancel o) (int_range 1 4));
      ])

let print_step = function
  | Acquire (o, r, m) ->
    Printf.sprintf "acq o%d r%d %s" o r
      (match m with Lock_mgr.S -> "S" | Lock_mgr.X -> "X")
  | Release o -> Printf.sprintf "rel o%d" o
  | Cancel o -> Printf.sprintf "cancel o%d" o

let steps_arb =
  QCheck.make
    ~print:(fun steps -> String.concat ";" (List.map print_step steps))
    QCheck.Gen.(list_size (int_range 1 60) step_gen)

(* Incompatibility as visible through the public API: an X holder
   excludes every other holder ([holds _ S] is true for an X holder,
   since X covers S). *)
let no_incompatible_pair lm =
  List.for_all
    (fun r ->
      List.for_all
        (fun o1 ->
          (not (Lock_mgr.holds lm ~owner:o1 r Lock_mgr.X))
          || List.for_all
               (fun o2 ->
                 o1 = o2 || not (Lock_mgr.holds lm ~owner:o2 r Lock_mgr.S))
               owners)
        owners)
    resources

(* Replay a step list like a TC would: a blocked owner stalls (it issues
   nothing new until a release grants or cancels its wait). *)
let apply lm step =
  match step with
  | Acquire (o, ri, m) ->
    if not (Lock_mgr.waiting lm ~owner:o) then
      ignore (Lock_mgr.acquire lm ~owner:o (List.nth resources ri) m);
    []
  | Release o -> Lock_mgr.release_all lm ~owner:o
  | Cancel o ->
    Lock_mgr.cancel_waits lm ~owner:o;
    []

let prop_no_incompatible_coholders =
  QCheck.Test.make
    ~name:"interleavings never leave a granted-incompatible pair" ~count:300
    steps_arb (fun steps ->
      let lm = Lock_mgr.create () in
      List.for_all
        (fun step ->
          ignore (apply lm step);
          no_incompatible_pair lm)
        steps)

let prop_granted_on_release_really_hold =
  (* An owner promoted by someone's release must actually hold a lock
     afterwards — a phantom grant would let a transaction proceed
     without the lock protecting it. *)
  QCheck.Test.make ~name:"release promotes waiters into real holders"
    ~count:300 steps_arb (fun steps ->
      let lm = Lock_mgr.create () in
      List.for_all
        (fun step ->
          let promoted = apply lm step in
          List.for_all (fun o -> Lock_mgr.held_count lm ~owner:o > 0) promoted)
        steps)

let prop_full_release_drains =
  (* Releasing every owner (in any fixed order) must leave an empty
     table: every queued request was either granted along the way and
     then released, or discarded with its owner — nothing leaks. *)
  QCheck.Test.make ~name:"releasing every owner drains the table" ~count:300
    steps_arb (fun steps ->
      let lm = Lock_mgr.create () in
      List.iter (fun step -> ignore (apply lm step)) steps;
      List.iter (fun o -> ignore (Lock_mgr.release_all lm ~owner:o)) owners;
      Lock_mgr.live_locks lm = 0
      && List.for_all (fun o -> not (Lock_mgr.waiting lm ~owner:o)) owners
      && List.for_all (fun o -> Lock_mgr.held_count lm ~owner:o = 0) owners)

let suite =
  [
    test prop_no_incompatible_coholders;
    test prop_granted_on_release_really_hold;
    test prop_full_release_drains;
  ]
