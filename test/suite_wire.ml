(* Property suite for the binary wire codec: decode is the exact
   inverse of encode for every message variant, and a decoder fed
   mutated bytes either still yields a frame that re-encodes to the
   same bytes (the mutation hit redundancy) or raises
   [Invalid_argument] — it never crashes another way and never returns
   a silently wrong value. *)

module Wire = Untx_msg.Wire
module Op = Untx_msg.Op
module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id

open QCheck

(* --- generators ------------------------------------------------------ *)

(* Keys/values/table names exercise the codec's escaping: separators,
   escape characters, empties, binary bytes. *)
let gen_str =
  Gen.(
    oneof
      [
        small_string ~gen:printable;
        small_string ~gen:(char_range '\000' '\255');
        oneofl [ ""; "|"; "\\"; "|\\|"; "a|b"; "-"; "+"; "\n" ];
      ])

let gen_mode = Gen.oneofl [ Op.Own; Op.Committed; Op.Dirty ]

let gen_op =
  Gen.(
    gen_str >>= fun table ->
    gen_str >>= fun key ->
    gen_str >>= fun value ->
    small_nat >>= fun limit ->
    gen_mode >>= fun mode ->
    list_size (int_bound 5) gen_str >>= fun keys ->
    oneofl
      [
        Op.Insert { table; key; value };
        Op.Update { table; key; value };
        Op.Delete { table; key };
        Op.Read { table; key; mode };
        Op.Scan { table; from_key = key; limit; mode };
        Op.Probe { table; from_key = key; limit };
        Op.Commit_versions { table; keys };
        Op.Abort_versions { table; keys };
      ])

let gen_tc = Gen.map (fun i -> Tc_id.of_int (1 + i)) Gen.small_nat

let gen_lsn = Gen.map (fun i -> Lsn.of_int i) Gen.small_nat

let gen_request =
  Gen.(
    gen_tc >>= fun tc ->
    gen_lsn >>= fun lsn ->
    Gen.int_bound 7 >>= fun part ->
    gen_op >>= fun op -> return { Wire.tc; lsn; part; op })

let gen_result =
  Gen.(
    gen_str >>= fun s ->
    opt gen_str >>= fun v ->
    list_size (int_bound 4) (pair gen_str gen_str) >>= fun pairs ->
    list_size (int_bound 4) gen_str >>= fun keys ->
    oneofl
      [ Wire.Done; Wire.Value v; Wire.Pairs pairs; Wire.Next_keys keys;
        Wire.Failed s ])

let gen_reply =
  Gen.(
    gen_tc >>= fun tc ->
    gen_lsn >>= fun lsn ->
    gen_result >>= fun result ->
    opt gen_str >>= fun prior -> return { Wire.tc; lsn; result; prior })

let gen_control =
  Gen.(
    gen_tc >>= fun tc ->
    gen_lsn >>= fun a ->
    gen_lsn >>= fun b ->
    oneofl
      [
        Wire.End_of_stable_log { tc; eosl = a };
        Wire.Low_water_mark { tc; lwm = a };
        Wire.Watermarks { tc; eosl = a; lwm = b };
        Wire.Checkpoint { tc; new_rssp = a };
        Wire.Restart_begin { tc; stable_lsn = a };
        Wire.Restart_end { tc };
        Wire.Redo_fence_begin { tc };
        Wire.Redo_fence_end { tc };
      ])

let gen_control_msg =
  Gen.(
    small_nat >>= fun epoch ->
    small_nat >>= fun seq ->
    gen_control >>= fun ctl ->
    return { Wire.c_epoch = 1 + epoch; c_seq = 1 + seq; c_ctl = ctl })

let gen_control_reply_msg =
  Gen.(
    gen_tc >>= fun r_tc ->
    small_nat >>= fun epoch ->
    small_nat >>= fun seq ->
    oneofl [ Wire.Ack; Wire.Checkpoint_done { granted = true };
             Wire.Checkpoint_done { granted = false } ]
    >>= fun r ->
    return { Wire.r_tc; r_epoch = 1 + epoch; r_seq = 1 + seq; r_reply = r })

(* One arbitrary covering all four frame kinds, as (name, bytes) with
   the decoded-re-encoded check done against the right decoder. *)
type any_frame =
  | Freq of Wire.request
  | Frep of Wire.reply
  | Fctl of Wire.control_msg
  | Fcrp of Wire.control_reply_msg

let gen_any_frame =
  Gen.oneof
    [
      Gen.map (fun r -> Freq r) gen_request;
      Gen.map (fun r -> Frep r) gen_reply;
      Gen.map (fun m -> Fctl m) gen_control_msg;
      Gen.map (fun m -> Fcrp m) gen_control_reply_msg;
    ]

let encode_any = function
  | Freq r -> Wire.encode_request r
  | Frep r -> Wire.encode_reply r
  | Fctl m -> Wire.encode_control m
  | Fcrp m -> Wire.encode_control_reply m

let print_any f =
  let hex s =
    String.concat "" (List.map (Printf.sprintf "%02x") (List.init (String.length s) (fun i -> Char.code s.[i])))
  in
  hex (encode_any f)

(* --- round-trip properties ------------------------------------------- *)

let prop_request_roundtrip =
  Test.make ~name:"decode_request (encode_request r) = r" ~count:500
    (make ~print:print_any (Gen.map (fun r -> Freq r) gen_request))
    (function
      | Freq r -> Wire.decode_request (Wire.encode_request r) = r
      | _ -> assert false)

let prop_reply_roundtrip =
  Test.make ~name:"decode_reply (encode_reply r) = r" ~count:500
    (make ~print:print_any (Gen.map (fun r -> Frep r) gen_reply))
    (function
      | Frep r -> Wire.decode_reply (Wire.encode_reply r) = r
      | _ -> assert false)

let prop_control_roundtrip =
  Test.make ~name:"decode_control (encode_control m) = m" ~count:500
    (make ~print:print_any (Gen.map (fun m -> Fctl m) gen_control_msg))
    (function
      | Fctl m -> Wire.decode_control (Wire.encode_control m) = m
      | _ -> assert false)

let prop_control_reply_roundtrip =
  Test.make ~name:"decode_control_reply (encode_control_reply m) = m"
    ~count:500
    (make ~print:print_any (Gen.map (fun m -> Fcrp m) gen_control_reply_msg))
    (function
      | Fcrp m -> Wire.decode_control_reply (Wire.encode_control_reply m) = m
      | _ -> assert false)

let prop_frame_ok =
  Test.make ~name:"every encoded frame passes frame_ok" ~count:500
    (make ~print:print_any gen_any_frame) (fun f ->
      Wire.frame_ok (encode_any f))

(* --- mutation fuzz ---------------------------------------------------- *)

(* Apply a random byte-level mutation and check the decoder's total
   contract.  Each decoder is tried against the mutant; a decoder is
   well-behaved if it raises Invalid_argument, or returns a value whose
   re-encoding equals the mutant bytes (the mutation was absorbed by
   representational redundancy, so the value is faithful). *)
let mutate bytes (pos, change) =
  if String.length bytes = 0 then bytes
  else
    let b = Bytes.of_string bytes in
    let i = pos mod Bytes.length b in
    (match change mod 3 with
    | 0 ->
      (* flip bits *)
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 + (change mod 255))))
    | 1 -> Bytes.set b i '\255'
    | _ -> Bytes.set b i '\000');
    Bytes.unsafe_to_string b

let truncate_at bytes pos =
  if String.length bytes = 0 then bytes
  else String.sub bytes 0 (pos mod String.length bytes)

let well_behaved decode encode bytes =
  match decode bytes with
  | v -> String.equal (encode v) bytes
  | exception Invalid_argument _ -> true

let total frame =
  well_behaved Wire.decode_request Wire.encode_request frame
  && well_behaved Wire.decode_reply Wire.encode_reply frame
  && well_behaved Wire.decode_control Wire.encode_control frame
  && well_behaved Wire.decode_control_reply Wire.encode_control_reply frame
  &&
  (* frame_ok must itself be total on arbitrary bytes *)
  match Wire.frame_ok frame with true | false -> true

let gen_mutation = Gen.(pair small_nat small_nat)

let prop_mutated_frames =
  Test.make
    ~name:"decoders are total on byte-mutated frames" ~count:1000
    (make
       ~print:(fun (f, (pos, change)) ->
         Printf.sprintf "%s pos=%d change=%d" (print_any f) pos change)
       Gen.(pair gen_any_frame gen_mutation))
    (fun (f, m) -> total (mutate (encode_any f) m))

let prop_truncated_frames =
  Test.make ~name:"decoders are total on truncated frames" ~count:500
    (make
       ~print:(fun (f, pos) -> Printf.sprintf "%s cut=%d" (print_any f) pos)
       Gen.(pair gen_any_frame small_nat))
    (fun (f, pos) -> total (truncate_at (encode_any f) pos))

let prop_garbage =
  Test.make ~name:"decoders are total on arbitrary bytes" ~count:500
    (string_gen Gen.(char_range '\000' '\255'))
    (fun s -> total s)

(* --- trace-id header field -------------------------------------------- *)

let encode_any_tid tid = function
  | Freq r -> Wire.encode_request ~tid r
  | Frep r -> Wire.encode_reply ~tid r
  | Fctl m -> Wire.encode_control ~tid m
  | Fcrp m -> Wire.encode_control_reply ~tid m

let gen_tid = Gen.(oneof [ return 0; int_range 1 0xFFFFFFFF ])

let prop_tid_roundtrip =
  (* The trace id rides in the header without disturbing the payload:
     frame_tid reads back exactly what was stamped, and the payload
     decoder is oblivious to it. *)
  Test.make ~name:"frame_tid reads back the stamped trace id" ~count:500
    (make
       ~print:(fun (f, tid) -> Printf.sprintf "%s tid=%d" (print_any f) tid)
       Gen.(pair gen_any_frame gen_tid))
    (fun (f, tid) ->
      let bytes = encode_any_tid tid f in
      Wire.frame_ok bytes
      && Wire.frame_tid bytes = tid
      &&
      match f with
      | Freq r -> Wire.decode_request bytes = r
      | Frep r -> Wire.decode_reply bytes = r
      | Fctl m -> Wire.decode_control bytes = m
      | Fcrp m -> Wire.decode_control_reply bytes = m)

let prop_corrupted_tid_never_misattributes =
  (* The id sits inside the checksummed region: flip any single bit of
     its four bytes and the whole frame must fail validation, with
     frame_tid reporting the reserved untraced id — a corrupted frame
     can be dropped but never attributed to another operation's span. *)
  Test.make ~name:"corrupted trace id fails the checksum, never misattributes"
    ~count:500
    (make
       ~print:(fun (f, (tid, byte, bit)) ->
         Printf.sprintf "%s tid=%d byte=%d bit=%d" (print_any f) tid byte bit)
       Gen.(
         pair gen_any_frame
           (triple (int_range 1 0xFFFFFFFF) (int_bound 3) (int_bound 7))))
    (fun (f, (tid, byte, bit)) ->
      let bytes = encode_any_tid tid f in
      let b = Bytes.of_string bytes in
      let i = 1 + byte in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      let mutant = Bytes.unsafe_to_string b in
      (not (Wire.frame_ok mutant))
      && Wire.frame_tid mutant = 0
      && total mutant)

(* Cross-kind confusion: a frame of one kind must never decode as
   another (the kind byte is part of the checksummed header). *)
let prop_kind_separation =
  Test.make ~name:"frame kinds do not cross-decode" ~count:300
    (make ~print:print_any gen_any_frame) (fun f ->
      let bytes = encode_any f in
      let rejects decode =
        match decode bytes with
        | _ -> false
        | exception Invalid_argument _ -> true
      in
      match f with
      | Freq _ ->
        rejects Wire.decode_reply && rejects Wire.decode_control
        && rejects Wire.decode_control_reply
      | Frep _ ->
        rejects Wire.decode_request && rejects Wire.decode_control
        && rejects Wire.decode_control_reply
      | Fctl _ ->
        rejects Wire.decode_request && rejects Wire.decode_reply
        && rejects Wire.decode_control_reply
      | Fcrp _ ->
        rejects Wire.decode_request && rejects Wire.decode_reply
        && rejects Wire.decode_control)

let suite =
  List.map Helpers.qcheck_test
    [
      prop_request_roundtrip;
      prop_reply_roundtrip;
      prop_control_roundtrip;
      prop_control_reply_roundtrip;
      prop_frame_ok;
      prop_mutated_frames;
      prop_truncated_frames;
      prop_garbage;
      prop_tid_roundtrip;
      prop_corrupted_tid_never_misattributes;
      prop_kind_separation;
    ]
