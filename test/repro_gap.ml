(* Repro: detached standby falls behind rssp via checkpoint; primary
   dies; fail_over promotes the laggard. Records in [applied+1, rssp)
   should be re-driven but on_dc_restart starts at max(rssp, from). *)

module Deploy = Untx_cloud.Deploy
module Repl = Untx_repl.Repl
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Lsn = Untx_util.Lsn

let ok = function
  | `Ok v -> v
  | `Blocked -> failwith "blocked"
  | `Fail m -> failwith m

let commit_one tc ~key ~value =
  let txn = Tc.begin_txn tc in
  (match Tc.update tc txn ~table:"t" ~key ~value with
  | `Ok () -> ()
  | `Blocked -> failwith "blocked"
  | `Fail _ -> ok (Tc.insert tc txn ~table:"t" ~key ~value));
  ok (Tc.commit tc txn)

let fill tc ?(prefix = "k") ?(value = "v") n =
  List.iter
    (fun i -> commit_one tc ~key:(Printf.sprintf "%s%03d" prefix i) ~value)
    (List.init n Fun.id)

let () =
  let d = Deploy.create () in
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  ignore (Deploy.add_dc d ~name:"dc0" Dc.default_config);
  Deploy.add_partitioned_table d ~replicas:1 ~name:"t" ~versioned:false
    ~dcs:[ "dc0" ] ();
  fill tc 10;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
  let frozen = Repl.Standby.applied (Deploy.standby d sbn) ~tc:(Tc.id tc) in
  Repl.Manager.detach m ~name:sbn;
  fill tc ~prefix:"gap" 40;
  Deploy.quiesce d;
  Dc.flush_all (Deploy.dc d "dc0");
  let rec grant tries =
    if Tc.checkpoint tc then ()
    else if tries > 0 then begin
      Deploy.quiesce d;
      Dc.flush_all (Deploy.dc d "dc0");
      grant (tries - 1)
    end
  in
  grant 4;
  Printf.printf "rssp=%s frozen=%s rssp_past_replica=%b\n%!"
    (Lsn.to_string (Tc.rssp tc))
    (Lsn.to_string frozen)
    Lsn.(Tc.rssp tc > Lsn.next frozen);
  (* primary dies; promote the (only, lagging) standby *)
  Deploy.fail_over d ~dc:"dc0";
  (* every acked commit must survive the promotion *)
  let missing = ref 0 in
  List.iter
    (fun i ->
      let key = Printf.sprintf "gap%03d" i in
      match Tc.read_committed tc ~table:"t" ~key with
      | Some "v" -> ()
      | other ->
        incr missing;
        if !missing <= 5 then
          Printf.printf "MISSING %s -> %s\n%!" key
            (match other with Some v -> v | None -> "(none)"))
    (List.init 40 Fun.id);
  Printf.printf "missing=%d of 40 gap commits\n%!" !missing;
  if !missing > 0 then exit 1
