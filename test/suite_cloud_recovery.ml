(* Multi-TC crash-point sweep (Section 6.1): several updater TCs share
   one DC; one TC crashes at a random point; the other's data must be
   byte-identical afterwards (record-granular reset on shared pages),
   the crashed TC's committed prefix must survive, and its losers must
   vanish.  DC crashes must preserve every TC's committed prefix. *)

module Deploy = Untx_cloud.Deploy
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Rng = Untx_util.Rng

let table = "shared"

let ok = function
  | `Ok v -> v
  | `Blocked -> Alcotest.fail "unexpected `Blocked"
  | `Fail m -> Alcotest.fail ("unexpected `Fail: " ^ m)

let mk_deploy ~reset_mode ~n_tcs =
  let d = Deploy.create () in
  ignore
    (Deploy.add_dc d ~name:"dc1"
       { Dc.default_config with tc_reset_mode = reset_mode; debug_checks = true });
  Deploy.create_table d ~dc:"dc1" ~name:table ~versioned:true;
  let tcs =
    List.init n_tcs (fun i ->
        let tc =
          Deploy.add_tc d
            ~name:(Printf.sprintf "tc%d" (i + 1))
            (Tc.default_config (Tc_id.of_int (i + 1)))
        in
        Tc.map_table tc ~table ~dc:"dc1" ~versioned:true;
        tc)
  in
  (d, Array.of_list tcs)

(* Each TC owns the key prefix of its index: disjoint write sets, but
   interleaved on shared pages. *)
let key owner i = Printf.sprintf "%c%03d" (Char.chr (Char.code 'a' + owner)) i

(* One committed transaction by TC [o], mirrored into its oracle. *)
let run_txn tcs oracles rng o =
  let tc = tcs.(o) in
  let oracle = oracles.(o) in
  let txn = Tc.begin_txn tc in
  let staged = Hashtbl.create 4 in
  for _ = 1 to 1 + Rng.int rng 4 do
    let k = key o (Rng.int rng 60) in
    let v = Printf.sprintf "v%d" (Rng.int rng 100_000) in
    let exists =
      Hashtbl.mem staged k
      || (Hashtbl.mem oracle k && Hashtbl.find oracle k <> None)
    in
    let exists =
      if Hashtbl.mem staged k then Hashtbl.find staged k <> None else exists
    in
    if exists then (
      ok (Tc.update tc txn ~table ~key:k ~value:v);
      Hashtbl.replace staged k (Some v))
    else (
      ok (Tc.insert tc txn ~table ~key:k ~value:v);
      Hashtbl.replace staged k (Some v))
  done;
  match Tc.commit tc txn with
  | `Ok () -> Hashtbl.iter (fun k v -> Hashtbl.replace oracle k v) staged
  | `Blocked | `Fail _ -> Alcotest.fail "commit failed in disjoint workload"

let check_oracle ?(seed = 0) tcs oracles reader_ix o =
  let reader = tcs.(reader_ix) in
  Hashtbl.iter
    (fun k v ->
      let got = Tc.read_committed reader ~table ~key:k in
      if got <> v then
        Alcotest.failf "seed %d owner %d key %s: want %s got %s" seed o k
          (Option.value ~default:"NONE" v)
          (Option.value ~default:"NONE" got))
    oracles.(o)

let sweep ~reset_mode ~crash_dc_instead ~seeds () =
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed in
      let n_tcs = 2 + Rng.int rng 2 in
      let d, tcs = mk_deploy ~reset_mode ~n_tcs in
      let oracles = Array.init n_tcs (fun _ -> Hashtbl.create 64) in
      for _ = 1 to 20 + Rng.int rng 40 do
        run_txn tcs oracles rng (Rng.int rng n_tcs)
      done;
      let victim = Rng.int rng n_tcs in
      (* the victim leaves uncommitted work behind *)
      if Rng.chance rng 0.7 then begin
        let txn = Tc.begin_txn tcs.(victim) in
        for _ = 1 to 1 + Rng.int rng 3 do
          ignore
            (Tc.update tcs.(victim) txn ~table
               ~key:(key victim (Rng.int rng 60))
               ~value:"LOSER")
        done;
        Tc.quiesce tcs.(victim)
      end;
      if crash_dc_instead then Deploy.crash_dc d "dc1"
      else Deploy.crash_tc d (Printf.sprintf "tc%d" (victim + 1));
      (match Dc.check (Deploy.dc d "dc1") with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d ill-formed: %s" seed m);
      (* every TC's committed prefix intact, read via a different TC *)
      for o = 0 to n_tcs - 1 do
        check_oracle ~seed tcs oracles ((o + 1) mod n_tcs) o
      done;
      (* the deployment still works: every TC commits one more txn *)
      for o = 0 to n_tcs - 1 do
        run_txn tcs oracles rng o
      done;
      for o = 0 to n_tcs - 1 do
        check_oracle ~seed tcs oracles ((o + 1) mod n_tcs) o
      done)
    (List.init seeds (fun i -> 4000 + (i * 53)))

let test_record_reset_metric () =
  (* interleaved single-key commits per TC force genuinely shared pages,
     so a TC crash exercises the record-granular reset *)
  let d, tcs = mk_deploy ~reset_mode:Dc.Selective ~n_tcs:2 in
  for i = 0 to 40 do
    List.iteri
      (fun o tc ->
        let txn = Tc.begin_txn tc in
        ok (Tc.insert tc txn ~table ~key:(key o i) ~value:"committed");
        ok (Tc.commit tc txn))
      (Array.to_list tcs)
  done;
  let txn = Tc.begin_txn tcs.(0) in
  ok (Tc.update tcs.(0) txn ~table ~key:(key 0 7) ~value:"lost");
  Tc.quiesce tcs.(0);
  let dc = Deploy.dc d "dc1" in
  let resets_before = Dc.records_reset dc in
  Deploy.crash_tc d "tc1";
  Alcotest.(check bool) "record-granular reset used" true
    (Dc.records_reset dc > resets_before);
  Alcotest.(check (option string))
    "tc2 record untouched" (Some "committed")
    (Tc.read_committed tcs.(1) ~table ~key:(key 1 7));
  Alcotest.(check (option string))
    "tc1 loser reverted" (Some "committed")
    (Tc.read_committed tcs.(1) ~table ~key:(key 0 7))

let suite =
  [
    Alcotest.test_case "multi-TC sweep: TC crash, selective" `Slow
      (sweep ~reset_mode:Dc.Selective ~crash_dc_instead:false ~seeds:10);
    Alcotest.test_case "multi-TC sweep: TC crash, draconian" `Slow
      (sweep ~reset_mode:Dc.Complete ~crash_dc_instead:false ~seeds:8);
    Alcotest.test_case "multi-TC sweep: DC crash" `Slow
      (sweep ~reset_mode:Dc.Selective ~crash_dc_instead:true ~seeds:10);
    Alcotest.test_case "record-granular reset" `Quick test_record_reset_metric;
  ]
