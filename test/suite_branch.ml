(* Copy-on-write branches: fork-at-LSN semantics, lazy materialization,
   combined-LSN point-in-time reads, crash recovery scoped to the
   branch, fork-point pinning against parent truncation, and the typed
   deletion rules — the unit half of the @branch gate. *)

open Helpers
module Deploy = Untx_cloud.Deploy
module Branch = Untx_branch.Branch
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Layer = Untx_layer.Layer
module Repl = Untx_repl.Repl
module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Instrument = Untx_util.Instrument

let layered_deploy ?counters ~parts () =
  let d = Deploy.create ?counters ~layers:true () in
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  let dcs = List.init parts (Printf.sprintf "dc%d") in
  List.iter (fun n -> ignore (Deploy.add_dc d ~name:n Dc.default_config)) dcs;
  Deploy.add_partitioned_table d ~replicas:0 ~name:"t" ~versioned:false ~dcs ();
  (d, tc)

let commit_one tc ~key ~value =
  let txn = Tc.begin_txn tc in
  (match Tc.update tc txn ~table:"t" ~key ~value with
  | `Ok () -> ()
  | `Blocked -> Alcotest.fail "blocked"
  | `Fail _ -> ok (Tc.insert tc txn ~table:"t" ~key ~value));
  ok (Tc.commit tc txn)

let fill tc ?(prefix = "k") ?(value = "v") n =
  List.iter
    (fun i -> commit_one tc ~key:(Printf.sprintf "%s%03d" prefix i) ~value)
    (List.init n Fun.id)

let stamp d tc =
  Deploy.quiesce d;
  Tc.force_log tc;
  Tc.stable_lsn tc

(* One committed write through the branch's CoW dispatch path. *)
let br_commit br ~key ~value =
  let txn = Branch.begin_txn br in
  (match Branch.update br txn ~table:"t" ~key ~value with
  | `Ok () -> ()
  | `Blocked -> Alcotest.fail "branch write blocked"
  | `Fail _ -> ok (Branch.insert br txn ~table:"t" ~key ~value));
  ok (Branch.commit br txn)

let br_delete br ~key =
  let txn = Branch.begin_txn br in
  ok (Branch.delete br txn ~table:"t" ~key);
  ok (Branch.commit br txn)

let br_read br ~key =
  let txn = Branch.begin_txn br in
  let v = ok (Branch.read br txn ~table:"t" ~key) in
  ok (Branch.commit br txn);
  v

let test_fork_and_divergence () =
  let counters = Instrument.create () in
  let d, tc = layered_deploy ~counters ~parts:2 () in
  fill tc ~value:"base" 20;
  let fork = stamp d tc in
  let br = Deploy.create_branch d ~from_lsn:fork ~name:"b1" in
  (* the fork copied nothing: materialization is strictly lazy *)
  Alcotest.(check int) "no records copied at fork" 0
    (Branch.materialized_count br);
  Alcotest.(check int) "fork counted" 1 (Instrument.get counters "branch.creates");
  (* first touch faults the base state in from the parent's layers *)
  Alcotest.(check (option string)) "branch sees pre-fork state" (Some "base")
    (br_read br ~key:"k000");
  Alcotest.(check bool) "materialization happened" true
    (Instrument.get counters "branch.materializations" > 0);
  (* divergence: branch and parent write the same and different keys *)
  br_commit br ~key:"k000" ~value:"branch";
  commit_one tc ~key:"k001" ~value:"parent";
  Alcotest.(check (option string)) "branch write lands" (Some "branch")
    (br_read br ~key:"k000");
  Alcotest.(check (option string)) "post-fork parent write is invisible"
    (Some "base") (br_read br ~key:"k001");
  Alcotest.(check (option string)) "parent never sees branch writes"
    (Some "base")
    (Tc.read_committed tc ~table:"t" ~key:"k000");
  Alcotest.(check (option string)) "parent write lands on the parent"
    (Some "parent")
    (Tc.read_committed tc ~table:"t" ~key:"k001");
  (* a key born on the branch exists nowhere on the parent *)
  let txn = Branch.begin_txn br in
  ok (Branch.insert br txn ~table:"t" ~key:"only-branch" ~value:"x");
  ok (Branch.commit br txn);
  Alcotest.(check (option string)) "branch-born key stays on the branch" None
    (Tc.read_committed tc ~table:"t" ~key:"only-branch")

let test_read_as_of_combined_lsn () =
  let d, tc = layered_deploy ~parts:1 () in
  commit_one tc ~key:"city" ~value:"rome";
  let at_rome = stamp d tc in
  commit_one tc ~key:"city" ~value:"oslo";
  let fork = stamp d tc in
  let br = Deploy.create_branch d ~from_lsn:fork ~name:"b1" in
  br_commit br ~key:"city" ~value:"bern";
  Branch.quiesce br;
  let durable = Branch.durable br in
  Alcotest.(check bool) "durable above the fork" true Lsn.(fork < durable);
  let rd at = Branch.read_as_of br ~table:"t" ~key:"city" ~at in
  Alcotest.(check (option string)) "at zero" None (rd Lsn.zero);
  Alcotest.(check (option string)) "below fork: parent history" (Some "rome")
    (rd at_rome);
  Alcotest.(check (option string)) "at fork: parent state" (Some "oslo")
    (rd fork);
  Alcotest.(check (option string)) "above fork: branch tier" (Some "bern")
    (rd durable);
  Alcotest.check_raises "beyond branch durable refused, typed"
    (Branch.Out_of_range { wanted = Lsn.next durable; durable })
    (fun () -> ignore (rd (Lsn.next durable)))

let test_unwritten_falls_through_gone_does_not () =
  let d, tc = layered_deploy ~parts:1 () in
  commit_one tc ~key:"a" ~value:"base";
  let fork = stamp d tc in
  let br = Deploy.create_branch d ~from_lsn:fork ~name:"b1" in
  (* write an unrelated key so the branch tier has history above fork *)
  br_commit br ~key:"z" ~value:"zz";
  Branch.quiesce br;
  let durable = Branch.durable br in
  (* [a] is `Unwritten in the branch tier: the parent-at-fork answers *)
  Alcotest.(check (option string)) "`Unwritten falls through" (Some "base")
    (Branch.read_as_of br ~table:"t" ~key:"a" ~at:durable);
  (* delete [a] on the branch: now `Gone — the parent must NOT answer *)
  br_delete br ~key:"a";
  Branch.quiesce br;
  let durable = Branch.durable br in
  Alcotest.(check (option string)) "`Gone does not resurrect" None
    (Branch.read_as_of br ~table:"t" ~key:"a" ~at:durable);
  Alcotest.(check bool) "lookup_at reports `Gone" true
    (Branch.lookup_at br ~table:"t" ~key:"a" ~at:durable = `Gone);
  (* and the parent still has it *)
  Alcotest.(check (option string)) "parent untouched" (Some "base")
    (Tc.read_committed tc ~table:"t" ~key:"a")

let test_scan_materializes_table () =
  let counters = Instrument.create () in
  let d, tc = layered_deploy ~counters ~parts:2 () in
  fill tc ~value:"base" 8;
  let fork = stamp d tc in
  let br = Deploy.create_branch d ~from_lsn:fork ~name:"b1" in
  br_commit br ~key:"k003" ~value:"branch";
  br_delete br ~key:"k005";
  let txn = Branch.begin_txn br in
  let rows = ok (Branch.scan br txn ~table:"t" ~from_key:"" ~limit:100) in
  ok (Branch.commit br txn);
  let expected =
    List.init 8 (fun i -> Printf.sprintf "k%03d" i)
    |> List.filter (fun k -> k <> "k005")
    |> List.map (fun k -> (k, if k = "k003" then "branch" else "base"))
  in
  Alcotest.(check (list (pair string string))) "scan merges fork + branch"
    expected
    (List.sort compare rows);
  (* rows_at at the branch head agrees with the scan *)
  Branch.quiesce br;
  Alcotest.(check (list (pair string string))) "rows_at agrees" expected
    (Branch.rows_at br ~table:"t" ~at:(Branch.durable br))

let test_branch_dc_crash_recovery () =
  let d, tc = layered_deploy ~parts:1 () in
  fill tc ~value:"base" 10;
  let fork = stamp d tc in
  let br = Deploy.create_branch d ~from_lsn:fork ~name:"b1" in
  br_commit br ~key:"k002" ~value:"branch";
  br_commit br ~key:"fresh" ~value:"new";
  (* the branch DC dies and recovers; the parent is never touched *)
  Deploy.crash_branch_dc d "b1";
  Alcotest.(check (option string)) "branch write survives" (Some "branch")
    (br_read br ~key:"k002");
  Alcotest.(check (option string)) "branch-born key survives" (Some "new")
    (br_read br ~key:"fresh");
  Alcotest.(check (option string)) "materialized base survives" (Some "base")
    (br_read br ~key:"k007");
  Alcotest.(check (option string)) "parent still answers" (Some "base")
    (Tc.read_committed tc ~table:"t" ~key:"k002");
  (match Dc.check (Branch.dc br) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("branch DC ill-formed: " ^ e));
  (match Dc.check (Deploy.dc d "dc0") with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("parent DC ill-formed: " ^ e))

let test_pin_protects_fork_from_truncation () =
  let d, tc = layered_deploy ~parts:1 () in
  fill tc ~value:"base" 10;
  let fork = stamp d tc in
  let br = Deploy.create_branch d ~from_lsn:fork ~name:"b1" in
  let store =
    Option.get (Repl.Manager.layer_store (Deploy.manager d ~tc:"tc1"))
  in
  Alcotest.(check int) "fork pinned" 1 (Layer.pin_count store);
  fill tc ~prefix:"late" ~value:"l" 10;
  Deploy.quiesce d;
  Repl.Manager.compact_layers (Deploy.manager d ~tc:"tc1");
  let head = Tc.stable_lsn tc in
  (* truncation aimed past the fork is clamped at the live branch's pin *)
  ignore (Deploy.truncate_history d ~below:(Lsn.next head));
  Alcotest.(check int) "cut clamped at the fork point" (Lsn.to_int fork)
    (Lsn.to_int (Layer.history_from store));
  Alcotest.(check (option string)) "branch still resolves its fork state"
    (Some "base") (br_read br ~key:"k004");
  Alcotest.(check (option string)) "read_as_of at fork still answers"
    (Some "base")
    (Branch.read_as_of br ~table:"t" ~key:"k004" ~at:fork);
  (* deleting the branch releases the pin; truncation then passes *)
  Deploy.delete_branch d "b1";
  Alcotest.(check int) "pin released" 0 (Layer.pin_count store);
  ignore (Deploy.truncate_history d ~below:(Lsn.next head));
  Alcotest.(check bool) "cut passes the old fork" true
    Lsn.(fork < Layer.history_from store);
  Alcotest.check_raises "history below the cut now refused, typed"
    (Layer.History_truncated
       { wanted = fork; history_from = Layer.history_from store })
    (fun () -> ignore (Deploy.read_as_of d ~table:"t" ~key:"k004" ~at:fork))

let test_delete_rules_and_nesting () =
  let d, tc = layered_deploy ~parts:1 () in
  fill tc ~value:"base" 6;
  let fork = stamp d tc in
  let b1 = Deploy.create_branch d ~from_lsn:fork ~name:"b1" in
  br_commit b1 ~key:"k000" ~value:"b1v";
  Branch.quiesce b1;
  (* fork the branch: the grandchild shares b1's combined history *)
  let d1 = Branch.durable b1 in
  let b2 = Deploy.create_branch d ~from:"b1" ~from_lsn:d1 ~name:"b2" in
  Alcotest.(check (list string)) "children tracked" [ "b2" ]
    (Deploy.branch_children d "b1");
  Alcotest.(check string) "root TC tracked" "tc1" (Deploy.branch_root_tc d "b2");
  Alcotest.(check (option string)) "grandchild sees the branch write"
    (Some "b1v") (br_read b2 ~key:"k000");
  Alcotest.(check (option string)) "grandchild sees the root base"
    (Some "base") (br_read b2 ~key:"k003");
  br_commit b2 ~key:"k000" ~value:"b2v";
  Alcotest.(check (option string)) "grandchild diverges" (Some "b2v")
    (br_read b2 ~key:"k000");
  Alcotest.(check (option string)) "middle branch unaffected" (Some "b1v")
    (br_read b1 ~key:"k000");
  (* deleting a parent with live children is the typed refusal *)
  Alcotest.check_raises "delete refused while children live"
    (Deploy.Branch_has_children { parent = "b1"; children = [ "b2" ] })
    (fun () -> Deploy.delete_branch d "b1");
  Deploy.delete_branch d "b2";
  Deploy.delete_branch d "b1";
  Alcotest.(check (list string)) "all gone" [] (Deploy.branch_names d);
  Alcotest.check_raises "operations on a deleted branch refuse"
    (Invalid_argument "Branch: b1 is deleted") (fun () ->
      ignore (br_read b1 ~key:"k000"))

let test_fork_out_of_range () =
  let d, tc = layered_deploy ~parts:1 () in
  fill tc ~value:"base" 3;
  let head = stamp d tc in
  Alcotest.check_raises "fork beyond the watermark refused, typed"
    (Deploy.Out_of_range { wanted = Lsn.next head; durable = head })
    (fun () ->
      ignore (Deploy.create_branch d ~from_lsn:(Lsn.next head) ~name:"bx"));
  Alcotest.(check (list string)) "nothing half-created" []
    (Deploy.branch_names d)

let suite =
  [
    Alcotest.test_case "fork and divergence" `Quick test_fork_and_divergence;
    Alcotest.test_case "read_as_of in the combined LSN space" `Quick
      test_read_as_of_combined_lsn;
    Alcotest.test_case "`Unwritten falls through, `Gone does not" `Quick
      test_unwritten_falls_through_gone_does_not;
    Alcotest.test_case "scan materializes the table" `Quick
      test_scan_materializes_table;
    Alcotest.test_case "branch DC crash recovery" `Quick
      test_branch_dc_crash_recovery;
    Alcotest.test_case "fork pin blocks parent truncation" `Quick
      test_pin_protects_fork_from_truncation;
    Alcotest.test_case "deletion rules and nesting" `Quick
      test_delete_rules_and_nesting;
    Alcotest.test_case "fork out of range" `Quick test_fork_out_of_range;
  ]
