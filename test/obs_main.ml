let () =
  Alcotest.run "untx-obs"
    [
      ("obs", Suite_obs.suite);
      ("props-ablsn", Props_ablsn.suite);
      ("props-lock", Props_lock.suite);
    ]
