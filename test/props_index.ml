(* Index-vs-primary parity under random interleavings.

   A generated program is a list of steps — multi-op transactions over a
   small keyspace (so inserts collide and updates/deletes hit real rows)
   interleaved with DC and TC kills.  Executing it against an indexed
   deployment while a sequential oracle shadows every committed
   transaction, the property demands, after recovery and quiesce:

   - merged primary fragments = the oracle's rows (oracle equality);
   - every entry table = the image of the live primary rows under its
     extractor (index-vs-primary parity, [Audit.check_index]);
   - the full deployment audit stays silent.

   Any refused operation aborts its transaction (the
   Fail-means-caller-aborts contract), so invalid generated ops —
   duplicate inserts, updates of absent keys — exercise the rollback
   path rather than derailing the oracle. *)

module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Deploy = Untx_cloud.Deploy
module Index = Untx_index.Index
module Audit = Untx_audit.Audit

let test prop = Helpers.qcheck_test prop

let table = "items"

let extract_cat ~key:_ ~value =
  match String.index_opt value ':' with
  | Some i -> [ String.sub value 0 i ]
  | None -> []

type pop = Ins of int * int | Upd of int * int | Del of int

type step = Txn of pop list | Crash_dc of int | Crash_tc

let pp_pop = function
  | Ins (k, c) -> Printf.sprintf "Ins(k%d,c%d)" k c
  | Upd (k, c) -> Printf.sprintf "Upd(k%d,c%d)" k c
  | Del k -> Printf.sprintf "Del(k%d)" k

let pp_step = function
  | Txn ops -> "Txn[" ^ String.concat ";" (List.map pp_pop ops) ^ "]"
  | Crash_dc p -> Printf.sprintf "Crash_dc(%d)" p
  | Crash_tc -> "Crash_tc"

let gen_step =
  QCheck.Gen.(
    frequency
      [
        ( 8,
          map
            (fun ops -> Txn ops)
            (list_size (int_range 1 3)
               (oneof
                  [
                    map2 (fun k c -> Ins (k, c)) (int_bound 11) (int_bound 3);
                    map2 (fun k c -> Upd (k, c)) (int_bound 11) (int_bound 3);
                    map (fun k -> Del k) (int_bound 11);
                  ])) );
        (1, map (fun p -> Crash_dc p) (int_bound 1));
        (1, return Crash_tc);
      ])

let steps_arb =
  QCheck.make
    ~print:(fun steps -> String.concat " " (List.map pp_step steps))
    QCheck.Gen.(list_size (int_range 1 25) gen_step)

let key_of k = Printf.sprintf "k%02d" k

let value_of k c = Printf.sprintf "c%d:v-%02d-%d" c k c

let make_deploy ~versioned () =
  let idx = Index.create () in
  let d = Deploy.create ~seed:3 () in
  ignore
    (Deploy.add_tc d ~name:"tc1"
       {
         (Tc.default_config (Tc_id.of_int 1)) with
         lwm_every = 4;
         debug_checks = true;
       });
  let dc_names = [ "dc0"; "dc1" ] in
  List.iter
    (fun name ->
      ignore
        (Deploy.add_dc d ~name
           {
             Dc.page_capacity = 160;
             cache_pages = 6;
             sync_policy = Dc.Full_ablsn;
             tc_reset_mode = Dc.Selective;
             debug_checks = true;
           }))
    dc_names;
  Deploy.add_indexed_table d ~idx ~name:table ~versioned ~dcs:dc_names
    ~indexes:[ ("by_cat", extract_cat) ]
    ();
  (d, idx)

exception Refused

let run_steps ~versioned steps =
  let d, idx = make_deploy ~versioned () in
  let tc = Deploy.tc d "tc1" in
  let oracle : (string, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (function
      | Crash_dc p -> Deploy.crash_dc d (Printf.sprintf "dc%d" p)
      | Crash_tc -> Deploy.crash_tc d "tc1"
      | Txn ops ->
        let txn = Tc.begin_txn tc in
        let staged = Hashtbl.create 4 in
        let apply key v = function
          | `Ok () -> Hashtbl.replace staged key v
          | `Blocked | `Fail _ -> raise Refused
        in
        (try
           List.iter
             (fun op ->
               match op with
               | Ins (k, c) ->
                 let key = key_of k in
                 apply key
                   (Some (value_of k c))
                   (Index.insert idx tc txn ~table ~key ~value:(value_of k c))
               | Upd (k, c) ->
                 let key = key_of k in
                 apply key
                   (Some (value_of k c))
                   (Index.update idx tc txn ~table ~key ~value:(value_of k c))
               | Del k ->
                 let key = key_of k in
                 apply key None (Index.delete idx tc txn ~table ~key))
             ops;
           match Tc.commit tc txn with
           | `Ok () ->
             Hashtbl.iter
               (fun key v ->
                 match v with
                 | Some v -> Hashtbl.replace oracle key v
                 | None -> Hashtbl.remove oracle key)
               staged
           | `Blocked | `Fail _ -> ()
         with Refused ->
           if Tc.is_active txn then
             Tc.abort tc txn ~reason:"props_index: refused op"))
    steps;
  Deploy.quiesce d;
  let expected =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle []
    |> List.sort compare
  in
  let report = Audit.run_deploy d ~tc:"tc1" ~table ~expected in
  let index_violations = Audit.check_index d ~idx ~table in
  match report.Audit.violations @ index_violations with
  | [] -> true
  | vs ->
    QCheck.Test.fail_reportf "parity violations:@.%a"
      (Format.pp_print_list Format.pp_print_string)
      vs

let prop_parity_versioned =
  QCheck.Test.make
    ~name:"random interleavings keep index parity (versioned)" ~count:60
    steps_arb
    (run_steps ~versioned:true)

let prop_parity_unversioned =
  QCheck.Test.make
    ~name:"random interleavings keep index parity (unversioned)" ~count:60
    steps_arb
    (run_steps ~versioned:false)

let suite = [ test prop_parity_versioned; test prop_parity_unversioned ]
