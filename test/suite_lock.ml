(* Lock manager: modes, queues, upgrades, deadlock detection. *)

module Lock_mgr = Untx_tc.Lock_mgr

let rec_ k = Lock_mgr.Record { table = "t"; key = k }

let test_shared_compatible () =
  let l = Lock_mgr.create () in
  Alcotest.(check bool) "s1" true (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.S = `Granted);
  Alcotest.(check bool) "s2" true (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.S = `Granted);
  Alcotest.(check int) "two holders" 2 (Lock_mgr.live_locks l)

let test_exclusive_conflicts () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.X);
  Alcotest.(check bool) "x blocks s" true
    (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.S = `Blocked);
  Alcotest.(check bool) "x blocks x" true
    (Lock_mgr.acquire l ~owner:3 (rec_ "k") Lock_mgr.X = `Blocked);
  Alcotest.(check bool) "waiting" true (Lock_mgr.waiting l ~owner:2)

let test_reentrant () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.X);
  Alcotest.(check bool) "x again" true
    (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.X = `Granted);
  Alcotest.(check bool) "s under x" true
    (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.S = `Granted);
  Alcotest.(check bool) "holds covers" true
    (Lock_mgr.holds l ~owner:1 (rec_ "k") Lock_mgr.S)

let test_upgrade () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.S);
  Alcotest.(check bool) "sole holder upgrades" true
    (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.X = `Granted);
  Alcotest.(check bool) "now exclusive" true
    (Lock_mgr.holds l ~owner:1 (rec_ "k") Lock_mgr.X);
  (* a second shared holder prevents upgrade *)
  let l2 = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l2 ~owner:1 (rec_ "k") Lock_mgr.S);
  ignore (Lock_mgr.acquire l2 ~owner:2 (rec_ "k") Lock_mgr.S);
  Alcotest.(check bool) "upgrade blocked" true
    (Lock_mgr.acquire l2 ~owner:1 (rec_ "k") Lock_mgr.X = `Blocked)

let test_release_grants_waiters () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.S);
  ignore (Lock_mgr.acquire l ~owner:3 (rec_ "k") Lock_mgr.S);
  let granted = Lock_mgr.release_all l ~owner:1 in
  Alcotest.(check (list int)) "both shared waiters granted" [ 2; 3 ] granted;
  Alcotest.(check bool) "holder 2" true
    (Lock_mgr.holds l ~owner:2 (rec_ "k") Lock_mgr.S);
  Alcotest.(check bool) "holder 3" true
    (Lock_mgr.holds l ~owner:3 (rec_ "k") Lock_mgr.S)

let test_fifo_fairness () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.S);
  (* X waiter queues *)
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.X);
  (* a later S request must not starve the X waiter *)
  Alcotest.(check bool) "late S queues behind X" true
    (Lock_mgr.acquire l ~owner:3 (rec_ "k") Lock_mgr.S = `Blocked);
  let granted = Lock_mgr.release_all l ~owner:1 in
  Alcotest.(check (list int)) "x granted first" [ 2 ] granted

let test_cancel_waits () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.X);
  Lock_mgr.cancel_waits l ~owner:2;
  Alcotest.(check bool) "no longer waiting" false (Lock_mgr.waiting l ~owner:2);
  let granted = Lock_mgr.release_all l ~owner:1 in
  Alcotest.(check (list int)) "nothing granted" [] granted

let test_deadlock_detection () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "a") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "b") Lock_mgr.X);
  Alcotest.(check (option int)) "no cycle yet" None (Lock_mgr.find_deadlock l);
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "b") Lock_mgr.X);
  Alcotest.(check (option int)) "still no cycle" None (Lock_mgr.find_deadlock l);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "a") Lock_mgr.X);
  (match Lock_mgr.find_deadlock l with
  | Some victim ->
    Alcotest.(check int) "youngest is victim" 2 victim
  | None -> Alcotest.fail "cycle not found")

let test_deadlock_three_way () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "a") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "b") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:3 (rec_ "c") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "b") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "c") Lock_mgr.X);
  ignore (Lock_mgr.acquire l ~owner:3 (rec_ "a") Lock_mgr.X);
  (match Lock_mgr.find_deadlock l with
  | Some v -> Alcotest.(check bool) "victim in cycle" true (v >= 1 && v <= 3)
  | None -> Alcotest.fail "three-way cycle not found");
  (* breaking the cycle clears detection *)
  ignore (Lock_mgr.release_all l ~owner:3);
  Alcotest.(check (option int)) "cycle broken" None (Lock_mgr.find_deadlock l)

(* Regression: granting S must not drop a previously queued X upgrade.
   The old waiter bookkeeping filtered *every* wait of the granted owner,
   so the sequence "queue X upgrade, then re-request S" silently erased
   the upgrade and the owner slept forever once its S was released. *)
let test_upgrade_survives_s_grant () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.S);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.S);
  (* owner 2 queues an upgrade behind owner 1's S *)
  Alcotest.(check bool) "upgrade queues" true
    (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.X = `Blocked);
  (* re-requesting the S it already holds is granted re-entrantly and
     must leave the queued upgrade alone *)
  Alcotest.(check bool) "s still covered" true
    (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.S = `Granted);
  Alcotest.(check bool) "upgrade still queued" true (Lock_mgr.waiting l ~owner:2);
  let granted = Lock_mgr.release_all l ~owner:1 in
  Alcotest.(check (list int)) "upgrade promoted" [ 2 ] granted;
  Alcotest.(check bool) "now exclusive" true
    (Lock_mgr.holds l ~owner:2 (rec_ "k") Lock_mgr.X);
  Alcotest.(check bool) "no longer waiting" false (Lock_mgr.waiting l ~owner:2)

(* Same shape through a fresh grant: owner 2 holds nothing on "k2",
   queues an X there, then wins an S on the same resource once the
   holder drops to compatible — the X wait must survive the S grant. *)
let test_fresh_s_grant_keeps_x_wait () =
  let l = Lock_mgr.create () in
  ignore (Lock_mgr.acquire l ~owner:1 (rec_ "k") Lock_mgr.S);
  ignore (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.X);
  (* head-of-queue retry in S mode: grantable (S vs S) and at head *)
  Alcotest.(check bool) "head retry S granted" true
    (Lock_mgr.acquire l ~owner:2 (rec_ "k") Lock_mgr.S = `Granted);
  Alcotest.(check bool) "x upgrade preserved" true (Lock_mgr.waiting l ~owner:2);
  let granted = Lock_mgr.release_all l ~owner:1 in
  Alcotest.(check (list int)) "x granted on release" [ 2 ] granted;
  Alcotest.(check bool) "exclusive" true
    (Lock_mgr.holds l ~owner:2 (rec_ "k") Lock_mgr.X)

(* Contention stress: many owners hammering a few hot records plus
   private keys.  Checks bookkeeping consistency (held_count matches
   holds, release wakes the right parties, no residue) at a scale where
   the old quadratic list scans would visibly misbehave if the new
   structures miscounted. *)
let test_contention_bookkeeping () =
  let l = Lock_mgr.create () in
  let owners = 64 in
  let blocked = Hashtbl.create 64 in
  for o = 1 to owners do
    (* everyone takes S on the hot record *)
    (match Lock_mgr.acquire l ~owner:o (rec_ "hot") Lock_mgr.S with
    | `Granted -> ()
    | `Blocked -> Hashtbl.replace blocked o ());
    (* a private key each: always granted *)
    Alcotest.(check bool) "private granted" true
      (Lock_mgr.acquire l ~owner:o (rec_ (Printf.sprintf "p%d" o)) Lock_mgr.X
      = `Granted)
  done;
  Alcotest.(check int) "no one blocked on shared" 0 (Hashtbl.length blocked);
  Alcotest.(check int) "live locks" (2 * owners) (Lock_mgr.live_locks l);
  (* owner 1 upgrades the hot record: blocked behind 63 other S holders *)
  Alcotest.(check bool) "upgrade blocked" true
    (Lock_mgr.acquire l ~owner:1 (rec_ "hot") Lock_mgr.X = `Blocked);
  (* everyone else releases; owner 1's upgrade must be granted *)
  let woken = ref [] in
  for o = 2 to owners do
    woken := Lock_mgr.release_all l ~owner:o @ !woken
  done;
  Alcotest.(check (list int)) "upgrade woken once" [ 1 ]
    (List.sort_uniq Int.compare !woken);
  Alcotest.(check bool) "owner 1 exclusive" true
    (Lock_mgr.holds l ~owner:1 (rec_ "hot") Lock_mgr.X);
  Alcotest.(check int) "owner 1 holds hot + private" 2
    (Lock_mgr.held_count l ~owner:1);
  ignore (Lock_mgr.release_all l ~owner:1);
  Alcotest.(check int) "all released" 0 (Lock_mgr.live_locks l)

let test_range_and_table_resources () =
  let l = Lock_mgr.create () in
  let r1 = Lock_mgr.Range { table = "t"; slot = 3 } in
  let r2 = Lock_mgr.Range { table = "t"; slot = 4 } in
  ignore (Lock_mgr.acquire l ~owner:1 r1 Lock_mgr.X);
  Alcotest.(check bool) "different slots independent" true
    (Lock_mgr.acquire l ~owner:2 r2 Lock_mgr.X = `Granted);
  Alcotest.(check bool) "same slot conflicts" true
    (Lock_mgr.acquire l ~owner:2 r1 Lock_mgr.S = `Blocked)

let suite =
  [
    Alcotest.test_case "shared compatible" `Quick test_shared_compatible;
    Alcotest.test_case "exclusive conflicts" `Quick test_exclusive_conflicts;
    Alcotest.test_case "re-entrant" `Quick test_reentrant;
    Alcotest.test_case "upgrade" `Quick test_upgrade;
    Alcotest.test_case "release grants waiters" `Quick
      test_release_grants_waiters;
    Alcotest.test_case "fifo fairness" `Quick test_fifo_fairness;
    Alcotest.test_case "cancel waits" `Quick test_cancel_waits;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "three-way deadlock" `Quick test_deadlock_three_way;
    Alcotest.test_case "range/table resources" `Quick
      test_range_and_table_resources;
    Alcotest.test_case "upgrade survives re-entrant S" `Quick
      test_upgrade_survives_s_grant;
    Alcotest.test_case "fresh S grant keeps X wait" `Quick
      test_fresh_s_grant_keeps_x_wait;
    Alcotest.test_case "contention bookkeeping" `Quick
      test_contention_bookkeeping;
  ]
