(* The M-TC × N-DC session front end, and the single-TC assumptions
   this PR removed: round-robin dispatch, pipelined FIFO sessions,
   typed-overload admission control, cross-session group-commit
   batching, wire-level TC misattribution guards, the two-TCs-racing-a-
   checkpoint regression, Section 6.2.2 read-committed sharing, the
   multi-TC read_as_of probe, and the TC-kill-under-load chaos cycle. *)

module Deploy = Untx_cloud.Deploy
module Front = Untx_front.Front
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Wire = Untx_msg.Wire
module Op = Untx_msg.Op
module Tc_id = Untx_util.Tc_id
module Lsn = Untx_util.Lsn
module Instrument = Untx_util.Instrument
module Audit = Untx_audit.Audit
module Chaos = Untx_audit.Chaos

let ok = function
  | `Ok v -> v
  | `Blocked -> Alcotest.fail "blocked"
  | `Fail m -> Alcotest.fail m

(* Two TCs over [parts] shared DCs; each TC gets its own table spread
   over every DC (the Section 6 disjoint-updaters rule). *)
let mtc_deploy ?counters ?(parts = 2) () =
  let d = Deploy.create ?counters () in
  let tc1 = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  let tc2 = Deploy.add_tc d ~name:"tc2" (Tc.default_config (Tc_id.of_int 2)) in
  let dcs = List.init parts (Printf.sprintf "dc%d") in
  List.iter (fun n -> ignore (Deploy.add_dc d ~name:n Dc.default_config)) dcs;
  Deploy.add_partitioned_table d ~name:"t1" ~versioned:false ~dcs ();
  Deploy.add_partitioned_table d ~name:"t2" ~versioned:false ~dcs ();
  (d, tc1, tc2)

let commit_one tc ~table ~key ~value =
  let txn = Tc.begin_txn tc in
  (match Tc.update tc txn ~table ~key ~value with
  | `Ok () -> ()
  | `Blocked -> Alcotest.fail "blocked"
  | `Fail _ -> ok (Tc.insert tc txn ~table ~key ~value));
  ok (Tc.commit tc txn)

let fill tc ~table ?(prefix = "k") ?(value = "v") n =
  List.iter
    (fun i ->
      commit_one tc ~table ~key:(Printf.sprintf "%s%03d" prefix i) ~value)
    (List.init n Fun.id)

let ticket = function
  | `Ticket k -> k
  | `Overloaded r -> Alcotest.fail ("unexpected shed: " ^ r)

let done_result front k =
  match Front.poll front k with
  | `Done r -> r
  | `Pending -> Alcotest.fail "ticket still pending after drain"

(* --- dispatch ---------------------------------------------------------- *)

let test_dispatch_round_robin () =
  let d, _, _ = mtc_deploy () in
  let front = Front.create d in
  let tcs =
    List.init 5 (fun _ -> Front.session_tc (Front.open_session front))
  in
  Alcotest.(check (list string)) "round-robin over name-sorted TCs"
    [ "tc1"; "tc2"; "tc1"; "tc2"; "tc1" ]
    tcs;
  Alcotest.(check int) "sessions counted" 5 (Front.sessions front)

(* --- pipelined FIFO sessions ------------------------------------------ *)

let test_pipelined_fifo () =
  let counters = Instrument.create () in
  let d, _, _ = mtc_deploy ~counters () in
  let front = Front.create ~counters d in
  let s = Front.open_session front in
  let table = if Front.session_tc s = "tc1" then "t1" else "t2" in
  (* three pipelined transactions, the later ones reading what the
     earlier ones wrote — FIFO order is what makes the reads coherent *)
  let k1 =
    ticket (Front.submit front s [ Front.Insert { table; key = "a"; value = "1" } ])
  in
  let k2 =
    ticket
      (Front.submit front s
         [
           Front.Read { table; key = "a" };
           Front.Update { table; key = "a"; value = "2" };
         ])
  in
  let k3 = ticket (Front.submit front s [ Front.Read { table; key = "a" } ]) in
  Alcotest.(check int) "three queued" 3 (Front.pending front);
  Front.drain front;
  Alcotest.(check int) "none queued" 0 (Front.pending front);
  (match done_result front k1 with
  | Front.Committed [] -> ()
  | _ -> Alcotest.fail "txn 1 should commit with no reads");
  (match done_result front k2 with
  | Front.Committed [ Some "1" ] -> ()
  | _ -> Alcotest.fail "txn 2 must read txn 1's write");
  (match done_result front k3 with
  | Front.Committed [ Some "2" ] -> ()
  | _ -> Alcotest.fail "txn 3 must read txn 2's write");
  Alcotest.(check int) "all admissions counted" 3
    (Instrument.get counters "front.admitted");
  Alcotest.(check bool) "a consumed ticket cannot be re-polled" true
    (try
       ignore (Front.poll front k1);
       false
     with Invalid_argument _ -> true)

(* --- admission control ------------------------------------------------- *)

let test_backpressure_sheds_typed () =
  let counters = Instrument.create () in
  let d, _, _ = mtc_deploy ~counters () in
  let front =
    Front.create ~counters
      ~cfg:{ Front.max_sessions = 2; session_queue = 2; total_queue = 3 ;
             batch = 1 }
      d
  in
  let s1 = Front.open_session front in
  let s2 = Front.open_session front in
  Alcotest.(check bool) "third session refused, typed" true
    (try
       ignore (Front.open_session front);
       false
     with Front.Overloaded _ -> true);
  let tx table i =
    [ Front.Insert { table; key = Printf.sprintf "k%d" i; value = "v" } ]
  in
  ignore (ticket (Front.submit front s1 (tx "t1" 0)));
  ignore (ticket (Front.submit front s1 (tx "t1" 1)));
  (match Front.submit front s1 (tx "t1" 2) with
  | `Overloaded _ -> ()
  | `Ticket _ -> Alcotest.fail "session queue bound ignored");
  ignore (ticket (Front.submit front s2 (tx "t2" 0)));
  (* total_queue = 3 is now full; the OTHER session's queue has room,
     but the global bound must still refuse *)
  (match Front.submit front s2 (tx "t2" 1) with
  | `Overloaded _ -> ()
  | `Ticket _ -> Alcotest.fail "total queue bound ignored");
  Alcotest.(check int) "admissions" 3 (Instrument.get counters "front.admitted");
  Alcotest.(check int) "sheds (session + open + total)" 3
    (Instrument.get counters "front.shed");
  (* shed is refusal, not a stall: pumping frees space and the same
     submission then goes through *)
  ignore (Front.pump ~budget:2 front);
  ignore (ticket (Front.submit front s1 (tx "t1" 2)));
  Front.drain front;
  Alcotest.(check int) "queue drained" 0 (Front.pending front)

(* --- group-commit batching across sessions ---------------------------- *)

let test_group_commit_batches () =
  let counters = Instrument.create () in
  let d, tc1, _ = mtc_deploy ~counters () in
  let front =
    Front.create ~counters
      ~cfg:{ Front.max_sessions = 4; session_queue = 8; total_queue = 32;
             batch = 4 }
      d
  in
  Alcotest.(check int) "batch size installed on the TCs" 4
    (Tc.group_commit tc1);
  (* two sessions share tc1 (sids 0 and 2): their commits land in the
     same TC's batch *)
  let s0 = Front.open_session front in
  let _s1 = Front.open_session front in
  let s2 = Front.open_session front in
  Alcotest.(check string) "s0 and s2 share tc1" (Front.session_tc s0)
    (Front.session_tc s2);
  let submit s i =
    ignore
      (ticket
         (Front.submit front s
            [ Front.Insert
                { table = "t1"; key = Printf.sprintf "b%d" i; value = "v" } ]))
  in
  List.iter (fun i -> submit (if i mod 2 = 0 then s0 else s2) i)
    (List.init 8 Fun.id);
  let forces_before = Tc.log_forces tc1 in
  ignore (Front.pump front);
  (* 8 commits at batch 4: two forces, six commits rode open batches *)
  Alcotest.(check int) "two group forces" 2 (Tc.log_forces tc1 - forces_before);
  Alcotest.(check int) "six batched commits" 6
    (Instrument.get counters "front.batched");
  (* the tail of the last batch is only durable after flush *)
  let stable_before = Tc.stable_lsn tc1 in
  Front.flush front;
  Alcotest.(check bool) "flush is a no-op on a closed batch" true
    (Lsn.to_int (Tc.stable_lsn tc1) >= Lsn.to_int stable_before);
  Alcotest.(check int) "everything stable after flush"
    (Lsn.to_int (Tc.last_lsn tc1))
    (Lsn.to_int (Tc.stable_lsn tc1))

(* --- wire-level misattribution guards --------------------------------- *)

let test_misattributed_frames_rejected () =
  let counters = Instrument.create () in
  let dc = Dc.create ~counters Dc.default_config in
  Dc.create_table dc ~name:"t" ~versioned:false;
  let wrong = Tc_id.of_int 2 and expect = Tc_id.of_int 1 in
  let req =
    Wire.encode_request
      {
        Wire.tc = wrong;
        lsn = Lsn.of_int 1;
        part = 0;
        op = Op.Insert { table = "t"; key = "k"; value = "v" };
      }
  in
  (match Dc.handle_request_frame ~expect dc req with
  | Some reply -> (
    let r = Wire.decode_reply reply in
    Alcotest.(check int) "refusal echoes the frame's own tc"
      (Tc_id.to_int wrong)
      (Tc_id.to_int r.Wire.tc);
    match r.Wire.result with
    | Wire.Failed m ->
      Alcotest.(check bool) "loud refusal names the misattribution" true
        (String.length m >= 13 && String.sub m 0 13 = "misattributed")
    | _ -> Alcotest.fail "misattributed request must fail")
  | None -> Alcotest.fail "misattributed request must be answered loudly");
  Alcotest.(check bool) "the operation was NOT applied" true
    (Dc.dump_table dc "t" = []);
  (* control frames from the wrong TC are dropped (the sender's resend
     budget turns silence into a loud timeout) *)
  let ctl =
    Wire.encode_control
      {
        Wire.c_epoch = 1;
        c_seq = 1;
        c_ctl = Wire.Low_water_mark { tc = wrong; lwm = Lsn.of_int 5 };
      }
  in
  (match Dc.handle_control_frame ~expect dc ctl with
  | None -> ()
  | Some _ -> Alcotest.fail "misattributed control frame must be dropped");
  Alcotest.(check int) "both rejections counted" 2
    (Instrument.get counters "dc.misattributed");
  Alcotest.(check int) "wrong TC's watermark slot untouched" 0
    (Lsn.to_int (Dc.lwm_of dc wrong))

(* --- satellite 1: two TCs racing a checkpoint on a shared DC ---------- *)

let test_checkpoint_race_two_tcs () =
  let counters = Instrument.create () in
  let d, tc1, tc2 = mtc_deploy ~counters ~parts:1 () in
  fill tc1 ~table:"t1" 12;
  fill tc2 ~table:"t2" 12;
  Deploy.quiesce d;
  (* tc2 enters the race with real exposure: unforced batched commits
     (volatile log tail) and an open transaction with dispatched,
     uncommitted writes *)
  Tc.set_group_commit tc2 8;
  fill tc2 ~table:"t2" ~prefix:"late" 3;
  let open_txn = Tc.begin_txn tc2 in
  ok (Tc.update tc2 open_txn ~table:"t2" ~key:"late000" ~value:"open");
  Tc.quiesce tc2;
  let rssp2_before = Lsn.to_int (Tc.rssp tc2) in
  (* tc1's checkpoint is granted while tc2 is exposed *)
  Dc.flush_all (Deploy.dc d "dc0");
  let rec grant tries =
    if Tc.checkpoint tc1 then ()
    else if tries > 0 then begin
      Tc.quiesce tc1;
      Dc.flush_all (Deploy.dc d "dc0");
      grant (tries - 1)
    end
    else Alcotest.fail "tc1's checkpoint never granted"
  in
  grant 4;
  (* THE regression: tc1's granted checkpoint must not have advanced
     tc2's redo-scan start point — tc2's undispatched and in-flight
     watermarks are its own *)
  Alcotest.(check int) "tc2's redo-scan start point untouched" rssp2_before
    (Lsn.to_int (Tc.rssp tc2));
  ok (Tc.commit tc2 open_txn);
  Tc.force_log tc2;
  Deploy.quiesce d;
  (* the DC dies: redo runs from EVERY TC's own scan start point.  If
     tc1's truncation had covered tc2's suffix, tc2's rows would vanish
     here. *)
  Deploy.crash_dc d "dc0";
  List.iter
    (fun i ->
      let key = Printf.sprintf "k%03d" i in
      Alcotest.(check (option string))
        ("t1/" ^ key ^ " survives") (Some "v")
        (Tc.read_committed tc1 ~table:"t1" ~key);
      Alcotest.(check (option string))
        ("t2/" ^ key ^ " survives") (Some "v")
        (Tc.read_committed tc2 ~table:"t2" ~key))
    (List.init 12 Fun.id);
  Alcotest.(check (option string)) "tc2's racing update survives"
    (Some "open")
    (Tc.read_committed tc2 ~table:"t2" ~key:"late000");
  (* the watermark invariants hold at quiesced points: force both TCs
     so the restarted DC has heard fresh EOSL claims *)
  Tc.force_log tc1;
  Tc.force_log tc2;
  Deploy.quiesce d;
  Alcotest.(check (list string)) "no cross-TC watermark violations" []
    (Audit.check_watermarks d);
  (* and a deployment-wide round completes for both TCs *)
  Dc.flush_all (Deploy.dc d "dc0");
  Alcotest.(check bool) "checkpoint_all granted for every TC" true
    (Deploy.checkpoint_all d)

(* --- satellite 4: Section 6.2.2 read-committed sharing ----------------- *)

let test_read_committed_across_tcs () =
  let d = Deploy.create () in
  ignore (Deploy.add_dc d ~name:"dc1" Dc.default_config);
  Deploy.create_table d ~dc:"dc1" ~name:"shared" ~versioned:true;
  let owner = Deploy.add_tc d ~name:"w" (Tc.default_config (Tc_id.of_int 1)) in
  let reader = Deploy.add_tc d ~name:"r" (Tc.default_config (Tc_id.of_int 2)) in
  Tc.map_table owner ~table:"shared" ~dc:"dc1" ~versioned:true;
  Tc.map_table reader ~table:"shared" ~dc:"dc1" ~versioned:true;
  let txn0 = Tc.begin_txn owner in
  ok (Tc.insert owner txn0 ~table:"shared" ~key:"x" ~value:"committed-1");
  ok (Tc.commit owner txn0);
  (* the owner TC holds write locks: open transaction, update applied
     at the DC as an uncommitted after-version *)
  let txn = Tc.begin_txn owner in
  ok (Tc.update owner txn ~table:"shared" ~key:"x" ~value:"uncommitted-2");
  Tc.quiesce owner;
  Alcotest.(check bool) "owner still holds the write lock" true
    (Tc.is_active txn);
  (* the second TC reads the very key the owner has locked — lock-free:
     read-committed sees the before-version, dirty sees the in-flight
     value, and neither ever returns `Blocked (the calls return plain
     options; blocking is impossible by construction) *)
  Alcotest.(check (option string)) "read-committed sees the before-version"
    (Some "committed-1")
    (Tc.read_committed reader ~table:"shared" ~key:"x");
  Alcotest.(check (option string)) "dirty read sees the in-flight value"
    (Some "uncommitted-2")
    (Tc.read_dirty reader ~table:"shared" ~key:"x");
  Alcotest.(check bool) "reading did not disturb the owner's lock" true
    (Tc.is_active txn);
  ok (Tc.commit owner txn);
  Tc.quiesce owner;
  Alcotest.(check (option string)) "after commit both modes converge"
    (Some "uncommitted-2")
    (Tc.read_committed reader ~table:"shared" ~key:"x")

(* --- multi-TC read_as_of (disjoint-writer history probe) -------------- *)

let test_read_as_of_multi_tc () =
  let d = Deploy.create ~layers:true () in
  let tc1 = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  let tc2 = Deploy.add_tc d ~name:"tc2" (Tc.default_config (Tc_id.of_int 2)) in
  ignore (Deploy.add_dc d ~name:"dc0" Dc.default_config);
  Deploy.add_partitioned_table d ~name:"t1" ~versioned:false ~dcs:[ "dc0" ] ();
  Deploy.add_partitioned_table d ~name:"t2" ~versioned:false ~dcs:[ "dc0" ] ();
  let stamp tc =
    Deploy.quiesce d;
    Tc.force_log tc;
    Tc.stable_lsn tc
  in
  commit_one tc1 ~table:"t1" ~key:"a" ~value:"old1";
  let at1 = stamp tc1 in
  commit_one tc2 ~table:"t2" ~key:"b" ~value:"old2";
  let at2 = stamp tc2 in
  commit_one tc1 ~table:"t1" ~key:"a" ~value:"new1";
  commit_one tc2 ~table:"t2" ~key:"b" ~value:"new2";
  Deploy.quiesce d;
  (* both TCs' histories hang off the SAME DC; the probe must find each
     key's history in its own writer's store — at per-TC LSNs *)
  Alcotest.(check (option string)) "tc1's key at tc1's LSN" (Some "old1")
    (Deploy.read_as_of ~tc:"tc1" d ~table:"t1" ~key:"a" ~at:at1);
  Alcotest.(check (option string)) "tc2's key at tc2's LSN" (Some "old2")
    (Deploy.read_as_of ~tc:"tc2" d ~table:"t2" ~key:"b" ~at:at2);
  Alcotest.(check (option string)) "a key the other TC never wrote" None
    (Deploy.read_as_of ~tc:"tc1" d ~table:"t2" ~key:"a" ~at:at2)

(* --- TC-kill-under-load chaos acceptance ------------------------------- *)

let test_tc_kill_under_load () =
  List.iter
    (fun (label, plan) ->
      List.iter
        (fun seed ->
          let c =
            Chaos.run_cycle_mtc ~label ~plan ~seed ~txns:24 ~parts:2 ()
          in
          Alcotest.(check (list string))
            (Printf.sprintf "%s seed %d: no violations" label seed)
            [] c.Chaos.c_violations;
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d: exactly one kill" label seed)
            1 c.Chaos.c_crashes;
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: front admitted work" label seed)
            true
            (List.assoc_opt "front.admitted" c.Chaos.c_counters
             <> Some 0
            && List.assoc_opt "front.admitted" c.Chaos.c_counters <> None))
        [ 3; 8 ])
    (Chaos.plans_mtc ())

let suite =
  [
    Alcotest.test_case "dispatch is round-robin" `Quick
      test_dispatch_round_robin;
    Alcotest.test_case "pipelined sessions are FIFO" `Quick test_pipelined_fifo;
    Alcotest.test_case "backpressure sheds with a typed refusal" `Quick
      test_backpressure_sheds_typed;
    Alcotest.test_case "group commit batches across sessions" `Quick
      test_group_commit_batches;
    Alcotest.test_case "misattributed frames are rejected loudly" `Quick
      test_misattributed_frames_rejected;
    Alcotest.test_case "two TCs racing a checkpoint" `Quick
      test_checkpoint_race_two_tcs;
    Alcotest.test_case "read-committed sharing across TCs (6.2.2)" `Quick
      test_read_committed_across_tcs;
    Alcotest.test_case "read_as_of probes per-TC histories" `Quick
      test_read_as_of_multi_tc;
    Alcotest.test_case "TC kill under load stays clean" `Slow
      test_tc_kill_under_load;
  ]
