(* The serialized message plane: determinism, delivery semantics for
   both channels, byte accounting, batching, flush, crash-time drops,
   checksum-gated corruption — plus a property-level exactly-once check
   over random policies at the kernel level. *)

module Transport = Untx_kernel.Transport
module Wire = Untx_msg.Wire
module Op = Untx_msg.Op
module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Instrument = Untx_util.Instrument
module Fault = Untx_fault.Fault
open Helpers
module Kernel = Untx_kernel.Kernel

let req i =
  Wire.encode_request
    {
      Wire.tc = Tc_id.of_int 1;
      lsn = Lsn.of_int i;
      part = 0;
      op = Op.Read { table = "t"; key = string_of_int i; mode = Op.Own };
    }

(* A DC stand-in that answers every request frame with a Done reply
   carrying the request's LSN, and acks every control frame. *)
let echo_data frame =
  let r = Wire.decode_request frame in
  Some
    (Wire.encode_reply
       { Wire.tc = r.Wire.tc; lsn = r.Wire.lsn; result = Wire.Done; prior = None })

let echo_control frame =
  let m = Wire.decode_control frame in
  Some
    (Wire.encode_control_reply
       { Wire.r_tc = Wire.control_tc m.Wire.c_ctl; r_epoch = m.Wire.c_epoch;
         r_seq = m.Wire.c_seq; r_reply = Wire.Ack })

let make ?counters ?policy ?control_policy ~seed () =
  Transport.create ?counters ?policy ?control_policy ~seed ~data:echo_data
    ~control:echo_control ()

let drain_ids t =
  List.map
    (fun frame -> Lsn.to_int (Wire.decode_reply frame).Wire.lsn)
    (fst (Transport.drain t))

let test_reliable_fifo () =
  let t = make ~seed:1 () in
  Transport.send t (req 1);
  Transport.send t (req 2);
  Transport.send t (req 3);
  Alcotest.(check (list int)) "in order, one tick" [ 1; 2; 3 ] (drain_ids t);
  Alcotest.(check int) "nothing left" 0 (Transport.in_flight t)

let test_delay () =
  let policy =
    { Transport.delay_min = 2; delay_max = 2; reorder = false; dup_prob = 0.;
      drop_prob = 0. }
  in
  let t = make ~policy ~seed:1 () in
  Transport.send t (req 1);
  Alcotest.(check (list int)) "tick 1: nothing" [] (drain_ids t);
  Alcotest.(check (list int)) "tick 2: request delivered, reply delayed" []
    (drain_ids t);
  (* two more ticks for the reply's own delay *)
  let got = drain_ids t @ drain_ids t @ drain_ids t @ drain_ids t in
  Alcotest.(check (list int)) "eventually" [ 1 ] got

let test_control_channel () =
  let t = make ~seed:5 () in
  let ctl seq =
    Wire.encode_control
      {
        Wire.c_epoch = 1;
        c_seq = seq;
        c_ctl = Wire.Low_water_mark { tc = Tc_id.of_int 1; lwm = Lsn.of_int 9 };
      }
  in
  Transport.send_control t (ctl 1);
  Transport.send_control t (ctl 2);
  let replies, ctl_replies = Transport.drain t in
  Alcotest.(check (list int)) "data channel untouched" [] (List.map String.length replies);
  let seqs =
    List.map (fun f -> (Wire.decode_control_reply f).Wire.r_seq) ctl_replies
  in
  Alcotest.(check (list int)) "acks in order, with seqs" [ 1; 2 ] seqs

let test_channels_have_separate_policies () =
  let blocked =
    { Transport.delay_min = 50; delay_max = 50; reorder = false; dup_prob = 0.;
      drop_prob = 0. }
  in
  let t = make ~seed:5 ~control_policy:blocked () in
  Transport.send t (req 1);
  Transport.send_control t
    (Wire.encode_control
       { Wire.c_epoch = 1; c_seq = 1; c_ctl = Wire.Restart_end { tc = Tc_id.of_int 1 } });
  let replies, ctl_replies = Transport.drain t in
  Alcotest.(check int) "data round-tripped" 1 (List.length replies);
  Alcotest.(check int) "control still in flight" 0 (List.length ctl_replies);
  Alcotest.(check int) "one frame pending" 1 (Transport.in_flight t)

let test_byte_accounting () =
  let counters = Instrument.create () in
  let t = make ~counters ~seed:2 () in
  let frame = req 7 in
  Transport.send t frame;
  let replies, _ = Transport.drain t in
  let reply_frame = List.hd replies in
  (* The sender pays measured encoded bytes for both directions. *)
  Alcotest.(check int) "data bytes = request + reply"
    (String.length frame + String.length reply_frame)
    (Transport.data_bytes_sent t);
  Alcotest.(check int) "mirrored into counters"
    (Transport.data_bytes_sent t)
    (Instrument.get counters "transport.data_bytes");
  Alcotest.(check int) "control channel unused" 0
    (Transport.control_bytes_sent t);
  Alcotest.(check int) "total is the sum"
    (Transport.data_bytes_sent t)
    (Transport.bytes_sent t)

let test_batching_counters () =
  let counters = Instrument.create () in
  let t = make ~counters ~seed:3 () in
  for i = 1 to 5 do
    Transport.send t (req i)
  done;
  ignore (Transport.drain t);
  (* One delivery round coalesced all five requests into a batch; the
     replies came due in the same drain call, as a second batch. *)
  Alcotest.(check int) "two batches" 2 (Instrument.get counters "transport.batches");
  Alcotest.(check int) "ten frames batched" 10
    (Instrument.get counters "transport.batched_frames")

let test_corruption_dropped () =
  let counters = Instrument.create () in
  let t = make ~counters ~seed:11 () in
  Fault.arm ~seed:4 [ Fault.crash_with_prob "transport.frame.corrupt" 1.0 ];
  Transport.send t (req 1);
  Transport.send t (req 2);
  let replies, _ = Transport.drain t in
  Fault.disarm ();
  (* Every delivery attempt was corrupted; the checksum gate turned each
     into a silent loss. *)
  Alcotest.(check int) "nothing survived" 0 (List.length replies);
  Alcotest.(check int) "nothing reached the endpoint" 0
    (Transport.requests_delivered t);
  Alcotest.(check int) "both rejections counted" 2 (Transport.corrupt_dropped t);
  Alcotest.(check int) "counter mirrored" 2
    (Instrument.get counters "transport.corrupt_dropped");
  (* With the fault gone, a resend of the same frames goes through. *)
  Transport.send t (req 1);
  Transport.send t (req 2);
  Alcotest.(check (list int)) "resend carries it" [ 1; 2 ] (drain_ids t)

let test_drop_and_dup_counted () =
  let policy =
    { Transport.delay_min = 0; delay_max = 0; reorder = false;
      dup_prob = 0.5; drop_prob = 0.3 }
  in
  let t = make ~policy ~seed:7 () in
  for i = 1 to 200 do
    Transport.send t (req i)
  done;
  let delivered = ref 0 in
  for _ = 1 to 50 do
    delivered := !delivered + List.length (fst (Transport.drain t))
  done;
  Alcotest.(check bool) "some dropped" true (Transport.dropped t > 0);
  Alcotest.(check bool) "some duplicated" true (Transport.duplicated t > 0);
  Alcotest.(check bool) "deliveries reflect both" true (!delivered > 0)

let test_determinism () =
  let run () =
    let policy = Transport.chaotic in
    let t = make ~policy ~seed:99 () in
    for i = 1 to 50 do
      Transport.send t (req i)
    done;
    let acc = ref [] in
    for _ = 1 to 30 do
      acc := !acc @ drain_ids t
    done;
    (!acc, Transport.requests_delivered t, Transport.dropped t,
     Transport.duplicated t)
  in
  let order_a, del_a, drop_a, dup_a = run () in
  let order_b, del_b, drop_b, dup_b = run () in
  Alcotest.(check (list int)) "same seed, same schedule" order_a order_b;
  Alcotest.(check (list int)) "same seed, same counters"
    [ del_a; drop_a; dup_a ] [ del_b; drop_b; dup_b ];
  Alcotest.(check bool) "the adversary actually dropped" true (drop_a > 0)

let test_flush_delivers_everything () =
  let t = make ~policy:Transport.chaotic ~seed:3 () in
  for i = 1 to 40 do
    Transport.send t (req i)
  done;
  let flushed, _ = Transport.flush t in
  Alcotest.(check int) "empty after flush" 0 (Transport.in_flight t);
  Alcotest.(check int) "flush reports what it force-delivered"
    (Transport.force_delivered t) (List.length flushed);
  Alcotest.(check bool) "something was in flight" true (flushed <> [])

let test_drop_in_flight () =
  let policy =
    { Transport.delay_min = 5; delay_max = 5; reorder = false; dup_prob = 0.;
      drop_prob = 0. }
  in
  let t = make ~policy ~seed:3 () in
  Transport.send t (req 1);
  Transport.drop_in_flight t;
  Alcotest.(check int) "gone" 0 (Transport.in_flight t);
  let got = ref [] in
  for _ = 1 to 12 do
    got := !got @ drain_ids t
  done;
  Alcotest.(check (list int)) "never delivered" [] !got

let test_drop_in_flight_preserves_counters () =
  let policy =
    { Transport.delay_min = 1; delay_max = 1; reorder = false;
      dup_prob = 0.5; drop_prob = 0.3 }
  in
  let t = make ~policy ~seed:21 () in
  for i = 1 to 60 do
    Transport.send t (req i);
    ignore (Transport.drain t)
  done;
  let delivered = Transport.requests_delivered t in
  let dropped = Transport.dropped t and duplicated = Transport.duplicated t in
  Alcotest.(check bool) "counters primed" true (dropped > 0 && duplicated > 0);
  (* A crash loses the in-flight messages but must not rewrite history:
     the accounting of what already happened stays put. *)
  Transport.drop_in_flight t;
  Alcotest.(check int) "in_flight zeroed" 0 (Transport.in_flight t);
  Alcotest.(check (list int)) "delivered/dropped/duplicated untouched"
    [ delivered; dropped; duplicated ]
    [ Transport.requests_delivered t; Transport.dropped t;
      Transport.duplicated t ]

(* Property: exactly-once end-to-end over random adversarial policies. *)
let prop_exactly_once =
  let policy_gen =
    QCheck.Gen.(
      map3
        (fun delay dup drop ->
          {
            Transport.delay_min = 0;
            delay_max = delay mod 4;
            reorder = true;
            dup_prob = float_of_int (dup mod 30) /. 100.;
            drop_prob = float_of_int (drop mod 30) /. 100.;
          })
        (int_bound 3) (int_bound 29) (int_bound 29))
  in
  let arb =
    QCheck.make
      ~print:(fun (p, seed) ->
        Printf.sprintf "delay<=%d dup=%.2f drop=%.2f seed=%d"
          p.Transport.delay_max p.Transport.dup_prob p.Transport.drop_prob seed)
      QCheck.Gen.(pair policy_gen (int_bound 1000))
  in
  QCheck.Test.make ~name:"kernel state independent of transport adversity"
    ~count:15 arb (fun (policy, seed) ->
      let run p s =
        let k = make_kernel ~policy:p ~seed:s () in
        for t = 0 to 19 do
          let txn = Kernel.begin_txn k in
          for i = 0 to 5 do
            ok
              (Kernel.insert k txn ~table:"kv"
                 ~key:(Printf.sprintf "k%02d-%02d" t i)
                 ~value:(string_of_int (t * i)))
          done;
          if t mod 4 = 0 then Kernel.abort k txn ~reason:"mix"
          else ok (Kernel.commit k txn)
        done;
        Kernel.quiesce k;
        snapshot k ~table:"kv"
      in
      run policy seed = run Transport.reliable 0)

let suite =
  [
    Alcotest.test_case "reliable is FIFO" `Quick test_reliable_fifo;
    Alcotest.test_case "delay semantics" `Quick test_delay;
    Alcotest.test_case "control channel round trip" `Quick test_control_channel;
    Alcotest.test_case "per-channel policies" `Quick
      test_channels_have_separate_policies;
    Alcotest.test_case "byte accounting is measured" `Quick test_byte_accounting;
    Alcotest.test_case "batching counters" `Quick test_batching_counters;
    Alcotest.test_case "corrupt frames are dropped" `Quick
      test_corruption_dropped;
    Alcotest.test_case "drop/dup accounting" `Quick test_drop_and_dup_counted;
    Alcotest.test_case "seeded determinism" `Quick test_determinism;
    Alcotest.test_case "flush delivers all" `Quick
      test_flush_delivers_everything;
    Alcotest.test_case "drop in flight" `Quick test_drop_in_flight;
    Alcotest.test_case "drop in flight preserves counters" `Quick
      test_drop_in_flight_preserves_counters;
    Helpers.qcheck_test prop_exactly_once;
  ]
