(* The adversarial transport itself: determinism, delivery semantics,
   flush, crash-time drops — plus a property-level exactly-once check
   over random policies at the kernel level. *)

module Transport = Untx_kernel.Transport
module Wire = Untx_msg.Wire
module Op = Untx_msg.Op
module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
open Helpers
module Kernel = Untx_kernel.Kernel

let req i =
  {
    Wire.tc = Tc_id.of_int 1;
    lsn = Lsn.of_int i;
    op = Op.Read { table = "t"; key = string_of_int i; mode = Op.Own };
  }

let echo_dc (r : Wire.request) =
  { Wire.lsn = r.lsn; result = Wire.Done; prior = None }

let drain_ids t = List.map (fun (r : Wire.reply) -> Lsn.to_int r.lsn) (Transport.drain t)

let test_reliable_fifo () =
  let t = Transport.create ~seed:1 ~dc:echo_dc () in
  Transport.send t (req 1);
  Transport.send t (req 2);
  Transport.send t (req 3);
  Alcotest.(check (list int)) "in order, one tick" [ 1; 2; 3 ] (drain_ids t);
  Alcotest.(check int) "nothing left" 0 (Transport.in_flight t)

let test_delay () =
  let policy =
    { Transport.delay_min = 2; delay_max = 2; reorder = false; dup_prob = 0.;
      drop_prob = 0. }
  in
  let t = Transport.create ~policy ~seed:1 ~dc:echo_dc () in
  Transport.send t (req 1);
  Alcotest.(check (list int)) "tick 1: nothing" [] (drain_ids t);
  Alcotest.(check (list int)) "tick 2: request delivered, reply delayed" []
    (drain_ids t);
  (* two more ticks for the reply's own delay *)
  let got = drain_ids t @ drain_ids t @ drain_ids t @ drain_ids t in
  Alcotest.(check (list int)) "eventually" [ 1 ] got

let test_drop_and_dup_counted () =
  let policy =
    { Transport.delay_min = 0; delay_max = 0; reorder = false;
      dup_prob = 0.5; drop_prob = 0.3 }
  in
  let t = Transport.create ~policy ~seed:7 ~dc:echo_dc () in
  for i = 1 to 200 do
    Transport.send t (req i)
  done;
  let delivered = ref 0 in
  for _ = 1 to 50 do
    delivered := !delivered + List.length (Transport.drain t)
  done;
  Alcotest.(check bool) "some dropped" true (Transport.dropped t > 0);
  Alcotest.(check bool) "some duplicated" true (Transport.duplicated t > 0);
  Alcotest.(check bool) "deliveries reflect both" true (!delivered > 0)

let test_determinism () =
  let run () =
    let policy = Transport.chaotic in
    let t = Transport.create ~policy ~seed:99 ~dc:echo_dc () in
    for i = 1 to 50 do
      Transport.send t (req i)
    done;
    let acc = ref [] in
    for _ = 1 to 30 do
      acc := !acc @ drain_ids t
    done;
    (!acc, Transport.requests_delivered t, Transport.dropped t,
     Transport.duplicated t)
  in
  let order_a, del_a, drop_a, dup_a = run () in
  let order_b, del_b, drop_b, dup_b = run () in
  Alcotest.(check (list int)) "same seed, same schedule" order_a order_b;
  Alcotest.(check (list int)) "same seed, same counters"
    [ del_a; drop_a; dup_a ] [ del_b; drop_b; dup_b ];
  Alcotest.(check bool) "the adversary actually dropped" true (drop_a > 0)

let test_flush_delivers_everything () =
  let t = Transport.create ~policy:Transport.chaotic ~seed:3 ~dc:echo_dc () in
  for i = 1 to 40 do
    Transport.send t (req i)
  done;
  let flushed = Transport.flush t in
  Alcotest.(check int) "empty after flush" 0 (Transport.in_flight t);
  Alcotest.(check int) "flush reports what it force-delivered"
    (Transport.force_delivered t) (List.length flushed);
  Alcotest.(check bool) "something was in flight" true (flushed <> [])

let test_drop_in_flight () =
  let policy =
    { Transport.delay_min = 5; delay_max = 5; reorder = false; dup_prob = 0.;
      drop_prob = 0. }
  in
  let t = Transport.create ~policy ~seed:3 ~dc:echo_dc () in
  Transport.send t (req 1);
  Transport.drop_in_flight t;
  Alcotest.(check int) "gone" 0 (Transport.in_flight t);
  let got = ref [] in
  for _ = 1 to 12 do
    got := !got @ drain_ids t
  done;
  Alcotest.(check (list int)) "never delivered" [] !got

let test_drop_in_flight_preserves_counters () =
  let policy =
    { Transport.delay_min = 1; delay_max = 1; reorder = false;
      dup_prob = 0.5; drop_prob = 0.3 }
  in
  let t = Transport.create ~policy ~seed:21 ~dc:echo_dc () in
  for i = 1 to 60 do
    Transport.send t (req i);
    ignore (Transport.drain t)
  done;
  let delivered = Transport.requests_delivered t in
  let dropped = Transport.dropped t and duplicated = Transport.duplicated t in
  Alcotest.(check bool) "counters primed" true (dropped > 0 && duplicated > 0);
  (* A crash loses the in-flight messages but must not rewrite history:
     the accounting of what already happened stays put. *)
  Transport.drop_in_flight t;
  Alcotest.(check int) "in_flight zeroed" 0 (Transport.in_flight t);
  Alcotest.(check (list int)) "delivered/dropped/duplicated untouched"
    [ delivered; dropped; duplicated ]
    [ Transport.requests_delivered t; Transport.dropped t;
      Transport.duplicated t ]

(* Property: exactly-once end-to-end over random adversarial policies. *)
let prop_exactly_once =
  let policy_gen =
    QCheck.Gen.(
      map3
        (fun delay dup drop ->
          {
            Transport.delay_min = 0;
            delay_max = delay mod 4;
            reorder = true;
            dup_prob = float_of_int (dup mod 30) /. 100.;
            drop_prob = float_of_int (drop mod 30) /. 100.;
          })
        (int_bound 3) (int_bound 29) (int_bound 29))
  in
  let arb =
    QCheck.make
      ~print:(fun (p, seed) ->
        Printf.sprintf "delay<=%d dup=%.2f drop=%.2f seed=%d"
          p.Transport.delay_max p.Transport.dup_prob p.Transport.drop_prob seed)
      QCheck.Gen.(pair policy_gen (int_bound 1000))
  in
  QCheck.Test.make ~name:"kernel state independent of transport adversity"
    ~count:15 arb (fun (policy, seed) ->
      let run p s =
        let k = make_kernel ~policy:p ~seed:s () in
        for t = 0 to 19 do
          let txn = Kernel.begin_txn k in
          for i = 0 to 5 do
            ok
              (Kernel.insert k txn ~table:"kv"
                 ~key:(Printf.sprintf "k%02d-%02d" t i)
                 ~value:(string_of_int (t * i)))
          done;
          if t mod 4 = 0 then Kernel.abort k txn ~reason:"mix"
          else ok (Kernel.commit k txn)
        done;
        Kernel.quiesce k;
        snapshot k ~table:"kv"
      in
      run policy seed = run Transport.reliable 0)

let suite =
  [
    Alcotest.test_case "reliable is FIFO" `Quick test_reliable_fifo;
    Alcotest.test_case "delay semantics" `Quick test_delay;
    Alcotest.test_case "drop/dup accounting" `Quick test_drop_and_dup_counted;
    Alcotest.test_case "seeded determinism" `Quick test_determinism;
    Alcotest.test_case "flush delivers all" `Quick
      test_flush_delivers_everything;
    Alcotest.test_case "drop in flight" `Quick test_drop_in_flight;
    Alcotest.test_case "drop in flight preserves counters" `Quick
      test_drop_in_flight_preserves_counters;
    QCheck_alcotest.to_alcotest prop_exactly_once;
  ]
