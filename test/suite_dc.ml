(* Direct Data Component tests: the component is driven with raw wire
   requests, bypassing any TC, to pin down the Section 4/5 contracts —
   idempotence under duplication and out-of-LSN-order arrival, causality
   (the unbundled WAL rule), the three page-sync policies, checkpoint
   grants, and DC-log recovery ordering. *)

module Dc = Untx_dc.Dc
module Stored_record = Untx_dc.Stored_record
module Wire = Untx_msg.Wire
module Op = Untx_msg.Op
module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Cache = Untx_storage.Cache
module Disk = Untx_storage.Disk

let tc1 = Tc_id.of_int 1

let lsn = Lsn.of_int

let mk ?(sync_policy = Dc.Full_ablsn) ?(page_capacity = 256) () =
  let dc =
    Dc.create
      {
        Dc.page_capacity;
        cache_pages = 64;
        sync_policy;
        tc_reset_mode = Dc.Selective;
        debug_checks = true;
      }
  in
  Dc.create_table dc ~name:"t" ~versioned:false;
  Dc.create_table dc ~name:"vt" ~versioned:true;
  dc

let req ?(tc = tc1) l op = { Wire.tc; lsn = lsn l; part = 0; op }

let insert ?tc ?(table = "t") l key value =
  req ?tc l (Op.Insert { table; key; value })

let update ?tc ?(table = "t") l key value =
  req ?tc l (Op.Update { table; key; value })

let read ?tc ?(table = "t") key =
  req ?tc 0 (Op.Read { table; key; mode = Op.Own })

let value_of dc r =
  match (Dc.perform dc r).Wire.result with Wire.Value v -> v | _ -> None

let eosl dc l = ignore (Dc.control dc (Wire.End_of_stable_log { tc = tc1; eosl = lsn l }))

let lwm dc l = ignore (Dc.control dc (Wire.Low_water_mark { tc = tc1; lwm = lsn l }))

let test_duplicate_absorbed () =
  let dc = mk () in
  let r = insert 5 "k" "v" in
  let rep1 = Dc.perform dc r in
  let rep2 = Dc.perform dc r in
  Alcotest.(check bool) "first done" true (rep1.Wire.result = Wire.Done);
  Alcotest.(check bool) "dup done" true (rep2.Wire.result = Wire.Done);
  Alcotest.(check int) "one absorption" 1 (Dc.dup_absorbed dc);
  Alcotest.(check (option string)) "applied once" (Some "v")
    (value_of dc (read "k"))

let test_duplicate_preserves_reply () =
  let dc = mk () in
  ignore (Dc.perform dc (insert 1 "k" "v0"));
  let r = update 2 "k" "v1" in
  let rep1 = Dc.perform dc r in
  let rep2 = Dc.perform dc r in
  Alcotest.(check (option string)) "prior on first" (Some "v0") rep1.Wire.prior;
  Alcotest.(check (option string)) "memoized prior on resend" (Some "v0")
    rep2.Wire.prior;
  Alcotest.(check (option string)) "not double-applied" (Some "v1")
    (value_of dc (read "k"))

let test_out_of_order_arrival () =
  let dc = mk () in
  (* higher-LSN operation reaches the page first *)
  ignore (Dc.perform dc (insert 20 "b" "later"));
  ignore (Dc.perform dc (insert 10 "a" "earlier"));
  Alcotest.(check (option string)) "both applied" (Some "earlier")
    (value_of dc (read "a"));
  (* resends of both are still absorbed *)
  ignore (Dc.perform dc (insert 20 "b" "later"));
  ignore (Dc.perform dc (insert 10 "a" "earlier"));
  Alcotest.(check int) "both dups absorbed" 2 (Dc.dup_absorbed dc)

let test_causality_blocks_flush () =
  let dc = mk () in
  ignore (Dc.perform dc (insert 5 "k" "v"));
  (* EOSL has not covered lsn 5: the page must not reach the disk *)
  Dc.flush_all dc;
  Alcotest.(check bool) "dirty page remains" true
    (Cache.dirty_pages (Dc.cache dc) <> []);
  eosl dc 5;
  Dc.flush_all dc;
  Alcotest.(check (list Alcotest.reject)) "all flushed" []
    (List.map (fun _ -> assert false) (Cache.dirty_pages (Dc.cache dc)))

let test_sync_policy_stall () =
  let dc = mk ~sync_policy:Dc.Stall_until_lwm () in
  ignore (Dc.perform dc (insert 5 "k" "v"));
  eosl dc 5;
  (* causality satisfied, but the {LSNin} set is non-empty: option 1
     refuses the flush until the low-water mark covers it *)
  Dc.flush_all dc;
  Alcotest.(check bool) "stalled" true (Cache.dirty_pages (Dc.cache dc) <> []);
  lwm dc 5;
  Dc.flush_all dc;
  Alcotest.(check bool) "flushes after LWM" true
    (Cache.dirty_pages (Dc.cache dc) = [])

let test_sync_policy_bounded () =
  let dc = mk ~sync_policy:(Dc.Bounded 2) () in
  ignore (Dc.perform dc (insert 5 "a" "v"));
  ignore (Dc.perform dc (insert 6 "b" "v"));
  ignore (Dc.perform dc (insert 7 "c" "v"));
  eosl dc 7;
  (* three members > bound 2 on the single leaf *)
  Dc.flush_all dc;
  Alcotest.(check bool) "bounded stalls at 3" true
    (Cache.dirty_pages (Dc.cache dc) <> []);
  lwm dc 5;
  (* now two members remain: within bound *)
  Dc.flush_all dc;
  Alcotest.(check bool) "flushes within bound" true
    (Cache.dirty_pages (Dc.cache dc) = [])

let test_checkpoint_grant () =
  let dc = mk () in
  ignore (Dc.perform dc (insert 5 "k" "v"));
  (* cannot advance past an unflushable page (EOSL still zero) *)
  (match Dc.control dc (Wire.Checkpoint { tc = tc1; new_rssp = lsn 6 }) with
  | Wire.Checkpoint_done { granted } ->
    Alcotest.(check bool) "not granted" false granted
  | Wire.Ack -> Alcotest.fail "wrong reply");
  eosl dc 5;
  lwm dc 5;
  (match Dc.control dc (Wire.Checkpoint { tc = tc1; new_rssp = lsn 6 }) with
  | Wire.Checkpoint_done { granted } ->
    Alcotest.(check bool) "granted once stable" true granted
  | Wire.Ack -> Alcotest.fail "wrong reply")

let test_versioned_visibility_at_dc () =
  let dc = mk () in
  ignore (Dc.perform dc (insert 1 ~table:"vt" "k" "v0"));
  ignore
    (Dc.perform dc (req 2 (Op.Commit_versions { table = "vt"; keys = [ "k" ] })));
  ignore (Dc.perform dc (update 3 ~table:"vt" "k" "v1"));
  let get mode =
    match
      (Dc.perform dc (req 0 (Op.Read { table = "vt"; key = "k"; mode })))
        .Wire.result
    with
    | Wire.Value v -> v
    | _ -> None
  in
  Alcotest.(check (option string)) "own sees new" (Some "v1") (get Op.Own);
  Alcotest.(check (option string)) "dirty sees new" (Some "v1") (get Op.Dirty);
  Alcotest.(check (option string)) "committed sees before" (Some "v0")
    (get Op.Committed);
  ignore
    (Dc.perform dc (req 4 (Op.Abort_versions { table = "vt"; keys = [ "k" ] })));
  Alcotest.(check (option string)) "abort restores" (Some "v0") (get Op.Own)

let test_versioned_delete_tombstone () =
  let dc = mk () in
  ignore (Dc.perform dc (insert 1 ~table:"vt" "k" "v0"));
  ignore
    (Dc.perform dc (req 2 (Op.Commit_versions { table = "vt"; keys = [ "k" ] })));
  ignore (Dc.perform dc (req 3 (Op.Delete { table = "vt"; key = "k" })));
  let get mode =
    match
      (Dc.perform dc (req 0 (Op.Read { table = "vt"; key = "k"; mode })))
        .Wire.result
    with
    | Wire.Value v -> v
    | _ -> None
  in
  Alcotest.(check (option string)) "own sees tombstone" None (get Op.Own);
  Alcotest.(check (option string)) "committed still sees old" (Some "v0")
    (get Op.Committed);
  ignore
    (Dc.perform dc (req 4 (Op.Commit_versions { table = "vt"; keys = [ "k" ] })));
  Alcotest.(check (option string)) "commit removes record" None
    (get Op.Committed);
  Alcotest.(check int) "record physically gone" 0
    (List.length (Dc.dump_table dc "vt"))

let test_multi_key_same_page () =
  let dc = mk () in
  ignore (Dc.perform dc (insert 1 ~table:"vt" "a" "1"));
  ignore (Dc.perform dc (insert 2 ~table:"vt" "b" "2"));
  (* both keys on one page; one housekeeping op must strip both *)
  let r = req 3 (Op.Commit_versions { table = "vt"; keys = [ "a"; "b" ] }) in
  ignore (Dc.perform dc r);
  List.iter
    (fun (_, record) ->
      Alcotest.(check bool) "before stripped" true
        (record.Stored_record.before = Stored_record.Absent))
    (Dc.dump_table dc "vt");
  (* and its duplicate is fully absorbed *)
  ignore (Dc.perform dc r);
  Alcotest.(check bool) "dup absorbed" true (Dc.dup_absorbed dc >= 2)

let test_dc_recovery_preserves_splits () =
  let dc = mk ~page_capacity:128 () in
  for i = 1 to 200 do
    ignore
      (Dc.perform dc (insert i (Printf.sprintf "k%04d" i) "vvvvvvvvvvvv"))
  done;
  eosl dc 200;
  lwm dc 200;
  Alcotest.(check bool) "splits happened" true (Dc.splits dc > 0);
  Dc.flush_all dc;
  Dc.crash dc;
  Dc.recover dc;
  (match Dc.check dc with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("ill-formed after recover: " ^ m));
  Alcotest.(check int) "all records stable" 200
    (List.length (Dc.dump_table dc "t"))

let test_dc_recovery_empty_redo_target () =
  (* Records never flushed: recovery rebuilds well-formed (possibly
     empty) structures; a redo resend then repopulates them. *)
  let dc = mk ~page_capacity:128 () in
  for i = 1 to 120 do
    ignore (Dc.perform dc (insert i (Printf.sprintf "k%04d" i) "vvvvvvvv"))
  done;
  Dc.crash dc;
  Dc.recover dc;
  (match Dc.check dc with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* resend everything with original ids *)
  for i = 1 to 120 do
    ignore (Dc.perform dc (insert i (Printf.sprintf "k%04d" i) "vvvvvvvv"))
  done;
  Alcotest.(check int) "repopulated exactly once" 120
    (List.length (Dc.dump_table dc "t"))

let test_self_checkpoint_truncates_dc_log () =
  let dc = mk ~page_capacity:128 () in
  for i = 1 to 200 do
    ignore (Dc.perform dc (insert i (Printf.sprintf "k%04d" i) "vvvvvvvvvvvv"))
  done;
  eosl dc 200;
  lwm dc 200;
  let records_before = Dc.dc_log_records dc in
  Alcotest.(check bool) "dc log populated" true (records_before > 0);
  Alcotest.(check bool) "self checkpoint" true (Dc.self_checkpoint dc);
  Alcotest.(check int) "dc log truncated" 0 (Dc.dc_log_records dc);
  (* recovery from master alone still works *)
  Dc.crash dc;
  Dc.recover dc;
  Alcotest.(check int) "state intact" 200 (List.length (Dc.dump_table dc "t"))

let test_unknown_table () =
  let dc = mk () in
  match (Dc.perform dc (insert 1 ~table:"nope" "k" "v")).Wire.result with
  | Wire.Failed _ -> ()
  | _ -> Alcotest.fail "expected failure"

let suite =
  [
    Alcotest.test_case "duplicate absorbed" `Quick test_duplicate_absorbed;
    Alcotest.test_case "duplicate preserves reply" `Quick
      test_duplicate_preserves_reply;
    Alcotest.test_case "out-of-order arrival" `Quick test_out_of_order_arrival;
    Alcotest.test_case "causality blocks flush" `Quick
      test_causality_blocks_flush;
    Alcotest.test_case "sync policy: stall-until-LWM" `Quick
      test_sync_policy_stall;
    Alcotest.test_case "sync policy: bounded" `Quick test_sync_policy_bounded;
    Alcotest.test_case "checkpoint grant" `Quick test_checkpoint_grant;
    Alcotest.test_case "versioned visibility" `Quick
      test_versioned_visibility_at_dc;
    Alcotest.test_case "versioned delete tombstone" `Quick
      test_versioned_delete_tombstone;
    Alcotest.test_case "multi-key op, one page" `Quick test_multi_key_same_page;
    Alcotest.test_case "recovery preserves splits" `Quick
      test_dc_recovery_preserves_splits;
    Alcotest.test_case "recovery of never-flushed data" `Quick
      test_dc_recovery_empty_redo_target;
    Alcotest.test_case "self checkpoint truncates DC-log" `Quick
      test_self_checkpoint_truncates_dc_log;
    Alcotest.test_case "unknown table fails" `Quick test_unknown_table;
  ]

(* --- further protocol edges ------------------------------------------- *)

let test_version_lifecycle_edges () =
  let dc = mk () in
  (* insert, delete, reinsert within one "transaction"'s version scope *)
  ignore (Dc.perform dc (insert 1 ~table:"vt" "k" "v1"));
  ignore (Dc.perform dc (req 2 (Op.Delete { table = "vt"; key = "k" })));
  ignore (Dc.perform dc (insert 3 ~table:"vt" "k" "v2"));
  let committed_view () =
    match
      (Dc.perform dc
         (req 0 (Op.Read { table = "vt"; key = "k"; mode = Op.Committed })))
        .Wire.result
    with
    | Wire.Value v -> v
    | _ -> None
  in
  Alcotest.(check (option string))
    "never-committed key invisible to committed readers" None
    (committed_view ());
  (* abort: the whole lifecycle disappears *)
  ignore
    (Dc.perform dc (req 4 (Op.Abort_versions { table = "vt"; keys = [ "k" ] })));
  Alcotest.(check int) "record gone after abort" 0
    (List.length (Dc.dump_table dc "vt"))

let test_double_update_keeps_first_before () =
  let dc = mk () in
  ignore (Dc.perform dc (insert 1 ~table:"vt" "k" "v0"));
  ignore
    (Dc.perform dc (req 2 (Op.Commit_versions { table = "vt"; keys = [ "k" ] })));
  ignore (Dc.perform dc (update 3 ~table:"vt" "k" "v1"));
  ignore (Dc.perform dc (update 4 ~table:"vt" "k" "v2"));
  (match Dc.dump_table dc "vt" with
  | [ (_, r) ] ->
    Alcotest.(check bool) "before is the committed v0" true
      (r.Stored_record.before = Stored_record.Value_before "v0")
  | _ -> Alcotest.fail "one record expected");
  ignore
    (Dc.perform dc (req 5 (Op.Abort_versions { table = "vt"; keys = [ "k" ] })));
  let own =
    match
      (Dc.perform dc (req 0 (Op.Read { table = "vt"; key = "k"; mode = Op.Own })))
        .Wire.result
    with
    | Wire.Value v -> v
    | _ -> None
  in
  Alcotest.(check (option string)) "abort restores the first before" (Some "v0")
    own

let test_memo_truncated_at_checkpoint () =
  let dc = mk () in
  ignore (Dc.perform dc (insert 5 "k" "v"));
  eosl dc 5;
  lwm dc 5;
  (match Dc.control dc (Wire.Checkpoint { tc = tc1; new_rssp = lsn 6 }) with
  | Wire.Checkpoint_done { granted } -> Alcotest.(check bool) "granted" true granted
  | Wire.Ack -> Alcotest.fail "wrong reply");
  (* a resend below the RSSP violates the terminated contract; the DC
     still answers (bare ack) and must not re-apply *)
  let r = Dc.perform dc (insert 5 "k" "SHOULD-NOT-APPLY") in
  Alcotest.(check bool) "acked" true (r.Wire.result = Wire.Done);
  Alcotest.(check (option string)) "not reapplied" (Some "v")
    (value_of dc (read "k"))

let test_bounded_zero_equals_stall () =
  let dc = mk ~sync_policy:(Dc.Bounded 0) () in
  ignore (Dc.perform dc (insert 5 "k" "v"));
  eosl dc 5;
  Dc.flush_all dc;
  Alcotest.(check bool) "bounded 0 stalls like option 1" true
    (Cache.dirty_pages (Dc.cache dc) <> []);
  lwm dc 5;
  Dc.flush_all dc;
  Alcotest.(check bool) "flushes after LWM" true
    (Cache.dirty_pages (Dc.cache dc) = [])

let test_suggested_rssp_monotone_under_flush () =
  let dc = mk ~page_capacity:128 () in
  for i = 1 to 100 do
    ignore (Dc.perform dc (insert i (Printf.sprintf "k%04d" i) "vvvv"))
  done;
  eosl dc 100;
  lwm dc 100;
  let s1 = Dc.suggested_rssp dc ~tc:tc1 in
  Dc.flush_all dc;
  let s2 = Dc.suggested_rssp dc ~tc:tc1 in
  Alcotest.(check bool) "monotone" true Lsn.(s2 >= s1);
  Alcotest.(check int) "fully flushed suggestion = eosl+1" 101
    (Lsn.to_int s2)

let suite =
  suite
  @ [
      Alcotest.test_case "version lifecycle edges" `Quick
        test_version_lifecycle_edges;
      Alcotest.test_case "double update keeps first before" `Quick
        test_double_update_keeps_first_before;
      Alcotest.test_case "memo truncated at checkpoint" `Quick
        test_memo_truncated_at_checkpoint;
      Alcotest.test_case "Bounded 0 = stall policy" `Quick
        test_bounded_zero_equals_stall;
      Alcotest.test_case "suggested RSSP monotone" `Quick
        test_suggested_rssp_monotone_under_flush;
    ]
