(* The layered store's reconstruction-equivalence property: for any
   logged operation stream, [reconstruct] at any sampled LSN equals a
   pure prefix replay of the same stream — with generator-chosen seal
   and compaction points interleaved, a mid-compaction crash plan, and a
   full store crash + re-absorb thrown in.  This is the law that makes
   the store a safe substitute for retained log history. *)

module Layer = Untx_layer.Layer
module Op = Untx_msg.Op
module Tc_id = Untx_util.Tc_id
module Lsn = Untx_util.Lsn
module Fault = Untx_fault.Fault

let test prop = Helpers.qcheck_test prop

(* One generated step: a write against a small key space, plus the
   maintenance the driver performs after it. *)
type step = {
  s_key : int;
  s_act : int;  (** 0 = insert, 1 = update, 2 = delete *)
  s_maint : int;  (** 0 = nothing, 1 = seal, 2 = compact, 3 = crash *)
}

type scenario = { steps : step list; crashed_compaction : int }

let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 10 80 in
    let* steps =
      list_repeat n
        (let* s_key = int_bound 6 in
         let* s_act = int_bound 2 in
         let* s_maint =
           frequency [ (10, return 0); (3, return 1); (2, return 2); (1, return 3) ]
         in
         return { s_key; s_act; s_maint })
    in
    let* crashed_compaction = int_range 0 3 in
    return { steps; crashed_compaction })

let pp_step s =
  Printf.sprintf "k%d/%s%s" s.s_key
    (match s.s_act with 0 -> "ins" | 1 -> "upd" | _ -> "del")
    (match s.s_maint with
    | 1 -> "+seal"
    | 2 -> "+compact"
    | 3 -> "+crash"
    | _ -> "")

let scenario_arb =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "crash-compaction=%d [%s]" s.crashed_compaction
        (String.concat ";" (List.map pp_step s.steps)))
    scenario_gen

(* The pure oracle: DC mutation semantics over an unversioned table.
   Failed operations (insert-on-present, update/delete-on-absent) are
   logged but change nothing — exactly what the store must mirror. *)
let oracle_apply present op =
  match op with
  | Op.Insert { key; value; _ } ->
    if List.mem_assoc key present then (present, None)
    else ((key, value) :: present, Some (Some value))
  | Op.Update { key; value; _ } ->
    if List.mem_assoc key present then
      ((key, value) :: List.remove_assoc key present, Some (Some value))
    else (present, None)
  | Op.Delete { key; _ } ->
    if List.mem_assoc key present then
      (List.remove_assoc key present, Some None)
    else (present, None)
  | _ -> (present, None)

let prop_reconstruct_equals_prefix_replay =
  QCheck.Test.make ~count:60
    ~name:"reconstruct equals oracle prefix replay at every sampled LSN"
    scenario_arb (fun sc ->
      let store =
        Layer.create ~l0_seal_ops:5 ~compact_runs:3 ~writer:(Tc_id.of_int 1)
          ~versioned:(fun _ -> false) ()
      in
      (* the synthetic stable log the store re-reads after any crash *)
      let log = ref [] (* (lsn, op), newest first *) in
      let absorb_all () =
        (* absorb auto-compacts; an injected mid-compaction crash there
           is atomic-or-absent just like an explicit one *)
        try
          Layer.absorb store ~upto:(Lsn.of_int (List.length !log)) (fun emit ->
              List.iter (fun (l, op) -> emit l op) (List.rev !log))
        with Fault.Injected_crash _ -> ()
      in
      (* timeline.(k) = (lsn, visible) changes for key k, newest first *)
      let timeline = Hashtbl.create 16 in
      let present = ref [] in
      let compactions = ref 0 in
      Fault.arm [ Fault.crash_at Layer.p_compact_mid sc.crashed_compaction ];
      List.iteri
        (fun i step ->
          let key = Printf.sprintf "k%d" step.s_key in
          let op =
            match step.s_act with
            | 0 -> Op.Insert { table = "t"; key; value = Printf.sprintf "v%d" i }
            | 1 -> Op.Update { table = "t"; key; value = Printf.sprintf "v%d" i }
            | _ -> Op.Delete { table = "t"; key }
          in
          let lsn = Lsn.of_int (i + 1) in
          log := (lsn, op) :: !log;
          let next, change = oracle_apply !present op in
          present := next;
          (match change with
          | Some visible ->
            Hashtbl.replace timeline key
              ((lsn, visible)
              :: Option.value ~default:[] (Hashtbl.find_opt timeline key))
          | None -> ());
          absorb_all ();
          match step.s_maint with
          | 1 -> Layer.seal store
          | 2 -> (
            incr compactions;
            try Layer.compact ~all:true store
            with Fault.Injected_crash _ ->
              (* atomic-or-absent: the merge is lost, the store keeps
                 serving, and a later compaction covers the runs *)
              ())
          | 3 ->
            Layer.crash store;
            absorb_all ()
          | _ -> ())
        sc.steps;
      Fault.disarm ();
      let max_lsn = List.length sc.steps in
      (* every LSN is "sampled": small streams make it affordable *)
      List.iter
        (fun at ->
          Hashtbl.iter
            (fun key changes ->
              let expected =
                List.fold_left
                  (fun acc (l, v) ->
                    match acc with
                    | Some _ -> acc
                    | None -> if Lsn.to_int l <= at then Some v else None)
                  None changes
                |> Option.value ~default:None
              in
              let got =
                Layer.reconstruct store ~table:"t" ~key ~at:(Lsn.of_int at)
              in
              if got <> expected then
                QCheck.Test.fail_reportf
                  "k=%s at=%d: reconstruct=%s oracle=%s" key at
                  (Option.value ~default:"None" got)
                  (Option.value ~default:"None" expected))
            timeline)
        (List.init (max_lsn + 1) Fun.id);
      (* and the store's current view agrees with the oracle's present *)
      let current = ref [] in
      Layer.iter_current store (fun ~table:_ ~key record ->
          match Untx_dc.Stored_record.current record with
          | Some v -> current := (key, v) :: !current
          | None -> ());
      List.sort compare !current = List.sort compare !present)

let suite = [ test prop_reconstruct_equals_prefix_replay ]
