(* Warm-standby replication: shipping parity, durability gating,
   failover/promotion, rejoin catch-up, and the truncation floor. *)

module Deploy = Untx_cloud.Deploy
module Repl = Untx_repl.Repl
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Lsn = Untx_util.Lsn
module Instrument = Untx_util.Instrument
module Metrics = Untx_obs.Metrics
module Audit = Untx_audit.Audit

let ok = function
  | `Ok v -> v
  | `Blocked -> Alcotest.fail "blocked"
  | `Fail m -> Alcotest.fail m

let repl_deploy ?counters ?durability ~parts ~replicas () =
  let d = Deploy.create ?counters ?durability () in
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  let dcs = List.init parts (Printf.sprintf "dc%d") in
  List.iter (fun n -> ignore (Deploy.add_dc d ~name:n Dc.default_config)) dcs;
  Deploy.add_partitioned_table d ~replicas ~name:"t" ~versioned:false ~dcs ();
  (d, tc)

let commit_one tc ~key ~value =
  let txn = Tc.begin_txn tc in
  (match Tc.update tc txn ~table:"t" ~key ~value with
  | `Ok () -> ()
  | `Blocked -> Alcotest.fail "blocked"
  | `Fail _ -> ok (Tc.insert tc txn ~table:"t" ~key ~value));
  ok (Tc.commit tc txn)

let fill tc ?(prefix = "k") ?(value = "v") n =
  List.iter
    (fun i -> commit_one tc ~key:(Printf.sprintf "%s%03d" prefix i) ~value)
    (List.init n Fun.id)

let check_parity d ~dc:dcn =
  let primary = Deploy.dc d dcn in
  List.iter
    (fun sbn ->
      let sb = Repl.Standby.dc (Deploy.standby d sbn) in
      List.iter
        (fun tbl ->
          Alcotest.(check bool)
            (Printf.sprintf "%s matches %s on %s" sbn dcn tbl)
            true
            (Dc.dump_table sb tbl = Dc.dump_table primary tbl))
        (Dc.table_names primary))
    (Deploy.replicas d ~dc:dcn)

let test_shipping_parity () =
  let d, tc = repl_deploy ~parts:2 ~replicas:2 () in
  Alcotest.(check (list string)) "dc0 standbys" [ "dc0~r0"; "dc0~r1" ]
    (Deploy.replicas d ~dc:"dc0");
  fill tc 40;
  Deploy.quiesce d;
  List.iter (fun dcn -> check_parity d ~dc:dcn) [ "dc0"; "dc1" ]

let test_quorum_gates_commit () =
  (* Under Quorum 1 every group-commit force waits for a standby ack, so
     after any commit returns, each primary's confirmed applied floor
     already covers the whole stable log — no settle needed. *)
  let d, tc =
    repl_deploy ~durability:(Repl.Quorum 1) ~parts:2 ~replicas:1 ()
  in
  fill tc 20;
  let m = Deploy.manager d ~tc:"tc1" in
  List.iter
    (fun dcn ->
      List.iter
        (fun sbn ->
          Alcotest.(check int)
            (sbn ^ " lag zero at commit ack")
            0
            (Repl.Manager.lag m ~name:sbn))
        (Deploy.replicas d ~dc:dcn))
    [ "dc0"; "dc1" ]

let test_quorum_without_replicas_is_noop () =
  (* Quorum durability on a table with no standbys must not wedge the
     commit path: the quorum clamps to the replicas that exist. *)
  let d, tc = repl_deploy ~durability:(Repl.Quorum 2) ~parts:2 ~replicas:0 () in
  fill tc 10;
  Deploy.quiesce d;
  Alcotest.(check (option string)) "committed" (Some "v")
    (Tc.read_committed tc ~table:"t" ~key:"k000")

let test_failover_promotes_and_serves () =
  let counters = Instrument.create () in
  Metrics.set_timed counters true;
  let d, tc = repl_deploy ~counters ~parts:2 ~replicas:2 () in
  let oracle = Hashtbl.create 64 in
  let put key value =
    commit_one tc ~key ~value;
    Hashtbl.replace oracle key value
  in
  List.iter (fun i -> put (Printf.sprintf "a%03d" i) "before") (List.init 30 Fun.id);
  Deploy.fail_over d ~dc:"dc0";
  Alcotest.(check int) "one promotion" 1
    (Instrument.get counters "repl.promotions");
  Alcotest.(check int) "survivor keeps shadowing" 1
    (List.length (Deploy.replicas d ~dc:"dc0"));
  (* every pre-failover commit is readable off the promoted standby *)
  Hashtbl.iter
    (fun key value ->
      Alcotest.(check (option string)) (key ^ " survives failover")
        (Some value)
        (Tc.read_committed tc ~table:"t" ~key))
    oracle;
  (* and the deployment keeps committing afterwards *)
  List.iter (fun i -> put (Printf.sprintf "b%03d" i) "after") (List.init 30 Fun.id);
  Deploy.quiesce d;
  let expected =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let report = Audit.run_deploy d ~tc:"tc1" ~table:"t" ~expected in
  Alcotest.(check (list string)) "audit clean" [] report.Audit.violations;
  Alcotest.(check bool) "promotion timed" true
    (List.mem "repl.promote_ns" (Metrics.hist_names counters))

let test_failover_picks_most_caught_up () =
  let d, tc = repl_deploy ~parts:1 ~replicas:2 () in
  fill tc 10;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  (* freeze r0 at a prefix, let r1 follow the rest of the stream *)
  Repl.Manager.detach m ~name:"dc0~r0";
  fill tc ~prefix:"late" 20;
  Deploy.quiesce d;
  let laggard = Deploy.standby d "dc0~r0" in
  let leader = Deploy.standby d "dc0~r1" in
  Alcotest.(check bool) "r1 is ahead" true
    Lsn.(
      Repl.Standby.applied laggard ~tc:(Tc.id tc)
      < Repl.Standby.applied leader ~tc:(Tc.id tc));
  Deploy.fail_over d ~dc:"dc0";
  (* the caught-up standby was promoted; the laggard keeps shadowing *)
  Alcotest.(check (list string)) "laggard left behind" [ "dc0~r0" ]
    (Deploy.replicas d ~dc:"dc0");
  Alcotest.(check (option string)) "late commits survived" (Some "v")
    (Tc.read_committed tc ~table:"t" ~key:"late000")

let test_detach_reattach_catches_up () =
  let d, tc = repl_deploy ~parts:1 ~replicas:1 () in
  fill tc 10;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
  let applied_before =
    Repl.Standby.applied (Deploy.standby d sbn) ~tc:(Tc.id tc)
  in
  Repl.Manager.detach m ~name:sbn;
  fill tc ~prefix:"gap" 25;
  Deploy.quiesce d;
  (* detached: the standby froze at its prefix *)
  Alcotest.(check bool) "frozen while detached" true
    (Lsn.equal applied_before
       (Repl.Standby.applied (Deploy.standby d sbn) ~tc:(Tc.id tc)));
  Repl.Manager.reattach m ~name:sbn;
  Deploy.settle_replicas d;
  check_parity d ~dc:"dc0"

let test_crash_standby_rejoins () =
  let d, tc = repl_deploy ~parts:2 ~replicas:1 () in
  fill tc 20;
  Deploy.quiesce d;
  Deploy.crash_standby d "dc0~r0";
  fill tc ~prefix:"post" 20;
  Deploy.quiesce d;
  List.iter (fun dcn -> check_parity d ~dc:dcn) [ "dc0"; "dc1" ]

let test_truncation_respects_lagging_replica () =
  let d, tc = repl_deploy ~parts:1 ~replicas:1 () in
  fill tc 10;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
  let frozen = Repl.Standby.applied (Deploy.standby d sbn) ~tc:(Tc.id tc) in
  Repl.Manager.detach m ~name:sbn;
  fill tc ~prefix:"trunc" 40;
  Deploy.quiesce d;
  Dc.flush_all (Deploy.dc d "dc0");
  let rec grant tries =
    if Tc.checkpoint tc then ()
    else if tries > 0 then begin
      Deploy.quiesce d;
      Dc.flush_all (Deploy.dc d "dc0");
      grant (tries - 1)
    end
  in
  grant 4;
  (* the checkpoint advanced the redo-scan start point well past the
     detached replica's cursor — but log *truncation* is capped by the
     replica floor, which the catch-up below depends on *)
  Alcotest.(check bool) "checkpoint advanced past the replica" true
    Lsn.(Tc.rssp tc > Lsn.next frozen);
  (* reattaching finds every record it missed still in the log *)
  Repl.Manager.reattach m ~name:sbn;
  Deploy.settle_replicas d;
  check_parity d ~dc:"dc0"

(* Drive a *granted* checkpoint: the lwm only covers flushed state, so
   flush the primary and retry until every DC grants. *)
let grant_checkpoint d tc ~dc:dcn =
  Dc.flush_all (Deploy.dc d dcn);
  let rec grant tries =
    if Tc.checkpoint tc then ()
    else if tries > 0 then begin
      Deploy.quiesce d;
      Dc.flush_all (Deploy.dc d dcn);
      grant (tries - 1)
    end
    else Alcotest.fail "checkpoint never granted"
  in
  grant 4

(* The repro_gap scenario as a unit test: a detached laggard whose
   cursor fell below the redo-scan start point is promoted, and the
   default catch-up re-ships the retained suffix before installation —
   every acked commit survives. *)
let test_failover_catches_laggard_up () =
  let counters = Instrument.create () in
  let d, tc = repl_deploy ~counters ~parts:1 ~replicas:1 () in
  fill tc 10;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
  let frozen = Repl.Standby.applied (Deploy.standby d sbn) ~tc:(Tc.id tc) in
  Repl.Manager.detach m ~name:sbn;
  fill tc ~prefix:"gap" 40;
  Deploy.quiesce d;
  grant_checkpoint d tc ~dc:"dc0";
  Alcotest.(check bool) "rssp passed the laggard" true
    Lsn.(Tc.rssp tc > Lsn.next frozen);
  Alcotest.(check bool) "laggard still eligible (lease holds the log)" true
    (Repl.Manager.promotion_eligible m ~name:sbn);
  Deploy.fail_over d ~dc:"dc0";
  Alcotest.(check bool) "catch-up re-shipped the gap" true
    (Instrument.get counters "repl.catchup_ops" > 0);
  List.iter
    (fun i ->
      let key = Printf.sprintf "gap%03d" i in
      Alcotest.(check (option string)) (key ^ " survives") (Some "v")
        (Tc.read_committed tc ~table:"t" ~key))
    (List.init 40 Fun.id)

(* Same scenario with catch-up disabled: promotion installs the frozen
   laggard and leans entirely on the TC's redo, which must legally
   start below the redo-scan start point (the retained suffix covers
   it).  This pins the tc.ml redo-start fix in isolation. *)
let test_failover_below_rssp_without_catchup () =
  let counters = Instrument.create () in
  let d, tc = repl_deploy ~counters ~parts:1 ~replicas:1 () in
  fill tc 10;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
  let frozen = Repl.Standby.applied (Deploy.standby d sbn) ~tc:(Tc.id tc) in
  Repl.Manager.detach m ~name:sbn;
  fill tc ~prefix:"gap" 40;
  Deploy.quiesce d;
  grant_checkpoint d tc ~dc:"dc0";
  Alcotest.(check bool) "promotion cursor sits below the rssp" true
    Lsn.(Lsn.next frozen < Tc.rssp tc);
  Deploy.fail_over ~catch_up:false d ~dc:"dc0";
  Alcotest.(check int) "nothing was re-shipped" 0
    (Instrument.get counters "repl.catchup_ops");
  Alcotest.(check bool) "redo started below the rssp" true
    (Instrument.get counters "tc.redo_below_rssp" > 0);
  List.iter
    (fun i ->
      let key = Printf.sprintf "gap%03d" i in
      Alcotest.(check (option string)) (key ^ " survives") (Some "v")
        (Tc.read_committed tc ~table:"t" ~key))
    (List.init 40 Fun.id)

(* Retention-lease expiry: each granted checkpoint burns one lease
   unit; past the budget the replica is demoted to rebuild-required —
   it refuses reattach, fail_over refuses to promote it, and a cold
   restart still serves every acked commit (honest unavailability, not
   loss). *)
let test_lease_expiry_demotes_and_refuses () =
  let counters = Instrument.create () in
  let d, tc = repl_deploy ~counters ~parts:1 ~replicas:1 () in
  fill tc 10;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
  Repl.Manager.detach m ~name:sbn;
  (* lease_checkpoints = 4: four granted checkpoints hold the floor,
     the fifth consult expires the lease *)
  List.iter
    (fun round ->
      fill tc ~prefix:(Printf.sprintf "r%d." round) 8;
      Deploy.quiesce d;
      grant_checkpoint d tc ~dc:"dc0")
    (List.init 5 Fun.id);
  Alcotest.(check int) "one lease expired" 1
    (Instrument.get counters "repl.lease_expirations");
  Alcotest.(check bool) "demoted to rebuild-required" true
    (Repl.Manager.state_of m ~name:sbn = Repl.Manager.Rebuild_required);
  Alcotest.(check bool) "reattach refused" true
    (try
       Repl.Manager.reattach m ~name:sbn;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "promotion refused" true
    (try
       Deploy.fail_over d ~dc:"dc0";
       false
     with Deploy.Promotion_refused _ -> true);
  Alcotest.(check int) "refusal counted" 1
    (Instrument.get counters "repl.promote_refusals");
  (* the operator fallback: cold-restart the primary — zero loss *)
  Deploy.crash_dc d "dc0";
  List.iter
    (fun round ->
      let key = Printf.sprintf "r%d.000" round in
      Alcotest.(check (option string)) (key ^ " survives cold restart")
        (Some "v")
        (Tc.read_committed tc ~table:"t" ~key))
    (List.init 5 Fun.id)

(* A standby that crashes after truncation passed its rejoin cursor
   (zero) cannot re-ship the missing prefix: it must come back
   rebuild-required, not attached-with-a-hole. *)
let test_crashed_standby_past_truncation_needs_rebuild () =
  let counters = Instrument.create () in
  let d, tc = repl_deploy ~counters ~parts:1 ~replicas:1 () in
  fill tc 30;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
  (* the replica is caught up, so its floor lets truncation advance *)
  grant_checkpoint d tc ~dc:"dc0";
  Alcotest.(check bool) "log head truncated" true
    Lsn.(Tc.log_retained_from tc > Lsn.next Lsn.zero);
  Deploy.crash_standby d sbn;
  Alcotest.(check bool) "rejoin demoted to rebuild-required" true
    (Repl.Manager.state_of m ~name:sbn = Repl.Manager.Rebuild_required);
  Alcotest.(check bool) "rebuild demotion counted" true
    (Instrument.get counters "repl.rebuild_required" > 0);
  Alcotest.(check (list string)) "not among attached replicas" []
    (Deploy.attached_replicas d ~dc:"dc0")

let test_lag_histogram_recorded () =
  let counters = Instrument.create () in
  let d, tc = repl_deploy ~counters ~parts:1 ~replicas:1 () in
  fill tc 10;
  Deploy.quiesce d;
  Alcotest.(check bool) "repl.lag_lsn histogram exists" true
    (List.mem "repl.lag_lsn" (Metrics.hist_names counters));
  Alcotest.(check bool) "ship bytes counted" true
    (Instrument.get counters "repl.ship_bytes" > 0);
  ignore d

let test_add_replica_later_catches_up () =
  (* A standby minted after the workload must bootstrap from the stable
     log alone — attach ships the whole stream from LSN zero. *)
  let d, tc = repl_deploy ~parts:1 ~replicas:0 () in
  fill tc 25;
  Deploy.quiesce d;
  let name = Deploy.add_replica d ~dc:"dc0" in
  Alcotest.(check (list string)) "registered" [ name ]
    (Deploy.replicas d ~dc:"dc0");
  Deploy.settle_replicas d;
  check_parity d ~dc:"dc0"

(* Retention-lease isolation across TCs: replica state is per
   (manager, standby), and each manager's lease burns only on its OWN
   TC's granted checkpoints.  Two TCs share the primary; the standby is
   detached in both managers; then one TC checkpoints past its lease
   budget.  Its manager must demote the replica — while the other TC's
   manager, which never checkpointed, must still hold the full lease.
   If consults from different TCs each decremented the same lease, the
   second manager would be at zero too. *)
let test_lease_isolated_per_tc () =
  let counters = Instrument.create () in
  let d = Deploy.create ~counters () in
  let tc1 = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  let tc2 = Deploy.add_tc d ~name:"tc2" (Tc.default_config (Tc_id.of_int 2)) in
  ignore (Deploy.add_dc d ~name:"dc0" Dc.default_config);
  Deploy.add_partitioned_table d ~replicas:1 ~name:"t" ~versioned:false
    ~dcs:[ "dc0" ] ();
  (* disjoint updaters on the shared primary *)
  fill tc1 ~prefix:"a" 8;
  fill tc2 ~prefix:"b" 8;
  Deploy.quiesce d;
  Deploy.settle_replicas d;
  let m1 = Deploy.manager d ~tc:"tc1" in
  let m2 = Deploy.manager d ~tc:"tc2" in
  let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
  Deploy.detach_replica d sbn;
  let lease_of m =
    match Repl.Manager.state_of m ~name:sbn with
    | Repl.Manager.Detached { lease } -> lease
    | _ -> -1
  in
  let full_lease = lease_of m2 in
  Alcotest.(check bool) "both managers detached with a full lease" true
    (full_lease > 0 && lease_of m1 = full_lease);
  (* burn tc1's lease: full_lease granted checkpoints hold the floor,
     one more consult expires it *)
  List.iter
    (fun round ->
      fill tc1 ~prefix:(Printf.sprintf "a%d." round) 8;
      Deploy.quiesce d;
      grant_checkpoint d tc1 ~dc:"dc0")
    (List.init (full_lease + 1) Fun.id);
  Alcotest.(check bool) "tc1's manager demoted its replica" true
    (Repl.Manager.state_of m1 ~name:sbn = Repl.Manager.Rebuild_required);
  Alcotest.(check int) "exactly one lease expired" 1
    (Instrument.get counters "repl.lease_expirations");
  Alcotest.(check int) "tc2's lease untouched by tc1's checkpoints"
    full_lease (lease_of m2);
  (* tc2's own granted checkpoint burns exactly one unit of its lease *)
  fill tc2 ~prefix:"b9." 8;
  Deploy.quiesce d;
  grant_checkpoint d tc2 ~dc:"dc0";
  Alcotest.(check int) "one unit burned by tc2's own checkpoint"
    (full_lease - 1) (lease_of m2)

let suite =
  [
    Alcotest.test_case "shipping reaches parity" `Quick test_shipping_parity;
    Alcotest.test_case "quorum gates commit" `Quick test_quorum_gates_commit;
    Alcotest.test_case "quorum without replicas is a no-op" `Quick
      test_quorum_without_replicas_is_noop;
    Alcotest.test_case "failover promotes and serves" `Quick
      test_failover_promotes_and_serves;
    Alcotest.test_case "failover picks most caught-up" `Quick
      test_failover_picks_most_caught_up;
    Alcotest.test_case "detach/reattach catches up" `Quick
      test_detach_reattach_catches_up;
    Alcotest.test_case "crashed standby rejoins" `Quick
      test_crash_standby_rejoins;
    Alcotest.test_case "truncation respects lagging replica" `Quick
      test_truncation_respects_lagging_replica;
    Alcotest.test_case "lag histogram recorded" `Quick
      test_lag_histogram_recorded;
    Alcotest.test_case "late replica bootstraps from log" `Quick
      test_add_replica_later_catches_up;
    Alcotest.test_case "failover catches laggard up" `Quick
      test_failover_catches_laggard_up;
    Alcotest.test_case "failover redoes below rssp without catch-up" `Quick
      test_failover_below_rssp_without_catchup;
    Alcotest.test_case "lease expiry demotes and refuses" `Quick
      test_lease_expiry_demotes_and_refuses;
    Alcotest.test_case "crashed standby past truncation needs rebuild" `Quick
      test_crashed_standby_past_truncation_needs_rebuild;
    Alcotest.test_case "retention leases are per TC" `Quick
      test_lease_isolated_per_tc;
  ]
