(* The branch-fork equivalence property: fork the deployment at a
   generator-chosen stamped LSN, then drive parent and branch with
   independent generated traffic — interleaved with parent compaction,
   pinned history truncation, and branch-DC crashes — and check three
   laws against pure oracles: the parent never sees branch writes, the
   branch tracks its own oracle exactly, and the shared prefix at the
   fork point stays bit-identical on both sides. *)

module Deploy = Untx_cloud.Deploy
module Branch = Untx_branch.Branch
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id

let test prop = Helpers.qcheck_test prop

type pre = { p_key : int; p_act : int; p_stamp : bool }

type post = {
  q_side : int;  (** 0 = parent, 1 = branch *)
  q_key : int;
  q_act : int;  (** 0/1 = upsert, 2 = delete-if-present *)
  q_maint : int;
      (** 0 = nothing, 1 = compact parent, 2 = crash branch DC,
          3 = truncate parent history at stable (pin-clamped) *)
}

type scenario = { pres : pre list; posts : post list; fork_pick : int }

let scenario_gen =
  QCheck.Gen.(
    let* np = int_range 5 20 in
    let* pres =
      list_repeat np
        (let* p_key = int_bound 5 in
         let* p_act = int_bound 2 in
         let* p_stamp = frequency [ (3, return false); (1, return true) ] in
         return { p_key; p_act; p_stamp })
    in
    let* nq = int_range 5 25 in
    let* posts =
      list_repeat nq
        (let* q_side = int_bound 1 in
         let* q_key = int_bound 5 in
         let* q_act = int_bound 2 in
         let* q_maint =
           frequency
             [ (12, return 0); (2, return 1); (1, return 2); (1, return 3) ]
         in
         return { q_side; q_key; q_act; q_maint })
    in
    let* fork_pick = int_bound 1000 in
    return { pres; posts; fork_pick })

let pp_pre s =
  Printf.sprintf "k%d/%d%s" s.p_key s.p_act (if s.p_stamp then "*" else "")

let pp_post s =
  Printf.sprintf "%s:k%d/%d%s"
    (if s.q_side = 0 then "p" else "b")
    s.q_key s.q_act
    (match s.q_maint with
    | 1 -> "+compact"
    | 2 -> "+crash"
    | 3 -> "+truncate"
    | _ -> "")

let scenario_arb =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "fork-pick=%d pre=[%s] post=[%s]" s.fork_pick
        (String.concat ";" (List.map pp_pre s.pres))
        (String.concat ";" (List.map pp_post s.posts)))
    scenario_gen

let keys = List.init 6 (Printf.sprintf "k%d")

let prop_fork_parity =
  QCheck.Test.make ~count:25
    ~name:"fork at any stamped LSN: both sides track their oracles"
    scenario_arb (fun sc ->
      let d = Deploy.create ~layers:true () in
      let tc =
        Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1))
      in
      List.iter
        (fun n -> ignore (Deploy.add_dc d ~name:n Dc.default_config))
        [ "dc0"; "dc1" ];
      Deploy.add_partitioned_table d ~replicas:0 ~name:"t" ~versioned:false
        ~dcs:[ "dc0"; "dc1" ] ();
      let oracle = Hashtbl.create 16 in
      let commit_parent i step_key act =
        let key = Printf.sprintf "k%d" step_key in
        let txn = Tc.begin_txn tc in
        (match act with
        | 2 ->
          if Hashtbl.mem oracle key then begin
            Helpers.ok (Tc.delete tc txn ~table:"t" ~key);
            Hashtbl.remove oracle key
          end
        | _ ->
          let value = Printf.sprintf "p%d" i in
          (match Tc.update tc txn ~table:"t" ~key ~value with
          | `Ok () -> ()
          | `Blocked -> Alcotest.fail "blocked"
          | `Fail _ -> Helpers.ok (Tc.insert tc txn ~table:"t" ~key ~value));
          Hashtbl.replace oracle key value);
        Helpers.ok (Tc.commit tc txn)
      in
      let stamp () =
        Deploy.quiesce d;
        Tc.force_log tc;
        Tc.stable_lsn tc
      in
      (* pre-fork traffic, recording (lsn, oracle snapshot) at stamps *)
      let stamps = ref [] in
      let record () =
        stamps := (stamp (), Hashtbl.copy oracle) :: !stamps
      in
      List.iteri
        (fun i step ->
          commit_parent i step.p_key step.p_act;
          if step.p_stamp then record ())
        sc.pres;
      record ();
      let stamps = Array.of_list (List.rev !stamps) in
      let fork, fork_oracle = stamps.(sc.fork_pick mod Array.length stamps) in
      let br = Deploy.create_branch d ~from_lsn:fork ~name:"b" in
      let br_oracle = Hashtbl.copy fork_oracle in
      let commit_branch i step_key act =
        let key = Printf.sprintf "k%d" step_key in
        let txn = Branch.begin_txn br in
        (match act with
        | 2 ->
          if Hashtbl.mem br_oracle key then begin
            Helpers.ok (Branch.delete br txn ~table:"t" ~key);
            Hashtbl.remove br_oracle key
          end
        | _ ->
          let value = Printf.sprintf "b%d" i in
          (match Branch.update br txn ~table:"t" ~key ~value with
          | `Ok () -> ()
          | `Blocked -> Alcotest.fail "branch blocked"
          | `Fail _ ->
            Helpers.ok (Branch.insert br txn ~table:"t" ~key ~value));
          Hashtbl.replace br_oracle key value);
        Helpers.ok (Branch.commit br txn)
      in
      (* post-fork traffic on both sides, with maintenance mixed in *)
      List.iteri
        (fun i step ->
          if step.q_side = 0 then commit_parent (1000 + i) step.q_key step.q_act
          else commit_branch i step.q_key step.q_act;
          match step.q_maint with
          | 1 ->
            Deploy.quiesce d;
            Untx_repl.Repl.Manager.compact_layers (Deploy.manager d ~tc:"tc1")
          | 2 -> Deploy.crash_branch_dc d "b"
          | 3 -> ignore (Deploy.truncate_history d ~below:(stamp ()))
          | _ -> ())
        sc.posts;
      Deploy.quiesce d;
      Branch.quiesce br;
      let show = function Some v -> v | None -> "None" in
      (* law 1: the parent tracks its oracle — branch writes never leak *)
      List.iter
        (fun key ->
          let expected = Hashtbl.find_opt oracle key in
          let got = Tc.read_committed tc ~table:"t" ~key in
          if got <> expected then
            QCheck.Test.fail_reportf "parent %s: got=%s oracle=%s" key
              (show got) (show expected))
        keys;
      (* law 2: the branch tracks its own oracle *)
      List.iter
        (fun key ->
          let expected = Hashtbl.find_opt br_oracle key in
          let txn = Branch.begin_txn br in
          let got = Helpers.ok (Branch.read br txn ~table:"t" ~key) in
          Helpers.ok (Branch.commit br txn);
          if got <> expected then
            QCheck.Test.fail_reportf "branch %s: got=%s oracle=%s" key
              (show got) (show expected);
          let durable = Branch.durable br in
          let asof = Branch.read_as_of br ~table:"t" ~key ~at:durable in
          if asof <> expected then
            QCheck.Test.fail_reportf "branch as-of-durable %s: got=%s oracle=%s"
              key (show asof) (show expected))
        keys;
      (* law 3: the shared prefix at the fork point is identical on both
         sides — even after compaction and pin-clamped truncation *)
      List.iter
        (fun key ->
          let expected = Hashtbl.find_opt fork_oracle key in
          let via_branch = Branch.read_as_of br ~table:"t" ~key ~at:fork in
          if via_branch <> expected then
            QCheck.Test.fail_reportf "fork prefix via branch %s: got=%s want=%s"
              key (show via_branch) (show expected);
          let via_parent = Deploy.read_as_of d ~table:"t" ~key ~at:fork in
          if via_parent <> expected then
            QCheck.Test.fail_reportf "fork prefix via parent %s: got=%s want=%s"
              key (show via_parent) (show expected))
        keys;
      true)

let suite = [ test prop_fork_parity ]
