(* Unit tests for the storage substrate: slotted pages, the simulated
   stable store, the buffer pool and its policy hooks, latches. *)

module Page = Untx_storage.Page
module Page_id = Untx_storage.Page_id
module Disk = Untx_storage.Disk
module Cache = Untx_storage.Cache
module Latch = Untx_storage.Latch

let mk_page ?(capacity = 256) id =
  Page.create ~id:(Page_id.of_int id) ~kind:Page.Leaf ~capacity

(* --- pages ----------------------------------------------------------- *)

let test_page_set_find () =
  let p = mk_page 1 in
  Page.set p ~key:"b" ~data:"2";
  Page.set p ~key:"a" ~data:"1";
  Page.set p ~key:"c" ~data:"3";
  Alcotest.(check (option string)) "find a" (Some "1") (Page.find p "a");
  Alcotest.(check (option string)) "find c" (Some "3") (Page.find p "c");
  Alcotest.(check (option string)) "find missing" None (Page.find p "x");
  Alcotest.(check (list (pair string string)))
    "sorted" [ ("a", "1"); ("b", "2"); ("c", "3") ] (Page.cells p);
  Page.set p ~key:"b" ~data:"22";
  Alcotest.(check (option string)) "replaced" (Some "22") (Page.find p "b");
  Alcotest.(check int) "count stable" 3 (Page.cell_count p)

let test_page_remove () =
  let p = mk_page 1 in
  Page.set p ~key:"a" ~data:"1";
  Page.set p ~key:"b" ~data:"2";
  Alcotest.(check bool) "removed" true (Page.remove p "a");
  Alcotest.(check bool) "absent now" false (Page.remove p "a");
  Alcotest.(check (option string)) "gone" None (Page.find p "a");
  Alcotest.(check int) "one left" 1 (Page.cell_count p)

let test_page_bytes_accounting () =
  let p = mk_page 1 in
  let before = Page.used_bytes p in
  Alcotest.(check int) "starts empty" 0 before;
  Page.set p ~key:"ab" ~data:"xyz";
  Alcotest.(check int) "cell size"
    (Page.cell_size ~key:"ab" ~data:"xyz")
    (Page.used_bytes p);
  Page.set p ~key:"ab" ~data:"xy";
  Alcotest.(check int) "shrinks on replace"
    (Page.cell_size ~key:"ab" ~data:"xy")
    (Page.used_bytes p);
  ignore (Page.remove p "ab");
  Alcotest.(check int) "back to zero" 0 (Page.used_bytes p)

let test_page_overflow_check () =
  let p = mk_page ~capacity:64 1 in
  Alcotest.(check bool) "fits" false
    (Page.would_overflow p ~key:"k" ~data:"small");
  Alcotest.(check bool) "too big" true
    (Page.would_overflow p ~key:"k" ~data:(String.make 100 'x'))

let test_page_find_le () =
  let p = mk_page 1 in
  List.iter (fun k -> Page.set p ~key:k ~data:k) [ "b"; "d"; "f" ];
  let le k = Option.map (fun (_, key, _) -> key) (Page.find_le p k) in
  Alcotest.(check (option string)) "exact" (Some "d") (le "d");
  Alcotest.(check (option string)) "between" (Some "d") (le "e");
  Alcotest.(check (option string)) "below all" None (le "a");
  Alcotest.(check (option string)) "above all" (Some "f") (le "z")

let test_page_split_upper () =
  let p = mk_page 1 in
  for i = 0 to 9 do
    Page.set p ~key:(Printf.sprintf "k%02d" i) ~data:"vvvv"
  done;
  let used_before = Page.used_bytes p in
  let split_key, moved = Page.split_upper p in
  Alcotest.(check bool) "moved nonempty" true (moved <> []);
  Alcotest.(check bool) "kept nonempty" true (Page.cell_count p > 0);
  Alcotest.(check string) "split key is first moved" split_key
    (fst (List.hd moved));
  List.iter
    (fun (k, _) ->
      Alcotest.(check bool) "moved >= split" true (k >= split_key))
    moved;
  (match Page.max_key p with
  | Some m -> Alcotest.(check bool) "kept < split" true (m < split_key)
  | None -> Alcotest.fail "empty left half");
  let moved_bytes =
    List.fold_left
      (fun acc (k, d) -> acc + Page.cell_size ~key:k ~data:d)
      0 moved
  in
  Alcotest.(check int) "bytes conserved" used_before
    (Page.used_bytes p + moved_bytes)

let test_page_iter_from () =
  let p = mk_page 1 in
  List.iter (fun k -> Page.set p ~key:k ~data:k) [ "a"; "c"; "e" ];
  let seen = ref [] in
  Page.iter_from p "b" (fun k _ ->
      seen := k :: !seen;
      `Continue);
  Alcotest.(check (list string)) "from b" [ "c"; "e" ] (List.rev !seen);
  let seen2 = ref [] in
  Page.iter_from p "" (fun k _ ->
      seen2 := k :: !seen2;
      `Stop);
  Alcotest.(check (list string)) "stop early" [ "a" ] !seen2

let test_page_copy_isolated () =
  let p = mk_page 1 in
  Page.set p ~key:"a" ~data:"1";
  let q = Page.copy p in
  Page.set p ~key:"a" ~data:"mutated";
  Alcotest.(check (option string)) "copy unaffected" (Some "1") (Page.find q "a")

(* --- disk ------------------------------------------------------------ *)

let test_disk_roundtrip () =
  let d = Disk.create () in
  let id = Disk.alloc d in
  let p = Page.create ~id ~kind:Page.Leaf ~capacity:128 in
  Page.set p ~key:"k" ~data:"v";
  Disk.write d p;
  (* post-write mutation must not leak into stable state *)
  Page.set p ~key:"k" ~data:"changed";
  match Disk.read d id with
  | None -> Alcotest.fail "page lost"
  | Some q ->
    Alcotest.(check (option string)) "stable copy" (Some "v") (Page.find q "k")

let test_disk_alloc_free () =
  let d = Disk.create () in
  let a = Disk.alloc d in
  let b = Disk.alloc d in
  Alcotest.(check bool) "distinct" true (not (Page_id.equal a b));
  Disk.free d a;
  Alcotest.(check bool) "freed gone" false (Disk.exists d a);
  let c = Disk.alloc d in
  Alcotest.(check bool) "freed id reused" true (Page_id.equal a c)

let test_disk_master () =
  let d = Disk.create () in
  Alcotest.(check (option string)) "initially none" None (Disk.master d);
  Disk.set_master d "catalog-v1";
  Disk.set_master d "catalog-v2";
  Alcotest.(check (option string)) "latest wins" (Some "catalog-v2")
    (Disk.master d)

(* --- cache ----------------------------------------------------------- *)

let test_cache_fault_and_flush () =
  let d = Disk.create () in
  let c = Cache.create ~disk:d ~capacity:4 () in
  let p = Cache.new_page c ~kind:Page.Leaf ~page_capacity:128 in
  Page.set p ~key:"k" ~data:"v";
  Cache.mark_dirty c p;
  Alcotest.(check bool) "not yet stable" false (Disk.exists d (Page.id p));
  Cache.flush_all c;
  Alcotest.(check bool) "stable after flush" true (Disk.exists d (Page.id p));
  Cache.crash c;
  let q = Cache.get c (Page.id p) in
  Alcotest.(check (option string)) "refaulted" (Some "v") (Page.find q "k")

let test_cache_policy_blocks_flush () =
  let d = Disk.create () in
  let c = Cache.create ~disk:d ~capacity:4 () in
  Cache.set_policy c ~can_flush:(fun _ -> false) ~prepare_flush:ignore;
  let p = Cache.new_page c ~kind:Page.Leaf ~page_capacity:128 in
  Cache.mark_dirty c p;
  Cache.flush_all c;
  Alcotest.(check bool) "flush refused" false (Disk.exists d (Page.id p));
  Alcotest.(check bool) "stall recorded" true (Cache.flush_stalls c > 0)

let test_cache_eviction_lru () =
  let d = Disk.create () in
  let c = Cache.create ~disk:d ~capacity:3 () in
  let pages =
    List.init 5 (fun _ -> Cache.new_page c ~kind:Page.Leaf ~page_capacity:64)
  in
  ignore pages;
  Alcotest.(check bool) "capacity respected" true (Cache.resident c <= 3);
  Alcotest.(check bool) "evictions happened" true (Cache.evictions c > 0)

(* Regression: when every resident page is dirty and unflushable (the
   causality rule pins them all), eviction must give up after a bounded
   clock sweep — not spin forever hunting a victim that cannot exist.
   The pool stays over capacity and the skips are counted. *)
let test_cache_eviction_stall_terminates () =
  let d = Disk.create () in
  let counters = Untx_util.Instrument.create () in
  let c = Cache.create ~counters ~disk:d ~capacity:2 () in
  Cache.set_policy c ~can_flush:(fun _ -> false) ~prepare_flush:ignore;
  (* every page is dirty from birth and the policy refuses all flushes,
     so there is never an evictable victim; this call must return *)
  let pages =
    List.init 6 (fun _ -> Cache.new_page c ~kind:Page.Leaf ~page_capacity:64)
  in
  ignore pages;
  Alcotest.(check int) "nothing evicted" 0 (Cache.evictions c);
  Alcotest.(check int) "pool over capacity" 6 (Cache.resident c);
  Alcotest.(check bool) "skips recorded" true
    (Untx_util.Instrument.get counters "cache.evict_skips" > 0);
  (* scan work is bounded: each enforcement pass walks the ring at most
     twice, so the step counter stays linear in residents, not O(n^2) *)
  let steps = Untx_util.Instrument.get counters "cache.evict_scan_steps" in
  Alcotest.(check bool)
    (Printf.sprintf "scan steps bounded (%d)" steps)
    true
    (steps <= 2 * 6 * 6);
  (* once the policy relents, the same pool drains back under capacity *)
  Cache.set_policy c ~can_flush:(fun _ -> true) ~prepare_flush:ignore;
  Cache.enforce_capacity c;
  Alcotest.(check bool) "drains when unpinned" true (Cache.resident c <= 2);
  Alcotest.(check bool) "evictions resumed" true (Cache.evictions c > 0)

let test_cache_prepare_flush_hook () =
  let d = Disk.create () in
  let c = Cache.create ~disk:d ~capacity:4 () in
  Cache.set_policy c
    ~can_flush:(fun _ -> true)
    ~prepare_flush:(fun page -> Page.set_meta page "sync-meta");
  let p = Cache.new_page c ~kind:Page.Leaf ~page_capacity:64 in
  Cache.mark_dirty c p;
  Cache.flush_all c;
  match Disk.read d (Page.id p) with
  | Some q -> Alcotest.(check string) "meta synced" "sync-meta" (Page.meta q)
  | None -> Alcotest.fail "not flushed"

let test_cache_drop_page_reverts () =
  let d = Disk.create () in
  let c = Cache.create ~disk:d ~capacity:4 () in
  let p = Cache.new_page c ~kind:Page.Leaf ~page_capacity:128 in
  Page.set p ~key:"k" ~data:"stable";
  Cache.mark_dirty c p;
  Cache.flush_all c;
  let p = Cache.get c (Page.id p) in
  Page.set p ~key:"k" ~data:"volatile";
  Cache.mark_dirty c p;
  Cache.drop_page c (Page.id p);
  let q = Cache.get c (Page.id p) in
  Alcotest.(check (option string))
    "reverted to stable" (Some "stable") (Page.find q "k")

(* --- latches ---------------------------------------------------------- *)

let test_latch () =
  let l = Latch.create ~name:"pg1" in
  Latch.acquire l;
  Alcotest.(check bool) "held" true (Latch.held l);
  (match Latch.acquire l with
  | exception Latch.Latch_conflict _ -> ()
  | () -> Alcotest.fail "double acquire allowed");
  Latch.release l;
  (match Latch.release l with
  | exception Latch.Latch_conflict _ -> ()
  | () -> Alcotest.fail "double release allowed");
  let v = Latch.with_latch l (fun () -> 42) in
  Alcotest.(check int) "with_latch" 42 v;
  Alcotest.(check bool) "released after" false (Latch.held l);
  (match Latch.with_latch l (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check bool) "released after exn" false (Latch.held l)

let suite =
  [
    Alcotest.test_case "page set/find" `Quick test_page_set_find;
    Alcotest.test_case "page remove" `Quick test_page_remove;
    Alcotest.test_case "page byte accounting" `Quick
      test_page_bytes_accounting;
    Alcotest.test_case "page overflow check" `Quick test_page_overflow_check;
    Alcotest.test_case "page find_le" `Quick test_page_find_le;
    Alcotest.test_case "page split_upper" `Quick test_page_split_upper;
    Alcotest.test_case "page iter_from" `Quick test_page_iter_from;
    Alcotest.test_case "page copy isolation" `Quick test_page_copy_isolated;
    Alcotest.test_case "disk roundtrip isolation" `Quick test_disk_roundtrip;
    Alcotest.test_case "disk alloc/free" `Quick test_disk_alloc_free;
    Alcotest.test_case "disk master record" `Quick test_disk_master;
    Alcotest.test_case "cache fault & flush" `Quick test_cache_fault_and_flush;
    Alcotest.test_case "cache policy blocks flush" `Quick
      test_cache_policy_blocks_flush;
    Alcotest.test_case "cache eviction" `Quick test_cache_eviction_lru;
    Alcotest.test_case "cache stall terminates" `Quick
      test_cache_eviction_stall_terminates;
    Alcotest.test_case "cache page-sync hook" `Quick
      test_cache_prepare_flush_hook;
    Alcotest.test_case "cache drop reverts" `Quick test_cache_drop_page_reverts;
    Alcotest.test_case "latch discipline" `Quick test_latch;
  ]
