let () =
  Alcotest.run "untx-layer"
    [ ("layer", Suite_layer.suite); ("props_layer", Props_layer.suite) ]
