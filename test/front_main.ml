let () =
  Alcotest.run "untx-front"
    [
      ("front", Suite_front.suite);
      ("props-front", Props_front.suite);
    ]
