(* The factored epoch/seq contract sessions (Untx_msg.Session): sender
   resend/backoff/ack bookkeeping and receiver
   ordering/buffering/duplicate-replay, isolated from any transport. *)

module Session = Untx_msg.Session

(* A loopback harness: sent frames pile up in [wire]; the test delivers
   them (in any order it likes) to a receiver and feeds acks back. *)
let mk_sender () =
  let wire = ref [] in
  let s : string Session.Sender.t = Session.Sender.create () in
  let post ?awaited msg =
    Session.Sender.post s ?awaited ~backoff:2
      ~encode:(fun ~epoch ~seq -> Printf.sprintf "%d/%d/%s" epoch seq msg)
      ~send:(fun f -> wire := f :: !wire)
      ()
  in
  (s, wire, post)

let parse frame = Scanf.sscanf frame "%d/%d/%s" (fun e q m -> (e, q, m))

let test_in_order_round_trip () =
  let s, wire, post = mk_sender () in
  let r : (string, string) Session.Receiver.t = Session.Receiver.create () in
  let seqs = List.map (fun m -> post m) [ "a"; "b"; "c" ] in
  Alcotest.(check (list int)) "dense seqs" [ 1; 2; 3 ] seqs;
  Alcotest.(check int) "unacked" 3 (Session.Sender.unacked s);
  List.iter
    (fun frame ->
      let epoch, seq, msg = parse frame in
      (match
         Session.Receiver.handle r ~epoch ~seq msg
           ~apply:(fun q m -> Printf.sprintf "r%d:%s" q m)
           ~fallback:"?"
       with
      | Session.Receiver.Applied reply ->
        Alcotest.(check bool) "acked fresh" true
          (Session.Sender.ack s ~epoch ~seq reply)
      | _ -> Alcotest.fail "expected Applied"))
    (List.rev !wire);
  Alcotest.(check int) "all acked" 0 (Session.Sender.unacked s);
  Alcotest.(check int) "receiver applied" 3 (Session.Receiver.applied r)

let test_out_of_order_buffered () =
  let _, wire, post = mk_sender () in
  let r : (string, string) Session.Receiver.t = Session.Receiver.create () in
  ignore (post "a");
  ignore (post "b");
  let frames = List.rev !wire in
  let f1 = List.nth frames 0 and f2 = List.nth frames 1 in
  let deliver frame =
    let epoch, seq, msg = parse frame in
    Session.Receiver.handle r ~epoch ~seq msg
      ~apply:(fun q m -> Printf.sprintf "r%d:%s" q m)
      ~fallback:"?"
  in
  (match deliver f2 with
  | Session.Receiver.Buffered -> ()
  | _ -> Alcotest.fail "ahead-of-turn frame must buffer");
  Alcotest.(check int) "nothing applied yet" 0 (Session.Receiver.applied r);
  (match deliver f1 with
  | Session.Receiver.Applied "r1:a" -> ()
  | _ -> Alcotest.fail "in-turn frame must apply");
  (* the buffered successor was drained by the in-turn apply *)
  Alcotest.(check int) "both applied" 2 (Session.Receiver.applied r);
  (* ... and its reply is collectable through the duplicate path *)
  match deliver f2 with
  | Session.Receiver.Replayed "r2:b" -> ()
  | _ -> Alcotest.fail "drained successor must replay from memo"

let test_duplicate_replays_same_reply () =
  let _, wire, post = mk_sender () in
  let r : (string, string) Session.Receiver.t = Session.Receiver.create () in
  ignore (post "a");
  let applies = ref 0 in
  let deliver frame =
    let epoch, seq, msg = parse frame in
    Session.Receiver.handle r ~epoch ~seq msg
      ~apply:(fun q m ->
        incr applies;
        Printf.sprintf "r%d:%s" q m)
      ~fallback:"?"
  in
  let f = List.hd !wire in
  (match deliver f with
  | Session.Receiver.Applied "r1:a" -> ()
  | _ -> Alcotest.fail "first delivery applies");
  (match deliver f with
  | Session.Receiver.Replayed "r1:a" -> ()
  | _ -> Alcotest.fail "duplicate replays the memoized reply");
  Alcotest.(check int) "applied exactly once" 1 !applies

let test_stale_epoch_dropped () =
  let r : (string, string) Session.Receiver.t = Session.Receiver.create () in
  (match
     Session.Receiver.handle r ~epoch:2 ~seq:1 "x"
       ~apply:(fun _ m -> m)
       ~fallback:"?"
   with
  | Session.Receiver.Applied _ -> ()
  | _ -> Alcotest.fail "epoch 2 adopted");
  match
    Session.Receiver.handle r ~epoch:1 ~seq:1 "old"
      ~apply:(fun _ m -> m)
      ~fallback:"?"
  with
  | Session.Receiver.Stale -> ()
  | _ -> Alcotest.fail "dead-epoch frame must be dropped"

let test_new_epoch_resets_both_ends () =
  let s, wire, post = mk_sender () in
  let r : (string, string) Session.Receiver.t = Session.Receiver.create () in
  let deliver frame =
    let epoch, seq, msg = parse frame in
    Session.Receiver.handle r ~epoch ~seq msg
      ~apply:(fun q m -> Printf.sprintf "r%d:%s" q m)
      ~fallback:"?"
  in
  ignore (post "a");
  ignore (post "b");
  List.iter (fun f -> ignore (deliver f)) (List.rev !wire);
  Alcotest.(check int) "old epoch applied" 2 (Session.Receiver.applied r);
  (* either end restarts: the sender opens epoch 2 and renumbers *)
  let dropped = Session.Sender.new_epoch s in
  Alcotest.(check int) "pendings dropped with the epoch" 2 dropped;
  Alcotest.(check int) "epoch advanced" 2 (Session.Sender.epoch s);
  wire := [];
  let seq = post "fresh" in
  Alcotest.(check int) "seq restarts at 1" 1 seq;
  (match deliver (List.hd !wire) with
  | Session.Receiver.Applied "r1:fresh" -> ()
  | _ -> Alcotest.fail "new epoch adopted, seq 1 in turn");
  Alcotest.(check int) "receiver state reset" 1 (Session.Receiver.applied r)

let test_resend_backoff_doubles () =
  let s, wire, post = mk_sender () in
  ignore (post "a");
  wire := [];
  let resends = ref [] in
  for tick = 1 to 20 do
    Session.Sender.tick s ~backoff_max:64 ~max_retries:10
      ~on_resend:(fun ~seq:_ _frame -> resends := tick :: !resends)
      ~on_timeout:(fun ~seq:_ ~retries:_ -> Alcotest.fail "premature timeout")
  done;
  (* initial backoff 2, doubling: resends at ticks 2, 6 (2+4), 14 (6+8) *)
  Alcotest.(check (list int)) "exponential schedule" [ 2; 6; 14 ]
    (List.rev !resends)

let test_timeout_after_max_retries () =
  let s, _, post = mk_sender () in
  ignore (post "a");
  let timed_out = ref false in
  (try
     for _ = 1 to 100 do
       Session.Sender.tick s ~backoff_max:1 ~max_retries:3
         ~on_resend:(fun ~seq:_ _ -> ())
         ~on_timeout:(fun ~seq ~retries ->
           timed_out := true;
           Alcotest.(check int) "seq" 1 seq;
           Alcotest.(check int) "budget spent" 3 retries;
           failwith "timeout")
     done
   with Failure _ -> ());
  Alcotest.(check bool) "on_timeout fired" true !timed_out

let test_awaited_reply_parked () =
  let s, wire, post = mk_sender () in
  let r : (string, string) Session.Receiver.t = Session.Receiver.create () in
  let seq = post ~awaited:true "q" in
  Alcotest.(check bool) "no reply yet" false (Session.Sender.has_reply s seq);
  let epoch, sq, msg = parse (List.hd !wire) in
  (match
     Session.Receiver.handle r ~epoch ~seq:sq msg
       ~apply:(fun _ m -> "ans:" ^ m)
       ~fallback:"?"
   with
  | Session.Receiver.Applied reply ->
    ignore (Session.Sender.ack s ~epoch ~seq:sq reply)
  | _ -> Alcotest.fail "expected Applied");
  Alcotest.(check bool) "reply parked" true (Session.Sender.has_reply s seq);
  Alcotest.(check (option string)) "reply value" (Some "ans:q")
    (Session.Sender.take_reply s seq);
  Alcotest.(check (option string)) "consumed" None
    (Session.Sender.take_reply s seq)

let test_stale_and_duplicate_acks_rejected () =
  let s, wire, post = mk_sender () in
  ignore (post "a");
  let epoch, seq, _ = parse (List.hd !wire) in
  Alcotest.(check bool) "wrong epoch" false
    (Session.Sender.ack s ~epoch:(epoch + 1) ~seq "r");
  Alcotest.(check bool) "fresh ack" true (Session.Sender.ack s ~epoch ~seq "r");
  Alcotest.(check bool) "duplicate ack" false
    (Session.Sender.ack s ~epoch ~seq "r")

let test_fallback_beyond_memo_window () =
  let r : (string, string) Session.Receiver.t =
    Session.Receiver.create ~memo_window:2 ()
  in
  for seq = 1 to 5 do
    match
      Session.Receiver.handle r ~epoch:1 ~seq
        (Printf.sprintf "m%d" seq)
        ~apply:(fun q m -> Printf.sprintf "r%d:%s" q m)
        ~fallback:"settled"
    with
    | Session.Receiver.Applied _ -> ()
    | _ -> Alcotest.fail "in-turn apply"
  done;
  (* seq 1 is far below the memo window: the fallback answers it *)
  (match
     Session.Receiver.handle r ~epoch:1 ~seq:1 "m1"
       ~apply:(fun _ _ -> Alcotest.fail "must not re-apply")
       ~fallback:"settled"
   with
  | Session.Receiver.Replayed "settled" -> ()
  | _ -> Alcotest.fail "ancient duplicate answered by fallback");
  (* seq 5 is still inside the window: the real memoized reply *)
  match
    Session.Receiver.handle r ~epoch:1 ~seq:5 "m5"
      ~apply:(fun _ _ -> Alcotest.fail "must not re-apply")
      ~fallback:"settled"
  with
  | Session.Receiver.Replayed "r5:m5" -> ()
  | _ -> Alcotest.fail "recent duplicate answered from memo"

let suite =
  [
    Alcotest.test_case "in-order round trip" `Quick test_in_order_round_trip;
    Alcotest.test_case "out-of-order buffered" `Quick
      test_out_of_order_buffered;
    Alcotest.test_case "duplicate replays same reply" `Quick
      test_duplicate_replays_same_reply;
    Alcotest.test_case "stale epoch dropped" `Quick test_stale_epoch_dropped;
    Alcotest.test_case "new epoch resets both ends" `Quick
      test_new_epoch_resets_both_ends;
    Alcotest.test_case "resend backoff doubles" `Quick
      test_resend_backoff_doubles;
    Alcotest.test_case "timeout after max retries" `Quick
      test_timeout_after_max_retries;
    Alcotest.test_case "awaited reply parked" `Quick test_awaited_reply_parked;
    Alcotest.test_case "stale and duplicate acks rejected" `Quick
      test_stale_and_duplicate_acks_rejected;
    Alcotest.test_case "fallback beyond memo window" `Quick
      test_fallback_beyond_memo_window;
  ]
