(* Deployment plumbing: linking order, duplicate names, message
   accounting, quiesce, partitioned routing through Deploy. *)

module Deploy = Untx_cloud.Deploy
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Lsn = Untx_util.Lsn
module Instrument = Untx_util.Instrument
module Wire = Untx_msg.Wire
module Op = Untx_msg.Op
module Audit = Untx_audit.Audit

let ok = function
  | `Ok v -> v
  | `Blocked -> Alcotest.fail "blocked"
  | `Fail m -> Alcotest.fail m

let test_add_order_irrelevant () =
  (* TC added before its DCs: links are created when DCs arrive *)
  let d = Deploy.create () in
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  ignore (Deploy.add_dc d ~name:"dc1" Dc.default_config);
  Deploy.create_table d ~dc:"dc1" ~name:"t" ~versioned:true;
  Tc.map_table tc ~table:"t" ~dc:"dc1" ~versioned:true;
  let txn = Tc.begin_txn tc in
  ok (Tc.insert tc txn ~table:"t" ~key:"k" ~value:"v");
  ok (Tc.commit tc txn);
  Alcotest.(check (option string)) "works" (Some "v")
    (Tc.read_committed tc ~table:"t" ~key:"k")

let test_duplicate_names_rejected () =
  let d = Deploy.create () in
  ignore (Deploy.add_dc d ~name:"dc1" Dc.default_config);
  (match Deploy.add_dc d ~name:"dc1" Dc.default_config with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate DC accepted");
  ignore (Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)));
  match Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 2)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate TC accepted"

let test_partitioned_routing () =
  let d = Deploy.create () in
  ignore (Deploy.add_dc d ~name:"dc-a" Dc.default_config);
  ignore (Deploy.add_dc d ~name:"dc-b" Dc.default_config);
  Deploy.create_table d ~dc:"dc-a" ~name:"t" ~versioned:true;
  Deploy.create_table d ~dc:"dc-b" ~name:"t" ~versioned:true;
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  Tc.map_table_partitioned tc ~table:"t" ~versioned:true
    ~partition:(fun key -> if key < "m" then "dc-a" else "dc-b");
  let txn = Tc.begin_txn tc in
  ok (Tc.insert tc txn ~table:"t" ~key:"apple" ~value:"1");
  ok (Tc.insert tc txn ~table:"t" ~key:"zebra" ~value:"2");
  ok (Tc.commit tc txn);
  (* each record landed on its own DC *)
  let on dc key =
    List.mem_assoc key
      (List.map (fun (k, r) -> (k, r)) (Dc.dump_table (Deploy.dc d dc) "t"))
  in
  Alcotest.(check bool) "apple on dc-a" true (on "dc-a" "apple");
  Alcotest.(check bool) "apple not on dc-b" false (on "dc-b" "apple");
  Alcotest.(check bool) "zebra on dc-b" true (on "dc-b" "zebra");
  (* cross-partition transaction was atomic under one TC log *)
  Alcotest.(check (option string)) "read apple" (Some "1")
    (Tc.read_committed tc ~table:"t" ~key:"apple");
  Alcotest.(check (option string)) "read zebra" (Some "2")
    (Tc.read_committed tc ~table:"t" ~key:"zebra")

let test_message_accounting () =
  let d = Deploy.create () in
  ignore (Deploy.add_dc d ~name:"dc1" Dc.default_config);
  Deploy.create_table d ~dc:"dc1" ~name:"t" ~versioned:true;
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  Tc.map_table tc ~table:"t" ~dc:"dc1" ~versioned:true;
  let before = Deploy.messages_total d in
  let txn = Tc.begin_txn tc in
  ok (Tc.insert tc txn ~table:"t" ~key:"k" ~value:"v");
  ok (Tc.commit tc txn);
  Deploy.quiesce d;
  Alcotest.(check bool) "messages counted" true
    (Deploy.messages_total d > before)

let test_names_listing () =
  let d = Deploy.create () in
  ignore (Deploy.add_dc d ~name:"dc-z" Dc.default_config);
  ignore (Deploy.add_dc d ~name:"dc-a" Dc.default_config);
  ignore (Deploy.add_tc d ~name:"tc-b" (Tc.default_config (Tc_id.of_int 1)));
  Alcotest.(check (list string)) "dcs sorted" [ "dc-a"; "dc-z" ]
    (Deploy.dc_names d);
  Alcotest.(check (list string)) "tcs" [ "tc-b" ] (Deploy.tc_names d)

(* --- the sharded deployment: one TC over N hash partitions --------- *)

let part_deploy ?counters ~parts () =
  let d = Deploy.create ?counters () in
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  let dcs = List.init parts (Printf.sprintf "dc%d") in
  List.iter (fun n -> ignore (Deploy.add_dc d ~name:n Dc.default_config)) dcs;
  Deploy.add_partitioned_table d ~name:"t" ~versioned:false ~dcs ();
  (d, tc)

let commit_one tc ~key ~value =
  let txn = Tc.begin_txn tc in
  (match Tc.update tc txn ~table:"t" ~key ~value with
  | `Ok () -> ()
  | `Blocked -> Alcotest.fail "blocked"
  | `Fail _ -> ok (Tc.insert tc txn ~table:"t" ~key ~value));
  ok (Tc.commit tc txn)

let test_hash_map_placement () =
  (* Every committed record must sit on exactly the DC the static hash
     map owns it to, and a 3-way split of 60 keys must leave no
     partition empty. *)
  let d, tc = part_deploy ~parts:3 () in
  let keys = List.init 60 (Printf.sprintf "k%02d") in
  List.iter (fun key -> commit_one tc ~key ~value:("v-" ^ key)) keys;
  Deploy.quiesce d;
  let parts = Deploy.partitions d ~table:"t" in
  Alcotest.(check (list string)) "partitions in id order"
    [ "dc0"; "dc1"; "dc2" ] parts;
  let holds dc key = List.mem_assoc key (Dc.dump_table (Deploy.dc d dc) "t") in
  List.iter
    (fun key ->
      let owner = Deploy.partition_dc d ~table:"t" ~key in
      List.iter
        (fun dc ->
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s (owner %s)" key dc owner)
            (dc = owner) (holds dc key))
        parts)
    keys;
  List.iter
    (fun dc ->
      Alcotest.(check bool) (dc ^ " non-empty") true
        (Dc.dump_table (Deploy.dc d dc) "t" <> []))
    parts

let test_misrouted_frame_rejected () =
  (* A frame stamped for a different partition must be rejected, never
     silently applied: the TC's map and the deployment disagree. *)
  let counters = Instrument.create () in
  let d, _ = part_deploy ~counters ~parts:2 () in
  let dc = Deploy.dc d "dc0" in
  let req =
    {
      Wire.tc = Tc_id.of_int 1;
      lsn = Lsn.of_int 1;
      part = Dc.part dc + 1;
      op = Op.Insert { table = "t"; key = "stray"; value = "x" };
    }
  in
  let reply = Dc.perform dc req in
  (match reply.Wire.result with
  | Wire.Failed msg ->
    Alcotest.(check bool) "failure names misrouting" true
      (String.length msg >= 9 && String.sub msg 0 9 = "misrouted")
  | _ -> Alcotest.fail "misrouted frame was applied");
  Alcotest.(check int) "counter bumped" 1 (Instrument.get counters "dc.misrouted");
  Alcotest.(check bool) "no state change" false
    (List.mem_assoc "stray" (Dc.dump_table dc "t"))

let test_single_partition_crash_siblings_serve () =
  (* Hard-kill one of three partitions mid-workload: it must recover
     alone via the TC's redo, siblings keep committing throughout, and
     the deployment auditor finds every committed record afterwards. *)
  let d, tc = part_deploy ~parts:3 () in
  let oracle = Hashtbl.create 64 in
  let put key value =
    commit_one tc ~key ~value;
    Hashtbl.replace oracle key value
  in
  List.iter (fun i -> put (Printf.sprintf "a%02d" i) "before") (List.init 30 Fun.id);
  Deploy.crash_dc d "dc1";
  List.iter
    (fun i ->
      put (Printf.sprintf "a%02d" i) "after";
      put (Printf.sprintf "b%02d" i) "after")
    (List.init 30 Fun.id);
  Deploy.quiesce d;
  Hashtbl.iter
    (fun key value ->
      Alcotest.(check (option string)) (key ^ " readable") (Some value)
        (Tc.read_committed tc ~table:"t" ~key))
    oracle;
  let expected =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let report = Audit.run_deploy d ~tc:"tc1" ~table:"t" ~expected in
  Alcotest.(check (list string)) "audit clean" [] report.Audit.violations

let test_checkpoint_fans_out () =
  (* A checkpoint must be granted by every partition before the TC may
     truncate: after unanimous grant the redo-scan start point has
     advanced past the pre-checkpoint log. *)
  let d, tc = part_deploy ~parts:3 () in
  List.iter
    (fun i -> commit_one tc ~key:(Printf.sprintf "c%02d" i) ~value:"v")
    (List.init 40 Fun.id);
  Deploy.quiesce d;
  let rssp0 = Tc.rssp tc in
  List.iter (fun n -> Dc.flush_all (Deploy.dc d n)) (Deploy.dc_names d);
  let rec grant tries =
    if Tc.checkpoint tc then true
    else if tries = 0 then false
    else begin
      Deploy.quiesce d;
      List.iter (fun n -> Dc.flush_all (Deploy.dc d n)) (Deploy.dc_names d);
      grant (tries - 1)
    end
  in
  Alcotest.(check bool) "every partition granted" true (grant 4);
  Alcotest.(check bool) "redo-scan start point advanced" true
    (Lsn.compare (Tc.rssp tc) rssp0 > 0);
  (* committed state is untouched by the truncation *)
  Alcotest.(check (option string)) "still readable" (Some "v")
    (Tc.read_committed tc ~table:"t" ~key:"c00")

let suite =
  [
    Alcotest.test_case "link order irrelevant" `Quick test_add_order_irrelevant;
    Alcotest.test_case "duplicate names rejected" `Quick
      test_duplicate_names_rejected;
    Alcotest.test_case "partitioned routing" `Quick test_partitioned_routing;
    Alcotest.test_case "message accounting" `Quick test_message_accounting;
    Alcotest.test_case "name listing" `Quick test_names_listing;
    Alcotest.test_case "hash map places every record" `Quick
      test_hash_map_placement;
    Alcotest.test_case "misrouted frame rejected" `Quick
      test_misrouted_frame_rejected;
    Alcotest.test_case "single-partition crash, siblings serve" `Quick
      test_single_partition_crash_siblings_serve;
    Alcotest.test_case "checkpoint fans out to every partition" `Quick
      test_checkpoint_fans_out;
  ]
