(* Property-based tests (qcheck): abstract-LSN semantics against a
   reference model, codec roundtrips, page/B-tree model conformance,
   lock-manager safety, WAL crash semantics. *)

module Ablsn = Untx_dc.Ablsn
module Stored_record = Untx_dc.Stored_record
module Codec = Untx_util.Codec
module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Page = Untx_storage.Page
module Page_id = Untx_storage.Page_id
module Disk = Untx_storage.Disk
module Cache = Untx_storage.Cache
module Btree = Untx_btree.Btree
module Lock_mgr = Untx_tc.Lock_mgr
module Wal = Untx_wal.Wal

let test prop = Helpers.qcheck_test prop

(* --- abstract LSNs ---------------------------------------------------- *)

(* Reference semantics: a set of explicitly applied LSNs plus a global
   cover from low-water marks. *)
type ab_op = Add of int | Advance of int

let ab_op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun l -> Add (1 + (l mod 100))) (int_bound 99);
        map (fun l -> Advance (1 + (l mod 100))) (int_bound 99);
      ])

let ab_ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Add l -> Printf.sprintf "add %d" l
             | Advance l -> Printf.sprintf "adv %d" l)
           ops))
    QCheck.Gen.(list_size (int_bound 40) ab_op_gen)

let run_ref ops =
  List.fold_left
    (fun (applied, cover) op ->
      match op with
      | Add l -> ((if l > cover then l :: applied else applied), cover)
      | Advance l -> (List.filter (fun a -> a > max cover l) applied, max cover l))
    ([], 0) ops

let run_ab ops =
  List.fold_left
    (fun ab op ->
      match op with
      | Add l -> Ablsn.add (Lsn.of_int l) ab
      | Advance l -> Ablsn.advance ~lwm:(Lsn.of_int l) ab)
    Ablsn.empty ops

let prop_ablsn_model =
  QCheck.Test.make ~name:"ablsn matches reference model" ~count:300 ab_ops_arb
    (fun ops ->
      let applied, cover = run_ref ops in
      let ab = run_ab ops in
      List.for_all
        (fun l ->
          let expected = l <= cover || List.mem l applied in
          Ablsn.included (Lsn.of_int l) ab = expected)
        (List.init 101 (fun i -> i + 1)))

let prop_ablsn_merge_pointwise =
  QCheck.Test.make ~name:"merge is pointwise OR" ~count:300
    (QCheck.pair ab_ops_arb ab_ops_arb) (fun (ops_a, ops_b) ->
      let a = run_ab ops_a and b = run_ab ops_b in
      let m = Ablsn.merge a b in
      List.for_all
        (fun l ->
          let l = Lsn.of_int l in
          Ablsn.included l m = (Ablsn.included l a || Ablsn.included l b))
        (List.init 101 (fun i -> i + 1)))

let prop_ablsn_codec =
  QCheck.Test.make ~name:"ablsn encode/decode roundtrip" ~count:300 ab_ops_arb
    (fun ops ->
      let ab = run_ab ops in
      Ablsn.equal ab (Ablsn.decode (Ablsn.encode ab)))

(* --- codecs ----------------------------------------------------------- *)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"field codec roundtrip" ~count:300
    QCheck.(list (string_gen QCheck.Gen.char))
    (fun fields -> Codec.decode (Codec.encode fields) = fields)

let record_arb =
  let open QCheck in
  let gen =
    Gen.(
      map3
        (fun value deleted (tag, bv) ->
          {
            Stored_record.value;
            deleted;
            before =
              (match tag mod 3 with
              | 0 -> Stored_record.Absent
              | 1 -> Stored_record.Null_before
              | _ -> Stored_record.Value_before bv);
            writer = Tc_id.of_int (String.length value mod 7);
            wlsn = Lsn.of_int (tag mod 97);
          })
        (string_size (int_bound 20))
        bool
        (pair (int_bound 10) (string_size (int_bound 20))))
  in
  make gen

let prop_record_roundtrip =
  QCheck.Test.make ~name:"stored record roundtrip" ~count:300 record_arb
    (fun r -> Stored_record.decode (Stored_record.encode r) = r)

(* --- pages ------------------------------------------------------------ *)

type page_op = Set of string * string | Remove of string

let page_ops_arb =
  let key_gen = QCheck.Gen.(map (fun i -> Printf.sprintf "k%02d" (i mod 30)) (int_bound 29)) in
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun k v -> Set (k, v)) key_gen (string_size (int_bound 10));
          map (fun k -> Remove k) key_gen;
        ])
  in
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Set (k, v) -> Printf.sprintf "set %s=%s" k v
             | Remove k -> "rm " ^ k)
           ops))
    QCheck.Gen.(list_size (int_bound 60) op_gen)

let prop_page_model =
  QCheck.Test.make ~name:"page matches assoc model" ~count:300 page_ops_arb
    (fun ops ->
      let page =
        Page.create ~id:(Page_id.of_int 1) ~kind:Page.Leaf ~capacity:100_000
      in
      let model = Hashtbl.create 16 in
      List.iter
        (function
          | Set (k, v) ->
            Page.set page ~key:k ~data:v;
            Hashtbl.replace model k v
          | Remove k ->
            ignore (Page.remove page k);
            Hashtbl.remove model k)
        ops;
      let expected =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort compare
      in
      Page.cells page = expected
      && Page.cell_count page = Hashtbl.length model)

let prop_page_split_partition =
  QCheck.Test.make ~name:"split_upper partitions cells" ~count:300
    page_ops_arb (fun ops ->
      let page =
        Page.create ~id:(Page_id.of_int 1) ~kind:Page.Leaf ~capacity:100_000
      in
      List.iter
        (function
          | Set (k, v) -> Page.set page ~key:k ~data:v
          | Remove k -> ignore (Page.remove page k))
        ops;
      QCheck.assume (Page.cell_count page >= 2);
      let before = Page.cells page in
      let split_key, moved = Page.split_upper page in
      let kept = Page.cells page in
      kept @ moved = before
      && List.for_all (fun (k, _) -> k >= split_key) moved
      && List.for_all (fun (k, _) -> k < split_key) kept
      && moved <> [] && kept <> [])

(* --- B-tree ----------------------------------------------------------- *)

let prop_btree_model =
  QCheck.Test.make ~name:"btree matches map model, stays well-formed"
    ~count:60 page_ops_arb (fun ops ->
      let disk = Disk.create () in
      let cache = Cache.create ~disk ~capacity:512 () in
      let tree =
        Btree.create ~cache ~name:"p" ~page_capacity:96 ~hooks:Btree.null_hooks
      in
      let model = Hashtbl.create 16 in
      List.iter
        (function
          | Set (k, v) ->
            Btree.set tree ~key:k ~data:v;
            Hashtbl.replace model k v
          | Remove k ->
            ignore (Btree.remove tree k);
            Hashtbl.remove model k)
        ops;
      Btree.check tree = Ok ()
      && Hashtbl.fold
           (fun k v acc -> acc && Btree.find tree k = Some v)
           model true
      && Btree.cell_count tree = Hashtbl.length model)

(* --- lock manager ------------------------------------------------------ *)

type lock_op = Acquire of int * int * Lock_mgr.mode | Release of int

let lock_ops_arb =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          ( 3,
            map3
              (fun o r x ->
                Acquire (o mod 6, r mod 8, if x then Lock_mgr.X else Lock_mgr.S))
              (int_bound 5) (int_bound 7) bool );
          (1, map (fun o -> Release (o mod 6)) (int_bound 5));
        ])
  in
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Acquire (o, r, m) ->
               Printf.sprintf "acq o%d r%d %s" o r
                 (match m with Lock_mgr.S -> "S" | Lock_mgr.X -> "X")
             | Release o -> Printf.sprintf "rel o%d" o)
           ops))
    QCheck.Gen.(list_size (int_bound 60) op_gen)

let rsrc r = Lock_mgr.Record { table = "t"; key = string_of_int r }

let prop_lock_safety =
  QCheck.Test.make ~name:"no incompatible co-holders" ~count:300 lock_ops_arb
    (fun ops ->
      let l = Lock_mgr.create () in
      let ok = ref true in
      List.iter
        (function
          | Acquire (o, r, m) -> ignore (Lock_mgr.acquire l ~owner:o (rsrc r) m)
          | Release o -> ignore (Lock_mgr.release_all l ~owner:o))
        ops;
      (* safety: for every resource, X excludes everyone else *)
      for r = 0 to 7 do
        let holders =
          List.filter
            (fun o ->
              Lock_mgr.holds l ~owner:o (rsrc r) Lock_mgr.S
              || Lock_mgr.holds l ~owner:o (rsrc r) Lock_mgr.X)
            [ 0; 1; 2; 3; 4; 5 ]
        in
        let x_holders =
          List.filter
            (fun o -> Lock_mgr.holds l ~owner:o (rsrc r) Lock_mgr.X)
            holders
        in
        if x_holders <> [] && List.length holders > 1 then ok := false
      done;
      !ok)

(* --- WAL ---------------------------------------------------------------- *)

let prop_wal_crash_suffix =
  QCheck.Test.make ~name:"crash loses exactly the unforced suffix" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_bound 30) small_string) (int_bound 30))
    (fun (records, force_at) ->
      let w = Wal.create ~size:String.length () in
      List.iteri
        (fun i r ->
          ignore (Wal.append w r);
          if i = force_at then Wal.force w)
        records;
      (* the force only fires if the workload reaches index [force_at] *)
      let forced = if force_at < List.length records then force_at + 1 else 0 in
      Wal.crash w;
      let survived = ref [] in
      Wal.iter_from w Lsn.zero (fun _ r -> survived := r :: !survived);
      List.rev !survived = List.filteri (fun i _ -> i < forced) records)

let suite =
  List.map test
    [
      prop_ablsn_model;
      prop_ablsn_merge_pointwise;
      prop_ablsn_codec;
      prop_codec_roundtrip;
      prop_record_roundtrip;
      prop_page_model;
      prop_page_split_partition;
      prop_btree_model;
      prop_lock_safety;
      prop_wal_crash_suffix;
    ]

(* --- cross-protocol scan equivalence ---------------------------------- *)

(* All four TC concurrency-control protocols must return identical scan
   results on identical data: the protocols differ in locking, never in
   semantics. *)
let prop_scan_protocol_equivalence =
  let arb =
    QCheck.make
      ~print:(fun (keys, from_ix) ->
        Printf.sprintf "keys=%d from=%d" (List.length keys) from_ix)
      QCheck.Gen.(
        pair
          (list_size (int_bound 80)
             (map (fun i -> Printf.sprintf "k%03d" (i mod 120)) (int_bound 119)))
          (int_bound 119))
  in
  QCheck.Test.make ~name:"scan equivalence across CC protocols" ~count:30 arb
    (fun (keys, from_ix) ->
      let keys = List.sort_uniq String.compare keys in
      let from_key = Printf.sprintf "k%03d" from_ix in
      let scan_with cc =
        let k = Helpers.make_kernel ~cc_protocol:cc () in
        let module K = Untx_kernel.Kernel in
        let txn = K.begin_txn k in
        List.iter
          (fun key ->
            match K.insert k txn ~table:"kv" ~key ~value:("v" ^ key) with
            | `Ok () -> ()
            | `Blocked | `Fail _ -> failwith "insert")
          keys;
        (match K.commit k txn with `Ok () -> () | _ -> failwith "commit");
        let txn = K.begin_txn k in
        let rows =
          match K.scan k txn ~table:"kv" ~from_key ~limit:50 with
          | `Ok rows -> rows
          | `Blocked | `Fail _ -> failwith "scan"
        in
        ignore (K.commit k txn);
        rows
      in
      let reference = scan_with Untx_tc.Tc.Key_locks in
      List.for_all
        (fun cc -> scan_with cc = reference)
        [ Untx_tc.Tc.Range_locks 16; Untx_tc.Tc.Table_locks;
          Untx_tc.Tc.Optimistic ])

let suite = suite @ [ test prop_scan_protocol_equivalence ]
