let () =
  Alcotest.run "untx"
    [
      ("util", Suite_util.suite);
      ("storage", Suite_storage.suite);
      ("wal", Suite_wal.suite);
      ("ablsn", Suite_ablsn.suite);
      ("msg", Suite_msg.suite);
      ("wire", Suite_wire.suite);
      ("btree", Suite_btree.suite);
      ("lock", Suite_lock.suite);
      ("dc", Suite_dc.suite);
      ("tc", Suite_tc.suite);
      ("transport", Suite_transport.suite);
      ("kernel", Suite_kernel.suite);
      ("driver", Suite_driver.suite);
      ("baseline", Suite_baseline.suite);
      ("cloud", Suite_cloud.suite);
      ("deploy", Suite_deploy.suite);
      ("extensions", Suite_extensions.suite);
      ("occ", Suite_occ.suite);
      ("recovery", Suite_recovery.suite);
      ("fault", Suite_fault.suite);
      ("chaos", Suite_chaos.suite);
      ("cloud-recovery", Suite_cloud_recovery.suite);
      ("properties", Props.suite);
    ]
