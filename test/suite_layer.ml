(* The layered log store: L0 ingest, compaction into L1, page@LSN
   reconstruction, crash recovery, and the deployment-level refactors it
   unlocks — truncation past detached laggards, layer-sourced failover
   redo, standby bootstrap from materialized state, point-in-time
   reads. *)

module Deploy = Untx_cloud.Deploy
module Repl = Untx_repl.Repl
module Layer = Untx_layer.Layer
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Op = Untx_msg.Op
module Tc_id = Untx_util.Tc_id
module Lsn = Untx_util.Lsn
module Instrument = Untx_util.Instrument
module Fault = Untx_fault.Fault
module Audit = Untx_audit.Audit

let lsn i = Lsn.of_int i

let ok = function
  | `Ok v -> v
  | `Blocked -> Alcotest.fail "blocked"
  | `Fail m -> Alcotest.fail m

(* ---- direct store tests ---------------------------------------------- *)

let mk_store ?counters ?l0_seal_ops ?compact_runs () =
  Layer.create ?counters ?l0_seal_ops ?compact_runs ~writer:(Tc_id.of_int 1)
    ~versioned:(fun _ -> false) ()

(* A synthetic stable log: ops numbered from 1, fed through [absorb]'s
   contract (every op in (ingested, upto] in LSN order). *)
let feed ops emit = List.iteri (fun i op -> emit (lsn (i + 1)) op) ops

let ins k v = Op.Insert { table = "t"; key = k; value = v }

let upd k v = Op.Update { table = "t"; key = k; value = v }

let del k = Op.Delete { table = "t"; key = k }

let test_ingest_and_reconstruct () =
  let s = mk_store () in
  let ops = [ ins "a" "a1"; ins "b" "b1"; upd "a" "a2"; del "b" ] in
  Layer.absorb s ~upto:(lsn 4) (feed ops);
  Alcotest.(check int) "ingested" 4 (Lsn.to_int (Layer.ingested_lsn s));
  Alcotest.(check int) "nothing durable yet" 0
    (Lsn.to_int (Layer.durable_lsn s));
  let rd key at = Layer.reconstruct s ~table:"t" ~key ~at:(lsn at) in
  Alcotest.(check (option string)) "a before birth" None (rd "a" 0);
  Alcotest.(check (option string)) "a at insert" (Some "a1") (rd "a" 1);
  Alcotest.(check (option string)) "a before its update" (Some "a1") (rd "a" 2);
  Alcotest.(check (option string)) "a after update" (Some "a2") (rd "a" 3);
  Alcotest.(check (option string)) "b alive" (Some "b1") (rd "b" 3);
  Alcotest.(check (option string)) "b deleted" None (rd "b" 4);
  Alcotest.(check bool) "beyond ingest refused, typed" true
    (try
       ignore (rd "a" 5);
       false
     with Layer.Beyond_ingested { wanted; ingested } ->
       Lsn.to_int wanted = 5 && Lsn.to_int ingested = 4)

let test_compaction_merges_runs () =
  let s = mk_store ~l0_seal_ops:2 ~compact_runs:100 () in
  let ops =
    [ ins "a" "a1"; ins "b" "b1"; upd "a" "a2"; upd "b" "b2"; upd "a" "a3" ]
  in
  Layer.absorb s ~upto:(lsn 5) (feed ops);
  Alcotest.(check int) "sealed at 2 ops each" 3 (Layer.l0_runs s);
  Layer.compact s;
  (* the active (unsealed) run stays in L0; the sealed ones merged *)
  Alcotest.(check int) "one L1 layer" 1 (Layer.l1_layers s);
  Alcotest.(check int) "active run survives" 1 (Layer.l0_runs s);
  Alcotest.(check int) "four entries compacted" 4 (Layer.l1_entries s);
  Alcotest.(check int) "durable covers the sealed prefix" 4
    (Lsn.to_int (Layer.durable_lsn s));
  (* reconstruction spans L0 and L1 transparently *)
  let rd key at = Layer.reconstruct s ~table:"t" ~key ~at:(lsn at) in
  Alcotest.(check (option string)) "from L1" (Some "a2") (rd "a" 3);
  Alcotest.(check (option string)) "from active L0" (Some "a3") (rd "a" 5);
  Layer.compact ~all:true s;
  Alcotest.(check int) "all runs drained" 0 (Layer.l0_runs s);
  Alcotest.(check int) "durable at ingest" 5 (Lsn.to_int (Layer.durable_lsn s));
  Alcotest.(check (option string)) "still answers history" (Some "a1")
    (rd "a" 1)

let test_crash_rebuild_from_l1 () =
  let s = mk_store () in
  let ops = [ ins "a" "a1"; ins "b" "b1"; upd "a" "a2" ] in
  Layer.absorb s ~upto:(lsn 3) (feed ops);
  Layer.compact ~all:true s;
  (* an un-compacted tail on top *)
  let tail = ops @ [ del "b"; upd "a" "a3" ] in
  Layer.absorb s ~upto:(lsn 5) (feed tail);
  Layer.crash s;
  Alcotest.(check int) "ingest falls back to durable" 3
    (Lsn.to_int (Layer.ingested_lsn s));
  Alcotest.(check (option string)) "L1 state survives" (Some "a2")
    (Layer.reconstruct s ~table:"t" ~key:"a" ~at:(lsn 3));
  (* the owner re-absorbs the suffix from the (retained) log *)
  Layer.absorb s ~upto:(lsn 5) (feed tail);
  Alcotest.(check (option string)) "tail recovered" (Some "a3")
    (Layer.reconstruct s ~table:"t" ~key:"a" ~at:(lsn 5));
  Alcotest.(check (option string)) "delete recovered" None
    (Layer.reconstruct s ~table:"t" ~key:"b" ~at:(lsn 5))

let test_iter_ops_and_current () =
  let s = mk_store () in
  let ops = [ ins "a" "a1"; ins "b" "b1"; upd "a" "a2"; del "b" ] in
  Layer.absorb s ~upto:(lsn 4) (feed ops);
  Layer.compact ~all:true s;
  let seen = ref [] in
  Layer.iter_ops s ~from:(lsn 2) ~upto:(lsn 4) (fun l _ ->
      seen := Lsn.to_int l :: !seen);
  Alcotest.(check (list int)) "ops replayed in order" [ 2; 3; 4 ]
    (List.rev !seen);
  let current = ref [] in
  Layer.iter_current s (fun ~table:_ ~key record ->
      current :=
        (key, Untx_dc.Stored_record.current record) :: !current);
  (* the unversioned delete removed [b] physically, mirroring the DC *)
  Alcotest.(check (list (pair string (option string))))
    "current state"
    [ ("a", Some "a2") ]
    (List.sort compare !current)

let test_compact_mid_crash_is_atomic () =
  let counters = Instrument.create () in
  let s = mk_store ~counters () in
  Layer.absorb s ~upto:(lsn 2) (feed [ ins "a" "a1"; upd "a" "a2" ]);
  Fault.arm [ Fault.crash_at Layer.p_compact_mid 1 ];
  Alcotest.check_raises "compaction dies mid-merge"
    (Fault.Injected_crash "layer.compact.mid") (fun () ->
      Layer.compact ~all:true s);
  Fault.disarm ();
  Alcotest.(check int) "no layer installed" 0 (Layer.l1_layers s);
  Alcotest.(check int) "durable did not move" 0
    (Lsn.to_int (Layer.durable_lsn s));
  Alcotest.(check int) "sealed runs survive for the retry" 1 (Layer.l0_runs s);
  Layer.compact s;
  Alcotest.(check int) "retry lands the layer" 1 (Layer.l1_layers s);
  Alcotest.(check (option string)) "nothing lost" (Some "a2")
    (Layer.reconstruct s ~table:"t" ~key:"a" ~at:(lsn 2))

let test_ingest_drop_pins_cursor () =
  let counters = Instrument.create () in
  let s = mk_store ~counters () in
  let ops = [ ins "a" "a1"; ins "b" "b1"; upd "a" "a2" ] in
  Fault.arm [ Fault.io_error_at Layer.p_ingest_drop 2 ];
  Layer.absorb s ~upto:(lsn 3) (feed ops);
  Fault.disarm ();
  Alcotest.(check int) "cursor pinned before the dropped record" 1
    (Lsn.to_int (Layer.ingested_lsn s));
  Alcotest.(check int) "drop counted" 1
    (Instrument.get counters "layer.ingest_dropped");
  Alcotest.(check (option string)) "intact prefix answers" (Some "a1")
    (Layer.reconstruct s ~table:"t" ~key:"a" ~at:(lsn 1));
  (* the next absorb re-reads the suffix and completes *)
  Layer.absorb s ~upto:(lsn 3) (feed ops);
  Alcotest.(check int) "suffix recovered" 3 (Lsn.to_int (Layer.ingested_lsn s));
  Alcotest.(check (option string)) "nothing silently lost" (Some "b1")
    (Layer.reconstruct s ~table:"t" ~key:"b" ~at:(lsn 3))

(* ---- deployment-level tests ------------------------------------------ *)

let layered_deploy ?counters ~parts ~replicas () =
  let d = Deploy.create ?counters ~layers:true () in
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  let dcs = List.init parts (Printf.sprintf "dc%d") in
  List.iter (fun n -> ignore (Deploy.add_dc d ~name:n Dc.default_config)) dcs;
  Deploy.add_partitioned_table d ~replicas ~name:"t" ~versioned:false ~dcs ();
  (d, tc)

let commit_one tc ~key ~value =
  let txn = Tc.begin_txn tc in
  (match Tc.update tc txn ~table:"t" ~key ~value with
  | `Ok () -> ()
  | `Blocked -> Alcotest.fail "blocked"
  | `Fail _ -> ok (Tc.insert tc txn ~table:"t" ~key ~value));
  ok (Tc.commit tc txn)

let fill tc ?(prefix = "k") ?(value = "v") n =
  List.iter
    (fun i -> commit_one tc ~key:(Printf.sprintf "%s%03d" prefix i) ~value)
    (List.init n Fun.id)

let grant_checkpoint d tc ~dc:dcn =
  Dc.flush_all (Deploy.dc d dcn);
  let rec grant tries =
    if Tc.checkpoint tc then ()
    else if tries > 0 then begin
      Deploy.quiesce d;
      Dc.flush_all (Deploy.dc d dcn);
      grant (tries - 1)
    end
    else Alcotest.fail "checkpoint never granted"
  in
  grant 4

let test_read_as_of () =
  let counters = Instrument.create () in
  let d, tc = layered_deploy ~counters ~parts:2 ~replicas:0 () in
  let stamp () =
    Deploy.quiesce d;
    Tc.force_log tc;
    Tc.stable_lsn tc
  in
  commit_one tc ~key:"city" ~value:"rome";
  let at_rome = stamp () in
  commit_one tc ~key:"city" ~value:"oslo";
  let at_oslo = stamp () in
  let txn = Tc.begin_txn tc in
  ok (Tc.delete tc txn ~table:"t" ~key:"city");
  ok (Tc.commit tc txn);
  let at_gone = stamp () in
  let rd at = Deploy.read_as_of d ~table:"t" ~key:"city" ~at in
  Alcotest.(check (option string)) "before birth" None (rd Lsn.zero);
  Alcotest.(check (option string)) "first value" (Some "rome") (rd at_rome);
  Alcotest.(check (option string)) "overwritten" (Some "oslo") (rd at_oslo);
  Alcotest.(check (option string)) "deleted" None (rd at_gone);
  Alcotest.(check (option string)) "live read agrees with the present"
    (Tc.read_committed tc ~table:"t" ~key:"city")
    (rd at_gone);
  Alcotest.(check int) "history reads counted" 5
    (Instrument.get counters "dc.history_reads")

let test_truncation_passes_detached_laggard () =
  let counters = Instrument.create () in
  let d, tc = layered_deploy ~counters ~parts:1 ~replicas:1 () in
  fill tc 10;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
  let frozen = Repl.Standby.applied (Deploy.standby d sbn) ~tc:(Tc.id tc) in
  Repl.Manager.detach m ~name:sbn;
  fill tc ~prefix:"late" 40;
  Deploy.quiesce d;
  (* once compaction makes the history durable in layers, the laggard no
     longer pins the log: truncation sails past its frozen cursor *)
  Repl.Manager.compact_layers m;
  grant_checkpoint d tc ~dc:"dc0";
  Alcotest.(check bool) "truncation passed the laggard" true
    Lsn.(Tc.log_retained_from tc > Lsn.next frozen);
  (* and the dormant lease never burns: the laggard stays promotable *)
  Alcotest.(check int) "no lease expiry" 0
    (Instrument.get counters "repl.lease_expirations");
  Alcotest.(check bool) "laggard still eligible via layers" true
    (Repl.Manager.promotion_eligible m ~name:sbn)

let test_failover_redoes_from_layers () =
  let counters = Instrument.create () in
  let d, tc = layered_deploy ~counters ~parts:1 ~replicas:1 () in
  fill tc 10;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
  let frozen = Repl.Standby.applied (Deploy.standby d sbn) ~tc:(Tc.id tc) in
  Repl.Manager.detach m ~name:sbn;
  fill tc ~prefix:"gap" 40;
  Deploy.quiesce d;
  Repl.Manager.compact_layers m;
  grant_checkpoint d tc ~dc:"dc0";
  (* the log no longer retains the laggard's gap — only layers do *)
  Alcotest.(check bool) "gap is below the retained head" true
    Lsn.(Lsn.next frozen < Tc.log_retained_from tc);
  Deploy.fail_over d ~dc:"dc0";
  Alcotest.(check bool) "catch-up skipped (log cannot re-ship)" true
    (Instrument.get counters "repl.catchup_skipped" > 0);
  Alcotest.(check bool) "redo sourced below the log head from layers" true
    (Instrument.get counters "tc.redo_from_layers" > 0);
  List.iter
    (fun i ->
      let key = Printf.sprintf "gap%03d" i in
      Alcotest.(check (option string)) (key ^ " survives") (Some "v")
        (Tc.read_committed tc ~table:"t" ~key))
    (List.init 40 Fun.id)

let test_fresh_standby_bootstraps_from_layers () =
  let counters = Instrument.create () in
  let d, tc = layered_deploy ~counters ~parts:1 ~replicas:0 () in
  fill tc 30;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  Repl.Manager.compact_layers m;
  grant_checkpoint d tc ~dc:"dc0";
  Alcotest.(check bool) "history left the log" true
    Lsn.(Tc.log_retained_from tc > Lsn.next Lsn.zero);
  (* a full-redo standby is impossible now; the layer bootstrap installs
     materialized state and adopts the ingest watermark instead *)
  let sbn = Deploy.add_replica d ~dc:"dc0" in
  Alcotest.(check bool) "bootstrap installed records" true
    (Instrument.get counters "repl.bootstrap_installs" >= 30);
  Alcotest.(check (list string)) "attached from birth" [ sbn ]
    (Deploy.attached_replicas d ~dc:"dc0");
  fill tc ~prefix:"post" 10;
  Deploy.quiesce d;
  Deploy.settle_replicas d;
  let sb = Repl.Standby.dc (Deploy.standby d sbn) in
  let primary = Deploy.dc d "dc0" in
  let visible dc =
    List.filter_map
      (fun (k, r) ->
        Untx_dc.Stored_record.current r |> Option.map (fun v -> (k, v)))
      (Dc.dump_table dc "t")
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string))) "standby matches primary"
    (visible primary) (visible sb)

let test_rebuild_replica_recovers () =
  let counters = Instrument.create () in
  let d, tc = layered_deploy ~counters ~parts:1 ~replicas:1 () in
  fill tc 30;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
  Repl.Manager.compact_layers m;
  grant_checkpoint d tc ~dc:"dc0";
  (* the crash forgets its cursors and truncation passed the rejoin
     point, so shipping cannot resume — without layers this was a
     rebuild-required dead end; with them it parks detached,
     recoverable *)
  Deploy.crash_standby d sbn;
  Alcotest.(check bool) "reattach deferred" true
    (Instrument.get counters "repl.reattach_deferred" > 0);
  Alcotest.(check bool) "parked detached" true
    (match Repl.Manager.state_of m ~name:sbn with
    | Repl.Manager.Detached _ -> true
    | Repl.Manager.Attached | Repl.Manager.Rebuild_required -> false);
  let installed = Deploy.rebuild_replica d sbn in
  Alcotest.(check bool) "materialized state installed" true (installed >= 30);
  Alcotest.(check (list string)) "attached again" [ sbn ]
    (Deploy.attached_replicas d ~dc:"dc0");
  fill tc ~prefix:"post" 10;
  Deploy.quiesce d;
  let expected =
    List.init 30 (fun i -> (Printf.sprintf "k%03d" i, "v"))
    @ List.init 10 (fun i -> (Printf.sprintf "post%03d" i, "v"))
    |> List.sort compare
  in
  let report = Audit.run_deploy d ~tc:"tc1" ~table:"t" ~expected in
  Alcotest.(check (list string)) "audit clean" [] report.Audit.violations

(* The oracle check at checkpointed LSNs: snapshot the stable LSN after
   each round of overwrites, then demand that layered reconstruction at
   every snapshot reproduces that round's values — across interleaved
   compactions and log truncation. *)
let test_reconstruction_matches_checkpoints () =
  let d, tc = layered_deploy ~parts:2 ~replicas:1 () in
  let m = Deploy.manager d ~tc:"tc1" in
  let checkpoints = ref [] in
  List.iter
    (fun round ->
      fill tc ~value:(Printf.sprintf "r%d" round) 20;
      Deploy.quiesce d;
      Tc.force_log tc;
      checkpoints := (Tc.stable_lsn tc, Printf.sprintf "r%d" round)
      :: !checkpoints;
      if round mod 2 = 1 then begin
        Repl.Manager.compact_layers m;
        grant_checkpoint d tc ~dc:"dc0"
      end)
    (List.init 4 Fun.id);
  List.iter
    (fun (at, value) ->
      List.iter
        (fun i ->
          let key = Printf.sprintf "k%03d" i in
          Alcotest.(check (option string))
            (Printf.sprintf "%s@%d" key (Lsn.to_int at))
            (Some value)
            (Deploy.read_as_of d ~table:"t" ~key ~at))
        (List.init 20 Fun.id))
    !checkpoints;
  let expected = List.init 20 (fun i -> (Printf.sprintf "k%03d" i, "r3")) in
  let report = Audit.run_deploy d ~tc:"tc1" ~table:"t" ~expected in
  Alcotest.(check (list string)) "audit clean (incl. layer parity)" []
    report.Audit.violations

(* The read_as_of/reconstruct boundary semantics, pinned as regression
   tests at the store level: [at = 0] answers (nothing visible, and
   [`Unwritten], not [`Gone]), [at = durable] answers, one past the
   ingest watermark is the typed refusal naming both sides — never a
   silent [None]. *)
let test_layer_boundaries () =
  let s = mk_store () in
  Layer.absorb s ~upto:(lsn 3) (feed [ ins "a" "a1"; upd "a" "a2"; ins "b" "b1" ]);
  Layer.compact ~all:true s;
  Alcotest.(check (option string)) "reconstruct at zero" None
    (Layer.reconstruct s ~table:"t" ~key:"a" ~at:Lsn.zero);
  Alcotest.(check bool) "lookup at zero is `Unwritten" true
    (Layer.lookup s ~table:"t" ~key:"a" ~at:Lsn.zero = `Unwritten);
  Alcotest.(check int) "durable at ingest" 3 (Lsn.to_int (Layer.durable_lsn s));
  Alcotest.(check (option string)) "reconstruct at durable" (Some "a2")
    (Layer.reconstruct s ~table:"t" ~key:"a" ~at:(Layer.durable_lsn s));
  let beyond = Lsn.next (Layer.ingested_lsn s) in
  let refusal =
    Layer.Beyond_ingested { wanted = beyond; ingested = Layer.ingested_lsn s }
  in
  Alcotest.check_raises "reconstruct refuses, typed" refusal (fun () ->
      ignore (Layer.reconstruct s ~table:"t" ~key:"a" ~at:beyond));
  Alcotest.check_raises "lookup refuses, typed" refusal (fun () ->
      ignore (Layer.lookup s ~table:"t" ~key:"a" ~at:beyond));
  Alcotest.check_raises "iter_at refuses, typed" refusal (fun () ->
      Layer.iter_at s ~at:beyond (fun ~table:_ ~key:_ _ -> ()));
  Alcotest.check_raises "pin refuses, typed" refusal (fun () ->
      Layer.pin s ~at:beyond)

(* History truncation: a pin clamps the cut; unpinned, wholly-below
   layers fold into a rebased snapshot that keeps answering at and
   above the cut (including explicitly-absent keys) and refuses below
   it with the typed error. *)
let test_truncate_history_rebases () =
  let s = mk_store () in
  Layer.absorb s ~upto:(lsn 2) (feed [ ins "a" "a1"; upd "a" "a2" ]);
  Layer.compact ~all:true s;
  let tail = [ ins "a" "a1"; upd "a" "a2"; ins "b" "b1"; del "a" ] in
  Layer.absorb s ~upto:(lsn 4) (feed tail);
  Layer.compact ~all:true s;
  Alcotest.(check int) "two layers" 2 (Layer.l1_layers s);
  Layer.pin s ~at:(lsn 1);
  Alcotest.(check int) "pin clamps the cut: nothing reclaimed" 0
    (Layer.truncate_history s ~below:(lsn 3));
  Alcotest.(check int) "cut held at the pin" 1
    (Lsn.to_int (Layer.history_from s));
  Alcotest.(check (option string)) "pinned history answers" (Some "a1")
    (Layer.reconstruct s ~table:"t" ~key:"a" ~at:(lsn 1));
  Layer.unpin s ~at:(lsn 1);
  Alcotest.(check int) "unpinned: duplicate entry reclaimed" 1
    (Layer.truncate_history s ~below:(lsn 3));
  Alcotest.(check int) "history_from at the cut" 3
    (Lsn.to_int (Layer.history_from s));
  Alcotest.(check (option string)) "snapshot preserves pre-cut state"
    (Some "a2")
    (Layer.reconstruct s ~table:"t" ~key:"a" ~at:(lsn 3));
  Alcotest.(check (option string)) "post-cut history intact" None
    (Layer.reconstruct s ~table:"t" ~key:"a" ~at:(lsn 4));
  Alcotest.check_raises "below the cut refused, typed"
    (Layer.History_truncated { wanted = lsn 2; history_from = lsn 3 })
    (fun () -> ignore (Layer.reconstruct s ~table:"t" ~key:"a" ~at:(lsn 2)));
  (* the rebased snapshot is durable L1: a crash keeps it *)
  Layer.crash s;
  Alcotest.(check (option string)) "rebase survives crash" (Some "a2")
    (Layer.reconstruct s ~table:"t" ~key:"a" ~at:(lsn 3))

(* The same boundary contract one level up, through the deployment's
   routed read path: [at = 0] and [at = durable] answer, one past every
   store's watermark raises the deployment's typed error. *)
let test_deploy_read_as_of_boundaries () =
  let d, tc = layered_deploy ~parts:1 ~replicas:0 () in
  commit_one tc ~key:"a" ~value:"v1";
  Deploy.quiesce d;
  Tc.force_log tc;
  let durable = Tc.stable_lsn tc in
  Alcotest.(check (option string)) "at zero" None
    (Deploy.read_as_of d ~table:"t" ~key:"a" ~at:Lsn.zero);
  Alcotest.(check (option string)) "at durable" (Some "v1")
    (Deploy.read_as_of d ~table:"t" ~key:"a" ~at:durable);
  Alcotest.check_raises "beyond durable refused, typed"
    (Deploy.Out_of_range { wanted = Lsn.next durable; durable })
    (fun () ->
      ignore (Deploy.read_as_of d ~table:"t" ~key:"a" ~at:(Lsn.next durable)))

let suite =
  [
    Alcotest.test_case "ingest and reconstruct" `Quick
      test_ingest_and_reconstruct;
    Alcotest.test_case "compaction merges runs" `Quick
      test_compaction_merges_runs;
    Alcotest.test_case "crash rebuilds from L1" `Quick
      test_crash_rebuild_from_l1;
    Alcotest.test_case "iter_ops and iter_current" `Quick
      test_iter_ops_and_current;
    Alcotest.test_case "mid-compaction crash is atomic" `Quick
      test_compact_mid_crash_is_atomic;
    Alcotest.test_case "ingest drop pins the cursor" `Quick
      test_ingest_drop_pins_cursor;
    Alcotest.test_case "read_as_of" `Quick test_read_as_of;
    Alcotest.test_case "truncation passes a detached laggard" `Quick
      test_truncation_passes_detached_laggard;
    Alcotest.test_case "failover redoes from layers" `Quick
      test_failover_redoes_from_layers;
    Alcotest.test_case "fresh standby bootstraps from layers" `Quick
      test_fresh_standby_bootstraps_from_layers;
    Alcotest.test_case "rebuild_replica recovers a dead end" `Quick
      test_rebuild_replica_recovers;
    Alcotest.test_case "reconstruction matches checkpoints" `Quick
      test_reconstruction_matches_checkpoints;
    Alcotest.test_case "boundary semantics (store level)" `Quick
      test_layer_boundaries;
    Alcotest.test_case "truncate_history rebases under pins" `Quick
      test_truncate_history_rebases;
    Alcotest.test_case "boundary semantics (deploy level)" `Quick
      test_deploy_read_as_of_boundaries;
  ]
