(* The differential workload bank as tier-1 acceptance: every bank spec
   runs against its sequential oracle (scripted DC/TC crash cycles
   included) and must report zero violations; the surviving deployment
   then takes the full audit — per-table oracle parity over the merged
   fragments, and index parity for the index-maintaining specs.  A
   determinism check pins the whole pipeline to its seed. *)

module Workload = Untx_workload.Workload
module Audit = Untx_audit.Audit
module Chaos = Untx_audit.Chaos

let strings = Alcotest.(list string)

let run_spec_test spec () =
  let r, env = Workload.run spec in
  Alcotest.check strings
    (spec.Workload.w_name ^ ": differential violations")
    [] r.Workload.r_violations;
  Alcotest.(check bool)
    (spec.Workload.w_name ^ ": at least one crash-recovery cycle")
    true
    (r.Workload.r_crashes >= 1);
  Alcotest.(check bool)
    (spec.Workload.w_name ^ ": committed transactions")
    true (r.Workload.r_committed > 0);
  Alcotest.(check bool)
    (spec.Workload.w_name ^ ": differential checks ran")
    true (r.Workload.r_checks > 0);
  let d = env.Workload.e_deploy in
  List.iter
    (fun (table, expected) ->
      let report = Audit.run_deploy d ~tc:"tc1" ~table ~expected in
      Alcotest.check strings
        (spec.Workload.w_name ^ ": audit of " ^ table)
        [] report.Audit.violations)
    env.Workload.e_expected;
  if spec.Workload.w_indexed then
    List.iter
      (fun (table, _) ->
        Alcotest.check strings
          (spec.Workload.w_name ^ ": index parity of " ^ table)
          []
          (Audit.check_index d ~idx:env.Workload.e_idx ~table))
      spec.Workload.w_tables

let test_bank_shape () =
  let bank = Workload.bank () in
  Alcotest.(check bool) "at least five distinct workloads" true
    (List.length bank >= 5);
  let names = List.map (fun s -> s.Workload.w_name) bank in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Workload.w_name ^ " schedules a crash")
        true
        (s.Workload.w_crashes <> []))
    bank;
  Alcotest.(check bool) "both Section 3.1 lock protocols appear" true
    (List.exists (fun s -> s.Workload.w_protocol = Untx_tc.Tc.Key_locks) bank
    && List.exists
         (fun s ->
           match s.Workload.w_protocol with
           | Untx_tc.Tc.Range_locks _ -> true
           | _ -> false)
         bank);
  Alcotest.(check bool) "index-maintaining specs appear" true
    (List.exists (fun s -> s.Workload.w_indexed) bank)

let test_determinism () =
  let spec = Workload.find "indexed_zipf" in
  let r1, env1 = Workload.run ~seed:99 spec in
  let r2, env2 = Workload.run ~seed:99 spec in
  Alcotest.(check int) "committed" r1.Workload.r_committed r2.Workload.r_committed;
  Alcotest.(check int) "aborted" r1.Workload.r_aborted r2.Workload.r_aborted;
  Alcotest.(check int) "checks" r1.Workload.r_checks r2.Workload.r_checks;
  Alcotest.check strings "violations" r1.Workload.r_violations
    r2.Workload.r_violations;
  List.iter2
    (fun (t1, rows1) (t2, rows2) ->
      Alcotest.(check string) "table" t1 t2;
      Alcotest.(check (list (pair string string))) "rows" rows1 rows2)
    env1.Workload.e_expected env2.Workload.e_expected

let test_chaos_wrapper () =
  let c =
    Chaos.run_cycle_workload ~spec:(Workload.find "mixed_tables") ~seed:5 ()
  in
  Alcotest.check strings "cycle clean" [] c.Chaos.c_violations;
  Alcotest.(check bool) "crashes" true (c.Chaos.c_crashes >= 1)

let suite =
  List.map
    (fun spec ->
      Alcotest.test_case ("bank: " ^ spec.Workload.w_name) `Quick
        (run_spec_test spec))
    (Workload.bank ())
  @ [
      Alcotest.test_case "bank shape" `Quick test_bank_shape;
      Alcotest.test_case "seeded determinism" `Quick test_determinism;
      Alcotest.test_case "chaos wrapper cycle" `Quick test_chaos_wrapper;
    ]
