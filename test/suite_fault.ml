(* The fault-injection layer itself: plan determinism, rule semantics,
   and the storage/WAL failure models built on top of it (torn page
   writes, transient I/O errors, partial log force). *)

module Fault = Untx_fault.Fault
module Instrument = Untx_util.Instrument
module Lsn = Untx_util.Lsn
module Page = Untx_storage.Page
module Disk = Untx_storage.Disk
module Wal = Untx_wal.Wal

let teardown () = Fault.disarm ()

let hits_crash point = try Fault.hit point; false with Fault.Injected_crash p ->
  Alcotest.(check string) "crash payload names the point" point p;
  true

let test_nth_fires_once () =
  Fault.arm [ Fault.crash_at "t.point" 3 ];
  Alcotest.(check bool) "hit 1 passes" false (hits_crash "t.point");
  Alcotest.(check bool) "hit 2 passes" false (hits_crash "t.point");
  Alcotest.(check bool) "hit 3 fires" true (hits_crash "t.point");
  (* Nth rules are consumed: the plan stays armed but the rule is spent. *)
  Alcotest.(check bool) "hit 4 passes" false (hits_crash "t.point");
  Alcotest.(check (list string)) "fired log" [ "t.point" ] (Fault.fired_points ());
  Alcotest.(check int) "hits counted" 4 (Fault.hits "t.point");
  teardown ()

let test_prob_deterministic () =
  let run () =
    Fault.arm ~seed:11 [ Fault.crash_with_prob "t.p" 0.3 ];
    let fires = ref [] in
    for i = 1 to 100 do
      if hits_crash "t.p" then fires := i :: !fires
    done;
    List.rev !fires
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "prob rule fired at all" true (a <> []);
  Alcotest.(check (list int)) "same seed, same firing instants" a b;
  Fault.arm ~seed:12 [ Fault.crash_with_prob "t.p" 0.3 ];
  let fires = ref [] in
  for i = 1 to 100 do
    if hits_crash "t.p" then fires := i :: !fires
  done;
  Alcotest.(check bool) "different seed, different instants" true
    (List.rev !fires <> a);
  teardown ()

let test_disarm_and_io_error () =
  Fault.arm [ Fault.io_error_at "t.io" 1 ];
  (try Fault.hit "t.io"; Alcotest.fail "expected Io_error"
   with Fault.Io_error p -> Alcotest.(check string) "payload" "t.io" p);
  Fault.disarm ();
  Alcotest.(check bool) "disarmed hit is a no-op" false (hits_crash "t.io");
  Alcotest.(check (list string)) "fired log survives disarm" [ "t.io" ]
    (Fault.fired_points ());
  Alcotest.(check bool) "points enumerable" true
    (List.mem "disk.page_write.torn" (Fault.declared ()))

let page ~id v =
  let p =
    Page.create ~id:(Untx_storage.Page_id.of_int id) ~kind:Page.Leaf
      ~capacity:256
  in
  Page.set p ~key:"k" ~data:v;
  p

let test_torn_write () =
  let counters = Instrument.create () in
  let d = Disk.create ~counters () in
  let pid = Disk.alloc d in
  let id = Untx_storage.Page_id.to_int pid in
  Disk.write d (page ~id "old");
  Fault.arm ~seed:1 [ Fault.crash_at "disk.page_write.torn" 1 ];
  (try Disk.write d (page ~id "new"); Alcotest.fail "expected crash"
   with Fault.Injected_crash _ -> ());
  Fault.disarm ();
  (* The torn image persisted only a prefix: its checksum fails on read
     and the last fully written image is served instead. *)
  let back = Option.get (Disk.read d pid) in
  Alcotest.(check (option string)) "reader sees the pre-crash image"
    (Some "old") (Page.find back "k");
  Alcotest.(check int) "torn write counted" 1 (Disk.torn_writes d);
  Alcotest.(check int) "torn image detected" 1 (Disk.torn_detected d);
  Alcotest.(check int) "counter mirrored" 1
    (Instrument.get counters "disk.torn_pages_detected")

let test_transient_io_retried () =
  let d = Disk.create () in
  let pid = Disk.alloc d in
  Fault.arm ~seed:1 [ Fault.io_error_at "disk.page_write.io" 1 ];
  (* A single transient error is absorbed by the bounded retry. *)
  Disk.write d (page ~id:(Untx_storage.Page_id.to_int pid) "v");
  Fault.disarm ();
  Alcotest.(check int) "retry recorded" 1 (Disk.io_retries d);
  Alcotest.(check bool) "write took effect" true (Disk.read d pid <> None);
  (* Persistent errors exhaust the retries and propagate. *)
  Fault.arm ~seed:1 [ Fault.io_error_with_prob "disk.page_read.io" 1.0 ];
  (try ignore (Disk.read d pid); Alcotest.fail "expected Io_error"
   with Fault.Io_error _ -> ());
  teardown ()

let test_wal_partial_force () =
  let w = Wal.create ~label:"wal.test" ~size:String.length () in
  let l1 = Wal.append w "a" in
  let _l2 = Wal.append w "b" in
  let l3 = Wal.append w "c" in
  Fault.arm [ Fault.crash_at "wal.test.force.mid" 2 ];
  (try Wal.force w; Alcotest.fail "expected crash"
   with Fault.Injected_crash _ -> ());
  Fault.disarm ();
  Wal.crash w;
  (* The crash hit after the second record stabilized: the stable log is
     a strict prefix of the forced batch, and the tail is gone. *)
  Alcotest.(check int) "stable prefix" 2 (Wal.stable_count w);
  Alcotest.(check int) "tail lost" 0 (Wal.volatile_count w);
  Alcotest.(check (option string)) "first record stable" (Some "a")
    (Wal.find w l1);
  Alcotest.(check (option string)) "third record lost" None (Wal.find w l3);
  (* LSNs are never reused after the crash. *)
  Alcotest.(check bool) "fresh lsn above the lost tail" true
    Lsn.(Wal.append w "d" > l3)

let suite =
  [
    Alcotest.test_case "Nth rule fires once, deterministically" `Quick
      test_nth_fires_once;
    Alcotest.test_case "Prob rule is a pure function of the seed" `Quick
      test_prob_deterministic;
    Alcotest.test_case "disarm, Io_fail action, declared registry" `Quick
      test_disarm_and_io_error;
    Alcotest.test_case "torn page write persists a prefix" `Quick
      test_torn_write;
    Alcotest.test_case "transient I/O errors are retried" `Quick
      test_transient_io_retried;
    Alcotest.test_case "mid-force crash leaves a stable prefix" `Quick
      test_wal_partial_force;
  ]
