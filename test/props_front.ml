(* Front-end properties.

   (1) The DC's control-idempotence sessions are keyed (tc, epoch, seq),
   not bare (epoch, seq): two TCs' control streams — both starting at
   (epoch 1, seq 1) — may be interleaved arbitrarily and sprinkled with
   duplicate deliveries, and every reply must still belong to its own
   sender with each TC's final watermarks equal to the last it sent.
   Under the old bare-(epoch, seq) keying the second sender's seq 1
   would replay the FIRST sender's memoized ack and its watermarks would
   never apply.

   (2) Session dispatch is deterministic: the same deployment seed, the
   same open/submit sequence — twice, from scratch — lands on identical
   TC assignments and identical transaction results. *)

module Deploy = Untx_cloud.Deploy
module Front = Untx_front.Front
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Wire = Untx_msg.Wire
module Tc_id = Untx_util.Tc_id
module Lsn = Untx_util.Lsn

let test prop = Helpers.qcheck_test prop

(* --- (tc, epoch, seq) control-session keying --------------------------- *)

type weave = {
  n1 : int;  (** control messages TC 1 sends (seq 1..n1, epoch 1) *)
  n2 : int;  (** control messages TC 2 sends (seq 1..n2, epoch 1) *)
  picks : bool list;  (** interleaving: true = next from TC 1 *)
  dups : int list;  (** delivery positions re-delivered immediately *)
}

let weave_gen =
  QCheck.Gen.(
    let* n1 = int_range 1 8 in
    let* n2 = int_range 1 8 in
    let* picks = list_repeat (n1 + n2) bool in
    let* dups = list_size (int_bound 4) (int_bound (n1 + n2 - 1)) in
    return { n1; n2; picks; dups })

let weave_arb =
  QCheck.make
    ~print:(fun w ->
      Printf.sprintf "n1=%d n2=%d picks=[%s] dups=[%s]" w.n1 w.n2
        (String.concat ""
           (List.map (fun b -> if b then "1" else "2") w.picks))
        (String.concat ";" (List.map string_of_int w.dups)))
    weave_gen

(* Interleave the two senders' frame lists under [picks], preserving
   each sender's own order; exhausted picks fall through to whichever
   sender still has frames. *)
let interleave picks xs ys =
  let rec go picks xs ys acc =
    match (xs, ys) with
    | [], [] -> List.rev acc
    | x :: xs', [] -> go picks xs' [] (x :: acc)
    | [], y :: ys' -> go picks [] ys' (y :: acc)
    | x :: xs', y :: ys' -> (
      match picks with
      | true :: picks' -> go picks' xs' ys (x :: acc)
      | false :: picks' -> go picks' xs ys' (y :: acc)
      | [] -> go [] xs' ys (x :: acc))
  in
  go picks xs ys []

let prop_control_sessions_keyed_per_tc =
  QCheck.Test.make ~count:120
    ~name:"control sessions are keyed (tc, epoch, seq)" weave_arb (fun w ->
      let dc = Dc.create Dc.default_config in
      let tc1 = Tc_id.of_int 1 and tc2 = Tc_id.of_int 2 in
      let frames tc n =
        List.init n (fun i ->
            let seq = i + 1 in
            ( tc,
              seq,
              Wire.encode_control
                {
                  Wire.c_epoch = 1;
                  c_seq = seq;
                  c_ctl =
                    Wire.Watermarks
                      {
                        tc;
                        eosl = Lsn.of_int (2 * seq);
                        lwm = Lsn.of_int seq;
                      };
                } ))
      in
      let stream = interleave w.picks (frames tc1 w.n1) (frames tc2 w.n2) in
      (* expand duplicate deliveries: position p's frame arrives twice *)
      let deliveries =
        List.concat
          (List.mapi
             (fun p f -> if List.mem p w.dups then [ f; f ] else [ f ])
             stream)
      in
      List.for_all
        (fun (tc, seq, frame) ->
          match Dc.handle_control_frame dc frame with
          | None -> false (* in-order per sender: every delivery answers *)
          | Some reply_frame ->
            let r = Wire.decode_control_reply reply_frame in
            (* the ack belongs to ITS sender's session, at its seq *)
            Tc_id.equal r.Wire.r_tc tc && r.Wire.r_epoch = 1
            && r.Wire.r_seq = seq)
        deliveries
      && (* each TC's watermark slots hold the LAST it sent — neither
            absorbed the other's stream *)
      Lsn.to_int (Dc.eosl_of dc tc1) = 2 * w.n1
      && Lsn.to_int (Dc.lwm_of dc tc1) = w.n1
      && Lsn.to_int (Dc.eosl_of dc tc2) = 2 * w.n2
      && Lsn.to_int (Dc.lwm_of dc tc2) = w.n2)

(* --- dispatch determinism ---------------------------------------------- *)

type script = {
  sessions : int;  (** sessions opened up front *)
  writes : (int * int * int) list;
      (** (session index, key index, value tag) — one txn each *)
}

let script_gen =
  QCheck.Gen.(
    let* sessions = int_range 1 6 in
    let* n = int_range 1 24 in
    let* writes =
      list_repeat n
        (triple (int_bound (sessions - 1)) (int_bound 7) (int_bound 99))
    in
    return { sessions; writes })

let script_arb =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "sessions=%d writes=[%s]" s.sessions
        (String.concat ";"
           (List.map
              (fun (si, ki, v) -> Printf.sprintf "%d:k%d=%d" si ki v)
              s.writes)))
    script_gen

(* One full run from scratch; returns (per-session TC assignment,
   per-ticket results in submission order). *)
let run_script s =
  let d = Deploy.create ~seed:77 () in
  ignore (Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)));
  ignore (Deploy.add_tc d ~name:"tc2" (Tc.default_config (Tc_id.of_int 2)));
  ignore (Deploy.add_dc d ~name:"dc0" Dc.default_config);
  ignore (Deploy.add_dc d ~name:"dc1" Dc.default_config);
  Deploy.add_partitioned_table d ~name:"t" ~versioned:false
    ~dcs:[ "dc0"; "dc1" ] ();
  let front =
    Front.create
      ~cfg:{ Front.max_sessions = 8; session_queue = 64; total_queue = 256;
             batch = 2 }
      d
  in
  let sess = Array.init s.sessions (fun _ -> Front.open_session front) in
  (* per-session key namespaces keep the updaters disjoint across TCs,
     as Section 6 requires; each txn inserts a fresh key and reads the
     session's previous one, so results carry real pipelined reads *)
  let last_key = Array.make s.sessions None in
  let seq_no = Array.make s.sessions 0 in
  let tickets =
    List.map
      (fun (si, ki, v) ->
        let session = sess.(si) in
        let key = Printf.sprintf "s%d-j%d-k%d" si seq_no.(si) ki in
        seq_no.(si) <- seq_no.(si) + 1;
        let ops =
          Front.Insert { table = "t"; key; value = Printf.sprintf "v%d" v }
          ::
          (match last_key.(si) with
          | Some prev -> [ Front.Read { table = "t"; key = prev } ]
          | None -> [])
        in
        last_key.(si) <- Some key;
        match Front.submit front session ops with
        | `Ticket k -> k
        | `Overloaded r -> failwith ("unexpected shed: " ^ r))
      s.writes
  in
  Front.drain front;
  let results =
    List.map
      (fun k ->
        match Front.poll front k with
        | `Done (Front.Committed reads) ->
          "C:"
          ^ String.concat ","
              (List.map (function Some v -> v | None -> "-") reads)
        | `Done (Front.Rejected reason) -> "R:" ^ reason
        | `Pending -> "pending")
      tickets
  in
  (Array.to_list (Array.map Front.session_tc sess), results)

let prop_dispatch_deterministic =
  QCheck.Test.make ~count:30 ~name:"session dispatch is deterministic"
    script_arb (fun s ->
      let a_tcs, a_results = run_script s in
      let b_tcs, b_results = run_script s in
      a_tcs = b_tcs && a_results = b_results)

let suite =
  [
    test prop_control_sessions_keyed_per_tc;
    test prop_dispatch_deterministic;
  ]
