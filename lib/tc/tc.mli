(** The Transactional Component.

    A TC wraps all requests from the application: it does transactional
    locking (with no knowledge of pagination), logical undo/redo logging,
    commit/abort, log forcing for durability, and the contract-keeping
    traffic to its DCs (EOSL, LWM, checkpoint, restart) — Section 4.1.1.

    Concurrency control is strict two-phase locking over logical
    resources.  Two interchangeable range protocols implement Section 3.1:

    - [Key_locks]: individual record locks; scans use the *fetch-ahead*
      protocol (speculative probe, lock the returned keys, verify).
    - [Range_locks n]: a static order-preserving partition of each
      table's key space into [n] slots; every access locks its slot.
      Fewer, coarser locks — less concurrency, less overhead.
    - [Table_locks]: the coarsest scheme the paper's Section 3.1 lists
      among what "many systems currently support": one lock per table.
    - [Optimistic]: the "optimistic methods" Section 4.1.1 allows the TC
      to choose: lock-free reads/scans with observations recorded,
      writes buffered, backward validation at commit (any observed key
      or range that changed aborts the transaction), then the buffered
      writes applied and committed.  Scans do not see the transaction's
      own buffered writes.

    The TC never lets two conflicting operations be outstanding at a DC
    simultaneously (its obligation from Section 1.2): before dispatching
    an operation it awaits acknowledgement of any conflicting in-flight
    request.  Non-conflicting writes to versioned tables are pipelined,
    which is what creates genuine out-of-LSN-order arrivals at the DC.

    Operations return [`Blocked] instead of blocking the thread when a
    lock is unavailable; the workload driver reschedules the transaction
    and uses {!resolve_deadlock} when nothing can run. *)

type cc_protocol = Key_locks | Range_locks of int | Table_locks | Optimistic

type config = {
  id : Untx_util.Tc_id.t;
  cc_protocol : cc_protocol;
  lwm_every : int;  (** send a low-water mark every n acknowledged ops *)
  resend_after : int;  (** pump rounds without progress before resending *)
  resend_backoff_max : int;
      (** the resend interval doubles after every resend of a request
          (exponential backoff), capped at this many stalled rounds *)
  resend_max_retries : int;
      (** per-request resend budget; exhausting it raises (bug guard —
          with an in-process DC a request can only be lost, not the DC
          itself), counted as ["tc.request_timeouts"] *)
  max_pump_rounds : int;  (** give up (bug guard) after this many stalls *)
  pipeline_writes : bool;
      (** dispatch versioned-table writes without awaiting each ack *)
  combine_watermarks : bool;
      (** send the combined [Watermarks] control instead of separate
          EOSL/LWM messages (the Section 4.2.1 simplification) *)
  group_commit : int;
      (** force the log every n commits (1 = every commit).  Batched
          commits are not durable until the group force — an explicit
          latency/IO trade for the E-ablation benchmarks. *)
  debug_checks : bool;
}

val default_config : Untx_util.Tc_id.t -> config

(** How the kernel wires a TC to a DC: an asynchronous byte plane.
    [send] and [send_control] enqueue encoded {!Untx_msg.Wire} frames on
    the data and control channels; both may be delayed, lossy,
    reordering or duplicating — the TC's contracts (unique ids, backoff
    resend, the DC's idempotence tests) mask all of it, on {e both}
    channels.  [drain] advances the plane one tick and surfaces due
    (reply frames, control-reply frames). *)
type dc_link = {
  dc_name : string;
  part : int;
      (** the DC's partition id, stamped into every request frame so a
          misrouted frame is rejected by the receiving DC *)
  send : string -> unit;
  send_control : string -> unit;
  drain : unit -> string list * string list;
}

type t

type txn

type 'a outcome = [ `Ok of 'a | `Blocked | `Fail of string ]

val create : ?counters:Untx_util.Instrument.t -> config -> t

val id : t -> Untx_util.Tc_id.t

val set_group_commit : t -> int -> unit
(** Retune the live group-commit batch size (initially
    [config.group_commit]).  A session front end raises it so commits
    from many client sessions share one force; commits already waiting
    ride the next force ({!force_log} closes a partial batch).  Raises
    [Invalid_argument] for sizes below 1. *)

val group_commit : t -> int
(** The live group-commit batch size. *)

val attach_dc : t -> dc_link -> unit

val map_table : t -> table:string -> dc:string -> versioned:bool -> unit
(** Route a table to a DC.  [versioned] must match the DC-side table. *)

val map_table_partitioned :
  t -> table:string -> versioned:bool -> partition:(string -> string) -> unit
(** Route a table whose keys are spread over several DCs (Figure 2:
    Movies/Reviews partitioned by movie across DC1 and DC2).
    [partition key] names the DC holding [key].  Scans must stay inside
    one partition — arrange keys so a scan prefix pins the partition, as
    the clustered movie-review schema does. *)

(** {2 Transactions} *)

val begin_txn : t -> txn

val xid : txn -> int

val is_active : txn -> bool

val insert : t -> txn -> table:string -> key:string -> value:string -> unit outcome

val update : t -> txn -> table:string -> key:string -> value:string -> unit outcome

val delete : t -> txn -> table:string -> key:string -> unit outcome

val read : t -> txn -> table:string -> key:string -> string option outcome

val scan :
  t -> txn -> table:string -> from_key:string -> limit:int ->
  (string * string) list outcome

val commit : t -> txn -> unit outcome
(** Forces the log, finishes version housekeeping, awaits outstanding
    acknowledgements, releases locks.  [`Fail] if a pipelined operation
    had failed — the transaction is rolled back automatically. *)

val abort : t -> txn -> reason:string -> unit
(** Roll back: inverse operations (unversioned tables) and
    [Abort_versions] (versioned tables), logged as compensations. *)

(** {2 Lock-free sharing reads (Section 6.2)} *)

val read_committed : t -> table:string -> key:string -> string option
(** Versioned read-committed access to data owned by other TCs: sees
    before-versions of uncommitted updates; takes no locks. *)

val read_dirty : t -> table:string -> key:string -> string option

val scan_committed :
  t -> table:string -> from_key:string -> limit:int -> (string * string) list

val scan_dirty :
  t -> table:string -> from_key:string -> limit:int -> (string * string) list

(** {2 Scheduling support} *)

val wakeups : t -> int list
(** Transactions whose blocked lock requests were granted since the last
    call (drained). *)

val resolve_deadlock : t -> int option
(** Detect a waits-for cycle; abort the youngest member; return it. *)

val quiesce : t -> unit
(** Pump the transport until no request is outstanding, then push a
    fresh low-water mark.  Test and bench helper. *)

(** {2 Contract maintenance / recovery} *)

val checkpoint : t -> bool
(** Push LWM, ask every DC to advance the redo-scan start point to it,
    and on unanimous grant log a checkpoint record and truncate the log.
    [false] if some DC could not comply yet. *)

val crash : t -> unit
(** Lose volatile state: unforced log tail, transaction table, lock
    table, in-flight requests. *)

val recover : t -> unit
(** Restart (Section 5.3.2 TC failure): tell each DC to reset state
    beyond the stable log, resend logged operations from the redo-scan
    start point (repeating history), then roll back loser transactions
    and finish interrupted version cleanup. *)

val on_dc_restart : ?from:Untx_util.Lsn.t -> t -> dc:string -> unit
(** A DC lost its cache (Section 5.3.2 DC failure): resend logged
    operations from the redo-scan start point to that DC.  [from]
    (default [Lsn.zero]) moves the scan start to the caller's cursor —
    see {!on_dc_failover}. *)

val on_dc_failover : t -> dc:string -> from:Untx_util.Lsn.t -> unit
(** The named link now fronts a promoted standby that applied the
    shipped log through [from - 1]: run the same redo-fence protocol as
    {!on_dc_restart} (including its cursor-cap ordering, which a
    watermark pushed mid-barrier must not race), but re-drive only the
    gap from [from] to end-of-stable-log.  In-flight requests below
    [from] are re-dispatched inside the fence so the standby re-answers
    them from its idempotence memo.

    [from] may legally sit {e below} the redo-scan start point — a
    detached standby's applied cursor freezes while checkpoints keep
    advancing — provided the log still retains the suffix
    ([{!log_retained_from} <= from]): the scan then starts at [from]
    and re-drives the whole retained gap (counted as
    ["tc.redo_below_rssp"]).  If the suffix was truncated, a
    {!set_history_replay} source covering [[from, retained)] replays the
    missing gap from layers before the log takes over (counted as
    ["tc.redo_from_layers"]); with no such source the scan clamps up to
    the rssp as before, which would leave a hole — callers must refuse
    such promotions instead ({!Untx_repl} eligibility). *)

val set_durability_gate : t -> (Untx_util.Lsn.t -> unit) -> unit
(** Install a hook invoked after every group-commit force with the new
    stable LSN, before the commit acknowledgement is returned.  A
    replication manager blocks in it until its durability policy
    (e.g. a quorum of standby acks) covers the LSN. *)

val set_truncate_floor : t -> (unit -> Untx_util.Lsn.t option) -> unit
(** Install an extra lower bound on checkpoint log truncation: return
    the lowest LSN still needed (e.g. by a lagging standby's catch-up
    cursor), or [None] for no constraint. *)

val set_history_replay :
  t ->
  (from:Untx_util.Lsn.t ->
  upto:Untx_util.Lsn.t ->
  ((Untx_util.Lsn.t -> Untx_msg.Op.t -> unit) -> unit) option) ->
  unit
(** Install a redo source for history {e below} {!log_retained_from}: a
    layer store that absorbed the truncated prefix returns a feed
    replaying the original operations in [[from, upto]] in LSN order, or
    [None] when it cannot cover the range.  {!on_dc_failover} consults
    it when the promotion cursor sits below the retained head — the feed
    re-drives the missing gap inside the redo fence (counted as
    ["tc.redo_from_layers"]) and the log takes over at the retained
    head, so a laggard whose history lives only in layers is still
    promotable without data loss. *)

val force_log : t -> unit
(** Force the log and push the resulting end-of-stable-log — makes the
    whole volatile tail shippable (replication parity checks). *)

(** {2 Introspection} *)

val rssp : t -> Untx_util.Lsn.t

val log_retained_from : t -> Untx_util.Lsn.t
(** Lowest LSN checkpoint truncation has provably kept in the log
    (see {!Untx_wal.Wal.retained_from}).  Always [<= rssp]: every
    truncation cut is bounded by the checkpoint target.  Replica
    serviceability and promotion eligibility are decided against it. *)

val stable_lsn : t -> Untx_util.Lsn.t

val last_lsn : t -> Untx_util.Lsn.t

val log_forces : t -> int

val log_bytes : t -> int

val log_records : t -> int

val active_xids : t -> int list

val lock_acquisitions : t -> int

val messages_sent : t -> int

val resends : t -> int

val iter_stable_ops :
  t -> (Untx_util.Lsn.t -> Untx_msg.Op.t -> unit) -> unit
(** Visit every operation in the stable log from the redo scan start
    point, in LSN order — the exact suffix recovery would resend.  The
    post-recovery auditor re-delivers it to prove idempotence. *)

val iter_stable_ops_from :
  t ->
  from:Untx_util.Lsn.t ->
  (Untx_util.Lsn.t -> Untx_msg.Op.t -> unit) ->
  unit
(** Visit the stable log's logged operations from an arbitrary cursor,
    in LSN order — the log-shipping read path.  Allocation-light: seeks
    to the cursor instead of scanning the whole log.  Volatile records
    are never visited (a standby must not hold effects a TC crash could
    disown). *)

val dc_of_op : t -> Untx_msg.Op.t -> string
(** The DC this operation routes to under the current table maps — the
    owning partition for a partitioned table.  The deployment auditor
    uses it to re-deliver each logged operation to the right DC. *)

val table_versioned : t -> string -> bool
(** Whether the named table was mapped with [~versioned:true] ([false]
    for unmapped tables).  A layer store replaying this TC's log needs
    it to materialize records under the right mutation semantics. *)

val part_of_dc : t -> dc:string -> int
(** The partition id the named DC's link was attached with. *)

val dump_locks : t -> string
(** Lock-table diagnostics. *)
