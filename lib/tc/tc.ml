module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Instrument = Untx_util.Instrument
module Metrics = Untx_obs.Metrics
module Trace = Untx_obs.Trace
module Wal = Untx_wal.Wal
module Fault = Untx_fault.Fault
module Op = Untx_msg.Op
module Wire = Untx_msg.Wire
module Session = Untx_msg.Session

type cc_protocol = Key_locks | Range_locks of int | Table_locks | Optimistic

type config = {
  id : Tc_id.t;
  cc_protocol : cc_protocol;
  lwm_every : int;
  resend_after : int;
  resend_backoff_max : int;
  resend_max_retries : int;
  max_pump_rounds : int;
  pipeline_writes : bool;
  combine_watermarks : bool;
  group_commit : int;
  debug_checks : bool;
}

let default_config id =
  {
    id;
    cc_protocol = Key_locks;
    lwm_every = 16;
    resend_after = 4;
    resend_backoff_max = 64;
    resend_max_retries = 32;
    max_pump_rounds = 100_000;
    pipeline_writes = true;
    combine_watermarks = false;
    group_commit = 1;
    debug_checks = false;
  }

let p_commit_before_force = Fault.declare "tc.commit.before_force"

let p_commit_after_force = Fault.declare "tc.commit.after_force"

let p_recover_mid = Fault.declare "tc.recover.mid"

type dc_link = {
  dc_name : string;
  part : int; (* the DC's partition id; stamped into every request *)
  send : string -> unit; (* encoded request frame, data channel *)
  send_control : string -> unit; (* encoded control frame *)
  drain : unit -> string list * string list;
      (* due (reply frames, control-reply frames) *)
}

(* Per-link control-session state wrapped around the kernel-provided
   link.  The epoch/seq contract — unique densely-increasing sequence
   ids under an epoch that advances whenever either end restarts, cached
   frames resent with backoff — lives in {!Session.Sender}, shared with
   the replication channel. *)
type link_state = {
  ls_link : dc_link;
  ls_ctl : Wire.control_reply Session.Sender.t;
  mutable ls_outstanding : Lsn.Set.t;
      (* requests in flight *to this DC*.  The per-link low-water mark
         derives from this set alone: an operation outstanding at a
         sibling partition never touches this DC's pages, so it must not
         hold this DC's flush eligibility hostage. *)
  mutable ls_sent_watermarks : (Lsn.t * Lsn.t) option;
      (* last (eosl, lwm) posted this epoch; unchanged values are not
         re-posted (each would cost a control round trip per link) *)
}

type txn_state = Active | Committed | Aborted

type txn = {
  t_xid : int;
  mutable state : txn_state;
  mutable first_lsn : Lsn.t;
  mutable undo_stack : Op.t list; (* inverse ops, newest first *)
  mutable vwrites : (string * string) list; (* versioned (table, key) *)
  mutable failed : string option;
  mutable outstanding : Lsn.Set.t;
  (* optimistic mode: execution collects observations and buffers
     writes; commit validates then applies *)
  mutable read_set : (string * string * string option) list;
  mutable scan_set : (string * string * int * (string * string) list) list;
  mutable write_buf : Op.t list; (* oldest first at commit (kept reversed) *)
  mutable occ_applying : bool; (* commit is materializing buffered writes *)
}

type pending = {
  p_req : Wire.request;
  p_frame : string; (* the encoded frame; resends repeat it verbatim *)
  p_link : link_state;
  mutable p_age : int; (* stalled pump rounds since last (re)send *)
  mutable p_backoff : int; (* rounds to wait before the next resend *)
  mutable p_retries : int;
  p_xid : int option;
  p_wants_reply : bool;
  p_tid : int; (* trace id stamped into p_frame; 0 when untraced *)
  p_sent : float; (* Metrics.start at first send, for the rtt histogram *)
  mutable p_fenced : bool;
      (* the target DC restarted and the redo scan owns this request: it
         must not resend (or count as an in-flight conflict) until the
         scan re-dispatches it at its place in LSN order *)
}

type 'a outcome = [ `Ok of 'a | `Blocked | `Fail of string ]

type route =
  | Single of { r_dc : string; r_versioned : bool }
  | Partitioned of { p_versioned : bool; p_f : string -> string }

type t = {
  cfg : config;
  counters : Instrument.t;
  log : Log_record.t Wal.t;
  mutable locks : Lock_mgr.t;
  links : (string, link_state) Hashtbl.t;
  routes : (string, route) Hashtbl.t;
  txns : (int, txn) Hashtbl.t;
  pendings : (int, pending) Hashtbl.t; (* keyed by LSN *)
  completed : (int, Wire.reply) Hashtbl.t;
  wakeups : int Queue.t;
  mutable outstanding : Lsn.Set.t;
  mutable rssp : Lsn.t;
  mutable lwm_cap : Lsn.t option;
      (* During restart redo the low-water mark may only cover operations
         already re-acknowledged: resent history is "outstanding" even
         before it is dispatched.  The cap tracks the redo cursor. *)
  mutable undispatched : Lsn.Set.t;
      (* Logged but not yet sent (commit logs every partition's version
         cleanup before the single force, then dispatches).  A watermark
         pumped in that window — an ack from a *sibling* partition can
         trigger one — must not claim these: the target DC would advance
         its abstract-LSN cover past them and absorb the real operation
         as a duplicate when it finally arrives. *)
  mutable acked_since_lwm : int;
  mutable next_xid : int;
  mutable msgs : int;
  mutable resend_count : int;
  mutable unforced_commits : int; (* group commit: commits awaiting a force *)
  mutable group_commit : int;
      (* live group-commit batch size, initially [cfg.group_commit].  A
         session front end retunes it at run time to batch commits from
         many client sessions under one force. *)
  mutable durability_gate : (Lsn.t -> unit) option;
      (* invoked after every group-commit force with the new stable LSN;
         a replication manager blocks here until its durability policy
         (e.g. quorum of standby acks) covers the LSN, so the commit ack
         below carries replicated durability, not just a local fsync *)
  mutable truncate_floor : (unit -> Lsn.t option) option;
      (* extra lower bound on checkpoint log truncation: a replication
         manager returns the lowest LSN a lagging standby still needs,
         so catch-up never finds its cursor truncated away *)
  mutable history_replay :
    (from:Lsn.t -> upto:Lsn.t -> ((Lsn.t -> Op.t -> unit) -> unit) option)
      option;
      (* redo source for history below retained_from: a layer store that
         absorbed the truncated prefix returns a feed of the original
         ops in [from, upto], or None when it cannot cover the range *)
}

let create ?(counters = Instrument.global) cfg =
  {
    cfg;
    counters;
    log = Wal.create ~counters ~label:"wal.tc" ~size:Log_record.size ();
    locks = Lock_mgr.create ();
    links = Hashtbl.create 4;
    routes = Hashtbl.create 16;
    txns = Hashtbl.create 64;
    pendings = Hashtbl.create 64;
    completed = Hashtbl.create 64;
    wakeups = Queue.create ();
    outstanding = Lsn.Set.empty;
    rssp = Lsn.next Lsn.zero;
    lwm_cap = None;
    undispatched = Lsn.Set.empty;
    acked_since_lwm = 0;
    next_xid = 1;
    msgs = 0;
    resend_count = 0;
    unforced_commits = 0;
    group_commit = cfg.group_commit;
    durability_gate = None;
    truncate_floor = None;
    history_replay = None;
  }

let id t = t.cfg.id

let set_group_commit t n =
  if n < 1 then invalid_arg "Tc.set_group_commit: size must be >= 1";
  t.group_commit <- n

let group_commit t = t.group_commit

let set_durability_gate t f = t.durability_gate <- Some f

let set_truncate_floor t f = t.truncate_floor <- Some f

let set_history_replay t f = t.history_replay <- Some f

let attach_dc t link =
  Hashtbl.replace t.links link.dc_name
    {
      ls_link = link;
      ls_ctl = Session.Sender.create ();
      ls_outstanding = Lsn.Set.empty;
      ls_sent_watermarks = None;
    }

let map_table t ~table ~dc ~versioned =
  if not (Hashtbl.mem t.links dc) then
    invalid_arg ("Tc.map_table: unknown DC " ^ dc);
  Hashtbl.replace t.routes table (Single { r_dc = dc; r_versioned = versioned })

let map_table_partitioned t ~table ~versioned ~partition =
  Hashtbl.replace t.routes table
    (Partitioned { p_versioned = versioned; p_f = partition })

let dc_of_key t table key =
  match Hashtbl.find_opt t.routes table with
  | Some (Single { r_dc; _ }) -> r_dc
  | Some (Partitioned { p_f; _ }) -> p_f key
  | None -> invalid_arg ("Tc: table not mapped: " ^ table)

(* Route by the operation's key footprint: point ops by their key,
   ranged ops by their start key (scans stay inside one partition by
   schema construction), multi-key ops by their first key (they are
   built per-DC before logging). *)
let route_op t (op : Op.t) =
  let table = Op.table op in
  let dc =
    match op with
    | Op.Insert { key; _ } | Op.Update { key; _ } | Op.Delete { key; _ }
    | Op.Read { key; _ } -> dc_of_key t table key
    | Op.Scan { from_key; _ } | Op.Probe { from_key; _ } ->
      dc_of_key t table from_key
    | Op.Commit_versions { keys; _ } | Op.Abort_versions { keys; _ } -> (
      match keys with
      | key :: _ -> dc_of_key t table key
      | [] -> dc_of_key t table "")
  in
  match Hashtbl.find_opt t.links dc with
  | Some link -> link
  | None -> invalid_arg ("Tc: no link to DC " ^ dc)

let versioned_of_table t table =
  match Hashtbl.find_opt t.routes table with
  | Some (Single { r_versioned; _ }) -> r_versioned
  | Some (Partitioned { p_versioned; _ }) -> p_versioned
  | None -> false

let table_versioned = versioned_of_table

let xid txn = txn.t_xid

let is_active txn = txn.state = Active

(* ------------------------------------------------------------------ *)
(* Message plumbing                                                    *)

(* Post a control message on a link: assign the next control-sequence
   id, encode, track the pending until an acknowledgement arrives
   through the pump loop, send.  Control traffic is asynchronous and
   contract-governed — nothing returns synchronously; callers that need
   the reply (checkpoint grants, restart barriers) pass [~awaited:true]
   and collect it with [await_control_reply]. *)
let post_control ?(awaited = false) t ls ctl =
  let seq =
    Session.Sender.post ls.ls_ctl ~awaited ~backoff:t.cfg.resend_after
      ~encode:(fun ~epoch ~seq ->
        Wire.encode_control { Wire.c_epoch = epoch; c_seq = seq; c_ctl = ctl })
      ~send:ls.ls_link.send_control ()
  in
  Instrument.bump t.counters "tc.control_sent";
  Instrument.bump_by t.counters "tc.control_unacked" 1;
  seq

let broadcast_control t ctl =
  Hashtbl.iter (fun _ ls -> ignore (post_control t ls ctl)) t.links

let control_unacked t =
  Hashtbl.fold
    (fun _ ls acc -> acc + Session.Sender.unacked ls.ls_ctl)
    t.links 0

(* Drop a link's control-session state (the pendings died with a crash,
   or a new epoch voids them), keeping the unacked gauge honest. *)
let clear_ctl t ls =
  Instrument.bump_by t.counters "tc.control_unacked"
    (-Session.Sender.clear ls.ls_ctl);
  (* The watermark memo is only valid within a session: after a crash on
     either end the DC's view is gone, so the next watermark must travel
     even if its value is unchanged. *)
  ls.ls_sent_watermarks <- None

(* Open a fresh control session on a link: frames of the old epoch
   still in flight (either direction) become stale and the DC resets
   its per-TC applied-sequence state on first contact. *)
let new_epoch t ls =
  Instrument.bump_by t.counters "tc.control_unacked"
    (-Session.Sender.new_epoch ls.ls_ctl);
  ls.ls_sent_watermarks <- None

(* Cap a low-water claim: never past the stable log (pages whose
   abstract LSNs advance beyond it would all look "affected" after a TC
   crash, defeating the selective reset of Section 5.3.2) and never past
   the redo cursor during restart.  Capping is always sound — it only
   defers coverage. *)
let cap_lwm t base =
  let base = Lsn.min base (Wal.stable_lsn t.log) in
  let base =
    match Lsn.Set.min_elt_opt t.undispatched with
    | Some l -> Lsn.min base (Lsn.prev l)
    | None -> base
  in
  match t.lwm_cap with Some cap -> Lsn.min base cap | None -> base

(* The link-local low-water mark: everything below it that could ever
   reach *this* DC has been acknowledged.  Operations outstanding at
   sibling partitions don't appear — the partition map is static, so
   they can never arrive here, and making DC flush eligibility wait on
   another DC's in-flight traffic would couple the partitions' I/O. *)
let current_lwm_for t ls =
  cap_lwm t
    (match Lsn.Set.min_elt_opt ls.ls_outstanding with
    | Some l -> Lsn.prev l
    | None -> Wal.last_lsn t.log)

(* The deployment-wide low-water mark (checkpoint target): every
   operation below it is acknowledged by its owning DC. *)
let current_lwm t =
  cap_lwm t
    (match Lsn.Set.min_elt_opt t.outstanding with
    | Some l -> Lsn.prev l
    | None -> Wal.last_lsn t.log)

(* Push watermarks to one link, skipping values the DC already has (the
   memo is per control session; [clear_ctl] voids it). *)
let post_watermarks t ls =
  let eosl = Wal.stable_lsn t.log in
  let lwm = current_lwm_for t ls in
  if ls.ls_sent_watermarks <> Some (eosl, lwm) then begin
    ls.ls_sent_watermarks <- Some (eosl, lwm);
    if t.cfg.combine_watermarks then
      ignore (post_control t ls (Wire.Watermarks { tc = t.cfg.id; eosl; lwm }))
    else
      ignore (post_control t ls (Wire.Low_water_mark { tc = t.cfg.id; lwm }))
  end

let send_eosl t =
  broadcast_control t
    (Wire.End_of_stable_log { tc = t.cfg.id; eosl = Wal.stable_lsn t.log })

let send_lwm t =
  t.acked_since_lwm <- 0;
  Hashtbl.iter (fun _ ls -> post_watermarks t ls) t.links

let dispatch t link ~lsn ~op ~xid ~wants_reply =
  let req =
    { Wire.tc = t.cfg.id; lsn; part = link.ls_link.part; op }
  in
  let tid = Trace.fresh_tid () in
  let frame = Wire.encode_request ~tid req in
  if tid <> 0 then
    Trace.record ~tid ~comp:"tc" ~ev:"dispatch"
      [
        ("lsn", Lsn.to_string lsn);
        ("part", string_of_int link.ls_link.part);
      ];
  Hashtbl.replace t.pendings (Lsn.to_int lsn)
    { p_req = req; p_frame = frame; p_link = link; p_age = 0;
      p_backoff = t.cfg.resend_after; p_retries = 0; p_xid = xid;
      p_wants_reply = wants_reply; p_tid = tid;
      p_sent = Metrics.start t.counters; p_fenced = false };
  t.outstanding <- Lsn.Set.add lsn t.outstanding;
  link.ls_outstanding <- Lsn.Set.add lsn link.ls_outstanding;
  (match xid with
  | Some x -> (
    match Hashtbl.find_opt t.txns x with
    | Some txn -> txn.outstanding <- Lsn.Set.add lsn txn.outstanding
    | None -> ())
  | None -> ());
  t.msgs <- t.msgs + 1;
  Instrument.bump t.counters "tc.requests_sent";
  link.ls_link.send frame

let retire_pending t (p : pending) =
  t.outstanding <- Lsn.Set.remove p.p_req.Wire.lsn t.outstanding;
  p.p_link.ls_outstanding <-
    Lsn.Set.remove p.p_req.Wire.lsn p.p_link.ls_outstanding

let handle_reply t (r : Wire.reply) =
  if not (Tc_id.equal r.tc t.cfg.id) then
    (* Another TC's reply on this TC's link: every TC numbers its LSNs
       from 1, so [r.lsn] may well match one of OUR in-flight requests —
       absorbing it would retire a pending with a result its operation
       never produced.  Dropped loudly (counted); the real requester's
       resend path recovers its own ack. *)
    Instrument.bump t.counters "tc.misattributed_acks"
  else
  match Hashtbl.find_opt t.pendings (Lsn.to_int r.lsn) with
  | None -> () (* stale duplicate reply *)
  | Some p ->
    Hashtbl.remove t.pendings (Lsn.to_int r.lsn);
    retire_pending t p;
    (* Round trip measured from the *first* send: resends lengthen the
       observed rtt rather than resetting it, which is the latency the
       operation's caller actually saw. *)
    Metrics.stop t.counters "tc.data_rtt_ns" p.p_sent;
    if p.p_tid <> 0 then
      Trace.record ~tid:p.p_tid ~comp:"tc" ~ev:"ack"
        [ ("lsn", Lsn.to_string r.lsn) ];
    (match p.p_xid with
    | Some x -> (
      match Hashtbl.find_opt t.txns x with
      | Some txn -> (
        txn.outstanding <- Lsn.Set.remove r.lsn txn.outstanding;
        match r.result with
        | Wire.Failed msg when txn.failed = None -> txn.failed <- Some msg
        | _ -> ())
      | None -> ())
    | None -> ());
    if p.p_wants_reply then Hashtbl.replace t.completed (Lsn.to_int r.lsn) r;
    t.acked_since_lwm <- t.acked_since_lwm + 1;
    if t.acked_since_lwm >= t.cfg.lwm_every then send_lwm t

(* A control acknowledgement matched against the link's session: stale
   epochs and duplicate acks are ignored; a first ack retires the
   pending and, when a caller awaits it, parks the reply for
   [await_control_reply]. *)
let handle_control_reply t ls (m : Wire.control_reply_msg) =
  if not (Tc_id.equal m.Wire.r_tc t.cfg.id) then begin
    (* Acks are keyed (tc, epoch, seq), not bare (epoch, seq): every
       sender starts at (1, 1), so another TC's ack would otherwise be
       absorbed as ours and retire a pending whose real answer is still
       in flight (or worse, park a Checkpoint_done grant computed for a
       different TC's redo-scan point). *)
    Instrument.bump t.counters "tc.misattributed_acks";
    false
  end
  else if
    Session.Sender.ack ls.ls_ctl ~epoch:m.Wire.r_epoch ~seq:m.Wire.r_seq
      m.Wire.r_reply
  then begin
    Instrument.bump_by t.counters "tc.control_unacked" (-1);
    true
  end
  else false

let pump t =
  let progressed = ref false in
  Hashtbl.iter
    (fun _ ls ->
      let replies, ctl_replies = ls.ls_link.drain () in
      List.iter
        (fun frame ->
          match Wire.decode_reply frame with
          | r ->
            progressed := true;
            handle_reply t r
          | exception Invalid_argument _ ->
            Instrument.bump t.counters "tc.bad_frames")
        replies;
      List.iter
        (fun frame ->
          match Wire.decode_control_reply frame with
          | m -> if handle_control_reply t ls m then progressed := true
          | exception Invalid_argument _ ->
            Instrument.bump t.counters "tc.bad_frames")
        ctl_replies)
    t.links;
  !progressed

(* A reply that never arrives is indistinguishable from a slow one; the
   unique-request-id + idempotence contract makes resending always safe,
   so the TC resends with bounded exponential backoff.  A request that
   exhausts its retry budget is a harness bug (the DC is simulated in
   the same process), so it fails loudly rather than hanging in
   [await]. *)
let resend_stale t =
  Hashtbl.iter
    (fun _ p ->
      if not p.p_fenced then begin
        p.p_age <- p.p_age + 1;
        if p.p_age >= p.p_backoff then begin
          if p.p_retries >= t.cfg.resend_max_retries then begin
            Instrument.bump t.counters "tc.request_timeouts";
            failwith
              (Printf.sprintf "Tc: request %d timed out after %d resends"
                 (Lsn.to_int p.p_req.lsn) p.p_retries)
          end;
          p.p_age <- 0;
          p.p_retries <- p.p_retries + 1;
          p.p_backoff <- Stdlib.min (2 * p.p_backoff) t.cfg.resend_backoff_max;
          t.resend_count <- t.resend_count + 1;
          Instrument.bump t.counters "tc.resends";
          if p.p_tid <> 0 && Trace.enabled () then
            Trace.record ~tid:p.p_tid ~comp:"tc" ~ev:"resend"
              [
                ("lsn", Lsn.to_string p.p_req.Wire.lsn);
                ("retry", string_of_int p.p_retries);
              ];
          p.p_link.ls_link.send p.p_frame
        end
      end)
    t.pendings;
  (* Unacked control messages age and resend under the same backoff
     discipline: the DC's control-idempotence table absorbs the
     duplicates this creates. *)
  Hashtbl.iter
    (fun _ ls ->
      Session.Sender.tick ls.ls_ctl ~backoff_max:t.cfg.resend_backoff_max
        ~max_retries:t.cfg.resend_max_retries
        ~on_resend:(fun ~seq:_ frame ->
          Instrument.bump t.counters "tc.control_resends";
          ls.ls_link.send_control frame)
        ~on_timeout:(fun ~seq ~retries ->
          Instrument.bump t.counters "tc.control_timeouts";
          failwith
            (Printf.sprintf "Tc: control %d to %s timed out after %d resends"
               seq ls.ls_link.dc_name retries)))
    t.links

let await t pred =
  let stalls = ref 0 in
  while not (pred ()) do
    if pump t then stalls := 0
    else begin
      incr stalls;
      resend_stale t;
      if !stalls > t.cfg.max_pump_rounds then
        failwith "Tc.await: no progress (lost message without resend?)"
    end
  done

let await_reply t lsn =
  let key = Lsn.to_int lsn in
  await t (fun () -> Hashtbl.mem t.completed key);
  let r = Hashtbl.find t.completed key in
  Hashtbl.remove t.completed key;
  r

(* Collect the reply of an awaited control message previously posted
   with [post_control ~awaited:true]: the grant/ack arrives through the
   pump loop like any other frame. *)
let await_control_reply t ls seq =
  await t (fun () -> Session.Sender.has_reply ls.ls_ctl seq);
  Option.get (Session.Sender.take_reply ls.ls_ctl seq)

(* A control barrier: post to every link, then pump until every DC has
   acknowledged.  Posting everywhere before awaiting keeps the round
   trips concurrent.  Used where the restart protocol needs a
   happens-before edge (e.g. Restart_begin must be applied before redo
   traffic arrives). *)
let broadcast_sync t ctl =
  let waits =
    Hashtbl.fold
      (fun _ ls acc -> (ls, post_control ~awaited:true t ls ctl) :: acc)
      t.links []
  in
  List.iter (fun (ls, seq) -> ignore (await_control_reply t ls seq)) waits

(* The TC's obligation: never two conflicting operations in flight.
   Fenced pendings don't count: their messages died with the DC, and the
   redo scan is about to re-dispatch them in LSN order. *)
let await_conflicts t op =
  await t (fun () ->
      not
        (Hashtbl.fold
           (fun _ p acc ->
             acc || ((not p.p_fenced) && Op.conflicts p.p_req.Wire.op op))
           t.pendings false))

(* A synchronous unlogged request (reads, probes, scans): unique request
   id from the log's LSN sequence, but no record — reads are never
   redone. *)
let request_unlogged t link op =
  await_conflicts t op;
  let lsn = Wal.reserve t.log in
  dispatch t link ~lsn ~op ~xid:None ~wants_reply:true;
  await_reply t lsn

(* ------------------------------------------------------------------ *)
(* Locking                                                             *)

let slot_of_key n key =
  let b0 = if String.length key > 0 then Char.code key.[0] else 0 in
  let b1 = if String.length key > 1 then Char.code key.[1] else 0 in
  ((b0 * 256) + b1) * n / 65536

(* Smallest 16-bit prefix whose slot is [s]. *)
let slot_start_value n s = ((s * 65536) + n - 1) / n

let slot_hi n s =
  if s >= n - 1 then None
  else
    let v = slot_start_value n (s + 1) in
    Some (String.init 2 (fun i -> Char.chr (if i = 0 then v / 256 else v mod 256)))

let is_occ t = t.cfg.cc_protocol = Optimistic

let rsrc_for t table key =
  match t.cfg.cc_protocol with
  | Key_locks | Optimistic -> Lock_mgr.Record { table; key }
  | Range_locks n -> Lock_mgr.Range { table; slot = slot_of_key n key }
  | Table_locks -> Lock_mgr.Table table

let lock t txn rsrc mode =
  match Lock_mgr.acquire t.locks ~owner:txn.t_xid rsrc mode with
  | `Granted -> `Granted
  | `Blocked ->
    Instrument.bump t.counters "tc.lock_waits";
    `Blocked

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)

let begin_txn t =
  let x = t.next_xid in
  t.next_xid <- x + 1;
  let txn =
    {
      t_xid = x;
      state = Active;
      first_lsn = Lsn.zero;
      undo_stack = [];
      vwrites = [];
      failed = None;
      outstanding = Lsn.Set.empty;
      read_set = [];
      scan_set = [];
      write_buf = [];
      occ_applying = false;
    }
  in
  txn.first_lsn <- Wal.append t.log (Log_record.Begin { xid = x });
  Hashtbl.replace t.txns x txn;
  txn

let release_locks t txn =
  let granted = Lock_mgr.release_all t.locks ~owner:txn.t_xid in
  List.iter (fun owner -> Queue.add owner t.wakeups) granted

let wakeups t =
  let out = ref [] in
  Queue.iter (fun x -> out := x :: !out) t.wakeups;
  Queue.clear t.wakeups;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)

let value_of_result = function
  | Wire.Value v -> `Ok v
  | Wire.Failed m -> `Fail m
  | _ -> `Fail "unexpected result shape"

(* The latest buffered write for a key, if any (OCC read-your-writes). *)
let buffered_value txn ~table ~key =
  List.find_map
    (fun op ->
      match op with
      | Op.Insert { table = t'; key = k'; value }
      | Op.Update { table = t'; key = k'; value }
        when String.equal t' table && String.equal k' key ->
        Some (Some value)
      | Op.Delete { table = t'; key = k' }
        when String.equal t' table && String.equal k' key ->
        Some None
      | _ -> None)
    txn.write_buf (* newest first *)

let read t txn ~table ~key =
  if txn.state <> Active then `Fail "transaction not active"
  else if is_occ t then (
    match buffered_value txn ~table ~key with
    | Some v -> `Ok v
    | None ->
      let op = Op.Read { table; key; mode = Op.Own } in
      let link = route_op t op in
      match value_of_result (request_unlogged t link op).Wire.result with
      | `Ok v ->
        txn.read_set <- (table, key, v) :: txn.read_set;
        `Ok v
      | o -> o)
  else
    let link = route_op t (Op.Read { table; key; mode = Op.Own }) in
    match lock t txn (rsrc_for t table key) Lock_mgr.S with
    | `Blocked -> `Blocked
    | `Granted ->
      let op = Op.Read { table; key; mode = Op.Own } in
      value_of_result (request_unlogged t link op).Wire.result

(* Lock-free sharing reads (Section 6.2): no transaction, no locks. *)
let sharing_read t ~table ~key mode =
  let op = Op.Read { table; key; mode } in
  let link = route_op t op in
  match (request_unlogged t link op).Wire.result with
  | Wire.Value v -> v
  | _ -> None

let read_committed t ~table ~key = sharing_read t ~table ~key Op.Committed

let read_dirty t ~table ~key = sharing_read t ~table ~key Op.Dirty

let sharing_scan t ~table ~from_key ~limit mode =
  let op = Op.Scan { table; from_key; limit; mode } in
  let link = route_op t op in
  match (request_unlogged t link op).Wire.result with
  | Wire.Pairs ps -> ps
  | _ -> []

let scan_committed t ~table ~from_key ~limit =
  sharing_scan t ~table ~from_key ~limit Op.Committed

let scan_dirty t ~table ~from_key ~limit =
  sharing_scan t ~table ~from_key ~limit Op.Dirty

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)

let inverse op prior =
  match (op, prior) with
  | Op.Insert { table; key; _ }, None -> Some (Op.Delete { table; key })
  | Op.Update { table; key; _ }, Some p ->
    Some (Op.Update { table; key; value = p })
  | Op.Delete { table; key }, Some p ->
    Some (Op.Insert { table; key; value = p })
  | _ -> None

(* Pre-read under the already-held X lock: the undo value for tables
   without before-versions must be known before the operation record is
   logged, because a TC crash may lose any information learned later. *)
let pre_read t link ~table ~key =
  let op = Op.Read { table; key; mode = Op.Own } in
  match (request_unlogged t link op).Wire.result with
  | Wire.Value v -> v
  | _ -> None

let write t txn op =
  if txn.state <> Active then `Fail "transaction not active"
  else if is_occ t && not txn.occ_applying then begin
    txn.write_buf <- op :: txn.write_buf;
    `Ok ()
  end
  else
    let table = Op.table op in
    let key =
      match op with
      | Op.Insert { key; _ } | Op.Update { key; _ } | Op.Delete { key; _ } ->
        key
      | _ -> invalid_arg "Tc.write: not a point write"
    in
    let link = route_op t op in
    let versioned = versioned_of_table t table in
    match lock t txn (rsrc_for t table key) Lock_mgr.X with
    | `Blocked -> `Blocked
    | `Granted ->
      await_conflicts t op;
      if versioned then begin
        (* Before-versions make undo state-based: no pre-read, and the
           request can be pipelined. *)
        let lsn =
          Wal.append t.log (Log_record.Op_log { xid = txn.t_xid; op; undo = None })
        in
        txn.vwrites <- (table, key) :: txn.vwrites;
        let wants_reply = not t.cfg.pipeline_writes in
        dispatch t link ~lsn ~op ~xid:(Some txn.t_xid) ~wants_reply;
        if wants_reply then
          match (await_reply t lsn).Wire.result with
          | Wire.Done -> `Ok ()
          | Wire.Failed m ->
            txn.failed <- Some m;
            `Fail m
          | _ -> `Fail "unexpected result shape"
        else `Ok ()
      end
      else begin
        let prior = pre_read t link ~table ~key in
        match (op, prior) with
        | Op.Insert _, Some _ -> `Fail "duplicate key"
        | Op.Update _, None -> `Fail "no such key"
        | Op.Delete _, None -> `Ok () (* deleting nothing is a no-op *)
        | _ ->
          let undo = inverse op prior in
          let lsn =
            Wal.append t.log (Log_record.Op_log { xid = txn.t_xid; op; undo })
          in
          (match undo with
          | Some inv -> txn.undo_stack <- inv :: txn.undo_stack
          | None -> ());
          dispatch t link ~lsn ~op ~xid:(Some txn.t_xid) ~wants_reply:true;
          (match (await_reply t lsn).Wire.result with
          | Wire.Done -> `Ok ()
          | Wire.Failed m -> `Fail m
          | _ -> `Fail "unexpected result shape")
      end

let insert t txn ~table ~key ~value =
  write t txn (Op.Insert { table; key; value })

let update t txn ~table ~key ~value =
  write t txn (Op.Update { table; key; value })

let delete t txn ~table ~key = write t txn (Op.Delete { table; key })

(* ------------------------------------------------------------------ *)
(* Scans (Section 3.1: the two range protocols)                        *)

let probe t link ~table ~from_key ~limit =
  match
    (request_unlogged t link (Op.Probe { table; from_key; limit })).Wire.result
  with
  | Wire.Next_keys ks -> ks
  | _ -> []

let scan_rows t link ~table ~from_key ~limit =
  match
    (request_unlogged t link
       (Op.Scan { table; from_key; limit; mode = Op.Own }))
      .Wire.result
  with
  | Wire.Pairs ps -> ps
  | _ -> []

let next_key k = k ^ "\x00"

(* Fetch-ahead: speculative probe for the next keys, lock them, then
   verify the probe before reading; a mismatch turns the read request
   back into a speculative probe. *)
let scan_fetch_ahead t txn link ~table ~from_key ~limit =
  let results = ref [] in
  let taken = ref 0 in
  let rec loop cursor =
    if !taken >= limit then `Ok (List.rev !results)
    else
      let batch = Stdlib.min (limit - !taken) 16 in
      let keys = probe t link ~table ~from_key:cursor ~limit:batch in
      if keys = [] then `Ok (List.rev !results)
      else
        let rec lock_keys = function
          | [] -> `Granted
          | k :: rest -> (
            match lock t txn (Lock_mgr.Record { table; key = k }) Lock_mgr.S with
            | `Granted -> lock_keys rest
            | `Blocked -> `Blocked)
        in
        match lock_keys keys with
        | `Blocked -> `Blocked
        | `Granted ->
          let verify = probe t link ~table ~from_key:cursor ~limit:batch in
          if verify <> keys then loop cursor (* speculate again *)
          else begin
            (* The DC counts only visible rows toward the limit, so the
               reply can run past the probed (and locked) window when it
               skips invisible records; keep only rows we hold locks for
               — the tail is re-fetched by the next batch. *)
            let last = List.nth keys (List.length keys - 1) in
            let pairs =
              scan_rows t link ~table ~from_key:cursor ~limit:(List.length keys)
              |> List.filter (fun (k, _) -> String.compare k last <= 0)
            in
            List.iter
              (fun (k, v) ->
                if !taken < limit then begin
                  results := (k, v) :: !results;
                  incr taken
                end)
              pairs;
            if List.length keys < batch then `Ok (List.rev !results)
            else loop (next_key (List.nth keys (List.length keys - 1)))
          end
  in
  loop from_key

(* Range-partition locks: lock the static slot covering the cursor, read
   only keys inside the slot, step to the next slot boundary. *)
let scan_range_locks t txn link ~table ~from_key ~limit n =
  let results = ref [] in
  let taken = ref 0 in
  let rec loop cursor =
    if !taken >= limit then `Ok (List.rev !results)
    else
      let s = slot_of_key n cursor in
      match lock t txn (Lock_mgr.Range { table; slot = s }) Lock_mgr.S with
      | `Blocked -> `Blocked
      | `Granted ->
        let hi = slot_hi n s in
        let pairs =
          scan_rows t link ~table ~from_key:cursor ~limit:(limit - !taken)
        in
        let in_slot, beyond =
          List.partition
            (fun (k, _) ->
              match hi with None -> true | Some h -> String.compare k h < 0)
            pairs
        in
        List.iter
          (fun (k, v) ->
            if !taken < limit then begin
              results := (k, v) :: !results;
              incr taken
            end)
          in_slot;
        let exhausted =
          beyond = [] && List.length pairs < limit - !taken + List.length in_slot
        in
        if exhausted then `Ok (List.rev !results)
        else (
          match hi with
          | None -> `Ok (List.rev !results)
          | Some h -> loop h)
  in
  loop from_key

let scan t txn ~table ~from_key ~limit =
  if txn.state <> Active then `Fail "transaction not active"
  else
    let link =
      route_op t (Op.Scan { table; from_key; limit; mode = Op.Own })
    in
    match t.cfg.cc_protocol with
    | Optimistic ->
      (* lock-free read; the whole result is re-validated at commit, so
         phantoms in the range abort the transaction.  Buffered own
         writes are not merged into scan results (classic OCC
         simplification, documented). *)
      let rows = scan_rows t link ~table ~from_key ~limit in
      txn.scan_set <- (table, from_key, limit, rows) :: txn.scan_set;
      `Ok rows
    | Key_locks -> scan_fetch_ahead t txn link ~table ~from_key ~limit
    | Range_locks n -> scan_range_locks t txn link ~table ~from_key ~limit n
    | Table_locks -> (
      (* the coarsest protocol of Section 3.1's list: one lock covers
         the whole scan, one request fetches it *)
      match lock t txn (Lock_mgr.Table table) Lock_mgr.S with
      | `Blocked -> `Blocked
      | `Granted -> `Ok (scan_rows t link ~table ~from_key ~limit))

(* ------------------------------------------------------------------ *)
(* Commit / abort                                                      *)

(* Group a transaction's versioned writes by (table, DC): version
   housekeeping operations must each target a single DC. *)
let versioned_write_sets t txn =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (table, key) ->
      let group = (table, dc_of_key t table key) in
      let keys =
        match Hashtbl.find_opt tbl group with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add tbl group l;
          l
      in
      if not (List.mem key !keys) then keys := key :: !keys)
    txn.vwrites;
  Hashtbl.fold (fun (table, _) keys acc -> (table, !keys) :: acc) tbl []

let send_compensation t txn op =
  let link = route_op t op in
  await_conflicts t op;
  let lsn =
    Wal.append t.log (Log_record.Compensation { xid = txn.t_xid; op })
  in
  dispatch t link ~lsn ~op ~xid:(Some txn.t_xid) ~wants_reply:true;
  ignore (await_reply t lsn)

let rollback_work t txn =
  (* Inverse operations, newest first, for unversioned tables; a single
     Abort_versions per versioned table.  Both are idempotent: inverse
     ops write absolute states, version aborts are state tests. *)
  List.iter (fun inv -> send_compensation t txn inv) txn.undo_stack;
  List.iter
    (fun (table, keys) ->
      send_compensation t txn (Op.Abort_versions { table; keys }))
    (versioned_write_sets t txn)

let abort t txn ~reason =
  if txn.state = Active then begin
    ignore reason;
    Lock_mgr.cancel_waits t.locks ~owner:txn.t_xid;
    ignore (Wal.append t.log (Log_record.Abort { xid = txn.t_xid }));
    await t (fun () -> Lsn.Set.is_empty txn.outstanding);
    rollback_work t txn;
    ignore (Wal.append t.log (Log_record.Finished { xid = txn.t_xid }));
    release_locks t txn;
    txn.state <- Aborted;
    Instrument.bump t.counters "tc.aborts"
  end

(* Backward validation (the "optimistic methods" the paper allows the TC
   to choose, Section 4.1.1): every observation is re-checked against
   current state; commit applies the buffered writes only if nothing
   moved.  The validate+apply sequence runs without yielding to other
   transactions of this TC (the single-threaded simulator's equivalent
   of a validation critical section). *)
let occ_validate t txn =
  List.for_all
    (fun (table, key, seen) ->
      let op = Op.Read { table; key; mode = Op.Own } in
      let link = route_op t op in
      match (request_unlogged t link op).Wire.result with
      | Wire.Value now -> now = seen
      | _ -> false)
    txn.read_set
  && List.for_all
       (fun (table, from_key, limit, seen) ->
         let op = Op.Scan { table; from_key; limit; mode = Op.Own } in
         let link = route_op t op in
         match (request_unlogged t link op).Wire.result with
         | Wire.Pairs now -> now = seen
         | _ -> false)
       txn.scan_set

let rec commit t txn =
  if txn.state <> Active then `Fail "transaction not active"
  else if is_occ t && (txn.write_buf <> [] || txn.read_set <> [] || txn.scan_set <> [])
  then begin
    if not (occ_validate t txn) then begin
      abort t txn ~reason:"optimistic validation failed";
      Instrument.bump t.counters "tc.occ_validation_failures";
      `Fail "optimistic validation failed"
    end
    else begin
      let writes = List.rev txn.write_buf in
      txn.write_buf <- [];
      txn.read_set <- [];
      txn.scan_set <- [];
      txn.occ_applying <- true;
      let rec apply = function
        | [] -> true
        | op :: rest -> (
          match write t txn op with
          | `Ok () -> apply rest
          | `Blocked | `Fail _ -> false)
      in
      let applied = apply writes in
      txn.occ_applying <- false;
      if applied then commit t txn
      else begin
        abort t txn ~reason:"optimistic apply failed";
        `Fail "optimistic apply failed"
      end
    end
  end
  else begin
    await t (fun () -> Lsn.Set.is_empty txn.outstanding);
    match txn.failed with
    | Some msg ->
      abort t txn ~reason:msg;
      `Fail msg
    | None ->
      ignore (Wal.append t.log (Log_record.Commit { xid = txn.t_xid }));
      (* Version cleanup is logged *before* the single commit force, so
         its operations are covered by the stable log: a TC crash then
         never makes their page effects "lost".  They are only redone
         when the Commit record is also stable, so a loser's
         before-versions are never stripped. *)
      let cleanups =
        List.map
          (fun (table, keys) ->
            let op = Op.Commit_versions { table; keys } in
            let lsn =
              Wal.append t.log
                (Log_record.Compensation { xid = txn.t_xid; op })
            in
            (* logged-not-sent: the dispatch loop below pumps while later
               cleanups are still only in the log, and a watermark sent
               then must not cover them *)
            t.undispatched <- Lsn.Set.add lsn t.undispatched;
            (lsn, op))
          (versioned_write_sets t txn)
      in
      (* Group commit: batch several commits under one force.  Commits
         in between are not yet durable — the classic latency/IO trade;
         default group size 1 forces every commit. *)
      t.unforced_commits <- t.unforced_commits + 1;
      if t.unforced_commits >= Stdlib.max 1 t.group_commit then begin
        t.unforced_commits <- 0;
        Fault.hit p_commit_before_force;
        Wal.force t.log;
        Fault.hit p_commit_after_force;
        send_eosl t;
        (* Replicated durability: the gate ships the freshly-stable
           suffix and blocks until the policy's quorum of standby acks
           covers it, so the `Ok below means what the deployment's
           durability policy promises. *)
        match t.durability_gate with
        | Some gate -> gate (Wal.stable_lsn t.log)
        | None -> ()
      end;
      (try
         List.iter
           (fun (lsn, op) ->
             let link = route_op t op in
             await_conflicts t op;
             t.undispatched <- Lsn.Set.remove lsn t.undispatched;
             dispatch t link ~lsn ~op ~xid:(Some txn.t_xid) ~wants_reply:true;
             ignore (await_reply t lsn))
           cleanups
       with e ->
         (* A crash unwound the dispatch loop.  Drop the never-sent
            husks from the floor — their cleanup is re-delivered anyway
            (a commit retry logs fresh records for the same keys, and
            recovery redo resends these under the lwm cap) — or the
            low-water mark would be wedged below them forever. *)
         List.iter
           (fun (lsn, _) ->
             t.undispatched <- Lsn.Set.remove lsn t.undispatched)
           cleanups;
         raise e);
      ignore (Wal.append t.log (Log_record.Finished { xid = txn.t_xid }));
      release_locks t txn;
      txn.state <- Committed;
      Instrument.bump t.counters "tc.commits";
      `Ok ()
  end

let quiesce t =
  await t (fun () -> Lsn.Set.is_empty t.outstanding);
  send_lwm t;
  (* Control messages are asynchronous now; a quiesced TC must also have
     every watermark it pushed acknowledged (and therefore applied), or
     a checkpoint right after quiesce could see stale DC state. *)
  await t (fun () -> control_unacked t = 0)

let resolve_deadlock t =
  match Lock_mgr.find_deadlock t.locks with
  | None -> None
  | Some victim -> (
    match Hashtbl.find_opt t.txns victim with
    | Some txn when txn.state = Active ->
      abort t txn ~reason:"deadlock victim";
      Some victim
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Checkpoint (contract termination)                                   *)

let active_xids t =
  Hashtbl.fold
    (fun x txn acc -> if txn.state = Active then x :: acc else acc)
    t.txns []
  |> List.sort Int.compare

let checkpoint t =
  Wal.force t.log;
  send_eosl t;
  send_lwm t;
  let target = Lsn.min (current_lwm t) (Wal.stable_lsn t.log) in
  if Lsn.(target <= t.rssp) then true (* nothing to advance *)
  else begin
    (* Ask every DC concurrently; the grants arrive through the pump
       loop as ordinary control replies. *)
    let waits =
      Hashtbl.fold
        (fun _ ls acc ->
          ( ls,
            post_control ~awaited:true t ls
              (Wire.Checkpoint { tc = t.cfg.id; new_rssp = target }) )
          :: acc)
        t.links []
    in
    let granted =
      List.fold_left
        (fun acc (ls, seq) ->
          match await_control_reply t ls seq with
          | Wire.Checkpoint_done { granted } -> acc && granted
          | Wire.Ack -> false)
        true waits
    in
    if granted then begin
      t.rssp <- target;
      let active = active_xids t in
      ignore (Wal.append t.log (Log_record.Checkpoint { rssp = target; active }));
      Wal.force t.log;
      send_eosl t;
      let oldest_active =
        Hashtbl.fold
          (fun _ txn acc ->
            if txn.state = Active then Lsn.min acc txn.first_lsn else acc)
          t.txns target
      in
      let cut = Lsn.min target oldest_active in
      (* A lagging standby's catch-up reads the stable log from its
         applied cursor; truncation must never outrun the slowest
         replica or rejoin would need a full rebuild. *)
      let cut =
        match t.truncate_floor with
        | Some floor -> (
          match floor () with
          | Some fl -> Lsn.min cut fl
          | None -> cut)
        | None -> cut
      in
      Wal.truncate t.log cut;
      Instrument.bump t.counters "tc.checkpoints";
      true
    end
    else false
  end

(* ------------------------------------------------------------------ *)
(* Failures                                                            *)

let crash t =
  Wal.crash t.log;
  (* Every in-flight transaction dies with the TC.  Kill the handles
     clients still hold, not just the table: a stale handle that kept
     reporting [Active] could be committed after recovery, appending a
     fresh Commit record for an xid whose operations recovery already
     rolled back — an empty commit that reports [`Ok ()] while the
     transaction's effects are gone. *)
  Hashtbl.iter
    (fun _ txn -> if txn.state = Active then txn.state <- Aborted)
    t.txns;
  Hashtbl.reset t.txns;
  Hashtbl.reset t.pendings;
  Hashtbl.reset t.completed;
  Queue.clear t.wakeups;
  t.outstanding <- Lsn.Set.empty;
  t.undispatched <- Lsn.Set.empty;
  t.locks <- Lock_mgr.create ();
  t.acked_since_lwm <- 0;
  (* Unacked control messages are volatile too (their frames and any
     replies in flight died with the process); the epoch counters
     survive so recovery can open strictly newer sessions. *)
  Hashtbl.iter
    (fun _ ls ->
      ls.ls_outstanding <- Lsn.Set.empty;
      clear_ctl t ls)
    t.links

type analysis = {
  mutable a_committed : bool;
  mutable a_finished : bool;
  mutable a_ops : (Lsn.t * Op.t * Op.t option) list; (* newest first *)
}

let resend_logged ?xid t lsn op =
  let link = route_op t op in
  await_conflicts t op;
  dispatch t link ~lsn ~op ~xid ~wants_reply:true;
  ignore (await_reply t lsn);
  (* Redo is sequential in LSN order, so once this operation is
     re-acknowledged every operation at or below it is settled. *)
  t.lwm_cap <- Some lsn

let recover t =
  let stable = Wal.stable_lsn t.log in
  (* Analysis. *)
  let infos : (int, analysis) Hashtbl.t = Hashtbl.create 64 in
  let info x =
    match Hashtbl.find_opt infos x with
    | Some i -> i
    | None ->
      let i = { a_committed = false; a_finished = false; a_ops = [] } in
      Hashtbl.add infos x i;
      i
  in
  let rssp = ref t.rssp in
  Wal.iter_from t.log Lsn.zero (fun lsn record ->
      match record with
      | Log_record.Begin _ -> ()
      | Log_record.Op_log { xid; op; undo } ->
        let i = info xid in
        i.a_ops <- (lsn, op, undo) :: i.a_ops
      | Log_record.Compensation _ -> ()
      | Log_record.Commit { xid } -> (info xid).a_committed <- true
      | Log_record.Abort _ -> ()
      | Log_record.Finished { xid } -> (info xid).a_finished <- true
      | Log_record.Checkpoint { rssp = r; _ } -> rssp := Lsn.max !rssp r);
  t.rssp <- !rssp;
  Hashtbl.iter (fun x _ -> if x >= t.next_xid then t.next_xid <- x + 1) infos;
  (* Open a fresh control epoch on every link: watermarks or fences
     from before the crash still in flight must not touch the state the
     DCs are about to reset. *)
  Hashtbl.iter (fun _ ls -> new_epoch t ls) t.links;
  (* Cap the low-water mark at the redo cursor before the restart
     barrier: awaiting the barrier acks pumps the transports, and a
     watermark pushed from that pump would claim LSNs whose effects the
     DCs are being told to reset. *)
  t.lwm_cap <- Some (Lsn.prev t.rssp);
  (* Tell every DC to forget effects beyond the stable log (it resets
     exactly the pages whose abstract LSNs reach past it).  This is a
     barrier: redo traffic must not arrive before the reset happens. *)
  broadcast_sync t (Wire.Restart_begin { tc = t.cfg.id; stable_lsn = stable });
  (* Redo: repeat history by resending logged operations in order.  The
     low-water mark is capped at the redo cursor: history not yet resent
     must count as outstanding. *)
  Wal.iter_retained t.log t.rssp (fun lsn record ->
      match record with
      | Log_record.Op_log { op; _ } | Log_record.Compensation { op; _ } ->
        resend_logged t lsn op;
        Fault.hit p_recover_mid
      | _ -> ());
  t.lwm_cap <- None;
  (* Undo losers; finish interrupted post-commit version cleanup. *)
  Hashtbl.iter
    (fun x i ->
      if not i.a_finished then begin
        let fake_txn =
          {
            t_xid = x;
            state = Active;
            first_lsn = Lsn.zero;
            undo_stack = [];
            vwrites = [];
            failed = None;
            outstanding = Lsn.Set.empty;
            read_set = [];
            scan_set = [];
            write_buf = [];
            occ_applying = false;
          }
        in
        let versioned_of table = versioned_of_table t table in
        List.iter
          (fun (_, op, undo) ->
            match undo with
            | Some inv -> fake_txn.undo_stack <- fake_txn.undo_stack @ [ inv ]
            | None -> (
              match op with
              | Op.Insert { table; key; _ }
              | Op.Update { table; key; _ }
              | Op.Delete { table; key } ->
                if versioned_of table then
                  fake_txn.vwrites <- (table, key) :: fake_txn.vwrites
              | _ -> ()))
          i.a_ops;
        (* a_ops is newest-first, so appending preserved that order for
           the undo stack. *)
        if i.a_committed then
          List.iter
            (fun (table, keys) ->
              send_compensation t fake_txn (Op.Commit_versions { table; keys }))
            (versioned_write_sets t fake_txn)
        else begin
          ignore (Wal.append t.log (Log_record.Abort { xid = x }));
          rollback_work t fake_txn
        end;
        ignore (Wal.append t.log (Log_record.Finished { xid = x }))
      end)
    infos;
  Wal.force t.log;
  send_eosl t;
  send_lwm t;
  (* Another barrier: the fence opened by Restart_begin must be closed
     (page-delete system transactions re-enabled) before this function
     returns — callers may crash a DC next, and an open fence would
     leak into its rebuilt state. *)
  broadcast_sync t (Wire.Restart_end { tc = t.cfg.id });
  Instrument.bump t.counters "tc.recoveries"

let on_dc_restart ?(from = Lsn.zero) t ~dc =
  (* The DC rebuilt itself from stable state; every logged operation from
     the redo scan start point may be missing there.  Resend them (the
     DC's idempotence test absorbs the ones it still has).

     [from] narrows the scan for failover to a promoted standby: the
     standby applied the shipped stream through [from - 1], so only the
     gap between its applied LSN and end-of-stable-log needs re-driving.
     The fence/cap ordering below is identical either way — this is
     exactly the watermark race of the cold-restart path, and the
     promoted replica must not reintroduce it. *)
  let ls =
    match Hashtbl.find_opt t.links dc with
    | Some ls -> ls
    | None -> invalid_arg ("Tc.on_dc_restart: unknown DC " ^ dc)
  in
  (* An explicit failover cursor may sit BELOW the redo-scan start
     point: a detached standby's applied LSN is frozen while the
     checkpoint keeps advancing.  Clamping it up to the rssp here was
     the data-loss line — the gap [from, rssp) was never re-driven, and
     the promoted replica served a hole where acked commits used to be.
     Starting below the rssp is legal exactly when the log still
     retains that suffix (the retention lease a detached replica holds
     against truncation is what keeps it there); when it does not, the
     caller must refuse the promotion (Deploy.fail_over's eligibility
     gate) rather than promote a candidate whose history is gone. *)
  let retained = Wal.retained_from t.log in
  (* When the cursor sits below even the retained head, the log alone
     cannot re-drive the gap — but a layer store that absorbed the
     truncated prefix can.  Ask the hook for the missing range; with a
     feed in hand the scan starts at the retained head and the layer
     replays [from, retained) first, inside the same fence. *)
  let layer_feed =
    if Lsn.(Lsn.zero < from) && Lsn.(from < retained) then
      match t.history_replay with
      | Some h -> h ~from ~upto:(Lsn.prev retained)
      | None -> None
    else None
  in
  let start =
    if
      Lsn.(Lsn.zero < from)
      && Lsn.(from < t.rssp)
      && Lsn.(retained <= from)
    then begin
      Instrument.bump t.counters "tc.redo_below_rssp";
      from
    end
    else if Option.is_some layer_feed then begin
      Instrument.bump t.counters "tc.redo_from_layers";
      retained
    end
    else Lsn.max t.rssp from
  in
  (* Control messages from before the crash (and their replies) are
     gone; open a fresh session so stragglers in flight cannot reach
     the rebuilt DC's state. *)
  new_epoch t ls;
  (* Replies to the DC's pre-crash requests died with it.  Letting the
     backoff path resend those pendings would race the redo cursor: a
     later operation could reach the rebuilt DC before an earlier one on
     the same key, be marked applied against near-empty state, and make
     the in-order redo of that LSN absorb as a duplicate — un-doing
     history.  Instead, fence them in place (suppressing resend and the
     conflict test) and let the scan re-dispatch each at its place in
     LSN order, keeping its transaction binding.  Fencing rather than
     removing keeps this re-runnable: if the plan kills the DC again
     mid-scan, the next restart finds the still-fenced survivors and
     folds them in again. *)
  Hashtbl.iter
    (fun _ p ->
      if String.equal p.p_link.ls_link.dc_name dc then p.p_fenced <- true)
    t.pendings;
  let resend lsn record =
    match record with
    | Log_record.Op_log { op; _ } | Log_record.Compensation { op; _ } ->
      if String.equal (route_op t op).ls_link.dc_name dc then begin
        let xid =
          match Hashtbl.find_opt t.pendings (Lsn.to_int lsn) with
          | Some p when p.p_fenced -> p.p_xid
          | _ -> None
        in
        resend_logged ?xid t lsn op
      end
    | _ -> ()
  in
  (* Cap the low-water mark at the redo cursor BEFORE the first barrier
     exchange: awaiting the fence ack pumps the transports, and an ack
     from a sibling partition arriving there can trigger a watermark
     push.  Uncapped, that watermark claims every acknowledged LSN —
     including operations the rebuilt DC lost with its cache — and the
     DC, whose pages came back with empty abstract LSNs, would compact
     them to the claim and absorb the entire redo stream as duplicates.
     (For a promoted standby the cap sits at its applied LSN: the ship
     stream put every earlier effect there, so claims below it are
     covered by real state.) *)
  t.lwm_cap <-
    Some (Lsn.prev (if Option.is_some layer_feed then from else start));
  (* Both fences are barriers: the begin must be applied before any redo
     frame, the end before fresh traffic resumes. *)
  ignore
    (await_control_reply t ls
       (post_control ~awaited:true t ls (Wire.Redo_fence_begin { tc = t.cfg.id })));
  (* Fenced pendings below the scan start were already applied by the
     promoted standby (they are stable, hence shipped).  Their replies
     died with the primary, so re-dispatch each in LSN order first: the
     standby absorbs the duplicate and re-answers from its memo. *)
  let early =
    Hashtbl.fold
      (fun _ p acc ->
        if
          p.p_fenced
          && Lsn.(p.p_req.Wire.lsn < start)
          && (match Wal.find t.log p.p_req.Wire.lsn with
             | Some (Log_record.Op_log _ | Log_record.Compensation _) -> true
             | _ -> false)
        then p :: acc
        else acc)
      t.pendings []
    |> List.sort (fun a b -> Lsn.compare a.p_req.Wire.lsn b.p_req.Wire.lsn)
  in
  List.iter
    (fun p -> resend_logged ?xid:p.p_xid t p.p_req.Wire.lsn p.p_req.Wire.op)
    early;
  (* Layer-sourced redo below the retained head, oldest first, before
     the log takes over at [start]: history repeats in LSN order across
     the source switch. *)
  (match layer_feed with
  | Some feed ->
    feed (fun lsn op ->
        if String.equal (route_op t op).ls_link.dc_name dc then
          resend_logged t lsn op)
  | None -> ());
  Wal.iter_retained t.log start resend;
  Wal.iter_volatile t.log resend;
  ignore
    (await_control_reply t ls
       (post_control ~awaited:true t ls (Wire.Redo_fence_end { tc = t.cfg.id })));
  t.lwm_cap <- None;
  (* The rebuilt DC's end-of-stable-log slot died with it, and the next
     force may be arbitrarily far away (every later transaction could
     abort, which still acks ops and so still pushes low-water marks).
     Re-announce the stable horizon now, as TC recovery does, so no LWM
     can reach the DC ahead of an EOSL that covers it. *)
  send_eosl t;
  (* Any pending still fenced was never logged: a synchronous read whose
     awaiting caller unwound with the crash.  Nothing will ever consume
     its reply; retire it. *)
  let dead =
    Hashtbl.fold
      (fun key p acc -> if p.p_fenced then (key, p) :: acc else acc)
      t.pendings []
  in
  List.iter
    (fun (key, p) ->
      Hashtbl.remove t.pendings key;
      retire_pending t p;
      match p.p_xid with
      | Some x -> (
        match Hashtbl.find_opt t.txns x with
        | Some txn ->
          txn.outstanding <- Lsn.Set.remove p.p_req.Wire.lsn txn.outstanding
        | None -> ())
      | None -> ())
    dead

(* Failover: the link's DC is now a promoted standby that applied the
   shipped stream through [from - 1].  Same fence/cap protocol, redo
   narrowed to the gap. *)
let on_dc_failover t ~dc ~from = on_dc_restart ~from t ~dc

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let rssp t = t.rssp

let log_retained_from t = Wal.retained_from t.log

let stable_lsn t = Wal.stable_lsn t.log

let last_lsn t = Wal.last_lsn t.log

let log_forces t = Wal.forces t.log

let log_bytes t = Wal.appended_bytes t.log

let log_records t = Wal.stable_count t.log + Wal.volatile_count t.log

let lock_acquisitions t = Lock_mgr.total_acquisitions t.locks

let messages_sent t = t.msgs

let resends t = t.resend_count

let dc_of_op t op = (route_op t op).ls_link.dc_name

let part_of_dc t ~dc =
  match Hashtbl.find_opt t.links dc with
  | Some ls -> ls.ls_link.part
  | None -> invalid_arg ("Tc.part_of_dc: unknown DC " ^ dc)

let iter_stable_ops t f =
  Wal.iter_from t.log t.rssp (fun lsn record ->
      match record with
      | Log_record.Op_log { op; _ } | Log_record.Compensation { op; _ } ->
        f lsn op
      | _ -> ())

(* The log-shipping read path: logged operations of the stable log from
   an arbitrary cursor.  Only stable records ship — a volatile record
   can still be lost by a TC crash, and a standby must never hold
   effects the TC's log cannot account for. *)
let iter_stable_ops_from t ~from f =
  Wal.iter_retained t.log from (fun lsn record ->
      match record with
      | Log_record.Op_log { op; _ } | Log_record.Compensation { op; _ } ->
        f lsn op
      | _ -> ())

let force_log t =
  Wal.force t.log;
  send_eosl t

let dump_locks t = Lock_mgr.dump t.locks
