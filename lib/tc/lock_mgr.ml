type mode = S | X

type resource =
  | Record of { table : string; key : string }
  | Range of { table : string; slot : int }
  | Table of string

let pp_resource ppf = function
  | Record { table; key } -> Format.fprintf ppf "rec:%s[%s]" table key
  | Range { table; slot } -> Format.fprintf ppf "range:%s/%d" table slot
  | Table table -> Format.fprintf ppf "table:%s" table

(* A queued request.  The FIFO holds these nodes; removal just marks
   [w_dead] and the queue compacts lazily at the head — O(1) cancel
   without rebuilding the queue. *)
type waiter = { w_owner : int; w_mode : mode; mutable w_dead : bool }

type entry = {
  holders : (int, mode) Hashtbl.t;
  mutable x_holders : int; (* holders in X mode, for O(1) grant tests *)
  queue : waiter Queue.t; (* FIFO: head is next candidate *)
  queued : (int * mode, waiter) Hashtbl.t; (* the live queue members *)
}

type t = {
  table : (resource, entry) Hashtbl.t;
  owner_locks : (int, (resource, unit) Hashtbl.t) Hashtbl.t;
  owner_waits : (int, (resource, unit) Hashtbl.t) Hashtbl.t;
      (* resources where the owner has a live queued request, so
         cancelling waits never scans the whole lock table *)
  mutable total_acquisitions : int;
}

let create () =
  {
    table = Hashtbl.create 256;
    owner_locks = Hashtbl.create 32;
    owner_waits = Hashtbl.create 32;
    total_acquisitions = 0;
  }

let entry_of t rsrc =
  match Hashtbl.find_opt t.table rsrc with
  | Some e -> e
  | None ->
    let e =
      {
        holders = Hashtbl.create 4;
        x_holders = 0;
        queue = Queue.create ();
        queued = Hashtbl.create 4;
      }
    in
    Hashtbl.add t.table rsrc e;
    e

let index_cell index owner =
  match Hashtbl.find_opt index owner with
  | Some c -> c
  | None ->
    let c = Hashtbl.create 8 in
    Hashtbl.add index owner c;
    c

let mode_covers held wanted =
  match (held, wanted) with X, _ -> true | S, S -> true | S, X -> false

let compatible m1 m2 = match (m1, m2) with S, S -> true | _ -> false

(* ---- holder bookkeeping ---- *)

let set_holder e owner mode =
  (match Hashtbl.find_opt e.holders owner with
  | Some X -> e.x_holders <- e.x_holders - 1
  | _ -> ());
  Hashtbl.replace e.holders owner mode;
  if mode = X then e.x_holders <- e.x_holders + 1

let remove_holder e owner =
  match Hashtbl.find_opt e.holders owner with
  | Some held ->
    if held = X then e.x_holders <- e.x_holders - 1;
    Hashtbl.remove e.holders owner
  | None -> ()

(* Can [owner] be granted [mode] on [e] right now?  Re-entrant holders
   and the sole-holder upgrade are allowed; everyone else must be
   compatible. *)
let grantable e owner mode =
  match mode with
  | X -> Hashtbl.length e.holders - (if Hashtbl.mem e.holders owner then 1 else 0) = 0
  | S ->
    e.x_holders
    - (match Hashtbl.find_opt e.holders owner with Some X -> 1 | _ -> 0)
    = 0

let note_granted t owner rsrc =
  t.total_acquisitions <- t.total_acquisitions + 1;
  Hashtbl.replace (index_cell t.owner_locks owner) rsrc ()

(* ---- waiter bookkeeping ---- *)

let live_waiters e =
  Queue.fold
    (fun acc w -> if w.w_dead then acc else (w.w_owner, w.w_mode) :: acc)
    [] e.queue
  |> List.rev

let rec live_head e =
  match Queue.peek_opt e.queue with
  | Some w when w.w_dead ->
    ignore (Queue.pop e.queue);
    live_head e
  | other -> other

let drop_wait_index t owner rsrc e =
  if
    (not (Hashtbl.mem e.queued (owner, S)))
    && not (Hashtbl.mem e.queued (owner, X))
  then
    match Hashtbl.find_opt t.owner_waits owner with
    | Some c ->
      Hashtbl.remove c rsrc;
      if Hashtbl.length c = 0 then Hashtbl.remove t.owner_waits owner
    | None -> ()

let kill_wait t e rsrc owner mode =
  match Hashtbl.find_opt e.queued (owner, mode) with
  | Some w ->
    w.w_dead <- true;
    Hashtbl.remove e.queued (owner, mode);
    drop_wait_index t owner rsrc e
  | None -> ()

let entry_gc t rsrc e =
  if Hashtbl.length e.holders = 0 && Hashtbl.length e.queued = 0 then
    Hashtbl.remove t.table rsrc

let acquire t ~owner rsrc mode =
  let e = entry_of t rsrc in
  match Hashtbl.find_opt e.holders owner with
  | Some held when mode_covers held mode -> `Granted
  | current -> (
    (* Fairness: a newcomer must not overtake queued waiters — except an
       upgrade request (current = Some S), which jumps the queue as in
       most real lock managers to avoid self-blocking behind strangers.
       A retry by the waiter at the *head* of the queue is granted when
       compatible: holders can change between its enqueue and its retry,
       and release-time promotion cannot fire if nobody releases. *)
    let at_head =
      match live_head e with Some w -> w.w_owner = owner | None -> false
    in
    let must_queue =
      (not (grantable e owner mode))
      || (current = None && Hashtbl.length e.queued > 0 && not at_head)
    in
    if not must_queue then begin
      (* Retire only the owner's queued requests the granted mode
         covers: granting S must leave a queued X upgrade in place, or
         the waiting upgrade (and its waits-for edges) silently
         vanishes and both transactions sleep forever. *)
      kill_wait t e rsrc owner S;
      if mode = X then kill_wait t e rsrc owner X;
      set_holder e owner mode;
      note_granted t owner rsrc;
      `Granted
    end
    else begin
      if not (Hashtbl.mem e.queued (owner, mode)) then begin
        let w = { w_owner = owner; w_mode = mode; w_dead = false } in
        Queue.add w e.queue;
        Hashtbl.replace e.queued (owner, mode) w;
        Hashtbl.replace (index_cell t.owner_waits owner) rsrc ()
      end;
      `Blocked
    end)

let holds t ~owner rsrc mode =
  match Hashtbl.find_opt t.table rsrc with
  | None -> false
  | Some e -> (
    match Hashtbl.find_opt e.holders owner with
    | Some held -> mode_covers held mode
    | None -> false)

(* Promote waiters at the head of the queue while they are grantable. *)
let promote t rsrc e granted =
  let rec go granted =
    match live_head e with
    | None -> granted
    | Some w ->
      if grantable e w.w_owner w.w_mode then begin
        ignore (Queue.pop e.queue);
        Hashtbl.remove e.queued (w.w_owner, w.w_mode);
        drop_wait_index t w.w_owner rsrc e;
        set_holder e w.w_owner w.w_mode;
        note_granted t w.w_owner rsrc;
        go (w.w_owner :: granted)
      end
      else granted
  in
  go granted

(* Kill every queued request of [owner], touching only the entries the
   wait index names — not the whole lock table. *)
let kill_all_waits t ~owner =
  match Hashtbl.find_opt t.owner_waits owner with
  | None -> ()
  | Some cell ->
    let resources = Hashtbl.fold (fun rsrc () acc -> rsrc :: acc) cell [] in
    List.iter
      (fun rsrc ->
        match Hashtbl.find_opt t.table rsrc with
        | None -> ()
        | Some e ->
          kill_wait t e rsrc owner S;
          kill_wait t e rsrc owner X;
          entry_gc t rsrc e)
      resources;
    Hashtbl.remove t.owner_waits owner

let release_all t ~owner =
  kill_all_waits t ~owner;
  let resources =
    match Hashtbl.find_opt t.owner_locks owner with
    | Some c -> Hashtbl.fold (fun rsrc () acc -> rsrc :: acc) c []
    | None -> []
  in
  Hashtbl.remove t.owner_locks owner;
  let granted =
    List.fold_left
      (fun granted rsrc ->
        match Hashtbl.find_opt t.table rsrc with
        | None -> granted
        | Some e ->
          remove_holder e owner;
          let granted = promote t rsrc e granted in
          entry_gc t rsrc e;
          granted)
      [] resources
  in
  List.sort_uniq Int.compare granted

let cancel_waits t ~owner = kill_all_waits t ~owner

let waiting t ~owner = Hashtbl.mem t.owner_waits owner

(* Waits-for edges.  A queued request waits for every current holder it
   is incompatible with, and — because the queue is FIFO — for every
   earlier waiter it is incompatible with.  Compatible-holder edges are
   also added when the waiter sits behind someone (it cannot be granted
   past the queue), which is conservative but keeps detection complete. *)
let find_deadlock t =
  let edges = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _ e ->
      let holders = Hashtbl.fold (fun h hm acc -> (h, hm) :: acc) e.holders [] in
      let rec waiters_loop earlier = function
        | [] -> ()
        | (w, wm) :: rest ->
          let queued_behind = earlier <> [] in
          List.iter
            (fun (h, hm) ->
              if h <> w && ((not (compatible hm wm)) || queued_behind) then
                Hashtbl.add edges w h)
            holders;
          List.iter
            (fun (pw, pwm) ->
              if pw <> w && not (compatible pwm wm) then Hashtbl.add edges w pw)
            earlier;
          waiters_loop ((w, wm) :: earlier) rest
      in
      waiters_loop [] (live_waiters e))
    t.table;
  let color = Hashtbl.create 32 in
  let cycle_members = ref [] in
  let rec dfs stack node =
    match Hashtbl.find_opt color node with
    | Some `Done -> ()
    | Some `Active ->
      (* [node] closes a cycle: the stack head is this re-visit of
         [node]; members are everything up to its previous occurrence. *)
      let rec collect acc = function
        | [] -> acc
        | n :: rest -> if n = node then acc else collect (n :: acc) rest
      in
      cycle_members :=
        node :: (match stack with [] -> [] | _ :: rest -> collect [] rest)
    | None ->
      Hashtbl.replace color node `Active;
      List.iter
        (fun succ -> if !cycle_members = [] then dfs (succ :: stack) succ)
        (Hashtbl.find_all edges node);
      if Hashtbl.find_opt color node = Some `Active then
        Hashtbl.replace color node `Done
  in
  Hashtbl.iter
    (fun w _ -> if !cycle_members = [] then dfs [ w ] w)
    edges;
  match !cycle_members with
  | [] -> None
  | members -> Some (List.fold_left Stdlib.max Int.min_int members)

let held_count t ~owner =
  match Hashtbl.find_opt t.owner_locks owner with
  | Some c -> Hashtbl.length c
  | None -> 0

let total_acquisitions t = t.total_acquisitions

let live_locks t =
  Hashtbl.fold (fun _ e acc -> acc + Hashtbl.length e.holders) t.table 0

let dump t =
  let buf = Buffer.create 256 in
  Hashtbl.iter
    (fun rsrc e ->
      if Hashtbl.length e.holders > 0 || Hashtbl.length e.queued > 0 then begin
        Buffer.add_string buf (Format.asprintf "%a:" pp_resource rsrc);
        Hashtbl.iter
          (fun h m ->
            Buffer.add_string buf
              (Printf.sprintf " h%d%s" h (match m with S -> "S" | X -> "X")))
          e.holders;
        List.iter
          (fun (w, m) ->
            Buffer.add_string buf
              (Printf.sprintf " w%d%s" w (match m with S -> "S" | X -> "X")))
          (live_waiters e);
        Buffer.add_char buf '\n'
      end)
    t.table;
  Buffer.contents buf
