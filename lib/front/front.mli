(** The session front end: M client sessions over an M-TC × N-DC
    deployment.

    The paper's TC is "wrapped by the application" — one TC per
    application process.  Scaling the transactional tier out means many
    TCs sharing the partitioned DCs (Section 6), and someone has to
    decide which TC serves which client.  That someone is this module:
    a deployment-level dispatcher that

    - assigns each client {e session} a home TC (deterministic
      round-robin over the deployment's TCs — a session's transactions
      all commit through one TC's log, because nothing here is a
      distributed transaction);
    - lets sessions {e pipeline}: a session may queue up to
      [session_queue] transactions without waiting for results
      (per-session FIFO order is preserved end to end);
    - {e admission-controls} the whole tier: both queues are bounded,
      and past saturation {!submit} refuses with a typed [`Overloaded]
      (counted ["front.shed"]) instead of stalling silently — shed, not
      collapse;
    - {e group-commits across sessions}: every TC's live batch size is
      raised to [batch] ({!Untx_tc.Tc.set_group_commit}), so commits
      from different sessions landing on the same TC share one log
      force.  A commit that rode an open batch (its force deferred) is
      counted ["front.batched"]; {!flush} closes partial batches.

    Execution is deterministic: {!pump} serves sessions round-robin from
    a persistent cursor, one transaction at a time, to completion.  The
    same open/submit sequence always yields the same TC assignment, the
    same execution order and the same results — chaos cycles and the
    dispatch-determinism property lean on this. *)

type op =
  | Insert of { table : string; key : string; value : string }
  | Update of { table : string; key : string; value : string }
  | Delete of { table : string; key : string }
  | Read of { table : string; key : string }

(** A finished transaction's outcome. *)
type result =
  | Committed of string option list
      (** the [Read] ops' answers, in submission order *)
  | Rejected of string  (** aborted and rolled back; the reason *)

type config = {
  max_sessions : int;  (** {!open_session} refuses past this *)
  session_queue : int;
      (** per-session pipeline depth: queued, not-yet-executed
          transactions a session may have outstanding *)
  total_queue : int;  (** bound on queued transactions across sessions *)
  batch : int;
      (** group-commit batch size installed on every TC at {!create} *)
}

val default_config : config
(** 64 sessions, pipeline depth 8, 256 queued total, 4-commit batches. *)

exception Overloaded of string
(** {!open_session} past [max_sessions].  The refusal is typed and loud
    — an operator adds a TC or a front, never waits on a silent stall. *)

type t

type session

val create :
  ?counters:Untx_util.Instrument.t ->
  ?cfg:config ->
  Untx_cloud.Deploy.t ->
  t
(** Build a front over the deployment's current TCs (name order) and
    install [cfg.batch] as every TC's group-commit size.  TCs added to
    the deployment afterwards are not served — create the front after
    the topology.  Raises [Invalid_argument] if the deployment has no
    TC. *)

val open_session : t -> session
(** Admit a client session and pin its home TC (round-robin by open
    order).  Raises {!Overloaded} past [max_sessions] (counted
    ["front.shed"]). *)

val session_tc : session -> string
(** The session's home TC — tests assert the dispatch spread. *)

val session_id : session -> int

val submit :
  t -> session -> op list -> [ `Ticket of int | `Overloaded of string ]
(** Queue one transaction on the session's FIFO.  Admission control:
    a full session queue or full total queue refuses with
    [`Overloaded reason] (counted ["front.shed"], traced
    [comp:"front" ev:"shed"]); otherwise the ticket is returned
    (counted ["front.admitted"]).  Raises [Invalid_argument] on an
    empty transaction. *)

val poll : t -> int -> [ `Pending | `Done of result ]
(** A ticket's state.  Results are retained until polled: [`Done]
    consumes the result.  Raises [Invalid_argument] for a ticket never
    issued or already consumed. *)

val pump : ?budget:int -> t -> int
(** Execute up to [budget] queued transactions (default: until every
    queue is empty), serving sessions round-robin from the persistent
    cursor, each transaction run to completion on its session's home
    TC.  Returns how many transactions finished.  Commits that rode an
    open group-commit batch are counted ["front.batched"]. *)

val flush : t -> unit
(** Force every TC's log, closing partial group-commit batches — the
    batched commits' durability point. *)

val drain : t -> unit
(** {!pump} everything, then {!flush}. *)

val pending : t -> int
(** Queued, not-yet-executed transactions across all sessions. *)

val sessions : t -> int
(** Sessions opened so far. *)

val tc_of_session : t -> session -> Untx_tc.Tc.t
(** The live TC object serving the session (benches read its LSNs). *)
