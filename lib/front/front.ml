module Deploy = Untx_cloud.Deploy
module Tc = Untx_tc.Tc
module Lsn = Untx_util.Lsn
module Instrument = Untx_util.Instrument
module Trace = Untx_obs.Trace

type op =
  | Insert of { table : string; key : string; value : string }
  | Update of { table : string; key : string; value : string }
  | Delete of { table : string; key : string }
  | Read of { table : string; key : string }

type result = Committed of string option list | Rejected of string

type config = {
  max_sessions : int;
  session_queue : int;
  total_queue : int;
  batch : int;
}

let default_config =
  { max_sessions = 64; session_queue = 8; total_queue = 256; batch = 4 }

exception Overloaded of string

type session = {
  sid : int;
  tc_name : string;
  q : (int * op list) Queue.t;  (* (ticket, transaction), FIFO *)
}

type t = {
  cfg : config;
  deploy : Deploy.t;
  counters : Instrument.t;
  tcs : string array;  (* deployment TCs in name order, assignment ring *)
  mutable rev_sessions : session list;  (* newest first *)
  mutable nsessions : int;
  mutable next_ticket : int;
  mutable queued : int;  (* across all session queues *)
  results : (int, result) Hashtbl.t;
  mutable cursor : int;  (* next session the round-robin serves *)
}

let create ?(counters = Instrument.create ()) ?(cfg = default_config) deploy =
  if cfg.max_sessions < 1 || cfg.session_queue < 1 || cfg.total_queue < 1 then
    invalid_arg "Front.create: bounds must be >= 1";
  let tcs = Array.of_list (List.sort compare (Deploy.tc_names deploy)) in
  if Array.length tcs = 0 then
    invalid_arg "Front.create: deployment has no TC";
  Array.iter
    (fun name -> Tc.set_group_commit (Deploy.tc deploy name) cfg.batch)
    tcs;
  {
    cfg;
    deploy;
    counters;
    tcs;
    rev_sessions = [];
    nsessions = 0;
    next_ticket = 1;
    queued = 0;
    results = Hashtbl.create 64;
    cursor = 0;
  }

let shed t reason =
  Instrument.bump t.counters "front.shed";
  Trace.record ~tid:0 ~comp:"front" ~ev:"shed" [ ("reason", reason) ]

let open_session t =
  if t.nsessions >= t.cfg.max_sessions then begin
    shed t "max_sessions";
    raise (Overloaded "Front.open_session: max_sessions reached")
  end;
  let sid = t.nsessions in
  let s =
    { sid; tc_name = t.tcs.(sid mod Array.length t.tcs); q = Queue.create () }
  in
  t.nsessions <- sid + 1;
  t.rev_sessions <- s :: t.rev_sessions;
  s

let session_tc s = s.tc_name

let session_id s = s.sid

let tc_of_session t s = Deploy.tc t.deploy s.tc_name

let submit t s ops =
  if ops = [] then invalid_arg "Front.submit: empty transaction";
  if Queue.length s.q >= t.cfg.session_queue then begin
    shed t "session_queue";
    `Overloaded
      (Printf.sprintf "session %d pipeline full (%d queued)" s.sid
         (Queue.length s.q))
  end
  else if t.queued >= t.cfg.total_queue then begin
    shed t "total_queue";
    `Overloaded (Printf.sprintf "front saturated (%d queued)" t.queued)
  end
  else begin
    let ticket = t.next_ticket in
    t.next_ticket <- ticket + 1;
    Queue.push (ticket, ops) s.q;
    t.queued <- t.queued + 1;
    Instrument.bump t.counters "front.admitted";
    Trace.record ~tid:0 ~comp:"front" ~ev:"admitted"
      [ ("session", string_of_int s.sid); ("tc", s.tc_name) ];
    `Ticket ticket
  end

(* Run one transaction to completion on the session's home TC.  The
   front serves one transaction at a time per TC, so locks never
   contend within the front; [`Blocked] can only mean some co-located
   workload holds the lock — surface it as a refusal rather than spin. *)
let run_txn tc ops =
  let txn = Tc.begin_txn tc in
  let reads = ref [] in
  let wrote = ref false in
  let step = function
    | Insert { table; key; value } ->
      wrote := true;
      (match Tc.insert tc txn ~table ~key ~value with
      | `Ok () -> None
      | `Blocked -> Some "blocked"
      | `Fail r -> Some r)
    | Update { table; key; value } ->
      wrote := true;
      (match Tc.update tc txn ~table ~key ~value with
      | `Ok () -> None
      | `Blocked -> Some "blocked"
      | `Fail r -> Some r)
    | Delete { table; key } ->
      wrote := true;
      (match Tc.delete tc txn ~table ~key with
      | `Ok () -> None
      | `Blocked -> Some "blocked"
      | `Fail r -> Some r)
    | Read { table; key } ->
      (match Tc.read tc txn ~table ~key with
      | `Ok v ->
        reads := v :: !reads;
        None
      | `Blocked -> Some "blocked"
      | `Fail r -> Some r)
  in
  let rec go = function
    | [] ->
      (match Tc.commit tc txn with
      | `Ok () -> (Committed (List.rev !reads), !wrote)
      | `Blocked | `Fail _ ->
        (* commit rolled the transaction back itself on `Fail *)
        (Rejected "commit failed", !wrote))
    | op :: rest ->
      (match step op with
      | None -> go rest
      | Some reason ->
        Tc.abort tc txn ~reason;
        (Rejected reason, !wrote))
  in
  go ops

let pending t = t.queued

let sessions t = t.nsessions

let pump ?(budget = max_int) t =
  let arr = Array.of_list (List.rev t.rev_sessions) in
  let n = Array.length arr in
  let finished = ref 0 in
  if n > 0 then begin
    let idle = ref 0 in
    (* stop after a full empty rotation or when the budget runs out *)
    while !finished < budget && !idle < n do
      let s = arr.(t.cursor mod n) in
      t.cursor <- (t.cursor + 1) mod n;
      if Queue.is_empty s.q then incr idle
      else begin
        idle := 0;
        let ticket, ops = Queue.pop s.q in
        t.queued <- t.queued - 1;
        let tc = Deploy.tc t.deploy s.tc_name in
        let stable_before = Tc.stable_lsn tc in
        let r, wrote = run_txn tc ops in
        (match r with
        | Committed _
          when wrote && Lsn.to_int (Tc.stable_lsn tc) = Lsn.to_int stable_before
          ->
          (* the commit's force was deferred into the open batch *)
          Instrument.bump t.counters "front.batched";
          Trace.record ~tid:0 ~comp:"front" ~ev:"batched"
            [ ("tc", s.tc_name) ]
        | _ -> ());
        Hashtbl.replace t.results ticket r;
        incr finished
      end
    done
  end;
  !finished

let flush t =
  Array.iter (fun name -> Tc.force_log (Deploy.tc t.deploy name)) t.tcs

let drain t =
  while t.queued > 0 do
    ignore (pump t)
  done;
  flush t

let poll t ticket =
  match Hashtbl.find_opt t.results ticket with
  | Some r ->
    Hashtbl.remove t.results ticket;
    `Done r
  | None ->
    if ticket >= 1 && ticket < t.next_ticket then
      let queued_somewhere =
        List.exists
          (fun s -> Queue.fold (fun acc (k, _) -> acc || k = ticket) false s.q)
          t.rev_sessions
      in
      if queued_somewhere then `Pending
      else invalid_arg "Front.poll: ticket already consumed"
    else invalid_arg "Front.poll: unknown ticket"
