(** The layered log store: compacted redo history + page@LSN reads.

    The replication channel already ships every stable redo record; this
    store absorbs that same stream into a Neon-style layered structure
    and keeps it {e queryable at any LSN}:

    - {b L0}: append-ordered runs of materialized record states, one
      entry per (table, key) a logged operation touched, in LSN order.
      Volatile — a {!crash} loses them.
    - {b L1}: sealed L0 runs merged by {!compact} into sorted,
      deduplicated layer files keyed by [(key, lsn)], each covering a
      contiguous LSN range.  Durable — they survive {!crash}, and
      {!durable_lsn} (the newest layer's high watermark) is the floor
      below which the TC's log no longer needs to retain history.
    - {b reconstruct}: a point-in-time lookup overlaying the newest
      entry at or below the requested LSN, newest structures first
      (active run, sealed runs, then layers).  The number of structures
      probed is the read amplification, recorded per lookup.

    Entries are {e materialized}: ingest replays each operation through
    the DC's record semantics (insert/update/delete, version
    commit/abort, tombstones, before-images) and stores the resulting
    {!Untx_dc.Stored_record}, so reconstruction is a single lookup with
    no base image to patch.  Because the entries keep their producing
    operations too, the store can also replay original redo below the
    log's truncation point ({!iter_ops}) and rebuild a standby from
    scratch ({!iter_current}) — the two paths that free log truncation
    from the slowest replica's cursor. *)

val p_compact_mid : string
(** The ["layer.compact.mid"] fault point, hit once per compaction after
    the merge but before the new L1 layer is installed.  A crash here
    must lose the whole compaction: the sealed runs stay, the partial
    layer is discarded, and {!durable_lsn} does not move. *)

val p_ingest_drop : string
(** The ["layer.ingest.drop"] fault point, hit once per ingested record.
    A rule firing here drops the record {e and stops the ingest cursor
    just before it}: {!ingested_lsn} never claims a record the store
    does not hold, so the next {!absorb} re-reads the suffix from the
    log and nothing is silently lost. *)

exception Beyond_ingested of { wanted : Untx_util.Lsn.t; ingested : Untx_util.Lsn.t }
(** A history read past the ingest watermark: the store has not absorbed
    [wanted] yet (it only holds [..ingested]).  Mirrors
    [Wal.Truncated {wanted; retained}] — typed, so callers can match on
    the boundary instead of parsing a message. *)

exception History_truncated of { wanted : Untx_util.Lsn.t; history_from : Untx_util.Lsn.t }
(** A history read below the rebase cut: {!truncate_history} dropped the
    per-LSN history under [history_from], keeping only each key's rebased
    state there. *)

type t

val create :
  ?counters:Untx_util.Instrument.t ->
  ?l0_seal_ops:int ->
  ?compact_runs:int ->
  writer:Untx_util.Tc_id.t ->
  versioned:(string -> bool) ->
  unit ->
  t
(** A store for one TC's log.  [writer] stamps materialized records
    (the shipping TC owns every record it installs); [versioned] answers
    per table — evaluated lazily, so tables mapped after creation are
    seen.  The active L0 run seals itself after [l0_seal_ops] entries
    (default 128); {!absorb} auto-compacts once [compact_runs] sealed
    runs pile up (default 4). *)

val absorb :
  t ->
  upto:Untx_util.Lsn.t ->
  ((Untx_util.Lsn.t -> Untx_msg.Op.t -> unit) -> unit) ->
  unit
(** [absorb t ~upto feed] ingests stable redo: [feed] must call the
    supplied function with every logged operation in
    [(ingested_lsn, upto]] in LSN order (records outside that window —
    an already-absorbed prefix, a suffix past [upto] — are ignored, so
    re-feeding a full scan is absorbed idempotently).  On success [ingested_lsn = upto].
    A record dropped by {!p_ingest_drop} pins the cursor at the last
    intact prefix and the rest of the feed is ignored — the next absorb
    re-reads from the log.  May auto-compact (see {!compact}, including
    its fault point). *)

val ingested_lsn : t -> Untx_util.Lsn.t
(** Every logged operation at or below it is materialized in the store
    (L0 or L1). *)

val durable_lsn : t -> Untx_util.Lsn.t
(** Every logged operation at or below it is compacted into L1 and
    survives {!crash} — the log-truncation floor this store supports is
    [Lsn.next durable_lsn]. *)

val seal : t -> unit
(** Seal the active L0 run (no-op when empty). *)

val compact : ?all:bool -> t -> unit
(** Merge every sealed L0 run into one new L1 layer: entries sorted by
    [(key, lsn)], duplicates dropped, LSN range contiguous with the
    previous layer.  Atomic against {!p_compact_mid}: if the fault fires
    the merged layer is discarded and the sealed runs remain.  [~all]
    seals the active run first, pushing {!durable_lsn} to the newest
    absorbed entry.  No-op without sealed runs. *)

val l0_runs : t -> int
(** Sealed runs plus the active one when non-empty. *)

val l1_layers : t -> int

val l1_entries : t -> int

val reconstruct :
  t -> table:string -> key:string -> at:Untx_util.Lsn.t -> string option
(** The record's visible value after applying every logged operation at
    or below [at] — [None] if it was absent or deleted there.  Raises
    {!Beyond_ingested} when [at > ingested_lsn] (the store cannot answer
    beyond what it absorbed) and {!History_truncated} when
    [at < history_from].  Counted as ["layer.reconstruct_reads"];
    structures probed recorded in the ["layer.read_amp"] histogram. *)

val lookup :
  t ->
  table:string ->
  key:string ->
  at:Untx_util.Lsn.t ->
  [ `Visible of string | `Gone | `Unwritten ]
(** {!reconstruct} with the two flavours of "absent" kept apart:
    [`Gone] means the store logged the key and its state at [at] is
    invisible (deleted, tombstoned, never-committed); [`Unwritten] means
    no logged operation at or below [at] ever touched it.  A branch
    overlay needs the distinction — [`Unwritten] falls through to the
    parent, [`Gone] must not.  Same range checks as {!reconstruct}. *)

val iter_at :
  t -> at:Untx_util.Lsn.t -> (table:string -> key:string -> string -> unit) -> unit
(** Visit every record visible at [at] — the fork-point scan a branch
    materializes whole tables from.  Same range checks as
    {!reconstruct}. *)

val iter_current :
  t -> (table:string -> key:string -> Untx_dc.Stored_record.t -> unit) -> unit
(** Visit every present record's materialized state at {!ingested_lsn}
    (tombstones and in-flight before-images included, physically absent
    keys skipped) — the standby-bootstrap install set. *)

val iter_ops :
  t ->
  from:Untx_util.Lsn.t ->
  upto:Untx_util.Lsn.t ->
  (Untx_util.Lsn.t -> Untx_msg.Op.t -> unit) ->
  unit
(** Replay the original logged operations in [[from, upto]] in LSN order
    (each multi-key operation once) — redo sourced from layers for the
    suffix the TC's log no longer retains.  Raises {!Beyond_ingested}
    when [upto > ingested_lsn] and {!History_truncated} when
    [from < history_from] (the rebase dropped the per-op history
    there). *)

val pin : t -> at:Untx_util.Lsn.t -> unit
(** Take a refcounted retention pin at [at]: {!truncate_history} will
    never cut at or below a live pin, so every LSN [>= at] stays
    answerable.  A live branch pins its fork point.  Same range checks
    as {!reconstruct}. *)

val unpin : t -> at:Untx_util.Lsn.t -> unit
(** Release one pin taken at exactly [at].  Raises [Invalid_argument]
    when no pin is held there. *)

val pin_floor : t -> Untx_util.Lsn.t option
(** The lowest live pin, if any. *)

val pin_count : t -> int
(** Total live pins (sum of refcounts). *)

val history_from : t -> Untx_util.Lsn.t
(** The lowest [at] this store still answers; [Lsn.zero] until
    {!truncate_history} cuts. *)

val truncate_history : t -> below:Untx_util.Lsn.t -> int
(** Drop per-LSN history below [min below (pin floor)] (and never above
    the durable watermark): L1 layers wholly under the cut are folded
    into one rebased snapshot layer keeping each key's newest entry, and
    [history_from] rises to the cut.  Reads and {!iter_ops} below the
    cut raise {!History_truncated} afterwards.  Returns the number of
    entries reclaimed (0 when the cut cannot rise). *)

val crash : t -> unit
(** Lose the volatile half: L0 runs and the ingest state above
    {!durable_lsn}.  The materialized state is rebuilt from L1 and
    [ingested_lsn] falls back to [durable_lsn]; the owner re-absorbs the
    un-compacted suffix from the log (which the truncation floor kept
    retained). *)
