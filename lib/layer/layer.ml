module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Instrument = Untx_util.Instrument
module Metrics = Untx_obs.Metrics
module Trace = Untx_obs.Trace
module Fault = Untx_fault.Fault
module Op = Untx_msg.Op
module Stored_record = Untx_dc.Stored_record

(* The layered log store.  Shipped stable redo is replayed through the
   DC's record semantics at ingest time, so every entry is a
   *materialized* record state — reconstruction at an LSN is one lookup
   (newest entry at or below it), not a patch chain.  Append-ordered L0
   runs hold the fresh tail; compaction merges sealed runs into sorted,
   deduplicated L1 layers with contiguous LSN ranges, which is the
   durable half: a crash loses L0 and the store re-absorbs the
   un-compacted suffix from the retained log. *)

(* A crash between the merge and the install must lose the whole
   compaction (sealed runs kept, partial layer discarded). *)
let p_compact_mid = Fault.declare "layer.compact.mid"

(* A record transiently dropped on ingest must pin the cursor: claiming
   it absorbed would leave a silent hole under every later read. *)
let p_ingest_drop = Fault.declare "layer.ingest.drop"

exception Beyond_ingested of { wanted : Lsn.t; ingested : Lsn.t }

exception History_truncated of { wanted : Lsn.t; history_from : Lsn.t }

let () =
  Printexc.register_printer (function
    | Beyond_ingested { wanted; ingested } ->
      Some
        (Printf.sprintf
           "Layer.Beyond_ingested { wanted = %s; ingested = %s }"
           (Lsn.to_string wanted) (Lsn.to_string ingested))
    | History_truncated { wanted; history_from } ->
      Some
        (Printf.sprintf
           "Layer.History_truncated { wanted = %s; history_from = %s }"
           (Lsn.to_string wanted) (Lsn.to_string history_from))
    | _ -> None)

type entry = {
  e_tk : string * string; (* (table, key) *)
  e_lsn : Lsn.t;
  e_rec : Stored_record.t option; (* state after the op; None = absent *)
  e_op : Op.t; (* the producing operation, for layer-sourced redo *)
}

type run = {
  mutable u_entries : entry list; (* newest first *)
  mutable u_count : int;
}

type layer = {
  y_lo : Lsn.t; (* covered LSN range, inclusive; contiguous across layers *)
  y_hi : Lsn.t;
  y_entries : entry array; (* sorted by (table, key, lsn) *)
}

type t = {
  counters : Instrument.t;
  writer : Tc_id.t;
  versioned : string -> bool;
  l0_seal_ops : int;
  compact_runs : int;
  mutable active : run;
  mutable sealed : run list; (* newest first *)
  mutable layers : layer list; (* newest first *)
  cur : (string * string, Stored_record.t option) Hashtbl.t;
      (* materialized state at [ingested]; a None value is an explicit
         "absent" (unversioned delete), distinct from never-written *)
  mutable ingested : Lsn.t;
  mutable durable : Lsn.t;
  pins : (Lsn.t, int ref) Hashtbl.t;
      (* refcounted retention pins: {!truncate_history} never cuts
         above the lowest pinned LSN, so a live branch's fork point
         stays resolvable however often the parent rebases *)
  mutable history_from : Lsn.t;
      (* lowest [at] still answerable; reads below it raise
         {!History_truncated}.  Starts at zero (full history). *)
}

let fresh_run () = { u_entries = []; u_count = 0 }

let create ?(counters = Instrument.global) ?(l0_seal_ops = 128)
    ?(compact_runs = 4) ~writer ~versioned () =
  {
    counters;
    writer;
    versioned;
    l0_seal_ops;
    compact_runs;
    active = fresh_run ();
    sealed = [];
    layers = [];
    cur = Hashtbl.create 256;
    ingested = Lsn.zero;
    durable = Lsn.zero;
    pins = Hashtbl.create 4;
    history_from = Lsn.zero;
  }

let ingested_lsn t = t.ingested

let durable_lsn t = t.durable

let history_from t = t.history_from

let l0_runs t = List.length t.sealed + if t.active.u_count > 0 then 1 else 0

let l1_layers t = List.length t.layers

let l1_entries t =
  List.fold_left (fun acc y -> acc + Array.length y.y_entries) 0 t.layers

(* ------------------------------------------------------------------ *)
(* Ingest: replay through the DC's record semantics                    *)

let state_of t tk =
  match Hashtbl.find_opt t.cur tk with Some s -> s | None -> None

(* Mirror of the DC's mutation semantics (Dc.do_insert / do_update /
   do_delete / commit_version / abort_version), minus the pages: the
   materialized states must match what the primary's records hold, or
   bootstrap-installed replicas would fail the parity audit.  Returns
   the (key, new state) pairs the operation changed — failed or no-op
   operations change nothing and produce no entry. *)
let mutate t ~lsn op =
  let versioned table = t.versioned table in
  let one table key st = [ ((table, key), st) ] in
  match op with
  | Op.Read _ | Op.Scan _ | Op.Probe _ -> []
  | Op.Insert { table; key; value } -> (
    let prior = state_of t (table, key) in
    match prior with
    | Some r when Stored_record.current r <> None -> [] (* duplicate key *)
    | _ ->
      let record =
        if versioned table then
          let before =
            match prior with
            | Some r -> r.Stored_record.before (* insert over a tombstone *)
            | None -> Stored_record.Null_before
          in
          { Stored_record.value; deleted = false; before; writer = t.writer;
            wlsn = lsn }
        else Stored_record.plain ~writer:t.writer ~wlsn:lsn value
      in
      one table key (Some record))
  | Op.Update { table; key; value } -> (
    match state_of t (table, key) with
    | Some r when Stored_record.current r <> None ->
      let record =
        if versioned table then
          let before =
            match r.Stored_record.before with
            | Stored_record.Absent -> Stored_record.Value_before r.value
            | kept -> kept
          in
          { Stored_record.value; deleted = false; before; writer = t.writer;
            wlsn = lsn }
        else Stored_record.plain ~writer:t.writer ~wlsn:lsn value
      in
      one table key (Some record)
    | _ -> [] (* no such key *))
  | Op.Delete { table; key } -> (
    match state_of t (table, key) with
    | Some r when Stored_record.current r <> None ->
      if versioned table then
        let before =
          match r.Stored_record.before with
          | Stored_record.Absent -> Stored_record.Value_before r.value
          | kept -> kept
        in
        one table key
          (Some
             { Stored_record.value = r.value; deleted = true; before;
               writer = t.writer; wlsn = lsn })
      else one table key None
    | _ -> [] (* deleting an absent record is a no-op *))
  | Op.Commit_versions { table; keys } ->
    List.filter_map
      (fun key ->
        match state_of t (table, key) with
        | None -> None
        | Some r ->
          if r.Stored_record.deleted then Some ((table, key), None)
          else if r.before <> Stored_record.Absent then
            Some
              ( (table, key),
                Some { r with before = Stored_record.Absent; wlsn = lsn } )
          else None)
      keys
  | Op.Abort_versions { table; keys } ->
    List.filter_map
      (fun key ->
        match state_of t (table, key) with
        | None -> None
        | Some r -> (
          match r.Stored_record.before with
          | Stored_record.Absent -> None
          | Stored_record.Null_before -> Some ((table, key), None)
          | Stored_record.Value_before v ->
            Some
              ( (table, key),
                Some
                  {
                    Stored_record.value = v;
                    deleted = false;
                    before = Stored_record.Absent;
                    writer = r.writer;
                    wlsn = lsn;
                  } )))
      keys

let seal t =
  if t.active.u_count > 0 then begin
    t.sealed <- t.active :: t.sealed;
    t.active <- fresh_run ()
  end

let entry_compare a b =
  match compare a.e_tk b.e_tk with
  | 0 -> Lsn.compare a.e_lsn b.e_lsn
  | c -> c

let compact ?(all = false) t =
  if all then seal t;
  if t.sealed <> [] then begin
    let t0 = Metrics.start t.counters in
    let runs = List.rev t.sealed (* oldest first *) in
    let hi =
      List.fold_left
        (fun acc u ->
          match u.u_entries with
          | e :: _ -> Lsn.max acc e.e_lsn (* newest entry of the run *)
          | [] -> acc)
        t.durable runs
    in
    let merged =
      Array.of_list (List.concat_map (fun u -> List.rev u.u_entries) runs)
    in
    Array.sort entry_compare merged;
    (* A crash at this instant loses the merge wholesale: nothing is
       installed yet, the sealed runs are untouched, and [durable] has
       not moved — compaction is atomic or absent. *)
    Fault.hit p_compact_mid;
    (* Deduplicate identical (key, lsn) pairs, keeping the last. *)
    let deduped =
      let out = ref [] in
      Array.iteri
        (fun i e ->
          let last_of_pair =
            i + 1 >= Array.length merged
            || entry_compare e merged.(i + 1) <> 0
          in
          if last_of_pair then out := e :: !out)
        merged;
      Array.of_list (List.rev !out)
    in
    let layer = { y_lo = Lsn.next t.durable; y_hi = hi; y_entries = deduped } in
    t.layers <- layer :: t.layers;
    t.sealed <- [];
    t.durable <- hi;
    Instrument.bump t.counters "layer.compactions";
    Instrument.bump t.counters "layer.l1_layers";
    Metrics.stop t.counters "layer.compact_ns" t0;
    if Trace.enabled () then
      Trace.record ~tid:0 ~comp:"layer" ~ev:"compact"
        [
          ("runs", string_of_int (List.length runs));
          ("entries", string_of_int (Array.length deduped));
          ("durable", Lsn.to_string t.durable);
        ]
  end

let push_entry t e =
  t.active.u_entries <- e :: t.active.u_entries;
  t.active.u_count <- t.active.u_count + 1;
  if t.active.u_count >= t.l0_seal_ops then seal t

let absorb t ~upto feed =
  let hole = ref false in
  feed (fun lsn op ->
      if (not !hole) && Lsn.(t.ingested < lsn) && Lsn.(lsn <= upto) then begin
        match Fault.hit p_ingest_drop with
        | () ->
          List.iter
            (fun (tk, st) ->
              Hashtbl.replace t.cur tk st;
              push_entry t { e_tk = tk; e_lsn = lsn; e_rec = st; e_op = op })
            (mutate t ~lsn op);
          Instrument.bump t.counters "layer.ingest_ops";
          t.ingested <- lsn
        | exception (Fault.Injected_crash _ | Fault.Io_error _) ->
          (* Transient drop: the cursor stays at the intact prefix and
             the rest of this feed is ignored (applying past a hole
             would corrupt the replay order); the next absorb re-reads
             the suffix from the log. *)
          Instrument.bump t.counters "layer.ingest_dropped";
          hole := true
      end);
  if (not !hole) && Lsn.(t.ingested < upto) then t.ingested <- upto;
  if List.length t.sealed >= t.compact_runs then compact t

(* ------------------------------------------------------------------ *)
(* Read path                                                           *)

let visible = function
  | None -> None
  | Some r -> Stored_record.current r

(* Greatest entry for [tk] with lsn <= [at]: binary search for the
   upper bound of (tk, at) in the (key, lsn)-sorted array. *)
let find_in_layer y tk at =
  let a = y.y_entries in
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let e = a.(mid) in
    let c = compare e.e_tk tk in
    if c < 0 || (c = 0 && Lsn.(e.e_lsn <= at)) then lo := mid + 1 else hi := mid
  done;
  if !lo > 0 && a.(!lo - 1).e_tk = tk then Some a.(!lo - 1) else None

let find_in_run u tk at =
  (* newest first, so the first match is the greatest lsn <= at *)
  List.find_opt (fun e -> e.e_tk = tk && Lsn.(e.e_lsn <= at)) u.u_entries

(* Newest entry for (table, key) at or below [at], shared by
   {!reconstruct} and {!lookup}.  Both raise the typed range errors:
   above the ingest watermark the store has not absorbed the history
   yet; below {!history_from} it deliberately dropped it. *)
let find_entry t ~table ~key ~at =
  if Lsn.(t.ingested < at) then
    raise (Beyond_ingested { wanted = at; ingested = t.ingested });
  if Lsn.(at < t.history_from) then
    raise (History_truncated { wanted = at; history_from = t.history_from });
  let tk = (table, key) in
  let probes = ref 0 in
  let probe_run u = incr probes; find_in_run u tk at in
  let rec l0 = function
    | [] -> None
    | u :: rest -> ( match probe_run u with Some e -> Some e | None -> l0 rest)
  in
  let rec l1 = function
    | [] -> None
    | y :: rest ->
      if Lsn.(at < y.y_lo) then l1 rest (* whole layer above the read point *)
      else begin
        incr probes;
        match find_in_layer y tk at with
        | Some e -> Some e
        | None -> l1 rest
      end
  in
  let entry =
    match l0 (t.active :: t.sealed) with Some e -> Some e | None -> l1 t.layers
  in
  Instrument.bump t.counters "layer.reconstruct_reads";
  Metrics.observe t.counters "layer.read_amp" !probes;
  entry

let reconstruct t ~table ~key ~at =
  match find_entry t ~table ~key ~at with
  | None -> None
  | Some e -> visible e.e_rec

let lookup t ~table ~key ~at =
  match find_entry t ~table ~key ~at with
  | None -> `Unwritten
  | Some e -> (
    match visible e.e_rec with Some v -> `Visible v | None -> `Gone)

let iter_current t f =
  Hashtbl.iter
    (fun (table, key) st ->
      match st with Some r -> f ~table ~key r | None -> ())
    t.cur

(* Fork-point iteration: [cur] holds the full key universe (a key once
   written stays, with an explicit None when currently absent), so
   reconstructing each member at [at] visits exactly the records visible
   there — the branch scan-materialization set. *)
let iter_at t ~at f =
  if Lsn.(t.ingested < at) then
    raise (Beyond_ingested { wanted = at; ingested = t.ingested });
  if Lsn.(at < t.history_from) then
    raise (History_truncated { wanted = at; history_from = t.history_from });
  Hashtbl.iter
    (fun (table, key) _ ->
      match reconstruct t ~table ~key ~at with
      | Some value -> f ~table ~key value
      | None -> ())
    t.cur

(* ------------------------------------------------------------------ *)
(* Retention pins + history truncation                                 *)

let pin t ~at =
  if Lsn.(t.ingested < at) then
    raise (Beyond_ingested { wanted = at; ingested = t.ingested });
  if Lsn.(at < t.history_from) then
    raise (History_truncated { wanted = at; history_from = t.history_from });
  (match Hashtbl.find_opt t.pins at with
  | Some r -> incr r
  | None -> Hashtbl.add t.pins at (ref 1));
  Instrument.bump t.counters "layer.pins"

let unpin t ~at =
  match Hashtbl.find_opt t.pins at with
  | Some r ->
    decr r;
    if !r <= 0 then Hashtbl.remove t.pins at;
    Instrument.bump t.counters "layer.unpins"
  | None ->
    invalid_arg
      (Printf.sprintf "Layer.unpin: no pin at %s" (Lsn.to_string at))

let pin_floor t =
  Hashtbl.fold
    (fun at _ acc ->
      match acc with None -> Some at | Some a -> Some (Lsn.min a at))
    t.pins None

let pin_count t = Hashtbl.fold (fun _ r acc -> acc + !r) t.pins 0

(* Rebase the store at [below]: every L1 layer wholly below the cut is
   folded into one snapshot layer holding each key's newest dropped
   entry (present or explicitly absent — the key universe and the
   written-then-deleted distinction both survive), and reads below the
   cut raise {!History_truncated} from then on.  The cut never passes
   the lowest retention pin (a live branch's fork point) nor the
   volatile L0 region, so everything a pinned reader can ask for stays
   answerable.  Returns the number of entries reclaimed. *)
let truncate_history t ~below =
  let cut =
    let c = match pin_floor t with Some p -> Lsn.min below p | None -> below in
    Lsn.min c (Lsn.next t.durable)
  in
  if Lsn.(cut <= t.history_from) then 0
  else begin
    let dropped, kept = List.partition (fun y -> Lsn.(y.y_hi < cut)) t.layers in
    let reclaimed =
      match dropped with
      | [] -> 0
      | _ ->
        let newest : (string * string, entry) Hashtbl.t = Hashtbl.create 64 in
        (* dropped is newest-first; walk oldest-first so later entries
           overwrite earlier ones *)
        List.iter
          (fun y ->
            Array.iter (fun e -> Hashtbl.replace newest e.e_tk e) y.y_entries)
          (List.rev dropped);
        let entries =
          Hashtbl.fold (fun _ e acc -> e :: acc) newest []
          |> List.sort entry_compare |> Array.of_list
        in
        let y_lo =
          List.fold_left
            (fun acc y -> Lsn.min acc y.y_lo)
            (List.hd dropped).y_lo dropped
        and y_hi =
          List.fold_left
            (fun acc y -> Lsn.max acc y.y_hi)
            (List.hd dropped).y_hi dropped
        in
        let before =
          List.fold_left (fun acc y -> acc + Array.length y.y_entries) 0 dropped
        in
        t.layers <- kept @ [ { y_lo; y_hi; y_entries = entries } ];
        before - Array.length entries
    in
    t.history_from <- cut;
    Instrument.bump t.counters "layer.history_truncations";
    Instrument.bump_by t.counters "layer.history_entries_reclaimed" reclaimed;
    if Trace.enabled () then
      Trace.record ~tid:0 ~comp:"layer" ~ev:"truncate_history"
        [
          ("cut", Lsn.to_string cut);
          ("reclaimed", string_of_int reclaimed);
        ];
    reclaimed
  end

let iter_ops t ~from ~upto f =
  if Lsn.(t.ingested < upto) then
    raise (Beyond_ingested { wanted = upto; ingested = t.ingested });
  if Lsn.(from < t.history_from) then
    raise (History_truncated { wanted = from; history_from = t.history_from });
  let collect acc e =
    if Lsn.(from <= e.e_lsn) && Lsn.(e.e_lsn <= upto) then e :: acc else acc
  in
  let acc =
    List.fold_left
      (fun acc y -> Array.fold_left collect acc y.y_entries)
      [] t.layers
  in
  let acc =
    List.fold_left
      (fun acc u -> List.fold_left collect acc u.u_entries)
      acc (t.active :: t.sealed)
  in
  let sorted =
    List.sort (fun a b -> Lsn.compare a.e_lsn b.e_lsn) acc
  in
  (* one emit per LSN: a multi-key operation produced one entry per key *)
  let last = ref Lsn.zero in
  List.iter
    (fun e ->
      if not (Lsn.equal e.e_lsn !last) then begin
        last := e.e_lsn;
        f e.e_lsn e.e_op
      end)
    sorted

(* ------------------------------------------------------------------ *)
(* Crash                                                               *)

let crash t =
  t.active <- fresh_run ();
  t.sealed <- [];
  Hashtbl.reset t.cur;
  (* Rebuild the materialized state at [durable] from L1 alone: layers
     newest first, and within a layer the reverse (key, lsn) order, so
     the first sighting of a key is its newest durable entry. *)
  List.iter
    (fun y ->
      for i = Array.length y.y_entries - 1 downto 0 do
        let e = y.y_entries.(i) in
        if not (Hashtbl.mem t.cur e.e_tk) then Hashtbl.replace t.cur e.e_tk e.e_rec
      done)
    t.layers;
  t.ingested <- t.durable;
  Instrument.bump t.counters "layer.crashes"
