(** Log-shipping replication: warm standbys per partition.

    Each partition's primary DC gains K warm standbys fed by continuous
    redo shipping over the transport's third ([Repl]) channel.  Only
    {e stable} log records ship — a volatile record can still be
    disowned by a TC crash, and a standby must never hold effects the
    TC's log cannot account for.  Shipped batches travel under the same
    epoch/seq contract sessions as control traffic
    ({!Untx_msg.Session}); the standby applies them through the DC's
    normal abstract-LSN idempotence path, so resent batches, duplicated
    frames and post-promotion redo overlap are all safe.

    On a primary crash the deployment promotes the most-caught-up
    standby and asks the TC ({!Untx_tc.Tc.on_dc_failover}) to re-drive
    only the gap between the standby's applied LSN and end-of-stable-log
    — a small fraction of a cold restart's full redo. *)

type durability =
  | Primary_only
      (** Commit acknowledgement waits only for the TC's own log force;
          standbys catch up asynchronously. *)
  | Quorum of int
      (** [Quorum k]: commit acknowledgement additionally waits until at
          least [k] standbys of every replicated primary (clamped to how
          many it has) have acknowledged applying the commit's LSN. *)

val pp_durability : Format.formatter -> durability -> unit

val p_ship_batch : string
(** The ["repl.ship.batch"] fault point, hit once per shipped batch
    before it is posted — the chaos harness kills the primary here to
    exercise promotion at every batch boundary. *)

(** A warm standby: a full DC continuously applying the shipped redo
    stream. *)
module Standby : sig
  type t

  val create :
    ?counters:Untx_util.Instrument.t -> Untx_dc.Dc.config -> part:int -> t
  (** A standby for a primary whose partition id is [part] (shipped
      requests are stamped with it, and the DC rejects misrouted
      frames like any other). *)

  val dc : t -> Untx_dc.Dc.t
  (** The underlying DC — what promotion installs as the new primary. *)

  val applied : t -> tc:Untx_util.Tc_id.t -> Untx_util.Lsn.t
  (** Cumulative applied LSN for [tc]'s stream: every stable record at
      or below it has been applied (or was never shipped: reads, other
      partitions' records).  Promotion picks the standby maximizing
      this, and redo after promotion starts just past it. *)

  val handle_repl_frame : t -> string -> string option
  (** Decode one repl frame, run it through the session contract, apply
      in-turn ships, and return the encoded [Repl_ack] if one is owed.
      Wired as the transport's repl handler. *)

  val crash : t -> unit
  (** Lose all volatile state — DC cache, session state, applied
      cursors.  After {!recover}, re-shipping from zero is absorbed by
      the idempotence path. *)

  val recover : t -> unit
end

(** The TC-side shipping engine: one per TC, managing every replica of
    every primary that TC fronts. *)
module Manager : sig
  type t

  type config = {
    durability : durability;
    batch_ops : int;  (** max records per shipped frame *)
    resend_after : int;
    resend_backoff_max : int;
    resend_max_retries : int;
    max_pump_rounds : int;
  }

  val default_config : config
  (** [Primary_only], 32-op batches, resend pacing mirroring the TC's
      control channel. *)

  val create :
    ?counters:Untx_util.Instrument.t -> ?cfg:config -> Untx_tc.Tc.t -> t
  (** Create the manager and install its hooks on the TC: the
      durability gate (ship + optional quorum wait after every
      group-commit force) and the truncate floor (checkpoint log
      truncation never passes the slowest replica's catch-up cursor). *)

  val durability : t -> durability

  val attach :
    t ->
    name:string ->
    primary:string ->
    standby:Standby.t ->
    send:(string -> unit) ->
    drain:(unit -> string list) ->
    unit
  (** Register a standby for [primary] and open its session with a
      hello; the ack carries the standby's exact applied LSN, from
      which shipping resumes — a rejoining standby catches up from
      where it left off instead of rebuilding. *)

  val detach : t -> name:string -> unit
  (** Stop shipping without forgetting the replica: its applied LSN
      keeps holding the truncation floor so {!reattach} stays cheap. *)

  val reattach : t -> name:string -> unit
  (** Resume shipping on a new session epoch (any old in-flight frame
      is void), re-adopting the standby's applied LSN, then ship the
      missed suffix. *)

  val remove : t -> name:string -> unit
  (** Forget a replica entirely (promoted or decommissioned). *)

  val ship : t -> unit
  (** Ship the stable suffix past every attached replica's cursor. *)

  val pump : t -> bool
  (** One delivery round: drain every replica link, match acks,
      advance confirmed floors.  [true] if any ack landed. *)

  val settle : t -> unit
  (** Ship everything stable and pump (with backoff resend) until every
      attached replica confirms the current end-of-stable-log —
      replication parity for quiesce and audits. *)

  val replica_names : t -> primary:string -> string list

  val standby_of : t -> name:string -> Standby.t

  val applied_of : t -> name:string -> Untx_util.Lsn.t
  (** The confirmed (acked) applied floor — may trail the standby's
      exact {!Standby.applied} if acks are in flight. *)

  val lag : t -> name:string -> int
  (** End-of-stable-log minus the replica's confirmed applied LSN. *)

  val last_ship_primary : t -> string option
  (** The primary whose stream was last being shipped — a chaos harness
      reads this to learn which primary a kill at {!p_ship_batch}
      belongs to. *)
end
