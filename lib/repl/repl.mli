(** Log-shipping replication: warm standbys per partition.

    Each partition's primary DC gains K warm standbys fed by continuous
    redo shipping over the transport's third ([Repl]) channel.  Only
    {e stable} log records ship — a volatile record can still be
    disowned by a TC crash, and a standby must never hold effects the
    TC's log cannot account for.  Shipped batches travel under the same
    epoch/seq contract sessions as control traffic
    ({!Untx_msg.Session}); the standby applies them through the DC's
    normal abstract-LSN idempotence path, so resent batches, duplicated
    frames and post-promotion redo overlap are all safe.

    On a primary crash the deployment promotes the most-caught-up
    {e eligible} standby and asks the TC ({!Untx_tc.Tc.on_dc_failover})
    to re-drive only the gap between the standby's applied LSN and
    end-of-stable-log — a small fraction of a cold restart's full redo.
    Eligibility is the promotion durability contract: a candidate may
    only be promoted when its acked history is provably reconstructible
    from the retained stable log.  Detached replicas keep that provable
    under a bounded {e retention lease} on the log suffix past their
    frozen cursor; when the lease expires they are demoted to
    rebuild-required — honestly unavailable — rather than left silently
    promotable with a hole where acked commits used to be. *)

type durability =
  | Primary_only
      (** Commit acknowledgement waits only for the TC's own log force;
          standbys catch up asynchronously. *)
  | Quorum of int
      (** [Quorum k]: commit acknowledgement additionally waits until at
          least [k] standbys of every replicated primary (clamped to how
          many it has) have acknowledged applying the commit's LSN. *)

val pp_durability : Format.formatter -> durability -> unit

val p_ship_batch : string
(** The ["repl.ship.batch"] fault point, hit once per shipped batch
    before it is posted — the chaos harness kills the primary here to
    exercise promotion at every batch boundary. *)

val p_lease_expire : string
(** The ["repl.lease.expire"] fault point, hit inside the
    truncation-floor consult once per detached replica per granted
    checkpoint.  A plan arming it force-expires that replica's
    retention lease on the spot — the demotion-and-refusal path without
    waiting out the lease budget. *)

(** A warm standby: a full DC continuously applying the shipped redo
    stream. *)
module Standby : sig
  type t

  val create :
    ?counters:Untx_util.Instrument.t -> Untx_dc.Dc.config -> part:int -> t
  (** A standby for a primary whose partition id is [part] (shipped
      requests are stamped with it, and the DC rejects misrouted
      frames like any other). *)

  val dc : t -> Untx_dc.Dc.t
  (** The underlying DC — what promotion installs as the new primary. *)

  val applied : t -> tc:Untx_util.Tc_id.t -> Untx_util.Lsn.t
  (** Cumulative applied LSN for [tc]'s stream: every stable record at
      or below it has been applied (or was never shipped: reads, other
      partitions' records).  Promotion picks the standby maximizing
      this, and redo after promotion starts just past it. *)

  val handle_repl_frame :
    ?expect:Untx_util.Tc_id.t -> t -> string -> string option
  (** Decode one repl frame, run it through the session contract, apply
      in-turn ships, and return the encoded [Repl_ack] if one is owed.
      Wired as the transport's repl handler.

      [expect] is the link's shipping TC: a ship stamped with another
      TC's id is dropped (counted as ["repl.misattributed"]) instead of
      advancing a cursor its manager never sent for. *)

  val crash : t -> unit
  (** Lose all volatile state — DC cache, session state, applied
      cursors.  After {!recover}, re-shipping from zero is absorbed by
      the idempotence path. *)

  val recover : t -> unit

  val adopt : t -> tc:Untx_util.Tc_id.t -> upto:Untx_util.Lsn.t -> unit
  (** Bootstrap adoption: the standby's DC was just populated with a
      layer store's materialized state at [upto] (outside the wire
      path).  Claim the whole installed prefix — watermarks at [upto]
      and the applied cursor set so the next hello resumes shipping at
      the suffix.  Only correct right after such an install. *)
end

(** The TC-side shipping engine: one per TC, managing every replica of
    every primary that TC fronts. *)
module Manager : sig
  type t

  (** Where a replica stands in the retention-lease life cycle:

      [Attached] —[detach]→ [Detached]{lease} —lease runs out→
      [Rebuild_required] (terminal). *)
  type replica_state =
    | Attached  (** shipping; holds the truncation floor unconditionally *)
    | Detached of { lease : int }
        (** frozen at its cursor; holds the floor for [lease] more
            granted checkpoints *)
    | Rebuild_required
        (** its missed suffix is no longer provably retained: ineligible
            for promotion, refuses {!reattach}.  Terminal — recovering
            such a replica needs a state copy, not the log. *)

  type config = {
    durability : durability;
    batch_ops : int;  (** max records per shipped frame *)
    resend_after : int;
    resend_backoff_max : int;
    resend_max_retries : int;
    max_pump_rounds : int;
    lease_checkpoints : int;
        (** how many granted checkpoints a detached replica's retention
            lease holds the log-truncation floor for *)
  }

  val default_config : config
  (** [Primary_only], 32-op batches, resend pacing mirroring the TC's
      control channel, 4-checkpoint retention leases. *)

  val create :
    ?counters:Untx_util.Instrument.t -> ?cfg:config -> Untx_tc.Tc.t -> t
  (** Create the manager and install its hooks on the TC: the
      durability gate (ship + optional quorum wait after every
      group-commit force) and the truncate floor (checkpoint log
      truncation never passes the catch-up cursor of any attached
      replica, nor of any detached replica whose lease still holds). *)

  val durability : t -> durability

  val enable_layers : ?l0_seal_ops:int -> ?compact_runs:int -> t -> unit
  (** Switch this manager's TC onto an {!Untx_layer} store: the stable
      redo stream is absorbed into L0 at every durability-gate force and
      floor consult, checkpoint truncation is re-floored at the store's
      durable high watermark (a detached laggard stops pinning the log
      once layer coverage meets the retained head — its lease machinery
      goes dormant), and the TC's history-replay hook is installed so
      failover can redo below the retained head from layers.  Idempotent
      after the first call.  Enabling on an already-truncated log only
      covers history from the current retained head. *)

  val layer_store : t -> Untx_layer.Layer.t option

  val sync_layers : t -> unit
  (** Absorb the stable suffix the store has not ingested yet (no-op
      without {!enable_layers}).  Runs implicitly at every
      durability-gate force, floor consult and {!settle}; explicit for
      callers about to read the store at end-of-stable-log. *)

  val compact_layers : t -> unit
  (** Sync the store to end-of-stable-log and fold everything absorbed
      into L1 ([compact ~all]), advancing the durable watermark — the
      explicit handle tests and benches use instead of waiting out the
      auto-compaction thresholds.  No-op without {!enable_layers}. *)

  val bootstrap_standby : t -> standby:Standby.t -> primary:string -> int
  (** Layer-fed standby creation: install the store's materialized
      current state (this TC's records routed to [primary]) directly
      into the standby's DC ({!Untx_dc.Dc.install_record}), then
      {!Standby.adopt} the store's ingest watermark.  A subsequent
      {!attach} resumes shipping at the post-layer suffix, so a fresh
      replica costs the live state size instead of a full-redo replay
      from LSN 1 — and a {!Rebuild_required} replica becomes recoverable
      by rebuilding through this path.  Returns the number of records
      installed.  Raises [Invalid_argument] without {!enable_layers}. *)

  val attach :
    t ->
    name:string ->
    primary:string ->
    standby:Standby.t ->
    send:(string -> unit) ->
    drain:(unit -> string list) ->
    unit
  (** Register a standby for [primary] and open its session with a
      hello; the ack carries the standby's exact applied LSN, from
      which shipping resumes — a rejoining standby catches up from
      where it left off instead of rebuilding. *)

  val detach : t -> name:string -> unit
  (** Stop shipping without forgetting the replica: its applied LSN
      keeps holding the truncation floor — under a retention lease of
      [lease_checkpoints] granted checkpoints — so {!reattach} stays
      cheap while the lease lasts.  Each checkpoint that consults the
      floor burns one lease unit; at zero the replica is demoted to
      {!Rebuild_required} and stops constraining truncation.
      Idempotent: detaching an already-detached replica does not
      refresh its lease. *)

  val reattach : t -> name:string -> unit
  (** Resume shipping on a new session epoch (any old in-flight frame
      is void), re-adopting the standby's applied LSN, then ship the
      missed suffix — provided the log still retains it.  If the
      standby's cursor (zero, for one that crashed while away) fell
      below {!Untx_tc.Tc.log_retained_from}, the replica is demoted to
      {!Rebuild_required} instead of resuming with a silent hole — or,
      when a contiguous layer store covers the missing middle, parked
      [Detached] again (counted ["repl.reattach_deferred"]): shipping
      cannot resume mid-stream, but promotion through layer-sourced
      redo or a layer bootstrap still can recover it.  Raises
      [Invalid_argument] for an unknown or already rebuild-required
      replica. *)

  val catch_up : t -> name:string -> unit
  (** Re-ship the retained stable suffix past the replica's cursor and
      wait until it confirms end-of-stable-log (reattaching it first if
      detached).  Promotion runs this on the chosen laggard before
      installing it, so the TC's post-promotion redo shrinks to the
      post-catch-up gap.  Shipped records are counted as
      ["repl.catchup_ops"].  When the replica's cursor fell below the
      retained head and only layers cover the gap, no shipping happens
      (["repl.catchup_skipped"]) — an out-of-order re-ship would corrupt
      the stream; promotion re-drives the whole gap through
      layer-sourced redo instead.  Raises [Invalid_argument] for an
      unknown or rebuild-required replica. *)

  val promotion_eligible : t -> name:string -> bool
  (** The fail-over gate's per-manager half: [true] iff the candidate's
      acked history is provably reconstructible — it is not
      {!Rebuild_required} and either this TC's stable log retains
      everything past its exact applied cursor, or a contiguous layer
      store covers the gap below the retained head (layer-sourced redo);
      {!catch_up} or post-promotion redo can then re-drive the gap in
      full.  [false] for unknown names. *)

  val state_of : t -> name:string -> replica_state

  val remove : t -> name:string -> unit
  (** Forget a replica entirely (promoted or decommissioned). *)

  val ship : t -> unit
  (** Ship the stable suffix past every attached replica's cursor. *)

  val pump : t -> bool
  (** One delivery round: drain every replica link, match acks,
      advance confirmed floors.  [true] if any ack landed. *)

  val settle : t -> unit
  (** Ship everything stable and pump (with backoff resend) until every
      attached replica confirms the current end-of-stable-log —
      replication parity for quiesce and audits. *)

  val replica_names : t -> primary:string -> string list

  val standby_of : t -> name:string -> Standby.t

  val applied_of : t -> name:string -> Untx_util.Lsn.t
  (** The confirmed (acked) applied floor — may trail the standby's
      exact {!Standby.applied} if acks are in flight. *)

  val lag : t -> name:string -> int
  (** End-of-stable-log minus the replica's confirmed applied LSN. *)

  val last_ship_primary : t -> string option
  (** The primary whose stream was last being shipped — a chaos harness
      reads this to learn which primary a kill at {!p_ship_batch}
      belongs to. *)
end
