module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Instrument = Untx_util.Instrument
module Metrics = Untx_obs.Metrics
module Trace = Untx_obs.Trace
module Fault = Untx_fault.Fault
module Wire = Untx_msg.Wire
module Session = Untx_msg.Session
module Dc = Untx_dc.Dc
module Tc = Untx_tc.Tc

(* Log-shipping replication: each partition's primary DC gains K warm
   standbys fed continuously from the TC's *stable* log over the repl
   channel.  A volatile record can still be disowned by a TC crash, so
   only stable records ship — a standby must never hold effects the
   TC's log cannot account for.

   The shipping contract is the same epoch/seq session machinery the
   control channel uses ({!Session}); the standby applies the stream
   through the DC's normal abstract-LSN idempotence path, which is what
   makes resent batches, duplicated frames and post-promotion redo
   overlap all safe to deliver. *)

type durability = Primary_only | Quorum of int

let pp_durability ppf = function
  | Primary_only -> Format.pp_print_string ppf "primary-only"
  | Quorum k -> Format.fprintf ppf "quorum-%d" k

(* A kill at a shipped-batch boundary is the interesting crash instant:
   the standby holds a strict prefix of the stream and promotion must
   re-drive exactly the rest. *)
let p_ship_batch = Fault.declare "repl.ship.batch"

module Standby = struct
  type t = {
    dc : Dc.t;
    counters : Instrument.t;
    sessions : (int, (Wire.repl, Wire.repl_reply) Session.Receiver.t) Hashtbl.t;
    applied : (int, Lsn.t) Hashtbl.t; (* per-TC cumulative applied LSN *)
  }

  let create ?(counters = Instrument.global) config ~part =
    let dc = Dc.create ~counters config in
    Dc.set_identity dc ~part;
    { dc; counters; sessions = Hashtbl.create 4; applied = Hashtbl.create 4 }

  let dc t = t.dc

  let applied t ~tc =
    Option.value ~default:Lsn.zero
      (Hashtbl.find_opt t.applied (Tc_id.to_int tc))

  let session t tc =
    let key = Tc_id.to_int tc in
    match Hashtbl.find_opt t.sessions key with
    | Some s -> s
    | None ->
      let s = Session.Receiver.create () in
      Hashtbl.add t.sessions key s;
      s

  (* Apply one shipped batch.  Watermarks travel in-band so the
     standby's cache obeys the same flush-causality rules as the
     primary's — but the low-water claim is capped at the standby's own
     applied cursor first: the primary may have acknowledged operations
     this standby has not applied yet, and an uncapped claim would let
     abstract-LSN compaction mark them included, silently absorbing the
     rest of the stream as duplicates.  This is the redo cursor-cap rule
     of the restart path, carried over verbatim to the shipping path. *)
  let apply_ship t ~tc ~eosl ~lwm ~upto ~ops =
    let cursor = applied t ~tc in
    let lwm = Lsn.min lwm cursor in
    ignore (Dc.control t.dc (Wire.Watermarks { tc; eosl; lwm }));
    List.iter
      (fun (lsn, op) ->
        let reply = Dc.perform t.dc { Wire.tc; lsn; part = Dc.part t.dc; op } in
        (match reply.Wire.result with
        | Wire.Failed msg ->
          failwith (Printf.sprintf "Repl.Standby: shipped op rejected: %s" msg)
        | _ -> ());
        Instrument.bump t.counters "repl.standby_ops")
      ops;
    if Lsn.(cursor < upto) then
      Hashtbl.replace t.applied (Tc_id.to_int tc) upto;
    Instrument.bump t.counters "repl.standby_batches"

  let handle_repl_frame t frame =
    match Wire.decode_repl frame with
    | exception Invalid_argument _ ->
      Instrument.bump t.counters "repl.bad_frames";
      None
    | m ->
      let tc = Wire.repl_tc m.Wire.p_repl in
      let s = session t tc in
      let ack () = Wire.Repl_ack { applied = applied t ~tc } in
      let apply _seq = function
        | Wire.Repl_hello _ -> ack ()
        | Wire.Repl_ship { tc; eosl; lwm; upto; ops } ->
          apply_ship t ~tc ~eosl ~lwm ~upto ~ops;
          ack ()
      in
      let reply seq r =
        Some
          (Wire.encode_repl_reply
             { Wire.q_epoch = Session.Receiver.epoch s; q_seq = seq; q_reply = r })
      in
      (match
         Session.Receiver.handle s ~epoch:m.Wire.p_epoch ~seq:m.Wire.p_seq
           m.Wire.p_repl ~apply ~fallback:(ack ())
       with
      | Session.Receiver.Stale ->
        Instrument.bump t.counters "repl.stale_epoch";
        None
      | Session.Receiver.Replayed r ->
        Instrument.bump t.counters "repl.dups_absorbed";
        reply m.Wire.p_seq r
      | Session.Receiver.Buffered ->
        Instrument.bump t.counters "repl.buffered";
        None
      | Session.Receiver.Applied r -> reply m.Wire.p_seq r)

  (* A standby crash loses the volatile applied cursors and session
     state along with the DC's cache; the rebuilt replica re-adopts the
     stream from zero and the abstract-LSN idempotence path absorbs
     everything its stable pages already contain. *)
  let crash t =
    Dc.crash t.dc;
    Hashtbl.reset t.sessions;
    Hashtbl.reset t.applied

  let recover t = Dc.recover t.dc
end

module Manager = struct
  type replica = {
    r_name : string; (* the standby's deployment name *)
    r_primary : string; (* the primary DC it shadows *)
    r_standby : Standby.t;
    r_session : Wire.repl_reply Session.Sender.t;
    r_send : string -> unit;
    r_drain : unit -> string list;
    mutable r_applied : Lsn.t; (* confirmed floor, from acks *)
    mutable r_cursor : Lsn.t; (* next LSN to ship (optimistic) *)
    mutable r_attached : bool;
  }

  type config = {
    durability : durability;
    batch_ops : int; (* max records per Repl_ship frame *)
    resend_after : int;
    resend_backoff_max : int;
    resend_max_retries : int;
    max_pump_rounds : int;
  }

  let default_config =
    {
      durability = Primary_only;
      batch_ops = 32;
      resend_after = 4;
      resend_backoff_max = 64;
      resend_max_retries = 32;
      max_pump_rounds = 100_000;
    }

  type t = {
    cfg : config;
    tc : Tc.t;
    counters : Instrument.t;
    replicas : (string, replica) Hashtbl.t; (* keyed by standby name *)
    mutable last_ship : string option;
        (* the primary whose stream was last being shipped — the chaos
           harness reads this to know which primary a kill at the
           ["repl.ship.batch"] point belongs to *)
  }

  (* Replication must never let log truncation pass what the slowest
     replica still needs: catch-up reads the stable log from the
     replica's applied LSN, and a truncated cursor would force a full
     rebuild.  Detached replicas count too — holding the floor for them
     is exactly what makes rejoin cheap. *)
  let truncate_floor t =
    Hashtbl.fold
      (fun _ r acc ->
        let need = Lsn.next r.r_applied in
        match acc with
        | None -> Some need
        | Some a -> Some (Lsn.min a need))
      t.replicas None

  let post t r repl =
    let frame = ref "" in
    let seq =
      Session.Sender.post r.r_session ~backoff:t.cfg.resend_after
        ~encode:(fun ~epoch ~seq ->
          let f =
            Wire.encode_repl { Wire.p_epoch = epoch; p_seq = seq; p_repl = repl }
          in
          frame := f;
          f)
        ~send:r.r_send ()
    in
    Instrument.bump t.counters "repl.ships";
    Instrument.bump_by t.counters "repl.ship_bytes" (String.length !frame);
    if Trace.enabled () then
      Trace.record ~tid:0 ~comp:"repl" ~ev:"ship"
        [
          ("to", r.r_name);
          ("seq", string_of_int seq);
          ("bytes", string_of_int (String.length !frame));
        ];
    seq

  (* Ship the stable suffix past a replica's cursor, in batches of at
     most [batch_ops] records, each batch passing the
     ["repl.ship.batch"] fault point.  Records routed to other
     partitions are skipped but still covered by the batch's [upto], so
     every replica's applied LSN tracks the whole stable log and quorum
     gating needs no per-partition bookkeeping. *)
  let ship_replica t r =
    let stable = Tc.stable_lsn t.tc in
    if r.r_attached && Lsn.(r.r_cursor <= stable) then begin
      let tc_id = Tc.id t.tc in
      let eosl = stable and lwm = stable in
      (* the standby caps the lwm claim at its own applied cursor; see
         [Standby.apply_ship] *)
      let batch = ref [] and batch_n = ref 0 in
      let flush_batch ~upto =
        t.last_ship <- Some r.r_primary;
        Fault.hit p_ship_batch;
        ignore
          (post t r
             (Wire.Repl_ship
                { tc = tc_id; eosl; lwm; upto; ops = List.rev !batch }));
        batch := [];
        batch_n := 0;
        r.r_cursor <- Lsn.next upto
      in
      Tc.iter_stable_ops_from t.tc ~from:r.r_cursor (fun lsn op ->
          if String.equal (Tc.dc_of_op t.tc op) r.r_primary then begin
            batch := (lsn, op) :: !batch;
            incr batch_n;
            if !batch_n >= t.cfg.batch_ops then flush_batch ~upto:lsn
          end);
      (* the final (possibly empty) batch carries the cursor to the end
         of the stable log *)
      if Lsn.(r.r_cursor <= stable) then flush_batch ~upto:stable
    end

  let ship t = Hashtbl.iter (fun _ r -> ship_replica t r) t.replicas

  (* One delivery round per replica link: drain the transport, match
     acks against the session, advance the confirmed floor. *)
  let pump t =
    let progressed = ref false in
    Hashtbl.iter
      (fun _ r ->
        if r.r_attached then begin
          List.iter
            (fun frame ->
              match Wire.decode_repl_reply frame with
              | exception Invalid_argument _ ->
                Instrument.bump t.counters "repl.bad_frames"
              | m ->
                if
                  Session.Sender.ack r.r_session ~epoch:m.Wire.q_epoch
                    ~seq:m.Wire.q_seq m.Wire.q_reply
                then begin
                  progressed := true;
                  Instrument.bump t.counters "repl.acks";
                  let (Wire.Repl_ack { applied }) = m.Wire.q_reply in
                  if Lsn.(r.r_applied < applied) then r.r_applied <- applied;
                  if Trace.enabled () then
                    Trace.record ~tid:0 ~comp:"repl" ~ev:"ack"
                      [ ("from", r.r_name); ("applied", Lsn.to_string applied) ]
                end)
            (r.r_drain ());
          Metrics.observe t.counters "repl.lag_lsn"
            (Lsn.to_int (Tc.stable_lsn t.tc) - Lsn.to_int r.r_applied)
        end)
      t.replicas;
    !progressed

  let tick_resend t =
    Hashtbl.iter
      (fun _ r ->
        if r.r_attached then
          Session.Sender.tick r.r_session ~backoff_max:t.cfg.resend_backoff_max
            ~max_retries:t.cfg.resend_max_retries
            ~on_resend:(fun ~seq:_ frame ->
              Instrument.bump t.counters "repl.resends";
              r.r_send frame)
            ~on_timeout:(fun ~seq ~retries ->
              Instrument.bump t.counters "repl.timeouts";
              failwith
                (Printf.sprintf "Repl: ship %d to %s timed out after %d resends"
                   seq r.r_name retries)))
      t.replicas

  let await t pred =
    let stalls = ref 0 in
    while not (pred ()) do
      if pump t then stalls := 0
      else begin
        incr stalls;
        tick_resend t;
        if !stalls > t.cfg.max_pump_rounds then
          failwith "Repl.await: no progress (lost ship without resend?)"
      end
    done

  (* The durability gate installed on the TC: invoked after every
     group-commit force with the new stable LSN.  Shipping happens here
     under every policy — each commit force pushes the fresh suffix to
     the standbys, which is what keeps them warm; [Quorum k] then also
     blocks the commit acknowledgement until at least [k] replicas of
     every replicated primary (clamped to how many it has) confirm the
     LSN. *)
  let gate t lsn =
    ship t;
    ignore (pump t);
    match t.cfg.durability with
    | Primary_only -> ()
    | Quorum k ->
      let satisfied () =
        let by_primary : (string, int * int) Hashtbl.t = Hashtbl.create 4 in
        Hashtbl.iter
          (fun _ r ->
            if r.r_attached then begin
              let have, ok =
                Option.value ~default:(0, 0)
                  (Hashtbl.find_opt by_primary r.r_primary)
              in
              let ok = if Lsn.(r.r_applied >= lsn) then ok + 1 else ok in
              Hashtbl.replace by_primary r.r_primary (have + 1, ok)
            end)
          t.replicas;
        Hashtbl.fold
          (fun _ (have, ok) acc -> acc && ok >= Stdlib.min k have)
          by_primary true
      in
      await t satisfied

  let create ?(counters = Instrument.global) ?(cfg = default_config) tc =
    let t =
      { cfg; tc; counters; replicas = Hashtbl.create 4; last_ship = None }
    in
    Tc.set_durability_gate tc (fun lsn -> gate t lsn);
    Tc.set_truncate_floor tc (fun () -> truncate_floor t);
    t

  let durability t = t.cfg.durability

  let last_ship_primary t = t.last_ship

  (* Open (or resume) the session with a hello and adopt the standby's
     exact applied LSN as the shipping cursor: zero for a fresh standby,
     wherever it left off for a rejoining one — catch-up without a
     rebuild.  [r_applied] alone would not do: it is only a floor (acks
     may have been lost). *)
  let hello t r =
    let seq =
      Session.Sender.post r.r_session ~awaited:true ~backoff:t.cfg.resend_after
        ~encode:(fun ~epoch ~seq ->
          Wire.encode_repl
            {
              Wire.p_epoch = epoch;
              p_seq = seq;
              p_repl = Wire.Repl_hello { tc = Tc.id t.tc };
            })
        ~send:r.r_send ()
    in
    await t (fun () -> Session.Sender.has_reply r.r_session seq);
    match Session.Sender.take_reply r.r_session seq with
    | Some (Wire.Repl_ack { applied }) ->
      r.r_applied <- applied;
      r.r_cursor <- Lsn.next applied
    | None -> ()

  let attach t ~name ~primary ~standby ~send ~drain =
    let r =
      {
        r_name = name;
        r_primary = primary;
        r_standby = standby;
        r_session = Session.Sender.create ();
        r_send = send;
        r_drain = drain;
        r_applied = Lsn.zero;
        r_cursor = Lsn.next Lsn.zero;
        r_attached = true;
      }
    in
    Hashtbl.replace t.replicas name r;
    hello t r;
    Instrument.bump t.counters "repl.attached"

  (* Stop shipping to a replica without forgetting it: its applied LSN
     keeps holding the truncation floor so a later [reattach] only
     ships the suffix it missed. *)
  let detach t ~name =
    match Hashtbl.find_opt t.replicas name with
    | Some r ->
      r.r_attached <- false;
      ignore (Session.Sender.clear r.r_session)
    | None -> ()

  let reattach t ~name =
    match Hashtbl.find_opt t.replicas name with
    | Some r ->
      (* a new epoch voids any frame of the old session still in flight *)
      ignore (Session.Sender.new_epoch r.r_session);
      r.r_attached <- true;
      hello t r;
      ship_replica t r
    | None -> invalid_arg ("Repl.reattach: unknown replica " ^ name)

  (* Remove a replica from the set entirely (promoted or
     decommissioned): its cursor no longer holds the truncation floor. *)
  let remove t ~name = Hashtbl.remove t.replicas name

  let replicas_of t ~primary =
    Hashtbl.fold
      (fun _ r acc -> if String.equal r.r_primary primary then r :: acc else acc)
      t.replicas []
    |> List.sort (fun a b -> String.compare a.r_name b.r_name)

  let replica_names t ~primary =
    List.map (fun r -> r.r_name) (replicas_of t ~primary)

  let standby_of t ~name =
    match Hashtbl.find_opt t.replicas name with
    | Some r -> r.r_standby
    | None -> invalid_arg ("Repl: unknown replica " ^ name)

  let applied_of t ~name =
    match Hashtbl.find_opt t.replicas name with
    | Some r -> r.r_applied
    | None -> invalid_arg ("Repl: unknown replica " ^ name)

  (* Ship everything stable and pump until every attached replica
     confirms it — replication parity, used by quiesce and the
     deployment auditor before comparing replica state. *)
  let settle t =
    ship t;
    let stable = Tc.stable_lsn t.tc in
    await t (fun () ->
        Hashtbl.fold
          (fun _ r acc ->
            acc && ((not r.r_attached) || Lsn.(r.r_applied >= stable)))
          t.replicas true)

  let lag t ~name =
    match Hashtbl.find_opt t.replicas name with
    | Some r -> Lsn.to_int (Tc.stable_lsn t.tc) - Lsn.to_int r.r_applied
    | None -> 0
end
