module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Instrument = Untx_util.Instrument
module Metrics = Untx_obs.Metrics
module Trace = Untx_obs.Trace
module Fault = Untx_fault.Fault
module Wire = Untx_msg.Wire
module Session = Untx_msg.Session
module Dc = Untx_dc.Dc
module Tc = Untx_tc.Tc
module Op = Untx_msg.Op
module Layer = Untx_layer.Layer

(* Log-shipping replication: each partition's primary DC gains K warm
   standbys fed continuously from the TC's *stable* log over the repl
   channel.  A volatile record can still be disowned by a TC crash, so
   only stable records ship — a standby must never hold effects the
   TC's log cannot account for.

   The shipping contract is the same epoch/seq session machinery the
   control channel uses ({!Session}); the standby applies the stream
   through the DC's normal abstract-LSN idempotence path, which is what
   makes resent batches, duplicated frames and post-promotion redo
   overlap all safe to deliver. *)

type durability = Primary_only | Quorum of int

let pp_durability ppf = function
  | Primary_only -> Format.pp_print_string ppf "primary-only"
  | Quorum k -> Format.fprintf ppf "quorum-%d" k

(* A kill at a shipped-batch boundary is the interesting crash instant:
   the standby holds a strict prefix of the stream and promotion must
   re-drive exactly the rest. *)
let p_ship_batch = Fault.declare "repl.ship.batch"

(* Fires inside the truncation-floor consult, once per detached replica
   per granted checkpoint: a chaos plan arming it force-expires that
   replica's retention lease on the spot, exercising the
   rebuild-required demotion and the promotion refusal it implies. *)
let p_lease_expire = Fault.declare "repl.lease.expire"

module Standby = struct
  type t = {
    dc : Dc.t;
    counters : Instrument.t;
    sessions : (int, (Wire.repl, Wire.repl_reply) Session.Receiver.t) Hashtbl.t;
    applied : (int, Lsn.t) Hashtbl.t; (* per-TC cumulative applied LSN *)
  }

  let create ?(counters = Instrument.global) config ~part =
    let dc = Dc.create ~counters config in
    Dc.set_identity dc ~part;
    { dc; counters; sessions = Hashtbl.create 4; applied = Hashtbl.create 4 }

  let dc t = t.dc

  let applied t ~tc =
    Option.value ~default:Lsn.zero
      (Hashtbl.find_opt t.applied (Tc_id.to_int tc))

  let session t tc =
    let key = Tc_id.to_int tc in
    match Hashtbl.find_opt t.sessions key with
    | Some s -> s
    | None ->
      let s = Session.Receiver.create () in
      Hashtbl.add t.sessions key s;
      s

  (* Apply one shipped batch.  Watermarks travel in-band so the
     standby's cache obeys the same flush-causality rules as the
     primary's — but the low-water claim is capped at the standby's own
     applied cursor first: the primary may have acknowledged operations
     this standby has not applied yet, and an uncapped claim would let
     abstract-LSN compaction mark them included, silently absorbing the
     rest of the stream as duplicates.  This is the redo cursor-cap rule
     of the restart path, carried over verbatim to the shipping path. *)
  let apply_ship t ~tc ~eosl ~lwm ~upto ~ops =
    let cursor = applied t ~tc in
    let lwm = Lsn.min lwm cursor in
    ignore (Dc.control t.dc (Wire.Watermarks { tc; eosl; lwm }));
    List.iter
      (fun (lsn, op) ->
        let reply = Dc.perform t.dc { Wire.tc; lsn; part = Dc.part t.dc; op } in
        (match reply.Wire.result with
        | Wire.Failed msg ->
          failwith (Printf.sprintf "Repl.Standby: shipped op rejected: %s" msg)
        | _ -> ());
        Instrument.bump t.counters "repl.standby_ops")
      ops;
    if Lsn.(cursor < upto) then
      Hashtbl.replace t.applied (Tc_id.to_int tc) upto;
    Instrument.bump t.counters "repl.standby_batches"

  let handle_repl_frame ?expect t frame =
    match Wire.decode_repl frame with
    | exception Invalid_argument _ ->
      Instrument.bump t.counters "repl.bad_frames";
      None
    | m
      when match expect with
           | Some tc -> not (Tc_id.equal (Wire.repl_tc m.Wire.p_repl) tc)
           | None -> false ->
      (* A ship speaking for another TC on this link: applying it would
         advance that TC's cursor from a stream its manager never sent.
         Dropped (counted); the real sender's resend stays alive. *)
      Instrument.bump t.counters "repl.misattributed";
      None
    | m ->
      let tc = Wire.repl_tc m.Wire.p_repl in
      let s = session t tc in
      let ack () = Wire.Repl_ack { applied = applied t ~tc } in
      let apply _seq = function
        | Wire.Repl_hello _ -> ack ()
        | Wire.Repl_ship { tc; eosl; lwm; upto; ops } ->
          apply_ship t ~tc ~eosl ~lwm ~upto ~ops;
          ack ()
      in
      let reply seq r =
        Some
          (Wire.encode_repl_reply
             { Wire.q_tc = tc; q_epoch = Session.Receiver.epoch s;
               q_seq = seq; q_reply = r })
      in
      (match
         Session.Receiver.handle s ~epoch:m.Wire.p_epoch ~seq:m.Wire.p_seq
           m.Wire.p_repl ~apply ~fallback:(ack ())
       with
      | Session.Receiver.Stale ->
        Instrument.bump t.counters "repl.stale_epoch";
        None
      | Session.Receiver.Replayed r ->
        Instrument.bump t.counters "repl.dups_absorbed";
        reply m.Wire.p_seq r
      | Session.Receiver.Buffered ->
        Instrument.bump t.counters "repl.buffered";
        None
      | Session.Receiver.Applied r -> reply m.Wire.p_seq r)

  (* A standby crash loses the volatile applied cursors and session
     state along with the DC's cache; the rebuilt replica re-adopts the
     stream from zero and the abstract-LSN idempotence path absorbs
     everything its stable pages already contain. *)
  let crash t =
    Dc.crash t.dc;
    Hashtbl.reset t.sessions;
    Hashtbl.reset t.applied

  let recover t = Dc.recover t.dc

  (* Bootstrap adoption: the standby's DC was just populated with a
     layer store's materialized state at [upto], outside the wire path.
     Claim the whole installed prefix — watermarks at [upto] make the
     (empty) abstract LSNs of the installed pages read as
     covered-by-state, and the applied cursor makes the next hello
     resume shipping at the suffix. *)
  let adopt t ~tc ~upto =
    ignore (Dc.control t.dc (Wire.Watermarks { tc; eosl = upto; lwm = upto }));
    Hashtbl.replace t.applied (Tc_id.to_int tc) upto
end

module Manager = struct
  (* The replica life cycle around detachment is a retention-lease
     state machine:

       Attached --detach--> Detached{lease} --lease runs out-->
       Rebuild_required (terminal)

     A detached replica holds the log-truncation floor at its frozen
     applied cursor, but only for [lease] granted checkpoints: each
     floor consult burns one unit.  While the lease holds, reattach and
     promotion stay cheap (the missed suffix is still in the log).
     When it expires the replica stops holding the floor and is demoted
     to rebuild-required: it can no longer prove the acked history is
     reconstructible from its cursor, so it is ineligible for promotion
     and refuses reattach — honest unavailability instead of silent
     data loss.  A crashed standby whose rejoin cursor (zero) fell
     below the retained log lands in the same state. *)
  type replica_state =
    | Attached
    | Detached of { lease : int } (* floor consults left *)
    | Rebuild_required

  type replica = {
    r_name : string; (* the standby's deployment name *)
    r_primary : string; (* the primary DC it shadows *)
    r_standby : Standby.t;
    r_session : Wire.repl_reply Session.Sender.t;
    r_send : string -> unit;
    r_drain : unit -> string list;
    mutable r_applied : Lsn.t; (* confirmed floor, from acks *)
    mutable r_cursor : Lsn.t; (* next LSN to ship (optimistic) *)
    mutable r_state : replica_state;
  }

  let attached r = r.r_state = Attached

  type config = {
    durability : durability;
    batch_ops : int; (* max records per Repl_ship frame *)
    resend_after : int;
    resend_backoff_max : int;
    resend_max_retries : int;
    max_pump_rounds : int;
    lease_checkpoints : int; (* retention-lease budget of a detached replica *)
  }

  let default_config =
    {
      durability = Primary_only;
      batch_ops = 32;
      resend_after = 4;
      resend_backoff_max = 64;
      resend_max_retries = 32;
      max_pump_rounds = 100_000;
      lease_checkpoints = 4;
    }

  type t = {
    cfg : config;
    tc : Tc.t;
    counters : Instrument.t;
    replicas : (string, replica) Hashtbl.t; (* keyed by standby name *)
    mutable last_ship : string option;
        (* the primary whose stream was last being shipped — the chaos
           harness reads this to know which primary a kill at the
           ["repl.ship.batch"] point belongs to *)
    mutable layer : Layer.t option;
        (* the layered log store absorbing this TC's stable redo; with
           one installed, truncation is floored at its durable high
           watermark instead of the slowest detached replica's cursor *)
  }

  (* Absorb the stable suffix the layer store has not ingested yet.
     Runs at every durability-gate force and floor consult, so the store
     tracks end-of-stable-log and compaction happens on the way.  The
     start cursor is clamped at the retained head for the first sync of
     a store enabled on an already-truncated log — such a store only
     covers history from that point on. *)
  let sync_layers t =
    match t.layer with
    | None -> ()
    | Some store ->
      let stable = Tc.stable_lsn t.tc in
      if Lsn.(Layer.ingested_lsn store < stable) then
        let from =
          Lsn.max
            (Lsn.next (Layer.ingested_lsn store))
            (Tc.log_retained_from t.tc)
        in
        Layer.absorb store ~upto:stable (fun emit ->
            Tc.iter_stable_ops_from t.tc ~from emit)

  (* Whether the store's coverage meets the retained log with no gap:
     every LSN is then reconstructible — below the ingest watermark from
     layers, above it from the log.  This is what lets a detached
     laggard's history stop pinning truncation, and what makes it
     promotable through layer-sourced redo. *)
  let layer_contiguous t =
    match t.layer with
    | None -> false
    | Some store ->
      Lsn.(Tc.log_retained_from t.tc <= Lsn.next (Layer.ingested_lsn store))

  (* Replication must never let log truncation pass what the slowest
     replica still needs: catch-up reads the stable log from the
     replica's applied LSN, and a truncated cursor would force a full
     rebuild.  Attached replicas hold the floor unconditionally;
     detached replicas hold it under a retention lease of
     [lease_checkpoints] granted checkpoints, each consult burning one
     unit.  On expiry (or when the ["repl.lease.expire"] fault point
     forces it) the replica is demoted to rebuild-required and stops
     constraining truncation — it can no longer claim the retained
     suffix, so it must no longer be silently promotable either.  The
     gap between end-of-stable-log and the floor a replica holds is the
     log volume leases pin, recorded as the ["repl.floor_lag"]
     histogram. *)
  let truncate_floor t =
    sync_layers t;
    let layered = layer_contiguous t in
    let floor =
      Hashtbl.fold
        (fun _ r acc ->
          (match r.r_state with
          | Detached { lease } when not layered ->
            let forced =
              try
                Fault.hit p_lease_expire;
                false
              with Fault.Injected_crash _ -> true
            in
            if forced || lease <= 0 then begin
              r.r_state <- Rebuild_required;
              Instrument.bump t.counters "repl.lease_expirations";
              if Trace.enabled () then
                Trace.record ~tid:0 ~comp:"repl" ~ev:"lease.expire"
                  [ ("replica", r.r_name); ("forced", string_of_bool forced) ]
            end
            else r.r_state <- Detached { lease = lease - 1 }
          | Attached | Detached _ | Rebuild_required -> ());
          match r.r_state with
          | Rebuild_required -> acc
          (* With contiguous layer coverage a detached replica's missed
             history is reconstructible from layers + retained tail: it
             neither burns a lease nor pins the floor at its frozen
             cursor — the layer store's durable watermark (below) is the
             only retention its recovery needs. *)
          | Detached _ when layered -> acc
          | Attached | Detached _ -> (
            let need = Lsn.next r.r_applied in
            match acc with
            | None -> Some need
            | Some a -> Some (Lsn.min a need)))
        t.replicas None
    in
    (* The store itself needs the un-compacted tail retained: a layer
       crash re-absorbs (durable, stable] from the log. *)
    let floor =
      match t.layer with
      | None -> floor
      | Some store ->
        let need = Lsn.next (Layer.durable_lsn store) in
        Some (match floor with None -> need | Some f -> Lsn.min f need)
    in
    (match floor with
    | Some f ->
      Metrics.observe t.counters "repl.floor_lag"
        (Stdlib.max 0 (Lsn.to_int (Tc.stable_lsn t.tc) - Lsn.to_int f + 1))
    | None -> ());
    floor

  let post t r repl =
    let frame = ref "" in
    let seq =
      Session.Sender.post r.r_session ~backoff:t.cfg.resend_after
        ~encode:(fun ~epoch ~seq ->
          let f =
            Wire.encode_repl { Wire.p_epoch = epoch; p_seq = seq; p_repl = repl }
          in
          frame := f;
          f)
        ~send:r.r_send ()
    in
    Instrument.bump t.counters "repl.ships";
    Instrument.bump_by t.counters "repl.ship_bytes" (String.length !frame);
    if Trace.enabled () then
      Trace.record ~tid:0 ~comp:"repl" ~ev:"ship"
        [
          ("to", r.r_name);
          ("seq", string_of_int seq);
          ("bytes", string_of_int (String.length !frame));
        ];
    seq

  (* Ship the stable suffix past a replica's cursor, in batches of at
     most [batch_ops] records, each batch passing the
     ["repl.ship.batch"] fault point.  Records routed to other
     partitions are skipped but still covered by the batch's [upto], so
     every replica's applied LSN tracks the whole stable log and quorum
     gating needs no per-partition bookkeeping.  Returns the number of
     operations shipped (catch-up accounting). *)
  let rebuild_required t r ~why =
    r.r_state <- Rebuild_required;
    Instrument.bump t.counters "repl.rebuild_required";
    if Trace.enabled () then
      Trace.record ~tid:0 ~comp:"repl" ~ev:"rebuild.required"
        [ ("replica", r.r_name); ("why", why) ]

  let ship_replica t r =
    let stable = Tc.stable_lsn t.tc in
    let shipped = ref 0 in
    if
      attached r
      && Lsn.(r.r_cursor <= stable)
      && Lsn.(r.r_cursor < Tc.log_retained_from t.tc)
    then
      (* Truncation passed the shipping cursor (a fresh standby attached
         to an already-truncated log): re-shipping would silently skip
         the missing prefix.  Demote honestly; a layer bootstrap is the
         recovery path. *)
      rebuild_required t r ~why:"ship cursor below retained log"
    else if attached r && Lsn.(r.r_cursor <= stable) then begin
      let tc_id = Tc.id t.tc in
      let eosl = stable and lwm = stable in
      (* the standby caps the lwm claim at its own applied cursor; see
         [Standby.apply_ship] *)
      let batch = ref [] and batch_n = ref 0 in
      let flush_batch ~upto =
        t.last_ship <- Some r.r_primary;
        Fault.hit p_ship_batch;
        ignore
          (post t r
             (Wire.Repl_ship
                { tc = tc_id; eosl; lwm; upto; ops = List.rev !batch }));
        shipped := !shipped + !batch_n;
        batch := [];
        batch_n := 0;
        r.r_cursor <- Lsn.next upto
      in
      Tc.iter_stable_ops_from t.tc ~from:r.r_cursor (fun lsn op ->
          if String.equal (Tc.dc_of_op t.tc op) r.r_primary then begin
            batch := (lsn, op) :: !batch;
            incr batch_n;
            if !batch_n >= t.cfg.batch_ops then flush_batch ~upto:lsn
          end);
      (* the final (possibly empty) batch carries the cursor to the end
         of the stable log *)
      if Lsn.(r.r_cursor <= stable) then flush_batch ~upto:stable
    end;
    !shipped

  let ship t = Hashtbl.iter (fun _ r -> ignore (ship_replica t r)) t.replicas

  (* One delivery round per replica link: drain the transport, match
     acks against the session, advance the confirmed floor. *)
  let pump t =
    let progressed = ref false in
    Hashtbl.iter
      (fun _ r ->
        if attached r then begin
          List.iter
            (fun frame ->
              match Wire.decode_repl_reply frame with
              | exception Invalid_argument _ ->
                Instrument.bump t.counters "repl.bad_frames"
              | m when not (Tc_id.equal m.Wire.q_tc (Tc.id t.tc)) ->
                (* Another TC's repl ack: its (epoch, seq) may collide
                   with this manager's own session numbering, and its
                   [applied] cursor is measured against a different
                   LSN sequence entirely. *)
                Instrument.bump t.counters "repl.misattributed"
              | m ->
                if
                  Session.Sender.ack r.r_session ~epoch:m.Wire.q_epoch
                    ~seq:m.Wire.q_seq m.Wire.q_reply
                then begin
                  progressed := true;
                  Instrument.bump t.counters "repl.acks";
                  let (Wire.Repl_ack { applied }) = m.Wire.q_reply in
                  if Lsn.(r.r_applied < applied) then r.r_applied <- applied;
                  if Trace.enabled () then
                    Trace.record ~tid:0 ~comp:"repl" ~ev:"ack"
                      [ ("from", r.r_name); ("applied", Lsn.to_string applied) ]
                end)
            (r.r_drain ());
          Metrics.observe t.counters "repl.lag_lsn"
            (Lsn.to_int (Tc.stable_lsn t.tc) - Lsn.to_int r.r_applied)
        end)
      t.replicas;
    !progressed

  let tick_resend t =
    Hashtbl.iter
      (fun _ r ->
        if attached r then
          Session.Sender.tick r.r_session ~backoff_max:t.cfg.resend_backoff_max
            ~max_retries:t.cfg.resend_max_retries
            ~on_resend:(fun ~seq:_ frame ->
              Instrument.bump t.counters "repl.resends";
              r.r_send frame)
            ~on_timeout:(fun ~seq ~retries ->
              Instrument.bump t.counters "repl.timeouts";
              failwith
                (Printf.sprintf "Repl: ship %d to %s timed out after %d resends"
                   seq r.r_name retries)))
      t.replicas

  let await t pred =
    let stalls = ref 0 in
    while not (pred ()) do
      if pump t then stalls := 0
      else begin
        incr stalls;
        tick_resend t;
        if !stalls > t.cfg.max_pump_rounds then
          failwith "Repl.await: no progress (lost ship without resend?)"
      end
    done

  (* The durability gate installed on the TC: invoked after every
     group-commit force with the new stable LSN.  Shipping happens here
     under every policy — each commit force pushes the fresh suffix to
     the standbys, which is what keeps them warm; [Quorum k] then also
     blocks the commit acknowledgement until at least [k] replicas of
     every replicated primary (clamped to how many it has) confirm the
     LSN. *)
  let gate t lsn =
    sync_layers t;
    ship t;
    ignore (pump t);
    match t.cfg.durability with
    | Primary_only -> ()
    | Quorum k ->
      let satisfied () =
        let by_primary : (string, int * int) Hashtbl.t = Hashtbl.create 4 in
        Hashtbl.iter
          (fun _ r ->
            if attached r then begin
              let have, ok =
                Option.value ~default:(0, 0)
                  (Hashtbl.find_opt by_primary r.r_primary)
              in
              let ok = if Lsn.(r.r_applied >= lsn) then ok + 1 else ok in
              Hashtbl.replace by_primary r.r_primary (have + 1, ok)
            end)
          t.replicas;
        Hashtbl.fold
          (fun _ (have, ok) acc -> acc && ok >= Stdlib.min k have)
          by_primary true
      in
      await t satisfied

  let create ?(counters = Instrument.global) ?(cfg = default_config) tc =
    let t =
      {
        cfg;
        tc;
        counters;
        replicas = Hashtbl.create 4;
        last_ship = None;
        layer = None;
      }
    in
    Tc.set_durability_gate tc (fun lsn -> gate t lsn);
    Tc.set_truncate_floor tc (fun () -> truncate_floor t);
    t

  (* Switch this manager's TC onto the layered log store: absorb its
     stable redo from here on, and install the TC's history-replay hook
     so failover can redo below the retained head from layers.  The
     store is registered before any truncation it would need to survive;
     enabling on an already-truncated log is legal but only covers
     history from the current retained head. *)
  let enable_layers ?l0_seal_ops ?compact_runs t =
    match t.layer with
    | Some _ -> ()
    | None ->
      let store =
        Layer.create ?l0_seal_ops ?compact_runs ~counters:t.counters
          ~writer:(Tc.id t.tc)
          ~versioned:(fun table -> Tc.table_versioned t.tc table)
          ()
      in
      t.layer <- Some store;
      Tc.set_history_replay t.tc (fun ~from ~upto ->
          (* the floor keeps retained <= durable+1 <= ingested+1, so a
             request for [from, retained) is always coverable once the
             store has synced at least once past [from] *)
          if
            Lsn.(Lsn.zero < from)
            && Lsn.(upto <= Layer.ingested_lsn store)
            && Lsn.(Layer.history_from store <= from)
          then Some (fun emit -> Layer.iter_ops store ~from ~upto emit)
          else None)

  let layer_store t = t.layer

  (* Fold everything absorbed so far into L1 (bench/tests drive this to
     move the durable watermark without waiting out the auto-compaction
     thresholds). *)
  let compact_layers t =
    match t.layer with
    | None -> ()
    | Some store ->
      sync_layers t;
      Layer.compact ~all:true store

  let durability t = t.cfg.durability

  let last_ship_primary t = t.last_ship

  (* Open (or resume) the session with a hello and adopt the standby's
     exact applied LSN as the shipping cursor: zero for a fresh standby,
     wherever it left off for a rejoining one — catch-up without a
     rebuild.  [r_applied] alone would not do: it is only a floor (acks
     may have been lost). *)
  let hello t r =
    let seq =
      Session.Sender.post r.r_session ~awaited:true ~backoff:t.cfg.resend_after
        ~encode:(fun ~epoch ~seq ->
          Wire.encode_repl
            {
              Wire.p_epoch = epoch;
              p_seq = seq;
              p_repl = Wire.Repl_hello { tc = Tc.id t.tc };
            })
        ~send:r.r_send ()
    in
    await t (fun () -> Session.Sender.has_reply r.r_session seq);
    match Session.Sender.take_reply r.r_session seq with
    | Some (Wire.Repl_ack { applied }) ->
      r.r_applied <- applied;
      r.r_cursor <- Lsn.next applied
    | None -> ()

  let attach t ~name ~primary ~standby ~send ~drain =
    let r =
      {
        r_name = name;
        r_primary = primary;
        r_standby = standby;
        r_session = Session.Sender.create ();
        r_send = send;
        r_drain = drain;
        r_applied = Lsn.zero;
        r_cursor = Lsn.next Lsn.zero;
        r_state = Attached;
      }
    in
    Hashtbl.replace t.replicas name r;
    hello t r;
    Instrument.bump t.counters "repl.attached"

  (* Stop shipping to a replica without forgetting it: its applied LSN
     keeps holding the truncation floor — under a retention lease of
     [lease_checkpoints] granted checkpoints — so a later [reattach]
     only ships the suffix it missed.  Idempotent: a second detach does
     not refresh a running lease. *)
  let detach t ~name =
    match Hashtbl.find_opt t.replicas name with
    | Some r ->
      (match r.r_state with
      | Attached -> r.r_state <- Detached { lease = t.cfg.lease_checkpoints }
      | Detached _ | Rebuild_required -> ());
      ignore (Session.Sender.clear r.r_session)
    | None -> ()

  let exact_applied t r = Standby.applied r.r_standby ~tc:(Tc.id t.tc)

  (* Whether the stable log still retains everything past the standby's
     exact applied cursor — the condition under which its missed suffix
     is provably reconstructible by re-shipping (catch-up) or TC redo
     alone.  A candidate caught up to the rssp is always covered:
     truncation cuts never pass the checkpoint target, so
     retained_from <= rssp. *)
  let log_covered t r =
    Lsn.(Tc.log_retained_from t.tc <= Lsn.next (exact_applied t r))

  (* Promotion coverage: the log alone suffices, or a contiguous layer
     store fills the gap below the retained head (layer-sourced redo via
     the TC's history-replay hook) and the log covers the rest. *)
  let covered t r = log_covered t r || layer_contiguous t

  let reattach t ~name =
    match Hashtbl.find_opt t.replicas name with
    | Some r ->
      (match r.r_state with
      | Rebuild_required ->
        invalid_arg
          ("Repl.reattach: " ^ name
         ^ " requires a rebuild (lease expired or log truncated past its \
            cursor)")
      | Attached | Detached _ -> ());
      (* a new epoch voids any frame of the old session still in flight *)
      ignore (Session.Sender.new_epoch r.r_session);
      r.r_state <- Attached;
      hello t r;
      (* The hello re-adopted the standby's exact cursor — zero for one
         that crashed while away.  If truncation has passed that cursor
         the missed records are gone and re-shipping would silently
         skip them: demote instead of resuming with a hole. *)
      if log_covered t r then ignore (ship_replica t r)
      else if layer_contiguous t then begin
        (* The missed middle lives only in layers, and shipping cannot
           resume mid-stream without it.  The replica is still fully
           recoverable (layer-sourced redo on promotion, or a layer
           bootstrap), so park it detached instead of demoting. *)
        r.r_state <- Detached { lease = t.cfg.lease_checkpoints };
        Instrument.bump t.counters "repl.reattach_deferred"
      end
      else rebuild_required t r ~why:"reattach cursor below retained log"
    | None -> invalid_arg ("Repl.reattach: unknown replica " ^ name)

  (* Promotion eligibility (the fail-over gate's per-manager half): a
     candidate is eligible iff its acked history is provably
     reconstructible — it is not rebuild-required, and this TC's stable
     log retains everything past its applied cursor, so either peer
     catch-up or post-promotion redo can re-drive the gap
     [applied+1, stable] in full. *)
  let promotion_eligible t ~name =
    match Hashtbl.find_opt t.replicas name with
    | None -> false
    | Some r -> (
      match r.r_state with
      | Rebuild_required -> false
      | Attached | Detached _ -> covered t r)

  (* Peer catch-up: re-ship the retained stable suffix past the
     replica's cursor and wait until it confirms end-of-stable-log.
     Promotion runs this on the chosen laggard first, so the redo the
     TC then drives is only the (usually empty) post-catch-up gap. *)
  let catch_up t ~name =
    match Hashtbl.find_opt t.replicas name with
    | None -> invalid_arg ("Repl.catch_up: unknown replica " ^ name)
    | Some r ->
      (match r.r_state with
      | Rebuild_required ->
        invalid_arg ("Repl.catch_up: " ^ name ^ " requires a rebuild")
      | Detached _ | Attached -> ());
      if not (log_covered t r) then
        (* The gap below the retained head lives only in layers;
           shipping the retained suffix over it would apply the stream
           out of order.  Leave the cursor frozen — promotion re-drives
           the whole gap through layer-sourced redo instead. *)
        Instrument.bump t.counters "repl.catchup_skipped"
      else begin
        (match r.r_state with
        | Detached _ ->
          ignore (Session.Sender.new_epoch r.r_session);
          r.r_state <- Attached;
          hello t r
        | Attached | Rebuild_required -> ());
        let stable = Tc.stable_lsn t.tc in
        let shipped = ship_replica t r in
        if shipped > 0 then begin
          Instrument.bump_by t.counters "repl.catchup_ops" shipped;
          if Trace.enabled () then
            Trace.record ~tid:0 ~comp:"repl" ~ev:"catchup"
              [ ("replica", r.r_name); ("ops", string_of_int shipped) ]
        end;
        await t (fun () -> Lsn.(r.r_applied >= stable))
      end

  let state_of t ~name =
    match Hashtbl.find_opt t.replicas name with
    | Some r -> r.r_state
    | None -> invalid_arg ("Repl.state_of: unknown replica " ^ name)

  (* Remove a replica from the set entirely (promoted or
     decommissioned): its cursor no longer holds the truncation floor. *)
  let remove t ~name = Hashtbl.remove t.replicas name

  let replicas_of t ~primary =
    Hashtbl.fold
      (fun _ r acc -> if String.equal r.r_primary primary then r :: acc else acc)
      t.replicas []
    |> List.sort (fun a b -> String.compare a.r_name b.r_name)

  let replica_names t ~primary =
    List.map (fun r -> r.r_name) (replicas_of t ~primary)

  let standby_of t ~name =
    match Hashtbl.find_opt t.replicas name with
    | Some r -> r.r_standby
    | None -> invalid_arg ("Repl: unknown replica " ^ name)

  let applied_of t ~name =
    match Hashtbl.find_opt t.replicas name with
    | Some r -> r.r_applied
    | None -> invalid_arg ("Repl: unknown replica " ^ name)

  (* Ship everything stable and pump until every attached replica
     confirms it — replication parity, used by quiesce and the
     deployment auditor before comparing replica state. *)
  let settle t =
    sync_layers t;
    ship t;
    let stable = Tc.stable_lsn t.tc in
    await t (fun () ->
        Hashtbl.fold
          (fun _ r acc ->
            acc && ((not (attached r)) || Lsn.(r.r_applied >= stable)))
          t.replicas true)

  let lag t ~name =
    match Hashtbl.find_opt t.replicas name with
    | Some r -> Lsn.to_int (Tc.stable_lsn t.tc) - Lsn.to_int r.r_applied
    | None -> 0

  (* Layer-fed standby bootstrap: install the store's materialized state
     (this TC's records routed to [primary] only) straight into the
     standby's DC, then adopt the store's ingest watermark as the
     applied cursor.  The subsequent [attach]'s hello resumes shipping
     at the post-layer suffix — a fresh replica costs the current state
     size, not a full-redo replay from LSN 1.  Returns the number of
     records installed. *)
  let bootstrap_standby t ~standby ~primary =
    match t.layer with
    | None -> invalid_arg "Repl.bootstrap_standby: layers not enabled"
    | Some store ->
      sync_layers t;
      let installed = ref 0 in
      Layer.iter_current store (fun ~table ~key record ->
          let routed =
            Tc.dc_of_op t.tc (Op.Read { table; key; mode = Op.Own })
          in
          if String.equal routed primary then begin
            Dc.install_record (Standby.dc standby) ~table ~key record;
            incr installed
          end);
      Standby.adopt standby ~tc:(Tc.id t.tc) ~upto:(Layer.ingested_lsn store);
      Instrument.bump_by t.counters "repl.bootstrap_installs" !installed;
      if Trace.enabled () then
        Trace.record ~tid:0 ~comp:"repl" ~ev:"bootstrap"
          [
            ("primary", primary);
            ("installed", string_of_int !installed);
            ("upto", Lsn.to_string (Layer.ingested_lsn store));
          ];
      !installed
end
