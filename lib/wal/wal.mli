(** Write-ahead log with an explicit volatile tail.

    One generic mechanism backs both logs in the unbundled kernel:

    - the TC's logical operation log (undo/redo, Section 4.1.1), and
    - the DC's private structure-modification log (Section 5.2.2).

    Records are appended to a volatile tail; {!force} moves the tail to
    the stable prefix.  A {!crash} loses exactly the unforced tail — the
    partial-failure scenarios of Section 5.3 are driven from here.

    LSNs are assigned at append time, before the operation reaches any
    page: this is precisely what creates the out-of-order arrival problem
    the abstract-LSN machinery solves. *)

type 'a t

val create :
  ?counters:Untx_util.Instrument.t ->
  ?label:string ->
  size:('a -> int) ->
  unit ->
  'a t
(** [size] measures a record's encoded size in bytes, for log-volume
    accounting (E9 compares logical vs physical SMO logging by bytes).

    [label] (default ["wal"]) names this log's fault points:
    [<label>.force.begin] fires before any record stabilizes and
    [<label>.force.mid] after each one, so a crash plan can leave a
    stable prefix of a forced batch.  The TC's log uses ["wal.tc"], the
    DC's ["wal.dc"]. *)

val append : 'a t -> 'a -> Untx_util.Lsn.t
(** Append to the volatile tail; returns the record's LSN. *)

val reserve : 'a t -> Untx_util.Lsn.t
(** Allocate the next LSN without writing a record.  Used for reads:
    they need unique, ordered request ids but are never redone. *)

val force : 'a t -> unit
(** Make the volatile tail stable (an fsync). *)

val force_through : 'a t -> Untx_util.Lsn.t -> unit
(** Force only if the stable LSN is still below the argument. *)

val stable_lsn : 'a t -> Untx_util.Lsn.t
(** LSN of the last stable record — the EOSL of Section 4.2.1. *)

val last_lsn : 'a t -> Untx_util.Lsn.t
(** Highest LSN assigned so far (stable or volatile). *)

val crash : 'a t -> unit
(** Lose the volatile tail.  The LSN counter restarts after the stable
    prefix, as it would when a real log is reopened. *)

val truncate : 'a t -> Untx_util.Lsn.t -> unit
(** Discard stable records with LSN < the argument (contract
    termination / checkpoint advancing the redo scan start point).
    The truncation point is remembered: see {!retained_from}. *)

val retained_from : 'a t -> Untx_util.Lsn.t
(** The lowest LSN the log still guarantees to hold: every record at or
    above it (and at or below {!stable_lsn}) is present.  [Lsn.next
    Lsn.zero] until the first {!truncate}, the highest truncation point
    thereafter.  Anything that replays a log suffix — replica catch-up,
    redo from below the redo-scan start point after a laggard promotion
    — must check its start cursor against this before trusting
    {!iter_from}, which silently skips missing records — or use
    {!iter_retained}, which enforces the check. *)

val iter_from :
  'a t -> Untx_util.Lsn.t -> (Untx_util.Lsn.t -> 'a -> unit) -> unit
(** Visit stable records with LSN >= the argument, in LSN order.
    Allocation-light: seeks to the start point and walks only the tail
    (O(log n + visited)), so continuous log shipping can re-read the
    suffix past a replica's cursor on every pump without copying or
    rescanning the whole log. *)

exception
  Truncated of { wanted : Untx_util.Lsn.t; retained : Untx_util.Lsn.t }
(** Raised by {!iter_retained} when the requested start cursor lies below
    {!retained_from} after a truncation: records in [[wanted, retained)]
    have been discarded, so a silent skip would replay an incomplete
    suffix. *)

val iter_retained :
  'a t -> Untx_util.Lsn.t -> (Untx_util.Lsn.t -> 'a -> unit) -> unit
(** {!iter_from} with the retention check enforced: raises {!Truncated}
    instead of silently skipping when the start cursor is below
    {!retained_from}.  Scans from any cursor (including [Lsn.zero]) are
    accepted while the log has never been truncated.  Consumers that
    {e replay} a suffix (redo, catch-up shipping) use this; plain
    {!iter_from} remains for whole-log analysis scans. *)

val iter_volatile : 'a t -> (Untx_util.Lsn.t -> 'a -> unit) -> unit
(** Visit unforced records, in LSN order (normal-execution bookkeeping
    only; these do not survive a crash). *)

val find : 'a t -> Untx_util.Lsn.t -> 'a option
(** Look up any record, stable or volatile, by LSN. *)

val stable_count : 'a t -> int

val volatile_count : 'a t -> int

val forces : 'a t -> int

val appended_bytes : 'a t -> int
