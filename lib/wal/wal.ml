module Lsn = Untx_util.Lsn
module Instrument = Untx_util.Instrument
module Metrics = Untx_obs.Metrics
module Trace = Untx_obs.Trace
module Fault = Untx_fault.Fault

type 'a t = {
  size : 'a -> int;
  counters : Instrument.t;
  label : string;
  h_append : string; (* label-prefixed histogram names, built once *)
  h_force : string;
  p_force_begin : string;
  p_force_mid : string;
  mutable stable : 'a Lsn.Map.t;
  mutable volatile : (Lsn.t * 'a) list; (* newest first *)
  mutable next_lsn : Lsn.t;
  mutable stable_lsn : Lsn.t;
  mutable trunc : Lsn.t; (* lowest LSN the log still guarantees to hold *)
  mutable forces : int;
  mutable appended_bytes : int;
}

let create ?(counters = Instrument.global) ?(label = "wal") ~size () =
  {
    size;
    counters;
    label;
    h_append = label ^ ".append_ns";
    h_force = label ^ ".force_ns";
    p_force_begin = Fault.declare (label ^ ".force.begin");
    p_force_mid = Fault.declare (label ^ ".force.mid");
    stable = Lsn.Map.empty;
    volatile = [];
    next_lsn = Lsn.next Lsn.zero;
    stable_lsn = Lsn.zero;
    trunc = Lsn.next Lsn.zero;
    forces = 0;
    appended_bytes = 0;
  }

let fresh_lsn t =
  let lsn = t.next_lsn in
  t.next_lsn <- Lsn.next lsn;
  lsn

let append t record =
  let t0 = Metrics.start t.counters in
  let lsn = fresh_lsn t in
  t.volatile <- (lsn, record) :: t.volatile;
  t.appended_bytes <- t.appended_bytes + t.size record;
  Instrument.bump t.counters "wal.appends";
  Metrics.stop t.counters t.h_append t0;
  lsn

let reserve t = fresh_lsn t

let force t =
  let t0 = Metrics.start t.counters in
  Fault.hit t.p_force_begin;
  t.forces <- t.forces + 1;
  Instrument.bump t.counters "wal.forces";
  let batch = List.length t.volatile in
  (* Records stabilize oldest-first, one at a time, with a fault point
     between them: a crash mid-force leaves a stable *prefix* of the
     batch (the torn-log-tail scenario), which the subsequent [crash]
     preserves because stable state is never rolled back. *)
  List.iter
    (fun (lsn, record) ->
      t.stable <- Lsn.Map.add lsn record t.stable;
      if Lsn.(t.stable_lsn < lsn) then t.stable_lsn <- lsn;
      Fault.hit t.p_force_mid)
    (List.rev t.volatile);
  t.volatile <- [];
  (* Even when the highest records were [reserve]d (no payload), every
     assigned LSN below [next_lsn] is now covered by stable state. *)
  t.stable_lsn <- Lsn.prev t.next_lsn;
  Metrics.stop t.counters t.h_force t0;
  (* Forces are not per-operation work, so the span carries the
     reserved untraced id; it still lands in the cycle's timeline dump. *)
  if Trace.enabled () then
    Trace.record ~tid:0 ~comp:"wal" ~ev:"force"
      [
        ("wal", t.label);
        ("batch", string_of_int batch);
        ("stable", Lsn.to_string t.stable_lsn);
      ]

let force_through t lsn = if Lsn.(t.stable_lsn < lsn) then force t

let stable_lsn t = t.stable_lsn

let last_lsn t = Lsn.prev t.next_lsn

let crash t = t.volatile <- []
(* next_lsn keeps counting: LSNs stay unique across the crash, and the
   restart protocol tells the DC to forget everything above stable_lsn. *)

let truncate t lsn =
  if Lsn.(t.trunc < lsn) then t.trunc <- lsn;
  t.stable <- Lsn.Map.filter (fun l _ -> Lsn.(l >= lsn)) t.stable

let retained_from t = t.trunc

(* Seek, then walk only the tail: O(log n) to find the start and O(1)
   amortized per record visited, against the whole-map filtering scan
   this used to be.  Continuous log shipping reads the suffix past each
   replica's cursor on every pump, so the full-scan version would make
   shipping quadratic in log length. *)
let iter_from t lsn f =
  Seq.iter (fun (l, record) -> f l record) (Lsn.Map.to_seq_from lsn t.stable)

exception Truncated of { wanted : Lsn.t; retained : Lsn.t }

let iter_retained t lsn f =
  (* Only an actual truncation can have discarded records; the initial
     floor (Lsn.next Lsn.zero) rejects nothing, so legal from-zero scans
     over an untruncated log stay legal. *)
  if Lsn.(lsn < t.trunc) && Lsn.(t.trunc > Lsn.next Lsn.zero) then
    raise (Truncated { wanted = lsn; retained = t.trunc });
  iter_from t lsn f

let iter_volatile t f =
  List.iter (fun (lsn, record) -> f lsn record) (List.rev t.volatile)

let find t lsn =
  match Lsn.Map.find_opt lsn t.stable with
  | Some r -> Some r
  | None ->
    List.find_map
      (fun (l, r) -> if Lsn.equal l lsn then Some r else None)
      t.volatile

let stable_count t = Lsn.Map.cardinal t.stable

let volatile_count t = List.length t.volatile

let forces t = t.forces

let appended_bytes t = t.appended_bytes
