(** Seeded deterministic workload bank, run differentially against a
    sequential in-memory oracle.

    Each {!spec} describes one adversarial workload shape over a
    partitioned deployment — Zipfian hot keys, range scans under either
    Section 3.1 lock protocol, read-modify-write, large values, mixed
    versioned/unversioned tables, index-maintaining transactions — and
    {!run} executes it transaction by transaction while a shadow oracle
    predicts every outcome:

    - every read and range scan is compared against the oracle's view
      the moment it returns (scans against the owning partition's
      expected fragment, index lookups against a recomputation over the
      oracle's rows);
    - deliberately invalid operations ({e poison probes}: duplicate
      inserts, updates of absent keys) must fail exactly where the
      TC contract says they fail — immediately on unversioned tables,
      at commit on versioned ones;
    - scripted crash cycles kill a DC or the TC between transactions
      ({!Untx_cloud.Deploy.crash_dc}/[crash_tc]); recovery must land on
      the oracle's exact state;
    - after the final quiesce, every partition fragment is merged and
      held to byte equality with the oracle, and every index-entry
      table to {!Untx_index.Index.expected_entries} parity.

    Everything is a pure function of [(spec, seed)], so any violation
    replays exactly.  The bank is the scenario-diversity half of
    ROADMAP item 5: each spec is also a chaos and experiment target. *)

module Tc := Untx_tc.Tc

type crash = Crash_dc | Crash_tc | Crash_branch

type spec = {
  w_name : string;
  w_desc : string;
  w_protocol : Tc.cc_protocol;
  w_tables : (string * bool) list;  (** (table, versioned); ≥ 1 *)
  w_indexed : bool;
      (** maintain secondary indexes (["by_cat"], ["by_len"]) on the
          single table through {!Untx_index.Index}; values are
          structured ["<cat>:<payload>"] and categories occasionally
          embed NUL bytes to exercise the entry-key escaping *)
  w_parts : int;
  w_replicas : int;
  w_txns : int;
  w_keyspace : int;
  w_theta : float;  (** Zipfian skew; [0.] = uniform *)
  w_value_len : int * int;  (** value length range *)
  w_scan_prob : float;  (** chance of a differential range scan per txn *)
  w_lookup_prob : float;  (** chance of a differential index lookup *)
  w_rmw_prob : float;  (** chance an update is read-modify-write *)
  w_abort_prob : float;  (** chance a transaction deliberately aborts *)
  w_poison_prob : float;  (** chance of a poison probe per txn *)
  w_crashes : crash list;
      (** scripted kills, spread evenly across the run — every bank
          spec schedules at least one; [Crash_branch] kills the
          copy-on-write branch's DC (a no-op before the fork) *)
  w_branch_at : float option;
      (** fork a copy-on-write branch ({!Untx_cloud.Deploy.create_branch})
          at the stable LSN this fraction into the run; from then on
          every iteration also drives one branch transaction against
          the branch's own oracle (seeded from the parent's state at
          the fork), and the final parity adds branch-vs-branch-oracle
          equality plus shared-prefix-at-fork parity through both
          sides.  Requires an unversioned single-table spec. *)
}

type result = {
  r_name : string;
  r_committed : int;
  r_aborted : int;  (** deliberate aborts + expected poison failures *)
  r_crashes : int;
  r_checks : int;  (** differential comparisons performed *)
  r_violations : string list;  (** empty iff the oracle always agreed *)
}

type env = {
  e_deploy : Untx_cloud.Deploy.t;
  e_idx : Untx_index.Index.t;
  e_expected : (string * (string * string) list) list;
      (** per table, the oracle's committed rows in key order — feed to
          {!Untx_audit.Audit.run_deploy} for the full post-run audit *)
}

val bank : unit -> spec list
(** The standard bank: [zipfian_rmw], [range_scan_keylocks],
    [range_scan_rangelocks], [occ_uniform], [large_values],
    [mixed_tables], [indexed_zipf], [indexed_unversioned],
    [branched_pitr]. *)

val find : string -> spec
(** Look a bank spec up by name.  Raises [Not_found]. *)

val run : ?seed:int -> spec -> result * env
(** Execute the spec (default seed [0xB0B]).  The returned deployment
    is quiesced; callers typically chain the auditor over
    [e_expected]. *)
