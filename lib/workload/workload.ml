module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Stored_record = Untx_dc.Stored_record
module Tc_id = Untx_util.Tc_id
module Rng = Untx_util.Rng
module Zipf = Untx_util.Zipf
module Instrument = Untx_util.Instrument
module Deploy = Untx_cloud.Deploy
module Index = Untx_index.Index
module Branch = Untx_branch.Branch
module Lsn = Untx_util.Lsn

type crash = Crash_dc | Crash_tc | Crash_branch

type spec = {
  w_name : string;
  w_desc : string;
  w_protocol : Tc.cc_protocol;
  w_tables : (string * bool) list;
  w_indexed : bool;
  w_parts : int;
  w_replicas : int;
  w_txns : int;
  w_keyspace : int;
  w_theta : float;
  w_value_len : int * int;
  w_scan_prob : float;
  w_lookup_prob : float;
  w_rmw_prob : float;
  w_abort_prob : float;
  w_poison_prob : float;
  w_crashes : crash list;
  w_branch_at : float option;
}

type result = {
  r_name : string;
  r_committed : int;
  r_aborted : int;
  r_crashes : int;
  r_checks : int;
  r_violations : string list;
}

type env = {
  e_deploy : Deploy.t;
  e_idx : Index.t;
  e_expected : (string * (string * string) list) list;
}

(* ------------------------------------------------------------------ *)
(* The bank                                                            *)

let base =
  {
    w_name = "";
    w_desc = "";
    w_protocol = Tc.Key_locks;
    w_tables = [ ("kv", true) ];
    w_indexed = false;
    w_parts = 2;
    w_replicas = 0;
    w_txns = 60;
    w_keyspace = 200;
    w_theta = 0.;
    w_value_len = (6, 18);
    w_scan_prob = 0.;
    w_lookup_prob = 0.;
    w_rmw_prob = 0.;
    w_abort_prob = 0.08;
    w_poison_prob = 0.1;
    w_crashes = [ Crash_dc ];
    w_branch_at = None;
  }

let bank () =
  [
    {
      base with
      w_name = "zipfian_rmw";
      w_desc = "Zipfian hot keys, read-modify-write, 3 partitions";
      w_parts = 3;
      w_theta = 0.9;
      w_keyspace = 400;
      w_rmw_prob = 0.6;
      w_crashes = [ Crash_dc; Crash_tc ];
    };
    {
      base with
      w_name = "range_scan_keylocks";
      w_desc = "range scans under the fetch-ahead key-lock protocol";
      w_tables = [ ("kv", false) ];
      w_parts = 1;
      w_keyspace = 120;
      w_scan_prob = 0.5;
      w_crashes = [ Crash_dc ];
    };
    {
      base with
      w_name = "range_scan_rangelocks";
      w_desc = "range scans under static range-partition locks";
      w_protocol = Tc.Range_locks 8;
      w_parts = 1;
      w_keyspace = 120;
      w_scan_prob = 0.5;
      w_crashes = [ Crash_tc ];
    };
    {
      base with
      w_name = "occ_uniform";
      w_desc = "optimistic protocol, uniform keys, buffered writes";
      w_protocol = Tc.Optimistic;
      w_tables = [ ("kv", false) ];
      w_scan_prob = 0.25;
      w_crashes = [ Crash_tc ];
    };
    {
      base with
      w_name = "large_values";
      w_desc = "0.5-2 KiB values forcing splits and multi-page churn";
      w_keyspace = 60;
      w_value_len = (512, 2048);
      w_txns = 40;
      w_crashes = [ Crash_dc ];
    };
    {
      base with
      w_name = "mixed_tables";
      w_desc = "versioned and unversioned tables in one transaction mix";
      w_tables = [ ("kv_v", true); ("kv_u", false) ];
      w_crashes = [ Crash_dc; Crash_tc ];
    };
    {
      base with
      w_name = "indexed_zipf";
      w_desc = "index-maintaining transactions over Zipfian hot keys";
      w_indexed = true;
      w_parts = 3;
      w_theta = 0.9;
      w_keyspace = 150;
      w_rmw_prob = 0.3;
      w_lookup_prob = 0.4;
      w_crashes = [ Crash_dc; Crash_tc ];
    };
    {
      base with
      w_name = "indexed_unversioned";
      w_desc = "index maintenance over an unversioned (fail-fast) table";
      w_tables = [ ("kv", false) ];
      w_indexed = true;
      w_lookup_prob = 0.4;
      w_crashes = [ Crash_dc ];
    };
    {
      base with
      w_name = "branched_pitr";
      w_desc =
        "copy-on-write fork at a mid-run LSN; parent and branch run \
         differentially against independent oracles";
      w_tables = [ ("kv", false) ];
      w_keyspace = 150;
      w_scan_prob = 0.25;
      w_branch_at = Some 0.4;
      w_crashes = [ Crash_dc; Crash_branch ];
    };
  ]

let find name = List.find (fun s -> String.equal s.w_name name) (bank ())

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let key_of rank = Printf.sprintf "k%04d" rank

(* Categories occasionally embed a NUL so the order-preserving entry
   escaping is on the differential path, not just in unit tests. *)
let gen_cat rng =
  (if Rng.chance rng 0.15 then "c\x00" else "c")
  ^ string_of_int (Rng.int rng 6)

let extract_cat ~key:_ ~value =
  match String.index_opt value ':' with
  | Some i -> [ String.sub value 0 i ]
  | None -> [ value ]

let len_bucket value = Printf.sprintf "L%d" (String.length value / 16)

let extract_len ~key:_ ~value = [ len_bucket value ]

let indexes = [ ("by_cat", extract_cat); ("by_len", extract_len) ]

let gen_value spec rng =
  let lo, hi = spec.w_value_len in
  let len = lo + Rng.int rng (max 1 (hi - lo)) in
  let payload =
    String.init len (fun _ ->
        let c = Rng.int rng 64 in
        if c = 63 then '\x00' else Char.chr (33 + (c mod 62)))
  in
  if spec.w_indexed then gen_cat rng ^ ":" ^ payload else payload

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)

(* Committed state only; per-transaction effects stage in an overlay
   and land here exactly when the TC reports the commit. *)
type oracle = (string, (string, string) Hashtbl.t) Hashtbl.t

let oracle_table (o : oracle) table =
  match Hashtbl.find_opt o table with
  | Some t -> t
  | None ->
    let t = Hashtbl.create 64 in
    Hashtbl.add o table t;
    t

let oracle_rows o table =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) (oracle_table o table) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let commit_staged o staged =
  Hashtbl.iter
    (fun (table, key) v ->
      let t = oracle_table o table in
      match v with
      | Some v -> Hashtbl.replace t key v
      | None -> Hashtbl.remove t key)
    staged

(* The transaction's own view: staged overlay over committed state. *)
let view o staged table key =
  match Hashtbl.find_opt staged (table, key) with
  | Some v -> v
  | None -> Hashtbl.find_opt (oracle_table o table) key

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

(* ------------------------------------------------------------------ *)
(* The runner                                                          *)

type state = {
  spec : spec;
  d : Deploy.t;
  tc : Tc.t;
  idx : Index.t;
  rng : Rng.t;
  zipf : Zipf.t option;
  oracle : oracle;
  mutable committed : int;
  mutable aborted : int;
  mutable crashes : int;
  mutable checks : int;
  mutable violations : string list;
}

let violation st msg = st.violations <- msg :: st.violations

let check st cond msg =
  st.checks <- st.checks + 1;
  if not cond then violation st msg

let pick_key st =
  key_of
    (match st.zipf with
    | Some z -> Zipf.sample z st.rng
    | None -> Rng.int st.rng st.spec.w_keyspace)

let pp_outcome = function
  | `Ok _ -> "`Ok"
  | `Blocked -> "`Blocked"
  | `Fail m -> Printf.sprintf "`Fail %S" m

(* Mutators route through the index wrappers iff the spec maintains
   indexes; reads and scans are plain Tc either way. *)
let op_insert st txn ~table ~key ~value =
  if st.spec.w_indexed then
    Index.insert st.idx st.tc txn ~table ~key ~value
  else Tc.insert st.tc txn ~table ~key ~value

let op_update st txn ~table ~key ~value =
  if st.spec.w_indexed then
    Index.update st.idx st.tc txn ~table ~key ~value
  else Tc.update st.tc txn ~table ~key ~value

let op_delete st txn ~table ~key =
  if st.spec.w_indexed then Index.delete st.idx st.tc txn ~table ~key
  else Tc.delete st.tc txn ~table ~key

exception Txn_over

(* One transaction: a handful of oracle-guided operations, optionally a
   poison probe, then commit/abort with the outcome the oracle
   predicts.  Any surprise is recorded and the transaction is rolled
   back, so one violation cannot corrupt the oracle for the rest of the
   run. *)
let run_txn st i =
  let spec = st.spec in
  let table, versioned =
    List.nth spec.w_tables (i mod List.length spec.w_tables)
  in
  let txn = Tc.begin_txn st.tc in
  let staged : (string * string, string option) Hashtbl.t =
    Hashtbl.create 8
  in
  let abort_dead () =
    if Tc.is_active txn then Tc.abort st.tc txn ~reason:"workload: txn over";
    st.aborted <- st.aborted + 1
  in
  let expect_ok label = function
    | `Ok v -> v
    | (`Blocked | `Fail _) as o ->
      violation st
        (Printf.sprintf "%s: txn %d %s on %s came back %s" spec.w_name i
           label table (pp_outcome o));
      abort_dead ();
      raise Txn_over
  in
  try
    let nops = 1 + Rng.int st.rng 3 in
    for _ = 1 to nops do
      let key =
        (* under OCC a transaction must not revisit its own buffered
           writes (reads and index maintenance would not see them) *)
        let k = pick_key st in
        if spec.w_protocol = Tc.Optimistic && Hashtbl.mem staged (table, k)
        then pick_key st
        else k
      in
      if not (spec.w_protocol = Tc.Optimistic && Hashtbl.mem staged (table, key))
      then begin
        match view st.oracle staged table key with
        | None ->
          let value = gen_value spec st.rng in
          expect_ok "insert" (op_insert st txn ~table ~key ~value);
          Hashtbl.replace staged (table, key) (Some value)
        | Some current ->
          if Rng.chance st.rng spec.w_rmw_prob then begin
            (* read-modify-write: the read is a differential check *)
            let got = expect_ok "read" (Tc.read st.tc txn ~table ~key) in
            check st
              (got = Some current)
              (Printf.sprintf "%s: txn %d read %s/%s saw %s, oracle says %S"
                 spec.w_name i table key
                 (match got with Some v -> Printf.sprintf "%S" v | None -> "None")
                 current);
            let value = gen_value spec st.rng in
            expect_ok "rmw-update" (op_update st txn ~table ~key ~value);
            Hashtbl.replace staged (table, key) (Some value)
          end
          else if Rng.chance st.rng 0.3 then begin
            expect_ok "delete" (op_delete st txn ~table ~key);
            Hashtbl.replace staged (table, key) None
          end
          else begin
            let value = gen_value spec st.rng in
            expect_ok "update" (op_update st txn ~table ~key ~value);
            Hashtbl.replace staged (table, key) (Some value)
          end
      end
    done;
    (* Poison probe: a deliberately invalid operation must fail exactly
       where the contract says — immediately on unversioned tables (and
       for Index.update's fail-fast read), at commit on versioned
       pipelined ones. *)
    let poison =
      if Rng.chance st.rng spec.w_poison_prob then begin
        let existing =
          oracle_rows st.oracle table
          |> List.filter (fun (k, _) ->
                 not (Hashtbl.mem staged (table, k)))
        in
        (* Optimistic buffers every write, so even fail-fast tables
           surface the refusal at commit, not at the call. *)
        let fail_fast = (not versioned) && spec.w_protocol <> Tc.Optimistic in
        let update_missing () =
          (* a rank just past the keyspace is never inserted *)
          let key = key_of (spec.w_keyspace + Rng.int st.rng 50) in
          let o = op_update st txn ~table ~key ~value:"poison" in
          (* Index.update reads the old row first and fails fast on a
             missing key whatever the table's versioned-ness *)
          Some (key, "update-missing", o, fail_fast || spec.w_indexed)
        in
        match existing with
        | (key, _) :: _ when Rng.bool st.rng ->
          let o = op_insert st txn ~table ~key ~value:"poison" in
          Some (key, "insert-existing", o, fail_fast)
        | _ -> update_missing ()
      end
      else None
    in
    match poison with
    | Some (key, label, o, immediate) ->
      if immediate then begin
        check st
          (match o with `Fail _ -> true | _ -> false)
          (Printf.sprintf
             "%s: txn %d poison %s on %s/%s should fail fast, got %s"
             spec.w_name i label table key (pp_outcome o));
        abort_dead ()
      end
      else begin
        (* pipelined: the op is accepted, the commit must refuse *)
        check st
          (match o with `Ok () -> true | _ -> false)
          (Printf.sprintf
             "%s: txn %d poison %s on %s/%s should pipeline as `Ok, got %s"
             spec.w_name i label table key (pp_outcome o));
        let c = Tc.commit st.tc txn in
        check st
          (match c with `Fail _ -> true | _ -> false)
          (Printf.sprintf
             "%s: txn %d poison %s on %s/%s should fail the commit, got %s"
             spec.w_name i label table key (pp_outcome c));
        abort_dead ()
      end
    | None ->
      if Rng.chance st.rng spec.w_abort_prob then begin
        Tc.abort st.tc txn ~reason:"workload: deliberate abort";
        st.aborted <- st.aborted + 1
      end
      else begin
        (match Tc.commit st.tc txn with
        | `Ok () ->
          st.committed <- st.committed + 1;
          commit_staged st.oracle staged
        | (`Blocked | `Fail _) as o ->
          violation st
            (Printf.sprintf "%s: txn %d commit on %s came back %s" spec.w_name
               i table (pp_outcome o));
          st.aborted <- st.aborted + 1)
      end
  with Txn_over -> ()

(* A differential range scan in its own read-only transaction: the
   expected rows are the oracle's, filtered to the cursor's owning
   partition (partitioned scans stay inside one partition by design)
   and truncated at the limit. *)
let scan_check st =
  let spec = st.spec in
  let table, _ = List.nth spec.w_tables (Rng.int st.rng (List.length spec.w_tables)) in
  let from_key = key_of (Rng.int st.rng spec.w_keyspace) in
  let limit = 1 + Rng.int st.rng 16 in
  let part = Deploy.partition_dc st.d ~table ~key:from_key in
  let expected =
    oracle_rows st.oracle table
    |> List.filter (fun (k, _) ->
           String.compare k from_key >= 0
           && String.equal (Deploy.partition_dc st.d ~table ~key:k) part)
    |> take limit
  in
  let txn = Tc.begin_txn st.tc in
  (match Tc.scan st.tc txn ~table ~from_key ~limit with
  | `Ok rows ->
    check st (rows = expected)
      (Printf.sprintf
         "%s: scan %s from %S limit %d saw %d row(s), oracle expects %d"
         spec.w_name table from_key limit (List.length rows)
         (List.length expected))
  | (`Blocked | `Fail _) as o ->
    violation st
      (Printf.sprintf "%s: scan %s from %S came back %s" spec.w_name table
         from_key (pp_outcome o)));
  match Tc.commit st.tc txn with
  | `Ok () -> ()
  | `Blocked | `Fail _ ->
    if Tc.is_active txn then Tc.abort st.tc txn ~reason:"workload scan probe"

(* A differential index lookup: recompute the expected hits from the
   oracle's rows through the same extractor. *)
let lookup_check st =
  let spec = st.spec in
  let table, _ = List.hd spec.w_tables in
  let index, extract, sec =
    if Rng.bool st.rng then ("by_cat", extract_cat, gen_cat st.rng)
    else
      let _, hi = spec.w_value_len in
      ("by_len", extract_len, Printf.sprintf "L%d" (Rng.int st.rng (1 + (hi / 16))))
  in
  let expected =
    oracle_rows st.oracle table
    |> List.filter (fun (key, value) -> List.mem sec (extract ~key ~value))
  in
  let txn = Tc.begin_txn st.tc in
  (match Index.lookup st.idx st.tc txn ~table ~index ~sec with
  | `Ok rows ->
    check st (rows = expected)
      (Printf.sprintf
         "%s: lookup %s/%s=%S saw %d row(s), oracle expects %d" spec.w_name
         table index sec (List.length rows) (List.length expected))
  | (`Blocked | `Fail _) as o ->
    violation st
      (Printf.sprintf "%s: lookup %s/%s=%S came back %s" spec.w_name table
         index sec (pp_outcome o)));
  match Tc.commit st.tc txn with
  | `Ok () -> ()
  | `Blocked | `Fail _ ->
    if Tc.is_active txn then Tc.abort st.tc txn ~reason:"workload lookup probe"

(* ------------------------------------------------------------------ *)
(* Final parity                                                        *)

let merged_rows d ~table =
  List.concat_map
    (fun dc_name ->
      Dc.dump_table (Deploy.dc d dc_name) table
      |> List.filter_map (fun (k, r) ->
             Stored_record.current r |> Option.map (fun v -> (k, v))))
    (Deploy.partitions d ~table)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let final_parity st =
  List.iter
    (fun (table, _) ->
      let expected = oracle_rows st.oracle table in
      let got = merged_rows st.d ~table in
      check st (got = expected)
        (Printf.sprintf
           "%s: final state of %s (%d rows) diverges from the oracle (%d \
            rows)"
           st.spec.w_name table (List.length got) (List.length expected));
      if st.spec.w_indexed then
        List.iter
          (fun iname ->
            let itab = Index.index_table ~table ~name:iname in
            let want =
              Index.expected_entries st.idx ~table ~index:iname ~rows:expected
            in
            let have = merged_rows st.d ~table:itab in
            check st (have = want)
              (Printf.sprintf
                 "%s: index %s holds %d entry(ies), primary rows imply %d"
                 st.spec.w_name itab (List.length have) (List.length want)))
          (Index.indexes st.idx ~table))
    st.spec.w_tables

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let make_deploy spec ~counters ~seed ~idx =
  let d =
    Deploy.create ~counters ~seed ~layers:(spec.w_branch_at <> None) ()
  in
  ignore
    (Deploy.add_tc d ~name:"tc1"
       {
         (Tc.default_config (Tc_id.of_int 1)) with
         cc_protocol = spec.w_protocol;
         lwm_every = 8;
         debug_checks = true;
       });
  let dc_names = List.init spec.w_parts (Printf.sprintf "dc%d") in
  List.iter
    (fun name ->
      ignore
        (Deploy.add_dc d ~name
           {
             (* headroom for a version chain of a few max-size values
                on one cell, while small-value specs keep tiny pages so
                splits stay frequent *)
             Dc.page_capacity = max 192 (5 * (snd spec.w_value_len + 64));
             cache_pages = 8;
             sync_policy = Dc.Full_ablsn;
             tc_reset_mode = Dc.Selective;
             debug_checks = true;
           }))
    dc_names;
  List.iter
    (fun (table, versioned) ->
      if spec.w_indexed then
        Deploy.add_indexed_table d ~replicas:spec.w_replicas ~idx ~name:table
          ~versioned ~dcs:dc_names ~indexes ()
      else
        Deploy.add_partitioned_table d ~replicas:spec.w_replicas ~name:table
          ~versioned ~dcs:dc_names ())
    spec.w_tables;
  d

let run ?(seed = 0xB0B) spec =
  let counters = Instrument.create () in
  let idx = Index.create ~counters () in
  let d = make_deploy spec ~counters ~seed ~idx in
  let st =
    {
      spec;
      d;
      tc = Deploy.tc d "tc1";
      idx;
      rng = Rng.create ~seed;
      zipf =
        (if spec.w_theta > 0. then
           Some (Zipf.create ~n:spec.w_keyspace ~theta:spec.w_theta)
         else None);
      oracle = Hashtbl.create 4;
      committed = 0;
      aborted = 0;
      crashes = 0;
      checks = 0;
      violations = [];
    }
  in
  (* Copy-on-write fork state: [w_branch_at] forks the deployment at
     the stable LSN that fraction into the run; from then on every
     iteration also drives one branch transaction against the branch's
     own oracle (seeded from the parent's committed state at the fork),
     so divergence is differential on both sides. *)
  let branch = ref None in
  let br_oracle : oracle = Hashtbl.create 4 in
  let fork_lsn = ref Lsn.zero in
  let fork_snapshot = ref [] in
  let fork_at =
    Option.map
      (fun f -> int_of_float (f *. float_of_int spec.w_txns))
      spec.w_branch_at
  in
  let do_fork () =
    Deploy.quiesce st.d;
    Tc.force_log st.tc;
    let fork = Tc.stable_lsn st.tc in
    let b = Deploy.create_branch st.d ~from_lsn:fork ~name:"b" in
    fork_lsn := fork;
    fork_snapshot :=
      List.map (fun (t, _) -> (t, oracle_rows st.oracle t)) spec.w_tables;
    List.iter
      (fun (t, rows) ->
        let bt = oracle_table br_oracle t in
        List.iter (fun (k, v) -> Hashtbl.replace bt k v) rows)
      !fork_snapshot;
    branch := Some b
  in
  let run_branch_txn b i =
    let table, _ = List.hd spec.w_tables in
    let txn = Branch.begin_txn b in
    let staged : (string * string, string option) Hashtbl.t =
      Hashtbl.create 8
    in
    let abort_dead () =
      if Tc.is_active txn then
        Branch.abort b txn ~reason:"workload: branch txn over";
      st.aborted <- st.aborted + 1
    in
    let expect_ok label o =
      match o with
      | `Ok v -> v
      | (`Blocked | `Fail _) as o ->
        violation st
          (Printf.sprintf "%s: branch txn %d %s on %s came back %s"
             spec.w_name i label table (pp_outcome o));
        abort_dead ();
        raise Txn_over
    in
    try
      for _ = 1 to 1 + Rng.int st.rng 3 do
        let key = pick_key st in
        match view br_oracle staged table key with
        | None ->
          let value = gen_value spec st.rng in
          expect_ok "insert" (Branch.insert b txn ~table ~key ~value);
          Hashtbl.replace staged (table, key) (Some value)
        | Some current ->
          if Rng.chance st.rng spec.w_rmw_prob then begin
            let got = expect_ok "read" (Branch.read b txn ~table ~key) in
            check st
              (got = Some current)
              (Printf.sprintf
                 "%s: branch txn %d read %s/%s saw %s, oracle says %S"
                 spec.w_name i table key
                 (match got with
                 | Some v -> Printf.sprintf "%S" v
                 | None -> "None")
                 current);
            let value = gen_value spec st.rng in
            expect_ok "rmw-update" (Branch.update b txn ~table ~key ~value);
            Hashtbl.replace staged (table, key) (Some value)
          end
          else if Rng.chance st.rng 0.3 then begin
            expect_ok "delete" (Branch.delete b txn ~table ~key);
            Hashtbl.replace staged (table, key) None
          end
          else begin
            let value = gen_value spec st.rng in
            expect_ok "update" (Branch.update b txn ~table ~key ~value);
            Hashtbl.replace staged (table, key) (Some value)
          end
      done;
      if Rng.chance st.rng spec.w_abort_prob then begin
        Branch.abort b txn ~reason:"workload: deliberate branch abort";
        st.aborted <- st.aborted + 1
      end
      else begin
        match Branch.commit b txn with
        | `Ok () ->
          st.committed <- st.committed + 1;
          commit_staged br_oracle staged
        | (`Blocked | `Fail _) as o ->
          violation st
            (Printf.sprintf "%s: branch txn %d commit came back %s"
               spec.w_name i (pp_outcome o));
          st.aborted <- st.aborted + 1
      end
    with Txn_over -> ()
  in
  (* Scripted kills, spread evenly: crash j lands before transaction
     (j+1) * txns / (n+1), between transactions — unambiguous, so the
     oracle carries straight through recovery. *)
  let n_crashes = List.length spec.w_crashes in
  let crash_plan =
    List.mapi
      (fun j kind -> ((j + 1) * spec.w_txns / (n_crashes + 1), j, kind))
      spec.w_crashes
  in
  for i = 0 to spec.w_txns - 1 do
    (match fork_at with
    | Some at when at = i -> do_fork ()
    | _ -> ());
    List.iter
      (fun (at, j, kind) ->
        if at = i then
          match kind with
          | Crash_dc ->
            st.crashes <- st.crashes + 1;
            Deploy.crash_dc st.d (Printf.sprintf "dc%d" (j mod spec.w_parts))
          | Crash_tc ->
            st.crashes <- st.crashes + 1;
            Deploy.crash_tc st.d "tc1"
          | Crash_branch -> (
            match !branch with
            | Some _ ->
              st.crashes <- st.crashes + 1;
              Deploy.crash_branch_dc st.d "b"
            | None -> ()))
      crash_plan;
    run_txn st i;
    (match !branch with Some b -> run_branch_txn b i | None -> ());
    if Rng.chance st.rng spec.w_scan_prob then scan_check st;
    if spec.w_indexed && Rng.chance st.rng spec.w_lookup_prob then
      lookup_check st
  done;
  Deploy.quiesce st.d;
  final_parity st;
  (* Branch parity: the branch landed on its own oracle's exact state,
     and the shared prefix at the fork point still reads back — through
     the branch and through the parent — as the parent's oracle stood
     when the fork was cut. *)
  (match !branch with
  | None -> ()
  | Some b ->
    Branch.quiesce b;
    let durable = Branch.durable b in
    List.iter
      (fun (table, _) ->
        let expected = oracle_rows br_oracle table in
        let got = Branch.rows_at b ~table ~at:durable in
        check st (got = expected)
          (Printf.sprintf
             "%s: final branch state of %s (%d rows) diverges from the \
              branch oracle (%d rows)"
             spec.w_name table (List.length got) (List.length expected)))
      spec.w_tables;
    List.iter
      (fun (table, rows) ->
        List.iter
          (fun (key, v) ->
            check st
              (Branch.read_as_of b ~table ~key ~at:!fork_lsn = Some v)
              (Printf.sprintf
                 "%s: fork prefix of %s/%s through the branch lost %S"
                 spec.w_name table key v);
            check st
              (Deploy.read_as_of st.d ~table ~key ~at:!fork_lsn = Some v)
              (Printf.sprintf
                 "%s: fork prefix of %s/%s through the parent lost %S"
                 spec.w_name table key v))
          rows)
      !fork_snapshot);
  ( {
      r_name = spec.w_name;
      r_committed = st.committed;
      r_aborted = st.aborted;
      r_crashes = st.crashes;
      r_checks = st.checks;
      r_violations = List.rev st.violations;
    },
    {
      e_deploy = st.d;
      e_idx = st.idx;
      e_expected =
        List.map
          (fun (table, _) -> (table, oracle_rows st.oracle table))
          spec.w_tables;
    } )
