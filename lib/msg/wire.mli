(** Messages crossing the TC:DC boundary (the API of Section 4.2.1).

    Every interaction is serialized: requests, replies, control messages
    and control replies all travel as length-prefixed, checksummed byte
    frames ({!encode_request} and friends), so the boundary carries
    [bytes], never shared heap values.  Operation requests carry the
    unique request id (the TC-log LSN) that makes resend + idempotence
    work.  Control traffic ([end_of_stable_log], [low_water_mark],
    [checkpoint], [restart]) is governed by the same contracts: each
    control message is wrapped in a {!control_msg} envelope carrying a
    per-(TC, DC)-link session epoch and a unique control-sequence id;
    the TC resends unacknowledged control frames with backoff and the DC
    absorbs duplicates and reorderings through a per-TC control
    idempotence table, exactly as it does for data operations. *)

type request = {
  tc : Untx_util.Tc_id.t;
  lsn : Untx_util.Lsn.t;  (** unique request id, from the TC log *)
  part : int;
      (** partition id of the DC this operation was routed to.  The
          receiving DC rejects a request stamped for a different
          partition instead of silently applying it — a misrouted frame
          means the TC's partition map and the deployment disagree. *)
  op : Op.t;
}

type result =
  | Done  (** write acknowledged *)
  | Value of Op.value option  (** point read *)
  | Pairs of (Op.key * Op.value) list  (** scan *)
  | Next_keys of Op.key list  (** fetch-ahead probe *)
  | Failed of string  (** semantic error (e.g. duplicate insert) *)

type reply = {
  tc : Untx_util.Tc_id.t;
      (** the requesting TC, echoed back.  With M TCs every sender
          numbers its LSNs independently, so a reply that strays onto
          another TC's link would otherwise match that TC's own
          in-flight request; the receiver drops misattributed replies
          instead of absorbing them. *)
  lsn : Untx_util.Lsn.t;
  result : result;
  prior : Op.value option;
      (** for updates/deletes on unversioned tables: the value the
          operation replaced, which the TC logs as undo information *)
}

type control =
  | End_of_stable_log of { tc : Untx_util.Tc_id.t; eosl : Untx_util.Lsn.t }
  | Low_water_mark of { tc : Untx_util.Tc_id.t; lwm : Untx_util.Lsn.t }
  | Watermarks of {
      tc : Untx_util.Tc_id.t;
      eosl : Untx_util.Lsn.t;
      lwm : Untx_util.Lsn.t;
    }
      (** the combined form Section 4.2.1 suggests: "one might trade some
          flexibility in DC for simplicity of coding, by combining
          end_of_stable_log and low_water_mark into one function" *)
  | Checkpoint of { tc : Untx_util.Tc_id.t; new_rssp : Untx_util.Lsn.t }
  | Restart_begin of {
      tc : Untx_util.Tc_id.t;
      stable_lsn : Untx_util.Lsn.t;
          (** the largest LSN on the TC's stable log; the DC must discard
              any effect of this TC's operations beyond it *)
    }
  | Restart_end of { tc : Untx_util.Tc_id.t }
  | Redo_fence_begin of { tc : Untx_util.Tc_id.t }
      (** A TC is about to replay history (e.g. after this DC's own
          crash): the DC defers page-delete system transactions, whose
          abstract-LSN merges assume globally valid low-water claims. *)
  | Redo_fence_end of { tc : Untx_util.Tc_id.t }

type control_reply =
  | Ack
  | Checkpoint_done of { granted : bool }
      (** [granted = false]: some page holding operations below the
          requested redo-scan start point could not be made stable yet;
          the TC must keep its old RSSP and retry later *)

type control_msg = { c_epoch : int; c_seq : int; c_ctl : control }
(** The control-channel envelope.  [c_seq] is the unique, densely
    increasing id of this message on its (TC, DC) link — the control
    analogue of a request LSN.  [c_epoch] identifies the control
    session: the TC starts a new epoch when either end of the link
    restarts, which invalidates every frame of the old session still in
    flight (a stale pre-crash watermark must not be applied to
    freshly-reset state). *)

type control_reply_msg = {
  r_tc : Untx_util.Tc_id.t;
      (** the TC whose session this ack belongs to — acks are keyed
          [(tc, epoch, seq)], not bare [(epoch, seq)], because every
          TC's sender starts at (epoch 1, seq 1) *)
  r_epoch : int;
  r_seq : int;  (** echo of the request's envelope, for TC-side matching *)
  r_reply : control_reply;
}

val control_tc : control -> Untx_util.Tc_id.t
(** The TC a control message speaks for (every variant carries one). *)

(** {2 Replication}

    The third channel: a primary's TC continuously ships its stable log
    to warm standbys.  Repl traffic travels under the same epoch/seq
    contract sessions as control traffic ({!Session}). *)

type repl =
  | Repl_hello of { tc : Untx_util.Tc_id.t }
      (** Open or resume a session.  The standby's ack carries its exact
          applied LSN, so a rejoining sender ships only the missing
          suffix instead of rebuilding the replica. *)
  | Repl_ship of {
      tc : Untx_util.Tc_id.t;
      eosl : Untx_util.Lsn.t;
          (** the sender's end-of-stable-log, shipped in-band so the
              standby's page cache obeys the same causality rule as the
              primary's *)
      lwm : Untx_util.Lsn.t;
      upto : Untx_util.Lsn.t;
          (** the batch covers the stable-log range up to here; [ops]
              may skip LSNs (reads are never logged), so the standby
              advances its applied LSN to [upto], not to the last
              listed record *)
      ops : (Untx_util.Lsn.t * Op.t) list;
    }

type repl_reply = Repl_ack of { applied : Untx_util.Lsn.t }
(** The standby's cumulative applied LSN — the sender's replication
    low-water mark derives from the minimum of these across replicas. *)

type repl_msg = { p_epoch : int; p_seq : int; p_repl : repl }

type repl_reply_msg = {
  q_tc : Untx_util.Tc_id.t;
      (** the shipping TC whose session this ack belongs to (same
          [(tc, epoch, seq)] keying as control acks) *)
  q_epoch : int;
  q_seq : int;
  q_reply : repl_reply;
}

val repl_tc : repl -> Untx_util.Tc_id.t

(** {2 Frames}

    [encode_*] produce self-contained binary frames: a kind byte, a
    4-byte big-endian trace id ([?tid], default 0 = untraced), a 4-byte
    big-endian payload length, the payload (a {!Untx_util.Codec} field
    list), and a 4-byte FNV-1a checksum.  [decode_*] raise
    [Invalid_argument] on anything malformed — wrong kind, bad length,
    checksum mismatch, unparseable payload — and never return a
    silently wrong value. *)

val encode_request : ?tid:int -> request -> string

val decode_request : string -> request

val encode_reply : ?tid:int -> reply -> string

val decode_reply : string -> reply

val encode_control : ?tid:int -> control_msg -> string

val decode_control : string -> control_msg

val encode_control_reply : ?tid:int -> control_reply_msg -> string

val decode_control_reply : string -> control_reply_msg

val encode_repl : ?tid:int -> repl_msg -> string

val decode_repl : string -> repl_msg

val encode_repl_reply : ?tid:int -> repl_reply_msg -> string

val decode_repl_reply : string -> repl_reply_msg

val frame_ok : string -> bool
(** Structural + checksum validation without a full decode — what a
    receiving endpoint checks before accepting a frame.  A frame that
    fails this test is dropped by the transport (and the sender's
    resend path carries it). *)

val frame_tid : string -> int
(** The trace id a valid frame carries; [0] for an untraced frame or
    any string that fails {!frame_ok}.  The id sits inside the
    checksummed region, so corruption can invalidate a frame but never
    reattribute it to another trace. *)

val request_size : request -> int
(** The exact encoded frame length of the request — measured from the
    codec, not estimated. *)

val pp_result : Format.formatter -> result -> unit

val pp_request : Format.formatter -> request -> unit

val pp_control : Format.formatter -> control -> unit

val pp_repl : Format.formatter -> repl -> unit

val pp_repl_reply : Format.formatter -> repl_reply -> unit
