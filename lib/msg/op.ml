type key = string

type value = string

type read_mode = Own | Committed | Dirty

type t =
  | Insert of { table : string; key : key; value : value }
  | Update of { table : string; key : key; value : value }
  | Delete of { table : string; key : key }
  | Read of { table : string; key : key; mode : read_mode }
  | Scan of { table : string; from_key : key; limit : int; mode : read_mode }
  | Probe of { table : string; from_key : key; limit : int }
  | Commit_versions of { table : string; keys : key list }
  | Abort_versions of { table : string; keys : key list }

let is_read = function
  | Read _ | Scan _ | Probe _ -> true
  | Insert _ | Update _ | Delete _ | Commit_versions _ | Abort_versions _ ->
    false

let table = function
  | Insert { table; _ }
  | Update { table; _ }
  | Delete { table; _ }
  | Read { table; _ }
  | Scan { table; _ }
  | Probe { table; _ }
  | Commit_versions { table; _ }
  | Abort_versions { table; _ } -> table

(* The key footprint of an operation: [`Points keys] for enumerable
   footprints, [`Range from_key] for open-ended scans. *)
let footprint = function
  | Insert { key; _ } | Update { key; _ } | Delete { key; _ }
  | Read { key; _ } -> `Points [ key ]
  | Scan { from_key; _ } | Probe { from_key; _ } -> `Range from_key
  | Commit_versions { keys; _ } | Abort_versions { keys; _ } -> `Points keys

let overlap a b =
  match (footprint a, footprint b) with
  | `Points ka, `Points kb -> List.exists (fun k -> List.mem k kb) ka
  | `Range _, `Range _ -> true
  | `Range from_key, `Points keys | `Points keys, `Range from_key ->
    List.exists (fun k -> String.compare k from_key >= 0) keys

let conflicts a b =
  String.equal (table a) (table b)
  && (not (is_read a && is_read b))
  && overlap a b

let pp_mode ppf = function
  | Own -> Format.pp_print_string ppf "own"
  | Committed -> Format.pp_print_string ppf "committed"
  | Dirty -> Format.pp_print_string ppf "dirty"

let pp ppf = function
  | Insert { table; key; value } ->
    Format.fprintf ppf "insert %s[%s]=%S" table key value
  | Update { table; key; value } ->
    Format.fprintf ppf "update %s[%s]=%S" table key value
  | Delete { table; key } -> Format.fprintf ppf "delete %s[%s]" table key
  | Read { table; key; mode } ->
    Format.fprintf ppf "read(%a) %s[%s]" pp_mode mode table key
  | Scan { table; from_key; limit; mode } ->
    Format.fprintf ppf "scan(%a) %s from %s limit %d" pp_mode mode table
      from_key limit
  | Probe { table; from_key; limit } ->
    Format.fprintf ppf "probe %s from %s limit %d" table from_key limit
  | Commit_versions { table; keys } ->
    Format.fprintf ppf "commit-versions %s (%d keys)" table (List.length keys)
  | Abort_versions { table; keys } ->
    Format.fprintf ppf "abort-versions %s (%d keys)" table (List.length keys)

(* Field-list serialization, used by the wire codec.  A one-character
   tag picks the constructor; every other field is an arbitrary byte
   string (the surrounding codec length-prefixes them). *)

let mode_tag = function Own -> "o" | Committed -> "c" | Dirty -> "d"

let mode_of_tag = function
  | "o" -> Own
  | "c" -> Committed
  | "d" -> Dirty
  | _ -> invalid_arg "Op.of_fields: bad read mode"

let int_of_field f =
  match int_of_string_opt f with
  | Some i when i >= 0 -> i
  | _ -> invalid_arg "Op.of_fields: bad int field"

let to_fields = function
  | Insert { table; key; value } -> [ "I"; table; key; value ]
  | Update { table; key; value } -> [ "U"; table; key; value ]
  | Delete { table; key } -> [ "D"; table; key ]
  | Read { table; key; mode } -> [ "R"; table; key; mode_tag mode ]
  | Scan { table; from_key; limit; mode } ->
    [ "S"; table; from_key; string_of_int limit; mode_tag mode ]
  | Probe { table; from_key; limit } ->
    [ "P"; table; from_key; string_of_int limit ]
  | Commit_versions { table; keys } -> "V" :: table :: keys
  | Abort_versions { table; keys } -> "A" :: table :: keys

let of_fields = function
  | [ "I"; table; key; value ] -> Insert { table; key; value }
  | [ "U"; table; key; value ] -> Update { table; key; value }
  | [ "D"; table; key ] -> Delete { table; key }
  | [ "R"; table; key; m ] -> Read { table; key; mode = mode_of_tag m }
  | [ "S"; table; from_key; limit; m ] ->
    Scan { table; from_key; limit = int_of_field limit; mode = mode_of_tag m }
  | [ "P"; table; from_key; limit ] ->
    Probe { table; from_key; limit = int_of_field limit }
  | "V" :: table :: keys -> Commit_versions { table; keys }
  | "A" :: table :: keys -> Abort_versions { table; keys }
  | _ -> invalid_arg "Op.of_fields: bad operation"

let size op =
  let base = 16 in
  match op with
  | Insert { table; key; value } | Update { table; key; value } ->
    base + String.length table + String.length key + String.length value
  | Delete { table; key } -> base + String.length table + String.length key
  | Read { table; key; _ } -> base + String.length table + String.length key
  | Scan { table; from_key; _ } | Probe { table; from_key; _ } ->
    base + String.length table + String.length from_key
  | Commit_versions { table; keys } | Abort_versions { table; keys } ->
    base + String.length table
    + List.fold_left (fun acc k -> acc + String.length k) 0 keys
