module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Codec = Untx_util.Codec

type request = { tc : Tc_id.t; lsn : Lsn.t; part : int; op : Op.t }

type result =
  | Done
  | Value of Op.value option
  | Pairs of (Op.key * Op.value) list
  | Next_keys of Op.key list
  | Failed of string

(* Replies are stamped with the TC id of the request they answer, for
   the same reason requests carry a partition id: with M TCs every
   sender numbers its session from (epoch 1, seq 1), so an ack that
   strays onto another TC's link is otherwise indistinguishable from
   that TC's own.  The receiver guards drop misattributed acks loudly
   instead of absorbing them. *)
type reply = { tc : Tc_id.t; lsn : Lsn.t; result : result; prior : Op.value option }

type control =
  | End_of_stable_log of { tc : Tc_id.t; eosl : Lsn.t }
  | Low_water_mark of { tc : Tc_id.t; lwm : Lsn.t }
  | Watermarks of { tc : Tc_id.t; eosl : Lsn.t; lwm : Lsn.t }
  | Checkpoint of { tc : Tc_id.t; new_rssp : Lsn.t }
  | Restart_begin of { tc : Tc_id.t; stable_lsn : Lsn.t }
  | Restart_end of { tc : Tc_id.t }
  | Redo_fence_begin of { tc : Tc_id.t }
  | Redo_fence_end of { tc : Tc_id.t }

type control_reply = Ack | Checkpoint_done of { granted : bool }

type control_msg = { c_epoch : int; c_seq : int; c_ctl : control }

type control_reply_msg = {
  r_tc : Tc_id.t;  (* the TC whose session this ack belongs to *)
  r_epoch : int;
  r_seq : int;
  r_reply : control_reply;
}

(* Replication traffic (the third channel).  [Repl_hello] opens or
   resumes a session: the standby answers with its exact applied LSN so
   a rejoining sender ships only the missing suffix.  [Repl_ship]
   carries a batch of stable-log records covering the LSN range up to
   [upto] (reads are never logged, so the list may skip LSNs), plus the
   sender's current watermarks so the standby's cache obeys the same
   causality rule as the primary's. *)
type repl =
  | Repl_hello of { tc : Tc_id.t }
  | Repl_ship of {
      tc : Tc_id.t;
      eosl : Lsn.t;
      lwm : Lsn.t;
      upto : Lsn.t;
      ops : (Lsn.t * Op.t) list;
    }

type repl_reply = Repl_ack of { applied : Lsn.t }

type repl_msg = { p_epoch : int; p_seq : int; p_repl : repl }

type repl_reply_msg = {
  q_tc : Tc_id.t;  (* the shipping TC whose session this ack belongs to *)
  q_epoch : int;
  q_seq : int;
  q_reply : repl_reply;
}

let repl_tc = function Repl_hello { tc } | Repl_ship { tc; _ } -> tc

let control_tc = function
  | End_of_stable_log { tc; _ }
  | Low_water_mark { tc; _ }
  | Watermarks { tc; _ }
  | Checkpoint { tc; _ }
  | Restart_begin { tc; _ }
  | Restart_end { tc }
  | Redo_fence_begin { tc }
  | Redo_fence_end { tc } -> tc

(* ------------------------------------------------------------------ *)
(* Frames.

   Layout: 1 kind byte, 4-byte big-endian trace id, 4-byte big-endian
   payload length, payload, 4-byte big-endian FNV-1a checksum over
   everything before it.  The payload is a {!Untx_util.Codec} field
   list, so the whole frame is binary-safe and self-delimiting; any
   mutation — including one that lands on the trace id — is caught by
   the structure checks or the checksum and surfaces as
   [Invalid_argument].  Trace id 0 means "untraced". *)

let header_len = 9

let trailer_len = 4

let fnv32 s lo hi =
  let h = ref 0x811c9dc5 in
  for i = lo to hi - 1 do
    h := !h lxor Char.code (String.unsafe_get s i);
    h := !h * 0x01000193 land 0xFFFFFFFF
  done;
  !h

let put_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame ?(tid = 0) kind payload =
  let len = String.length payload in
  let b = Bytes.create (header_len + len + trailer_len) in
  Bytes.set b 0 kind;
  put_u32 b 1 (tid land 0xFFFFFFFF);
  put_u32 b 5 len;
  Bytes.blit_string payload 0 b header_len len;
  let body = Bytes.sub_string b 0 (header_len + len) in
  put_u32 b (header_len + len) (fnv32 body 0 (header_len + len));
  Bytes.unsafe_to_string b

let frame_kind s =
  let n = String.length s in
  if n < header_len + trailer_len then None
  else
    let len = get_u32 s 5 in
    if n <> header_len + len + trailer_len then None
    else if get_u32 s (header_len + len) <> fnv32 s 0 (header_len + len) then
      None
    else
      match s.[0] with
      | 'Q' -> Some `Request
      | 'R' -> Some `Reply
      | 'C' -> Some `Control
      | 'K' -> Some `Control_reply
      | 'S' -> Some `Repl
      | 'T' -> Some `Repl_reply
      | _ -> None

let frame_ok s = frame_kind s <> None

(* Validates the whole frame first: a corrupted trace id fails the
   checksum and reads as 0 ("untraced") rather than as some other
   operation's id. *)
let frame_tid s = if frame_ok s then get_u32 s 1 else 0

let unframe kind s =
  match frame_kind s with
  | Some k when k = kind -> String.sub s header_len (get_u32 s 5)
  | _ -> invalid_arg "Wire: bad frame"

(* ---- field helpers ---- *)

let int_field = string_of_int

let int_of_field f =
  match int_of_string_opt f with
  | Some i when i >= 0 -> i
  | _ -> invalid_arg "Wire: bad int field"

let lsn_of_field f = Lsn.of_int (int_of_field f)

let tc_of_field f = Tc_id.of_int (int_of_field f)

let opt_field = function None -> "-" | Some v -> "+" ^ v

let opt_of_field f =
  if String.equal f "-" then None
  else if String.length f >= 1 && f.[0] = '+' then
    Some (String.sub f 1 (String.length f - 1))
  else invalid_arg "Wire: bad option field"

(* ---- requests ---- *)

let encode_request ?tid { tc; lsn; part; op } =
  frame ?tid 'Q'
    (Codec.encode
       (int_field (Tc_id.to_int tc)
       :: int_field (Lsn.to_int lsn)
       :: int_field part
       :: Op.to_fields op))

let decode_request s =
  match Codec.decode (unframe `Request s) with
  | tc :: lsn :: part :: op_fields ->
    {
      tc = tc_of_field tc;
      lsn = lsn_of_field lsn;
      part = int_of_field part;
      op = Op.of_fields op_fields;
    }
  | _ -> invalid_arg "Wire.decode_request"

(* ---- replies ---- *)

let result_fields = function
  | Done -> [ "D" ]
  | Value v -> [ "V"; opt_field v ]
  | Pairs ps -> "P" :: List.concat_map (fun (k, v) -> [ k; v ]) ps
  | Next_keys ks -> "N" :: ks
  | Failed m -> [ "F"; m ]

let result_of_fields = function
  | [ "D" ] -> Done
  | [ "V"; v ] -> Value (opt_of_field v)
  | "P" :: rest ->
    let rec pairs = function
      | [] -> []
      | k :: v :: tl -> (k, v) :: pairs tl
      | [ _ ] -> invalid_arg "Wire: odd pair list"
    in
    Pairs (pairs rest)
  | "N" :: ks -> Next_keys ks
  | [ "F"; m ] -> Failed m
  | _ -> invalid_arg "Wire: bad result"

let encode_reply ?tid { tc; lsn; result; prior } =
  frame ?tid 'R'
    (Codec.encode
       (int_field (Tc_id.to_int tc)
       :: int_field (Lsn.to_int lsn)
       :: opt_field prior :: result_fields result))

let decode_reply s =
  match Codec.decode (unframe `Reply s) with
  | tc :: lsn :: prior :: rest ->
    {
      tc = tc_of_field tc;
      lsn = lsn_of_field lsn;
      prior = opt_of_field prior;
      result = result_of_fields rest;
    }
  | _ -> invalid_arg "Wire.decode_reply"

(* ---- control ---- *)

let control_fields ctl =
  let tc_f tc = int_field (Tc_id.to_int tc) in
  let lsn_f l = int_field (Lsn.to_int l) in
  match ctl with
  | End_of_stable_log { tc; eosl } -> [ "E"; tc_f tc; lsn_f eosl ]
  | Low_water_mark { tc; lwm } -> [ "L"; tc_f tc; lsn_f lwm ]
  | Watermarks { tc; eosl; lwm } -> [ "W"; tc_f tc; lsn_f eosl; lsn_f lwm ]
  | Checkpoint { tc; new_rssp } -> [ "C"; tc_f tc; lsn_f new_rssp ]
  | Restart_begin { tc; stable_lsn } -> [ "RB"; tc_f tc; lsn_f stable_lsn ]
  | Restart_end { tc } -> [ "RE"; tc_f tc ]
  | Redo_fence_begin { tc } -> [ "FB"; tc_f tc ]
  | Redo_fence_end { tc } -> [ "FE"; tc_f tc ]

let control_of_fields = function
  | [ "E"; tc; eosl ] ->
    End_of_stable_log { tc = tc_of_field tc; eosl = lsn_of_field eosl }
  | [ "L"; tc; lwm ] ->
    Low_water_mark { tc = tc_of_field tc; lwm = lsn_of_field lwm }
  | [ "W"; tc; eosl; lwm ] ->
    Watermarks
      { tc = tc_of_field tc; eosl = lsn_of_field eosl; lwm = lsn_of_field lwm }
  | [ "C"; tc; rssp ] ->
    Checkpoint { tc = tc_of_field tc; new_rssp = lsn_of_field rssp }
  | [ "RB"; tc; stable ] ->
    Restart_begin { tc = tc_of_field tc; stable_lsn = lsn_of_field stable }
  | [ "RE"; tc ] -> Restart_end { tc = tc_of_field tc }
  | [ "FB"; tc ] -> Redo_fence_begin { tc = tc_of_field tc }
  | [ "FE"; tc ] -> Redo_fence_end { tc = tc_of_field tc }
  | _ -> invalid_arg "Wire: bad control"

let encode_control ?tid { c_epoch; c_seq; c_ctl } =
  frame ?tid 'C'
    (Codec.encode
       (int_field c_epoch :: int_field c_seq :: control_fields c_ctl))

let decode_control s =
  match Codec.decode (unframe `Control s) with
  | epoch :: seq :: rest ->
    {
      c_epoch = int_of_field epoch;
      c_seq = int_of_field seq;
      c_ctl = control_of_fields rest;
    }
  | _ -> invalid_arg "Wire.decode_control"

let control_reply_fields = function
  | Ack -> [ "A" ]
  | Checkpoint_done { granted } -> [ "G"; (if granted then "1" else "0") ]

let control_reply_of_fields = function
  | [ "A" ] -> Ack
  | [ "G"; "1" ] -> Checkpoint_done { granted = true }
  | [ "G"; "0" ] -> Checkpoint_done { granted = false }
  | _ -> invalid_arg "Wire: bad control reply"

let encode_control_reply ?tid { r_tc; r_epoch; r_seq; r_reply } =
  frame ?tid 'K'
    (Codec.encode
       (int_field (Tc_id.to_int r_tc)
       :: int_field r_epoch :: int_field r_seq
       :: control_reply_fields r_reply))

let decode_control_reply s =
  match Codec.decode (unframe `Control_reply s) with
  | tc :: epoch :: seq :: rest ->
    {
      r_tc = tc_of_field tc;
      r_epoch = int_of_field epoch;
      r_seq = int_of_field seq;
      r_reply = control_reply_of_fields rest;
    }
  | _ -> invalid_arg "Wire.decode_control_reply"

(* ---- replication ---- *)

(* Each shipped record nests as one Codec blob (lsn :: op fields), so a
   batch of any size stays a flat field list at the envelope level. *)
let repl_fields = function
  | Repl_hello { tc } -> [ "H"; int_field (Tc_id.to_int tc) ]
  | Repl_ship { tc; eosl; lwm; upto; ops } ->
    "S"
    :: int_field (Tc_id.to_int tc)
    :: int_field (Lsn.to_int eosl)
    :: int_field (Lsn.to_int lwm)
    :: int_field (Lsn.to_int upto)
    :: List.map
         (fun (lsn, op) ->
           Codec.encode (int_field (Lsn.to_int lsn) :: Op.to_fields op))
         ops

let repl_of_fields = function
  | [ "H"; tc ] -> Repl_hello { tc = tc_of_field tc }
  | "S" :: tc :: eosl :: lwm :: upto :: blobs ->
    let op_of_blob blob =
      match Codec.decode blob with
      | lsn :: op_fields -> (lsn_of_field lsn, Op.of_fields op_fields)
      | [] -> invalid_arg "Wire: empty shipped record"
    in
    Repl_ship
      {
        tc = tc_of_field tc;
        eosl = lsn_of_field eosl;
        lwm = lsn_of_field lwm;
        upto = lsn_of_field upto;
        ops = List.map op_of_blob blobs;
      }
  | _ -> invalid_arg "Wire: bad repl"

let encode_repl ?tid { p_epoch; p_seq; p_repl } =
  frame ?tid 'S'
    (Codec.encode (int_field p_epoch :: int_field p_seq :: repl_fields p_repl))

let decode_repl s =
  match Codec.decode (unframe `Repl s) with
  | epoch :: seq :: rest ->
    {
      p_epoch = int_of_field epoch;
      p_seq = int_of_field seq;
      p_repl = repl_of_fields rest;
    }
  | _ -> invalid_arg "Wire.decode_repl"

let repl_reply_fields = function
  | Repl_ack { applied } -> [ "A"; int_field (Lsn.to_int applied) ]

let repl_reply_of_fields = function
  | [ "A"; applied ] -> Repl_ack { applied = lsn_of_field applied }
  | _ -> invalid_arg "Wire: bad repl reply"

let encode_repl_reply ?tid { q_tc; q_epoch; q_seq; q_reply } =
  frame ?tid 'T'
    (Codec.encode
       (int_field (Tc_id.to_int q_tc)
       :: int_field q_epoch :: int_field q_seq
       :: repl_reply_fields q_reply))

let decode_repl_reply s =
  match Codec.decode (unframe `Repl_reply s) with
  | tc :: epoch :: seq :: rest ->
    {
      q_tc = tc_of_field tc;
      q_epoch = int_of_field epoch;
      q_seq = int_of_field seq;
      q_reply = repl_reply_of_fields rest;
    }
  | _ -> invalid_arg "Wire.decode_repl_reply"

(* The real size of a request on the wire — what the transport's byte
   accounting charges, not an estimate. *)
let request_size r = String.length (encode_request r)

let pp_result ppf = function
  | Done -> Format.pp_print_string ppf "done"
  | Value None -> Format.pp_print_string ppf "value:none"
  | Value (Some v) -> Format.fprintf ppf "value:%S" v
  | Pairs ps -> Format.fprintf ppf "pairs:%d" (List.length ps)
  | Next_keys ks -> Format.fprintf ppf "next-keys:%d" (List.length ks)
  | Failed msg -> Format.fprintf ppf "failed:%s" msg

let pp_request ppf { tc; lsn; part; op } =
  Format.fprintf ppf "[%a %a p%d] %a" Tc_id.pp tc Lsn.pp lsn part Op.pp op

let pp_control ppf = function
  | End_of_stable_log { tc; eosl } ->
    Format.fprintf ppf "eosl %a %a" Tc_id.pp tc Lsn.pp eosl
  | Low_water_mark { tc; lwm } ->
    Format.fprintf ppf "lwm %a %a" Tc_id.pp tc Lsn.pp lwm
  | Watermarks { tc; eosl; lwm } ->
    Format.fprintf ppf "watermarks %a eosl=%a lwm=%a" Tc_id.pp tc Lsn.pp eosl
      Lsn.pp lwm
  | Checkpoint { tc; new_rssp } ->
    Format.fprintf ppf "checkpoint %a rssp=%a" Tc_id.pp tc Lsn.pp new_rssp
  | Restart_begin { tc; stable_lsn } ->
    Format.fprintf ppf "restart-begin %a stable=%a" Tc_id.pp tc Lsn.pp
      stable_lsn
  | Restart_end { tc } -> Format.fprintf ppf "restart-end %a" Tc_id.pp tc
  | Redo_fence_begin { tc } ->
    Format.fprintf ppf "redo-fence-begin %a" Tc_id.pp tc
  | Redo_fence_end { tc } -> Format.fprintf ppf "redo-fence-end %a" Tc_id.pp tc

let pp_repl ppf = function
  | Repl_hello { tc } -> Format.fprintf ppf "repl-hello %a" Tc_id.pp tc
  | Repl_ship { tc; eosl; lwm; upto; ops } ->
    Format.fprintf ppf "repl-ship %a eosl=%a lwm=%a upto=%a ops=%d" Tc_id.pp tc
      Lsn.pp eosl Lsn.pp lwm Lsn.pp upto (List.length ops)

let pp_repl_reply ppf = function
  | Repl_ack { applied } ->
    Format.fprintf ppf "repl-ack applied=%a" Lsn.pp applied
