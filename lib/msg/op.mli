(** Logical (record-oriented) operations: the only vocabulary the TC may
    use when talking to a DC.  Nothing here mentions pages.

    Reads carry a {!read_mode} because a TC reading data owned by another
    TC must use a different flavour of read (Section 6.2): [Own] sees the
    current (possibly uncommitted-by-this-TC) record, [Committed] sees
    the before-version of versioned records, [Dirty] sees current values
    with no guarantees.

    [Commit_versions]/[Abort_versions] are the version housekeeping
    operations of Section 6.2.2: on commit the updating TC eliminates
    before-versions; on abort it reinstates them. *)

type key = string

type value = string

type read_mode = Own | Committed | Dirty

type t =
  | Insert of { table : string; key : key; value : value }
  | Update of { table : string; key : key; value : value }
  | Delete of { table : string; key : key }
  | Read of { table : string; key : key; mode : read_mode }
  | Scan of { table : string; from_key : key; limit : int; mode : read_mode }
  | Probe of { table : string; from_key : key; limit : int }
      (** Fetch-ahead protocol, Section 3.1: return the next keys in
          order so the TC can lock them before reading. *)
  | Commit_versions of { table : string; keys : key list }
  | Abort_versions of { table : string; keys : key list }

val is_read : t -> bool
(** Reads and probes: never logged, never redone. *)

val table : t -> string

val conflicts : t -> t -> bool
(** Whether the two operations may not execute concurrently at a DC:
    same table, overlapping key footprint, at least one writer.  The TC
    enforces this before dispatch; the kernel asserts it in debug. *)

val pp : Format.formatter -> t -> unit

val to_fields : t -> string list
(** Serialize to a field list for the wire codec: a constructor tag
    followed by the payload fields.  [of_fields (to_fields op) = op]. *)

val of_fields : string list -> t
(** Raises [Invalid_argument] on any malformed field list. *)

val size : t -> int
(** Encoded size in bytes, for log-volume accounting. *)
