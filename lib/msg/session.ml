(* Per-link epoch/seq contract sessions, factored out of the TC's
   control-pending table and the DC's control-idempotence table so the
   replication channel is not a third hand-rolled copy.

   A session pairs a Sender (unique densely-increasing seqs under an
   epoch, cached frames resent with bounded exponential backoff, acks
   matched against pendings, awaited replies parked for a caller) with a
   Receiver (stale-epoch discard, newer-epoch adoption, strictly
   in-order apply with out-of-order buffering, and a bounded memo of
   replies so duplicates are answered without re-applying).

   The module is deliberately counter-free: callers translate the
   returned outcomes into their own Instrument names ("tc.control_*",
   "dc.control_*", "repl.*"), keeping accounting where it is read. *)

module Sender = struct
  type 'reply pending = {
    p_seq : int;
    p_frame : string;
    mutable p_age : int;
    mutable p_backoff : int;
    mutable p_retries : int;
    p_awaited : bool;
  }

  type 'reply t = {
    mutable epoch : int;
    mutable next_seq : int;
    pending : (int, 'reply pending) Hashtbl.t;
    replies : (int, 'reply) Hashtbl.t; (* awaited replies parked by ack *)
  }

  let create () =
    { epoch = 1; next_seq = 1; pending = Hashtbl.create 16; replies = Hashtbl.create 8 }

  let epoch t = t.epoch

  let unacked t = Hashtbl.length t.pending

  (* Allocate the next seq, cache the encoded frame (every resend puts
     identical bytes on the wire), send.  Returns the seq the caller can
     later pass to [take_reply] when [awaited]. *)
  let post t ?(awaited = false) ~backoff ~encode ~send () =
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let frame = encode ~epoch:t.epoch ~seq in
    Hashtbl.replace t.pending seq
      {
        p_seq = seq;
        p_frame = frame;
        p_age = 0;
        p_backoff = backoff;
        p_retries = 0;
        p_awaited = awaited;
      };
    send frame;
    seq

  (* Match an acknowledgement against the session: stale epochs and
     duplicate acks return [false]; a first ack retires the pending and,
     when awaited, parks the reply. *)
  let ack t ~epoch ~seq reply =
    if epoch <> t.epoch then false
    else
      match Hashtbl.find_opt t.pending seq with
      | None -> false
      | Some p ->
        Hashtbl.remove t.pending seq;
        if p.p_awaited then Hashtbl.replace t.replies seq reply;
        true

  let has_reply t seq = Hashtbl.mem t.replies seq

  let take_reply t seq =
    match Hashtbl.find_opt t.replies seq with
    | None -> None
    | Some r ->
      Hashtbl.remove t.replies seq;
      Some r

  (* One backoff tick over every pending: stale ones are resent through
     [on_resend] with doubled (bounded) backoff; one that exhausts its
     retry budget goes to [on_timeout], which is expected to raise. *)
  let tick t ~backoff_max ~max_retries ~on_resend ~on_timeout =
    Hashtbl.iter
      (fun _ p ->
        p.p_age <- p.p_age + 1;
        if p.p_age >= p.p_backoff then begin
          if p.p_retries >= max_retries then on_timeout ~seq:p.p_seq ~retries:p.p_retries;
          p.p_age <- 0;
          p.p_retries <- p.p_retries + 1;
          p.p_backoff <- Stdlib.min (2 * p.p_backoff) backoff_max;
          on_resend ~seq:p.p_seq p.p_frame
        end)
      t.pending

  (* Drop all session state (the pendings died with a crash, or a new
     epoch voids them).  Returns how many pendings were dropped so the
     caller can keep its unacked gauge honest. *)
  let clear t =
    let n = Hashtbl.length t.pending in
    Hashtbl.reset t.pending;
    Hashtbl.reset t.replies;
    n

  (* Open a fresh session: frames of the old epoch still in flight
     (either direction) become stale, and the receiver resets its
     applied-sequence state on first contact. *)
  let new_epoch t =
    t.epoch <- t.epoch + 1;
    t.next_seq <- 1;
    clear t
end

module Receiver = struct
  type ('msg, 'reply) t = {
    mutable epoch : int;
    mutable applied : int; (* highest seq applied, contiguous *)
    replies : (int, 'reply) Hashtbl.t; (* seq -> memoized reply *)
    buffer : (int, 'msg) Hashtbl.t; (* out-of-order arrivals *)
    memo_window : int;
  }

  (* Keep memoized replies for a window of recent seqs: a duplicate can
     only be a recently-resent frame, and the sender stops resending a
     seq once any reply for it arrives. *)
  let create ?(memo_window = 1024) () =
    {
      epoch = 0;
      (* so the sender's first real epoch (1+) is adopted on contact *)
      applied = 0;
      replies = Hashtbl.create 32;
      buffer = Hashtbl.create 8;
      memo_window;
    }

  let epoch t = t.epoch

  let applied t = t.applied

  type 'reply outcome =
    | Stale  (** dead epoch: drop, no reply (nothing awaits it) *)
    | Replayed of 'reply  (** duplicate, answered from the memo *)
    | Buffered  (** ahead of turn: parked, no reply until the gap fills *)
    | Applied of 'reply  (** applied in turn; buffered successors drained *)

  (* The receiving half of the contract.  [apply seq msg] runs the
     caller's state change for an in-turn message and returns its reply;
     it also runs for each buffered successor the message releases,
     whose replies are only memoized (the sender's resend of each will
     collect them via the duplicate path).  [fallback] answers a
     duplicate whose memo slid out of the window — long since settled. *)
  let handle t ~epoch ~seq msg ~apply ~fallback =
    if epoch < t.epoch then Stale
    else begin
      if epoch > t.epoch then begin
        (* The link restarted: sequence numbering begins again at 1 and
           everything memoized for the old session is void. *)
        t.epoch <- epoch;
        t.applied <- 0;
        Hashtbl.reset t.replies;
        Hashtbl.reset t.buffer
      end;
      if seq <= t.applied then
        Replayed
          (match Hashtbl.find_opt t.replies seq with
          | Some r -> r
          | None -> fallback)
      else if seq > t.applied + 1 then begin
        Hashtbl.replace t.buffer seq msg;
        Buffered
      end
      else begin
        let run seq msg =
          let r = apply seq msg in
          (* [apply] may reset wider component state (a complete
             restart); the session record survives it, so this update
             lands on live state. *)
          t.applied <- seq;
          Hashtbl.replace t.replies seq r;
          Hashtbl.remove t.replies (seq - t.memo_window);
          r
        in
        let first = run seq msg in
        let rec drain () =
          let next = t.applied + 1 in
          match Hashtbl.find_opt t.buffer next with
          | Some msg ->
            Hashtbl.remove t.buffer next;
            ignore (run next msg);
            drain ()
          | None -> ()
        in
        drain ();
        Applied first
      end
    end

  let reset t =
    t.epoch <- 0;
    t.applied <- 0;
    Hashtbl.reset t.replies;
    Hashtbl.reset t.buffer
end
