(** Per-link epoch/seq contract sessions.

    The control channel (PR 2) and the replication channel both govern
    their traffic with the same contract: every message carries a
    densely-increasing sequence number under a session {e epoch} that
    advances whenever either end restarts; the sender caches encoded
    frames and resends them with bounded exponential backoff until
    acknowledged; the receiver applies strictly in order, buffers
    out-of-order arrivals, absorbs duplicates by answering from a
    bounded reply memo, and discards frames from dead epochs.

    This module is that contract, factored once.  It is deliberately
    counter-free and transport-free: callers supply [encode]/[send]
    closures and translate outcomes into their own metric names, so the
    accounting stays where it is read. *)

module Sender : sig
  type 'reply t
  (** The sending half of one link's session, parameterized by the
      reply type parked for awaited messages. *)

  val create : unit -> 'reply t
  (** A fresh session at epoch 1, next seq 1. *)

  val epoch : _ t -> int

  val unacked : _ t -> int
  (** Messages posted but not yet acknowledged this epoch. *)

  val post :
    'reply t ->
    ?awaited:bool ->
    backoff:int ->
    encode:(epoch:int -> seq:int -> string) ->
    send:(string -> unit) ->
    unit ->
    int
  (** Allocate the next seq, build the frame with [encode] (cached so
      every resend puts identical bytes on the wire), [send] it, and
      track it as pending with initial resend [backoff].  Returns the
      seq; when [awaited] (default false), the matching ack's reply is
      parked for {!take_reply}. *)

  val ack : 'reply t -> epoch:int -> seq:int -> 'reply -> bool
  (** Match an acknowledgement: [false] for stale epochs and duplicate
      acks, [true] when a pending was retired (parking the reply if it
      was awaited). *)

  val has_reply : 'reply t -> int -> bool

  val take_reply : 'reply t -> int -> 'reply option
  (** Consume the parked reply for an awaited seq, if it has arrived. *)

  val tick :
    'reply t ->
    backoff_max:int ->
    max_retries:int ->
    on_resend:(seq:int -> string -> unit) ->
    on_timeout:(seq:int -> retries:int -> unit) ->
    unit
  (** Age every pending one tick.  A pending whose backoff expires is
      resent through [on_resend] with doubled backoff (bounded by
      [backoff_max]); one that has already been resent [max_retries]
      times goes to [on_timeout] first, which is expected to raise. *)

  val clear : 'reply t -> int
  (** Drop all pendings and parked replies (they died with a crash, or
      a new epoch voids them).  Returns the number of pendings dropped
      so the caller can keep its unacked gauge honest. *)

  val new_epoch : 'reply t -> int
  (** Advance the epoch, reset seq numbering to 1, and {!clear};
      returns the dropped-pending count. *)
end

module Receiver : sig
  type ('msg, 'reply) t
  (** The receiving half: per-sender idempotence/ordering state. *)

  val create : ?memo_window:int -> unit -> ('msg, 'reply) t
  (** Epoch 0, so the sender's first real epoch (1 or later) is always
      adopted as new on first contact.  [memo_window] (default 1024)
      bounds how many recent replies are kept for duplicate replay. *)

  val epoch : _ t -> int
  (** The adopted epoch — replies must travel stamped with it. *)

  val applied : _ t -> int
  (** Highest contiguously-applied seq this epoch. *)

  type 'reply outcome =
    | Stale  (** dead epoch: drop, no reply (nothing awaits it) *)
    | Replayed of 'reply  (** duplicate, answered from the memo *)
    | Buffered  (** ahead of turn: parked, no reply until the gap fills *)
    | Applied of 'reply  (** applied in turn; buffered successors drained *)

  val handle :
    ('msg, 'reply) t ->
    epoch:int ->
    seq:int ->
    'msg ->
    apply:(int -> 'msg -> 'reply) ->
    fallback:'reply ->
    'reply outcome
  (** Run one received message through the contract.  [apply seq msg]
      executes an in-turn message and returns its reply; it also runs
      for each buffered successor this message releases, whose replies
      are only memoized (the sender's own resend collects them through
      the duplicate path).  [fallback] answers a duplicate older than
      the memo window — long since settled, a bare acknowledgement
      suffices. *)

  val reset : ('msg, 'reply) t -> unit
  (** Forget everything (component crash lost the state the session
      guards). *)
end
