(** Deterministic fault injection.

    The paper's interaction contracts (Section 3) only earn their keep
    when TC, DC, log, or disk can fail at *any* instant — not just at
    clean API boundaries.  This module is the lowest layer of a
    FoundationDB-style simulation harness: code paths that a real crash
    could interrupt declare named {e crash points} and call {!hit} when
    execution passes through them.  A test arms a seeded {e fault plan};
    when a plan rule fires at a point, {!hit} raises and the caller's
    harness translates the exception into a simulated hard kill
    ([Kernel.crash_for_point]) or a transient I/O failure.

    With no plan armed, {!hit} is a single ref read — cheap enough to
    leave the points compiled into the hot paths that benchmarks
    exercise (and safe to call concurrently from multiple domains, since
    benchmarks never arm plans).

    Determinism: a plan's behaviour is a pure function of the armed
    rules, the [seed], and the sequence of {!hit} calls.  The same
    workload under the same plan fires at the same instant, every
    time. *)

exception Injected_crash of string
(** Raised by {!hit} when a [Crash] rule fires; the payload is the crash
    point's name.  Simulates the process dying at that instant: the
    catcher must discard all volatile state of the owning component
    (e.g. via [Kernel.crash_for_point]) before continuing. *)

exception Io_error of string
(** Raised by {!hit} when an [Io_fail] rule fires: a transient I/O error
    the caller may retry without crashing. *)

type trigger =
  | Nth of int  (** fire on the [n]-th hit of the point (1-based), once *)
  | Prob of float  (** fire on each hit with this probability (seeded) *)

type action = Crash | Io_fail

type rule = { point : string; trigger : trigger; action : action }

val crash_at : string -> int -> rule
(** [crash_at point n] crashes on the [n]-th hit of [point]. *)

val crash_with_prob : string -> float -> rule

val io_error_at : string -> int -> rule

val io_error_with_prob : string -> float -> rule

val declare : string -> string
(** Register a crash point name (idempotent) and return it.  Modules
    declare their points at initialization time so harnesses can
    enumerate what is instrumentable via {!declared}. *)

val declared : unit -> string list
(** All declared point names, sorted. *)

val arm : ?seed:int -> rule list -> unit
(** Install a fault plan, replacing any previous one.  Resets per-point
    hit counts and the fired log.  [Nth] rules are consumed when they
    fire; [Prob] rules keep firing.  Any points named by the rules are
    implicitly {!declare}d. *)

val disarm : unit -> unit
(** Remove the plan.  {!fired_points} still reports the last plan's
    fires until the next {!arm}. *)

val armed : unit -> bool

val hit : string -> unit
(** Pass through a crash point.  No-op unless a plan is armed; raises
    {!Injected_crash} or {!Io_error} when a rule fires. *)

val hits : string -> int
(** Hits of a point recorded since the last {!arm} (0 when disarmed). *)

val fired_points : unit -> string list
(** Points whose rules fired since the last {!arm}, in firing order.
    Survives {!disarm} so a harness can collect results after tearing
    the plan down. *)
