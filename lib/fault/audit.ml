module Kernel = Untx_kernel.Kernel
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Stored_record = Untx_dc.Stored_record
module Wire = Untx_msg.Wire

type report = { violations : string list; redelivered : int }

let dump_all dc =
  List.map (fun table -> (table, Dc.dump_table dc table)) (Dc.table_names dc)

let check_structure dc ~stage errs =
  match Dc.check dc with
  | Ok () -> ()
  | Error msg -> errs := Printf.sprintf "structure (%s): %s" stage msg :: !errs

(* After quiesce every transaction's fate is settled, so no record may
   still carry versioning state: a leftover before-version or tombstone
   means recovery lost a Commit_versions/Abort_versions cleanup. *)
let check_versions dc errs =
  List.iter
    (fun (table, rows) ->
      List.iter
        (fun (key, (r : Stored_record.t)) ->
          if r.before <> Stored_record.Absent then
            errs :=
              Printf.sprintf "version hygiene: %s/%s still has a before-image"
                table key
              :: !errs;
          if r.deleted then
            errs :=
              Printf.sprintf "version hygiene: %s/%s is still a tombstone"
                table key
              :: !errs)
        rows)
    (dump_all dc)

let check_oracle k ~table ~expected errs =
  let txn = Kernel.begin_txn k in
  (match Kernel.scan k txn ~table ~from_key:"" ~limit:max_int with
  | `Ok rows ->
    if rows <> expected then begin
      let first_diff =
        let rec go = function
          | [], [] -> "equal?!"
          | (k, v) :: _, [] -> Printf.sprintf "extra row %s=%s" k v
          | [], (k, v) :: _ -> Printf.sprintf "missing row %s=%s" k v
          | (ka, va) :: ra, (kb, vb) :: rb ->
            if ka = kb && va = vb then go (ra, rb)
            else Printf.sprintf "got %s=%s, oracle says %s=%s" ka va kb vb
        in
        go (rows, expected)
      in
      errs :=
        Printf.sprintf "oracle: scan of %s (%d rows) vs oracle (%d rows): %s"
          table (List.length rows) (List.length expected) first_diff
        :: !errs
    end
  | `Blocked ->
    errs :=
      Printf.sprintf "oracle: scan of %s blocked after quiesce" table :: !errs
  | `Fail msg ->
    errs := Printf.sprintf "oracle: scan of %s failed: %s" table msg :: !errs);
  match Kernel.commit k txn with
  | `Ok () -> ()
  | `Blocked | `Fail _ -> Kernel.abort k txn ~reason:"audit scan"

(* One more recovery would resend exactly the stable suffix from the
   redo-scan start point.  Deliver it straight into the DC: if the
   abstract-LSN idempotence machinery is sound, state is bit-identical
   afterwards. *)
let check_idempotence k errs =
  let tc = Kernel.tc k and dc = Kernel.dc k in
  let before = dump_all dc in
  let n = ref 0 in
  Tc.iter_stable_ops tc (fun lsn op ->
      incr n;
      ignore (Dc.perform dc { Wire.tc = Tc.id tc; lsn; op }));
  if dump_all dc <> before then
    errs :=
      Printf.sprintf
        "idempotence: re-delivering %d stable ops changed DC state" !n
      :: !errs;
  !n

let run k ~table ~expected =
  let errs = ref [] in
  let dc = Kernel.dc k in
  check_structure dc ~stage:"post-recovery" errs;
  check_versions dc errs;
  let redelivered = check_idempotence k errs in
  check_structure dc ~stage:"post-redelivery" errs;
  check_oracle k ~table ~expected errs;
  { violations = List.rev !errs; redelivered }
