module Kernel = Untx_kernel.Kernel
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Stored_record = Untx_dc.Stored_record
module Wire = Untx_msg.Wire

type report = { violations : string list; redelivered : int }

let dump_all dc =
  List.map (fun table -> (table, Dc.dump_table dc table)) (Dc.table_names dc)

let check_structure dc ~stage errs =
  match Dc.check dc with
  | Ok () -> ()
  | Error msg -> errs := Printf.sprintf "structure (%s): %s" stage msg :: !errs

(* After quiesce every transaction's fate is settled, so no record may
   still carry versioning state: a leftover before-version or tombstone
   means recovery lost a Commit_versions/Abort_versions cleanup. *)
let check_versions dc errs =
  List.iter
    (fun (table, rows) ->
      List.iter
        (fun (key, (r : Stored_record.t)) ->
          if r.before <> Stored_record.Absent then
            errs :=
              Printf.sprintf "version hygiene: %s/%s still has a before-image"
                table key
              :: !errs;
          if r.deleted then
            errs :=
              Printf.sprintf "version hygiene: %s/%s is still a tombstone"
                table key
              :: !errs)
        rows)
    (dump_all dc)

let check_oracle k ~table ~expected errs =
  let txn = Kernel.begin_txn k in
  (match Kernel.scan k txn ~table ~from_key:"" ~limit:max_int with
  | `Ok rows ->
    if rows <> expected then begin
      let first_diff =
        let rec go = function
          | [], [] -> "equal?!"
          | (k, v) :: _, [] -> Printf.sprintf "extra row %s=%s" k v
          | [], (k, v) :: _ -> Printf.sprintf "missing row %s=%s" k v
          | (ka, va) :: ra, (kb, vb) :: rb ->
            if ka = kb && va = vb then go (ra, rb)
            else Printf.sprintf "got %s=%s, oracle says %s=%s" ka va kb vb
        in
        go (rows, expected)
      in
      errs :=
        Printf.sprintf "oracle: scan of %s (%d rows) vs oracle (%d rows): %s"
          table (List.length rows) (List.length expected) first_diff
        :: !errs
    end
  | `Blocked ->
    errs :=
      Printf.sprintf "oracle: scan of %s blocked after quiesce" table :: !errs
  | `Fail msg ->
    errs := Printf.sprintf "oracle: scan of %s failed: %s" table msg :: !errs);
  match Kernel.commit k txn with
  | `Ok () -> ()
  | `Blocked | `Fail _ -> Kernel.abort k txn ~reason:"audit scan"

(* One more recovery would resend exactly the stable suffix from the
   redo-scan start point.  Deliver it straight into the DC: if the
   abstract-LSN idempotence machinery is sound, state is bit-identical
   afterwards. *)
let check_idempotence k errs =
  let tc = Kernel.tc k and dc = Kernel.dc k in
  let before = dump_all dc in
  let n = ref 0 in
  Tc.iter_stable_ops tc (fun lsn op ->
      incr n;
      ignore (Dc.perform dc { Wire.tc = Tc.id tc; lsn; part = Dc.part dc; op }));
  if dump_all dc <> before then
    errs :=
      Printf.sprintf
        "idempotence: re-delivering %d stable ops changed DC state" !n
      :: !errs;
  !n

let run k ~table ~expected =
  let errs = ref [] in
  let dc = Kernel.dc k in
  check_structure dc ~stage:"post-recovery" errs;
  check_versions dc errs;
  let redelivered = check_idempotence k errs in
  check_structure dc ~stage:"post-redelivery" errs;
  check_oracle k ~table ~expected errs;
  { violations = List.rev !errs; redelivered }

(* ------------------------------------------------------------------ *)
(* Partitioned deployments                                             *)

module Deploy = Untx_cloud.Deploy

(* The partitioned oracle check reads each DC's fragment directly and
   merges by key: a TC-side scan would need cross-partition scan
   support, and more importantly it would not notice a record that the
   map says belongs to DC1 but ended up (only) on DC2. *)
let check_oracle_deploy d ~table ~expected errs =
  let merged =
    List.concat_map
      (fun dc_name ->
        let dc = Deploy.dc d dc_name in
        List.filter_map
          (fun (key, r) ->
            (* records owned elsewhere must not exist here at all *)
            if not (String.equal (Deploy.partition_dc d ~table ~key) dc_name)
            then begin
              errs :=
                Printf.sprintf "placement: %s/%s found on %s, owned by %s"
                  table key dc_name
                  (Deploy.partition_dc d ~table ~key)
                :: !errs;
              None
            end
            else Stored_record.current r |> Option.map (fun v -> (key, v)))
          (Dc.dump_table dc table))
      (Deploy.partitions d ~table)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  if merged <> expected then
    errs :=
      Printf.sprintf
        "oracle: merged partitions of %s (%d rows) disagree with oracle (%d \
         rows)"
        table (List.length merged) (List.length expected)
      :: !errs

(* Index parity: the entry tables must be exactly the image of the live
   primary rows under the registered extractors — computed fresh from
   the merged primary fragments, so the check is independent of any
   oracle the caller may also hold.  Extra entries are dangling (their
   primary died) or stale (the row no longer yields that secondary
   key); missing ones mean maintenance was lost in recovery. *)
module Index = Untx_index.Index

let merged_current d ~table errs =
  List.concat_map
    (fun dc_name ->
      let dc = Deploy.dc d dc_name in
      List.filter_map
        (fun (key, r) ->
          if not (String.equal (Deploy.partition_dc d ~table ~key) dc_name)
          then begin
            errs :=
              Printf.sprintf "placement: %s/%s found on %s, owned by %s" table
                key dc_name
                (Deploy.partition_dc d ~table ~key)
              :: !errs;
            None
          end
          else Stored_record.current r |> Option.map (fun v -> (key, v)))
        (Dc.dump_table dc table))
    (Deploy.partitions d ~table)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let check_index d ~idx ~table =
  let errs = ref [] in
  let primary = merged_current d ~table errs in
  List.iter
    (fun iname ->
      let itab = Index.index_table ~table ~name:iname in
      let expected = Index.expected_entries idx ~table ~index:iname ~rows:primary in
      let actual = merged_current d ~table:itab errs in
      let describe ekey =
        Printf.sprintf "%s=%S of %s/%s" iname
          (Index.sec_of_entry ekey)
          table (Index.pk_of_entry ekey)
      in
      let rec diff = function
        | [], [] -> ()
        | (ek, pk) :: rest, [] ->
          errs :=
            Printf.sprintf "index: dangling or stale entry %s (value %S)"
              (describe ek) pk
            :: !errs;
          diff (rest, [])
        | [], (ek, _) :: rest ->
          errs :=
            Printf.sprintf "index: missing entry %s" (describe ek) :: !errs;
          diff ([], rest)
        | (ka, va) :: ra, (kb, vb) :: rb ->
          if ka = kb && va = vb then diff (ra, rb)
          else if ka = kb then begin
            errs :=
              Printf.sprintf "index: entry %s holds %S, expected pk %S"
                (describe ka) va vb
              :: !errs;
            diff (ra, rb)
          end
          else if ka < kb then begin
            errs :=
              Printf.sprintf "index: dangling or stale entry %s (value %S)"
                (describe ka) va
              :: !errs;
            diff (ra, (kb, vb) :: rb)
          end
          else begin
            errs :=
              Printf.sprintf "index: missing entry %s" (describe kb) :: !errs;
            diff ((ka, va) :: ra, rb)
          end
      in
      diff (actual, expected))
    (Index.indexes idx ~table);
  List.rev !errs

(* Deployment-wide idempotence: one more recovery would resend the
   stable suffix, each record to its owning partition.  Route through
   the TC's map — the same map redo uses. *)
let check_idempotence_deploy d ~tc:tc_name errs =
  let tc = Deploy.tc d tc_name in
  let before =
    List.map (fun name -> (name, dump_all (Deploy.dc d name))) (Deploy.dc_names d)
  in
  let n = ref 0 in
  Tc.iter_stable_ops tc (fun lsn op ->
      incr n;
      let dc = Deploy.dc d (Tc.dc_of_op tc op) in
      ignore (Dc.perform dc { Wire.tc = Tc.id tc; lsn; part = Dc.part dc; op }));
  let after =
    List.map (fun name -> (name, dump_all (Deploy.dc d name))) (Deploy.dc_names d)
  in
  if after <> before then
    errs :=
      Printf.sprintf
        "idempotence: re-delivering %d stable ops changed some partition" !n
      :: !errs;
  !n

(* Replica consistency: after shipping reaches parity, every standby's
   logical state must equal its primary's, table by table.  Valid only
   on a quiesced deployment — mid-workload a standby legitimately trails
   by the unshipped suffix.  The comparison is over [dump_table]
   (logical rows), deliberately blind to page structure: primary and
   standby take different split/consolidation paths under different
   cache pressure, and that is fine.

   [wlsn] is also normalized away.  It is physical recovery metadata,
   and it is legitimately path-dependent: when a crash unwinds a commit
   between logging its version cleanup and dispatching it, the retried
   commit logs a second cleanup for the same keys.  The standby replays
   the full stable stream — the first cleanup strips the before-image
   (stamping its LSN), the second is a state-test no-op — while the
   primary only ever applied the retry.  Same row, different last-writer
   LSN; both are stable, so nothing downstream can tell them apart. *)
let logical_rows rows =
  List.map
    (fun (key, (r : Stored_record.t)) ->
      (key, { r with Stored_record.wlsn = Untx_util.Lsn.zero }))
    rows
(* Parity is only owed by *attached* replicas: a detached one is frozen
   at its leased cursor by design, and a rebuild-required one has
   honestly declared it cannot reconstruct the suffix — both
   legitimately trail the primary until reattach/rebuild. *)
let check_replicas d errs =
  let replicated =
    List.filter (fun dcn -> Deploy.replicas d ~dc:dcn <> []) (Deploy.dc_names d)
  in
  if replicated <> [] then begin
    List.iter (fun tcn -> Tc.force_log (Deploy.tc d tcn)) (Deploy.tc_names d);
    Deploy.settle_replicas d;
    List.iter
      (fun dcn ->
        let primary = Deploy.dc d dcn in
        List.iter
          (fun sbn ->
            let sb = Untx_repl.Repl.Standby.dc (Deploy.standby d sbn) in
            check_structure sb ~stage:("standby " ^ sbn) errs;
            List.iter
              (fun tbl ->
                if
                  logical_rows (Dc.dump_table sb tbl)
                  <> logical_rows (Dc.dump_table primary tbl)
                then
                  errs :=
                    Printf.sprintf
                      "replica: %s diverges from %s on table %s" sbn dcn tbl
                    :: !errs)
              (Dc.table_names primary))
          (Deploy.attached_replicas d ~dc:dcn))
      replicated
  end

(* Layer parity: after syncing the store to end-of-stable-log, every
   record the store holds, reconstructed at the ingest watermark, must
   match both the store's own current view and the owning DC's live
   visible value.  Only with exactly one layered TC — the store holds a
   single TC's history, so with several layered stores no single one is
   an oracle for a shared DC. *)
let check_layers d errs =
  let module Layer = Untx_layer.Layer in
  let module Op = Untx_msg.Op in
  let layered =
    List.filter_map
      (fun tcn ->
        match Untx_repl.Repl.Manager.layer_store (Deploy.manager d ~tc:tcn) with
        | Some s -> Some (tcn, s)
        | None -> None)
      (Deploy.tc_names d)
  in
  match layered with
  | [ (tcn, store) ] ->
    List.iter (fun n -> Tc.force_log (Deploy.tc d n)) (Deploy.tc_names d);
    Untx_repl.Repl.Manager.sync_layers (Deploy.manager d ~tc:tcn);
    let tc = Deploy.tc d tcn in
    let at = Layer.ingested_lsn store in
    let dumps = Hashtbl.create 8 in
    let live dc_name table key =
      let id = (dc_name, table) in
      let rows =
        match Hashtbl.find_opt dumps id with
        | Some rows -> rows
        | None ->
          let rows = Dc.dump_table (Deploy.dc d dc_name) table in
          Hashtbl.replace dumps id rows;
          rows
      in
      Option.bind (List.assoc_opt key rows) Stored_record.current
    in
    Layer.iter_current store (fun ~table ~key record ->
        let rebuilt = Layer.reconstruct store ~table ~key ~at in
        if rebuilt <> Stored_record.current record then
          errs :=
            Printf.sprintf
              "layer: reconstruct %s/%s at %s disagrees with the store's \
               current state"
              table key
              (Untx_util.Lsn.to_string at)
            :: !errs;
        let dc_name = Tc.dc_of_op tc (Op.Read { table; key; mode = Op.Own }) in
        if rebuilt <> live dc_name table key then
          errs :=
            Printf.sprintf
              "layer: reconstruct %s/%s at %s disagrees with the live value \
               on %s"
              table key
              (Untx_util.Lsn.to_string at)
              dc_name
            :: !errs)
  | _ -> ()

(* Cross-TC watermark audit (quiesced deployments): every DC's per-TC
   watermark slot must be attributable to that TC alone —
   lwm <= eosl (each force broadcasts EOSL before any LWM capped at the
   new stable can follow on the FIFO control session) and eosl never
   past the TC's actual stable log (a DC believing otherwise could
   flush a page whose redo is still volatile).  A violation means some
   other TC's control traffic leaked into this TC's slot — exactly what
   the (tc, epoch, seq) keying and the misattribution guards exist to
   prevent. *)
let check_watermarks d =
  let module Lsn = Untx_util.Lsn in
  let errs = ref [] in
  List.iter
    (fun tcn ->
      let tc = Deploy.tc d tcn in
      let id = Tc.id tc in
      let stable = Lsn.to_int (Tc.stable_lsn tc) in
      List.iter
        (fun dcn ->
          let dc = Deploy.dc d dcn in
          let eosl = Lsn.to_int (Dc.eosl_of dc id) in
          let lwm = Lsn.to_int (Dc.lwm_of dc id) in
          if lwm > eosl then
            errs :=
              Printf.sprintf
                "watermarks: %s holds lwm %d > eosl %d for TC %s" dcn lwm
                eosl tcn
              :: !errs;
          if eosl > stable then
            errs :=
              Printf.sprintf
                "watermarks: %s believes TC %s's stable log reaches %d but \
                 it ends at %d"
                dcn tcn eosl stable
              :: !errs)
        (Deploy.dc_names d))
    (Deploy.tc_names d);
  List.rev !errs

(* Branch parity: a live branch must have a well-formed DC, agree with
   its parent bit-for-bit on the shared prefix at the fork point — via
   its own combined-LSN read path and, for branches forked directly off
   a root TC, via the deployment's read_as_of — and answer its durable
   point-in-time view consistently with the per-key lookup. *)
module Branch = Untx_branch.Branch

let check_branch d ~name ~table =
  let module Lsn = Untx_util.Lsn in
  let errs = ref [] in
  let br = Deploy.branch d name in
  (match Dc.check (Branch.dc br) with
  | Ok () -> ()
  | Error e ->
    errs := Printf.sprintf "branch %s: ill-formed DC: %s" name e :: !errs);
  let fork = Branch.fork_lsn br in
  if Lsn.(Branch.durable br < fork) then
    errs :=
      Printf.sprintf "branch %s: durable %d below its fork %d" name
        (Lsn.to_int (Branch.durable br))
        (Lsn.to_int fork)
      :: !errs;
  let rooted =
    not
      (List.exists
         (fun b -> List.mem name (Deploy.branch_children d b))
         (Deploy.branch_names d))
  in
  let show = function Some v -> Printf.sprintf "%S" v | None -> "None" in
  List.iter
    (fun (key, v) ->
      let via_branch = Branch.read_as_of br ~table ~key ~at:fork in
      if via_branch <> Some v then
        errs :=
          Printf.sprintf
            "branch %s: fork prefix of %s/%s reads %s through the branch, \
             parent holds %S"
            name table key (show via_branch) v
          :: !errs;
      if rooted then begin
        let via_root =
          Deploy.read_as_of d
            ~tc:(Deploy.branch_root_tc d name)
            ~table ~key ~at:fork
        in
        if via_root <> Some v then
          errs :=
            Printf.sprintf
              "branch %s: fork prefix of %s/%s reads %s through the root, \
               parent iteration holds %S"
              name table key (show via_root) v
            :: !errs
      end)
    (Branch.fork_rows br ~table);
  let durable = Branch.durable br in
  List.iter
    (fun (key, v) ->
      let got = Branch.read_as_of br ~table ~key ~at:durable in
      if got <> Some v then
        errs :=
          Printf.sprintf
            "branch %s: durable view of %s/%s iterates %S but looks up %s"
            name table key v (show got)
          :: !errs)
    (Branch.rows_at br ~table ~at:durable);
  List.rev !errs

let run_deploy d ~tc ~table ~expected =
  let errs = ref [] in
  List.iter
    (fun name ->
      let dc = Deploy.dc d name in
      check_structure dc ~stage:("post-recovery " ^ name) errs;
      check_versions dc errs)
    (Deploy.dc_names d);
  let redelivered = check_idempotence_deploy d ~tc errs in
  List.iter
    (fun name ->
      check_structure (Deploy.dc d name) ~stage:("post-redelivery " ^ name)
        errs)
    (Deploy.dc_names d);
  check_oracle_deploy d ~table ~expected errs;
  check_replicas d errs;
  check_layers d errs;
  errs := List.rev_append (check_watermarks d) !errs;
  { violations = List.rev !errs; redelivered }
