module Kernel = Untx_kernel.Kernel
module Transport = Untx_kernel.Transport
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Rng = Untx_util.Rng
module Instrument = Untx_util.Instrument
module Trace = Untx_obs.Trace
module Fault = Untx_fault.Fault

type cycle = {
  c_label : string;
  c_seed : int;
  c_fired : string list;
  c_crashes : int;
  c_committed : int;
  c_redelivered : int;
  c_violations : string list;
  c_counters : (string * int) list;
  c_trace : string;
      (* the cycle's span dump (Trace.to_jsonl); captured for every
         violating cycle, and on request via [keep_trace] *)
}

let table = "kv"

(* Lossier than Transport.chaotic: drops force the resend/backoff path
   to carry real weight during both the workload and recovery redo. *)
let lossy =
  {
    Transport.delay_min = 0;
    delay_max = 2;
    reorder = true;
    dup_prob = 0.05;
    drop_prob = 0.1;
  }

(* Cycle configuration is derived from the seed: small pages and a tiny
   cache force splits, evictions and flushes, so the DC-side fault
   points sit on well-trodden paths. *)
let make_kernel ~counters ~seed =
  let policy = if seed mod 3 = 0 then lossy else Transport.reliable in
  let sync_policy =
    match seed / 4 mod 3 with
    | 0 -> Dc.Stall_until_lwm
    | 1 -> Dc.Bounded 4
    | _ -> Dc.Full_ablsn
  in
  let tc_reset_mode = if seed mod 5 = 0 then Dc.Complete else Dc.Selective in
  let k =
    Kernel.create ~counters
      {
        Kernel.tc =
          {
            (Tc.default_config (Tc_id.of_int 1)) with
            lwm_every = 8;
            debug_checks = true;
          };
        dc =
          {
            Dc.page_capacity = 160;
            cache_pages = 6;
            sync_policy;
            tc_reset_mode;
            debug_checks = true;
          };
        policy;
        seed;
        auto_checkpoint_every = (if seed mod 4 = 0 then 7 else 0);
      }
  in
  Kernel.create_table k ~name:table ~versioned:(seed land 1 = 0);
  k

let commit_staged oracle staged =
  Hashtbl.iter (fun key v -> Hashtbl.replace oracle key v) staged

let oracle_rows oracle =
  Hashtbl.fold
    (fun key v acc -> match v with Some v -> (key, v) :: acc | None -> acc)
    oracle []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Every cycle runs traced: the ring is cleared and re-enabled at the
   start so trace ids are deterministic per cycle, and a violating
   cycle's dump rides along in the report — the auditor's verdict comes
   with the timeline that led to it.  The previous enabled state is
   restored before the audit so probe traffic doesn't muddy the dump. *)
let run_cycle ?(keep_trace = false) ~label ~plan ~seed ~txns () =
  Fault.disarm ();
  let was_tracing = Trace.enabled () in
  Trace.clear ();
  Trace.set_enabled true;
  let counters = Instrument.create () in
  let rng = Rng.create ~seed in
  let k = make_kernel ~counters ~seed in
  let oracle : (string, string option) Hashtbl.t = Hashtbl.create 128 in
  let crashes = ref 0 and committed = ref 0 in
  let handle = function
    | Fault.Injected_crash p ->
      incr crashes;
      Kernel.crash_for_point k p
    | Fault.Io_error p ->
      (* The bounded retry in Disk gave up: an unrecovered media error.
         Treat it as the DC host dying.  Prob rules would keep firing
         during recovery reads, so the plan comes down first. *)
      incr crashes;
      Fault.disarm ();
      Kernel.crash_for_point k p
    | e -> raise e
  in
  (* Probe a transaction's unique marker key to learn its fate after an
     ambiguously interrupted commit: the marker is the transaction's
     first write, so it is visible iff the transaction committed. *)
  let probe marker =
    let attempt () =
      let txn = Kernel.begin_txn k in
      let v =
        match Kernel.read k txn ~table ~key:marker with
        | `Ok v -> v
        | `Blocked | `Fail _ -> None
      in
      (match Kernel.commit k txn with
      | `Ok () -> ()
      | `Blocked | `Fail _ ->
        if Tc.is_active txn then Kernel.abort k txn ~reason:"chaos probe");
      v
    in
    try attempt ()
    with (Fault.Injected_crash _ | Fault.Io_error _) as e ->
      handle e;
      (try attempt () with Fault.Injected_crash _ | Fault.Io_error _ -> None)
  in
  Fault.arm ~seed plan;
  for i = 0 to txns - 1 do
    if i = txns / 2 then begin
      (* Mid-workload maintenance: quiesce then checkpoint, so the
         checkpoint fault points sit on a realistic RSSP advance. *)
      try
        Kernel.quiesce k;
        ignore (Kernel.checkpoint k)
      with (Fault.Injected_crash _ | Fault.Io_error _) as e -> handle e
    end;
    let marker = Printf.sprintf "m%03d" i in
    let staged : (string, string option) Hashtbl.t = Hashtbl.create 8 in
    let cur = ref None in
    let phase = ref `Body in
    let resolve_by_marker () =
      if probe marker <> None then begin
        incr committed;
        commit_staged oracle staged
      end
    in
    try
      let txn = Kernel.begin_txn k in
      cur := Some txn;
      (match Kernel.insert k txn ~table ~key:marker ~value:"1" with
      | `Ok () -> Hashtbl.replace staged marker (Some "1")
      | `Blocked | `Fail _ -> ());
      (* Late in the cycle deletes dominate, to drive pages toward
         underflow and give consolidation points a chance to fire. *)
      let delete_bias = if 3 * i > 2 * txns then 0.7 else 0.25 in
      for _ = 1 to 1 + Rng.int rng 4 do
        let key = Printf.sprintf "k%02d" (Rng.int rng 50) in
        let current =
          if Hashtbl.mem staged key then Hashtbl.find staged key
          else Option.join (Hashtbl.find_opt oracle key)
        in
        match current with
        | None -> (
          let value = Printf.sprintf "v%06d" (Rng.int rng 1_000_000) in
          match Kernel.insert k txn ~table ~key ~value with
          | `Ok () -> Hashtbl.replace staged key (Some value)
          | `Blocked | `Fail _ -> ())
        | Some _ ->
          if Rng.chance rng delete_bias then (
            match Kernel.delete k txn ~table ~key with
            | `Ok () -> Hashtbl.replace staged key None
            | `Blocked | `Fail _ -> ())
          else
            let value = Printf.sprintf "v%06d" (Rng.int rng 1_000_000) in
            (match Kernel.update k txn ~table ~key ~value with
            | `Ok () -> Hashtbl.replace staged key (Some value)
            | `Blocked | `Fail _ -> ())
      done;
      phase := `Commit;
      match Kernel.commit k txn with
      | `Ok () ->
        incr committed;
        commit_staged oracle staged
      | `Blocked | `Fail _ -> ()
    with (Fault.Injected_crash p | Fault.Io_error p) as e -> (
      handle e;
      let component = Kernel.component_of_point p in
      match (!phase, component, !cur) with
      | `Body, `Tc, _ ->
        (* The transaction died with the TC; recovery rolled it back and
           the handle is stale.  The oracle never saw its writes. *)
        ()
      | `Body, `Dc, Some txn ->
        (* The TC survived, so the transaction is a live loser holding
           locks: roll it back like suite_recovery's open_loser. *)
        if Tc.is_active txn then
          Kernel.abort k txn ~reason:"chaos: rollback after DC crash"
      | `Body, `Dc, None -> ()
      | `Commit, `Tc, _ ->
        (* The Commit record may or may not have reached the stable log
           before the kill; the marker knows. *)
        resolve_by_marker ()
      | `Commit, `Dc, Some txn ->
        (* The TC survived, so it must finish what it started: commit is
           re-entrant (a second Commit record is benign, cleanups are
           idempotent).  A further planned kill can land inside the
           retry itself; while the transaction stays active it still
           holds its locks, so keep retrying — the plan is finite — and
           roll back as a last resort rather than leak the locks. *)
        let rec settle attempts =
          if not (Tc.is_active txn) then
            (* Tc.commit had already finished (the crash hit the
               post-commit auto-checkpoint); the marker settles it. *)
            resolve_by_marker ()
          else if attempts = 0 then (
            Kernel.abort k txn ~reason:"chaos: commit retries exhausted";
            resolve_by_marker ())
          else
            try
              match Kernel.commit k txn with
              | `Ok () ->
                incr committed;
                commit_staged oracle staged
              | `Blocked | `Fail _ -> ()
            with (Fault.Injected_crash _ | Fault.Io_error _) as e ->
              handle e;
              settle (attempts - 1)
        in
        settle 4
      | `Commit, `Dc, None -> ())
  done;
  (* Quiesce with the plan still armed: rules that only trigger under
     drain pressure get a last chance, and a kill here must be as
     recoverable as any other. *)
  let rec quiesce_settle attempts =
    try Kernel.quiesce k
    with (Fault.Injected_crash _ | Fault.Io_error _) as e when attempts > 0 ->
      handle e;
      quiesce_settle (attempts - 1)
  in
  quiesce_settle 4;
  let fired = Fault.fired_points () in
  Fault.disarm ();
  Trace.set_enabled was_tracing;
  (* Snapshot counters at the same boundary where tracing stops: the
     auditor's probe traffic belongs to neither the counters nor the
     trace, so the two views describe the identical window and a span
     dump can be reconciled against the counters exactly. *)
  let counters_at_quiesce = Instrument.snapshot counters in
  let report = Audit.run k ~table ~expected:(oracle_rows oracle) in
  {
    c_label = label;
    c_seed = seed;
    c_fired = fired;
    c_crashes = !crashes;
    c_committed = !committed;
    c_redelivered = report.Audit.redelivered;
    c_violations = report.Audit.violations;
    c_counters = counters_at_quiesce;
    c_trace =
      (if keep_trace || report.Audit.violations <> [] then Trace.to_jsonl ()
       else "");
  }

(* --- partitioned deployments ------------------------------------------ *)

module Deploy = Untx_cloud.Deploy

(* One TC fronting [parts] partitioned DCs, same small-page pressure as
   [make_kernel] so splits, evictions and checkpoints fire on every
   partition. *)
let make_deploy ~counters ~seed ~parts =
  let policy = if seed mod 3 = 0 then lossy else Transport.reliable in
  let sync_policy =
    match seed / 4 mod 3 with
    | 0 -> Dc.Stall_until_lwm
    | 1 -> Dc.Bounded 4
    | _ -> Dc.Full_ablsn
  in
  let tc_reset_mode = if seed mod 5 = 0 then Dc.Complete else Dc.Selective in
  let d = Deploy.create ~counters ~policy ~seed () in
  ignore
    (Deploy.add_tc d ~name:"tc1"
       {
         (Tc.default_config (Tc_id.of_int 1)) with
         lwm_every = 8;
         debug_checks = true;
       });
  let dc_names = List.init parts (Printf.sprintf "dc%d") in
  List.iter
    (fun name ->
      ignore
        (Deploy.add_dc d ~name
           {
             Dc.page_capacity = 160;
             cache_pages = 6;
             sync_policy;
             tc_reset_mode;
             debug_checks = true;
           }))
    dc_names;
  Deploy.add_partitioned_table d ~name:table ~versioned:(seed land 1 = 0)
    ~dcs:dc_names ();
  d

(* The partitioned twin of [run_cycle]: the same workload and fate
   protocol, but ops fan out over N DCs and an injected DC fault kills
   whichever partition it actually escaped from
   ([Deploy.crash_for_point]), which then recovers alone while its
   siblings keep serving.  The audit is {!Audit.run_deploy}: structure
   and hygiene per partition, oracle against the merged fragments. *)
let run_cycle_partitioned ?(keep_trace = false) ~label ~plan ~seed ~txns ~parts
    () =
  Fault.disarm ();
  let was_tracing = Trace.enabled () in
  Trace.clear ();
  Trace.set_enabled true;
  let counters = Instrument.create () in
  let rng = Rng.create ~seed in
  let d = make_deploy ~counters ~seed ~parts in
  let tc = Deploy.tc d "tc1" in
  let default_dc = List.hd (Deploy.partitions d ~table) in
  let oracle : (string, string option) Hashtbl.t = Hashtbl.create 128 in
  let crashes = ref 0 and committed = ref 0 in
  let handle = function
    | Fault.Injected_crash p ->
      incr crashes;
      Deploy.crash_for_point d ~point:p ~tc:"tc1" ~dc:default_dc
    | Fault.Io_error p ->
      incr crashes;
      Fault.disarm ();
      Deploy.crash_for_point d ~point:p ~tc:"tc1" ~dc:default_dc
    | e -> raise e
  in
  let probe marker =
    let attempt () =
      let txn = Tc.begin_txn tc in
      let v =
        match Tc.read tc txn ~table ~key:marker with
        | `Ok v -> v
        | `Blocked | `Fail _ -> None
      in
      (match Tc.commit tc txn with
      | `Ok () -> ()
      | `Blocked | `Fail _ ->
        if Tc.is_active txn then Tc.abort tc txn ~reason:"chaos probe");
      v
    in
    try attempt ()
    with (Fault.Injected_crash _ | Fault.Io_error _) as e ->
      handle e;
      (try attempt () with Fault.Injected_crash _ | Fault.Io_error _ -> None)
  in
  Fault.arm ~seed plan;
  for i = 0 to txns - 1 do
    if i = txns / 2 then begin
      (* Fan-out checkpoint: completes only when every partition grants. *)
      try
        Deploy.quiesce d;
        ignore (Tc.checkpoint tc)
      with (Fault.Injected_crash _ | Fault.Io_error _) as e -> handle e
    end;
    let marker = Printf.sprintf "m%03d" i in
    let staged : (string, string option) Hashtbl.t = Hashtbl.create 8 in
    let cur = ref None in
    let phase = ref `Body in
    let resolve_by_marker () =
      if probe marker <> None then begin
        incr committed;
        commit_staged oracle staged
      end
    in
    try
      let txn = Tc.begin_txn tc in
      cur := Some txn;
      (match Tc.insert tc txn ~table ~key:marker ~value:"1" with
      | `Ok () -> Hashtbl.replace staged marker (Some "1")
      | `Blocked | `Fail _ -> ());
      let delete_bias = if 3 * i > 2 * txns then 0.7 else 0.25 in
      for _ = 1 to 1 + Rng.int rng 4 do
        let key = Printf.sprintf "k%02d" (Rng.int rng 50) in
        let current =
          if Hashtbl.mem staged key then Hashtbl.find staged key
          else Option.join (Hashtbl.find_opt oracle key)
        in
        match current with
        | None -> (
          let value = Printf.sprintf "v%06d" (Rng.int rng 1_000_000) in
          match Tc.insert tc txn ~table ~key ~value with
          | `Ok () -> Hashtbl.replace staged key (Some value)
          | `Blocked | `Fail _ -> ())
        | Some _ ->
          if Rng.chance rng delete_bias then (
            match Tc.delete tc txn ~table ~key with
            | `Ok () -> Hashtbl.replace staged key None
            | `Blocked | `Fail _ -> ())
          else
            let value = Printf.sprintf "v%06d" (Rng.int rng 1_000_000) in
            (match Tc.update tc txn ~table ~key ~value with
            | `Ok () -> Hashtbl.replace staged key (Some value)
            | `Blocked | `Fail _ -> ())
      done;
      phase := `Commit;
      match Tc.commit tc txn with
      | `Ok () ->
        incr committed;
        commit_staged oracle staged
      | `Blocked | `Fail _ -> ()
    with (Fault.Injected_crash p | Fault.Io_error p) as e -> (
      handle e;
      let component = Kernel.component_of_point p in
      match (!phase, component, !cur) with
      | `Body, `Tc, _ -> ()
      | `Body, `Dc, Some txn ->
        (* One partition died; the TC and the transaction survive.  The
           loser still holds locks on *every* partition it touched, so
           roll it back. *)
        if Tc.is_active txn then
          Tc.abort tc txn ~reason:"chaos: rollback after DC crash"
      | `Body, `Dc, None -> ()
      | `Commit, `Tc, _ -> resolve_by_marker ()
      | `Commit, `Dc, Some txn ->
        let rec settle attempts =
          if not (Tc.is_active txn) then resolve_by_marker ()
          else if attempts = 0 then (
            Tc.abort tc txn ~reason:"chaos: commit retries exhausted";
            resolve_by_marker ())
          else
            try
              match Tc.commit tc txn with
              | `Ok () ->
                incr committed;
                commit_staged oracle staged
              | `Blocked | `Fail _ -> ()
            with (Fault.Injected_crash _ | Fault.Io_error _) as e ->
              handle e;
              settle (attempts - 1)
        in
        settle 4
      | `Commit, `Dc, None -> ())
  done;
  let rec quiesce_settle attempts =
    try Deploy.quiesce d
    with (Fault.Injected_crash _ | Fault.Io_error _) as e when attempts > 0 ->
      handle e;
      quiesce_settle (attempts - 1)
  in
  quiesce_settle 4;
  let fired = Fault.fired_points () in
  Fault.disarm ();
  Trace.set_enabled was_tracing;
  (* Same boundary discipline as [run_cycle]: counters and trace cover
     the identical window, excluding the auditor's probes. *)
  let counters_at_quiesce = Instrument.snapshot counters in
  let report = Audit.run_deploy d ~tc:"tc1" ~table ~expected:(oracle_rows oracle) in
  {
    c_label = label;
    c_seed = seed;
    c_fired = fired;
    c_crashes = !crashes;
    c_committed = !committed;
    c_redelivered = report.Audit.redelivered;
    c_violations = report.Audit.violations;
    c_counters = counters_at_quiesce;
    c_trace =
      (if keep_trace || report.Audit.violations <> [] then Trace.to_jsonl ()
       else "");
  }

(* Per-partition crash plans: DC-side points kill whichever partition
   the fault escapes from (mid-SMO, mid-checkpoint-grant, mid-flush,
   mid-WAL-force), TC-side commit points exercise redo fan-out across
   all partitions, and the doubles kill two different partitions in one
   cycle (the 1st and Nth hits of a point land on different DCs under
   hash placement with high likelihood). *)
let plans_partitioned () =
  let singles =
    List.concat_map
      (fun (point, nths) ->
        List.map
          (fun n ->
            (Printf.sprintf "%s@%d" point n, [ Fault.crash_at point n ]))
          nths)
      [
        ("dc.smo.split.mid", [ 1; 2 ]);
        ("dc.checkpoint.mid", [ 1; 2 ]);
        ("dc.flush.before_page_write", [ 1; 4 ]);
        ("dc.flush.after_page_write", [ 2 ]);
        ("wal.dc.force.mid", [ 1; 3 ]);
        ("tc.commit.before_force", [ 2 ]);
        ("tc.commit.after_force", [ 2 ]);
      ]
  in
  let pair a na b nb =
    ( Printf.sprintf "%s@%d+%s@%d" a na b nb,
      [ Fault.crash_at a na; Fault.crash_at b nb ] )
  in
  let doubles =
    [
      pair "dc.smo.split.mid" 1 "dc.flush.after_page_write" 3;
      pair "dc.checkpoint.mid" 1 "wal.dc.force.mid" 2;
    ]
  in
  let corruption =
    [
      ( "transport.frame.corrupt~5%+dc.smo.split.mid@1",
        [
          Fault.crash_with_prob "transport.frame.corrupt" 0.05;
          Fault.crash_at "dc.smo.split.mid" 1;
        ] );
    ]
  in
  singles @ doubles @ corruption

(* --- replicated deployments ------------------------------------------- *)

module Repl = Untx_repl.Repl

(* The partitioned deployment, plus [replicas] warm standbys per
   partition fed by continuous redo shipping, under the given
   durability policy. *)
let make_deploy_replicated ~counters ~seed ~parts ~replicas ~durability =
  let policy = if seed mod 3 = 0 then lossy else Transport.reliable in
  let sync_policy =
    match seed / 4 mod 3 with
    | 0 -> Dc.Stall_until_lwm
    | 1 -> Dc.Bounded 4
    | _ -> Dc.Full_ablsn
  in
  let tc_reset_mode = if seed mod 5 = 0 then Dc.Complete else Dc.Selective in
  let d = Deploy.create ~counters ~policy ~durability ~seed () in
  ignore
    (Deploy.add_tc d ~name:"tc1"
       {
         (Tc.default_config (Tc_id.of_int 1)) with
         lwm_every = 8;
         debug_checks = true;
       });
  let dc_names = List.init parts (Printf.sprintf "dc%d") in
  List.iter
    (fun name ->
      ignore
        (Deploy.add_dc d ~name
           {
             Dc.page_capacity = 160;
             cache_pages = 6;
             sync_policy;
             tc_reset_mode;
             debug_checks = true;
           }))
    dc_names;
  Deploy.add_partitioned_table d ~name:table ~versioned:(seed land 1 = 0)
    ~replicas ~dcs:dc_names ();
  d

(* The replicated twin of [run_cycle_partitioned].  One fault is special
   here: a kill at the ["repl.ship.batch"] boundary means the PRIMARY
   being shipped from died at that instant — the harness answers with
   {!Deploy.fail_over} (promote the most-caught-up eligible standby,
   re-drive only the gap) instead of a cold crash+restart.  When the
   gate refuses every candidate ({!Deploy.Promotion_refused} — e.g. the
   only standby went rebuild-required after a lease expiry or a
   post-truncation crash) the harness does what an operator would:
   cold-restart the primary, trading availability for zero loss.
   [Kernel.component_of_point] would misclassify the point as an
   ordinary DC fault, so it is intercepted before the generic dispatch.
   All other faults take the usual routes, including DC points that
   fire {e inside a standby's apply} — those crash the standby itself
   ([Deploy.crash_for_point] resolves the component via the attributed
   handler), which then rejoins from its stable state.

   [maintain ~i d tc ~handle ~promote] runs before iteration [i] of the
   workload: the stock replicated cycle checkpoints at the midpoint,
   the detach cycle interleaves detach → checkpoint → promote. *)
let run_cycle_repl_core ?(keep_trace = false) ~label ~plan ~seed ~txns ~parts
    ~replicas ~durability ~maintain () =
  Fault.disarm ();
  let was_tracing = Trace.enabled () in
  Trace.clear ();
  Trace.set_enabled true;
  let counters = Instrument.create () in
  let rng = Rng.create ~seed in
  let d = make_deploy_replicated ~counters ~seed ~parts ~replicas ~durability in
  let tc = Deploy.tc d "tc1" in
  let default_dc = List.hd (Deploy.partitions d ~table) in
  let oracle : (string, string option) Hashtbl.t = Hashtbl.create 128 in
  let crashes = ref 0 and committed = ref 0 in
  let promote primary =
    try Deploy.fail_over d ~dc:primary with
    | Deploy.Promotion_refused _ -> (
      (* honest refusal: fall back to a cold restart of the primary —
         slower, but every acked commit survives *)
      try Deploy.crash_dc d primary
      with Fault.Injected_crash p2 ->
        incr crashes;
        Deploy.crash_for_point d ~point:p2 ~tc:"tc1" ~dc:default_dc)
    | Fault.Injected_crash p2 ->
      (* a second planned kill landed inside the promotion redo *)
      incr crashes;
      Deploy.crash_for_point d ~point:p2 ~tc:"tc1" ~dc:default_dc
  in
  let handle = function
    | Fault.Injected_crash p when String.equal p Repl.p_ship_batch ->
      incr crashes;
      let primary =
        match Repl.Manager.last_ship_primary (Deploy.manager d ~tc:"tc1") with
        | Some p -> p
        | None -> default_dc
      in
      promote primary
    | Fault.Injected_crash p ->
      incr crashes;
      Deploy.crash_for_point d ~point:p ~tc:"tc1" ~dc:default_dc
    | Fault.Io_error p ->
      incr crashes;
      Fault.disarm ();
      Deploy.crash_for_point d ~point:p ~tc:"tc1" ~dc:default_dc
    | e -> raise e
  in
  let probe marker =
    let attempt () =
      let txn = Tc.begin_txn tc in
      let v =
        match Tc.read tc txn ~table ~key:marker with
        | `Ok v -> v
        | `Blocked | `Fail _ -> None
      in
      (match Tc.commit tc txn with
      | `Ok () -> ()
      | `Blocked | `Fail _ ->
        if Tc.is_active txn then Tc.abort tc txn ~reason:"chaos probe");
      v
    in
    try attempt ()
    with (Fault.Injected_crash _ | Fault.Io_error _) as e ->
      handle e;
      (try attempt () with Fault.Injected_crash _ | Fault.Io_error _ -> None)
  in
  Fault.arm ~seed plan;
  for i = 0 to txns - 1 do
    maintain ~i d tc ~handle ~promote;
    let marker = Printf.sprintf "m%03d" i in
    let staged : (string, string option) Hashtbl.t = Hashtbl.create 8 in
    let cur = ref None in
    let phase = ref `Body in
    let resolve_by_marker () =
      if probe marker <> None then begin
        incr committed;
        commit_staged oracle staged
      end
    in
    try
      let txn = Tc.begin_txn tc in
      cur := Some txn;
      (match Tc.insert tc txn ~table ~key:marker ~value:"1" with
      | `Ok () -> Hashtbl.replace staged marker (Some "1")
      | `Blocked | `Fail _ -> ());
      let delete_bias = if 3 * i > 2 * txns then 0.7 else 0.25 in
      for _ = 1 to 1 + Rng.int rng 4 do
        let key = Printf.sprintf "k%02d" (Rng.int rng 50) in
        let current =
          if Hashtbl.mem staged key then Hashtbl.find staged key
          else Option.join (Hashtbl.find_opt oracle key)
        in
        match current with
        | None -> (
          let value = Printf.sprintf "v%06d" (Rng.int rng 1_000_000) in
          match Tc.insert tc txn ~table ~key ~value with
          | `Ok () -> Hashtbl.replace staged key (Some value)
          | `Blocked | `Fail _ -> ())
        | Some _ ->
          if Rng.chance rng delete_bias then (
            match Tc.delete tc txn ~table ~key with
            | `Ok () -> Hashtbl.replace staged key None
            | `Blocked | `Fail _ -> ())
          else
            let value = Printf.sprintf "v%06d" (Rng.int rng 1_000_000) in
            (match Tc.update tc txn ~table ~key ~value with
            | `Ok () -> Hashtbl.replace staged key (Some value)
            | `Blocked | `Fail _ -> ())
      done;
      phase := `Commit;
      match Tc.commit tc txn with
      | `Ok () ->
        incr committed;
        commit_staged oracle staged
      | `Blocked | `Fail _ -> ()
    with (Fault.Injected_crash p | Fault.Io_error p) as e -> (
      handle e;
      (* a failover counts as a DC-side event for fate resolution: the
         TC survived it *)
      let component =
        if String.equal p Repl.p_ship_batch then `Dc
        else Kernel.component_of_point p
      in
      match (!phase, component, !cur) with
      | `Body, `Tc, _ -> ()
      | `Body, `Dc, Some txn ->
        if Tc.is_active txn then
          Tc.abort tc txn ~reason:"chaos: rollback after DC crash"
      | `Body, `Dc, None -> ()
      | `Commit, `Tc, _ -> resolve_by_marker ()
      | `Commit, `Dc, Some txn ->
        let rec settle attempts =
          if not (Tc.is_active txn) then resolve_by_marker ()
          else if attempts = 0 then (
            Tc.abort tc txn ~reason:"chaos: commit retries exhausted";
            resolve_by_marker ())
          else
            try
              match Tc.commit tc txn with
              | `Ok () ->
                incr committed;
                commit_staged oracle staged
              | `Blocked | `Fail _ -> ()
            with (Fault.Injected_crash _ | Fault.Io_error _) as e ->
              handle e;
              settle (attempts - 1)
        in
        settle 4
      | `Commit, `Dc, None -> ())
  done;
  let rec quiesce_settle attempts =
    try Deploy.quiesce d
    with (Fault.Injected_crash _ | Fault.Io_error _) as e when attempts > 0 ->
      handle e;
      quiesce_settle (attempts - 1)
  in
  quiesce_settle 4;
  let fired = Fault.fired_points () in
  Fault.disarm ();
  Trace.set_enabled was_tracing;
  let counters_at_quiesce = Instrument.snapshot counters in
  let report =
    Audit.run_deploy d ~tc:"tc1" ~table ~expected:(oracle_rows oracle)
  in
  {
    c_label = label;
    c_seed = seed;
    c_fired = fired;
    c_crashes = !crashes;
    c_committed = !committed;
    c_redelivered = report.Audit.redelivered;
    c_violations = report.Audit.violations;
    c_counters = counters_at_quiesce;
    c_trace =
      (if keep_trace || report.Audit.violations <> [] then Trace.to_jsonl ()
       else "");
  }

let run_cycle_replicated ?keep_trace ~label ~plan ~seed ~txns ~parts ~replicas
    ~durability () =
  let maintain ~i d tc ~handle ~promote:_ =
    if i = txns / 2 then
      try
        Deploy.quiesce d;
        ignore (Tc.checkpoint tc)
      with (Fault.Injected_crash _ | Fault.Io_error _) as e -> handle e
  in
  run_cycle_repl_core ?keep_trace ~label ~plan ~seed ~txns ~parts ~replicas
    ~durability ~maintain ()

(* The detach→checkpoint→promote interleaving: dc0's first standby is
   detached a quarter into the workload, a granted checkpoint
   mid-workload advances the redo-scan start point past its frozen
   cursor (consulting — and burning — its retention lease), and at the
   three-quarter mark dc0 "dies" and must fail over to that laggard.
   This is exactly the repro_gap shape with live traffic around it: the
   promotion must either catch the laggard up from the retained log or
   refuse and cold-restart — never serve a hole.  A plan arming
   ["repl.lease.expire"] forces the refusal path. *)
let run_cycle_detach ?keep_trace ~label ~plan ~seed ~txns ~parts ~replicas
    ~durability () =
  let maintain ~i d tc ~handle ~promote =
    let guard f =
      try f ()
      with (Fault.Injected_crash _ | Fault.Io_error _) as e -> handle e
    in
    if i = txns / 4 then
      guard (fun () ->
          match Deploy.replicas d ~dc:"dc0" with
          | sbn :: _ ->
            Repl.Manager.detach (Deploy.manager d ~tc:"tc1") ~name:sbn
          | [] -> ())
    else if i = txns / 2 then
      guard (fun () ->
          (* a *granted* checkpoint is the point of this cycle: flush
             every primary so the grant loop converges under faults *)
          let flush_primaries () =
            Deploy.quiesce d;
            List.iter
              (fun n -> Dc.flush_all (Deploy.dc d n))
              (Deploy.dc_names d)
          in
          flush_primaries ();
          let rec grant tries =
            if (not (Tc.checkpoint tc)) && tries > 0 then begin
              flush_primaries ();
              grant (tries - 1)
            end
          in
          grant 3)
    else if i = 3 * txns / 4 then
      guard (fun () ->
          (* skip if a planned ship-batch kill already promoted dc0's
             only standby earlier in the cycle *)
          if Deploy.replicas d ~dc:"dc0" <> [] then promote "dc0")
  in
  run_cycle_repl_core ?keep_trace ~label ~plan ~seed ~txns ~parts ~replicas
    ~durability ~maintain ()

(* Primary-kill-at-every-batch-boundary plans: singles sweep the Nth
   shipped batch (early, mid-workload, deep), a double promotes twice in
   one cycle (needs two standbys), and combos land a cold kill next to a
   promotion — cold restart and failover redo must coexist.  Standby
   kills ride the ordinary DC points, which fire inside standby applies
   too. *)
let plans_replicated () =
  let ship n =
    ( Printf.sprintf "repl.ship.batch@%d" n,
      [ Fault.crash_at "repl.ship.batch" n ] )
  in
  let singles = List.map ship [ 1; 2; 3; 5; 9; 14 ] in
  let doubles =
    [
      ( "repl.ship.batch@2+repl.ship.batch@9",
        [ Fault.crash_at "repl.ship.batch" 2; Fault.crash_at "repl.ship.batch" 9 ]
      );
    ]
  in
  let combos =
    [
      ( "repl.ship.batch@3+dc.flush.after_page_write@2",
        [
          Fault.crash_at "repl.ship.batch" 3;
          Fault.crash_at "dc.flush.after_page_write" 2;
        ] );
      ( "repl.ship.batch@4+tc.commit.after_force@3",
        [
          Fault.crash_at "repl.ship.batch" 4;
          Fault.crash_at "tc.commit.after_force" 3;
        ] );
      ( "dc.smo.split.mid@1+repl.ship.batch@6",
        [
          Fault.crash_at "dc.smo.split.mid" 1;
          Fault.crash_at "repl.ship.batch" 6;
        ] );
    ]
  in
  singles @ doubles @ combos

(* Plans for the detach→checkpoint→promote cycle.  The no-fault plan is
   the pure interleaving (promotion must catch the laggard up from the
   retained log); ["repl.lease.expire"]@1 force-expires the detached
   replica's lease at the mid-cycle checkpoint, so the promotion must
   refuse and the harness cold-restarts instead; the combos land a
   planned primary kill and a TC kill around the same interleaving. *)
let plans_detach () =
  [
    ("detach+ckpt+promote", []);
    ( "detach+ckpt+lease.expire@1",
      [ Fault.crash_at "repl.lease.expire" 1 ] );
    ( "detach+ckpt+promote+ship.batch@6",
      [ Fault.crash_at "repl.ship.batch" 6 ] );
    ( "detach+ckpt+lease.expire@1+tc.commit.after_force@3",
      [
        Fault.crash_at "repl.lease.expire" 1;
        Fault.crash_at "tc.commit.after_force" 3;
      ] );
    ( "detach+ckpt+promote+wal.dc.force.mid@2",
      [ Fault.crash_at "wal.dc.force.mid" 2 ] );
  ]

(* --- the standard plan sweep ------------------------------------------ *)

let plans () =
  let crash_sweeps =
    [
      ("wal.tc.force.begin", [ 1; 4; 9 ]);
      ("wal.tc.force.mid", [ 1; 2; 7 ]);
      ("wal.dc.force.begin", [ 1; 3; 8 ]);
      ("wal.dc.force.mid", [ 1; 2; 4 ]);
      ("dc.flush.before_page_write", [ 1; 3; 7 ]);
      ("dc.flush.after_page_write", [ 1; 3; 7 ]);
      ("dc.smo.split.mid", [ 1; 2; 3 ]);
      ("dc.smo.consolidate.before_force", [ 1; 2 ]);
      ("dc.checkpoint.mid", [ 1 ]);
      ("tc.commit.before_force", [ 1; 6; 14 ]);
      ("tc.commit.after_force", [ 1; 6; 14 ]);
      ("disk.page_write.torn", [ 1; 3; 6 ]);
    ]
  in
  let singles =
    List.concat_map
      (fun (point, nths) ->
        List.map
          (fun n ->
            (Printf.sprintf "%s@%d" point n, [ Fault.crash_at point n ]))
          nths)
      crash_sweeps
  in
  let pair a na b nb =
    ( Printf.sprintf "%s@%d+%s@%d" a na b nb,
      [ Fault.crash_at a na; Fault.crash_at b nb ] )
  in
  let doubles =
    [
      (* Crash again while recovering from the first crash. *)
      pair "tc.commit.before_force" 2 "tc.recover.mid" 1;
      pair "tc.commit.after_force" 3 "tc.recover.mid" 3;
      pair "wal.tc.force.mid" 2 "tc.recover.mid" 2;
      (* Two independent DC kills in one cycle. *)
      pair "dc.flush.after_page_write" 2 "dc.flush.before_page_write" 5;
      (* Torn write, then a later crash over the repaired page. *)
      pair "disk.page_write.torn" 1 "wal.dc.force.begin" 6;
    ]
  in
  let io =
    [
      ("disk.page_write.io@1", [ Fault.io_error_at "disk.page_write.io" 1 ]);
      ("disk.page_read.io@2", [ Fault.io_error_at "disk.page_read.io" 2 ]);
      ( "disk.page_write.io~3%",
        [ Fault.io_error_with_prob "disk.page_write.io" 0.03 ] );
    ]
  in
  (* Not crashes: the transport catches this fault itself and flips a
     byte of the frame, so a probability rule corrupts a fraction of all
     traffic (both channels) for the whole cycle; the checksum gate turns
     each hit into a loss the resend contracts must absorb.  The paired
     plans make sure recovery redo also runs over a corrupting wire. *)
  let corruption =
    [
      ( "transport.frame.corrupt~10%",
        [ Fault.crash_with_prob "transport.frame.corrupt" 0.10 ] );
      ( "transport.frame.corrupt~5%+tc.commit.before_force@3",
        [
          Fault.crash_with_prob "transport.frame.corrupt" 0.05;
          Fault.crash_at "tc.commit.before_force" 3;
        ] );
      ( "transport.frame.corrupt~5%+dc.flush.after_page_write@2",
        [
          Fault.crash_with_prob "transport.frame.corrupt" 0.05;
          Fault.crash_at "dc.flush.after_page_write" 2;
        ] );
    ]
  in
  singles @ doubles @ io @ corruption

type summary = {
  s_cycles : int;
  s_fired : int;
  s_crashes : int;
  s_violating : cycle list;
  s_fires_by_point : (string * int) list;
  s_counters : (string * int) list;
}

let summarize cycles =
  let fires = Hashtbl.create 32 in
  let counters = Hashtbl.create 64 in
  List.iter
    (fun c ->
      List.iter
        (fun p ->
          Hashtbl.replace fires p
            (1 + Option.value ~default:0 (Hashtbl.find_opt fires p)))
        c.c_fired;
      List.iter
        (fun (name, v) ->
          Hashtbl.replace counters name
            (v + Option.value ~default:0 (Hashtbl.find_opt counters name)))
        c.c_counters)
    cycles;
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    s_cycles = List.length cycles;
    s_fired = List.length (List.filter (fun c -> c.c_fired <> []) cycles);
    s_crashes = List.fold_left (fun acc c -> acc + c.c_crashes) 0 cycles;
    s_violating = List.filter (fun c -> c.c_violations <> []) cycles;
    s_fires_by_point = sorted fires;
    s_counters = sorted counters;
  }

let soak ?(base_seed = 0xC1D9) ?(seeds_per_plan = 7) ?(txns = 24) () =
  let cycles =
    List.concat
      (List.mapi
         (fun pi (label, plan) ->
           List.init seeds_per_plan (fun si ->
               run_cycle ~label ~plan
                 ~seed:(base_seed + (131 * pi) + (17 * si))
                 ~txns ()))
         (plans ()))
  in
  (cycles, summarize cycles)

let soak_partitioned ?(base_seed = 0x5A4D) ?(seeds_per_plan = 4) ?(txns = 24)
    ?(parts = 3) () =
  let cycles =
    List.concat
      (List.mapi
         (fun pi (label, plan) ->
           List.init seeds_per_plan (fun si ->
               run_cycle_partitioned ~label ~plan
                 ~seed:(base_seed + (131 * pi) + (17 * si))
                 ~txns ~parts ()))
         (plans_partitioned ()))
  in
  (cycles, summarize cycles)

let soak_replicated ?(base_seed = 0x9E97) ?(seeds_per_plan = 3) ?(txns = 24)
    ?(parts = 2) ?(replicas = 2) () =
  let cycles =
    List.concat
      (List.mapi
         (fun pi (label, plan) ->
           List.init seeds_per_plan (fun si ->
               let seed = base_seed + (131 * pi) + (17 * si) in
               (* alternate durability policies so Quorum-gated commits
                  also live through mid-workload promotions *)
               let durability =
                 if seed land 1 = 0 then Repl.Quorum 1 else Repl.Primary_only
               in
               run_cycle_replicated ~label ~plan ~seed ~txns ~parts ~replicas
                 ~durability ()))
         (plans_replicated ()))
  in
  (cycles, summarize cycles)

let soak_detach ?(base_seed = 0xD7AC) ?(seeds_per_plan = 3) ?(txns = 24)
    ?(parts = 2) ?(replicas = 1) () =
  let cycles =
    List.concat
      (List.mapi
         (fun pi (label, plan) ->
           List.init seeds_per_plan (fun si ->
               let seed = base_seed + (131 * pi) + (17 * si) in
               let durability =
                 if seed land 1 = 0 then Repl.Quorum 1 else Repl.Primary_only
               in
               run_cycle_detach ~label ~plan ~seed ~txns ~parts ~replicas
                 ~durability ()))
         (plans_detach ()))
  in
  (cycles, summarize cycles)

(* --- multi-TC front-end cycles ---------------------------------------- *)

module Front = Untx_front.Front

(* TC-kill-under-load: two TCs share [parts] partitioned DCs behind the
   session front end; at the midpoint one TC is hard-killed while its
   sessions still have queued transactions.  Each TC's sessions update
   their own table with session-scoped keys (the Section 6 disjoint-
   updaters rule), so the surviving TC must sail through untouched and
   the victim's recovery must reset exactly its own lost suffix.

   Group-commit batching makes the kill genuinely ambiguous: commits the
   front already reported rode unforced batches, so the crash may disown
   a suffix of them.  The oracle is settled the honest way — after the
   final drain every committed transaction's unique marker is probed,
   and only survivors' effects enter the expected rows.  Per-TC log
   order makes the lost set a suffix, so the surviving fold is exact.

   The audit runs {!Audit.run_deploy} once per TC (structure, hygiene,
   per-TC idempotent redelivery, oracle, and the cross-TC watermark
   check), so one TC's crash leaking into the other's watermark slots —
   the bug the (tc, epoch, seq) keying prevents — is caught here. *)
let run_cycle_mtc ?(keep_trace = false) ~label ~plan ~seed ~txns ~parts () =
  Fault.disarm ();
  let was_tracing = Trace.enabled () in
  Trace.clear ();
  Trace.set_enabled true;
  let counters = Instrument.create () in
  let rng = Rng.create ~seed in
  let policy = if seed mod 3 = 0 then lossy else Transport.reliable in
  let d = Deploy.create ~counters ~policy ~seed () in
  let tc_names = [ "tc1"; "tc2" ] in
  List.iteri
    (fun i name ->
      ignore
        (Deploy.add_tc d ~name
           {
             (Tc.default_config (Tc_id.of_int (i + 1))) with
             lwm_every = 8;
             debug_checks = true;
           }))
    tc_names;
  let dc_names = List.init parts (Printf.sprintf "dc%d") in
  List.iter
    (fun name ->
      ignore
        (Deploy.add_dc d ~name
           {
             Dc.page_capacity = 160;
             cache_pages = 6;
             sync_policy = Dc.Full_ablsn;
             tc_reset_mode = (if seed mod 5 = 0 then Dc.Complete else Dc.Selective);
             debug_checks = true;
           }))
    dc_names;
  (* Disjoint updaters: tc1 owns kv1, tc2 owns kv2 — both spread over
     every DC, so the kill exercises per-TC reset on shared partitions. *)
  let table_of_tc = function "tc1" -> "kv1" | _ -> "kv2" in
  List.iter
    (fun tcn ->
      Deploy.add_partitioned_table d ~name:(table_of_tc tcn)
        ~versioned:(seed land 1 = 0) ~dcs:dc_names ())
    tc_names;
  let front =
    Front.create ~counters
      ~cfg:
        {
          Front.max_sessions = 8;
          session_queue = 3;
          total_queue = 8;
          batch = 2 + (seed mod 3);
        }
      d
  in
  let sessions = Array.init 4 (fun _ -> Front.open_session front) in
  let victim = if seed land 1 = 0 then "tc1" else "tc2" in
  let crashes = ref 0 in
  (* Projected per-session view for choosing sensible ops; divergence
     after a lost suffix only skews op choices (harmless rejections),
     never the oracle, which is rebuilt from surviving markers. *)
  let projected : (string, string option) Hashtbl.t = Hashtbl.create 128 in
  (* ticket -> (table, marker, staged), in submission order *)
  let submitted = ref [] in
  Fault.arm ~seed plan;
  let submit_with_backpressure s ops =
    (* Shed is a refusal, not a stall: pump to free queue space and
       retry a bounded number of times, then give the transaction up. *)
    let rec offer tries =
      match Front.submit front s ops with
      | `Ticket k -> Some k
      | `Overloaded _ ->
        if tries = 0 then None
        else begin
          ignore (Front.pump ~budget:2 front);
          offer (tries - 1)
        end
    in
    offer 6
  in
  for i = 0 to txns - 1 do
    if i = txns / 2 then begin
      incr crashes;
      Deploy.crash_tc d victim
    end;
    let s = sessions.(i mod Array.length sessions) in
    let sid = Front.session_id s in
    let table = table_of_tc (Front.session_tc s) in
    let marker = Printf.sprintf "s%d-m%03d" sid i in
    let staged : (string, string option) Hashtbl.t = Hashtbl.create 8 in
    let ops = ref [ Front.Insert { table; key = marker; value = "1" } ] in
    Hashtbl.replace staged marker (Some "1");
    for _ = 1 to 1 + Rng.int rng 3 do
      let key = Printf.sprintf "s%d-k%02d" sid (Rng.int rng 30) in
      let current =
        if Hashtbl.mem staged key then Hashtbl.find staged key
        else Option.join (Hashtbl.find_opt projected key)
      in
      let value = Printf.sprintf "v%06d" (Rng.int rng 1_000_000) in
      match current with
      | None ->
        ops := Front.Insert { table; key; value } :: !ops;
        Hashtbl.replace staged key (Some value)
      | Some _ ->
        if Rng.chance rng 0.3 then begin
          ops := Front.Delete { table; key } :: !ops;
          Hashtbl.replace staged key None
        end
        else begin
          ops := Front.Update { table; key; value } :: !ops;
          Hashtbl.replace staged key (Some value)
        end
    done;
    (match submit_with_backpressure s (List.rev !ops) with
    | Some ticket ->
      Hashtbl.iter (Hashtbl.replace projected) staged;
      submitted := (ticket, table, marker, staged) :: !submitted
    | None -> ());
    (* keep execution overlapped with submission — the kill must land
       on non-empty queues *)
    if i mod 3 = 2 then ignore (Front.pump ~budget:1 front)
  done;
  Front.drain front;
  Deploy.quiesce d;
  let fired = Fault.fired_points () in
  Fault.disarm ();
  Trace.set_enabled was_tracing;
  let counters_at_quiesce = Instrument.snapshot counters in
  (* Fate settlement: a commit the front acknowledged may have ridden an
     unforced batch into the kill.  Its unique marker decides. *)
  let probe table marker =
    let tcn = if table = "kv1" then "tc1" else "tc2" in
    let tc = Deploy.tc d tcn in
    let txn = Tc.begin_txn tc in
    let v =
      match Tc.read tc txn ~table ~key:marker with
      | `Ok v -> v
      | `Blocked | `Fail _ -> None
    in
    (match Tc.commit tc txn with
    | `Ok () -> ()
    | `Blocked | `Fail _ ->
      if Tc.is_active txn then Tc.abort tc txn ~reason:"mtc probe");
    v <> None
  in
  let oracles = Hashtbl.create 2 in
  List.iter
    (fun tcn -> Hashtbl.replace oracles (table_of_tc tcn) (Hashtbl.create 64))
    tc_names;
  let committed = ref 0 in
  List.iter
    (fun (ticket, table, marker, staged) ->
      match Front.poll front ticket with
      | `Done (Front.Committed _) when probe table marker ->
        incr committed;
        commit_staged (Hashtbl.find oracles table) staged
      | `Done _ -> ()
      | `Pending -> ())
    (List.rev !submitted);
  let reports =
    List.map
      (fun tcn ->
        let table = table_of_tc tcn in
        Audit.run_deploy d ~tc:tcn ~table
          ~expected:(oracle_rows (Hashtbl.find oracles table)))
      tc_names
  in
  let violations = List.concat_map (fun r -> r.Audit.violations) reports in
  {
    c_label = label;
    c_seed = seed;
    c_fired = fired;
    c_crashes = !crashes;
    c_committed = !committed;
    c_redelivered =
      List.fold_left (fun a r -> a + r.Audit.redelivered) 0 reports;
    c_violations = violations;
    c_counters = counters_at_quiesce;
    c_trace =
      (if keep_trace || violations <> [] then Trace.to_jsonl () else "");
  }

(* The scripted kill is the plan's backbone; the optional rules layer
   transport adversity on top of it. *)
let plans_mtc () =
  [
    ("tc-kill@mid", []);
    ( "tc-kill@mid+corrupt~5%",
      [ Fault.crash_with_prob "transport.frame.corrupt" 0.05 ] );
  ]

let soak_mtc ?(base_seed = 0xF207) ?(seeds_per_plan = 4) ?(txns = 24)
    ?(parts = 2) () =
  let cycles =
    List.concat
      (List.mapi
         (fun pi (label, plan) ->
           List.init seeds_per_plan (fun si ->
               let seed = base_seed + (131 * pi) + (17 * si) in
               run_cycle_mtc ~label ~plan ~seed ~txns ~parts ()))
         (plans_mtc ()))
  in
  (cycles, summarize cycles)

(* --- indexed workloads ------------------------------------------------- *)

module Index = Untx_index.Index

(* The same extract shapes the workload bank uses: categories are the
   value's prefix up to the first ':' (absent on marker rows, which
   therefore carry no [by_cat] entry), lengths bucket everything. *)
let extract_cat ~key:_ ~value =
  match String.index_opt value ':' with
  | Some i -> [ String.sub value 0 i ]
  | None -> []

let extract_len ~key:_ ~value = [ Printf.sprintf "L%d" (String.length value / 16) ]

let make_deploy_indexed ~counters ~seed ~parts ~idx =
  let policy = if seed mod 3 = 0 then lossy else Transport.reliable in
  let sync_policy =
    match seed / 4 mod 3 with
    | 0 -> Dc.Stall_until_lwm
    | 1 -> Dc.Bounded 4
    | _ -> Dc.Full_ablsn
  in
  let tc_reset_mode = if seed mod 5 = 0 then Dc.Complete else Dc.Selective in
  (* both Section 3.1 lock protocols; never Optimistic — index
     maintenance re-reads its own writes *)
  let cc_protocol = if seed land 2 = 0 then Tc.Key_locks else Tc.Range_locks 8 in
  let d = Deploy.create ~counters ~policy ~seed () in
  ignore
    (Deploy.add_tc d ~name:"tc1"
       {
         (Tc.default_config (Tc_id.of_int 1)) with
         cc_protocol;
         lwm_every = 8;
         debug_checks = true;
       });
  let dc_names = List.init parts (Printf.sprintf "dc%d") in
  List.iter
    (fun name ->
      ignore
        (Deploy.add_dc d ~name
           {
             Dc.page_capacity = 160;
             cache_pages = 6;
             sync_policy;
             tc_reset_mode;
             debug_checks = true;
           }))
    dc_names;
  Deploy.add_indexed_table d ~idx ~name:table ~versioned:(seed land 1 = 0)
    ~dcs:dc_names
    ~indexes:[ ("by_cat", extract_cat); ("by_len", extract_len) ]
    ();
  d

(* Aborts the transaction the moment any index-maintaining op returns a
   non-[`Ok] — the Fail-means-caller-aborts contract: a refused entry op
   would otherwise leave the primary write without its maintenance. *)
exception Dead_txn

(* The partitioned cycle with every mutation routed through
   {!Untx_index.Index}, so a kill can land *between* a primary write and
   its entry maintenance — transactionality (rollback on abort, redo on
   recovery) must keep them atomic anyway.  The audit adds
   {!Audit.check_index}: merged entry tables must exactly match the
   image of the live primary rows. *)
let run_cycle_indexed ?(keep_trace = false) ~label ~plan ~seed ~txns ~parts ()
    =
  Fault.disarm ();
  let was_tracing = Trace.enabled () in
  Trace.clear ();
  Trace.set_enabled true;
  let counters = Instrument.create () in
  let rng = Rng.create ~seed in
  let idx = Index.create ~counters () in
  let d = make_deploy_indexed ~counters ~seed ~parts ~idx in
  let tc = Deploy.tc d "tc1" in
  let default_dc = List.hd (Deploy.partitions d ~table) in
  let oracle : (string, string option) Hashtbl.t = Hashtbl.create 128 in
  let crashes = ref 0 and committed = ref 0 in
  let handle = function
    | Fault.Injected_crash p ->
      incr crashes;
      Deploy.crash_for_point d ~point:p ~tc:"tc1" ~dc:default_dc
    | Fault.Io_error p ->
      incr crashes;
      Fault.disarm ();
      Deploy.crash_for_point d ~point:p ~tc:"tc1" ~dc:default_dc
    | e -> raise e
  in
  let probe marker =
    let attempt () =
      let txn = Tc.begin_txn tc in
      let v =
        match Tc.read tc txn ~table ~key:marker with
        | `Ok v -> v
        | `Blocked | `Fail _ -> None
      in
      (match Tc.commit tc txn with
      | `Ok () -> ()
      | `Blocked | `Fail _ ->
        if Tc.is_active txn then Tc.abort tc txn ~reason:"chaos probe");
      v
    in
    try attempt ()
    with (Fault.Injected_crash _ | Fault.Io_error _) as e ->
      handle e;
      (try attempt () with Fault.Injected_crash _ | Fault.Io_error _ -> None)
  in
  let gen_value () =
    let cat =
      (if Rng.chance rng 0.15 then "c\x00" else "c")
      ^ string_of_int (Rng.int rng 4)
    in
    Printf.sprintf "%s:v%06d" cat (Rng.int rng 1_000_000)
  in
  Fault.arm ~seed plan;
  for i = 0 to txns - 1 do
    if i = txns / 2 then begin
      try
        Deploy.quiesce d;
        ignore (Tc.checkpoint tc)
      with (Fault.Injected_crash _ | Fault.Io_error _) as e -> handle e
    end;
    let marker = Printf.sprintf "m%03d" i in
    let staged : (string, string option) Hashtbl.t = Hashtbl.create 8 in
    let cur = ref None in
    let phase = ref `Body in
    let resolve_by_marker () =
      if probe marker <> None then begin
        incr committed;
        commit_staged oracle staged
      end
    in
    try
      let txn = Tc.begin_txn tc in
      cur := Some txn;
      let apply key v outcome =
        match outcome with
        | `Ok () -> Hashtbl.replace staged key v
        | `Blocked | `Fail _ -> raise Dead_txn
      in
      apply marker (Some "1") (Index.insert idx tc txn ~table ~key:marker ~value:"1");
      let delete_bias = if 3 * i > 2 * txns then 0.7 else 0.25 in
      for _ = 1 to 1 + Rng.int rng 4 do
        let key = Printf.sprintf "k%02d" (Rng.int rng 50) in
        let current =
          if Hashtbl.mem staged key then Hashtbl.find staged key
          else Option.join (Hashtbl.find_opt oracle key)
        in
        match current with
        | None ->
          let value = gen_value () in
          apply key (Some value) (Index.insert idx tc txn ~table ~key ~value)
        | Some _ ->
          if Rng.chance rng delete_bias then
            apply key None (Index.delete idx tc txn ~table ~key)
          else
            let value = gen_value () in
            apply key (Some value) (Index.update idx tc txn ~table ~key ~value)
      done;
      phase := `Commit;
      match Tc.commit tc txn with
      | `Ok () ->
        incr committed;
        commit_staged oracle staged
      | `Blocked | `Fail _ -> ()
    with
    | Dead_txn -> (
      match !cur with
      | Some txn when Tc.is_active txn ->
        Tc.abort tc txn ~reason:"chaos: index op refused"
      | _ -> ())
    | (Fault.Injected_crash p | Fault.Io_error p) as e -> (
      handle e;
      let component = Kernel.component_of_point p in
      match (!phase, component, !cur) with
      | `Body, `Tc, _ -> ()
      | `Body, `Dc, Some txn ->
        if Tc.is_active txn then
          Tc.abort tc txn ~reason:"chaos: rollback after DC crash"
      | `Body, `Dc, None -> ()
      | `Commit, `Tc, _ -> resolve_by_marker ()
      | `Commit, `Dc, Some txn ->
        let rec settle attempts =
          if not (Tc.is_active txn) then resolve_by_marker ()
          else if attempts = 0 then (
            Tc.abort tc txn ~reason:"chaos: commit retries exhausted";
            resolve_by_marker ())
          else
            try
              match Tc.commit tc txn with
              | `Ok () ->
                incr committed;
                commit_staged oracle staged
              | `Blocked | `Fail _ -> ()
            with (Fault.Injected_crash _ | Fault.Io_error _) as e ->
              handle e;
              settle (attempts - 1)
        in
        settle 4
      | `Commit, `Dc, None -> ())
  done;
  let rec quiesce_settle attempts =
    try Deploy.quiesce d
    with (Fault.Injected_crash _ | Fault.Io_error _) as e when attempts > 0 ->
      handle e;
      quiesce_settle (attempts - 1)
  in
  quiesce_settle 4;
  let fired = Fault.fired_points () in
  Fault.disarm ();
  Trace.set_enabled was_tracing;
  let counters_at_quiesce = Instrument.snapshot counters in
  let report =
    Audit.run_deploy d ~tc:"tc1" ~table ~expected:(oracle_rows oracle)
  in
  let violations =
    report.Audit.violations @ Audit.check_index d ~idx ~table
  in
  {
    c_label = label;
    c_seed = seed;
    c_fired = fired;
    c_crashes = !crashes;
    c_committed = !committed;
    c_redelivered = report.Audit.redelivered;
    c_violations = violations;
    c_counters = counters_at_quiesce;
    c_trace = (if keep_trace || violations <> [] then Trace.to_jsonl () else "");
  }

(* Entry tables take real SMO traffic (tiny pages, long escaped keys),
   so the split point rides every plan family; TC commit kills exercise
   redo of interleaved primary+entry ops. *)
let plans_indexed () =
  let singles =
    List.concat_map
      (fun (point, nths) ->
        List.map
          (fun n ->
            (Printf.sprintf "%s@%d" point n, [ Fault.crash_at point n ]))
          nths)
      [
        ("dc.smo.split.mid", [ 1; 2 ]);
        ("dc.flush.before_page_write", [ 1 ]);
        ("wal.dc.force.mid", [ 2 ]);
        ("tc.commit.before_force", [ 2 ]);
        ("tc.commit.after_force", [ 2 ]);
      ]
  in
  let doubles =
    [
      ( "dc.smo.split.mid@1+tc.commit.after_force@2",
        [
          Fault.crash_at "dc.smo.split.mid" 1;
          Fault.crash_at "tc.commit.after_force" 2;
        ] );
    ]
  in
  let corruption =
    [
      ( "transport.frame.corrupt~5%+dc.smo.split.mid@1",
        [
          Fault.crash_with_prob "transport.frame.corrupt" 0.05;
          Fault.crash_at "dc.smo.split.mid" 1;
        ] );
    ]
  in
  singles @ doubles @ corruption

let soak_indexed ?(base_seed = 0x1D8) ?(seeds_per_plan = 3) ?(txns = 24)
    ?(parts = 2) () =
  let cycles =
    List.concat
      (List.mapi
         (fun pi (label, plan) ->
           List.init seeds_per_plan (fun si ->
               run_cycle_indexed ~label ~plan
                 ~seed:(base_seed + (131 * pi) + (17 * si))
                 ~txns ~parts ()))
         (plans_indexed ()))
  in
  (cycles, summarize cycles)

(* --- workload-bank chaos ----------------------------------------------- *)

module Workload = Untx_workload.Workload

(* The scripted-crash half of the bank is the workload's own
   ([Workload.run] kills a DC or the TC between transactions); this
   wrapper turns each bank spec into a chaos cycle by following the run
   with the full deployment audit — oracle parity from [e_expected],
   index parity from {!Audit.check_index} when the spec maintains
   indexes. *)
let run_cycle_workload ~spec ~seed () =
  let r, env = Workload.run ~seed spec in
  let d = env.Workload.e_deploy in
  let audit_violations =
    List.concat_map
      (fun (tbl, expected) ->
        let report = Audit.run_deploy d ~tc:"tc1" ~table:tbl ~expected in
        report.Audit.violations)
      env.Workload.e_expected
    @
    if spec.Workload.w_indexed then
      List.concat_map
        (fun (tbl, _) ->
          Audit.check_index d ~idx:env.Workload.e_idx ~table:tbl)
        spec.Workload.w_tables
    else []
  in
  {
    c_label = "bank:" ^ spec.Workload.w_name;
    c_seed = seed;
    c_fired = [];
    c_crashes = r.Workload.r_crashes;
    c_committed = r.Workload.r_committed;
    c_redelivered = 0;
    c_violations = r.Workload.r_violations @ audit_violations;
    c_counters = [];
    c_trace = "";
  }

let soak_workloads ?(base_seed = 0xB0B) ?(seeds_per_spec = 2) () =
  let cycles =
    List.concat
      (List.mapi
         (fun pi spec ->
           List.init seeds_per_spec (fun si ->
               run_cycle_workload ~spec ~seed:(base_seed + (131 * pi) + (17 * si)) ()))
         (Workload.bank ()))
  in
  (cycles, summarize cycles)

(* --- copy-on-write branch chaos ---------------------------------------- *)

module Branch = Untx_branch.Branch
module Layer = Untx_layer.Layer

(* Layered deployment for the branch cycles: fork targets must resolve
   through the parent's layer store, so [~layers:true], no standbys, and
   an unversioned table (the store's reconstruction space). *)
let make_deploy_branched ~counters ~seed ~parts =
  let policy = if seed mod 3 = 0 then lossy else Transport.reliable in
  let sync_policy =
    match seed / 4 mod 3 with
    | 0 -> Dc.Stall_until_lwm
    | 1 -> Dc.Bounded 4
    | _ -> Dc.Full_ablsn
  in
  let tc_reset_mode = if seed mod 5 = 0 then Dc.Complete else Dc.Selective in
  let d = Deploy.create ~counters ~policy ~layers:true ~seed () in
  ignore
    (Deploy.add_tc d ~name:"tc1"
       {
         (Tc.default_config (Tc_id.of_int 1)) with
         lwm_every = 8;
         debug_checks = true;
       });
  let dc_names = List.init parts (Printf.sprintf "dc%d") in
  List.iter
    (fun name ->
      ignore
        (Deploy.add_dc d ~name
           {
             Dc.page_capacity = 160;
             cache_pages = 6;
             sync_policy;
             tc_reset_mode;
             debug_checks = true;
           }))
    dc_names;
  Deploy.add_partitioned_table d ~name:table ~versioned:false ~replicas:0
    ~dcs:dc_names ();
  d

(* Fork-under-load: a third into the workload the deployment forks at
   its stable LSN; from then on every iteration drives one parent and
   one branch transaction over the same key space (so copy-on-write
   materialization races real parent traffic), and at the two-thirds
   mark the parent compacts, truncates history at its stable LSN (the
   cut must clamp at the live branch's fork pin), and the branch DC is
   killed and recovered.  Faults route by attribution: a DC-side point
   that escaped the branch's stack crashes the branch DC
   ([Deploy.crash_for_point] consults the fault wrapper), a TC-side
   point that escaped a branch operation crash-recovers the branch's
   own TC.  The audit is the full parent [Audit.run_deploy] plus
   {!Audit.check_branch} plus two oracle laws: the branch tracks its
   own shadow map, and the shared prefix at the fork point still reads
   back exactly as the parent's oracle stood when the fork was cut. *)
let run_cycle_branch ?(keep_trace = false) ~label ~plan ~seed ~txns ~parts ()
    =
  Fault.disarm ();
  let was_tracing = Trace.enabled () in
  Trace.clear ();
  Trace.set_enabled true;
  let counters = Instrument.create () in
  let rng = Rng.create ~seed in
  let d = make_deploy_branched ~counters ~seed ~parts in
  let tc = Deploy.tc d "tc1" in
  let default_dc = List.hd (Deploy.partitions d ~table) in
  let oracle : (string, string option) Hashtbl.t = Hashtbl.create 128 in
  let br_oracle : (string, string option) Hashtbl.t = Hashtbl.create 128 in
  let fork_state = ref None (* (fork lsn, oracle snapshot at the fork) *) in
  let br = ref None in
  let in_branch = ref false in
  let crashes = ref 0 and committed = ref 0 and br_committed = ref 0 in
  let recover_for p =
    match (Kernel.component_of_point p, !br) with
    | `Tc, Some b when !in_branch ->
      (* the point escaped the branch's own TC: recover it, not tc1 *)
      Tc.crash (Branch.tc b);
      Tc.recover (Branch.tc b)
    | _ -> Deploy.crash_for_point d ~point:p ~tc:"tc1" ~dc:default_dc
  in
  let handle = function
    | Fault.Injected_crash p ->
      incr crashes;
      recover_for p
    | Fault.Io_error p ->
      incr crashes;
      Fault.disarm ();
      recover_for p
    | e -> raise e
  in
  let guard f =
    try f ()
    with (Fault.Injected_crash _ | Fault.Io_error _) as e -> handle e
  in
  let probe_with read marker =
    let attempt () = read marker in
    try attempt ()
    with (Fault.Injected_crash _ | Fault.Io_error _) as e ->
      handle e;
      (try attempt () with Fault.Injected_crash _ | Fault.Io_error _ -> None)
  in
  let parent_probe =
    probe_with (fun marker ->
        let txn = Tc.begin_txn tc in
        let v =
          match Tc.read tc txn ~table ~key:marker with
          | `Ok v -> v
          | `Blocked | `Fail _ -> None
        in
        (match Tc.commit tc txn with
        | `Ok () -> ()
        | `Blocked | `Fail _ ->
          if Tc.is_active txn then Tc.abort tc txn ~reason:"chaos probe");
        v)
  in
  let branch_probe b =
    probe_with (fun marker ->
        let txn = Branch.begin_txn b in
        let v =
          match Branch.read b txn ~table ~key:marker with
          | `Ok v -> v
          | `Blocked | `Fail _ -> None
        in
        (match Branch.commit b txn with
        | `Ok () -> ()
        | `Blocked | `Fail _ ->
          if Tc.is_active txn then Branch.abort b txn ~reason:"chaos probe");
        v)
  in
  (* One generated transaction against [ops]'s surface, with the stock
     marker-probe fate protocol.  [shadow] is the side's own oracle. *)
  let run_txn ~marker ~shadow ~probe ~counter
      ~(begin_txn : unit -> Tc.txn) ~ins ~upd ~del ~commit ~abort ~is_active =
    let staged : (string, string option) Hashtbl.t = Hashtbl.create 8 in
    let cur = ref None in
    let phase = ref `Body in
    let resolve_by_marker () =
      if probe marker <> None then begin
        incr counter;
        commit_staged shadow staged
      end
    in
    try
      let txn = begin_txn () in
      cur := Some txn;
      (match ins txn ~key:marker ~value:"1" with
      | `Ok () -> Hashtbl.replace staged marker (Some "1")
      | `Blocked | `Fail _ -> ());
      for _ = 1 to 1 + Rng.int rng 4 do
        let key = Printf.sprintf "k%02d" (Rng.int rng 50) in
        let current =
          if Hashtbl.mem staged key then Hashtbl.find staged key
          else Option.join (Hashtbl.find_opt shadow key)
        in
        match current with
        | None -> (
          let value = Printf.sprintf "v%06d" (Rng.int rng 1_000_000) in
          match ins txn ~key ~value with
          | `Ok () -> Hashtbl.replace staged key (Some value)
          | `Blocked | `Fail _ -> ())
        | Some _ ->
          if Rng.chance rng 0.3 then (
            match del txn ~key with
            | `Ok () -> Hashtbl.replace staged key None
            | `Blocked | `Fail _ -> ())
          else
            let value = Printf.sprintf "v%06d" (Rng.int rng 1_000_000) in
            (match upd txn ~key ~value with
            | `Ok () -> Hashtbl.replace staged key (Some value)
            | `Blocked | `Fail _ -> ())
      done;
      phase := `Commit;
      match commit txn with
      | `Ok () ->
        incr counter;
        commit_staged shadow staged
      | `Blocked | `Fail _ -> ()
    with (Fault.Injected_crash p | Fault.Io_error p) as e -> (
      handle e;
      match (!phase, Kernel.component_of_point p, !cur) with
      | `Body, `Tc, _ -> ()
      | `Body, `Dc, Some txn ->
        if is_active txn then abort txn ~reason:"chaos: rollback after crash"
      | `Body, `Dc, None -> ()
      | `Commit, `Tc, _ -> resolve_by_marker ()
      | `Commit, `Dc, Some txn ->
        let rec settle attempts =
          if not (is_active txn) then resolve_by_marker ()
          else if attempts = 0 then (
            abort txn ~reason:"chaos: commit retries exhausted";
            resolve_by_marker ())
          else
            try
              match commit txn with
              | `Ok () ->
                incr counter;
                commit_staged shadow staged
              | `Blocked | `Fail _ -> ()
            with (Fault.Injected_crash _ | Fault.Io_error _) as e ->
              handle e;
              settle (attempts - 1)
        in
        settle 4
      | `Commit, `Dc, None -> ())
  in
  Fault.arm ~seed plan;
  for i = 0 to txns - 1 do
    (* fork at the first stable point past a third of the workload *)
    if i >= txns / 3 && !br = None then
      guard (fun () ->
          Deploy.quiesce d;
          Tc.force_log tc;
          let fork = Tc.stable_lsn tc in
          let b = Deploy.create_branch d ~from_lsn:fork ~name:"b" in
          fork_state := Some (fork, Hashtbl.copy oracle);
          Hashtbl.iter (Hashtbl.replace br_oracle) oracle;
          br := Some b);
    if i = 2 * txns / 3 && !br <> None then
      guard (fun () ->
          Deploy.quiesce d;
          Repl.Manager.compact_layers (Deploy.manager d ~tc:"tc1");
          ignore (Deploy.truncate_history d ~below:(Tc.stable_lsn tc));
          Deploy.crash_branch_dc d "b");
    run_txn
      ~marker:(Printf.sprintf "m%03d" i)
      ~shadow:oracle ~probe:parent_probe ~counter:committed
      ~begin_txn:(fun () -> Tc.begin_txn tc)
      ~ins:(fun txn ~key ~value -> Tc.insert tc txn ~table ~key ~value)
      ~upd:(fun txn ~key ~value -> Tc.update tc txn ~table ~key ~value)
      ~del:(fun txn ~key -> Tc.delete tc txn ~table ~key)
      ~commit:(fun txn -> Tc.commit tc txn)
      ~abort:(fun txn ~reason -> Tc.abort tc txn ~reason)
      ~is_active:Tc.is_active;
    match !br with
    | None -> ()
    | Some b ->
      in_branch := true;
      Fun.protect
        ~finally:(fun () -> in_branch := false)
        (fun () ->
          run_txn
            ~marker:(Printf.sprintf "bm%03d" i)
            ~shadow:br_oracle ~probe:(branch_probe b) ~counter:br_committed
            ~begin_txn:(fun () -> Branch.begin_txn b)
            ~ins:(fun txn ~key ~value -> Branch.insert b txn ~table ~key ~value)
            ~upd:(fun txn ~key ~value -> Branch.update b txn ~table ~key ~value)
            ~del:(fun txn ~key -> Branch.delete b txn ~table ~key)
            ~commit:(fun txn -> Branch.commit b txn)
            ~abort:(fun txn ~reason -> Branch.abort b txn ~reason)
            ~is_active:Tc.is_active)
  done;
  let rec quiesce_settle attempts =
    try Deploy.quiesce d
    with (Fault.Injected_crash _ | Fault.Io_error _) as e when attempts > 0 ->
      handle e;
      quiesce_settle (attempts - 1)
  in
  quiesce_settle 4;
  let fired = Fault.fired_points () in
  Fault.disarm ();
  Trace.set_enabled was_tracing;
  let counters_at_quiesce = Instrument.snapshot counters in
  let report =
    Audit.run_deploy d ~tc:"tc1" ~table ~expected:(oracle_rows oracle)
  in
  let branch_violations =
    match !br with
    | None -> [ "branch: fork never succeeded" ]
    | Some b ->
      let errs = ref (Audit.check_branch d ~name:"b" ~table) in
      let durable = Branch.durable b in
      let show = function Some v -> Printf.sprintf "%S" v | None -> "None" in
      (* the branch tracks its own shadow map *)
      Hashtbl.iter
        (fun key expected ->
          let got = Branch.read_as_of b ~table ~key ~at:durable in
          if got <> expected then
            errs :=
              Printf.sprintf "branch oracle: %s reads %s, shadow holds %s" key
                (show got) (show expected)
              :: !errs)
        br_oracle;
      (* the shared prefix at the fork point never moved *)
      (match !fork_state with
      | None -> ()
      | Some (fork, at_fork) ->
        Hashtbl.iter
          (fun key expected ->
            let got = Branch.read_as_of b ~table ~key ~at:fork in
            if got <> expected then
              errs :=
                Printf.sprintf
                  "branch fork prefix: %s reads %s, fork snapshot holds %s"
                  key (show got) (show expected)
                :: !errs)
          at_fork);
      !errs
  in
  let violations = report.Audit.violations @ branch_violations in
  {
    c_label = label;
    c_seed = seed;
    c_fired = fired;
    c_crashes = !crashes;
    c_committed = !committed + !br_committed;
    c_redelivered = report.Audit.redelivered;
    c_violations = violations;
    c_counters = counters_at_quiesce;
    c_trace = (if keep_trace || violations <> [] then Trace.to_jsonl () else "");
  }

(* Branch plans: DC and TC kills land on whichever side's stack the
   point escapes (attribution decides), the layer point dies inside the
   parent's compaction while a branch pins its history, and the
   corruption plan stresses both transports at once. *)
let plans_branch () =
  [
    ("branch.none", []);
    ("dc.flush.before_page_write@1", [ Fault.crash_at "dc.flush.before_page_write" 1 ]);
    ("dc.flush.before_page_write@3", [ Fault.crash_at "dc.flush.before_page_write" 3 ]);
    ("wal.dc.force.mid@2", [ Fault.crash_at "wal.dc.force.mid" 2 ]);
    ("tc.commit.before_force@2", [ Fault.crash_at "tc.commit.before_force" 2 ]);
    ("tc.commit.after_force@3", [ Fault.crash_at "tc.commit.after_force" 3 ]);
    (Layer.p_compact_mid ^ "@1", [ Fault.crash_at Layer.p_compact_mid 1 ]);
    ( "transport.frame.corrupt~5%",
      [ Fault.crash_with_prob "transport.frame.corrupt" 0.05 ] );
    ( "dc.flush.before_page_write@2+tc.commit.after_force@2",
      [
        Fault.crash_at "dc.flush.before_page_write" 2;
        Fault.crash_at "tc.commit.after_force" 2;
      ] );
  ]

let soak_branch ?(base_seed = 0xB4A7) ?(seeds_per_plan = 3) ?(txns = 24)
    ?(parts = 2) () =
  let cycles =
    List.concat
      (List.mapi
         (fun pi (label, plan) ->
           List.init seeds_per_plan (fun si ->
               run_cycle_branch ~label ~plan
                 ~seed:(base_seed + (131 * pi) + (17 * si))
                 ~txns ~parts ()))
         (plans_branch ()))
  in
  (cycles, summarize cycles)
