module Rng = Untx_util.Rng

exception Injected_crash of string

exception Io_error of string

type trigger = Nth of int | Prob of float

type action = Crash | Io_fail

type rule = { point : string; trigger : trigger; action : action }

let crash_at point n = { point; trigger = Nth n; action = Crash }

let crash_with_prob point p = { point; trigger = Prob p; action = Crash }

let io_error_at point n = { point; trigger = Nth n; action = Io_fail }

let io_error_with_prob point p = { point; trigger = Prob p; action = Io_fail }

(* --- registry --------------------------------------------------------- *)

(* The registry is only mutated at module-initialization and arm time;
   [hit] never touches it.  The mutex covers the one multi-domain case:
   several domains creating kernels (and thus declaring WAL points)
   concurrently, as the scaling benchmarks do. *)
let registry : (string, unit) Hashtbl.t = Hashtbl.create 64

let registry_mutex = Mutex.create ()

let declare name =
  Mutex.lock registry_mutex;
  if not (Hashtbl.mem registry name) then Hashtbl.add registry name ();
  Mutex.unlock registry_mutex;
  name

let declared () =
  Mutex.lock registry_mutex;
  let names = Hashtbl.fold (fun n () acc -> n :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort String.compare names

(* --- armed plan ------------------------------------------------------- *)

type armed_rule = { rule : rule; mutable seen : int; mutable spent : bool }

type plan = {
  rules : (string, armed_rule list) Hashtbl.t;
  rng : Rng.t;
  hit_counts : (string, int ref) Hashtbl.t;
  mutable fired : string list; (* newest first *)
}

let state : plan option ref = ref None

(* Fires of the most recently disarmed plan, oldest first. *)
let last_fired : string list ref = ref []

let arm ?(seed = 0) rules =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      ignore (declare r.point);
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl r.point) in
      Hashtbl.replace tbl r.point
        (prev @ [ { rule = r; seen = 0; spent = false } ]))
    rules;
  last_fired := [];
  state :=
    Some
      {
        rules = tbl;
        rng = Rng.create ~seed;
        hit_counts = Hashtbl.create 32;
        fired = [];
      }

let disarm () =
  (match !state with
  | Some plan -> last_fired := List.rev plan.fired
  | None -> ());
  state := None

let armed () = !state <> None

let fired_points () =
  match !state with
  | Some plan -> List.rev plan.fired
  | None -> !last_fired

let hits name =
  match !state with
  | None -> 0
  | Some plan -> (
      match Hashtbl.find_opt plan.hit_counts name with
      | Some r -> !r
      | None -> 0)

let hit name =
  match !state with
  | None -> ()
  | Some plan -> (
      (match Hashtbl.find_opt plan.hit_counts name with
      | Some r -> incr r
      | None -> Hashtbl.add plan.hit_counts name (ref 1));
      match Hashtbl.find_opt plan.rules name with
      | None -> ()
      | Some rules ->
          List.iter
            (fun ar ->
              if not ar.spent then begin
                ar.seen <- ar.seen + 1;
                let fire =
                  match ar.rule.trigger with
                  | Nth n -> ar.seen = n
                  | Prob p -> Rng.chance plan.rng p
                in
                if fire then begin
                  (match ar.rule.trigger with
                  | Nth _ -> ar.spent <- true
                  | Prob _ -> ());
                  plan.fired <- name :: plan.fired;
                  match ar.rule.action with
                  | Crash -> raise (Injected_crash name)
                  | Io_fail -> raise (Io_error name)
                end
              end)
            rules)
