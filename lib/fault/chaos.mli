(** Deterministic chaos-soak engine.

    One {e cycle} builds a fresh kernel from a seed, runs a randomized
    transactional workload against a shadow-map oracle while a fault
    plan is armed, translates every injected crash into a hard kill of
    the owning component ([Kernel.crash_for_point]), quiesces through
    the resend path, and hands the survivor to {!Audit.run}.

    Everything — workload, transport policy, fault plan, crash instant —
    is a pure function of the seed and the plan, so any violation is
    reproducible by rerunning the cycle with the same arguments.

    A commit interrupted by a crash is ambiguous (the Commit record may
    or may not have reached the stable log).  Every transaction's first
    write is a unique marker key; after a TC crash the engine probes the
    marker to learn the transaction's fate and updates the oracle
    accordingly — exactly the "did my transaction commit?" probe an
    application would issue. *)

type cycle = {
  c_label : string;  (** human-readable plan description *)
  c_seed : int;
  c_fired : string list;  (** fault points that fired, in firing order *)
  c_crashes : int;  (** injected hard kills (incl. during recovery) *)
  c_committed : int;  (** transactions the oracle counts as committed *)
  c_redelivered : int;  (** stable ops re-delivered by the audit *)
  c_violations : string list;
  c_counters : (string * int) list;  (** Instrument snapshot *)
}

val run_cycle :
  label:string ->
  plan:Untx_fault.Fault.rule list ->
  seed:int ->
  txns:int ->
  cycle
(** Run one workload→crash→recover→audit cycle. *)

val plans : unit -> (string * Untx_fault.Fault.rule list) list
(** The standard plan sweep: every registered crash point at several
    Nth-hit positions, double-failure plans that also crash during
    recovery (["tc.recover.mid"]), and transient-I/O-error plans. *)

type summary = {
  s_cycles : int;
  s_fired : int;  (** cycles in which at least one rule fired *)
  s_crashes : int;
  s_violating : cycle list;
  s_fires_by_point : (string * int) list;
  s_counters : (string * int) list;  (** summed across cycles *)
}

val soak :
  ?base_seed:int -> ?seeds_per_plan:int -> ?txns:int -> unit ->
  cycle list * summary
(** Sweep every plan from {!plans} across [seeds_per_plan] seeds
    (default 7, [base_seed] 0xC1D9, [txns] 24 per cycle). *)
