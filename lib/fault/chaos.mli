(** Deterministic chaos-soak engine.

    One {e cycle} builds a fresh kernel from a seed, runs a randomized
    transactional workload against a shadow-map oracle while a fault
    plan is armed, translates every injected crash into a hard kill of
    the owning component ([Kernel.crash_for_point]), quiesces through
    the resend path, and hands the survivor to {!Audit.run}.

    Everything — workload, transport policy, fault plan, crash instant —
    is a pure function of the seed and the plan, so any violation is
    reproducible by rerunning the cycle with the same arguments.

    A commit interrupted by a crash is ambiguous (the Commit record may
    or may not have reached the stable log).  Every transaction's first
    write is a unique marker key; after a TC crash the engine probes the
    marker to learn the transaction's fate and updates the oracle
    accordingly — exactly the "did my transaction commit?" probe an
    application would issue. *)

type cycle = {
  c_label : string;  (** human-readable plan description *)
  c_seed : int;
  c_fired : string list;  (** fault points that fired, in firing order *)
  c_crashes : int;  (** injected hard kills (incl. during recovery) *)
  c_committed : int;  (** transactions the oracle counts as committed *)
  c_redelivered : int;  (** stable ops re-delivered by the audit *)
  c_violations : string list;
  c_counters : (string * int) list;  (** Instrument snapshot *)
  c_trace : string;
      (** the cycle's span dump ({!Untx_obs.Trace.to_jsonl}), captured
          whenever the audit reports violations — the verdict comes with
          the per-operation timelines that led to it — or when the
          caller asked with [keep_trace].  Empty otherwise.  Feed it to
          {!Untx_obs.Analyzer.of_jsonl}. *)
}

val run_cycle :
  ?keep_trace:bool ->
  label:string ->
  plan:Untx_fault.Fault.rule list ->
  seed:int ->
  txns:int ->
  unit ->
  cycle
(** Run one workload→crash→recover→audit cycle.  The cycle always runs
    with tracing on (the ring is cleared first, so trace ids and span
    dumps are deterministic per cycle); [keep_trace] (default false)
    retains the dump in [c_trace] even for a clean cycle. *)

val plans : unit -> (string * Untx_fault.Fault.rule list) list
(** The standard plan sweep: every registered crash point at several
    Nth-hit positions, double-failure plans that also crash during
    recovery (["tc.recover.mid"]), and transient-I/O-error plans. *)

val run_cycle_partitioned :
  ?keep_trace:bool ->
  label:string ->
  plan:Untx_fault.Fault.rule list ->
  seed:int ->
  txns:int ->
  parts:int ->
  unit ->
  cycle
(** The partitioned twin of {!run_cycle}: one TC fronting [parts]
    hash-partitioned DCs ({!Untx_cloud.Deploy}).  An injected DC fault
    kills whichever partition it actually escaped from; that partition
    recovers alone (its siblings keep serving) and the cycle ends in
    {!Audit.run_deploy} — per-partition structure and version hygiene,
    idempotent redelivery through the partition map, and the oracle
    against the by-key merge of every partition's fragment. *)

val plans_partitioned : unit -> (string * Untx_fault.Fault.rule list) list
(** Per-partition crash plans: kills mid-SMO, mid-checkpoint-grant,
    mid-flush and mid-WAL-force on whichever DC the fault escapes from,
    TC commit-point kills that drive redo fan-out over all partitions,
    and double-kill plans that take down two different partitions in
    one cycle. *)

val run_cycle_replicated :
  ?keep_trace:bool ->
  label:string ->
  plan:Untx_fault.Fault.rule list ->
  seed:int ->
  txns:int ->
  parts:int ->
  replicas:int ->
  durability:Untx_repl.Repl.durability ->
  unit ->
  cycle
(** The replicated twin of {!run_cycle_partitioned}: every partition has
    [replicas] warm standbys fed by continuous redo shipping.  A kill at
    the ["repl.ship.batch"] boundary is answered with
    {!Untx_cloud.Deploy.fail_over} — promote the most-caught-up eligible
    standby and re-drive only the gap — instead of a cold crash+restart;
    if the gate refuses every candidate
    ({!Untx_cloud.Deploy.Promotion_refused}) the harness cold-restarts
    the primary instead, trading availability for zero loss.  DC faults
    that fire inside a standby's apply crash the standby, which rejoins
    from its stable state (or is demoted to rebuild-required when
    truncation already passed its rejoin cursor).  The audit
    additionally checks every surviving {e attached} standby's logical
    state against its primary after shipping parity. *)

val plans_replicated : unit -> (string * Untx_fault.Fault.rule list) list
(** Primary kills swept across shipped-batch boundaries (early, mid,
    deep), a double-promotion plan, and combos pairing a promotion with
    cold DC kills and TC commit kills. *)

val run_cycle_detach :
  ?keep_trace:bool ->
  label:string ->
  plan:Untx_fault.Fault.rule list ->
  seed:int ->
  txns:int ->
  parts:int ->
  replicas:int ->
  durability:Untx_repl.Repl.durability ->
  unit ->
  cycle
(** The detach→checkpoint→promote interleaving on the replicated
    deployment: dc0's first standby detaches a quarter into the
    workload, a granted checkpoint at the midpoint advances the
    redo-scan start point past its frozen cursor (burning one unit of
    its retention lease), and at the three-quarter mark dc0 dies and
    fails over to that laggard — the repro_gap shape with live traffic
    around it.  The promotion must catch the laggard up from the
    retained log, or refuse ({!Untx_cloud.Deploy.Promotion_refused},
    answered with a cold restart) — never serve a hole. *)

val plans_detach : unit -> (string * Untx_fault.Fault.rule list) list
(** The pure interleaving (no faults), a forced ["repl.lease.expire"]
    (drives the refusal path), and combos landing primary-kill and
    TC-kill plans around the same interleaving. *)

val run_cycle_mtc :
  ?keep_trace:bool ->
  label:string ->
  plan:Untx_fault.Fault.rule list ->
  seed:int ->
  txns:int ->
  parts:int ->
  unit ->
  cycle
(** TC-kill-under-load over the session front end: two TCs share
    [parts] partitioned DCs behind {!Untx_front.Front}; each TC's
    sessions update their own table (the Section 6 disjoint-updaters
    rule) with bounded queues, so submission overlapping execution
    exercises admission control and group-commit batching.  At the
    midpoint one TC (picked by seed) is hard-killed while queues are
    non-empty; the survivor must sail through and the victim's recovery
    reset exactly its own lost suffix.  Because acknowledged commits may
    have ridden unforced batches into the kill, the oracle is settled by
    probing every committed transaction's unique marker after the final
    drain.  The audit runs {!Audit.run_deploy} once per TC — including
    the cross-TC watermark check, so one TC's crash leaking into the
    other's watermark slots is a reported violation. *)

val plans_mtc : unit -> (string * Untx_fault.Fault.rule list) list
(** The scripted midpoint kill alone, and with 5% frame corruption
    layered on top. *)

val run_cycle_indexed :
  ?keep_trace:bool ->
  label:string ->
  plan:Untx_fault.Fault.rule list ->
  seed:int ->
  txns:int ->
  parts:int ->
  unit ->
  cycle
(** The partitioned cycle with every mutation routed through
    {!Untx_index.Index} on a table carrying two secondary indexes
    (categories extracted from the value, occasionally NUL-embedded;
    length buckets), under one of the two Section 3.1 lock protocols
    (seed-picked — never Optimistic, which cannot re-read its own
    buffered writes).  A kill can land between a primary write and its
    entry maintenance; transactional rollback and redo must keep them
    atomic anyway.  Any index op answering non-[`Ok] aborts the whole
    transaction (the Fail-means-caller-aborts contract).  The audit is
    {!Audit.run_deploy} plus {!Audit.check_index}: merged entry tables
    must exactly match the image of the surviving primary rows. *)

val plans_indexed : unit -> (string * Untx_fault.Fault.rule list) list
(** Kills mid-entry-table-SMO (tiny pages and long escaped entry keys
    make index splits frequent), mid-flush, mid-WAL-force, and at both
    commit-force edges; a double landing an SMO kill and a commit kill
    in one cycle; 5% frame corruption under the SMO kill. *)

val run_cycle_branch :
  ?keep_trace:bool ->
  label:string ->
  plan:Untx_fault.Fault.rule list ->
  seed:int ->
  txns:int ->
  parts:int ->
  unit ->
  cycle
(** The fork-under-load cycle on a layered deployment: a third into the
    workload the deployment forks a copy-on-write branch at its stable
    LSN, every later iteration drives one parent and one branch
    transaction over the same key space (materialization racing live
    parent traffic), and at the two-thirds mark the parent compacts,
    truncates history at its stable LSN — the cut must clamp at the
    live branch's fork pin — and the branch DC is killed and recovered.
    Faults route by attribution: DC-side points that escaped the branch
    crash the branch DC, TC-side points that escaped a branch operation
    crash-recover the branch's own TC.  The audit is the parent's full
    {!Audit.run_deploy} plus {!Audit.check_branch} plus the two branch
    oracle laws (the branch tracks its own shadow map; the shared
    prefix at the fork point still reads back as the parent's oracle
    stood when the fork was cut). *)

val plans_branch : unit -> (string * Untx_fault.Fault.rule list) list
(** A fault-free control, DC-flush / WAL-force / commit-edge kills
    (landing on either side by attribution), a kill inside the parent's
    compaction while the branch pins its history, 5% frame corruption,
    and a flush+commit double. *)

val run_cycle_workload :
  spec:Untx_workload.Workload.spec -> seed:int -> unit -> cycle
(** One workload-bank spec as a chaos cycle: {!Untx_workload.Workload.run}
    executes the spec differentially against its oracle (scripted
    DC/TC kills included), then the surviving deployment takes the full
    {!Audit.run_deploy} per table against the oracle's rows and — for
    index-maintaining specs — {!Audit.check_index}.  [c_violations]
    merges the run's differential violations with the audit's. *)

type summary = {
  s_cycles : int;
  s_fired : int;  (** cycles in which at least one rule fired *)
  s_crashes : int;
  s_violating : cycle list;
  s_fires_by_point : (string * int) list;
  s_counters : (string * int) list;  (** summed across cycles *)
}

val soak :
  ?base_seed:int -> ?seeds_per_plan:int -> ?txns:int -> unit ->
  cycle list * summary
(** Sweep every plan from {!plans} across [seeds_per_plan] seeds
    (default 7, [base_seed] 0xC1D9, [txns] 24 per cycle). *)

val soak_partitioned :
  ?base_seed:int -> ?seeds_per_plan:int -> ?txns:int -> ?parts:int ->
  unit ->
  cycle list * summary
(** Sweep every plan from {!plans_partitioned} across [seeds_per_plan]
    seeds (default 4, [parts] 3, [txns] 24 per cycle) over a
    1-TC × [parts]-DC deployment. *)

val soak_replicated :
  ?base_seed:int ->
  ?seeds_per_plan:int ->
  ?txns:int ->
  ?parts:int ->
  ?replicas:int ->
  unit ->
  cycle list * summary
(** Sweep every plan from {!plans_replicated} across [seeds_per_plan]
    seeds (default 3, [parts] 2, [replicas] 2, [txns] 24 per cycle),
    alternating [Quorum 1] and [Primary_only] durability by seed. *)

val soak_detach :
  ?base_seed:int ->
  ?seeds_per_plan:int ->
  ?txns:int ->
  ?parts:int ->
  ?replicas:int ->
  unit ->
  cycle list * summary
(** Sweep every plan from {!plans_detach} across [seeds_per_plan] seeds
    (default 3, [parts] 2, [replicas] 1 — a sole standby, so the lease
    decides promotability — [txns] 24 per cycle), alternating
    durability by seed as {!soak_replicated} does. *)

val soak_mtc :
  ?base_seed:int -> ?seeds_per_plan:int -> ?txns:int -> ?parts:int ->
  unit ->
  cycle list * summary
(** Sweep every plan from {!plans_mtc} across [seeds_per_plan] seeds
    (default 4, [parts] 2, [txns] 24 per cycle): the TC-kill-under-load
    front-end cycles, alternating the killed TC and the group-commit
    batch size by seed. *)

val soak_indexed :
  ?base_seed:int -> ?seeds_per_plan:int -> ?txns:int -> ?parts:int ->
  unit ->
  cycle list * summary
(** Sweep every plan from {!plans_indexed} across [seeds_per_plan]
    seeds (default 3, [parts] 2, [txns] 24 per cycle), alternating the
    lock protocol, versioned-ness, transport and sync policy by seed. *)

val soak_branch :
  ?base_seed:int -> ?seeds_per_plan:int -> ?txns:int -> ?parts:int ->
  unit ->
  cycle list * summary
(** Sweep every plan from {!plans_branch} across [seeds_per_plan] seeds
    (default 3, [parts] 2, [txns] 24 per cycle), alternating transport
    and sync policy by seed as the other layered soaks do. *)

val soak_workloads :
  ?base_seed:int -> ?seeds_per_spec:int -> unit -> cycle list * summary
(** Run every workload-bank spec ({!Untx_workload.Workload.bank}) as a
    {!run_cycle_workload} across [seeds_per_spec] seeds (default 2,
    [base_seed] 0xB0B — the bank's canonical seed). *)
