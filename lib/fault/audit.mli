(** Post-recovery consistency auditor.

    After a chaos cycle (workload → injected crash → recovery →
    quiesce), this module proves the recovery was correct:

    - {b structure}: every B-tree satisfies its invariants (key order,
      fence keys, reachability) — [Dc.check];
    - {b oracle}: a transactional scan sees exactly the shadow map of
      committed effects — every committed transaction's writes are
      visible, every aborted or in-flight transaction's are gone;
    - {b version hygiene}: after quiescing, no record still carries a
      before-version or a tombstone (all fates were resolved);
    - {b idempotence}: re-delivering the entire stable log suffix from
      the redo-scan start point — exactly what one more recovery would
      resend — changes nothing (the abstract-LSN [included] test and
      the result memo absorb every duplicate). *)

type report = {
  violations : string list;  (** empty iff the audit passed *)
  redelivered : int;  (** stable-suffix operations re-delivered *)
}

val run :
  Untx_kernel.Kernel.t ->
  table:string ->
  expected:(string * string) list ->
  report
(** [run k ~table ~expected] audits a quiesced kernel.  [expected] is
    the shadow map's committed rows in key order. *)

val run_deploy :
  Untx_cloud.Deploy.t ->
  tc:string ->
  table:string ->
  expected:(string * string) list ->
  report
(** The same audit over a partitioned deployment: structure and version
    hygiene per DC, idempotence with each stable operation re-delivered
    to its owning partition (via the TC's map), and the oracle compared
    against the by-key merge of every partition's fragment — which also
    catches records that landed on a DC the partition map does not own
    them to.  Includes {!check_watermarks}. *)

val check_index :
  Untx_cloud.Deploy.t -> idx:Untx_index.Index.t -> table:string -> string list
(** Index-parity audit of a quiesced deployment: for every index
    registered on [table], merge the entry-table fragments (verifying
    secondary-hash placement) and hold them to exact equality with the
    entries the live primary rows imply under the registered extractors
    ({!Untx_index.Index.expected_entries}) — every entry points at
    exactly one live primary record that still yields its secondary
    key, and every live record has exactly one entry per secondary key.
    Dangling, stale, missing and wrong-pk entries are each called out.
    Empty iff clean. *)

val check_branch :
  Untx_cloud.Deploy.t -> name:string -> table:string -> string list
(** Branch-parity audit of a quiesced deployment: the named branch's DC
    satisfies the structural invariants, the shared prefix at the fork
    point is bit-identical whether read through the branch's combined
    LSN space or (for branches forked directly off a root TC) through
    {!Untx_cloud.Deploy.read_as_of} on the parent, and the branch's
    durable point-in-time view agrees with its own per-key lookups.
    Run it on the parent deployment after branch traffic, compaction,
    or pin-clamped truncation.  Empty iff clean. *)

val check_watermarks : Untx_cloud.Deploy.t -> string list
(** Cross-TC watermark audit of a quiesced deployment: for every
    DC × TC pair, the DC's low-water mark must not exceed its
    end-of-stable-log for that TC, and that EOSL must not exceed the
    TC's actual stable LSN.  A violation means one TC's control traffic
    was attributed to another's slot — the leak the [(tc, epoch, seq)]
    session keying and the wire-header misattribution guards exist to
    prevent.  Empty iff clean. *)
