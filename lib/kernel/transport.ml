module Rng = Untx_util.Rng
module Instrument = Untx_util.Instrument
module Wire = Untx_msg.Wire

type policy = {
  delay_min : int;
  delay_max : int;
  reorder : bool;
  dup_prob : float;
  drop_prob : float;
}

let reliable =
  { delay_min = 0; delay_max = 0; reorder = false; dup_prob = 0.; drop_prob = 0. }

let chaotic =
  { delay_min = 0; delay_max = 3; reorder = true; dup_prob = 0.1; drop_prob = 0.1 }

type 'a item = { due : int; seq : int; payload : 'a }

type t = {
  mutable policy : policy;
  rng : Rng.t;
  dc : Wire.request -> Wire.reply;
  counters : Instrument.t;
  mutable now : int;
  mutable seq : int;
  mutable to_dc : Wire.request item list;
  mutable to_tc : Wire.reply item list;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable force_delivered : int;
}

let create ?(counters = Instrument.global) ?(policy = reliable) ~seed ~dc () =
  {
    policy;
    rng = Rng.create ~seed;
    dc;
    counters;
    now = 0;
    seq = 0;
    to_dc = [];
    to_tc = [];
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    force_delivered = 0;
  }

let set_policy t policy = t.policy <- policy

let schedule t queue payload =
  let p = t.policy in
  let copies =
    if Rng.chance t.rng p.drop_prob then begin
      t.dropped <- t.dropped + 1;
      Instrument.bump t.counters "transport.dropped";
      0
    end
    else if Rng.chance t.rng p.dup_prob then begin
      t.duplicated <- t.duplicated + 1;
      Instrument.bump t.counters "transport.duplicated";
      2
    end
    else 1
  in
  let rec add queue n =
    if n = 0 then queue
    else begin
      let span = p.delay_max - p.delay_min in
      let delay = p.delay_min + if span > 0 then Rng.int t.rng (span + 1) else 0 in
      t.seq <- t.seq + 1;
      add ({ due = t.now + delay; seq = t.seq; payload } :: queue) (n - 1)
    end
  in
  add queue copies

let send t req = t.to_dc <- schedule t t.to_dc req

(* Split a queue into due and not-yet-due; due messages come back in
   delivery order (FIFO by seq, or shuffled when reordering). *)
let take_due t queue =
  let due, rest = List.partition (fun item -> item.due <= t.now) queue in
  let due =
    List.sort (fun (a : _ item) (b : _ item) -> Int.compare a.seq b.seq) due
  in
  let due =
    if t.policy.reorder && List.length due > 1 then begin
      let arr = Array.of_list due in
      Rng.shuffle t.rng arr;
      Array.to_list arr
    end
    else due
  in
  (due, rest)

let deliver_requests t =
  let due, rest = take_due t t.to_dc in
  t.to_dc <- rest;
  List.iter
    (fun item ->
      t.delivered <- t.delivered + 1;
      Instrument.bump t.counters "transport.delivered";
      let reply = t.dc item.payload in
      t.to_tc <- schedule t t.to_tc reply)
    due

let drain t =
  t.now <- t.now + 1;
  deliver_requests t;
  let due, rest = take_due t t.to_tc in
  t.to_tc <- rest;
  List.map (fun item -> item.payload) due

let flush t =
  let saved = t.policy in
  t.policy <- reliable;
  let out = ref [] (* newest first; reversed on return *) in
  let n = ref 0 in
  while t.to_dc <> [] || t.to_tc <> [] do
    t.now <- t.now + 1000;
    deliver_requests t;
    let due, rest = take_due t t.to_tc in
    t.to_tc <- rest;
    List.iter
      (fun item ->
        incr n;
        out := item.payload :: !out)
      due
  done;
  t.policy <- saved;
  t.force_delivered <- t.force_delivered + !n;
  Instrument.bump_by t.counters "transport.flush_delivered" !n;
  List.rev !out

let drop_in_flight t =
  t.to_dc <- [];
  t.to_tc <- []

let in_flight t = List.length t.to_dc + List.length t.to_tc

let requests_delivered t = t.delivered

let dropped t = t.dropped

let duplicated t = t.duplicated

let force_delivered t = t.force_delivered
