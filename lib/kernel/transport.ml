module Rng = Untx_util.Rng
module Instrument = Untx_util.Instrument
module Metrics = Untx_obs.Metrics
module Trace = Untx_obs.Trace
module Wire = Untx_msg.Wire
module Fault = Untx_fault.Fault

type policy = {
  delay_min : int;
  delay_max : int;
  reorder : bool;
  dup_prob : float;
  drop_prob : float;
}

let reliable =
  { delay_min = 0; delay_max = 0; reorder = false; dup_prob = 0.; drop_prob = 0. }

let chaotic =
  { delay_min = 0; delay_max = 3; reorder = true; dup_prob = 0.1; drop_prob = 0.1 }

(* A delivery attempt passes through this point; when a rule fires, the
   frame is corrupted in place.  The receiving edge's checksum check
   then rejects and drops it — the resend path carries it, like any
   other lost message. *)
let p_frame_corrupt = Fault.declare "transport.frame.corrupt"

type channel = Data | Control | Repl

type item = { due : int; seq : int; frame : string }

type t = {
  mutable policy : policy;
  mutable control_policy : policy;
  rng : Rng.t;
  data_handler : string -> string option;
  control_handler : string -> string option;
  repl_handler : string -> string option;
  counters : Instrument.t;
  label : string option;
      (* per-link counter prefix: a deployment names each (TC, DC) link
         so byte/delivery accounting can be read out per partition *)
  mutable now : int;
  mutable seq : int;
  mutable dc_data : item list; (* TC -> DC request frames *)
  mutable dc_ctl : item list; (* TC -> DC control frames *)
  mutable dc_repl : item list; (* TC -> standby replication frames *)
  mutable tc_data : item list; (* DC -> TC reply frames *)
  mutable tc_ctl : item list; (* DC -> TC control-reply frames *)
  mutable tc_repl : item list; (* standby -> TC replication acks *)
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable force_delivered : int;
  mutable corrupt_dropped : int;
  mutable data_bytes : int;
  mutable control_bytes : int;
  mutable repl_bytes : int;
}

let create ?(counters = Instrument.global) ?(policy = reliable) ?control_policy
    ?label ?(repl = fun _ -> None) ~seed ~data ~control () =
  {
    policy;
    control_policy = Option.value control_policy ~default:policy;
    rng = Rng.create ~seed;
    data_handler = data;
    control_handler = control;
    repl_handler = repl;
    counters;
    label;
    now = 0;
    seq = 0;
    dc_data = [];
    dc_ctl = [];
    dc_repl = [];
    tc_data = [];
    tc_ctl = [];
    tc_repl = [];
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    force_delivered = 0;
    corrupt_dropped = 0;
    data_bytes = 0;
    control_bytes = 0;
    repl_bytes = 0;
  }

let bump_labeled t suffix n =
  match t.label with
  | None -> ()
  | Some l ->
    Instrument.bump_by t.counters (Printf.sprintf "transport.%s.%s" l suffix) n

let set_policy t policy =
  t.policy <- policy;
  t.control_policy <- policy

let set_control_policy t policy = t.control_policy <- policy

(* Replication frames are contract-governed like control traffic and
   face the same adversary. *)
let policy_for t = function
  | Data -> t.policy
  | Control | Repl -> t.control_policy

(* Span attributes identifying where on the plane an event happened:
   channel, direction, and (in a deployment) the link's label. *)
let trace_attrs t ch dir =
  let base =
    [
      ("ch", (match ch with Data -> "data" | Control -> "ctl" | Repl -> "repl"));
      ("dir", (match dir with `Req -> "req" | `Rep -> "rep"));
    ]
  in
  match t.label with None -> base | Some l -> ("link", l) :: base

let trace_event t ch dir ev frame =
  if Trace.enabled () then
    let tid = Wire.frame_tid frame in
    if tid <> 0 then Trace.record ~tid ~comp:"transport" ~ev (trace_attrs t ch dir)

let schedule t ch dir queue frame =
  let p = policy_for t ch in
  (* The sender pays for every frame handed to the plane, in measured
     encoded bytes — including ones the adversary then loses. *)
  let len = String.length frame in
  (match ch with
  | Data ->
    t.data_bytes <- t.data_bytes + len;
    Instrument.bump_by t.counters "transport.data_bytes" len;
    bump_labeled t "data_bytes" len
  | Control ->
    t.control_bytes <- t.control_bytes + len;
    Instrument.bump_by t.counters "transport.control_bytes" len;
    bump_labeled t "control_bytes" len
  | Repl ->
    t.repl_bytes <- t.repl_bytes + len;
    Instrument.bump_by t.counters "transport.repl_bytes" len;
    bump_labeled t "repl_bytes" len);
  if Metrics.timed t.counters then
    Metrics.observe t.counters "transport.frame_bytes" len;
  let copies =
    if Rng.chance t.rng p.drop_prob then begin
      t.dropped <- t.dropped + 1;
      Instrument.bump t.counters "transport.dropped";
      trace_event t ch dir "drop" frame;
      0
    end
    else if Rng.chance t.rng p.dup_prob then begin
      t.duplicated <- t.duplicated + 1;
      Instrument.bump t.counters "transport.duplicated";
      2
    end
    else 1
  in
  if copies > 0 then trace_event t ch dir "xmit" frame;
  let rec add queue n =
    if n = 0 then queue
    else begin
      let span = p.delay_max - p.delay_min in
      let delay = p.delay_min + if span > 0 then Rng.int t.rng (span + 1) else 0 in
      t.seq <- t.seq + 1;
      add ({ due = t.now + delay; seq = t.seq; frame } :: queue) (n - 1)
    end
  in
  add queue copies

let send t frame = t.dc_data <- schedule t Data `Req t.dc_data frame

let send_control t frame = t.dc_ctl <- schedule t Control `Req t.dc_ctl frame

let send_repl t frame = t.dc_repl <- schedule t Repl `Req t.dc_repl frame

(* Split a queue into due and not-yet-due; due messages come back in
   delivery order (FIFO by seq, or shuffled when reordering). *)
let take_due t ch queue =
  let due, rest = List.partition (fun item -> item.due <= t.now) queue in
  let due = List.sort (fun (a : item) b -> Int.compare a.seq b.seq) due in
  let due =
    if (policy_for t ch).reorder && List.length due > 1 then begin
      let arr = Array.of_list due in
      Rng.shuffle t.rng arr;
      Array.to_list arr
    end
    else due
  in
  (due, rest)

(* The receiving edge of either channel: maybe corrupt (fault point),
   then verify the checksum.  A frame that fails verification is
   dropped; only frames that pass are handed to the endpoint. *)
let receive t frame =
  let frame =
    match Fault.hit p_frame_corrupt with
    | () -> frame
    | exception (Fault.Injected_crash _ | Fault.Io_error _) ->
      Instrument.bump t.counters "transport.frames_corrupted";
      let b = Bytes.of_string frame in
      let i = Rng.int t.rng (Bytes.length b) in
      let flip = 1 + Rng.int t.rng 255 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor flip));
      Bytes.unsafe_to_string b
  in
  if Wire.frame_ok frame then Some frame
  else begin
    t.corrupt_dropped <- t.corrupt_dropped + 1;
    Instrument.bump t.counters "transport.corrupt_dropped";
    None
  end

(* All frames due in one delivery round are coalesced into a single
   batch (amortizing per-message overhead in a real deployment); the
   counters record how much coalescing the workload's traffic shape
   actually allows. *)
let count_batch t n =
  if n > 0 then begin
    Instrument.bump t.counters "transport.batches";
    Instrument.bump_by t.counters "transport.batched_frames" n
  end

let deliver_requests t =
  let due_d, rest_d = take_due t Data t.dc_data in
  t.dc_data <- rest_d;
  let due_c, rest_c = take_due t Control t.dc_ctl in
  t.dc_ctl <- rest_c;
  count_batch t (List.length due_d + List.length due_c);
  List.iter
    (fun item ->
      match receive t item.frame with
      | None -> ()
      | Some frame -> (
        t.delivered <- t.delivered + 1;
        Instrument.bump t.counters "transport.delivered";
        bump_labeled t "delivered" 1;
        trace_event t Data `Req "recv" frame;
        match t.data_handler frame with
        | None -> ()
        | Some reply -> t.tc_data <- schedule t Data `Rep t.tc_data reply))
    due_d;
  List.iter
    (fun item ->
      match receive t item.frame with
      | None -> ()
      | Some frame -> (
        Instrument.bump t.counters "transport.control_delivered";
        trace_event t Control `Req "recv" frame;
        match t.control_handler frame with
        | None -> ()
        | Some reply -> t.tc_ctl <- schedule t Control `Rep t.tc_ctl reply))
    due_c;
  let due_r, rest_r = take_due t Repl t.dc_repl in
  t.dc_repl <- rest_r;
  count_batch t (List.length due_r);
  List.iter
    (fun item ->
      match receive t item.frame with
      | None -> ()
      | Some frame -> (
        Instrument.bump t.counters "transport.repl_delivered";
        trace_event t Repl `Req "recv" frame;
        match t.repl_handler frame with
        | None -> ()
        | Some reply -> t.tc_repl <- schedule t Repl `Rep t.tc_repl reply))
    due_r

let take_replies t =
  let due_d, rest_d = take_due t Data t.tc_data in
  t.tc_data <- rest_d;
  let due_c, rest_c = take_due t Control t.tc_ctl in
  t.tc_ctl <- rest_c;
  count_batch t (List.length due_d + List.length due_c);
  let keep ch items =
    List.filter_map
      (fun item ->
        match receive t item.frame with
        | None -> None
        | Some frame ->
          trace_event t ch `Rep "recv" frame;
          Some frame)
      items
  in
  (keep Data due_d, keep Control due_c)

let take_repl_replies t =
  let due_r, rest_r = take_due t Repl t.tc_repl in
  t.tc_repl <- rest_r;
  count_batch t (List.length due_r);
  List.filter_map
    (fun item ->
      match receive t item.frame with
      | None -> None
      | Some frame ->
        trace_event t Repl `Rep "recv" frame;
        Some frame)
    due_r

let drain t =
  t.now <- t.now + 1;
  deliver_requests t;
  take_replies t

(* The replication channel drains on its own clock: a repl-only link
   (TC -> standby) never carries data or control frames, so the shared
   [drain] keeps its two-channel signature. *)
let drain_repl t =
  t.now <- t.now + 1;
  deliver_requests t;
  take_repl_replies t

let flush t =
  let saved_data = t.policy and saved_ctl = t.control_policy in
  t.policy <- reliable;
  t.control_policy <- reliable;
  let out_d = ref [] and out_c = ref [] (* newest first; reversed on return *) in
  let n = ref 0 in
  while
    t.dc_data <> [] || t.dc_ctl <> [] || t.dc_repl <> [] || t.tc_data <> []
    || t.tc_ctl <> [] || t.tc_repl <> []
  do
    t.now <- t.now + 1000;
    deliver_requests t;
    let replies, ctl_replies = take_replies t in
    let repl_replies = take_repl_replies t in
    List.iter
      (fun f ->
        incr n;
        out_d := f :: !out_d)
      replies;
    List.iter
      (fun f ->
        incr n;
        out_c := f :: !out_c)
      ctl_replies;
    List.iter (fun _ -> incr n) repl_replies
  done;
  t.policy <- saved_data;
  t.control_policy <- saved_ctl;
  t.force_delivered <- t.force_delivered + !n;
  Instrument.bump_by t.counters "transport.flush_delivered" !n;
  (List.rev !out_d, List.rev !out_c)

let drop_in_flight t =
  t.dc_data <- [];
  t.dc_ctl <- [];
  t.dc_repl <- [];
  t.tc_data <- [];
  t.tc_ctl <- [];
  t.tc_repl <- []

let in_flight t =
  List.length t.dc_data + List.length t.dc_ctl + List.length t.dc_repl
  + List.length t.tc_data + List.length t.tc_ctl + List.length t.tc_repl

let requests_delivered t = t.delivered

let dropped t = t.dropped

let duplicated t = t.duplicated

let force_delivered t = t.force_delivered

let corrupt_dropped t = t.corrupt_dropped

let data_bytes_sent t = t.data_bytes

let control_bytes_sent t = t.control_bytes

let repl_bytes_sent t = t.repl_bytes

let bytes_sent t = t.data_bytes + t.control_bytes + t.repl_bytes
