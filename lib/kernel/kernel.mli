(** An assembled unbundled kernel: one TC and one DC joined by an
    injectable transport (Figure 1 with a single instance of each; the
    multi-TC / multi-DC deployments of Section 6 live in [Untx_cloud]).

    This is the primary user-facing API of the library: create a kernel,
    create tables, run transactions, crash components, recover. *)

type config = {
  tc : Untx_tc.Tc.config;
  dc : Untx_dc.Dc.config;
  policy : Transport.policy;
  seed : int;
  auto_checkpoint_every : int;
      (** attempt a checkpoint every n commits; 0 disables (manual
          {!checkpoint} only).  Checkpoints are the contract-termination
          mechanism bounding restart redo (Section 4.2). *)
}

val default_config : config

type t

val create : ?counters:Untx_util.Instrument.t -> config -> t

val tc : t -> Untx_tc.Tc.t

val dc : t -> Untx_dc.Dc.t

val transport : t -> Transport.t

val create_table : t -> name:string -> versioned:bool -> unit
(** Register the table at the DC and route it in the TC. *)

(** {2 Transactions} — thin passthroughs to {!Untx_tc.Tc}. *)

type txn = Untx_tc.Tc.txn

val begin_txn : t -> txn

val read : t -> txn -> table:string -> key:string -> string option Untx_tc.Tc.outcome

val insert : t -> txn -> table:string -> key:string -> value:string -> unit Untx_tc.Tc.outcome

val update : t -> txn -> table:string -> key:string -> value:string -> unit Untx_tc.Tc.outcome

val delete : t -> txn -> table:string -> key:string -> unit Untx_tc.Tc.outcome

val scan :
  t -> txn -> table:string -> from_key:string -> limit:int ->
  (string * string) list Untx_tc.Tc.outcome

val commit : t -> txn -> unit Untx_tc.Tc.outcome

val abort : t -> txn -> reason:string -> unit

val checkpoint : t -> bool

(** {2 Failure injection (Section 5.3)} *)

val crash_dc : t -> unit
(** DC loses its volatile state (cache, in-memory abLSNs, unforced
    DC-log tail) and every in-flight message; it recovers to well-formed
    structures from stable state, then the TC redoes from the redo-scan
    start point. *)

val crash_tc : t -> unit
(** TC loses its unforced log tail, transaction and lock tables; the DC
    resets exactly the pages holding the lost operations; the TC then
    repeats history and rolls back losers. *)

val crash_both : t -> unit

val component_of_point : string -> [ `Tc | `Dc ]
(** Which component a fault point belongs to, by name prefix: ["tc."]
    and ["wal.tc."] points die with the TC; ["dc."], ["wal.dc."],
    ["disk."] and cache points die with the DC. *)

val crash_for_point : t -> string -> unit
(** Translate a {!Untx_fault.Fault.Injected_crash} at the named point
    into a hard kill of the owning component (crash + recover).  If the
    armed plan fires again during recovery, the newly restarted
    component is crashed in turn (bounded, since [Nth] rules are
    consumed when they fire). *)

val quiesce : t -> unit
(** Wait for every outstanding acknowledgement, via the TC's
    await/resend loop — lost messages are recovered by the resend
    contract, not by bypassing the transport. *)
