(** The unreliable message channel between a TC and a DC.

    The paper treats the unbundled kernel as a distributed system
    (Section 4.1): requests may be delayed, reordered, duplicated or
    lost, and the contracts (unique request ids, resend, idempotence)
    must mask all of it.  This transport makes those behaviours
    injectable and deterministic.

    Time is logical: each {!drain} call advances one tick, delivers due
    requests to the DC (collecting its replies into the reverse
    direction, under the same policy), and returns due replies. *)

type policy = {
  delay_min : int;
  delay_max : int;  (** per-message delivery delay, in ticks *)
  reorder : bool;  (** deliver due messages in random order *)
  dup_prob : float;  (** probability a message is delivered twice *)
  drop_prob : float;  (** probability a message is silently lost *)
}

val reliable : policy
(** Immediate, ordered, exactly-once — the in-process fast path. *)

val chaotic : policy
(** Delays 0-3 ticks, reordering, 10% duplication, 10% loss: the
    adversary used by contract tests (E10). *)

type t

val create :
  ?counters:Untx_util.Instrument.t ->
  ?policy:policy ->
  seed:int ->
  dc:(Untx_msg.Wire.request -> Untx_msg.Wire.reply) ->
  unit ->
  t
(** Delivery, drop, duplication and flush events are mirrored into
    [counters] (["transport.delivered"], ["transport.dropped"],
    ["transport.duplicated"], ["transport.flush_delivered"]) so
    experiments report them uniformly with everything else. *)

val set_policy : t -> policy -> unit

val send : t -> Untx_msg.Wire.request -> unit

val drain : t -> Untx_msg.Wire.reply list
(** Advance one tick and surface due replies. *)

val flush : t -> Untx_msg.Wire.reply list
(** Deliver everything in flight (reliably).  A test-only escape hatch:
    the kernel quiesces through the TC's resend path instead, which
    exercises the paper's contracts. *)

val drop_in_flight : t -> unit
(** Lose every message currently in transit (component crash). *)

val in_flight : t -> int

val requests_delivered : t -> int

val dropped : t -> int

val duplicated : t -> int

val force_delivered : t -> int
(** Total messages surfaced by {!flush} calls. *)
