(** The unreliable message plane between a TC and a DC.

    The paper treats the unbundled kernel as a distributed system
    (Section 4.1): requests may be delayed, reordered, duplicated or
    lost, and the contracts (unique request ids, resend, idempotence)
    must mask all of it.  This transport makes those behaviours
    injectable and deterministic.

    The plane carries encoded {!Untx_msg.Wire} frames — real bytes, not
    shared heap values — on two logical channels: {e data} (operation
    requests and replies) and {e control} (watermarks, checkpoints,
    restart protocol).  Each channel has its own adversarial policy;
    every frame is charged to per-channel byte counters at send time, so
    experiments report measured encoded bytes, not estimates.

    Time is logical: each {!drain} call advances one tick, delivers due
    frames to the DC-side handlers (collecting their reply frames into
    the reverse direction, under the same policy), and returns due
    replies.  All frames due in a delivery round are coalesced into one
    batch (["transport.batches"] / ["transport.batched_frames"]).

    A delivery attempt passes the ["transport.frame.corrupt"] fault
    point: when a rule fires, a random byte of the frame is flipped.
    The receiving edge validates every frame's checksum
    ({!Untx_msg.Wire.frame_ok}) and silently drops failures
    (["transport.corrupt_dropped"]) — corruption is indistinguishable
    from loss, and the sender's resend path carries it. *)

type policy = {
  delay_min : int;
  delay_max : int;  (** per-message delivery delay, in ticks *)
  reorder : bool;  (** deliver due messages in random order *)
  dup_prob : float;  (** probability a message is delivered twice *)
  drop_prob : float;  (** probability a message is silently lost *)
}

val reliable : policy
(** Immediate, ordered, exactly-once — the in-process fast path. *)

val chaotic : policy
(** Delays 0-3 ticks, reordering, 10% duplication, 10% loss: the
    adversary used by contract tests (E10). *)

type t

val create :
  ?counters:Untx_util.Instrument.t ->
  ?policy:policy ->
  ?control_policy:policy ->
  ?label:string ->
  ?repl:(string -> string option) ->
  seed:int ->
  data:(string -> string option) ->
  control:(string -> string option) ->
  unit ->
  t
(** [data] and [control] are the DC-side endpoints: each takes a
    received frame and returns an optional reply frame.  [control_policy]
    defaults to [policy] — both channels face the same adversary unless
    a test separates them.  Delivery, drop, duplication, batching, byte
    and corruption events are mirrored into [counters]
    (["transport.delivered"], ["transport.control_delivered"],
    ["transport.dropped"], ["transport.duplicated"],
    ["transport.batches"], ["transport.batched_frames"],
    ["transport.data_bytes"], ["transport.control_bytes"],
    ["transport.frames_corrupted"], ["transport.corrupt_dropped"],
    ["transport.flush_delivered"]) so experiments report them uniformly
    with everything else.  [label] names the link: when set, byte and
    delivery accounting is additionally mirrored into
    ["transport.<label>.data_bytes"], ["transport.<label>.control_bytes"]
    and ["transport.<label>.delivered"], so a multi-DC deployment can
    read traffic per partition. *)

val set_policy : t -> policy -> unit
(** Set the adversary for both channels. *)

val set_control_policy : t -> policy -> unit
(** Override the control channel's adversary only. *)

val send : t -> string -> unit
(** Enqueue an encoded request frame on the data channel. *)

val send_control : t -> string -> unit
(** Enqueue an encoded control frame on the control channel. *)

val send_repl : t -> string -> unit
(** Enqueue an encoded replication frame on the repl channel.  The
    receiving endpoint is the [repl] handler given to {!create}
    (a standby's frame entry point); its replies surface through
    {!drain_repl}.  Repl frames face the control channel's adversary
    and are charged to ["transport.repl_bytes"] /
    ["transport.<label>.repl_bytes"]. *)

val drain : t -> string list * string list
(** Advance one tick and surface due (reply frames, control-reply
    frames). *)

val drain_repl : t -> string list
(** Advance one tick, deliver due frames (all channels) and surface due
    replication acks.  Replication links carry only repl traffic, so
    {!drain}'s two-channel signature is untouched. *)

val flush : t -> string list * string list
(** Deliver everything in flight (reliably).  A test-only escape hatch:
    the kernel quiesces through the TC's resend path instead, which
    exercises the paper's contracts. *)

val drop_in_flight : t -> unit
(** Lose every frame currently in transit, both channels (component
    crash). *)

val in_flight : t -> int

val requests_delivered : t -> int
(** Data-channel request frames delivered to the DC endpoint. *)

val dropped : t -> int

val duplicated : t -> int

val force_delivered : t -> int
(** Total frames surfaced by {!flush} calls. *)

val corrupt_dropped : t -> int
(** Frames rejected by the receiving edge's checksum check. *)

val data_bytes_sent : t -> int
(** Measured encoded bytes handed to the data channel (both
    directions). *)

val control_bytes_sent : t -> int

val repl_bytes_sent : t -> int
(** Measured encoded bytes handed to the replication channel (both
    directions). *)

val bytes_sent : t -> int
(** [data_bytes_sent + control_bytes_sent + repl_bytes_sent]. *)
