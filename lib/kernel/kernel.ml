module Tc_id = Untx_util.Tc_id
module Instrument = Untx_util.Instrument
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Wire = Untx_msg.Wire

type config = {
  tc : Tc.config;
  dc : Dc.config;
  policy : Transport.policy;
  seed : int;
  auto_checkpoint_every : int;
}

let default_config =
  {
    tc = Tc.default_config (Tc_id.of_int 1);
    dc = Dc.default_config;
    policy = Transport.reliable;
    seed = 42;
    auto_checkpoint_every = 0;
  }

type t = {
  k_tc : Tc.t;
  k_dc : Dc.t;
  k_transport : Transport.t;
  k_auto_ckpt : int;
  mutable k_commits_since_ckpt : int;
}

let dc_name = "dc1"

let create ?(counters = Instrument.global) config =
  let dc = Dc.create ~counters config.dc in
  (* One serialized message plane: both channels carry encoded frames
     under the same adversarial policy, and the DC sees only bytes. *)
  let transport =
    Transport.create ~counters ~policy:config.policy ~seed:config.seed
      ~data:(Dc.handle_request_frame dc)
      ~control:(Dc.handle_control_frame dc)
      ()
  in
  let tc = Tc.create ~counters config.tc in
  Tc.attach_dc tc
    {
      Tc.dc_name;
      part = 0;
      send = Transport.send transport;
      send_control = Transport.send_control transport;
      drain = (fun () -> Transport.drain transport);
    };
  {
    k_tc = tc;
    k_dc = dc;
    k_transport = transport;
    k_auto_ckpt = config.auto_checkpoint_every;
    k_commits_since_ckpt = 0;
  }

let tc t = t.k_tc

let dc t = t.k_dc

let transport t = t.k_transport

let create_table t ~name ~versioned =
  Dc.create_table t.k_dc ~name ~versioned;
  Tc.map_table t.k_tc ~table:name ~dc:dc_name ~versioned

type txn = Tc.txn

let begin_txn t = Tc.begin_txn t.k_tc

let read t txn ~table ~key = Tc.read t.k_tc txn ~table ~key

let insert t txn ~table ~key ~value = Tc.insert t.k_tc txn ~table ~key ~value

let update t txn ~table ~key ~value = Tc.update t.k_tc txn ~table ~key ~value

let delete t txn ~table ~key = Tc.delete t.k_tc txn ~table ~key

let scan t txn ~table ~from_key ~limit =
  Tc.scan t.k_tc txn ~table ~from_key ~limit

let commit t txn =
  let r = Tc.commit t.k_tc txn in
  (match r with
  | `Ok () when t.k_auto_ckpt > 0 ->
    t.k_commits_since_ckpt <- t.k_commits_since_ckpt + 1;
    if t.k_commits_since_ckpt >= t.k_auto_ckpt then begin
      t.k_commits_since_ckpt <- 0;
      (* best effort: an ungranted checkpoint just retries later *)
      ignore (Tc.checkpoint t.k_tc)
    end
  | _ -> ());
  r

let abort t txn ~reason = Tc.abort t.k_tc txn ~reason

let checkpoint t = Tc.checkpoint t.k_tc

(* Quiescing goes through the TC's await/resend loop, not
   [Transport.flush]: outstanding requests complete because the contracts
   (unique ids, resend with backoff, idempotence) work, not because the
   harness cheats the network. *)
let quiesce t = Tc.quiesce t.k_tc

let crash_dc t =
  (* Messages in transit die with the DC's sockets. *)
  Transport.drop_in_flight t.k_transport;
  Dc.crash t.k_dc;
  Dc.recover t.k_dc;
  Tc.on_dc_restart t.k_tc ~dc:dc_name

let crash_tc t =
  Transport.drop_in_flight t.k_transport;
  Tc.crash t.k_tc;
  Tc.recover t.k_tc

let crash_both t =
  Transport.drop_in_flight t.k_transport;
  Dc.crash t.k_dc;
  Tc.crash t.k_tc;
  Dc.recover t.k_dc;
  Tc.recover t.k_tc

(* --- fault-injection harness glue --------------------------------- *)

let component_of_point point =
  if
    String.starts_with ~prefix:"tc." point
    || String.starts_with ~prefix:"wal.tc." point
  then `Tc
  else `Dc
(* dc.*, wal.dc.*, disk.* and cache points all live in the DC process. *)

let crash_for_point t point =
  let rec go attempts point =
    try
      match component_of_point point with
      | `Tc -> crash_tc t
      | `Dc -> crash_dc t
    with Untx_fault.Fault.Injected_crash p when attempts > 0 ->
      (* The plan fired again *during* recovery (e.g. "tc.recover.mid"):
         the freshly restarted component dies too.  Nth rules are
         consumed when they fire, so this terminates. *)
      go (attempts - 1) p
  in
  go 8 point
