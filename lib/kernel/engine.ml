(** The engine abstraction the workload driver runs against.

    Both the unbundled kernel and the monolithic baseline expose this
    surface, so every experiment compares them on identical workloads. *)

type 'a outcome = [ `Ok of 'a | `Blocked | `Fail of string ]

module type S = sig
  type txn

  val begin_txn : unit -> txn

  val xid : txn -> int

  val is_active : txn -> bool

  val read : txn -> table:string -> key:string -> string option outcome

  val insert : txn -> table:string -> key:string -> value:string -> unit outcome

  val update : txn -> table:string -> key:string -> value:string -> unit outcome

  val delete : txn -> table:string -> key:string -> unit outcome

  val scan :
    txn -> table:string -> from_key:string -> limit:int ->
    (string * string) list outcome

  val commit : txn -> unit outcome

  val abort : txn -> reason:string -> unit

  val wakeups : unit -> int list

  val resolve_deadlock : unit -> int option
end

(* A bare TC as an engine: how a deployment (one TC fronting N
   partitioned DCs) runs the standard workloads. *)
let of_tc (tc : Untx_tc.Tc.t) : (module S) =
  (module struct
    module Tc = Untx_tc.Tc

    type txn = Tc.txn

    let begin_txn () = Tc.begin_txn tc

    let xid = Tc.xid

    let is_active = Tc.is_active

    let read txn ~table ~key = Tc.read tc txn ~table ~key

    let insert txn ~table ~key ~value = Tc.insert tc txn ~table ~key ~value

    let update txn ~table ~key ~value = Tc.update tc txn ~table ~key ~value

    let delete txn ~table ~key = Tc.delete tc txn ~table ~key

    let scan txn ~table ~from_key ~limit = Tc.scan tc txn ~table ~from_key ~limit

    let commit txn = Tc.commit tc txn

    let abort txn ~reason = Tc.abort tc txn ~reason

    let wakeups () = Tc.wakeups tc

    let resolve_deadlock () = Tc.resolve_deadlock tc
  end)

let of_kernel (k : Kernel.t) : (module S) =
  (module struct
    type txn = Untx_tc.Tc.txn

    let begin_txn () = Kernel.begin_txn k

    let xid = Untx_tc.Tc.xid

    let is_active = Untx_tc.Tc.is_active

    let read txn ~table ~key = Kernel.read k txn ~table ~key

    let insert txn ~table ~key ~value = Kernel.insert k txn ~table ~key ~value

    let update txn ~table ~key ~value = Kernel.update k txn ~table ~key ~value

    let delete txn ~table ~key = Kernel.delete k txn ~table ~key

    let scan txn ~table ~from_key ~limit =
      Kernel.scan k txn ~table ~from_key ~limit

    let commit txn = Kernel.commit k txn

    let abort txn ~reason = Kernel.abort k txn ~reason

    let wakeups () = Untx_tc.Tc.wakeups (Kernel.tc k)

    let resolve_deadlock () = Untx_tc.Tc.resolve_deadlock (Kernel.tc k)
  end)
