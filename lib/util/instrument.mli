(** Named event counters.

    The paper's E1 claim ("unbundling inevitably has longer code paths")
    is quantified by counting layer crossings, messages, log appends,
    latches and page I/Os through a shared counter registry rather than by
    wall-clock alone.

    The registry is now a thin shim over {!Untx_obs.Metrics} — the type
    equality below means a component's [counters] handle also accepts
    [Metrics.observe]/[start]/[stop] for histogram collection, without
    changing any call site of the counter API. *)

type t = Untx_obs.Metrics.t

val create : unit -> t

val bump : t -> string -> unit
(** Increment counter [name] by one (created at zero on first use). *)

val bump_by : t -> string -> int -> unit

val get : t -> string -> int
(** Current value; [0] if never bumped. *)

val reset : t -> unit
(** Zero every counter (histograms are untouched). *)

val snapshot : t -> (string * int) list
(** All counters, sorted by name. *)

val pp : Format.formatter -> t -> unit

val global : t
(** A process-wide registry, convenient for benches. *)
