(* Thin shim over the observability registry: every component's
   [counters : Instrument.t] doubles as a [Metrics] handle, so the same
   registry that counts layer crossings can also collect latency
   histograms when timing is enabled. *)

type t = Untx_obs.Metrics.t

let create = Untx_obs.Metrics.create

let bump = Untx_obs.Metrics.bump

let bump_by = Untx_obs.Metrics.bump_by

let get = Untx_obs.Metrics.get_counter

let reset = Untx_obs.Metrics.reset_counters

let snapshot = Untx_obs.Metrics.counter_snapshot

let pp = Untx_obs.Metrics.pp_counters

let global = Untx_obs.Metrics.global
