(* Causal spans across the TC/DC boundary.

   Every TC-originated operation gets a trace id stamped into its wire
   frame's header (checksummed with the rest of the frame, so a
   corrupted id can never misattribute a span — the frame is simply
   dropped).  The TC, both transport channels, the DC and the WAL
   record span events against that id into one process-wide bounded
   ring; [to_jsonl] dumps the ring for the analyzer.

   The ring is global, like [Fault]'s registry: components record
   without threading a handle, and a test or chaos cycle brackets its
   run with [clear]/[set_enabled].  When disabled, [record] is one
   boolean load, [fresh_tid] returns 0 (frames carry tid 0 and no
   events are recorded). *)

type event = {
  e_tid : int;  (* 0 = untraced (control traffic, WAL forces) *)
  e_seq : int;  (* causal order within the process *)
  e_t : float;  (* wall clock, seconds *)
  e_comp : string;
  e_ev : string;
  e_attrs : (string * string) list;
}

let dummy =
  { e_tid = 0; e_seq = 0; e_t = 0.; e_comp = ""; e_ev = ""; e_attrs = [] }

type ring = {
  mutable enabled : bool;
  mutable cap : int;
  mutable slots : event array; (* allocated lazily on first enable *)
  mutable n : int; (* total recorded since clear *)
  mutable next_tid : int;
  mutable next_seq : int;
}

let g =
  { enabled = false; cap = 65_536; slots = [||]; n = 0; next_tid = 0;
    next_seq = 0 }

let enabled () = g.enabled

let clear () =
  g.n <- 0;
  g.next_tid <- 0;
  g.next_seq <- 0

let set_enabled b =
  if b && Array.length g.slots <> g.cap then g.slots <- Array.make g.cap dummy;
  g.enabled <- b

let set_capacity cap =
  if cap <= 0 then invalid_arg "Trace.set_capacity";
  g.cap <- cap;
  g.slots <- (if g.enabled then Array.make cap dummy else [||]);
  clear ()

let capacity () = g.cap

(* Trace ids are frame-header fields (4 bytes on the wire), so they wrap
   at 32 bits; 0 is reserved for "untraced". *)
let fresh_tid () =
  if not g.enabled then 0
  else begin
    g.next_tid <- (g.next_tid + 1) land 0xFFFFFFFF;
    if g.next_tid = 0 then g.next_tid <- 1;
    g.next_tid
  end

let record ~tid ~comp ~ev attrs =
  if g.enabled then begin
    let e =
      { e_tid = tid; e_seq = g.next_seq; e_t = Unix.gettimeofday ();
        e_comp = comp; e_ev = ev; e_attrs = attrs }
    in
    g.next_seq <- g.next_seq + 1;
    g.slots.(g.n mod g.cap) <- e;
    g.n <- g.n + 1
  end

let recorded () = g.n

let dropped () = max 0 (g.n - g.cap)

let events () =
  if g.n <= g.cap then List.init g.n (fun i -> g.slots.(i))
  else List.init g.cap (fun i -> g.slots.((g.n + i) mod g.cap))

(* ---- structured dump ---- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let event_to_buf buf e =
  Buffer.add_string buf (Printf.sprintf "{\"tid\":%d,\"seq\":%d" e.e_tid e.e_seq);
  Buffer.add_string buf (Printf.sprintf ",\"t\":%.7f" e.e_t);
  Buffer.add_string buf ",\"comp\":\"";
  escape buf e.e_comp;
  Buffer.add_string buf "\",\"ev\":\"";
  escape buf e.e_ev;
  Buffer.add_string buf "\",\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      escape buf k;
      Buffer.add_string buf "\":\"";
      escape buf v;
      Buffer.add_char buf '"')
    e.e_attrs;
  Buffer.add_string buf "}}\n"

let to_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter (event_to_buf buf) (events ());
  Buffer.contents buf
