(* The observability registry: named counters (the old Instrument
   contract, unchanged) plus fixed-bucket histograms for latencies and
   sizes.  Histogram buckets are geometric with four sub-buckets per
   power of two, so a recorded value is attributed to a bucket whose
   upper bound overshoots it by at most 25% — enough for p50/p95/p99
   reporting without per-sample storage, and snapshots merge by plain
   bucket addition.

   Timing is opt-in per registry ([set_timed]): when off, the [start]/
   [stop] pair at every instrumented site reduces to one mutable-field
   read and one float compare, so the hooks can stay in the hot paths
   permanently. *)

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
}

(* Index layout: 0..3 are exact values 0..3; above that, four
   sub-buckets per bit length up to 63-bit values. *)
let n_buckets = 248

let bucket_of v =
  if v <= 3 then max 0 v
  else begin
    let bl = ref 0 and x = ref v in
    while !x <> 0 do
      incr bl;
      x := !x lsr 1
    done;
    let sub = (v lsr (!bl - 3)) land 3 in
    min (n_buckets - 1) (4 + (4 * (!bl - 3)) + sub)
  end

let bucket_upper idx =
  if idx <= 3 then idx
  else
    let k = idx - 4 in
    let bl = 3 + (k / 4) and sub = k mod 4 in
    let w = 1 lsl (bl - 3) in
    (1 lsl (bl - 1)) + (sub * w) + w - 1

type hsnap = {
  s_count : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  s_buckets : int array;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  mutable timed : bool;
}

let create () =
  { counters = Hashtbl.create 64; hists = Hashtbl.create 16; timed = false }

let global = create ()

(* ---- counters (the Instrument contract) ---- *)

let counter_cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let bump t name = incr (counter_cell t name)

let bump_by t name n =
  let r = counter_cell t name in
  r := !r + n

let get_counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let reset_counters t = Hashtbl.iter (fun _ r -> r := 0) t.counters

let counter_snapshot t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_counters ppf t =
  let items = counter_snapshot t in
  Format.fprintf ppf "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf ppf "%-32s %d@," name v) items;
  Format.fprintf ppf "@]"

(* ---- histograms ---- *)

let hist_cell t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h =
      {
        h_count = 0;
        h_sum = 0;
        h_min = max_int;
        h_max = 0;
        h_buckets = Array.make n_buckets 0;
      }
    in
    Hashtbl.add t.hists name h;
    h

let observe t name v =
  let v = max 0 v in
  let h = hist_cell t name in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_of v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

let set_timed t b = t.timed <- b

let timed t = t.timed

(* [start] returns a negative sentinel when timing is off; [stop] then
   does one float compare and returns.  Nanosecond integers ride on
   gettimeofday, so the effective resolution is ~1µs. *)
let start t = if t.timed then Unix.gettimeofday () else -1.0

let stop t name t0 =
  if t0 >= 0.0 then
    observe t name (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))

let hist_snapshot t name =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h ->
    Some
      {
        s_count = h.h_count;
        s_sum = h.h_sum;
        s_min = h.h_min;
        s_max = h.h_max;
        s_buckets = Array.copy h.h_buckets;
      }

let hist_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.hists []
  |> List.sort String.compare

let empty_hsnap =
  { s_count = 0; s_sum = 0; s_min = max_int; s_max = 0;
    s_buckets = Array.make n_buckets 0 }

let merge a b =
  {
    s_count = a.s_count + b.s_count;
    s_sum = a.s_sum + b.s_sum;
    s_min = min a.s_min b.s_min;
    s_max = max a.s_max b.s_max;
    s_buckets = Array.init n_buckets (fun i -> a.s_buckets.(i) + b.s_buckets.(i));
  }

let percentile s p =
  if s.s_count = 0 then 0
  else begin
    let target =
      let raw = int_of_float (ceil (p /. 100. *. float_of_int s.s_count)) in
      min s.s_count (max 1 raw)
    in
    let acc = ref 0 and result = ref s.s_max in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + s.s_buckets.(i);
         if !acc >= target then begin
           result := min (bucket_upper i) s.s_max;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let mean s =
  if s.s_count = 0 then 0. else float_of_int s.s_sum /. float_of_int s.s_count

let fmt_ns ns =
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then
    Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  else Printf.sprintf "%.2fs" (float_of_int ns /. 1e9)

let pp_hsnap ppf s =
  if s.s_count = 0 then Format.pp_print_string ppf "n=0"
  else
    Format.fprintf ppf "n=%d p50=%s p95=%s p99=%s max=%s" s.s_count
      (fmt_ns (percentile s 50.))
      (fmt_ns (percentile s 95.))
      (fmt_ns (percentile s 99.))
      (fmt_ns s.s_max)
