(** Trace reconstruction: per-operation timelines from a span dump.

    Consumes {!Trace.to_jsonl} output (or a live event list), groups
    events by trace id, and reports per-hop latency histograms,
    resend/duplicate chains, and per-partition round-trip skew. *)

type timeline = {
  tl_tid : int;
  tl_events : Trace.event list;  (** causal (seq) order *)
  tl_part : int option;  (** partition that applied the operation *)
  tl_resends : int;  (** TC backoff resends of this operation's frame *)
  tl_skips : int;  (** duplicate deliveries the DC absorbed *)
  tl_complete : bool;  (** both a dispatch and an ack were recorded *)
  tl_rtt_ns : int option;  (** first dispatch → last ack *)
}

type report = {
  r_timelines : timeline list;
  r_orphans : int;
      (** traced operations with no completed dispatch→ack pair — after
          a quiesced run this must be 0: every resend chain converges *)
  r_hops : (string * Metrics.hsnap) list;
      (** latency between consecutive span events, keyed ["a->b"] with
          channel direction folded in (e.g. ["xmit.req->recv.req"]) *)
  r_parts : (int * Metrics.hsnap) list;
      (** completed round trips grouped by partition — skew shows as
          diverging counts/percentiles *)
  r_repl : (string * int) list;
      (** replication events counted by kind (["ship"], ["ack"],
          ["promote"]); repl traffic is untraced (tid 0) so it appears
          here rather than in timelines *)
  r_layer : (string * int) list;
      (** layer-store events counted by kind (["compact"],
          ["bootstrap"]), untraced like repl traffic *)
  r_front : (string * int) list;
      (** session front-end events counted by kind (["admitted"],
          ["shed"], ["batched"]); a shed transaction never reaches a
          TC, so admission traffic has no per-operation span *)
  r_branch : (string * int) list;
      (** copy-on-write branch events counted by kind (["create"],
          ["delete"], ["dc_crash"]); forks and deletes are control
          operations with no per-transaction span *)
}

val of_jsonl : string -> Trace.event list
(** Parse a {!Trace.to_jsonl} dump.  Raises [Invalid_argument] on
    malformed input — the emitter/parser pair is pinned by a round-trip
    property test. *)

val analyze : Trace.event list -> report

val pp_summary : Format.formatter -> report -> unit
